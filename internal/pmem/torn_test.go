package pmem

import (
	"errors"
	"testing"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Torn-write recovery tests: interrupt a persistence sequence at every
// flush/drain event with a sticky device failure, persist a seeded arbitrary
// subset of the pending granules (CrashAt — the past-ADR torn/reordered
// write-back model), and verify Open never panics, never yields a mis-sized
// pool, and always lands in one of the legal states.

const tornSeeds = 3

// checkWellFormed asserts the recovered pool's geometry is sane: the header
// must never describe a pool larger than the device or a watermark outside
// the pool.
func checkWellFormed(t *testing.T, p *Pool, dev *nvm.SimDevice) {
	t.Helper()
	if p.Size() != dev.Size() {
		t.Fatalf("recovered pool size %d != device size %d", p.Size(), dev.Size())
	}
	if p.Allocated() < headerSize || p.Allocated() > p.Size() {
		t.Fatalf("recovered watermark %d outside [%d, %d]", p.Allocated(), int64(headerSize), p.Size())
	}
}

// TestTornCheckpointHeaderAtomic crashes a checkpoint at every persist event
// with torn granule subsets.  The header fits in one media granule, so its
// commit is atomic: recovery must find either the old phase or the new one —
// never a corrupt header, a phase in between, or a mis-sized pool — and when
// the new phase is durable, so is the data it checkpointed.
func TestTornCheckpointHeaderAtomic(t *testing.T) {
	setup := func(t *testing.T) (*Pool, *nvm.SimDevice, int64) {
		t.Helper()
		p, dev := newTestPool(t, 1<<18)
		a, err := p.Alloc(64, 8)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		a.PutUint64(0, 1)
		must(t, p.SetRoot(0, a.Base()))
		must(t, p.Checkpoint(1))
		a.PutUint64(0, 2) // phase-2 value, committed by the next checkpoint
		return p, dev, a.Base()
	}

	// Count the persist events of the checkpoint under test once.
	p0, dev0, _ := setup(t)
	ev0 := dev0.PersistEvents()
	must(t, p0.Checkpoint(2))
	total := dev0.PersistEvents() - ev0

	for cut := int64(0); cut < total; cut++ {
		for seed := int64(0); seed < tornSeeds; seed++ {
			p, dev, base := setup(t)
			dev.FailFromPersistEvent(dev.PersistEvents() + cut)
			if err := p.Checkpoint(2); err == nil {
				t.Fatalf("cut %d: checkpoint succeeded despite injected failure", cut)
			}
			must(t, dev.CrashAt(seed))
			dev.DisarmFailPoints()

			p2, err := Open(dev)
			if err != nil {
				t.Fatalf("cut %d seed %d: Open: %v", cut, seed, err)
			}
			checkWellFormed(t, p2, dev)
			switch p2.Phase() {
			case 1:
				// Commit never became durable; torn data under the old phase
				// is unreferenced and allowed.
			case 2:
				off, err := p2.Root(0)
				if err != nil || off != base {
					t.Fatalf("cut %d seed %d: phase-2 root = %d, %v", cut, seed, off, err)
				}
				if v := p2.AccessorAt(off, 64).Uint64(0); v != 2 {
					t.Fatalf("cut %d seed %d: phase 2 durable but data = %d, want 2", cut, seed, v)
				}
			default:
				t.Fatalf("cut %d seed %d: recovered phase = %d", cut, seed, p2.Phase())
			}
		}
	}
}

// TestTornTxCommitAtomic crashes a two-write transaction at every persist
// event with torn granule subsets.  Recovery must observe the transaction
// atomically: both writes or neither — never a mix.  A torn redo log whose
// commit record survived but whose payload did not is detected by the log
// CRC and surfaces as ErrCorrupt (the caller then rebuilds), never as a
// partial apply.
func TestTornTxCommitAtomic(t *testing.T) {
	const (
		offA = int64(0)
		offB = int64(512) // a different media granule than offA
	)
	setup := func(t *testing.T) (*Pool, *nvm.SimDevice, int64) {
		t.Helper()
		p, dev := newTestPool(t, 1<<18)
		a, err := p.Alloc(1024, 8)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		a.PutUint64(offA, 1)
		a.PutUint64(offB, 2)
		must(t, p.SetRoot(0, a.Base()))
		must(t, p.Checkpoint(1))
		return p, dev, a.Base()
	}
	runTx := func(p *Pool, base int64) error {
		tx, err := p.Begin()
		if err != nil {
			return err
		}
		if err := tx.WriteUint64(base+offA, 111); err != nil {
			return err
		}
		if err := tx.WriteUint64(base+offB, 222); err != nil {
			return err
		}
		return tx.Commit()
	}

	p0, dev0, base0 := setup(t)
	ev0 := dev0.PersistEvents()
	if err := runTx(p0, base0); err != nil {
		t.Fatalf("reference tx: %v", err)
	}
	total := dev0.PersistEvents() - ev0

	for cut := int64(0); cut < total; cut++ {
		for seed := int64(0); seed < tornSeeds; seed++ {
			p, dev, base := setup(t)
			dev.FailFromPersistEvent(dev.PersistEvents() + cut)
			if err := runTx(p, base); err == nil {
				t.Fatalf("cut %d: tx succeeded despite injected failure", cut)
			}
			must(t, dev.CrashAt(seed))
			dev.DisarmFailPoints()

			p2, err := Open(dev)
			if errors.Is(err, ErrCorrupt) {
				continue // torn log detected; rebuild required, nothing applied
			}
			if err != nil {
				t.Fatalf("cut %d seed %d: Open: %v", cut, seed, err)
			}
			checkWellFormed(t, p2, dev)
			off, err := p2.Root(0)
			if err != nil || off != base {
				t.Fatalf("cut %d seed %d: root = %d, %v", cut, seed, off, err)
			}
			acc := p2.AccessorAt(off, 1024)
			va, vb := acc.Uint64(offA), acc.Uint64(offB)
			oldPair := va == 1 && vb == 2
			newPair := va == 111 && vb == 222
			if !oldPair && !newPair {
				t.Fatalf("cut %d seed %d: non-atomic tx recovery: (%d, %d)", cut, seed, va, vb)
			}
		}
	}
}

// TestTornCreateNeverMisSized crashes pool creation at every persist event
// with torn granule subsets.  Open on the remains must report ErrNoPool or
// ErrCorrupt, or find a fully valid empty pool — never one whose recorded
// geometry disagrees with the device.
func TestTornCreateNeverMisSized(t *testing.T) {
	const size = 1 << 16
	opts := Options{LogCap: 4096}

	dev0 := nvm.New(nvm.KindNVM, size)
	if _, err := Create(dev0, opts); err != nil {
		t.Fatalf("reference Create: %v", err)
	}
	total := dev0.PersistEvents()

	for cut := int64(0); cut < total; cut++ {
		for seed := int64(0); seed < tornSeeds; seed++ {
			dev := nvm.New(nvm.KindNVM, size)
			dev.FailFromPersistEvent(cut)
			if _, err := Create(dev, opts); err == nil {
				t.Fatalf("cut %d: Create succeeded despite injected failure", cut)
			}
			must(t, dev.CrashAt(seed))
			dev.DisarmFailPoints()

			p, err := Open(dev)
			if errors.Is(err, ErrNoPool) || errors.Is(err, ErrCorrupt) {
				continue // nothing durable (or torn header); caller recreates
			}
			if err != nil {
				t.Fatalf("cut %d seed %d: Open: %v", cut, seed, err)
			}
			checkWellFormed(t, p, dev)
			if p.Phase() != 0 {
				t.Fatalf("cut %d seed %d: fresh pool phase = %d", cut, seed, p.Phase())
			}
		}
	}
}
