package pmem

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// TestShardStampRoundTrip checks the stamp survives create/checkpoint/open
// and that unsharded pools read back as 0/0.
func TestShardStampRoundTrip(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	defer dev.Discard()
	p, err := Create(dev, Options{LogCap: 4096, Shard: 2, ShardCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	if idx, cnt := p.Shard(); idx != 2 || cnt != 4 {
		t.Fatalf("Shard() = %d/%d, want 2/4", idx, cnt)
	}
	must(t, p.Checkpoint(1))
	reopened, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if idx, cnt := reopened.Shard(); idx != 2 || cnt != 4 {
		t.Fatalf("reopened Shard() = %d/%d, want 2/4", idx, cnt)
	}

	plain := nvm.New(nvm.KindNVM, 1<<20)
	defer plain.Discard()
	q, err := Create(plain, Options{LogCap: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if idx, cnt := q.Shard(); idx != 0 || cnt != 0 {
		t.Fatalf("unsharded Shard() = %d/%d, want 0/0", idx, cnt)
	}
}

// TestBuildTagRoundTrip checks the build tag survives create/checkpoint/open
// and that untagged pools read back zero.
func TestBuildTagRoundTrip(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	defer dev.Discard()
	p, err := Create(dev, Options{LogCap: 4096, Tag: 0xdeadbeef})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tag() != 0xdeadbeef {
		t.Fatalf("Tag() = %08x, want deadbeef", p.Tag())
	}
	must(t, p.Checkpoint(1))
	reopened, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Tag() != 0xdeadbeef {
		t.Fatalf("reopened Tag() = %08x, want deadbeef", reopened.Tag())
	}

	plain := nvm.New(nvm.KindNVM, 1<<20)
	defer plain.Discard()
	q, err := Create(plain, Options{LogCap: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if q.Tag() != 0 {
		t.Fatalf("untagged Tag() = %08x, want 0", q.Tag())
	}
}

// TestShardStampValidation rejects out-of-range stamps at creation.
func TestShardStampValidation(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	defer dev.Discard()
	if _, err := Create(dev, Options{LogCap: 4096, Shard: 4, ShardCount: 4}); err == nil {
		t.Fatal("index == count accepted")
	}
	if _, err := Create(dev, Options{LogCap: 4096, Shard: 0, ShardCount: 1 << 16}); err == nil {
		t.Fatal("oversized count accepted")
	}
}
