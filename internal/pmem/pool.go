// Package pmem provides persistent-memory pool management over a simulated
// device: arena allocation with a checksummed header, named root offsets,
// phase-level persistence (flush + checkpoint at phase boundaries, the
// libpmem strategy in the paper), and operation-level persistence via a
// redo-log transaction mechanism (the libpmemobj strategy).
package pmem

import (
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Pool header layout (all little-endian):
//
//	off  size  field
//	0    8     magic "NTADOCPM"
//	8    4     version
//	12   4     shard stamp: index (low 16 bits) | count (high 16 bits);
//	           zero for an unsharded pool
//	16   8     pool size
//	24   8     allocation top (watermark)
//	32   4     last completed checkpoint phase
//	36   4     checkpoint epoch
//	40   8     redo-log offset
//	48   8     redo-log capacity
//	56   4     build tag: caller-chosen content fingerprint; zero when unused
//	60   4     crc32 of bytes [0,60)
//	64   192   24 named root slots (uint64 each)
const (
	headerSize = 256
	rootSlots  = 24

	// HeaderSize exports the pool-header length for callers that must
	// respect the header's persistence ordering without parsing it — the
	// replication snapshot install persists the body before the header so a
	// torn install never exposes a header vouching for missing contents.
	HeaderSize = headerSize

	offMagic   = 0
	offVersion = 8
	offShard   = 12 // flags word: shard index (low 16) | shard count (high 16)
	offSize    = 16
	offTop     = 24
	offPhase   = 32
	offEpoch   = 36
	offLogOff  = 40
	offLogCap  = 48
	offTag     = 56
	offCRC     = 60
	offRoots   = 64

	poolVersion = 3
)

var magic = [8]byte{'N', 'T', 'A', 'D', 'O', 'C', 'P', 'M'}

// Common pool errors.
var (
	ErrOutOfSpace = errors.New("pmem: pool out of space")
	ErrCorrupt    = errors.New("pmem: pool header corrupt")
	ErrNoPool     = errors.New("pmem: no pool on device")
	ErrBadSlot    = errors.New("pmem: root slot out of range")
)

// Pool is an arena of persistent memory on a device.  Allocation is a bump
// pointer: the paper's engine sizes every structure up front (bottom-up
// summation), so nothing is ever freed piecemeal; a pool is reset as a whole.
type Pool struct {
	dev nvm.Device
	acc nvm.Accessor

	size int64
	top  int64 // volatile allocation watermark; persisted by Checkpoint

	logOff int64
	logCap int64
	log    *RedoLog
}

// Options configures pool creation.
type Options struct {
	// LogCap is the redo-log capacity in bytes for operation-level
	// persistence.  Zero defaults to 1 MiB.  The log is carved out of the
	// pool itself, immediately after the header.
	LogCap int64
	// Shard and ShardCount stamp the pool as shard Shard of a ShardCount-way
	// sharded engine (both zero for an unsharded pool).  The stamp is part
	// of the checksummed header: sharded recovery uses it to reject a device
	// set whose pools were built for different positions or set sizes.
	Shard      uint32
	ShardCount uint32
	// Tag is a caller-chosen content fingerprint stamped into the header
	// (zero when unused).  A sharded engine built from a unified shared-rule
	// container stamps every shard pool with the container's shared-table
	// checksum, so recovery can reject a device set assembled from shards of
	// different builds even when their positional stamps happen to line up.
	Tag uint32
}

// Create formats a new pool covering the whole device and returns it.  Any
// previous contents are ignored.  The header and empty redo log are made
// durable before Create returns.
func Create(dev nvm.Device, opts Options) (*Pool, error) {
	logCap := opts.LogCap
	if logCap == 0 {
		logCap = 1 << 20
	}
	size := dev.Size()
	if size < headerSize+logCap+logHeaderSize {
		return nil, fmt.Errorf("%w: device size %d too small", ErrOutOfSpace, size)
	}
	if opts.ShardCount >= 1<<16 || opts.Shard >= 1<<16 {
		return nil, fmt.Errorf("pmem: shard stamp %d/%d out of range", opts.Shard, opts.ShardCount)
	}
	if opts.ShardCount > 0 && opts.Shard >= opts.ShardCount {
		return nil, fmt.Errorf("pmem: shard index %d outside count %d", opts.Shard, opts.ShardCount)
	}
	p := &Pool{
		dev:    dev,
		acc:    nvm.NewAccessor(dev, 0, size),
		size:   size,
		logOff: headerSize,
		logCap: logCap,
		top:    headerSize + logCap,
	}
	p.acc.WriteBytes(offMagic, magic[:])
	p.acc.PutUint32(offVersion, poolVersion)
	p.acc.PutUint32(offShard, opts.Shard|opts.ShardCount<<16)
	p.acc.PutUint64(offSize, uint64(size))
	p.acc.PutUint64(offTop, uint64(p.top))
	p.acc.PutUint32(offPhase, 0)
	p.acc.PutUint32(offEpoch, 0)
	p.acc.PutUint64(offLogOff, uint64(p.logOff))
	p.acc.PutUint64(offLogCap, uint64(p.logCap))
	p.acc.PutUint32(offTag, opts.Tag)
	for i := 0; i < rootSlots; i++ {
		p.acc.PutUint64(offRoots+int64(i)*8, 0)
	}
	p.sealHeader()
	p.log = newRedoLog(p.acc.Slice(p.logOff, p.logCap))
	if err := p.log.format(); err != nil {
		return nil, err
	}
	if err := p.flushHeader(); err != nil {
		return nil, err
	}
	return p, nil
}

// Open attaches to an existing pool on the device, validating the header and
// replaying any committed-but-unapplied redo log (crash recovery for
// operation-level persistence).  It returns ErrNoPool when the device has no
// pool and ErrCorrupt when the header fails validation.
func Open(dev nvm.Device) (*Pool, error) {
	size := dev.Size()
	if size < headerSize {
		return nil, ErrNoPool
	}
	acc := nvm.NewAccessor(dev, 0, size)
	var m [8]byte
	acc.ReadBytes(offMagic, m[:])
	if m != magic {
		return nil, ErrNoPool
	}
	head := make([]byte, offCRC)
	acc.ReadBytes(0, head)
	if acc.Uint32(offCRC) != crc32.ChecksumIEEE(head) {
		return nil, ErrCorrupt
	}
	if v := acc.Uint32(offVersion); v != poolVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	if s := int64(acc.Uint64(offSize)); s != size {
		return nil, fmt.Errorf("%w: header size %d != device size %d", ErrCorrupt, s, size)
	}
	p := &Pool{
		dev:    dev,
		acc:    acc,
		size:   size,
		top:    int64(acc.Uint64(offTop)),
		logOff: int64(acc.Uint64(offLogOff)),
		logCap: int64(acc.Uint64(offLogCap)),
	}
	p.log = newRedoLog(acc.Slice(p.logOff, p.logCap))
	if err := p.log.recover(p.acc); err != nil {
		return nil, err
	}
	return p, nil
}

// Device returns the pool's backing device.
func (p *Pool) Device() nvm.Device { return p.dev }

// Size returns the pool capacity in bytes.
func (p *Pool) Size() int64 { return p.size }

// Allocated returns the bytes currently allocated, including header and log.
func (p *Pool) Allocated() int64 { return p.top }

// Remaining returns the bytes still available for allocation.
func (p *Pool) Remaining() int64 { return p.size - p.top }

// Alloc reserves n bytes aligned to align (a power of two; 0 or 1 means
// unaligned) and returns an accessor for the new region.  The watermark is
// volatile until the next Checkpoint, matching phase-level persistence:
// allocations from an interrupted phase are reclaimed on recovery.
func (p *Pool) Alloc(n, align int64) (nvm.Accessor, error) {
	if n < 0 {
		return nvm.Accessor{}, fmt.Errorf("pmem: negative allocation %d", n)
	}
	off := p.top
	if align > 1 {
		off = (off + align - 1) &^ (align - 1)
	}
	if off+n > p.size {
		return nvm.Accessor{}, fmt.Errorf("%w: need %d, have %d", ErrOutOfSpace, n, p.size-off)
	}
	p.top = off + n
	return p.acc.Slice(off, n), nil
}

// AllocAt is Alloc with the region zeroed, for structures that rely on a
// zero initial state (hash-table status bytes, counters).
func (p *Pool) AllocZeroed(n, align int64) (nvm.Accessor, error) {
	a, err := p.Alloc(n, align)
	if err != nil {
		return a, err
	}
	// Zero in the same 64 KiB chunks the staging-buffer implementation
	// wrote, so the charged granule sequence (and modeled time) is
	// unchanged; Fill just skips materializing the zero buffer.
	const chunk = 64 << 10
	for off := int64(0); off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		a.Fill(off, c, 0)
	}
	return a, nil
}

// Reset discards all allocations (but not the header or log) and returns the
// pool to its empty state.  Used when an engine rebuilds from scratch.
func (p *Pool) Reset() {
	p.top = headerSize + p.logCap
}

// Truncate discards allocations above top, which must lie between the
// reserved region and the current watermark.  Engines use it to release one
// phase's scratch allocations before re-running the phase.
func (p *Pool) Truncate(top int64) error {
	if top < headerSize+p.logCap || top > p.top {
		return fmt.Errorf("pmem: truncate to %d outside [%d, %d]", top, headerSize+p.logCap, p.top)
	}
	p.top = top
	return nil
}

// SetRoot stores a named root offset in header slot i.  Durable at the next
// Checkpoint (or immediately via FlushHeader).
func (p *Pool) SetRoot(i int, off int64) error {
	if i < 0 || i >= rootSlots {
		return ErrBadSlot
	}
	p.acc.PutUint64(offRoots+int64(i)*8, uint64(off))
	return nil
}

// Root returns the offset stored in root slot i.
func (p *Pool) Root(i int) (int64, error) {
	if i < 0 || i >= rootSlots {
		return 0, ErrBadSlot
	}
	return int64(p.acc.Uint64(offRoots + int64(i)*8)), nil
}

// AccessorAt returns an accessor for an arbitrary allocated region, used to
// reattach to structures found via root slots after reopening a pool.
func (p *Pool) AccessorAt(off, n int64) nvm.Accessor { return p.acc.Slice(off, n) }

// Shard returns the pool's shard stamp: its position and the shard count of
// the engine set it was created for.  Both are zero for an unsharded pool.
func (p *Pool) Shard() (index, count uint32) {
	v := p.acc.Uint32(offShard)
	return v & 0xffff, v >> 16
}

// Tag returns the build tag the pool was created with, zero when none.
func (p *Pool) Tag() uint32 { return p.acc.Uint32(offTag) }

// Phase returns the last durably completed checkpoint phase, 0 if none.
func (p *Pool) Phase() uint32 { return p.acc.Uint32(offPhase) }

// Epoch returns the checkpoint counter.
func (p *Pool) Epoch() uint32 { return p.acc.Uint32(offEpoch) }

// Checkpoint makes the whole allocated region durable and records phase as
// completed: the phase-level persistence strategy.  On crash, recovery
// restarts from the last completed phase (see Phase).
func (p *Pool) Checkpoint(phase uint32) error {
	// Flush data first, then the header that declares it valid; the header
	// write is the commit point.
	if err := p.dev.Flush(headerSize+p.logCap, p.top-headerSize-p.logCap); err != nil {
		return err
	}
	if err := p.dev.Drain(); err != nil {
		return err
	}
	p.acc.PutUint64(offTop, uint64(p.top))
	p.acc.PutUint32(offPhase, phase)
	p.acc.PutUint32(offEpoch, p.Epoch()+1)
	p.sealHeader()
	return p.flushHeader()
}

// FlushHeader seals and persists the header without declaring a new phase.
func (p *Pool) FlushHeader() error {
	p.acc.PutUint64(offTop, uint64(p.top))
	p.sealHeader()
	return p.flushHeader()
}

// Begin starts an operation-level transaction.  Writes made through the
// transaction are redo-logged and become durable atomically at Commit.
func (p *Pool) Begin() (*Tx, error) { return p.log.begin(p) }

func (p *Pool) sealHeader() {
	head := make([]byte, offCRC)
	p.acc.ReadBytes(0, head)
	p.acc.PutUint32(offCRC, crc32.ChecksumIEEE(head))
}

func (p *Pool) flushHeader() error {
	if err := p.dev.Flush(0, headerSize); err != nil {
		return err
	}
	return p.dev.Drain()
}
