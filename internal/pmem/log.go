package pmem

import (
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// RedoLog implements operation-level persistence, the libpmemobj-cpp
// analogue from the paper: every pool mutation inside a transaction is
// written twice — once to the log, once in place — which is exactly the
// write amplification the paper measures for this strategy (Fig 5b).
//
// Log layout within its region:
//
//	off  size  field
//	0    4     state: 0 empty, 1 committed (records pending replay)
//	4    4     payload length in bytes
//	8    4     crc32 of payload
//	12   4     record count
//	16   ...   records: off uint64, len uint32, data...
//
// Commit protocol: records are flushed as they are appended; commit writes
// state=1 + length + crc (flush, drain), then flushes the in-place data,
// then clears state (flush, drain).  A crash before the state flush loses
// the transaction (in-place writes were volatile); a crash after it is
// recovered by replaying the log onto the pool.
const (
	logHeaderSize = 16

	logStateEmpty     = 0
	logStateCommitted = 1
)

// ErrLogFull reports a transaction larger than the redo-log capacity.
var ErrLogFull = errors.New("pmem: redo log full")

// ErrTxDone reports use of a committed or aborted transaction.
var ErrTxDone = errors.New("pmem: transaction already finished")

// RedoLog manages the log region.  A pool has exactly one; transactions are
// therefore serialized, as they are in the paper's single-threaded engine.
type RedoLog struct {
	acc nvm.Accessor
}

func newRedoLog(acc nvm.Accessor) *RedoLog { return &RedoLog{acc: acc} }

// format initializes an empty, durable log.
func (l *RedoLog) format() error {
	l.acc.PutUint32(0, logStateEmpty)
	l.acc.PutUint32(4, 0)
	l.acc.PutUint32(8, 0)
	l.acc.PutUint32(12, 0)
	if err := l.acc.Flush(0, logHeaderSize); err != nil {
		return err
	}
	return l.acc.Device().Drain()
}

// recover replays a committed log onto the pool if one is pending, then
// clears it.  Called by Open.
func (l *RedoLog) recover(pool nvm.Accessor) error {
	if l.acc.Uint32(0) != logStateCommitted {
		return nil
	}
	n := int64(l.acc.Uint32(4))
	if n < 0 || logHeaderSize+n > l.acc.Size() {
		return fmt.Errorf("%w: log length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	l.acc.ReadBytes(logHeaderSize, payload)
	if crc32.ChecksumIEEE(payload) != l.acc.Uint32(8) {
		return fmt.Errorf("%w: redo log checksum", ErrCorrupt)
	}
	count := int(l.acc.Uint32(12))
	pos := 0
	for i := 0; i < count; i++ {
		if pos+12 > len(payload) {
			return fmt.Errorf("%w: truncated redo record %d", ErrCorrupt, i)
		}
		off := int64(le64(payload[pos:]))
		ln := int64(le32(payload[pos+8:]))
		pos += 12
		if pos+int(ln) > len(payload) {
			return fmt.Errorf("%w: truncated redo data %d", ErrCorrupt, i)
		}
		pool.WriteBytes(off, payload[pos:pos+int(ln)])
		if err := pool.Flush(off, ln); err != nil {
			return err
		}
		pos += int(ln)
	}
	if err := pool.Device().Drain(); err != nil {
		return err
	}
	return l.format()
}

// begin starts a transaction.
func (l *RedoLog) begin(p *Pool) (*Tx, error) {
	return &Tx{pool: p, log: l, head: logHeaderSize}, nil
}

// Tx is an operation-level transaction.  Writes are applied to the volatile
// pool image immediately (so reads within the transaction see them) and
// recorded in the redo log; Commit makes them durable atomically.
type Tx struct {
	pool    *Pool
	log     *RedoLog
	head    int64 // append position in the log region
	count   uint32
	touched []span // in-place ranges to flush at commit
	done    bool
}

type span struct{ off, n int64 }

// Write applies p at pool offset off under the transaction.
func (t *Tx) Write(off int64, p []byte) error {
	if t.done {
		return ErrTxDone
	}
	need := int64(12 + len(p))
	if t.head+need > t.log.acc.Size() {
		return ErrLogFull
	}
	// Append the redo record and flush it; record-level flushes are what
	// give this strategy its write amplification.
	var hdr [12]byte
	put64(hdr[:], uint64(off))
	put32(hdr[8:], uint32(len(p)))
	t.log.acc.WriteBytes(t.head, hdr[:])
	t.log.acc.WriteBytes(t.head+12, p)
	if err := t.log.acc.Flush(t.head, need); err != nil {
		return err
	}
	t.head += need
	t.count++
	// Apply in place (volatile until commit).
	t.pool.acc.WriteBytes(off, p)
	t.touched = append(t.touched, span{off, int64(len(p))})
	return nil
}

// WriteUint32 is a convenience for a single little-endian uint32.
func (t *Tx) WriteUint32(off int64, v uint32) error {
	var b [4]byte
	put32(b[:], v)
	return t.Write(off, b[:])
}

// WriteUint64 is a convenience for a single little-endian uint64.
func (t *Tx) WriteUint64(off int64, v uint64) error {
	var b [8]byte
	put64(b[:], v)
	return t.Write(off, b[:])
}

// Commit makes the transaction durable: seal the log (commit point), flush
// the in-place data, then clear the log.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	n := t.head - logHeaderSize
	payload := make([]byte, n)
	t.log.acc.ReadBytes(logHeaderSize, payload)
	t.log.acc.PutUint32(4, uint32(n))
	t.log.acc.PutUint32(8, crc32.ChecksumIEEE(payload))
	t.log.acc.PutUint32(12, t.count)
	t.log.acc.PutUint32(0, logStateCommitted)
	//ntalint:ignore publishcheck redo-log commit: sealing the log header IS the commit point; the in-place flushes after it are replayable from the sealed log.
	if err := t.log.acc.Flush(0, logHeaderSize); err != nil {
		return err
	}
	if err := t.log.acc.Device().Drain(); err != nil {
		return err
	}
	for _, s := range t.touched {
		if err := t.pool.acc.Flush(s.off, s.n); err != nil {
			return err
		}
	}
	if err := t.pool.dev.Drain(); err != nil {
		return err
	}
	return t.log.format()
}

// Abort discards the transaction.  In-place writes remain in the volatile
// image but are never persisted; callers that abort must treat the affected
// structures as dirty, exactly as with an aborted libpmemobj transaction
// whose DRAM mirror diverged.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	return t.log.format()
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}
