package pmem

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
	"testing/quick"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// must fails the test on a persistence-path error; used where the call's
// effect, not its error, is under test.
func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func newTestPool(t *testing.T, size int64) (*Pool, *nvm.SimDevice) {
	t.Helper()
	dev := nvm.New(nvm.KindNVM, size)
	p, err := Create(dev, Options{LogCap: 4096})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return p, dev
}

func TestCreateOpenRoundTrip(t *testing.T) {
	p, dev := newTestPool(t, 1<<20)
	a, err := p.Alloc(100, 8)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	a.PutUint64(0, 424242)
	if err := p.SetRoot(0, a.Base()); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	if err := p.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	if err := dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	p2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if p2.Phase() != 1 {
		t.Errorf("Phase = %d, want 1", p2.Phase())
	}
	off, err := p2.Root(0)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	got := p2.AccessorAt(off, 100)
	if v := got.Uint64(0); v != 424242 {
		t.Errorf("root value = %d", v)
	}
	if p2.Allocated() != p.Allocated() {
		t.Errorf("allocated watermark %d != %d", p2.Allocated(), p.Allocated())
	}
}

func TestOpenNoPool(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<16)
	if _, err := Open(dev); !errors.Is(err, ErrNoPool) {
		t.Errorf("Open on empty device: %v", err)
	}
}

func TestOpenCorruptHeader(t *testing.T) {
	_, dev := newTestPool(t, 1<<16)
	// Flip a bit inside the checksummed region.
	var b [1]byte
	dev.ReadAt(b[:], offTop)
	b[0] ^= 0xff
	dev.WriteAt(b[:], offTop)
	must(t, dev.Flush(0, headerSize))
	must(t, dev.Drain())
	must(t, dev.Crash())
	if _, err := Open(dev); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open with corrupt header: %v", err)
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	p, _ := newTestPool(t, 1<<16)
	a, err := p.Alloc(10, 64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a.Base()%64 != 0 {
		t.Errorf("base %d not 64-aligned", a.Base())
	}
	b, _ := p.Alloc(10, 64)
	if b.Base()%64 != 0 || b.Base() <= a.Base() {
		t.Errorf("second alloc base %d", b.Base())
	}
	if _, err := p.Alloc(1<<20, 1); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("oversized alloc: %v", err)
	}
	if _, err := p.Alloc(-1, 1); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestAllocZeroed(t *testing.T) {
	p, dev := newTestPool(t, 1<<18)
	// Dirty the device first so zeroing is observable.
	junk := bytes.Repeat([]byte{0xaa}, 1<<17)
	dev.WriteAt(junk, p.Allocated())
	a, err := p.AllocZeroed(100_000, 8)
	if err != nil {
		t.Fatalf("AllocZeroed: %v", err)
	}
	buf := make([]byte, 100_000)
	a.ReadBytes(0, buf)
	for i, c := range buf {
		if c != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, c)
		}
	}
}

func TestResetReclaims(t *testing.T) {
	p, _ := newTestPool(t, 1<<16)
	before := p.Allocated()
	p.Alloc(1000, 1)
	p.Reset()
	if p.Allocated() != before {
		t.Errorf("after reset allocated = %d, want %d", p.Allocated(), before)
	}
}

func TestRootSlotBounds(t *testing.T) {
	p, _ := newTestPool(t, 1<<16)
	if err := p.SetRoot(-1, 0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("SetRoot(-1): %v", err)
	}
	if err := p.SetRoot(rootSlots, 0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("SetRoot(max): %v", err)
	}
	if _, err := p.Root(rootSlots); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Root(max): %v", err)
	}
}

func TestPhaseLevelCrashRevertsToCheckpoint(t *testing.T) {
	p, dev := newTestPool(t, 1<<20)
	a, _ := p.Alloc(64, 8)
	a.PutUint64(0, 1)
	p.SetRoot(0, a.Base())
	if err := p.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Phase 2 work, never checkpointed.
	b, _ := p.Alloc(64, 8)
	b.PutUint64(0, 2)
	a.PutUint64(0, 99) // overwrite phase-1 data without flushing

	must(t, dev.Crash())
	p2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if p2.Phase() != 1 {
		t.Errorf("recovered phase = %d", p2.Phase())
	}
	off, _ := p2.Root(0)
	if v := p2.AccessorAt(off, 64).Uint64(0); v != 1 {
		t.Errorf("phase-1 data = %d, want 1 (unflushed overwrite must vanish)", v)
	}
	// The phase-2 allocation is reclaimed: the watermark reverted.
	if p2.Allocated() != off+64 {
		t.Errorf("watermark = %d, want %d", p2.Allocated(), off+64)
	}
}

func TestCheckpointEpochIncrements(t *testing.T) {
	p, _ := newTestPool(t, 1<<16)
	if p.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", p.Epoch())
	}
	must(t, p.Checkpoint(1))
	must(t, p.Checkpoint(2))
	if p.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", p.Epoch())
	}
	if p.Phase() != 2 {
		t.Errorf("phase = %d, want 2", p.Phase())
	}
}

func TestTxCommitDurable(t *testing.T) {
	p, dev := newTestPool(t, 1<<20)
	a, _ := p.Alloc(128, 8)
	p.SetRoot(0, a.Base())
	must(t, p.Checkpoint(1))

	tx, err := p.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := tx.WriteUint64(a.Base(), 777); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.WriteUint32(a.Base()+8, 888); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	must(t, dev.Crash())
	p2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	off, _ := p2.Root(0)
	acc := p2.AccessorAt(off, 128)
	if v := acc.Uint64(0); v != 777 {
		t.Errorf("committed u64 = %d", v)
	}
	if v := acc.Uint32(8); v != 888 {
		t.Errorf("committed u32 = %d", v)
	}
}

func TestTxCrashBeforeCommitLosesWrites(t *testing.T) {
	p, dev := newTestPool(t, 1<<20)
	a, _ := p.Alloc(128, 8)
	a.PutUint64(0, 1)
	p.SetRoot(0, a.Base())
	must(t, p.Checkpoint(1))

	tx, _ := p.Begin()
	tx.WriteUint64(a.Base(), 666)
	// No commit: crash now.
	must(t, dev.Crash())
	p2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	off, _ := p2.Root(0)
	if v := p2.AccessorAt(off, 128).Uint64(0); v != 1 {
		t.Errorf("uncommitted tx leaked: %d", v)
	}
}

func TestTxRecoveryReplaysCommittedLog(t *testing.T) {
	// Simulate a crash after the commit point but before the in-place data
	// flush: commit the log header manually, then crash.
	p, dev := newTestPool(t, 1<<20)
	a, _ := p.Alloc(128, 8)
	a.PutUint64(0, 1)
	p.SetRoot(0, a.Base())
	must(t, p.Checkpoint(1))

	tx, _ := p.Begin()
	if err := tx.WriteUint64(a.Base(), 555); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Seal the log exactly as Commit does, then "crash" before data flush.
	n := tx.head - logHeaderSize
	payload := make([]byte, n)
	tx.log.acc.ReadBytes(logHeaderSize, payload)
	tx.log.acc.PutUint32(4, uint32(n))
	tx.log.acc.PutUint32(8, crc32ChecksumIEEE(payload))
	tx.log.acc.PutUint32(12, tx.count)
	tx.log.acc.PutUint32(0, logStateCommitted)
	if err := tx.log.acc.Flush(0, logHeaderSize+n); err != nil {
		t.Fatalf("flush log: %v", err)
	}
	if err := dev.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	must(t, dev.Crash())

	p2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	off, _ := p2.Root(0)
	if v := p2.AccessorAt(off, 128).Uint64(0); v != 555 {
		t.Errorf("redo replay missing: %d, want 555", v)
	}
}

func TestTxUseAfterDone(t *testing.T) {
	p, _ := newTestPool(t, 1<<20)
	a, _ := p.Alloc(16, 8)
	tx, _ := p.Begin()
	tx.WriteUint32(a.Base(), 1)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := tx.WriteUint32(a.Base(), 2); !errors.Is(err, ErrTxDone) {
		t.Errorf("write after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	tx2, _ := p.Begin()
	if err := tx2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := tx2.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double abort: %v", err)
	}
}

func TestTxLogFull(t *testing.T) {
	p, _ := newTestPool(t, 1<<20)
	a, _ := p.Alloc(8192, 8)
	tx, _ := p.Begin()
	big := make([]byte, 8000) // log cap is 4096
	if err := tx.Write(a.Base(), big); !errors.Is(err, ErrLogFull) {
		t.Errorf("oversize tx write: %v", err)
	}
}

func TestTxWriteAmplification(t *testing.T) {
	// The operation-level strategy must write strictly more bytes to the
	// device than the logical payload — that is the paper's Fig 5b effect.
	p, dev := newTestPool(t, 1<<20)
	a, _ := p.Alloc(4096, 8)
	dev.ResetStats()
	tx, _ := p.Begin()
	payload := make([]byte, 1024)
	tx.Write(a.Base(), payload)
	must(t, tx.Commit())
	if w := dev.Stats().BytesWritten; w < 2*1024 {
		t.Errorf("bytes written = %d, want >= 2x payload (log + in place)", w)
	}
}

func TestQuickPoolAllocDisjoint(t *testing.T) {
	// Property: allocations never overlap and stay in bounds.
	f := func(sizes []uint16) bool {
		p, _ := newTestPool(t, 1<<22)
		type region struct{ off, n int64 }
		var regions []region
		for _, s := range sizes {
			n := int64(s%2048) + 1
			a, err := p.Alloc(n, 8)
			if err != nil {
				return errors.Is(err, ErrOutOfSpace)
			}
			for _, r := range regions {
				if a.Base() < r.off+r.n && r.off < a.Base()+n {
					return false // overlap
				}
			}
			regions = append(regions, region{a.Base(), n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickTxDurability(t *testing.T) {
	// Property: after Commit and Crash, all transaction writes are visible.
	f := func(vals []uint32) bool {
		if len(vals) > 100 {
			vals = vals[:100]
		}
		dev := nvm.New(nvm.KindNVM, 1<<20)
		p, err := Create(dev, Options{LogCap: 8192})
		if err != nil {
			return false
		}
		a, err := p.Alloc(int64(len(vals)+1)*4, 8)
		if err != nil {
			return false
		}
		p.SetRoot(0, a.Base())
		must(t, p.Checkpoint(1))
		tx, _ := p.Begin()
		for i, v := range vals {
			if err := tx.WriteUint32(a.Base()+int64(i)*4, v); err != nil {
				return false
			}
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		must(t, dev.Crash())
		p2, err := Open(dev)
		if err != nil {
			return false
		}
		off, _ := p2.Root(0)
		acc := p2.AccessorAt(off, int64(len(vals)+1)*4)
		for i, v := range vals {
			if acc.Uint32(int64(i)*4) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// crc32ChecksumIEEE matches the production checksum.
func crc32ChecksumIEEE(p []byte) uint32 {
	return crc32.ChecksumIEEE(p)
}

func TestTruncateReleasesScratch(t *testing.T) {
	p, _ := newTestPool(t, 1<<16)
	base := p.Allocated()
	p.Alloc(1000, 8)
	mark := p.Allocated()
	p.Alloc(2000, 8)
	if err := p.Truncate(mark); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if p.Allocated() != mark {
		t.Errorf("allocated = %d, want %d", p.Allocated(), mark)
	}
	// Below the reserved region or above the watermark is rejected.
	if err := p.Truncate(base - 1); err == nil {
		t.Error("truncate below reserved region accepted")
	}
	if err := p.Truncate(mark + 10_000); err == nil {
		t.Error("truncate above watermark accepted")
	}
}
