package tadoc

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// corpus builds a small redundant corpus, its dictionary, and grammar.
func corpus(t testing.TB, seed int64, nFiles, tokens, vocab int) ([][]uint32, *dict.Dictionary, *cfg.Grammar) {
	t.Helper()
	spec := datagen.Spec{
		Name: "t", Seed: seed, Files: nFiles, TokensPer: tokens, Vocab: vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return files, d, g
}

func newEngine(t testing.TB, g *cfg.Grammar, d *dict.Dictionary, s Strategy) *Engine {
	t.Helper()
	e, err := New(g, d, s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// Full per-task reference coverage for both strategies lives in the
// cross-executor differential test (internal/analytics/differential_test.go).

func TestAutoStrategySelection(t *testing.T) {
	_, d, gFew := corpus(t, 1, 2, 100, 20)
	e := newEngine(t, gFew, d, Auto)
	if e.effectiveStrategy() != TopDown {
		t.Errorf("few files: auto = %v", e.effectiveStrategy())
	}
	_, d2, gMany := corpus(t, 2, 600, 30, 20)
	e2 := newEngine(t, gMany, d2, Auto)
	if e2.effectiveStrategy() != BottomUp {
		t.Errorf("many files: auto = %v", e2.effectiveStrategy())
	}
}

func TestNewRejectsInvalidGrammar(t *testing.T) {
	bad := &cfg.Grammar{Rules: [][]cfg.Symbol{{cfg.Rule(9)}}, NumWords: 1}
	if _, err := New(bad, dict.New(), Auto); err == nil {
		t.Error("expected validation error")
	}
}

func TestDRAMBytesGrowsWithCaching(t *testing.T) {
	_, d, g := corpus(t, 3, 4, 300, 40)
	e := newEngine(t, g, d, BottomUp)
	base := e.DRAMBytes()
	if base <= 0 {
		t.Fatalf("base DRAM estimate %d", base)
	}
	e.WordCount()
	e.TermVectors(5)
	e.SequenceCount()
	grown := e.DRAMBytes()
	if grown <= base {
		t.Errorf("DRAM estimate did not grow: %d -> %d", base, grown)
	}
}

func TestEmptyCorpus(t *testing.T) {
	g, err := sequitur.Infer(nil, 1)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, dict.New(), Auto)
	wc, err := e.WordCount()
	if err != nil || len(wc) != 0 {
		t.Errorf("WordCount on empty = %v, %v", wc, err)
	}
	sc, err := e.SequenceCount()
	if err != nil || len(sc) != 0 {
		t.Errorf("SequenceCount on empty = %v, %v", sc, err)
	}
}

func TestSingleWordFiles(t *testing.T) {
	files := [][]uint32{{0}, {0}, {1}}
	d := dict.New()
	d.Intern("a")
	d.Intern("b")
	g, err := sequitur.Infer(files, 2)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, TopDown)
	inv, err := e.InvertedIndex()
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	want := map[uint32][]uint32{0: {0, 1}, 1: {2}}
	if !reflect.DeepEqual(inv, want) {
		t.Errorf("InvertedIndex = %v", inv)
	}
	// Files shorter than SeqLen yield no sequences.
	sc, _ := e.SequenceCount()
	if len(sc) != 0 {
		t.Errorf("SequenceCount = %v", sc)
	}
}

func TestSortU32(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 10, 24, 25, 100, 1000} {
		s := make([]uint32, n)
		for i := range s {
			s[i] = uint32(r.Intn(50))
		}
		sortU32(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}
