// Package tadoc implements the original TADOC analytics engine on DRAM: the
// paper's theoretical efficiency upper bound (Fig 6).  The grammar and every
// intermediate structure live in ordinary Go memory; analytics are DAG
// traversals exactly as in the VLDB'18/VLDBJ'21 TADOC papers, with both the
// top-down (weight propagation) and bottom-up (word-list merging) traversal
// strategies and the head/tail structures for sequence tasks.  Tasks plug in
// as analytics.Op folds; RunOps shares each traversal among every op in a
// batch that needs it.
package tadoc

import (
	"slices"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// Strategy selects the traversal direction for per-file tasks (§VI-E).
type Strategy int

// Traversal strategies.
const (
	// Auto picks bottom-up when the corpus has many files, top-down
	// otherwise, mirroring the paper's per-dataset choices.
	Auto Strategy = iota
	// TopDown propagates weights from the root: efficient for few files.
	TopDown
	// BottomUp merges word lists upward: efficient for many files.
	BottomUp
)

// autoFileThreshold is the file count above which Auto selects BottomUp.
const autoFileThreshold = 500

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TopDown:
		return "top-down"
	case BottomUp:
		return "bottom-up"
	default:
		return "auto"
	}
}

// Engine is the DRAM TADOC engine.  It implements analytics.Engine and
// analytics.Executor.
type Engine struct {
	g        *cfg.Grammar
	d        *dict.Dictionary
	strategy Strategy
	meter    metrics.Meter

	// Cached preprocessing, built lazily.
	weights []uint64
	lists   []map[uint32]uint64
	infos   []*analytics.SeqInfo
	segs    [][]cfg.Symbol
}

var (
	_ analytics.Engine   = (*Engine)(nil)
	_ analytics.Executor = (*Engine)(nil)
)

// New creates an engine over a validated grammar.
func New(g *cfg.Grammar, d *dict.Dictionary, strategy Strategy) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Engine{g: g, d: d, strategy: strategy}, nil
}

// effectiveStrategy resolves Auto against the corpus shape.
func (e *Engine) effectiveStrategy() Strategy {
	if e.strategy != Auto {
		return e.strategy
	}
	if e.g.NumFiles > autoFileThreshold {
		return BottomUp
	}
	return TopDown
}

func (e *Engine) ensureWeights() error {
	if e.weights != nil {
		return nil
	}
	w, err := analytics.RuleWeights(e.g)
	if err != nil {
		return err
	}
	e.meter.Charge(e.bodySymbols(), metrics.CostScanToken)
	e.weights = w
	return nil
}

func (e *Engine) ensureLists() error {
	if e.lists != nil {
		return nil
	}
	l, err := analytics.RuleWordLists(e.g)
	if err != nil {
		return err
	}
	// Charge the bottom-up merge work: every subrule occurrence merges its
	// full word list into the parent.
	var mergeOps int64
	for _, body := range e.g.Rules {
		for _, s := range body {
			switch {
			case s.IsWord():
				mergeOps++
			case s.IsRule():
				mergeOps += int64(len(l[s.RuleIndex()]))
			}
		}
	}
	e.meter.Charge(mergeOps, metrics.CostMergeEntry)
	e.lists = l
	return nil
}

func (e *Engine) ensureInfos() error {
	if e.infos != nil {
		return nil
	}
	i, err := analytics.ComputeSeqInfo(e.g)
	if err != nil {
		return err
	}
	var mergeOps int64
	for _, body := range e.g.Rules {
		for _, s := range body {
			if s.IsRule() {
				mergeOps += int64(len(i[s.RuleIndex()].Counts))
			}
		}
	}
	e.meter.Charge(mergeOps, metrics.CostMergeEntry)
	e.meter.Charge(e.bodySymbols(), metrics.CostScanToken)
	e.infos = i
	return nil
}

func (e *Engine) segments() [][]cfg.Symbol {
	if e.segs == nil {
		e.segs = analytics.FileSegments(e.g)
	}
	return e.segs
}

// opEnv adapts the engine to analytics.Env.
type opEnv struct {
	e  *Engine
	si *analytics.SeqInterner
}

func (v opEnv) Dict() *dict.Dictionary       { return v.e.d }
func (v opEnv) NumFiles() int                { return len(v.e.segments()) }
func (v opEnv) SeqOf(k uint64) analytics.Seq { return v.si.SeqOf(k) }
func (v opEnv) Charge(n, perOp int64)        { v.e.meter.Charge(n, perOp) }

// globalWordCounts runs the top-down weight propagation (Figure 1e's worked
// example), the single walk behind every global word-keyed op.
func (e *Engine) globalWordCounts() (map[uint32]uint64, error) {
	if err := e.ensureWeights(); err != nil {
		return nil, err
	}
	out := make(map[uint32]uint64)
	for ri, body := range e.g.Rules {
		w := e.weights[ri]
		if w == 0 {
			continue
		}
		e.meter.Charge(int64(len(body)), metrics.CostScanToken)
		for _, s := range body {
			if s.IsWord() {
				e.meter.Charge(1, metrics.CostHashOp)
				out[s.WordID()] += w
			}
		}
	}
	return out, nil
}

// fileWordCounts computes per-file word frequencies with the configured
// traversal strategy.
func (e *Engine) fileWordCounts() ([]map[uint32]uint64, error) {
	switch e.effectiveStrategy() {
	case BottomUp:
		return e.fileWordCountsBottomUp()
	default:
		return e.fileWordCountsTopDown()
	}
}

// fileWordCountsBottomUp merges the cached per-rule word lists at the top
// level of each file segment: O(DAG + files x segment).
func (e *Engine) fileWordCountsBottomUp() ([]map[uint32]uint64, error) {
	if err := e.ensureLists(); err != nil {
		return nil, err
	}
	segs := e.segments()
	out := make([]map[uint32]uint64, len(segs))
	for fi, seg := range segs {
		counts := make(map[uint32]uint64)
		for _, s := range seg {
			switch {
			case s.IsWord():
				e.meter.Charge(1, metrics.CostHashOp)
				counts[s.WordID()]++
			case s.IsRule():
				e.meter.Charge(int64(len(e.lists[s.RuleIndex()])), metrics.CostMergeEntry)
				for w, c := range e.lists[s.RuleIndex()] {
					counts[w] += c
				}
			}
		}
		out[fi] = counts
	}
	return out, nil
}

// fileWordCountsTopDown traverses the DAG once per file, propagating weights
// through the file's reachable subgraph: O(files x DAG), the strategy the
// paper shows collapsing on many-file datasets (§VI-E).
func (e *Engine) fileWordCountsTopDown() ([]map[uint32]uint64, error) {
	order, err := e.g.TopoOrder()
	if err != nil {
		return nil, err
	}
	segs := e.segments()
	out := make([]map[uint32]uint64, len(segs))
	weight := make([]uint64, len(e.g.Rules))
	for fi, seg := range segs {
		counts := make(map[uint32]uint64)
		e.meter.Charge(int64(len(seg)), metrics.CostScanToken)
		for _, s := range seg {
			switch {
			case s.IsWord():
				counts[s.WordID()]++
			case s.IsRule():
				weight[s.RuleIndex()]++
			}
		}
		// Propagate weights down the whole DAG in topological order; the
		// full sweep per file is precisely the top-down cost profile.
		e.meter.Charge(int64(len(order)), metrics.CostScanToken) // per-rule sweep check
		for _, ri := range order {
			w := weight[ri]
			if w == 0 {
				continue
			}
			e.meter.Charge(int64(len(e.g.Rules[ri])), metrics.CostScanToken)
			for _, s := range e.g.Rules[ri] {
				switch {
				case s.IsWord():
					e.meter.Charge(1, metrics.CostHashOp)
					counts[s.WordID()] += w
				case s.IsRule():
					weight[s.RuleIndex()] += w
				}
			}
			weight[ri] = 0 // reset for the next file
		}
		out[fi] = counts
	}
	return out, nil
}

// RunOps implements analytics.Executor: ops sharing a traversal requirement
// (global word walk, per-file word counts, sequence summaries) are fed from
// one computation of it.
func (e *Engine) RunOps(ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	env := opEnv{e: e, si: &analytics.SeqInterner{}}
	folds := make([]analytics.Fold, len(ops))
	var globalWord, globalSeq, fileWord, fileSeq []int
	for i, op := range ops {
		folds[i] = op.NewFold(env)
		switch {
		case op.Scope() == analytics.ScopeGlobal && op.Keys() == analytics.KeyWords:
			globalWord = append(globalWord, i)
		case op.Scope() == analytics.ScopeGlobal:
			globalSeq = append(globalSeq, i)
		case op.Keys() == analytics.KeyWords:
			fileWord = append(fileWord, i)
		default:
			fileSeq = append(fileSeq, i)
		}
	}

	if len(globalWord) > 0 {
		counts, err := e.globalWordCounts()
		if err != nil {
			return nil, err
		}
		view := analytics.WordMapCounts(counts)
		for _, i := range globalWord {
			if err := folds[i].Global(view); err != nil {
				return nil, err
			}
		}
	}
	if len(globalSeq)+len(fileSeq) > 0 {
		if err := e.ensureInfos(); err != nil {
			return nil, err
		}
	}
	if len(globalSeq) > 0 {
		// The root's cumulative sequence summary is the global result.
		e.meter.Charge(int64(len(e.infos[0].Counts)), metrics.CostSeqOp)
		view := env.si.Counts(e.infos[0].Counts)
		for _, i := range globalSeq {
			if err := folds[i].Global(view); err != nil {
				return nil, err
			}
		}
	}
	if len(fileWord) > 0 {
		perFile, err := e.fileWordCounts()
		if err != nil {
			return nil, err
		}
		for doc, counts := range perFile {
			view := analytics.WordMapCounts(counts)
			for _, i := range fileWord {
				if err := folds[i].File(uint32(doc), view); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(fileSeq) > 0 {
		for fi, seg := range e.segments() {
			segCounts := analytics.SegmentSeqCounts(seg, e.infos)
			// SegmentSeqCounts merges each top-level rule's count table plus
			// the spanning-window walk.
			var mergeOps int64
			for _, s := range seg {
				if s.IsRule() {
					mergeOps += int64(len(e.infos[s.RuleIndex()].Counts))
				}
			}
			e.meter.Charge(mergeOps+int64(len(seg)), metrics.CostMergeEntry)
			view := env.si.Counts(segCounts)
			for _, i := range fileSeq {
				if err := folds[i].File(uint32(fi), view); err != nil {
					return nil, err
				}
			}
		}
	}

	results := make([]any, len(ops))
	for i := range ops {
		var err error
		if results[i], err = folds[i].Finish(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunOp implements analytics.Executor.
func (e *Engine) RunOp(op analytics.Op) (any, error) {
	results, err := e.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// WordCount implements analytics.Engine.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	return analytics.RunAs[map[uint32]uint64](e, analytics.WordCountOp{})
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	return analytics.RunAs[[]analytics.WordFreq](e, analytics.SortOp{})
}

// TermVectors implements analytics.Engine.
func (e *Engine) TermVectors(k int) ([][]analytics.WordFreq, error) {
	return analytics.RunAs[[][]analytics.WordFreq](e, analytics.TermVectorsOp{K: k})
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	return analytics.RunAs[map[uint32][]uint32](e, analytics.InvertedIndexOp{})
}

// SequenceCount implements analytics.Engine.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	return analytics.RunAs[map[analytics.Seq]uint64](e, analytics.SequenceCountOp{})
}

// RankedInvertedIndex implements analytics.Engine.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	return analytics.RunAs[map[analytics.Seq][]analytics.DocFreq](e, analytics.RankedInvertedIndexOp{})
}

// DRAMBytes estimates the engine's resident DRAM: the grammar plus every
// cached intermediate structure.  This is the minuend of the paper's §VI-C
// space-savings computation.
func (e *Engine) DRAMBytes() int64 {
	var total int64
	for _, body := range e.g.Rules {
		total += metrics.SliceBytes(len(body), 4)
	}
	total += metrics.SliceBytes(len(e.weights), 8)
	for _, l := range e.lists {
		total += metrics.MapBytes(len(l), 4, 8)
	}
	for _, si := range e.infos {
		if si == nil {
			continue
		}
		total += metrics.MapBytes(len(si.Counts), 12, 8)
		total += metrics.SliceBytes(len(si.Edge), 4)
	}
	return total
}

// Grammar exposes the engine's grammar for harness reporting.
func (e *Engine) Grammar() *cfg.Grammar { return e.g }

// bodySymbols returns the total symbol count across rule bodies.
func (e *Engine) bodySymbols() int64 {
	var n int64
	for _, body := range e.g.Rules {
		n += int64(len(body))
	}
	return n
}

// Meter exposes the engine's modeled CPU meter for measurement.
func (e *Engine) Meter() *metrics.Meter { return &e.meter }

func sortU32(s []uint32) {
	slices.Sort(s)
}
