// Package tadoc implements the original TADOC analytics engine on DRAM: the
// paper's theoretical efficiency upper bound (Fig 6).  The grammar and every
// intermediate structure live in ordinary Go memory; analytics are DAG
// traversals exactly as in the VLDB'18/VLDBJ'21 TADOC papers, with both the
// top-down (weight propagation) and bottom-up (word-list merging) traversal
// strategies and the head/tail structures for sequence tasks.
package tadoc

import (
	"slices"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// Strategy selects the traversal direction for per-file tasks (§VI-E).
type Strategy int

// Traversal strategies.
const (
	// Auto picks bottom-up when the corpus has many files, top-down
	// otherwise, mirroring the paper's per-dataset choices.
	Auto Strategy = iota
	// TopDown propagates weights from the root: efficient for few files.
	TopDown
	// BottomUp merges word lists upward: efficient for many files.
	BottomUp
)

// autoFileThreshold is the file count above which Auto selects BottomUp.
const autoFileThreshold = 500

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TopDown:
		return "top-down"
	case BottomUp:
		return "bottom-up"
	default:
		return "auto"
	}
}

// Engine is the DRAM TADOC engine.  It implements analytics.Engine.
type Engine struct {
	g        *cfg.Grammar
	d        *dict.Dictionary
	strategy Strategy
	meter    metrics.Meter

	// Cached preprocessing, built lazily.
	weights []uint64
	lists   []map[uint32]uint64
	infos   []*analytics.SeqInfo
	segs    [][]cfg.Symbol
}

var _ analytics.Engine = (*Engine)(nil)

// New creates an engine over a validated grammar.
func New(g *cfg.Grammar, d *dict.Dictionary, strategy Strategy) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Engine{g: g, d: d, strategy: strategy}, nil
}

// effectiveStrategy resolves Auto against the corpus shape.
func (e *Engine) effectiveStrategy() Strategy {
	if e.strategy != Auto {
		return e.strategy
	}
	if e.g.NumFiles > autoFileThreshold {
		return BottomUp
	}
	return TopDown
}

func (e *Engine) ensureWeights() error {
	if e.weights != nil {
		return nil
	}
	w, err := analytics.RuleWeights(e.g)
	if err != nil {
		return err
	}
	e.meter.Charge(e.bodySymbols(), metrics.CostScanToken)
	e.weights = w
	return nil
}

func (e *Engine) ensureLists() error {
	if e.lists != nil {
		return nil
	}
	l, err := analytics.RuleWordLists(e.g)
	if err != nil {
		return err
	}
	// Charge the bottom-up merge work: every subrule occurrence merges its
	// full word list into the parent.
	var mergeOps int64
	for _, body := range e.g.Rules {
		for _, s := range body {
			switch {
			case s.IsWord():
				mergeOps++
			case s.IsRule():
				mergeOps += int64(len(l[s.RuleIndex()]))
			}
		}
	}
	e.meter.Charge(mergeOps, metrics.CostMergeEntry)
	e.lists = l
	return nil
}

func (e *Engine) ensureInfos() error {
	if e.infos != nil {
		return nil
	}
	i, err := analytics.ComputeSeqInfo(e.g)
	if err != nil {
		return err
	}
	var mergeOps int64
	for _, body := range e.g.Rules {
		for _, s := range body {
			if s.IsRule() {
				mergeOps += int64(len(i[s.RuleIndex()].Counts))
			}
		}
	}
	e.meter.Charge(mergeOps, metrics.CostMergeEntry)
	e.meter.Charge(e.bodySymbols(), metrics.CostScanToken)
	e.infos = i
	return nil
}

func (e *Engine) segments() [][]cfg.Symbol {
	if e.segs == nil {
		e.segs = analytics.FileSegments(e.g)
	}
	return e.segs
}

// WordCount implements analytics.Engine via top-down weight propagation
// (Figure 1e's worked example).
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	if err := e.ensureWeights(); err != nil {
		return nil, err
	}
	out := make(map[uint32]uint64)
	for ri, body := range e.g.Rules {
		w := e.weights[ri]
		if w == 0 {
			continue
		}
		e.meter.Charge(int64(len(body)), metrics.CostScanToken)
		for _, s := range body {
			if s.IsWord() {
				e.meter.Charge(1, metrics.CostHashOp)
				out[s.WordID()] += w
			}
		}
	}
	return out, nil
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	counts, err := e.WordCount()
	if err != nil {
		return nil, err
	}
	out := make([]analytics.WordFreq, 0, len(counts))
	for w, c := range counts {
		out = append(out, analytics.WordFreq{Word: w, Freq: c})
	}
	e.meter.Charge(int64(len(out)), metrics.CostHashOp+metrics.CostSortEntry)
	analytics.SortAlphabetical(out, e.d)
	return out, nil
}

// fileWordCounts computes per-file word frequencies with the configured
// traversal strategy.
func (e *Engine) fileWordCounts() ([]map[uint32]uint64, error) {
	switch e.effectiveStrategy() {
	case BottomUp:
		return e.fileWordCountsBottomUp()
	default:
		return e.fileWordCountsTopDown()
	}
}

// fileWordCountsBottomUp merges the cached per-rule word lists at the top
// level of each file segment: O(DAG + files x segment).
func (e *Engine) fileWordCountsBottomUp() ([]map[uint32]uint64, error) {
	if err := e.ensureLists(); err != nil {
		return nil, err
	}
	segs := e.segments()
	out := make([]map[uint32]uint64, len(segs))
	for fi, seg := range segs {
		counts := make(map[uint32]uint64)
		for _, s := range seg {
			switch {
			case s.IsWord():
				e.meter.Charge(1, metrics.CostHashOp)
				counts[s.WordID()]++
			case s.IsRule():
				e.meter.Charge(int64(len(e.lists[s.RuleIndex()])), metrics.CostMergeEntry)
				for w, c := range e.lists[s.RuleIndex()] {
					counts[w] += c
				}
			}
		}
		out[fi] = counts
	}
	return out, nil
}

// fileWordCountsTopDown traverses the DAG once per file, propagating weights
// through the file's reachable subgraph: O(files x DAG), the strategy the
// paper shows collapsing on many-file datasets (§VI-E).
func (e *Engine) fileWordCountsTopDown() ([]map[uint32]uint64, error) {
	order, err := e.g.TopoOrder()
	if err != nil {
		return nil, err
	}
	segs := e.segments()
	out := make([]map[uint32]uint64, len(segs))
	weight := make([]uint64, len(e.g.Rules))
	for fi, seg := range segs {
		counts := make(map[uint32]uint64)
		e.meter.Charge(int64(len(seg)), metrics.CostScanToken)
		for _, s := range seg {
			switch {
			case s.IsWord():
				counts[s.WordID()]++
			case s.IsRule():
				weight[s.RuleIndex()]++
			}
		}
		// Propagate weights down the whole DAG in topological order; the
		// full sweep per file is precisely the top-down cost profile.
		e.meter.Charge(int64(len(order)), metrics.CostScanToken) // per-rule sweep check
		for _, ri := range order {
			w := weight[ri]
			if w == 0 {
				continue
			}
			e.meter.Charge(int64(len(e.g.Rules[ri])), metrics.CostScanToken)
			for _, s := range e.g.Rules[ri] {
				switch {
				case s.IsWord():
					e.meter.Charge(1, metrics.CostHashOp)
					counts[s.WordID()] += w
				case s.IsRule():
					weight[s.RuleIndex()] += w
				}
			}
			weight[ri] = 0 // reset for the next file
		}
		out[fi] = counts
	}
	return out, nil
}

// TermVector implements analytics.Engine.
func (e *Engine) TermVector(k int) ([][]analytics.WordFreq, error) {
	perFile, err := e.fileWordCounts()
	if err != nil {
		return nil, err
	}
	out := make([][]analytics.WordFreq, len(perFile))
	for i, counts := range perFile {
		e.meter.Charge(int64(len(counts)), metrics.CostSortEntry)
		out[i] = analytics.TermVectorOf(counts, k)
	}
	return out, nil
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	perFile, err := e.fileWordCounts()
	if err != nil {
		return nil, err
	}
	out := make(map[uint32][]uint32)
	for doc, counts := range perFile {
		e.meter.Charge(int64(len(counts)), metrics.CostHashOp+metrics.CostSortEntry)
		for w := range counts {
			out[w] = append(out[w], uint32(doc))
		}
	}
	for w := range out {
		sortU32(out[w])
	}
	return out, nil
}

// SequenceCount implements analytics.Engine: the root's sequence summary is
// the global result.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	if err := e.ensureInfos(); err != nil {
		return nil, err
	}
	// Copy: callers may mutate the result.
	e.meter.Charge(int64(len(e.infos[0].Counts)), metrics.CostSeqOp)
	out := make(map[analytics.Seq]uint64, len(e.infos[0].Counts))
	for q, c := range e.infos[0].Counts {
		out[q] = c
	}
	return out, nil
}

// RankedInvertedIndex implements analytics.Engine.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	if err := e.ensureInfos(); err != nil {
		return nil, err
	}
	perDoc := make(map[analytics.Seq]map[uint32]uint64)
	for fi, seg := range e.segments() {
		segCounts := analytics.SegmentSeqCounts(seg, e.infos)
		// SegmentSeqCounts merges each top-level rule's count table plus
		// the spanning-window walk.
		var mergeOps int64
		for _, s := range seg {
			if s.IsRule() {
				mergeOps += int64(len(e.infos[s.RuleIndex()].Counts))
			}
		}
		e.meter.Charge(mergeOps+int64(len(seg)), metrics.CostMergeEntry)
		for q, c := range segCounts {
			e.meter.Charge(1, metrics.CostSeqOp)
			m := perDoc[q]
			if m == nil {
				m = make(map[uint32]uint64)
				perDoc[q] = m
			}
			m[uint32(fi)] += c
		}
	}
	out := make(map[analytics.Seq][]analytics.DocFreq, len(perDoc))
	for q, m := range perDoc {
		e.meter.Charge(int64(len(m)), metrics.CostSortEntry)
		out[q] = analytics.RankPostings(m)
	}
	return out, nil
}

// DRAMBytes estimates the engine's resident DRAM: the grammar plus every
// cached intermediate structure.  This is the minuend of the paper's §VI-C
// space-savings computation.
func (e *Engine) DRAMBytes() int64 {
	var total int64
	for _, body := range e.g.Rules {
		total += metrics.SliceBytes(len(body), 4)
	}
	total += metrics.SliceBytes(len(e.weights), 8)
	for _, l := range e.lists {
		total += metrics.MapBytes(len(l), 4, 8)
	}
	for _, si := range e.infos {
		if si == nil {
			continue
		}
		total += metrics.MapBytes(len(si.Counts), 12, 8)
		total += metrics.SliceBytes(len(si.Edge), 4)
	}
	return total
}

// Grammar exposes the engine's grammar for harness reporting.
func (e *Engine) Grammar() *cfg.Grammar { return e.g }

// bodySymbols returns the total symbol count across rule bodies.
func (e *Engine) bodySymbols() int64 {
	var n int64
	for _, body := range e.g.Rules {
		n += int64(len(body))
	}
	return n
}

// Meter exposes the engine's modeled CPU meter for measurement.
func (e *Engine) Meter() *metrics.Meter { return &e.meter }

func sortU32(s []uint32) {
	slices.Sort(s)
}
