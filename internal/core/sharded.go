package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// ShardedEngine is the scatter-gather coordinator over K independent shard
// engines.  Each shard owns a complete engine — its own grammar, simulated
// device, pmem pool, and (in operation-level mode) op log — making every
// shard an independent persistence and recovery domain.  Since the shard
// boundary is whole files, each shard's traversal is a complete run of the
// operation kernel over its slice of the corpus; the coordinator runs the
// shards in parallel goroutines and merges their results through the
// analytics.MergingFold capability (global ops combine counters key-wise;
// per-file ops concatenate with document indices offset by the shard base).
//
// Modeled time follows the parallel execution: a phase's Total is the
// critical path (the slowest shard) plus the coordinator's serial merge,
// while device statistics sum across shards (see metrics.MergeParallel).
type ShardedEngine struct {
	shards []*Engine
	bases  []uint32 // global index of each shard's first document
	nfiles uint32
	d      *dict.Dictionary

	meter    metrics.Meter // coordinator-side merge CPU
	initSpan metrics.Span

	mu       sync.Mutex
	lastTrav metrics.Span
}

// ErrShardMismatch reports a sharded device set whose pool stamps do not
// match the positions they were assembled in.
var ErrShardMismatch = errors.New("core: pool shard stamp does not match its position")

// NewSharded builds one engine per shard grammar concurrently and returns
// the coordinator.  Shard grammars come from sequitur.InferShards (or
// cfg.ReadShards); all shards share one dictionary.  Per-shard devices are
// created automatically, or injected via opts.ShardDevices; a file-backed
// opts.Path becomes one file per shard (path + ".shardN").
func NewSharded(gs []*cfg.Grammar, d *dict.Dictionary, opts Options) (*ShardedEngine, error) {
	if len(gs) == 0 {
		return nil, errEngine("new sharded", errors.New("no shard grammars"))
	}
	if opts.ShardDevices != nil && len(opts.ShardDevices) != len(gs) {
		return nil, errEngine("new sharded", fmt.Errorf("%d devices for %d shards",
			len(opts.ShardDevices), len(gs)))
	}
	se := &ShardedEngine{
		shards: make([]*Engine, len(gs)),
		bases:  make([]uint32, len(gs)),
		d:      d,
	}
	for i, g := range gs {
		se.bases[i] = se.nfiles
		se.nfiles += g.NumFiles
	}
	errs := make([]error, len(gs))
	var wg sync.WaitGroup
	for i, g := range gs {
		wg.Add(1)
		go func(i int, g *cfg.Grammar) {
			defer wg.Done()
			o := opts
			o.ShardIndex = uint32(i)
			o.ShardCount = uint32(len(gs))
			o.Device = nil
			o.ShardDevices = nil
			if opts.ShardDevices != nil {
				o.Device = opts.ShardDevices[i]
			}
			if o.Path != "" {
				o.Path = fmt.Sprintf("%s.shard%d", opts.Path, i)
			}
			se.shards[i], errs[i] = New(g, d, o)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Discard the devices this constructor created; injected devices
			// stay with the caller (the crash harness clones them after a
			// failed build, exactly like core.New with an injected Device).
			if opts.ShardDevices == nil {
				for _, sh := range se.shards {
					if sh != nil {
						sh.Close()
					}
				}
			}
			return nil, errEngine("new sharded", fmt.Errorf("shard %d: %w", i, err))
		}
	}
	spans := make([]metrics.Span, len(se.shards))
	for i, sh := range se.shards {
		spans[i] = sh.InitSpan()
	}
	se.initSpan = metrics.MergeParallel(spans...)
	return se, nil
}

// ReopenSharded recovers a sharded engine from its per-shard devices after
// a crash or restart: each shard recovers independently under the unsharded
// recovery contract (devs[i] carries shard i's pool).  Pool shard stamps
// are validated against the assembly order, so a reordered or foreign
// device set fails with ErrShardMismatch rather than silently merging the
// wrong documents.  Any shard whose initialization never completed fails
// the whole reopen with ErrNeedsReload (the caller rebuilds that shard from
// the compressed input); the per-shard infos of the shards examined so far
// are returned alongside the error's shard index in its message.
func ReopenSharded(devs []*nvm.SimDevice, d *dict.Dictionary, opts Options) (*ShardedEngine, []*RecoveryInfo, error) {
	if len(devs) == 0 {
		return nil, nil, errEngine("reopen sharded", errors.New("no shard devices"))
	}
	se := &ShardedEngine{
		shards: make([]*Engine, len(devs)),
		bases:  make([]uint32, len(devs)),
		d:      d,
	}
	infos := make([]*RecoveryInfo, 0, len(devs))
	for i, dev := range devs {
		o := opts
		o.Device = nil
		o.ShardDevices = nil
		o.ShardIndex = uint32(i)
		o.ShardCount = uint32(len(devs))
		e, info, err := Reopen(dev, d, o)
		if err != nil {
			return nil, infos, fmt.Errorf("core: reopen shard %d: %w", i, err)
		}
		if idx, cnt := e.pool.Shard(); idx != uint32(i) || cnt != uint32(len(devs)) {
			return nil, infos, fmt.Errorf("core: shard %d: %w: pool stamped %d of %d",
				i, ErrShardMismatch, idx, cnt)
		}
		// Build tags must agree across the set (and with the caller's
		// expectation, when it has one): positional stamps cannot tell shard
		// 1-of-4 of one unified build from shard 1-of-4 of another.
		if tag := e.pool.Tag(); opts.BuildTag != 0 && tag != opts.BuildTag {
			return nil, infos, fmt.Errorf("core: shard %d: %w: pool build tag %08x, want %08x",
				i, ErrShardMismatch, tag, opts.BuildTag)
		} else if i > 0 && tag != se.shards[0].pool.Tag() {
			return nil, infos, fmt.Errorf("core: shard %d: %w: pool build tag %08x differs from shard 0's %08x",
				i, ErrShardMismatch, tag, se.shards[0].pool.Tag())
		}
		se.shards[i] = e
		se.bases[i] = se.nfiles
		se.nfiles += e.numFiles
		infos = append(infos, info)
	}
	return se, infos, nil
}

// shardedEnv is the Env the coordinator offers merging folds: whole-corpus
// shape, coordinator-side CPU charging, no sequence-key resolution (shard
// results arrive already Seq-keyed).
type shardedEnv struct {
	d      *dict.Dictionary
	nfiles int
	meter  *metrics.Meter
}

func (e shardedEnv) Dict() *dict.Dictionary     { return e.d }
func (e shardedEnv) NumFiles() int              { return e.nfiles }
func (e shardedEnv) SeqOf(uint64) analytics.Seq { panic("core: merge env resolves no sequence keys") }
func (e shardedEnv) Charge(n, perOp int64)      { e.meter.Charge(n, perOp) }

// scatterGather runs the batch over the shards under a planned lane
// schedule — the fan-out planner packs shards onto parallel lanes from
// their estimated costs, so trivial shards share a lane instead of each
// paying dispatch overhead — then merges the per-shard results on meter's
// account.  The schedule is returned so callers can aggregate modeled spans
// the same way the work actually ran.
func (se *ShardedEngine) scatterGather(ops []analytics.Op,
	run func(shard int, ops []analytics.Op) ([]any, error),
	meter *metrics.Meter) ([]any, [][]int, error) {
	costs := make([]int64, len(se.shards))
	for i, sh := range se.shards {
		costs[i] = sh.planCost(len(ops))
	}
	lanes := planFanout(costs)
	outs := make([][]any, len(se.shards))
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for _, lane := range lanes {
		wg.Add(1)
		go func(lane []int) {
			defer wg.Done()
			for _, i := range lane {
				outs[i], errs[i] = run(i, ops)
			}
		}(lane)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	// Each dispatched lane charges the coordinator its scheduling and join
	// bookkeeping, the cost the fan-out planner weighs against parallelism.
	meter.Charge(int64(len(lanes)), laneDispatchCost)
	env := shardedEnv{d: se.d, nfiles: int(se.nfiles), meter: meter}
	results := make([]any, len(ops))
	for j, op := range ops {
		per := make([]any, len(se.shards))
		for i := range se.shards {
			per[i] = outs[i][j]
		}
		r, err := analytics.MergeShardResults(op, env, per, se.bases)
		if err != nil {
			return nil, nil, err
		}
		results[j] = r
	}
	return results, lanes, nil
}

// RunOps implements analytics.Executor: the batch executes fused on every
// shard concurrently, and the per-shard results are merged into corpus-wide
// results.  results[i] corresponds to ops[i] with the op's canonical result
// type, bit-identical to an unsharded engine over the same corpus.
func (se *ShardedEngine) RunOps(ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cpu0 := se.meter.Nanos()
	results, lanes, err := se.scatterGather(ops, func(i int, ops []analytics.Op) ([]any, error) {
		return se.shards[i].RunOps(ops)
	}, &se.meter)
	if err != nil {
		return nil, err
	}
	spans := make([]metrics.Span, len(se.shards))
	for i, sh := range se.shards {
		spans[i] = sh.LastTraversalSpan()
	}
	// Aggregate along the planned schedule: shards on one lane ran serially,
	// lanes in parallel, and the coordinator's merge extends the critical
	// path.
	trav := metrics.MergeScheduled(lanes, spans).AddSerial(se.meter.Nanos() - cpu0)
	se.mu.Lock()
	se.lastTrav = trav
	se.mu.Unlock()
	return results, nil
}

// RunOp implements analytics.Executor.
func (se *ShardedEngine) RunOp(op analytics.Op) (any, error) {
	results, err := se.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

var _ analytics.Executor = (*ShardedEngine)(nil)
var _ analytics.Engine = (*ShardedEngine)(nil)

// WordCount implements analytics.Engine.
func (se *ShardedEngine) WordCount() (map[uint32]uint64, error) {
	v, err := se.RunOp(analytics.WordCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32]uint64), nil
}

// Sort implements analytics.Engine.
func (se *ShardedEngine) Sort() ([]analytics.WordFreq, error) {
	v, err := se.RunOp(analytics.SortOp{})
	if err != nil {
		return nil, err
	}
	return v.([]analytics.WordFreq), nil
}

// TermVectors implements analytics.Engine.
func (se *ShardedEngine) TermVectors(k int) ([][]analytics.WordFreq, error) {
	v, err := se.RunOp(analytics.TermVectorsOp{K: k})
	if err != nil {
		return nil, err
	}
	return v.([][]analytics.WordFreq), nil
}

// InvertedIndex implements analytics.Engine.
func (se *ShardedEngine) InvertedIndex() (map[uint32][]uint32, error) {
	v, err := se.RunOp(analytics.InvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32][]uint32), nil
}

// SequenceCount implements analytics.Engine.
func (se *ShardedEngine) SequenceCount() (map[analytics.Seq]uint64, error) {
	v, err := se.RunOp(analytics.SequenceCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq]uint64), nil
}

// RankedInvertedIndex implements analytics.Engine.
func (se *ShardedEngine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	v, err := se.RunOp(analytics.RankedInvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq][]analytics.DocFreq), nil
}

// ShardedSession is a read-only query context over every shard: one session
// per shard engine, run in parallel and merged like the engine's task path,
// with all merge-side state session-local.  Sessions model the post-load
// query phase and must not run concurrently with engine task methods or
// Close, only with each other.
type ShardedSession struct {
	se       *ShardedEngine
	sessions []*Session
	meter    metrics.Meter
}

// NewSession opens one query session per shard.
func (se *ShardedEngine) NewSession() *ShardedSession {
	ss := &ShardedSession{se: se, sessions: make([]*Session, len(se.shards))}
	for i, sh := range se.shards {
		ss.sessions[i] = sh.NewSession()
	}
	return ss
}

// RunOps implements analytics.Executor over session-local state.
func (ss *ShardedSession) RunOps(ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results, _, err := ss.se.scatterGather(ops, func(i int, ops []analytics.Op) ([]any, error) {
		return ss.sessions[i].RunOps(ops)
	}, &ss.meter)
	return results, err
}

// RunOp implements analytics.Executor.
func (ss *ShardedSession) RunOp(op analytics.Op) (any, error) {
	results, err := ss.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

var _ analytics.Executor = (*ShardedSession)(nil)

// Meter reports the modeled CPU cost of this session's merge work; the
// per-shard traversal costs live on the shard sessions' meters.
func (ss *ShardedSession) Meter() *metrics.Meter { return &ss.meter }

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i's engine, for inspection and shard-local recovery
// checks; mutating it directly bypasses the coordinator.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// DocBases returns the global index of each shard's first document.
func (se *ShardedEngine) DocBases() []uint32 { return se.bases }

// InitSpan reports the parallel build: critical path across shards, summed
// device statistics.
func (se *ShardedEngine) InitSpan() metrics.Span { return se.initSpan }

// LastTraversalSpan reports the last scatter-gather: the slowest shard's
// traversal plus the coordinator's merge.
func (se *ShardedEngine) LastTraversalSpan() metrics.Span {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastTrav
}

// NVMBytes sums pool residency across shards.
func (se *ShardedEngine) NVMBytes() int64 {
	var n int64
	for _, sh := range se.shards {
		n += sh.NVMBytes()
	}
	return n
}

// DRAMBytes sums DRAM residency across shards.
func (se *ShardedEngine) DRAMBytes() int64 {
	var n int64
	for _, sh := range se.shards {
		n += sh.DRAMBytes()
	}
	return n
}

// DeviceStats sums device counters across the shard devices.
func (se *ShardedEngine) DeviceStats() nvm.Stats {
	var st nvm.Stats
	for _, sh := range se.shards {
		st = st.Add(sh.Device().Stats())
	}
	return st
}

// Close releases every shard's simulated device.
func (se *ShardedEngine) Close() error {
	var errs []error
	for i, sh := range se.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
