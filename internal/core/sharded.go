package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// ShardedEngine is the scatter-gather coordinator over K independent shard
// engines.  Each shard owns a complete engine — its own grammar, simulated
// device, pmem pool, and (in operation-level mode) op log — making every
// shard an independent persistence and recovery domain.  Since the shard
// boundary is whole files, each shard's traversal is a complete run of the
// operation kernel over its slice of the corpus; the coordinator runs the
// shards in parallel goroutines and merges their results through the
// analytics.MergingFold capability (global ops combine counters key-wise;
// per-file ops concatenate with document indices offset by the shard base).
//
// With Options.Replication, each shard additionally ships its drained
// commit stream to follower devices, and the scatter-gather path fails over
// when a primary dies mid-batch: the lane promotes a follower, recovers it
// under the unsharded recovery contract, re-dispatches the shard's ops, and
// the merged result stays bit-identical to the healthy run.
//
// Modeled time follows the parallel execution: a phase's Total is the
// critical path (the slowest shard) plus the coordinator's serial merge,
// while device statistics sum across shards (see metrics.MergeParallel).
type ShardedEngine struct {
	shards []*Engine
	bases  []uint32 // global index of each shard's first document
	nfiles uint32
	d      *dict.Dictionary

	// Failover state: the retained shard grammars (reload-path rebuilds;
	// nil after ReopenSharded, which has no grammars), the sanitized base
	// options recovery reuses, and one replicator per replicated shard.
	gs   []*cfg.Grammar
	opts Options
	reps []*replicator // guarded by failMu

	// Replica-read state: lazily recovered read engines over follower
	// images, one query session each.
	replicaReads bool
	replicas     []*Engine
	replicaSess  []*Session

	meter    metrics.Meter // coordinator-side merge CPU
	initSpan metrics.Span

	// failMu serializes failovers and guards the recovery bookkeeping; the
	// shards slice itself needs no lock — element i is only touched by the
	// lane that owns shard i, and the coordinator joins all lanes before
	// reading it.
	failMu        sync.Mutex
	failovers     int            // guarded by failMu
	failoverSpans []metrics.Span // guarded by failMu
	retiredEng    []*Engine      // guarded by failMu
	retiredReps   []*replicator  // guarded by failMu

	mu        sync.Mutex
	lastTrav  metrics.Span // guarded by mu
	lastTails []int64      // guarded by mu

	// Online-ingestion coordination: appends route whole batches to the
	// least-loaded shard's durable append log, and documents are numbered
	// globally in append order — so a shard's delta documents interleave
	// globally with other shards', and the gather path merges them through
	// per-unit document maps (analytics.MergeUnits).
	ingestMu  sync.Mutex
	deltaMaps [][]uint32 // guarded by ingestMu: global doc IDs per shard, append order
	appended  uint32     // guarded by ingestMu: total appended documents
}

// ErrShardMismatch reports a sharded device set whose pool stamps do not
// match the positions they were assembled in.
var ErrShardMismatch = errors.New("core: pool shard stamp does not match its position")

// ErrShardFailed reports which shard of a scatter-gather failed and why:
// the Cause chain reaches the underlying device error (nvm.ErrFailPoint for
// an injected failure), and for an exhausted failover it also carries the
// recovery error.  Callers unwrap it with errors.As to learn the shard.
type ErrShardFailed struct {
	Shard int
	Cause error
}

// Error implements error.
func (e *ErrShardFailed) Error() string {
	return fmt.Sprintf("core: shard %d failed: %v", e.Shard, e.Cause)
}

// Unwrap exposes the cause chain to errors.Is/As.
func (e *ErrShardFailed) Unwrap() error { return e.Cause }

// wrapShard types an error with its shard index, once.
func wrapShard(shard int, err error) error {
	var sf *ErrShardFailed
	if errors.As(err, &sf) {
		return err
	}
	return &ErrShardFailed{Shard: shard, Cause: err}
}

// isDeviceFailure reports whether err is the kind of failure failover can
// mask: the shard's device died (injected fail point or closed device), as
// opposed to a semantic error every replica would reproduce.
func isDeviceFailure(err error) bool {
	return errors.Is(err, nvm.ErrFailPoint) || errors.Is(err, nvm.ErrClosed)
}

// sanitizeOpts strips the per-construction fields from opts, leaving the
// base configuration failover recovery reuses for Reopen/New on a promoted
// follower.
func sanitizeOpts(opts Options) Options {
	opts.Device = nil
	opts.ShardDevices = nil
	opts.Replication = Replication{}
	opts.Path = ""
	return opts
}

// NewSharded builds one engine per shard grammar concurrently and returns
// the coordinator.  Shard grammars come from sequitur.InferShards (or
// cfg.ReadShards); all shards share one dictionary.  Per-shard devices are
// created automatically, or injected via opts.ShardDevices; a file-backed
// opts.Path becomes one file per shard (path + ".shardN").  With
// opts.Replication, each shard's followers are seeded with a snapshot of
// the freshly built pool and then track it commit by commit.
func NewSharded(gs []*cfg.Grammar, d *dict.Dictionary, opts Options) (*ShardedEngine, error) {
	if len(gs) == 0 {
		return nil, errEngine("new sharded", errors.New("no shard grammars"))
	}
	if opts.ShardDevices != nil && len(opts.ShardDevices) != len(gs) {
		return nil, errEngine("new sharded", fmt.Errorf("%d devices for %d shards",
			len(opts.ShardDevices), len(gs)))
	}
	if opts.Replication.FollowerDevices != nil && len(opts.Replication.FollowerDevices) != len(gs) {
		return nil, errEngine("new sharded", fmt.Errorf("%d follower slices for %d shards",
			len(opts.Replication.FollowerDevices), len(gs)))
	}
	se := &ShardedEngine{
		shards: make([]*Engine, len(gs)),
		bases:  make([]uint32, len(gs)),
		d:      d,
		gs:     append([]*cfg.Grammar(nil), gs...),
		opts:   sanitizeOpts(opts),
	}
	for i, g := range gs {
		se.bases[i] = se.nfiles
		se.nfiles += g.NumFiles
	}
	errs := make([]error, len(gs))
	var wg sync.WaitGroup
	for i, g := range gs {
		wg.Add(1)
		go func(i int, g *cfg.Grammar) {
			defer wg.Done()
			o := opts
			o.ShardIndex = uint32(i)
			o.ShardCount = uint32(len(gs))
			o.Device = nil
			o.ShardDevices = nil
			if opts.ShardDevices != nil {
				o.Device = opts.ShardDevices[i]
			}
			if o.Path != "" {
				o.Path = fmt.Sprintf("%s.shard%d", opts.Path, i)
			}
			se.shards[i], errs[i] = New(g, d, o)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Discard the devices this constructor created; injected devices
			// stay with the caller (the crash harness clones them after a
			// failed build, exactly like core.New with an injected Device).
			if opts.ShardDevices == nil {
				for _, sh := range se.shards {
					if sh != nil {
						sh.Close()
					}
				}
			}
			return nil, errEngine("new sharded", fmt.Errorf("shard %d: %w", i, err))
		}
	}
	if err := se.attachReplication(opts.Replication); err != nil {
		if opts.ShardDevices == nil {
			for _, sh := range se.shards {
				sh.Close()
			}
		}
		return nil, errEngine("new sharded", err)
	}
	se.deltaMaps = make([][]uint32, len(se.shards))
	for _, sh := range se.shards {
		if sh.ingest != nil {
			// The coordinator owns global delta merging; shard engines serve
			// base-only results.
			sh.ingest.external = true
		}
	}
	spans := make([]metrics.Span, len(se.shards))
	for i, sh := range se.shards {
		spans[i] = sh.InitSpan()
	}
	se.initSpan = metrics.MergeParallel(spans...)
	return se, nil
}

// attachReplication seeds each shard's followers with a snapshot of its
// primary's durable image (the shipped commit stream extends it from there)
// and hooks the replicators into the primaries' drain paths.
func (se *ShardedEngine) attachReplication(repl Replication) error {
	repl = repl.withDefaults()
	if !repl.enabled() {
		return nil
	}
	se.replicaReads = repl.ReplicaReads
	//ntalint:ignore guardcheck construction phase: attachReplication runs inside BuildSharded/ReopenSharded before the engine is shared.
	se.reps = make([]*replicator, len(se.shards))
	se.replicas = make([]*Engine, len(se.shards))
	se.replicaSess = make([]*Session, len(se.shards))
	for i, sh := range se.shards {
		var fdevs []*nvm.SimDevice
		if repl.FollowerDevices != nil {
			fdevs = repl.FollowerDevices[i]
		} else {
			dev := sh.Device()
			for f := 0; f < repl.Followers; f++ {
				fdevs = append(fdevs, nvm.NewWithModel(dev.Kind(), dev.Size(), dev.Model()))
			}
		}
		if len(fdevs) == 0 {
			continue
		}
		r := newReplicator(sh.Device(), fdevs, repl.Mode, repl.LagBound)
		if err := r.bootstrap(); err != nil {
			return err
		}
		sh.Device().SetShipper(r)
		//ntalint:ignore guardcheck construction phase: attachReplication runs inside BuildSharded/ReopenSharded before the engine is shared.
		se.reps[i] = r
	}
	return nil
}

// ReopenSharded recovers a sharded engine from its per-shard devices after
// a crash or restart: each shard recovers independently under the unsharded
// recovery contract (devs[i] carries shard i's pool).  Pool shard stamps
// are validated against the assembly order, so a reordered or foreign
// device set fails with ErrShardMismatch rather than silently merging the
// wrong documents.  When opts.Replication injects follower devices, a shard
// whose primary fails to recover falls over to the first follower that
// passes the same recovery contract and stamp validation; only if every
// replica of a shard is unrecoverable does the reopen fail, with
// ErrShardFailed naming the shard (and ErrNeedsReload in its cause chain
// when that shard's initialization never completed anywhere — the caller
// rebuilds it from the compressed input).  The per-shard infos of the
// shards examined so far are returned alongside the error.
func ReopenSharded(devs []*nvm.SimDevice, d *dict.Dictionary, opts Options) (*ShardedEngine, []*RecoveryInfo, error) {
	if len(devs) == 0 {
		return nil, nil, errEngine("reopen sharded", errors.New("no shard devices"))
	}
	repl := opts.Replication.withDefaults()
	if repl.FollowerDevices != nil && len(repl.FollowerDevices) != len(devs) {
		return nil, nil, errEngine("reopen sharded", fmt.Errorf("%d follower slices for %d shards",
			len(repl.FollowerDevices), len(devs)))
	}
	se := &ShardedEngine{
		shards: make([]*Engine, len(devs)),
		bases:  make([]uint32, len(devs)),
		d:      d,
		opts:   sanitizeOpts(opts),
	}
	reopenOne := func(i int, dev *nvm.SimDevice) (*Engine, *RecoveryInfo, error) {
		o := opts
		o.Device = nil
		o.ShardDevices = nil
		o.Replication = Replication{}
		o.ShardIndex = uint32(i)
		o.ShardCount = uint32(len(devs))
		e, info, err := Reopen(dev, d, o)
		if err != nil {
			return nil, nil, err
		}
		if idx, cnt := e.pool.Shard(); idx != uint32(i) || cnt != uint32(len(devs)) {
			return nil, nil, fmt.Errorf("%w: pool stamped %d of %d", ErrShardMismatch, idx, cnt)
		}
		// Build tags must agree across the set (and with the caller's
		// expectation, when it has one): positional stamps cannot tell shard
		// 1-of-4 of one unified build from shard 1-of-4 of another.
		if tag := e.pool.Tag(); opts.BuildTag != 0 && tag != opts.BuildTag {
			return nil, nil, fmt.Errorf("%w: pool build tag %08x, want %08x",
				ErrShardMismatch, tag, opts.BuildTag)
		} else if i > 0 && tag != se.shards[0].pool.Tag() {
			return nil, nil, fmt.Errorf("%w: pool build tag %08x differs from shard 0's %08x",
				ErrShardMismatch, tag, se.shards[0].pool.Tag())
		}
		return e, info, nil
	}
	remaining := make([][]*nvm.SimDevice, len(devs))
	infos := make([]*RecoveryInfo, 0, len(devs))
	for i, dev := range devs {
		e, info, err := reopenOne(i, dev)
		if repl.FollowerDevices != nil {
			remaining[i] = repl.FollowerDevices[i]
			if err != nil {
				// Primary unrecoverable: promote the first follower whose
				// image passes the identical contract.
				for fi, fdev := range repl.FollowerDevices[i] {
					fe, finfo, ferr := reopenOne(i, fdev)
					if ferr == nil {
						e, info, err = fe, finfo, nil
						rest := make([]*nvm.SimDevice, 0, len(repl.FollowerDevices[i])-1)
						rest = append(rest, repl.FollowerDevices[i][:fi]...)
						rest = append(rest, repl.FollowerDevices[i][fi+1:]...)
						remaining[i] = rest
						break
					}
				}
			}
		}
		if err != nil {
			return nil, infos, wrapShard(i, err)
		}
		se.shards[i] = e
		se.bases[i] = se.nfiles
		se.nfiles += e.numFiles
		infos = append(infos, info)
	}
	if repl.enabled() {
		r2 := repl
		if repl.FollowerDevices != nil {
			r2.FollowerDevices = remaining
		}
		if err := se.attachReplication(r2); err != nil {
			return nil, infos, errEngine("reopen sharded", err)
		}
	}
	if err := se.recoverIngestMaps(); err != nil {
		return nil, infos, errEngine("reopen sharded", err)
	}
	return se, infos, nil
}

// recoverIngestMaps rebuilds the coordinator's global ingestion state after
// a sharded reopen: every shard's recovered batch history is collected,
// ordered globally (batches carry the global index of their first document),
// the shared dictionary's appended vocabulary is restored in that global
// order, and the per-shard document maps are rebuilt.
func (se *ShardedEngine) recoverIngestMaps() error {
	se.ingestMu.Lock()
	defer se.ingestMu.Unlock()
	se.deltaMaps = make([][]uint32, len(se.shards))
	type owned struct {
		b     IngestBatch
		shard int
	}
	var all []owned
	for i, sh := range se.shards {
		if sh.ingest == nil {
			continue
		}
		sh.ingest.external = true
		for _, b := range sh.IngestBatches() {
			all = append(all, owned{b: b, shard: i})
		}
	}
	if len(all) == 0 {
		return nil
	}
	slices.SortFunc(all, func(a, b owned) int { return cmp.Compare(a.b.GlobalBase, b.b.GlobalBase) })
	batches := make([]IngestBatch, len(all))
	for i, o := range all {
		batches[i] = o.b
	}
	if err := restoreVocabulary(se.d, batches); err != nil {
		return fmt.Errorf("%w: %v", ErrNeedsReload, err)
	}
	for _, o := range all {
		if o.b.GlobalBase != se.nfiles+se.appended {
			return fmt.Errorf("%w: append batch at global %d, expected %d",
				ErrNeedsReload, o.b.GlobalBase, se.nfiles+se.appended)
		}
		for k := range o.b.Docs {
			se.deltaMaps[o.shard] = append(se.deltaMaps[o.shard], o.b.GlobalBase+uint32(k))
		}
		se.appended += uint32(len(o.b.Docs))
	}
	return nil
}

// shardPin is one shard's pinned serving cut: the serving tail at pin time,
// a pinned delta view (nil when the shard had no live delta documents), and
// the document maps placing the tail's and the view's documents at their
// global corpus positions.  baseMap is nil while the tail still serves
// exactly the build-time base — the contiguous DocBase offset suffices —
// and becomes explicit once compaction folds appended documents (globally
// interleaved with other shards') into the tail.
type shardPin struct {
	tail     *Engine
	view     *deltaView
	baseMap  []uint32
	deltaMap []uint32
}

// ingestPins is the consistent corpus cut one scatter-gather observes: every
// shard's serving state pinned under ingestMu, so the merged result reflects
// exactly the appends committed before the batch started, no matter how many
// appends and compactions land while it runs.
type ingestPins struct {
	mu     sync.Mutex // guards pins: failover lanes repin concurrently
	pins   []shardPin
	nfiles int // global document count at pin time
}

// pinIngest pins every shard's serving state for one scatter-gather, or
// returns nil when no shard is appendable — the legacy merge path then runs
// unchanged.  The caller must release the pins.
func (se *ShardedEngine) pinIngest() *ingestPins {
	se.ingestMu.Lock()
	defer se.ingestMu.Unlock()
	any := false
	for _, sh := range se.shards {
		if sh.ingest != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	p := &ingestPins{pins: make([]shardPin, len(se.shards)), nfiles: int(se.nfiles + se.appended)}
	for i := range se.shards {
		p.pins[i] = se.pinShard(i)
	}
	return p
}

// pinShard pins shard i's current serving cut.  Caller holds ingestMu, so
// no append is in flight and every committed delta document already has its
// entry in deltaMaps[i]; compactions may still race, which pinServing's
// retry protocol absorbs.
func (se *ShardedEngine) pinShard(i int) shardPin {
	sh := se.shards[i]
	st := sh.ingest
	if st == nil {
		return shardPin{}
	}
	t, v := st.pinServing()
	pin := shardPin{tail: t, view: v}
	compacted := int(t.numFiles) - int(sh.numFiles)
	if compacted > 0 {
		bm := make([]uint32, 0, int(sh.numFiles)+compacted)
		for d := uint32(0); d < sh.numFiles; d++ {
			bm = append(bm, se.bases[i]+d)
		}
		bm = append(bm, se.deltaMaps[i][:compacted]...)
		pin.baseMap = bm
	}
	if v != nil && v.eng != nil && v.docs > 0 {
		end := compacted + int(v.docs)
		if end > len(se.deltaMaps[i]) {
			end = len(se.deltaMaps[i]) // view outran the maps: lossy failover
		}
		pin.deltaMap = append([]uint32(nil), se.deltaMaps[i][compacted:end]...)
	} else if v != nil {
		v.release()
		pin.view = nil
	}
	return pin
}

// serving returns shard i's pinned serving tail, nil when the shard is not
// pinned (or pins is nil entirely — the non-appendable path).
func (p *ingestPins) serving(i int) *Engine {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pins[i].tail
}

// repin refreshes shard i's pin after a failover promoted a new primary: the
// recovered engine replayed its durable append log into a fresh delta view,
// with no compaction chain, so the shard's cut is re-derived from scratch.
func (p *ingestPins) repin(se *ShardedEngine, i int) {
	if p == nil {
		return
	}
	se.ingestMu.Lock()
	pin := se.pinShard(i)
	se.ingestMu.Unlock()
	p.mu.Lock()
	old := p.pins[i].view
	p.pins[i] = pin
	p.mu.Unlock()
	old.release()
}

// release drops every pinned view.
func (p *ingestPins) release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	pins := p.pins
	p.pins = nil
	p.mu.Unlock()
	for i := range pins {
		pins[i].view.release()
	}
}

// Append appends a batch of documents to the sharded corpus: the whole batch
// routes to the least-loaded shard's durable append log (a batch never spans
// shards), and its documents take the next global positions in append order.
// vocab and novel follow the same contract as Engine.Append: vocab is the
// shared dictionary's size after interning the batch, novel its newly
// interned words in order.
func (se *ShardedEngine) Append(docs []AppendDoc, vocab uint32, novel []string) error {
	if len(docs) == 0 {
		return nil
	}
	se.ingestMu.Lock()
	defer se.ingestMu.Unlock()
	best := -1
	for i := range se.shards {
		if se.shards[i].ingest == nil {
			continue
		}
		if best < 0 || len(se.deltaMaps[i]) < len(se.deltaMaps[best]) {
			best = i
		}
	}
	if best < 0 {
		return ErrNoIngest
	}
	base := se.nfiles + se.appended
	if err := se.shards[best].AppendAt(docs, vocab, novel, base); err != nil {
		return err
	}
	for k := range docs {
		se.deltaMaps[best] = append(se.deltaMaps[best], base+uint32(k))
	}
	se.appended += uint32(len(docs))
	return nil
}

// CorpusEpoch sums the shard epochs: it advances on every committed append
// and every shard compaction, and serving layers key caches by it.  Zero for
// engine sets without ingestion.
func (se *ShardedEngine) CorpusEpoch() uint64 {
	var sum uint64
	for _, sh := range se.shards {
		sum += sh.CorpusEpoch()
	}
	return sum
}

// IngestStats aggregates the shards' ingestion state.
func (se *ShardedEngine) IngestStats() IngestStats {
	var agg IngestStats
	for _, sh := range se.shards {
		s := sh.IngestStats()
		agg.Batches += s.Batches
		agg.Docs += s.Docs
		agg.LogBytes += s.LogBytes
		agg.LogCap += s.LogCap
		agg.DeltaDocs += s.DeltaDocs
		agg.DeltaRules += s.DeltaRules
		agg.DeltaReused += s.DeltaReused
		agg.DeltaSymbols += s.DeltaSymbols
		agg.CompactedDocs += s.CompactedDocs
		agg.Compactions += s.Compactions
	}
	return agg
}

// CompactIfNeeded re-merges every shard's delta whose size exceeds the
// policy, one shard at a time; a shard already compacting is skipped.  It
// reports whether any shard compacted.
func (se *ShardedEngine) CompactIfNeeded(p CompactionPolicy) (bool, error) {
	p = p.withDefaults()
	did := false
	for _, sh := range se.shards {
		st := sh.ingest
		if st == nil {
			continue
		}
		if !p.exceeded(sh.IngestStats()) {
			continue
		}
		if err := st.compact(); err != nil {
			if errors.Is(err, ErrCompacting) {
				continue
			}
			return did, err
		}
		did = true
	}
	return did, nil
}

var _ Compactable = (*ShardedEngine)(nil)

// shardedEnv is the Env the coordinator offers merging folds: whole-corpus
// shape, coordinator-side CPU charging, no sequence-key resolution (shard
// results arrive already Seq-keyed).
type shardedEnv struct {
	d      *dict.Dictionary
	nfiles int
	meter  *metrics.Meter
}

func (e shardedEnv) Dict() *dict.Dictionary     { return e.d }
func (e shardedEnv) NumFiles() int              { return e.nfiles }
func (e shardedEnv) SeqOf(uint64) analytics.Seq { panic("core: merge env resolves no sequence keys") }
func (e shardedEnv) Charge(n, perOp int64)      { e.meter.Charge(n, perOp) }

// unit is one dispatchable slice of a scatter-gather: a shard, the indices
// of the batch ops it serves, and whether the shard's read replica (a query
// session over a recovered follower image) serves it instead of the
// primary.  Without replica reads every shard is one unit carrying the
// whole batch.
type unit struct {
	shard   int
	opIdx   []int
	replica bool
}

// plainUnits is the one-unit-per-shard schedule.
func plainUnits(k, numOps int) []unit {
	idx := make([]int, numOps)
	for j := range idx {
		idx[j] = j
	}
	units := make([]unit, k)
	for i := range units {
		units[i] = unit{shard: i, opIdx: idx}
	}
	return units
}

// planUnits builds the engine path's dispatch schedule.  With replica reads
// enabled, a multi-op batch is split between each shard's primary and its
// read replica, halving the shard's serial tail on the lane schedule.
func (se *ShardedEngine) planUnits(numOps int) []unit {
	if !se.replicaReads || numOps < 2 {
		return plainUnits(len(se.shards), numOps)
	}
	idx := make([]int, numOps)
	for j := range idx {
		idx[j] = j
	}
	units := make([]unit, 0, 2*len(se.shards))
	for i := range se.shards {
		if se.ensureReplica(i) != nil {
			half := (numOps + 1) / 2
			units = append(units,
				unit{shard: i, opIdx: idx[:half]},
				unit{shard: i, opIdx: idx[half:], replica: true})
		} else {
			units = append(units, unit{shard: i, opIdx: idx})
		}
	}
	return units
}

// ensureReplica lazily recovers shard i's read replica: the freshest live
// follower's durable image is cloned (leaving the follower itself pure for
// failover) and reopened under the ordinary recovery contract, and a query
// session over the clone serves reads.  Returns nil when the shard has no
// usable replica.  Query results depend only on the immutable init
// structures, so any post-init consistent image answers bit-identically to
// the primary.
func (se *ShardedEngine) ensureReplica(i int) *Session {
	if se.replicaSess == nil {
		return nil
	}
	if se.replicaSess[i] != nil {
		return se.replicaSess[i]
	}
	se.failMu.Lock()
	rep := se.reps[i]
	se.failMu.Unlock()
	if rep == nil {
		return nil
	}
	devs := rep.liveFollowers()
	if len(devs) == 0 {
		return nil
	}
	clone, err := devs[0].CloneDurable()
	if err != nil {
		return nil
	}
	o := se.opts
	o.ShardIndex = uint32(i)
	o.ShardCount = uint32(len(se.shards))
	e, _, err := Reopen(clone, se.d, o)
	if err != nil {
		_ = clone.Discard()
		return nil
	}
	if e.ingest != nil {
		e.ingest.external = true
	}
	se.replicas[i] = e
	se.replicaSess[i] = e.NewSession()
	return se.replicaSess[i]
}

// scatterGather runs the batch's units under a planned lane schedule — the
// fan-out planner packs units onto parallel lanes from their estimated
// costs, so trivial shards share a lane instead of each paying dispatch
// overhead — then merges the per-shard results on meter's account.  When a
// unit fails and a failover hook is given, the lane retires the failed
// shard through the hook and re-dispatches the unit against the recovered
// engine; errors that survive failover (or occur without one) surface as
// ErrShardFailed.  The schedule and per-unit spans are returned so callers
// can aggregate modeled time the same way the work actually ran.
//
// On an appendable engine set, the scatter opens by pinning every shard's
// serving state — the compacted serving tail, the delta view, and a snapshot
// of the global document maps — so the whole batch observes one consistent
// corpus cut even while appends and compactions proceed underneath it.  Base
// units run against the pinned tails, delta views run through transient
// query sessions, and the gather merges everything with analytics.MergeUnits
// under per-unit document maps.
func (se *ShardedEngine) scatterGather(ops []analytics.Op, units []unit,
	run func(u unit, ops []analytics.Op, serving *Engine) ([]any, metrics.Span, error),
	failover func(u unit, cause error) error,
	meter *metrics.Meter) ([]any, [][]int, []metrics.Span, error) {
	pins := se.pinIngest()
	defer pins.release()
	costs := make([]int64, len(units))
	for ui, u := range units {
		costs[ui] = se.shards[u.shard].planCost(len(u.opIdx))
	}
	lanes := planFanout(costs)
	outs := make([][]any, len(units))
	spans := make([]metrics.Span, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for _, lane := range lanes {
		wg.Add(1)
		go func(lane []int) {
			defer wg.Done()
			for _, ui := range lane {
				u := units[ui]
				sub := make([]analytics.Op, len(u.opIdx))
				for k, j := range u.opIdx {
					sub[k] = ops[j]
				}
				out, span, err := run(u, sub, pins.serving(u.shard))
				for err != nil && failover != nil && isDeviceFailure(err) {
					// Retire the lane's failed shard and re-dispatch its ops
					// against the recovered follower.  The loop continues as
					// long as promotion succeeds, consuming one replica per
					// round; a shard with no replica left fails typed.
					if ferr := failover(u, err); ferr != nil {
						err = ferr
						break
					}
					pins.repin(se, u.shard)
					out, span, err = run(u, sub, pins.serving(u.shard))
				}
				if err != nil {
					errs[ui] = wrapShard(u.shard, err)
					continue
				}
				outs[ui], spans[ui] = out, span
			}
		}(lane)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	// Each dispatched lane charges the coordinator its scheduling and join
	// bookkeeping, the cost the fan-out planner weighs against parallelism.
	meter.Charge(int64(len(lanes)), laneDispatchCost)
	env := shardedEnv{d: se.d, nfiles: int(se.nfiles), meter: meter}
	shardOut := make([][]any, len(se.shards))
	for i := range shardOut {
		shardOut[i] = make([]any, len(ops))
	}
	for ui, u := range units {
		for k, j := range u.opIdx {
			shardOut[u.shard][j] = outs[ui][k]
		}
	}
	results := make([]any, len(ops))
	if pins == nil {
		for j, op := range ops {
			per := make([]any, len(se.shards))
			for i := range se.shards {
				per[i] = shardOut[i][j]
			}
			r, err := analytics.MergeShardResults(op, env, per, se.bases)
			if err != nil {
				return nil, nil, nil, err
			}
			results[j] = r
		}
		return results, lanes, spans, nil
	}
	// Appendable path: run the pinned delta views (whole batch each — deltas
	// are small next to the base traversals), then merge base and delta
	// units under their document maps.
	env.nfiles = pins.nfiles
	deltaOut := make([][]any, len(se.shards))
	for i := range pins.pins {
		if v := pins.pins[i].view; v != nil {
			res, err := v.runDeltaOps(ops)
			if err != nil {
				return nil, nil, nil, wrapShard(i, err)
			}
			deltaOut[i] = res
		}
	}
	for j, op := range ops {
		mu := make([]analytics.MergeUnit, 0, 2*len(se.shards))
		for i := range se.shards {
			if bm := pins.pins[i].baseMap; bm != nil {
				mu = append(mu, analytics.MergeUnit{Result: shardOut[i][j], DocMap: bm})
			} else {
				mu = append(mu, analytics.MergeUnit{Result: shardOut[i][j], DocBase: se.bases[i]})
			}
		}
		for i := range pins.pins {
			if pins.pins[i].view != nil {
				mu = append(mu, analytics.MergeUnit{Result: deltaOut[i][j], DocMap: pins.pins[i].deltaMap})
			}
		}
		r, err := analytics.MergeUnits(op, env, mu)
		if err != nil {
			return nil, nil, nil, err
		}
		results[j] = r
	}
	return results, lanes, spans, nil
}

// failoverUnit is the engine path's failover hook: promote the failed
// shard's follower and swap the recovered engine in.  Replica units have no
// further replica behind them — their clone device has no fail points — so
// they fail typed immediately.
func (se *ShardedEngine) failoverUnit(u unit, cause error) error {
	if u.replica {
		return wrapShard(u.shard, cause)
	}
	return se.failoverShard(u.shard, cause)
}

// failoverShard retires shard i's primary and recovers the shard from its
// freshest follower: queued ship batches are applied (they live in
// coordinator memory, which survives the device failure), the follower is
// promoted and reopened under the unsharded recovery contract — or, when
// its image predates a completed initialization, rebuilt from the retained
// shard grammar — its stamps are validated exactly as in ReopenSharded, and
// the remaining followers are re-seeded from the new primary.  The measured
// recovery span is folded into the batch's traversal span as serial
// critical-path work.  Returns nil when the shard is ready to re-dispatch.
func (se *ShardedEngine) failoverShard(i int, cause error) error {
	se.failMu.Lock()
	defer se.failMu.Unlock()
	var rep *replicator
	if se.reps != nil {
		rep = se.reps[i]
	}
	if rep == nil {
		return wrapShard(i, cause)
	}
	old := se.shards[i]
	old.Device().SetShipper(nil)
	fdev, rest, perr := rep.promote()
	if perr != nil {
		return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, perr)}
	}
	sp := metrics.Start(fdev, &se.meter)
	o := se.opts
	o.ShardIndex = uint32(i)
	o.ShardCount = uint32(len(se.shards))
	ne, _, rerr := Reopen(fdev, se.d, o)
	switch {
	case rerr == nil:
		if idx, cnt := ne.pool.Shard(); idx != uint32(i) || cnt != uint32(len(se.shards)) {
			err := fmt.Errorf("%w: follower pool stamped %d of %d", ErrShardMismatch, idx, cnt)
			if cerr := ne.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, err)}
		}
		if tag := ne.pool.Tag(); se.opts.BuildTag != 0 && tag != se.opts.BuildTag {
			err := fmt.Errorf("%w: follower pool build tag %08x, want %08x",
				ErrShardMismatch, tag, se.opts.BuildTag)
			if cerr := ne.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, err)}
		}
	case errors.Is(rerr, ErrNeedsReload) && se.gs != nil && se.gs[i] != nil:
		// The follower's image predates a completed initialization (it was
		// torn or lag-bounded very early): rebuild the shard from its
		// retained grammar on a fresh device, the same reload contract the
		// crash harness exercises on primaries.
		if derr := fdev.Discard(); derr != nil {
			return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, rerr, derr)}
		}
		ne2, nerr := New(se.gs[i], se.d, o)
		if nerr != nil {
			return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, rerr, nerr)}
		}
		ne = ne2
	default:
		return &ErrShardFailed{Shard: i, Cause: errors.Join(cause, rerr)}
	}
	sp.Stop()
	if ne.ingest != nil {
		// The promoted follower replayed the shard's durable append log into
		// a fresh delta; the coordinator keeps merging it globally.
		ne.ingest.external = true
	}
	se.shards[i] = ne
	se.retiredEng = append(se.retiredEng, old)
	se.retiredReps = append(se.retiredReps, rep)
	se.reps[i] = nil
	if len(rest) > 0 {
		// Re-seed the surviving followers from the recovered primary and
		// keep shipping; a shard can survive as many failures as it has
		// replicas.
		nr := newReplicator(ne.Device(), rest, rep.mode, rep.lag)
		if err := nr.bootstrap(); err == nil {
			ne.Device().SetShipper(nr)
			se.reps[i] = nr
		}
	}
	se.failovers++
	se.failoverSpans = append(se.failoverSpans, *sp)
	return nil
}

// takeFailoverSpans drains the recovery spans accumulated during the
// current batch.
func (se *ShardedEngine) takeFailoverSpans() []metrics.Span {
	se.failMu.Lock()
	defer se.failMu.Unlock()
	spans := se.failoverSpans
	se.failoverSpans = nil
	return spans
}

// RunOps implements analytics.Executor: the batch executes fused on every
// shard concurrently, and the per-shard results are merged into corpus-wide
// results.  results[i] corresponds to ops[i] with the op's canonical result
// type, bit-identical to an unsharded engine over the same corpus — also
// when a shard fails over to its follower mid-batch, and when replica reads
// split the batch across primary and follower images.
func (se *ShardedEngine) RunOps(ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cpu0 := se.meter.Nanos()
	units := se.planUnits(len(ops))
	results, lanes, spans, err := se.scatterGather(ops, units,
		func(u unit, sub []analytics.Op, serving *Engine) ([]any, metrics.Span, error) {
			// Replica read-splitting serves the shard's base image; once the
			// shard is appendable its serving tail may have compacted past
			// that image, so pinned shards always read the pinned tail.
			if u.replica && serving == nil {
				sess := se.replicaSess[u.shard]
				sp := metrics.Start(se.replicas[u.shard].Device(), sess.Meter())
				res, err := sess.RunOps(sub)
				if err != nil {
					return nil, metrics.Span{}, err
				}
				return res, *sp.Stop(), nil
			}
			sh := serving
			if sh == nil {
				sh = se.shards[u.shard] // re-read: failover may have swapped it
			}
			res, err := sh.RunOps(sub)
			if err != nil {
				return nil, metrics.Span{}, err
			}
			return res, sh.LastTraversalSpan(), nil
		},
		se.failoverUnit, &se.meter)
	if err != nil {
		return nil, err
	}
	// Aggregate along the planned schedule: units on one lane ran serially,
	// lanes in parallel, the coordinator's merge extends the critical path,
	// and any failover recovery extends it further as measured serial work.
	trav := metrics.MergeScheduled(lanes, spans).AddSerial(se.meter.Nanos() - cpu0)
	tails := metrics.LaneTails(lanes, spans)
	for _, fs := range se.takeFailoverSpans() {
		trav = trav.AddSerialSpan(fs)
	}
	se.mu.Lock()
	se.lastTrav = trav
	se.lastTails = tails
	se.mu.Unlock()
	return results, nil
}

// RunOp implements analytics.Executor.
func (se *ShardedEngine) RunOp(op analytics.Op) (any, error) {
	results, err := se.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

var _ analytics.Executor = (*ShardedEngine)(nil)
var _ analytics.Engine = (*ShardedEngine)(nil)

// WordCount implements analytics.Engine.
func (se *ShardedEngine) WordCount() (map[uint32]uint64, error) {
	v, err := se.RunOp(analytics.WordCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32]uint64), nil
}

// Sort implements analytics.Engine.
func (se *ShardedEngine) Sort() ([]analytics.WordFreq, error) {
	v, err := se.RunOp(analytics.SortOp{})
	if err != nil {
		return nil, err
	}
	return v.([]analytics.WordFreq), nil
}

// TermVectors implements analytics.Engine.
func (se *ShardedEngine) TermVectors(k int) ([][]analytics.WordFreq, error) {
	v, err := se.RunOp(analytics.TermVectorsOp{K: k})
	if err != nil {
		return nil, err
	}
	return v.([][]analytics.WordFreq), nil
}

// InvertedIndex implements analytics.Engine.
func (se *ShardedEngine) InvertedIndex() (map[uint32][]uint32, error) {
	v, err := se.RunOp(analytics.InvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32][]uint32), nil
}

// SequenceCount implements analytics.Engine.
func (se *ShardedEngine) SequenceCount() (map[analytics.Seq]uint64, error) {
	v, err := se.RunOp(analytics.SequenceCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq]uint64), nil
}

// RankedInvertedIndex implements analytics.Engine.
func (se *ShardedEngine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	v, err := se.RunOp(analytics.RankedInvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq][]analytics.DocFreq), nil
}

// ShardedSession is a read-only query context over every shard: one session
// per shard engine, run in parallel and merged like the engine's task path,
// with all merge-side state session-local.  Sessions model the post-load
// query phase and must not run concurrently with engine task methods or
// Close, only with each other.  Sessions never mutate devices, so they have
// no failover path; a device error surfaces as ErrShardFailed.
type ShardedSession struct {
	se       *ShardedEngine
	sessions []*Session
	meter    metrics.Meter
}

// NewSession opens one query session per shard.
func (se *ShardedEngine) NewSession() *ShardedSession {
	ss := &ShardedSession{se: se, sessions: make([]*Session, len(se.shards))}
	for i, sh := range se.shards {
		ss.sessions[i] = sh.NewSession()
	}
	return ss
}

// RunOps implements analytics.Executor over session-local state.
func (ss *ShardedSession) RunOps(ops []analytics.Op) ([]any, error) {
	return ss.runOps(nil, ops)
}

// RunOpsContext is RunOps with cancellation: every shard session polls the
// same ctx, so canceling the request unwinds all lanes of the scatter-gather
// promptly (within one body read per lane).  The cancellation surfaces as
// ErrShardFailed with ctx.Err() in its cause chain — callers distinguish a
// canceled batch from a genuine shard failure with errors.Is against
// context.Canceled / context.DeadlineExceeded.
func (ss *ShardedSession) RunOpsContext(ctx context.Context, ops []analytics.Op) ([]any, error) {
	return ss.runOps(ctx, ops)
}

func (ss *ShardedSession) runOps(ctx context.Context, ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	units := plainUnits(len(ss.sessions), len(ops))
	results, _, _, err := ss.se.scatterGather(ops, units,
		func(u unit, sub []analytics.Op, serving *Engine) ([]any, metrics.Span, error) {
			sess := ss.sessions[u.shard]
			if serving != nil && serving != sess.e {
				// The shard's serving tail was promoted past the engine this
				// session was opened on; a transient session over the pinned
				// tail observes the compacted corpus the document maps expect.
				sess = serving.NewSession()
			}
			res, err := sess.runOps(ctx, sub)
			return res, metrics.Span{}, err
		}, nil, &ss.meter)
	return results, err
}

// RunOp implements analytics.Executor.
func (ss *ShardedSession) RunOp(op analytics.Op) (any, error) {
	results, err := ss.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

var _ analytics.Executor = (*ShardedSession)(nil)

// Meter reports the modeled CPU cost of this session's merge work; the
// per-shard traversal costs live on the shard sessions' meters.
func (ss *ShardedSession) Meter() *metrics.Meter { return &ss.meter }

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i's engine, for inspection and shard-local recovery
// checks; mutating it directly bypasses the coordinator.  After a failover
// this is the recovered engine, not the retired primary.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// DocBases returns the global index of each shard's first document.
func (se *ShardedEngine) DocBases() []uint32 { return se.bases }

// Followers returns shard i's current live follower devices, as they stand
// — queued async batches are not applied first (see ReplicaBarrier).  Nil
// when the shard is unreplicated.
func (se *ShardedEngine) Followers(i int) []*nvm.SimDevice {
	se.failMu.Lock()
	defer se.failMu.Unlock()
	if se.reps == nil || se.reps[i] == nil {
		return nil
	}
	r := se.reps[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	var devs []*nvm.SimDevice
	for _, f := range r.followers {
		if f.err == nil {
			devs = append(devs, f.dev)
		}
	}
	return devs
}

// ReplicaBarrier applies every queued async ship batch, bringing all live
// followers current with their primaries' durable images.
func (se *ShardedEngine) ReplicaBarrier() {
	se.failMu.Lock()
	defer se.failMu.Unlock()
	for _, r := range se.reps {
		if r != nil {
			r.catchUp()
		}
	}
}

// FailoverCount reports how many shard failovers this engine has performed.
func (se *ShardedEngine) FailoverCount() int {
	se.failMu.Lock()
	defer se.failMu.Unlock()
	return se.failovers
}

// InitSpan reports the parallel build: critical path across shards, summed
// device statistics.
func (se *ShardedEngine) InitSpan() metrics.Span { return se.initSpan }

// LastTraversalSpan reports the last scatter-gather: the slowest lane's
// traversal plus the coordinator's merge and any failover recovery.
func (se *ShardedEngine) LastTraversalSpan() metrics.Span {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastTrav
}

// LastLaneTails reports each lane's serial modeled total for the last
// engine batch — the distribution MergeScheduled's critical path is the max
// of.  Replica reads shorten the longest tail by splitting shard batches
// across primary and follower images.
func (se *ShardedEngine) LastLaneTails() []int64 {
	se.mu.Lock()
	defer se.mu.Unlock()
	return append([]int64(nil), se.lastTails...)
}

// NVMBytes sums pool residency across shards.
func (se *ShardedEngine) NVMBytes() int64 {
	var n int64
	for _, sh := range se.shards {
		n += sh.NVMBytes()
	}
	return n
}

// DRAMBytes sums DRAM residency across shards.
func (se *ShardedEngine) DRAMBytes() int64 {
	var n int64
	for _, sh := range se.shards {
		n += sh.DRAMBytes()
	}
	return n
}

// DeviceStats sums device counters across the shard devices.
func (se *ShardedEngine) DeviceStats() nvm.Stats {
	var st nvm.Stats
	for _, sh := range se.shards {
		st = st.Add(sh.Device().Stats())
	}
	return st
}

// Close releases every shard's simulated device, the follower devices, any
// read-replica clones, and the primaries retired by failovers.
func (se *ShardedEngine) Close() error {
	var errs []error
	for i, sh := range se.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	se.failMu.Lock()
	defer se.failMu.Unlock()
	for _, r := range se.reps {
		if r != nil {
			if err := r.close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, r := range se.retiredReps {
		if err := r.close(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, e := range se.retiredEng {
		if err := e.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, e := range se.replicas {
		if e != nil {
			if err := e.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
