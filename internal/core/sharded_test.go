package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// TestShardCountInvariance is the differential test of the sharded engine:
// for every registered op, a K-way sharded engine must return results
// bit-identical to the unsharded engine over the same corpus, for K up to
// more shards than strictly useful, across corpora with different file
// counts and redundancy.  Run under -race this also exercises the
// scatter-gather concurrency.
func TestShardCountInvariance(t *testing.T) {
	cases := []struct {
		name                 string
		seed                 int64
		files, tokens, vocab int
	}{
		{"small", 51, 4, 200, 30},
		{"manyfiles", 52, 9, 120, 40},
		{"redundant", 53, 6, 300, 15},
	}
	ops := analytics.Ops()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files, d, g := corpus(t, tc.seed, tc.files, tc.tokens, tc.vocab)
			ref := newEngine(t, g, d, Options{Sequences: true})
			want, err := ref.RunOps(ops)
			if err != nil {
				t.Fatalf("unsharded RunOps: %v", err)
			}
			for k := 1; k <= 4; k++ {
				// Both shard pipelines must be invariant: independent
				// per-shard inference, and the shared-dictionary path whose
				// grammars went through interning, cross-shard rule
				// unification, and re-materialization.
				gs, err := sequitur.InferShards(files, uint32(d.Len()), k)
				if err != nil {
					t.Fatalf("InferShards(k=%d): %v", k, err)
				}
				sb, err := sequitur.InferShardsShared(files, uint32(d.Len()), k)
				if err != nil {
					t.Fatalf("InferShardsShared(k=%d): %v", k, err)
				}
				for _, p := range []struct {
					path string
					gs   []*cfg.Grammar
				}{{"independent", gs}, {"dedup", sb.Shards}} {
					se, err := NewSharded(p.gs, d, Options{Sequences: true})
					if err != nil {
						t.Fatalf("NewSharded(k=%d, %s): %v", k, p.path, err)
					}
					t.Cleanup(func() { se.Close() })
					got, err := se.RunOps(ops)
					if err != nil {
						t.Fatalf("sharded RunOps(k=%d, %s): %v", k, p.path, err)
					}
					for i, op := range ops {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Errorf("k=%d op %s (%s): sharded result differs from unsharded",
								k, op.Name(), p.path)
						}
					}
					// Singleton path and typed engine methods.
					wc, err := se.WordCount()
					if err != nil {
						t.Fatalf("sharded WordCount(k=%d, %s): %v", k, p.path, err)
					}
					if !reflect.DeepEqual(wc, want[0]) {
						t.Errorf("k=%d (%s): WordCount differs from unsharded", k, p.path)
					}
				}
			}
		})
	}
}

// TestShardedSessions checks concurrent sessions over a sharded engine
// merge to the same results as the engine itself.
func TestShardedSessions(t *testing.T) {
	files, d, g := corpus(t, 54, 5, 200, 30)
	ref := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()
	want, err := ref.RunOps(ops)
	if err != nil {
		t.Fatalf("unsharded RunOps: %v", err)
	}
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()

	const nSessions = 4
	results := make([][]any, nSessions)
	errs := make([]error, nSessions)
	done := make(chan int, nSessions)
	for s := 0; s < nSessions; s++ {
		go func(s int) {
			ss := se.NewSession()
			results[s], errs[s] = ss.RunOps(ops)
			done <- s
		}(s)
	}
	for s := 0; s < nSessions; s++ {
		<-done
	}
	for s := 0; s < nSessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		for i, op := range ops {
			if !reflect.DeepEqual(results[s][i], want[i]) {
				t.Errorf("session %d op %s: result differs from unsharded", s, op.Name())
			}
		}
	}
}

// TestShardedSpansAndAccounting checks the coordinator's metric merge:
// critical-path totals, summed device stats, and summed residency.
func TestShardedSpansAndAccounting(t *testing.T) {
	files, d, _ := corpus(t, 55, 6, 250, 30)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()
	if se.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", se.NumShards())
	}
	if got := se.DocBases(); len(got) != 3 || got[0] != 0 {
		t.Fatalf("DocBases = %v", got)
	}

	init := se.InitSpan()
	if init.Total() <= 0 {
		t.Error("init span not measured")
	}
	var maxInit, sumInit int64
	var sumNVM int64
	for i := 0; i < se.NumShards(); i++ {
		tot := int64(se.Shard(i).InitSpan().Total())
		sumInit += tot
		if tot > maxInit {
			maxInit = tot
		}
		sumNVM += se.Shard(i).NVMBytes()
	}
	if got := int64(init.Total()); got != maxInit {
		t.Errorf("init Total = %d, want critical path %d", got, maxInit)
	}
	if init.Device.ModeledNanos <= 0 {
		t.Error("init span lost device work")
	}
	if se.NVMBytes() != sumNVM {
		t.Errorf("NVMBytes = %d, want summed %d", se.NVMBytes(), sumNVM)
	}
	if se.DRAMBytes() <= 0 {
		t.Error("DRAMBytes not positive")
	}

	if _, err := se.WordCount(); err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	trav := se.LastTraversalSpan()
	var maxTrav int64
	for i := 0; i < se.NumShards(); i++ {
		if tot := int64(se.Shard(i).LastTraversalSpan().Total()); tot > maxTrav {
			maxTrav = tot
		}
	}
	if got := int64(trav.Total()); got < maxTrav {
		t.Errorf("traversal Total %d below slowest shard %d", got, maxTrav)
	}
	if trav.Device.ModeledNanos <= 0 {
		t.Error("traversal span lost device work")
	}
	if st := se.DeviceStats(); st.ModeledNanos <= 0 {
		t.Error("DeviceStats not summed")
	}
}

// TestReopenSharded crashes every shard device and recovers the sharded
// engine from them, checking results and stamp validation.
func TestReopenSharded(t *testing.T) {
	files, d, _ := corpus(t, 56, 4, 200, 25)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 2)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	want, err := se.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	devs := make([]*nvm.SimDevice, se.NumShards())
	for i := range devs {
		devs[i] = se.Shard(i).Device()
		if err := devs[i].Crash(); err != nil {
			t.Fatalf("Crash shard %d: %v", i, err)
		}
	}
	re, infos, err := ReopenSharded(devs, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("ReopenSharded: %v", err)
	}
	defer re.Close()
	if len(infos) != 2 {
		t.Fatalf("got %d recovery infos, want 2", len(infos))
	}
	got, err := re.WordCount()
	if err != nil {
		t.Fatalf("recovered WordCount: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recovered sharded word count mismatch")
	}

	// A reordered device set must be rejected by the shard stamps.
	for i := range devs {
		if err := devs[i].Crash(); err != nil {
			t.Fatalf("Crash shard %d: %v", i, err)
		}
	}
	if _, _, err := ReopenSharded([]*nvm.SimDevice{devs[1], devs[0]}, d, Options{Sequences: true}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reordered devices: err = %v, want ErrShardMismatch", err)
	}
}

// TestReopenShardedBuildTag checks the build-tag leg of stamp validation:
// a device set mixing shards of differently-tagged builds is rejected, as
// is a set whose tag differs from the caller's expectation, while a
// consistently tagged set recovers.
func TestReopenShardedBuildTag(t *testing.T) {
	files, d, _ := corpus(t, 58, 4, 200, 25)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 2)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	build := func(tag uint32) []*nvm.SimDevice {
		se, err := NewSharded(gs, d, Options{BuildTag: tag})
		if err != nil {
			t.Fatalf("NewSharded(tag=%08x): %v", tag, err)
		}
		devs := make([]*nvm.SimDevice, se.NumShards())
		for i := range devs {
			devs[i] = se.Shard(i).Device()
			if err := devs[i].Crash(); err != nil {
				t.Fatalf("Crash shard %d: %v", i, err)
			}
		}
		return devs
	}
	a, b := build(0x1111), build(0x2222)
	if _, _, err := ReopenSharded([]*nvm.SimDevice{a[0], b[1]}, d, Options{}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("mixed-build devices: err = %v, want ErrShardMismatch", err)
	}
	if _, _, err := ReopenSharded(a, d, Options{BuildTag: 0x3333}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("wrong expected tag: err = %v, want ErrShardMismatch", err)
	}
	// Consistent tags matching the caller's expectation recover (Close last:
	// the recovered engine owns the devices).
	se, _, err := ReopenSharded(a, d, Options{BuildTag: 0x1111})
	if err != nil {
		t.Fatalf("matching tags rejected: %v", err)
	}
	se.Close()
}

// TestNewShardedValidation covers the constructor's error paths.
func TestNewShardedValidation(t *testing.T) {
	files, d, g := corpus(t, 57, 2, 100, 20)
	if _, err := NewSharded(nil, d, Options{}); err == nil {
		t.Error("no grammars accepted")
	}
	// Mismatched ShardDevices length is rejected before any build work.
	dev := nvm.New(nvm.KindNVM, 1<<20)
	defer dev.Discard()
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 2)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	if _, err := NewSharded(gs, d, Options{ShardDevices: []*nvm.SimDevice{dev}}); err == nil {
		t.Error("device/shard count mismatch accepted")
	}
	_ = g
}
