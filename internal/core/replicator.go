package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// ShipMode selects when a shard's replicator applies shipped commit batches
// to its followers.
type ShipMode int

// Ship modes.
const (
	// ShipSync applies every commit batch to every follower before the
	// primary's Drain returns: after any commit boundary the follower's
	// durable image is byte-identical to the primary's.
	ShipSync ShipMode = iota
	// ShipAsync queues commit batches and applies them lazily, keeping each
	// follower at most LagBound commits behind the primary.  A lagged
	// follower is still a consistent durable image — one the primary held at
	// an earlier commit boundary — so it recovers under the same contract,
	// just potentially further back.
	ShipAsync
)

// String names the ship mode.
func (m ShipMode) String() string {
	if m == ShipAsync {
		return "async"
	}
	return "sync"
}

// Replication configures per-shard follower replication for a sharded
// engine.  Each shard's primary device ships its drained persistence stream
// — which carries the shard's op-log records along with every other durable
// delta — to the shard's followers, so a follower holds a recoverable image
// of the shard and the scatter-gather path can fail over to it when the
// primary dies.
type Replication struct {
	// Followers is how many follower devices to create per shard (ignored
	// when FollowerDevices is set).
	Followers int
	// Mode selects synchronous ship-on-commit or lag-bounded async shipping.
	Mode ShipMode
	// LagBound is the maximum number of commit batches a follower may trail
	// the primary by in ShipAsync mode (default 4).
	LagBound int
	// FollowerDevices, when non-nil, injects the follower devices: one slice
	// per shard (len must equal the shard count; a shard's slice may be
	// empty).  The crash harness injects pre-armed followers this way.  On
	// successful construction the engine takes ownership; on construction
	// failure they stay with the caller, mirroring Options.ShardDevices.
	FollowerDevices [][]*nvm.SimDevice
	// ReplicaReads lets the scatter-gather planner split a multi-op batch
	// between each shard's primary and a read replica recovered from its
	// follower image, shortening the tail lane.
	ReplicaReads bool
}

// enabled reports whether any replication was requested.
func (r Replication) enabled() bool {
	return r.Followers > 0 || r.FollowerDevices != nil
}

// withDefaults resolves zero values.
func (r Replication) withDefaults() Replication {
	if r.LagBound == 0 {
		r.LagBound = 4
	}
	return r
}

// follower is one replica device and its ship state.
type follower struct {
	dev     *nvm.SimDevice
	queue   [][]nvm.ShipRange // unapplied commit batches (ShipAsync), oldest first
	applied int64             // commit batches made durable on this follower
	err     error             // non-nil once demoted: shipping to it failed
}

// replicator ships one shard primary's drained commit batches to its
// followers (the log-shipping shape: the primary's persistence stream is the
// replicated log, and applying it in order reproduces the durable image byte
// for byte).  Follower failures never propagate to the primary — a dead
// follower is demoted, recorded, and skipped — while primary failures are
// the scatter-gather path's failover trigger, not the replicator's concern.
type replicator struct {
	mu        sync.Mutex
	primary   *nvm.SimDevice
	mode      ShipMode
	lag       int
	followers []*follower // guarded by mu
}

var _ nvm.Shipper = (*replicator)(nil)

// newReplicator wires a primary to its follower devices.  Call bootstrap to
// install the initial snapshot, then attach with primary.SetShipper.
func newReplicator(primary *nvm.SimDevice, devs []*nvm.SimDevice, mode ShipMode, lag int) *replicator {
	r := &replicator{primary: primary, mode: mode, lag: lag}
	for _, dev := range devs {
		r.followers = append(r.followers, &follower{dev: dev})
	}
	return r
}

// bootstrap installs the primary's current durable image on every follower
// (the snapshot that later shipped deltas extend).  The snapshot is read
// host-side off the modeled critical path; making it durable again is
// charged at each follower.  A follower that fails during install is
// demoted; only a failure to read the primary's image errors out.
func (r *replicator) bootstrap() error {
	img := make([]byte, r.primary.Size())
	if err := r.primary.ReadDurable(img); err != nil {
		return fmt.Errorf("core: replication bootstrap: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.followers {
		if f.err != nil {
			continue
		}
		if err := installImage(f.dev, img); err != nil {
			f.err = fmt.Errorf("bootstrap: %w", err)
		}
	}
	return nil
}

// installImage makes img the device's entire durable image, with the
// pool's own ordering discipline: the body is persisted and fenced before
// the header is.  A crash mid-install then leaves either no valid header
// (recovery reloads from the compressed input) or a CRC-detectably torn
// one — never a header vouching for body contents that did not make it.
func installImage(dev *nvm.SimDevice, img []byte) error {
	const chunk = 1 << 20
	for off := 0; off < len(img); off += chunk {
		end := min(off+chunk, len(img))
		if _, err := dev.WriteAt(img[off:end], int64(off)); err != nil {
			return err
		}
	}
	hdr := min(int64(pmem.HeaderSize), int64(len(img)))
	if err := dev.Flush(hdr, int64(len(img))-hdr); err != nil {
		return err
	}
	if err := dev.Drain(); err != nil {
		return err
	}
	if err := dev.Flush(0, hdr); err != nil {
		return err
	}
	return dev.Drain()
}

// ShipCommit implements nvm.Shipper: the primary's Drain hands over each
// committed durable delta.  Sync mode applies it to every live follower
// before returning; async mode enqueues a copy and applies the oldest
// batches until the follower is within the lag bound.  Always returns nil —
// a torn follower must not fail the primary's commit.
func (r *replicator) ShipCommit(batch []nvm.ShipRange) error {
	if len(batch) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mode == ShipSync {
		for _, f := range r.followers {
			f.apply(batch)
		}
		return nil
	}
	// The batch's data windows are only valid during this call; queued
	// batches need their own copies.
	cp := make([]nvm.ShipRange, len(batch))
	for i, sr := range batch {
		cp[i] = nvm.ShipRange{Off: sr.Off, Data: append([]byte(nil), sr.Data...)}
	}
	for _, f := range r.followers {
		if f.err != nil {
			continue
		}
		f.queue = append(f.queue, cp)
		for len(f.queue) > r.lag && f.err == nil {
			f.apply(f.queue[0])
			f.queue = f.queue[1:]
		}
	}
	return nil
}

// apply makes one commit batch durable on the follower; failure demotes it.
func (f *follower) apply(batch []nvm.ShipRange) {
	if f.err != nil {
		return
	}
	for _, sr := range batch {
		if _, err := f.dev.WriteAt(sr.Data, sr.Off); err != nil {
			f.err = fmt.Errorf("ship write: %w", err)
			return
		}
		if err := f.dev.Flush(sr.Off, int64(len(sr.Data))); err != nil {
			f.err = fmt.Errorf("ship flush: %w", err)
			return
		}
	}
	if err := f.dev.Drain(); err != nil {
		f.err = fmt.Errorf("ship drain: %w", err)
		return
	}
	f.applied++
}

// catchUpLocked drains every live follower's queue (r.mu held).
func (r *replicator) catchUpLocked() {
	for _, f := range r.followers {
		for len(f.queue) > 0 && f.err == nil {
			f.apply(f.queue[0])
			f.queue = f.queue[1:]
		}
	}
}

// catchUp applies all queued batches, bringing live followers current.
func (r *replicator) catchUp() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchUpLocked()
}

// promote hands the first live follower over for failover: queued batches
// are applied first (they live in coordinator memory, which survives a
// device failure), then the freshest live follower device is removed from
// the replica set and returned along with the remaining live followers.
// The shipper is detached from the (dead) primary by the caller.
func (r *replicator) promote() (dev *nvm.SimDevice, rest []*nvm.SimDevice, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchUpLocked()
	for _, f := range r.followers {
		if f.err != nil {
			continue
		}
		if dev == nil {
			dev = f.dev
		} else {
			rest = append(rest, f.dev)
		}
	}
	if dev == nil {
		errs := []error{errors.New("core: no live follower to promote")}
		for _, f := range r.followers {
			errs = append(errs, f.err)
		}
		return nil, nil, errors.Join(errs...)
	}
	// Live followers are promoted or handed to the successor replicator;
	// demoted ones stay behind so a later close still discards their devices.
	demoted := r.followers[:0]
	for _, f := range r.followers {
		if f.err != nil {
			demoted = append(demoted, f)
		}
	}
	r.followers = demoted
	return dev, rest, nil
}

// liveFollowers returns the current live follower devices (caught up first,
// so sync-invariant checks see the shipped state, not the queue).
func (r *replicator) liveFollowers() []*nvm.SimDevice {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchUpLocked()
	var devs []*nvm.SimDevice
	for _, f := range r.followers {
		if f.err == nil {
			devs = append(devs, f.dev)
		}
	}
	return devs
}

// close detaches from the primary and discards the follower devices.
func (r *replicator) close() error {
	r.primary.SetShipper(nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for _, f := range r.followers {
		if err := f.dev.Discard(); err != nil {
			errs = append(errs, err)
		}
	}
	r.followers = nil
	return errors.Join(errs...)
}
