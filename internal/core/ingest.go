package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// Online ingestion: durable live appends with a per-engine delta grammar.
//
// The durable truth of an appendable engine is its original pool plus a
// monotonic append log reserved below the initialization watermark (so
// traversal truncation can never reclaim it).  Each Append writes one
// CRC-framed record carrying the batch's documents — tokens, names, and the
// novel word strings the batch interned — then commits it by advancing the
// region header's watermark through a pmem redo transaction.  The record
// body is flushed and drained before the header commit, so a crash recovers
// to "batch fully visible" or "batch absent", never a torn batch.
//
// Serving is layered over that durable log in DRAM: a live sequitur
// DeltaBuilder extends a delta grammar one document at a time, and after
// each commit the builder is snapshotted into a small engine over a fresh
// device, published as a refcounted deltaView.  Queries pin the view, run
// the base traversal and the delta traversal independently, and merge the
// results through analytics.MergeUnits — bit-identical to rebuilding the
// engine from the concatenated corpus, because every analytics result
// depends only on the per-file token streams.
//
// Compaction is a serving-only promotion: the base grammar and the delta
// snapshot are merged (cfg.MergeDelta) into a new engine that becomes the
// serving tail; the durable log is never rewritten (it is monotonic — when
// the region fills, Append returns ErrIngestFull).  A crash at any point
// during compaction therefore recovers the pre-compaction state trivially:
// recovery replays the log into a fresh delta over the original base.

// ingestHeaderSize is the append-log region header: committed record bytes,
// batch count, document count, vocabulary size, and the region capacity.
const ingestHeaderSize = 64

// Region-header field offsets (region-relative).
const (
	ingOffCommitted = 0  // u64 committed record bytes after the header
	ingOffBatches   = 8  // u64 committed batches
	ingOffDocs      = 16 // u64 committed appended documents
	ingOffVocab     = 24 // u64 vocabulary size after the last committed batch
	ingOffCap       = 32 // u64 region capacity after the header
)

// AppendDoc is one document of an append batch: its display name and its
// token IDs (already interned by the caller).
type AppendDoc struct {
	Name   string
	Tokens []uint32
}

// IngestBatch describes one committed append batch, as recovered from (or
// written to) the durable log.
type IngestBatch struct {
	GlobalBase uint32   // global index of the batch's first document
	Vocab      uint32   // vocabulary size after the batch
	Novel      []string // words first interned by this batch, in ID order
	Docs       []AppendDoc
}

// IngestStats is the observable ingestion state of an engine.
type IngestStats struct {
	Batches       uint64 // committed append batches
	Docs          uint64 // appended documents (including compacted ones)
	LogBytes      int64  // committed append-log bytes
	LogCap        int64  // append-log capacity
	DeltaDocs     int    // documents in the live (uncompacted) delta
	DeltaRules    int    // rules in the live delta grammar
	DeltaReused   int    // delta rules whose fingerprint the base already interned
	DeltaSymbols  int64  // live delta grammar body symbols
	CompactedDocs uint32 // appended documents folded into the serving base
	Compactions   uint64
}

// deltaView is one published snapshot of the delta serving engine, pinned by
// in-flight queries.  The engine behind it lives on its own fresh device, so
// it stays queryable even across a base-device failover.
type deltaView struct {
	st   *ingestState
	eng  *Engine // nil when the delta is empty
	docs uint32  // appended documents this view covers

	refs    int  // guarded by st.viewMu
	retired bool // guarded by st.viewMu
}

// release drops one pin; the last release of a retired view closes its
// engine.
func (v *deltaView) release() {
	if v == nil {
		return
	}
	v.st.viewMu.Lock()
	v.refs--
	closeNow := v.retired && v.refs == 0 && v.eng != nil
	v.st.viewMu.Unlock()
	if closeNow {
		_ = v.eng.Close()
	}
}

// ingestState is the per-engine ingestion state.  The root engine of a
// serving chain owns the durable log half (acc); engines promoted by
// compaction carry a serving-only state (no log) and receive their appends
// through the root.
type ingestState struct {
	e *Engine

	// Durable log half; acc.Size() == 0 on serving-only states.
	acc nvm.Accessor
	cap int64

	// mu serializes appends, compaction control, and recovery replay.
	mu        sync.Mutex
	committed int64  // guarded by mu: committed record bytes
	batches   uint64 // guarded by mu: committed batches
	docs      uint64 // guarded by mu: committed appended documents
	vocab     uint32 // guarded by mu: vocabulary size after the last batch
	infos     []IngestBatch
	// compacting rejects appends while a compaction merge is building; it is
	// read and written only under mu, but the merge itself runs unlocked.
	compacting bool

	// Serving half.
	db          *sequitur.DeltaBuilder // guarded by mu
	baseG       *cfg.Grammar           // nil on recovered engines
	compactions uint64                 // guarded by mu

	viewMu   sync.Mutex
	view     *deltaView // guarded by viewMu
	promoted *Engine    // guarded by viewMu: compacted serving tail
	retired  []*Engine  // guarded by viewMu: previous tails, closed on close

	// external marks a shard engine inside a sharded set: the coordinator
	// merges deltas globally (with document maps), so the engine's own query
	// paths serve base-only results and never self-merge or tail-redirect.
	external bool

	epoch atomic.Uint64 // committed batches + compactions (corpus epoch)
}

// newIngestState builds the root (durable-log-owning) state during engine
// initialization.  g is the base grammar; its rule fingerprints seed the
// delta builder's reuse accounting.
func newIngestState(e *Engine, acc nvm.Accessor, g *cfg.Grammar) *ingestState {
	st := &ingestState{e: e, acc: acc, cap: acc.Size() - ingestHeaderSize, baseG: g, vocab: e.numWords}
	acc.PutUint64(ingOffVocab, uint64(st.vocab))
	acc.PutUint64(ingOffCap, uint64(st.cap))
	db, err := sequitur.NewDeltaBuilder(e.numWords, g)
	if err != nil {
		// Fingerprinting a validated grammar cannot fail; fall back to a
		// builder without reuse accounting rather than losing ingestion.
		db, _ = sequitur.NewDeltaBuilder(e.numWords, nil)
	}
	st.db = db
	// Appends interleave with query sessions; shared mode serializes the
	// device's bookkeeping under concurrency.
	e.dev.Share()
	return st
}

// newServingIngest builds the serving-only state compaction attaches to a
// promoted tail engine.
func newServingIngest(e *Engine, g *cfg.Grammar, external bool) *ingestState {
	st := &ingestState{e: e, baseG: g, vocab: e.numWords, external: external}
	st.db, _ = sequitur.NewDeltaBuilder(e.numWords, g)
	e.dev.Share()
	return st
}

// close retires the serving chain: the current view's engine, every retired
// tail, and the promoted tail (recursively).
func (st *ingestState) close() {
	st.viewMu.Lock()
	v, p, retired := st.view, st.promoted, st.retired
	st.view, st.promoted, st.retired = nil, nil, nil
	st.viewMu.Unlock()
	if v != nil && v.eng != nil {
		_ = v.eng.Close()
	}
	for _, t := range retired {
		_ = t.Close() // closes the tail's own ingest state first
	}
	if p != nil {
		_ = p.Close()
	}
}

// tail returns the serving engine at the end of the promotion chain: the
// engine itself before any compaction, the latest compacted engine after.
func (st *ingestState) tail() *Engine {
	st.viewMu.Lock()
	p := st.promoted
	st.viewMu.Unlock()
	if p == nil {
		return st.e
	}
	if p.ingest != nil {
		return p.ingest.tail()
	}
	return p
}

// pinServing atomically resolves the serving tail and pins its delta view
// (nil when the tail has no appended documents).  The compaction swap
// installs the promoted engine and retires the view in one viewMu critical
// section, so a reader that finds a freshly promoted tail simply follows the
// chain — it can never observe "view gone, promotion not yet visible" and
// drop delta documents from a result.  The caller must release the view.
func (st *ingestState) pinServing() (*Engine, *deltaView) {
	for {
		t := st.tail()
		ti := t.ingest
		if ti == nil {
			return t, nil
		}
		ti.viewMu.Lock()
		promoted := ti.promoted
		v := ti.view
		if promoted == nil && v != nil {
			//ntalint:ignore guardcheck v.st == ti: the pin is taken under ti.viewMu, which is the view's own guard.
			v.refs++
		}
		ti.viewMu.Unlock()
		if promoted != nil {
			continue
		}
		return t, v
	}
}

// publishView swaps the serving view; the previous view is retired and
// closed once its last pin releases.
func (st *ingestState) publishView(eng *Engine, docs uint32) {
	nv := &deltaView{st: st, eng: eng, docs: docs}
	st.viewMu.Lock()
	old := st.view
	st.view = nv
	if old != nil {
		//ntalint:ignore guardcheck old.st == st: retired under st.viewMu, which is the view's own guard.
		old.retired = true
	}
	//ntalint:ignore guardcheck old.st == st: refs read under st.viewMu, which is the view's own guard.
	closeOld := old != nil && old.refs == 0 && old.eng != nil
	st.viewMu.Unlock()
	if closeOld {
		_ = old.eng.Close()
	}
}

// deltaOptions derives the configuration for the small serving engines built
// over delta snapshots and compacted merges: same medium, cost model, and
// analytics configuration as the base, default persistence (these engines
// are rebuilt from the durable log, never recovered in place).
func (e *Engine) deltaOptions() Options {
	return Options{
		Kind:      e.opts.Kind,
		Model:     e.opts.Model,
		Strategy:  e.opts.Strategy,
		Counters:  e.opts.Counters,
		Sequences: e.opts.Sequences,
	}
}

// rebuildDeltaView snapshots the builder (caller holds mu) and publishes a
// fresh serving engine over it.
func (st *ingestState) rebuildDeltaView() error {
	g := st.db.Grammar()
	if g == nil {
		st.publishView(nil, 0)
		return nil
	}
	eng, err := New(g, st.e.d, st.e.deltaOptions())
	if err != nil {
		return fmt.Errorf("core: build delta engine: %w", err)
	}
	st.publishView(eng, g.NumFiles)
	return nil
}

// encodeAppendRecord frames one batch for the durable log.
func encodeAppendRecord(globalBase, vocabAfter uint32, novel []string, docs []AppendDoc) []byte {
	n := 12
	for _, w := range novel {
		n += 4 + len(w)
	}
	n += 4
	for _, d := range docs {
		n += 4 + len(d.Name) + 4 + 4*len(d.Tokens)
	}
	buf := make([]byte, 8, 8+n)
	u32 := func(v uint32) {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	u32(globalBase)
	u32(vocabAfter)
	u32(uint32(len(novel)))
	for _, w := range novel {
		u32(uint32(len(w)))
		buf = append(buf, w...)
	}
	u32(uint32(len(docs)))
	for _, d := range docs {
		u32(uint32(len(d.Name)))
		buf = append(buf, d.Name...)
		u32(uint32(len(d.Tokens)))
		for _, t := range d.Tokens {
			u32(t)
		}
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-8))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// decodeAppendRecord parses one framed record; rec starts at the length
// word.  Returns the batch and the total framed size consumed.
func decodeAppendRecord(rec []byte) (IngestBatch, int64, error) {
	var b IngestBatch
	if len(rec) < 8 {
		return b, 0, fmt.Errorf("core: append record truncated (%d bytes)", len(rec))
	}
	ln := binary.LittleEndian.Uint32(rec[0:4])
	crc := binary.LittleEndian.Uint32(rec[4:8])
	if int(ln) > len(rec)-8 {
		return b, 0, fmt.Errorf("core: append record length %d beyond committed log", ln)
	}
	p := rec[8 : 8+ln]
	if crc32.ChecksumIEEE(p) != crc {
		return b, 0, fmt.Errorf("core: append record checksum mismatch")
	}
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(p) {
			return 0, fmt.Errorf("core: append record underrun at %d", pos)
		}
		v := binary.LittleEndian.Uint32(p[pos : pos+4])
		pos += 4
		return v, nil
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if pos+int(n) > len(p) {
			return "", fmt.Errorf("core: append record string underrun at %d", pos)
		}
		s := string(p[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	var err error
	var base, vocab, nNovel, nDocs uint32
	if base, err = u32(); err != nil {
		return b, 0, err
	}
	if vocab, err = u32(); err != nil {
		return b, 0, err
	}
	if nNovel, err = u32(); err != nil {
		return b, 0, err
	}
	b.GlobalBase, b.Vocab = base, vocab
	b.Novel = make([]string, 0, nNovel)
	for i := uint32(0); i < nNovel; i++ {
		w, err := str()
		if err != nil {
			return b, 0, err
		}
		b.Novel = append(b.Novel, w)
	}
	if nDocs, err = u32(); err != nil {
		return b, 0, err
	}
	b.Docs = make([]AppendDoc, 0, nDocs)
	for i := uint32(0); i < nDocs; i++ {
		name, err := str()
		if err != nil {
			return b, 0, err
		}
		nTok, err := u32()
		if err != nil {
			return b, 0, err
		}
		if pos+4*int(nTok) > len(p) {
			return b, 0, fmt.Errorf("core: append record token underrun at %d", pos)
		}
		toks := make([]uint32, nTok)
		for j := range toks {
			toks[j] = binary.LittleEndian.Uint32(p[pos : pos+4])
			pos += 4
		}
		b.Docs = append(b.Docs, AppendDoc{Name: name, Tokens: toks})
	}
	return b, int64(8 + ln), nil
}

// Append appends a batch of documents to the engine: the record is made
// durable in the append log (body first, then the watermark commit), the
// delta grammar is extended, and a fresh delta view is published.  vocab is
// the vocabulary size after interning the batch; novel lists the words the
// batch interned, in ID order (vocab - len(novel) ... vocab - 1).  Appends
// are serialized against each other but never block in-flight query
// sessions, which keep reading the previously published view.
func (e *Engine) Append(docs []AppendDoc, vocab uint32, novel []string) error {
	if e.ingest == nil {
		return ErrNoIngest
	}
	st := e.ingest
	st.mu.Lock()
	base := uint32(uint64(e.numFiles) + st.docs)
	st.mu.Unlock()
	return e.AppendAt(docs, vocab, novel, base)
}

// AppendAt is Append with an explicit global index for the batch's first
// document — the sharded coordinator routes whole batches to one shard and
// numbers documents globally across shards.
func (e *Engine) AppendAt(docs []AppendDoc, vocab uint32, novel []string, globalBase uint32) error {
	st := e.ingest
	if st == nil {
		return ErrNoIngest
	}
	if len(docs) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.compacting {
		return ErrCompacting
	}
	// The batch's pre-interning vocabulary (vocab - len(novel)) must cover
	// this engine's last committed vocabulary.  Equality is deliberately not
	// required: inside a sharded set the shared dictionary grows across all
	// shards, so a shard's recorded vocabulary lags the global one.
	if vocab < st.vocab || uint64(len(novel)) > uint64(vocab) ||
		vocab-uint32(len(novel)) < st.vocab {
		return errEngine("append", fmt.Errorf("vocabulary %d with %d novel words does not extend %d",
			vocab, len(novel), st.vocab))
	}
	for _, d := range docs {
		for _, t := range d.Tokens {
			if t >= vocab {
				return errEngine("append", fmt.Errorf("token %d beyond vocabulary %d", t, vocab))
			}
		}
	}
	rec := encodeAppendRecord(globalBase, vocab, novel, docs)
	if st.committed+int64(len(rec)) > st.cap {
		return ErrIngestFull
	}
	// Durability protocol: write and drain the record body, then move the
	// committed watermark (with the batch/doc/vocab mirrors) in one redo
	// transaction.  The body is invisible until the watermark covers it, so
	// a crash anywhere in between leaves the previous committed state.
	off := ingestHeaderSize + st.committed
	st.acc.WriteBytes(off, rec)
	if err := st.acc.Flush(off, int64(len(rec))); err != nil {
		return errEngine("append", err)
	}
	if err := e.dev.Drain(); err != nil {
		return errEngine("append", err)
	}
	tx, err := e.pool.Begin()
	if err != nil {
		return errEngine("append", err)
	}
	regionBase := st.acc.Base()
	if err := tx.WriteUint64(regionBase+ingOffCommitted, uint64(st.committed+int64(len(rec)))); err != nil {
		return errEngine("append", err)
	}
	if err := tx.WriteUint64(regionBase+ingOffBatches, st.batches+1); err != nil {
		return errEngine("append", err)
	}
	if err := tx.WriteUint64(regionBase+ingOffDocs, st.docs+uint64(len(docs))); err != nil {
		return errEngine("append", err)
	}
	if err := tx.WriteUint64(regionBase+ingOffVocab, uint64(vocab)); err != nil {
		return errEngine("append", err)
	}
	if err := tx.Commit(); err != nil {
		return errEngine("append", err)
	}
	st.committed += int64(len(rec))
	st.batches++
	st.docs += uint64(len(docs))
	st.vocab = vocab
	st.infos = append(st.infos, IngestBatch{GlobalBase: globalBase, Vocab: vocab,
		Novel: append([]string(nil), novel...), Docs: docs})

	// Serving: extend the delta at the end of the promotion chain (after a
	// compaction, new documents accumulate on the compacted tail's delta).
	ts := st.tail().ingest
	if err := st.extendServing(ts, docs, vocab); err != nil {
		return err
	}
	st.epoch.Add(1)
	return nil
}

// extendServing appends the batch's documents to the serving state's delta
// builder and publishes the new view.  The caller holds the root's mu; the
// serving state's builder is only ever mutated through the root, so no
// further lock is needed.
func (st *ingestState) extendServing(ts *ingestState, docs []AppendDoc, vocab uint32) error {
	for _, d := range docs {
		if err := ts.db.AppendDoc(d.Tokens, vocab); err != nil {
			return errEngine("append", err)
		}
	}
	ts.vocab = vocab
	return ts.rebuildDeltaView()
}

// Compact merges the serving tail's delta grammar into its base and promotes
// the merged engine as the new serving tail.  The durable log is untouched
// (recovery always replays the full delta over the original base), so a
// crash at any point during compaction is harmless.  Appends arriving while
// the merge builds are rejected with ErrCompacting; queries are never
// blocked — they keep pinning the pre-compaction view until the swap.
func (e *Engine) Compact() error {
	st := e.ingest
	if st == nil {
		return ErrNoIngest
	}
	if st.external {
		return errEngine("compact", fmt.Errorf("shard engines compact through the sharded coordinator"))
	}
	return st.compact()
}

func (st *ingestState) compact() error {
	st.mu.Lock()
	if st.compacting {
		st.mu.Unlock()
		return ErrCompacting
	}
	tailEng := st.tail()
	ts := tailEng.ingest
	if ts.baseG == nil {
		st.mu.Unlock()
		return ErrNoBaseGrammar
	}
	//ntalint:ignore guardcheck delta builders are mutated only under the root's mu, held here; ts is reached only through the promotion chain.
	dg := ts.db.Grammar()
	if dg == nil {
		st.mu.Unlock()
		return nil // nothing to compact
	}
	st.compacting = true
	st.mu.Unlock()

	merged, err := cfg.MergeDelta(ts.baseG, dg)
	var ne *Engine
	if err == nil {
		ne, err = New(merged, st.e.d, st.e.deltaOptions())
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	st.compacting = false
	if err != nil {
		return errEngine("compact", err)
	}
	ne.ingest = newServingIngest(ne, merged, st.external)
	// Swap: the merged engine becomes the serving tail; the old tail's view
	// is retired (appends were blocked, so the snapshot is current) and the
	// old tail itself is kept alive for in-flight pins until close.
	ts.viewMu.Lock()
	ts.promoted = ne
	old := ts.view
	ts.view = nil
	if old != nil {
		//ntalint:ignore guardcheck old.st == ts: retired under ts.viewMu, which is the view's own guard.
		old.retired = true
	}
	//ntalint:ignore guardcheck old.st == ts: refs read under ts.viewMu, which is the view's own guard.
	closeOld := old != nil && old.refs == 0 && old.eng != nil
	ts.viewMu.Unlock()
	if closeOld {
		_ = old.eng.Close()
	}
	if ts != st {
		// Intermediate tails stay reachable through the promotion chain; the
		// root additionally tracks them so close() releases every device.
		st.viewMu.Lock()
		st.retired = append(st.retired, tailEng)
		st.viewMu.Unlock()
	}
	st.compactions++
	st.epoch.Add(1)
	return nil
}

// CorpusEpoch returns the engine's corpus epoch: it advances on every
// committed append and every compaction, and serving layers key caches by
// it.  Zero for engines without ingestion.
func (e *Engine) CorpusEpoch() uint64 {
	if e.ingest == nil {
		return 0
	}
	return e.ingest.epoch.Load()
}

// IngestBatches returns the committed append batches in commit order — the
// durable history recovery replays, exposed for coordinators and tooling.
func (e *Engine) IngestBatches() []IngestBatch {
	if e.ingest == nil {
		return nil
	}
	e.ingest.mu.Lock()
	defer e.ingest.mu.Unlock()
	return append([]IngestBatch(nil), e.ingest.infos...)
}

// IngestStats reports the engine's ingestion state; zero value when the
// engine was built without ingestion.
func (e *Engine) IngestStats() IngestStats {
	st := e.ingest
	if st == nil {
		return IngestStats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tailEng := st.tail()
	out := IngestStats{
		Batches:       st.batches,
		Docs:          st.docs,
		LogBytes:      st.committed,
		LogCap:        st.cap,
		CompactedDocs: tailEng.numFiles - st.e.numFiles,
		Compactions:   st.compactions,
	}
	//ntalint:ignore guardcheck delta builders are mutated only under the root's mu, held here; the tail is reached only through the promotion chain.
	if ds, err := tailEng.ingest.db.Stats(); err == nil {
		out.DeltaDocs = ds.Docs
		out.DeltaRules = ds.Rules
		out.DeltaReused = ds.Reused
		out.DeltaSymbols = ds.Symbols
	}
	return out
}

// ingestEnv is the Env merged-query folds consume: whole-corpus shape (base
// plus appended documents), charging to the caller's meter, no sequence-key
// resolution (unit results arrive already Seq-keyed).
type ingestEnv struct {
	d      *dict.Dictionary
	nfiles int
	meter  *metrics.Meter
}

func (e ingestEnv) Dict() *dict.Dictionary     { return e.d }
func (e ingestEnv) NumFiles() int              { return e.nfiles }
func (e ingestEnv) SeqOf(uint64) analytics.Seq { panic("core: merge env resolves no sequence keys") }
func (e ingestEnv) Charge(n, perOp int64)      { e.meter.Charge(n, perOp) }

// runDeltaOps executes ops against a pinned delta view through a transient
// query session (the view's engine is read-shared by concurrent queries).
func (v *deltaView) runDeltaOps(ops []analytics.Op) ([]any, error) {
	sess := v.eng.NewSession()
	return sess.runOpsLocal(nil, ops)
}

// mergeDelta merges base results with the pinned view's delta results.
// Unsharded appends are globally contiguous after the base documents, so the
// delta unit merges with a plain DocBase.
func mergeDelta(ops []analytics.Op, base, delta []any, docBase uint32, env ingestEnv) ([]any, error) {
	out := make([]any, len(ops))
	for j, op := range ops {
		r, err := analytics.MergeUnits(op, env, []analytics.MergeUnit{
			{Result: base[j], DocBase: 0},
			{Result: delta[j], DocBase: docBase},
		})
		if err != nil {
			return nil, err
		}
		out[j] = r
	}
	return out, nil
}

// serveMerged is the shared read path of an appendable engine: redirect to
// the compacted serving tail, pin the delta view, run base and delta, merge.
// runBase executes ops against the given serving engine (the engine task
// path or a session, per caller).
func (st *ingestState) serveMerged(ops []analytics.Op, meter *metrics.Meter,
	runBase func(t *Engine) ([]any, error)) ([]any, error) {
	t, v := st.pinServing()
	defer v.release()
	base, err := runBase(t)
	if err != nil {
		return nil, err
	}
	if v == nil || v.eng == nil {
		return base, nil
	}
	delta, err := v.runDeltaOps(ops)
	if err != nil {
		return nil, err
	}
	env := ingestEnv{d: st.e.d, nfiles: int(t.numFiles + v.docs), meter: meter}
	return mergeDelta(ops, base, delta, t.numFiles, env)
}

// recoverIngest reattaches the append-log region after Reopen and replays
// every committed record: the batch history is decoded, the delta builder is
// rebuilt by replaying the documents (sequitur inference is deterministic,
// so the delta grammar is bit-identical to the pre-crash one), and the
// serving view is republished.  The base grammar is gone, so compaction is
// unavailable until the corpus is recompressed (ErrNoBaseGrammar).
func (e *Engine) recoverIngest(regionOff int64) error {
	hdr := e.pool.AccessorAt(regionOff, ingestHeaderSize)
	capBytes := int64(hdr.Uint64(ingOffCap))
	if capBytes <= 0 || regionOff+ingestHeaderSize+capBytes > e.pool.Size() {
		return fmt.Errorf("%w: append-log region [%d, +%d) outside pool",
			ErrNeedsReload, regionOff, ingestHeaderSize+capBytes)
	}
	acc := e.pool.AccessorAt(regionOff, ingestHeaderSize+capBytes)
	committed := int64(hdr.Uint64(ingOffCommitted))
	batches := hdr.Uint64(ingOffBatches)
	docs := hdr.Uint64(ingOffDocs)
	vocab := uint32(hdr.Uint64(ingOffVocab))
	if committed < 0 || committed > capBytes {
		return fmt.Errorf("%w: append-log watermark %d beyond capacity %d",
			ErrNeedsReload, committed, capBytes)
	}
	st := &ingestState{e: e, acc: acc, cap: capBytes}
	st.db, _ = sequitur.NewDeltaBuilder(e.numWords, nil)
	st.vocab = e.numWords
	e.dev.Share()

	raw := make([]byte, committed)
	acc.ReadBytes(ingestHeaderSize, raw)
	var pos int64
	for pos < committed {
		b, n, err := decodeAppendRecord(raw[pos:])
		if err != nil {
			return fmt.Errorf("%w: append log at %d: %v", ErrNeedsReload, pos, err)
		}
		for _, d := range b.Docs {
			if err := st.db.AppendDoc(d.Tokens, b.Vocab); err != nil {
				return fmt.Errorf("%w: replay append: %v", ErrNeedsReload, err)
			}
		}
		st.vocab = b.Vocab
		st.infos = append(st.infos, b)
		pos += n
	}
	if uint64(len(st.infos)) != batches || st.db.Docs() != uint32(docs) || st.vocab != vocab {
		return fmt.Errorf("%w: append log replay mismatch (%d/%d batches, %d/%d docs)",
			ErrNeedsReload, len(st.infos), batches, st.db.Docs(), docs)
	}
	st.committed, st.batches, st.docs = committed, batches, docs
	st.epoch.Store(batches)
	e.ingest = st
	return st.rebuildDeltaView()
}

// restoreVocabulary re-interns the novel words of the given batches (already
// sorted by GlobalBase — global append order) into d, verifying each word
// lands on the ID the durable record assigned.  A dictionary that already
// contains the words (a reopen with the archive's dictionary) verifies
// silently; a fresh dictionary is extended deterministically.
func restoreVocabulary(d *dict.Dictionary, batches []IngestBatch) error {
	for _, b := range batches {
		next := b.Vocab - uint32(len(b.Novel))
		for k, w := range b.Novel {
			want := next + uint32(k)
			if got := d.Intern(w); got != want {
				return fmt.Errorf("core: recovered word %q interned at %d, log recorded %d", w, got, want)
			}
		}
	}
	return nil
}
