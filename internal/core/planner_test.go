package core

import (
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/metrics"
)

func TestChooseStrategy(t *testing.T) {
	// The shape vectors below are planFeatures outputs measured on the
	// benchmark grammars (the §VI-E calibration, see EXPERIMENTS.md); the
	// model must agree with the measured-fastest direction on each.

	// One file always resolves top-down: a single root sweep beats merging
	// every rule's word list (dataset A shape).
	if got := chooseStrategy(1, 1115, 5769, 59274); got != TopDown {
		t.Errorf("1 file: %v, want top-down", got)
	}
	// The §VI-E trend table's 400-file point on dataset B is already
	// measured 1.4x slower top-down; the planner must agree.
	if got := chooseStrategy(400, 1689, 8740, 52746); got != BottomUp {
		t.Errorf("400 tiny files: %v, want bottom-up", got)
	}
	// ...and stays bottom-up as B scales to 1600 files.
	if got := chooseStrategy(1600, 4912, 26206, 160554); got != BottomUp {
		t.Errorf("1600 tiny files: %v, want bottom-up", got)
	}
	// Dataset D: 96 deep documents over a wide vocabulary are measured 1.4x
	// faster top-down — the shape a bare file-count threshold misclassifies.
	if got := chooseStrategy(96, 11366, 87769, 1467523); got != TopDown {
		t.Errorf("96 deep documents: %v, want top-down", got)
	}
	// Monotone in file count: once bottom-up wins for some F, it keeps
	// winning for every larger F at the same grammar shape (merge work does
	// not grow with F here, only the top-down sweep does).
	flipped := false
	for f := uint32(1); f <= 4096; f *= 2 {
		s := chooseStrategy(f, 5000, 15000, 500_000)
		if s == BottomUp {
			flipped = true
		} else if flipped {
			t.Fatalf("strategy flipped back to top-down at %d files", f)
		}
	}
	if !flipped {
		t.Fatal("bottom-up never chosen over 5k rules up to 4096 files")
	}
}

func TestPackLanesDeterministicLPT(t *testing.T) {
	costs := []int64{50, 10, 40, 10, 30}
	got := packLanes(costs, 2)
	// LPT: 50->lane0, 40->lane1, 30->lane1(70? no: loads 50/40, least is
	// lane1)->lane1=70, 10->lane0=60, 10->lane0=70.
	want := [][]int{{0, 1, 3}, {2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packLanes = %v, want %v", got, want)
	}
	// Equal costs tie-break by index, and repeated runs are identical.
	eq := []int64{7, 7, 7, 7}
	a, b := packLanes(eq, 3), packLanes(eq, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("packLanes not deterministic: %v vs %v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("packLanes dropped lanes: %v", a)
	}
	// More lanes than shards: empty lanes are dropped.
	if got := packLanes([]int64{5}, 4); !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("packLanes single shard = %v", got)
	}
}

func TestPlanFanout(t *testing.T) {
	// Realistic shards dwarf dispatch overhead: full fan-out.
	big := []int64{5_000_000, 4_000_000, 4_500_000, 3_000_000}
	lanes := planFanout(big)
	if len(lanes) != len(big) {
		t.Fatalf("big shards packed into %d lanes, want %d", len(lanes), len(big))
	}
	seen := make(map[int]bool)
	for _, lane := range lanes {
		for _, i := range lane {
			if seen[i] {
				t.Fatalf("shard %d scheduled twice: %v", i, lanes)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(big) {
		t.Fatalf("schedule covers %d of %d shards", len(seen), len(big))
	}
	// Trivial shards are folded together: parallelism cannot recoup the
	// per-lane dispatch cost, so the plan collapses to one lane.
	tiny := []int64{10, 10, 10, 10}
	if lanes := planFanout(tiny); len(lanes) != 1 {
		t.Fatalf("trivial shards got %d lanes, want 1: %v", len(lanes), lanes)
	}
	// One heavy shard among moderate ones: a second lane pays for its
	// dispatch (moving 3 x 3600 off the heavy lane saves far more than the
	// extra 1200), but a third lane would cost more than it saves.
	mixed := []int64{10 * laneDispatchCost, 3 * laneDispatchCost, 3 * laneDispatchCost, 3 * laneDispatchCost}
	lanes = planFanout(mixed)
	if len(lanes) != 2 {
		t.Fatalf("mixed shards got %d lanes, want 2: %v", len(lanes), lanes)
	}
}

func TestMergeScheduledLaneAccounting(t *testing.T) {
	spans := []metrics.Span{
		{CPUNanos: 100},
		{CPUNanos: 200},
		{CPUNanos: 50},
	}
	// Lane 0 runs spans 0 and 2 serially (150), lane 1 runs span 1 (200).
	merged := metrics.MergeScheduled([][]int{{0, 2}, {1}}, spans)
	if got := int64(merged.Total()); got != 200 {
		t.Errorf("critical path = %d, want slowest lane 200", got)
	}
	if merged.CPUNanos != 350 {
		t.Errorf("CPU = %d, want summed 350", merged.CPUNanos)
	}
	// A serial lane longer than any single span dominates.
	merged = metrics.MergeScheduled([][]int{{0, 1, 2}}, spans)
	if got := int64(merged.Total()); got != 350 {
		t.Errorf("single-lane critical path = %d, want 350", got)
	}
	// Full fan-out reduces to MergeParallel.
	par := metrics.MergeParallel(spans...)
	sched := metrics.MergeScheduled([][]int{{0}, {1}, {2}}, spans)
	if par.Total() != sched.Total() || par.CPUNanos != sched.CPUNanos {
		t.Errorf("full fan-out %v != parallel merge %v", sched, par)
	}
}
