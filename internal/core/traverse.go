package core

import (
	"slices"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// Generic traversal machinery.  The per-task logic lives in
// internal/analytics as Op folds; this file owns the traversal phase
// lifecycle, the persistent counter protocol, the pool read helpers, and the
// two word-keyed DAG walks (top-down global, per-file in both strategies)
// that the kernel (kernel.go) drives.

// beginTraversal opens the graph-traversal phase: traversal-phase scratch
// from any previous task is released (its checkpointed results are
// superseded), and the measurement span starts.  The op-level log reset
// flushes, so device failures surface here.
func (e *Engine) beginTraversal() (*metrics.Span, error) {
	if err := e.pool.Truncate(e.initTop); err != nil {
		return nil, err
	}
	e.travTables = make(map[int64]counterTable)
	e.travDirty = make(map[int64]bool)
	if e.oplog != nil {
		if err := e.oplog.reset(e.pool.Epoch()); err != nil {
			return nil, err
		}
	}
	return metrics.Start(e.dev, e.meter), nil
}

// endTraversal commits the phase: the result table offset and task are
// recorded, and the pool is checkpointed (phase-level persistence; the
// operation-level log has already made each mutation durable).
func (e *Engine) endTraversal(span *metrics.Span, task analytics.Task, resultOff int64) error {
	offs := make([]int64, 0, len(e.travTables))
	for off := range e.travTables {
		offs = append(offs, off)
	}
	slices.Sort(offs)
	for _, off := range offs {
		e.travTables[off].SyncLen() // counts ride along with the checkpoint flush below
	}
	if e.oplog != nil {
		// Invalidate the log before the checkpoint flushes table contents:
		// delta records are not idempotent, so valid records must never
		// coexist with durable tables that already contain them — a crash
		// between the checkpoint's data drain and its header commit would
		// otherwise double-apply every operation on recovery.  The records
		// are superseded by the checkpoint being taken either way.
		if err := e.oplog.reset(e.pool.Epoch()); err != nil {
			span.Stop()
			return err
		}
	}
	e.pool.SetRoot(rootResult, resultOff)
	e.pool.SetRoot(rootTaskID, int64(task))
	err := e.pool.Checkpoint(phaseTraversal)
	span.Stop()
	e.lastTrav = *span
	return err
}

// newCounter allocates a bounded result counter over the given key space,
// registers it for operation-level replay, and (in op-level mode) makes its
// empty state durable immediately, as a transactional allocator would.
func (e *Engine) newCounter(bound, keySpace int64) (counterTable, int64, error) {
	tbl, err := e.newTable(bound, keySpace)
	if err != nil {
		return nil, 0, err
	}
	off := tbl.Base()
	if off >= 0 {
		e.travTables[off] = tbl
		if e.oplog != nil {
			// The structure's empty state must be durable at allocation
			// so its durable image is always consistent: empty until the
			// first log compaction flushes it, the compacted contents
			// afterwards.  Replay applies the current-epoch log on top of
			// whichever is durable.
			if err := tbl.FlushInit(); err != nil {
				return nil, 0, err
			}
			if err := e.pool.FlushHeader(); err != nil {
				return nil, 0, err
			}
		}
	}
	return tbl, off, nil
}

// addCount performs one counter mutation under the configured persistence
// strategy.  Write-ahead ordering matters: the redo record is appended
// before the table mutation, so a log compaction triggered by the append
// (which flushes the table) can never capture an effect that the fresh log
// epoch will replay again.
func (e *Engine) addCount(tbl counterTable, tblOff int64, key, delta uint64) error {
	if e.oplog != nil {
		e.travDirty[tblOff] = true
		if err := e.oplog.append(e, tblOff, key, delta); err != nil {
			return err
		}
	}
	if _, err := tbl.Add(key, delta); err != nil {
		return err
	}
	if e.oplog != nil && e.opts.PerOpCommit {
		// The naive port wraps every mutation in a general-purpose PMDK
		// transaction; charge its software overhead too.
		e.meter.Charge(1, metrics.CostTxOverhead)
		return e.oplog.commit()
	}
	return nil
}

// opCommit fences the redo log after one analytics operation (a rule
// processed, a file merged): the operation-level persistence boundary.
func (e *Engine) opCommit() error {
	if e.oplog == nil {
		return nil
	}
	return e.oplog.commit()
}

// readBodyPairs reads a pruned body: subCount subrule pairs then wordCount
// word pairs, decoding the compact frequency-follows encoding after one
// bulk device read (length prefix, then the pair stream).
func (x *exec) readBodyPairs(r uint32) (subs, words []pair) {
	e := x.e
	m := e.meta(r)
	ns, nw := int64(m.subCount()), int64(m.wordCount())
	if ns+nw == 0 {
		return nil, nil
	}
	bodyOff := m.bodyOff()
	hdr := e.pool.AccessorAt(bodyOff, 4)
	n := int64(hdr.Uint32(0))
	if int64(cap(x.bodyFlat)) < n {
		x.bodyFlat = make([]uint32, n)
	}
	flat := x.bodyFlat[:n]
	e.pool.AccessorAt(bodyOff+4, n*4).Uint32s(0, flat)
	x.meter.Charge(ns+nw, metrics.CostScanToken)
	if int64(cap(x.bodySubs)) < ns {
		x.bodySubs = make([]pair, ns)
	}
	if int64(cap(x.bodyWords)) < nw {
		x.bodyWords = make([]pair, nw)
	}
	subs = x.bodySubs[:ns]
	words = x.bodyWords[:nw]
	pos := 0
	for i := int64(0); i < ns+nw; i++ {
		id := flat[pos]
		pos++
		freq := uint32(1)
		if id&freqFollows != 0 {
			id &^= freqFollows
			freq = flat[pos]
			pos++
		}
		if i < ns {
			subs[i] = pair{id: id, freq: freq}
		} else {
			words[i-ns] = pair{id: id, freq: freq}
		}
	}
	return subs, words
}

// readRawBody reads an untrimmed body (NoPruning ablation).
func (x *exec) readRawBody(r uint32) []cfg.Symbol {
	e := x.e
	m := e.meta(r)
	n := int64(m.subCount())
	if n == 0 {
		return nil
	}
	if int64(cap(x.bodyFlat)) < n {
		x.bodyFlat = make([]uint32, n)
	}
	flat := x.bodyFlat[:n]
	e.pool.AccessorAt(m.bodyOff(), n*4).Uint32s(0, flat)
	x.meter.Charge(n, metrics.CostScanToken)
	if int64(cap(x.rawSyms)) < n {
		x.rawSyms = make([]cfg.Symbol, n)
	}
	out := x.rawSyms[:n]
	for i, v := range flat {
		out[i] = cfg.Symbol(v)
	}
	return out
}

// readRoot reads the ordered root body.
func (x *exec) readRoot() []cfg.Symbol {
	e := x.e
	x.meter.Charge(e.rootLen, metrics.CostScanToken)
	out := make([]cfg.Symbol, e.rootLen)
	flat := make([]uint32, e.rootLen)
	e.rootAcc.Uint32s(8, flat)
	for i, v := range flat {
		out[i] = cfg.Symbol(v)
	}
	return out
}

// readTopo reads the topological order.
func (x *exec) readTopo() []uint32 {
	out := make([]uint32, x.e.numRules)
	x.e.topoAcc.Uint32s(0, out)
	return out
}

// globalBound returns the result-table bound for corpus-wide word counters:
// the Algorithm 2 bound clamped by the words that actually occur, which the
// dictionary pass knows exactly at initialization.
func (e *Engine) globalBound() int64 {
	m := e.meta(0)
	b := tableBound(m.bound(), m.expLen(), e.numWords)
	if e.distinctWords > 0 && e.distinctWords < b {
		b = e.distinctWords
	}
	return b
}

// topDownPass propagates rule weights root-down in topological order, using
// the traversal queue (§IV-B, Figure 3).  When emit is non-nil, every word
// occurrence is delivered as weight x frequency from the same body reads —
// word-keyed global ops ride along with the weight propagation for free.
// When emit is nil the pass is weight-only (the sequence decomposition's
// prerequisite); no counter is touched, so the per-rule commits are no-ops.
func (x *exec) topDownPass(emit func(word uint32, count uint64) error) error {
	e := x.e
	// Reset weight slots and set the remaining-parents scratch.
	for r := uint32(0); r < e.numRules; r++ {
		x.setWeight(r, 0)
		x.setRemaining(r, uint64(e.meta(r).inDeg()))
	}
	queue, err := x.newQueue(int64(e.numRules))
	if err != nil {
		return err
	}
	x.setWeight(0, 1)
	if err := queue.push(0); err != nil {
		return err
	}
	for queue.len() > 0 {
		if err := x.canceled(); err != nil {
			return err
		}
		r, err := queue.pop()
		if err != nil {
			return err
		}
		w := x.weight(r)
		bump := func(sub uint32, freq uint64) error {
			x.setWeight(sub, x.weight(sub)+w*freq)
			left := x.remaining(sub) - freq
			x.setRemaining(sub, left)
			if left == 0 {
				return queue.push(sub)
			}
			return nil
		}
		if e.opts.NoPruning {
			for _, s := range x.readRawBody(r) {
				switch {
				case s.IsWord():
					if emit != nil {
						if err := emit(s.WordID(), w); err != nil {
							return err
						}
					}
				case s.IsRule():
					if err := bump(s.RuleIndex(), 1); err != nil {
						return err
					}
				}
			}
			if err := x.commit(); err != nil {
				return err
			}
			continue
		}
		subs, words := x.readBodyPairs(r)
		for _, p := range subs {
			if err := bump(p.id, uint64(p.freq)); err != nil {
				return err
			}
		}
		if emit != nil {
			for _, p := range words {
				if err := emit(p.id, w*uint64(p.freq)); err != nil {
					return err
				}
			}
		}
		if err := x.commit(); err != nil {
			return err
		}
	}
	return nil
}

// topDownGlobal runs the top-down pass accumulating weight x frequency for
// every word into counter (the historical single-counter entry point, kept
// for the crash-consistency tests that drive traversals by hand).
func (e *Engine) topDownGlobal(counter counterTable, counterOff int64) error {
	return e.run.topDownPass(func(w uint32, count uint64) error {
		return e.addCount(counter, counterOff, uint64(w), count)
	})
}

// computeWeights runs the weight-only top-down pass, leaving each rule's
// corpus-wide weight in its metadata slot (or session array).
func (e *Engine) computeWeights() error {
	return e.run.topDownPass(nil)
}

// segmentsOf splits the pool root body at separators.
func segmentsOf(root []cfg.Symbol) [][]cfg.Symbol {
	var segs [][]cfg.Symbol
	start := 0
	for i, s := range root {
		if s.IsSep() {
			segs = append(segs, root[start:i])
			start = i + 1
		}
	}
	return segs
}

// segBound computes a file counter's bound from per-rule metadata.
func (e *Engine) segBound(seg []cfg.Symbol) int64 {
	var bound, length int64
	for _, s := range seg {
		switch {
		case s.IsWord():
			bound++
			length++
		case s.IsRule():
			m := e.meta(s.RuleIndex())
			bound += m.bound()
			length += m.expLen()
		}
	}
	return tableBound(bound, length, e.numWords)
}

// perFilePass computes per-file counters with the configured traversal
// strategy, invoking fn with each file's word and/or sequence counter before
// its scratch is released.  A fused batch requesting both key spaces walks
// the root once and shares each file's body reads between them.
func (x *exec) perFilePass(words, seqs bool, fn func(doc uint32, wordC, seqC *kcounter) error) error {
	switch x.e.resolveStrategy() {
	case BottomUp:
		return x.perFileBottomUp(words, seqs, fn)
	default:
		return x.perFileTopDown(words, seqs, fn)
	}
}

// perFileBottomUp materializes every rule's word list in a bounded table
// (reverse topological order), then merges top-level lists per file — the
// fast path for many-file corpora.  Sequence counters reuse the per-rule
// n-gram tables stored at initialization (§IV-D), so no word lists are
// built unless a word-keyed op asked for them.
func (x *exec) perFileBottomUp(words, seqs bool, fn func(doc uint32, wordC, seqC *kcounter) error) error {
	e := x.e
	var lists []*kcounter
	if words {
		topo := x.readTopo()
		lists = make([]*kcounter, e.numRules)
		for i := len(topo) - 1; i >= 0; i-- {
			if err := x.canceled(); err != nil {
				return err
			}
			r := topo[i]
			m := e.meta(r)
			tbl, err := x.newKCounter(tableBound(m.bound(), m.expLen(), e.numWords), int64(e.numWords))
			if err != nil {
				return err
			}
			lists[r] = tbl
			if e.opts.NoPruning {
				for _, s := range x.readRawBody(r) {
					switch {
					case s.IsWord():
						if err := x.add(tbl, uint64(s.WordID()), 1); err != nil {
							return err
						}
					case s.IsRule():
						var mergeErr error
						lists[s.RuleIndex()].Range(func(k, v uint64) bool {
							mergeErr = x.add(tbl, k, v)
							return mergeErr == nil
						})
						if mergeErr != nil {
							return mergeErr
						}
					}
				}
				continue
			}
			subs, ws := x.readBodyPairs(r)
			for _, p := range ws {
				if err := x.add(tbl, uint64(p.id), uint64(p.freq)); err != nil {
					return err
				}
			}
			for _, p := range subs {
				f := uint64(p.freq)
				var mergeErr error
				lists[p.id].Range(func(k, v uint64) bool {
					mergeErr = x.add(tbl, k, v*f)
					return mergeErr == nil
				})
				if mergeErr != nil {
					return mergeErr
				}
			}
			if err := x.commit(); err != nil {
				return err
			}
		}
	}
	root := x.readRoot()
	for doc, seg := range segmentsOf(root) {
		if err := x.canceled(); err != nil {
			return err
		}
		var wc, sc *kcounter
		if words {
			var err error
			if wc, err = x.newKCounter(e.segBound(seg), int64(e.numWords)); err != nil {
				return err
			}
			for _, s := range seg {
				switch {
				case s.IsWord():
					if err := x.add(wc, uint64(s.WordID()), 1); err != nil {
						return err
					}
				case s.IsRule():
					var mergeErr error
					lists[s.RuleIndex()].Range(func(k, v uint64) bool {
						mergeErr = x.add(wc, k, v)
						return mergeErr == nil
					})
					if mergeErr != nil {
						return mergeErr
					}
				}
			}
			if err := x.commit(); err != nil {
				return err
			}
		}
		if seqs {
			var err error
			if sc, err = x.newKCounter(x.seqBound(seg), int64(len(e.seqList))); err != nil {
				return err
			}
			if err := x.addSegmentSeqCounts(seg, sc); err != nil {
				return err
			}
		}
		if err := fn(uint32(doc), wc, sc); err != nil {
			return err
		}
	}
	return nil
}

// perFileTopDown traverses the whole DAG once per file: weights of the
// file's top-level rules propagate down the full topological order.  Cost
// is O(files x rules) even for tiny files — the §VI-E slow path.  When both
// key spaces are requested, one sweep per file feeds the word counter and
// captures the per-file rule weights that scale the local-window tables.
func (x *exec) perFileTopDown(words, seqs bool, fn func(doc uint32, wordC, seqC *kcounter) error) error {
	e := x.e
	topo := x.readTopo()
	// Zero all weight slots once; the sweep per file below re-zeroes as it
	// consumes them.
	for r := uint32(0); r < e.numRules; r++ {
		x.setWeight(r, 0)
	}
	root := x.readRoot()
	var fileWeight []uint64
	if seqs {
		fileWeight = make([]uint64, e.numRules)
	}
	for doc, seg := range segmentsOf(root) {
		if err := x.canceled(); err != nil {
			return err
		}
		var wc, sc *kcounter
		var err error
		if words {
			if wc, err = x.newKCounter(e.segBound(seg), int64(e.numWords)); err != nil {
				return err
			}
		}
		if seqs {
			if sc, err = x.newKCounter(x.seqBound(seg), int64(len(e.seqList))); err != nil {
				return err
			}
		}
		for _, s := range seg {
			switch {
			case s.IsWord():
				if words {
					if err := x.add(wc, uint64(s.WordID()), 1); err != nil {
						return err
					}
				}
			case s.IsRule():
				x.setWeight(s.RuleIndex(), x.weight(s.RuleIndex())+1)
			}
		}
		if seqs {
			clear(fileWeight)
		}
		for _, r := range topo {
			w := x.weight(r)
			if w == 0 {
				continue
			}
			if err := x.canceled(); err != nil {
				return err
			}
			x.setWeight(r, 0)
			if seqs {
				fileWeight[r] = w
			}
			if e.opts.NoPruning {
				for _, s := range x.readRawBody(r) {
					switch {
					case s.IsWord():
						if words {
							if err := x.add(wc, uint64(s.WordID()), w); err != nil {
								return err
							}
						}
					case s.IsRule():
						x.setWeight(s.RuleIndex(), x.weight(s.RuleIndex())+w)
					}
				}
				continue
			}
			subs, ws := x.readBodyPairs(r)
			for _, p := range subs {
				x.setWeight(p.id, x.weight(p.id)+w*uint64(p.freq))
			}
			if words {
				for _, p := range ws {
					if err := x.add(wc, uint64(p.id), w*uint64(p.freq)); err != nil {
						return err
					}
				}
			}
		}
		if words {
			if err := x.commit(); err != nil {
				return err
			}
		}
		if seqs {
			if err := x.addWeightedLocals(sc, func(r uint32) uint64 { return fileWeight[r] }); err != nil {
				return err
			}
			if err := x.addSpanningToCounter(seg, sc); err != nil {
				return err
			}
		}
		if err := fn(uint32(doc), wc, sc); err != nil {
			return err
		}
	}
	return nil
}
