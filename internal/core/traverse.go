package core

import (
	"slices"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// beginTraversal opens the graph-traversal phase: traversal-phase scratch
// from any previous task is released (its checkpointed results are
// superseded), and the measurement span starts.  The op-level log reset
// flushes, so device failures surface here.
func (e *Engine) beginTraversal() (*metrics.Span, error) {
	if err := e.pool.Truncate(e.initTop); err != nil {
		return nil, err
	}
	e.travTables = make(map[int64]counterTable)
	e.travDirty = make(map[int64]bool)
	if e.oplog != nil {
		if err := e.oplog.reset(e.pool.Epoch()); err != nil {
			return nil, err
		}
	}
	return metrics.Start(e.dev, e.meter), nil
}

// endTraversal commits the phase: the result table offset and task are
// recorded, and the pool is checkpointed (phase-level persistence; the
// operation-level log has already made each mutation durable).
func (e *Engine) endTraversal(span *metrics.Span, task analytics.Task, resultOff int64) error {
	offs := make([]int64, 0, len(e.travTables))
	for off := range e.travTables {
		offs = append(offs, off)
	}
	slices.Sort(offs)
	for _, off := range offs {
		e.travTables[off].SyncLen() // counts ride along with the checkpoint flush below
	}
	if e.oplog != nil {
		// Invalidate the log before the checkpoint flushes table contents:
		// delta records are not idempotent, so valid records must never
		// coexist with durable tables that already contain them — a crash
		// between the checkpoint's data drain and its header commit would
		// otherwise double-apply every operation on recovery.  The records
		// are superseded by the checkpoint being taken either way.
		if err := e.oplog.reset(e.pool.Epoch()); err != nil {
			span.Stop()
			return err
		}
	}
	e.pool.SetRoot(rootResult, resultOff)
	e.pool.SetRoot(rootTaskID, int64(task))
	err := e.pool.Checkpoint(phaseTraversal)
	span.Stop()
	e.lastTrav = *span
	return err
}

// newCounter allocates a bounded result counter over the given key space,
// registers it for operation-level replay, and (in op-level mode) makes its
// empty state durable immediately, as a transactional allocator would.
func (e *Engine) newCounter(bound, keySpace int64) (counterTable, int64, error) {
	tbl, err := e.newTable(bound, keySpace)
	if err != nil {
		return nil, 0, err
	}
	off := tbl.Base()
	if off >= 0 {
		e.travTables[off] = tbl
		if e.oplog != nil {
			// The structure's empty state must be durable at allocation
			// so its durable image is always consistent: empty until the
			// first log compaction flushes it, the compacted contents
			// afterwards.  Replay applies the current-epoch log on top of
			// whichever is durable.
			if err := tbl.FlushInit(); err != nil {
				return nil, 0, err
			}
			if err := e.pool.FlushHeader(); err != nil {
				return nil, 0, err
			}
		}
	}
	return tbl, off, nil
}

// addCount performs one counter mutation under the configured persistence
// strategy.  Write-ahead ordering matters: the redo record is appended
// before the table mutation, so a log compaction triggered by the append
// (which flushes the table) can never capture an effect that the fresh log
// epoch will replay again.
func (e *Engine) addCount(tbl counterTable, tblOff int64, key, delta uint64) error {
	if e.oplog != nil {
		e.travDirty[tblOff] = true
		if err := e.oplog.append(e, tblOff, key, delta); err != nil {
			return err
		}
	}
	if _, err := tbl.Add(key, delta); err != nil {
		return err
	}
	if e.oplog != nil && e.opts.PerOpCommit {
		// The naive port wraps every mutation in a general-purpose PMDK
		// transaction; charge its software overhead too.
		e.meter.Charge(1, metrics.CostTxOverhead)
		return e.oplog.commit()
	}
	return nil
}

// opCommit fences the redo log after one analytics operation (a rule
// processed, a file merged): the operation-level persistence boundary.
func (e *Engine) opCommit() error {
	if e.oplog == nil {
		return nil
	}
	return e.oplog.commit()
}

// readBodyPairs reads a pruned body: subCount subrule pairs then wordCount
// word pairs, decoding the compact frequency-follows encoding after one
// bulk device read (length prefix, then the pair stream).
func (e *Engine) readBodyPairs(r uint32) (subs, words []pair) {
	m := e.meta(r)
	ns, nw := int64(m.subCount()), int64(m.wordCount())
	if ns+nw == 0 {
		return nil, nil
	}
	bodyOff := m.bodyOff()
	hdr := e.pool.AccessorAt(bodyOff, 4)
	n := int64(hdr.Uint32(0))
	if int64(cap(e.bodyFlat)) < n {
		e.bodyFlat = make([]uint32, n)
	}
	flat := e.bodyFlat[:n]
	e.pool.AccessorAt(bodyOff+4, n*4).Uint32s(0, flat)
	e.meter.Charge(ns+nw, metrics.CostScanToken)
	if int64(cap(e.bodySubs)) < ns {
		e.bodySubs = make([]pair, ns)
	}
	if int64(cap(e.bodyWords)) < nw {
		e.bodyWords = make([]pair, nw)
	}
	subs = e.bodySubs[:ns]
	words = e.bodyWords[:nw]
	pos := 0
	for i := int64(0); i < ns+nw; i++ {
		id := flat[pos]
		pos++
		freq := uint32(1)
		if id&freqFollows != 0 {
			id &^= freqFollows
			freq = flat[pos]
			pos++
		}
		if i < ns {
			subs[i] = pair{id: id, freq: freq}
		} else {
			words[i-ns] = pair{id: id, freq: freq}
		}
	}
	return subs, words
}

// readRawBody reads an untrimmed body (NoPruning ablation).
func (e *Engine) readRawBody(r uint32) []cfg.Symbol {
	m := e.meta(r)
	n := int64(m.subCount())
	if n == 0 {
		return nil
	}
	if int64(cap(e.bodyFlat)) < n {
		e.bodyFlat = make([]uint32, n)
	}
	flat := e.bodyFlat[:n]
	e.pool.AccessorAt(m.bodyOff(), n*4).Uint32s(0, flat)
	e.meter.Charge(n, metrics.CostScanToken)
	if int64(cap(e.rawSyms)) < n {
		e.rawSyms = make([]cfg.Symbol, n)
	}
	out := e.rawSyms[:n]
	for i, v := range flat {
		out[i] = cfg.Symbol(v)
	}
	return out
}

// readRoot reads the ordered root body.
func (e *Engine) readRoot() []cfg.Symbol {
	e.meter.Charge(e.rootLen, metrics.CostScanToken)
	out := make([]cfg.Symbol, e.rootLen)
	flat := make([]uint32, e.rootLen)
	e.rootAcc.Uint32s(8, flat)
	for i, v := range flat {
		out[i] = cfg.Symbol(v)
	}
	return out
}

// readTopo reads the topological order.
func (e *Engine) readTopo() []uint32 {
	out := make([]uint32, e.numRules)
	e.topoAcc.Uint32s(0, out)
	return out
}

// globalBound returns the result-table bound for corpus-wide word counters:
// the Algorithm 2 bound clamped by the words that actually occur, which the
// dictionary pass knows exactly at initialization.
func (e *Engine) globalBound() int64 {
	m := e.meta(0)
	b := tableBound(m.bound(), m.expLen(), e.numWords)
	if e.distinctWords > 0 && e.distinctWords < b {
		b = e.distinctWords
	}
	return b
}

// WordCount implements analytics.Engine.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	counts, _, err := e.wordCountTable()
	if err != nil {
		return nil, err
	}
	return counts, nil
}

func (e *Engine) wordCountTable() (map[uint32]uint64, *metrics.Span, error) {
	span, err := e.beginTraversal()
	if err != nil {
		return nil, nil, errEngine("word count", err)
	}
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		return nil, nil, errEngine("word count", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		return nil, nil, errEngine("word count", err)
	}
	e.meter.Charge(counter.Len(), metrics.CostHashOp)
	out := make(map[uint32]uint64, counter.Len())
	counter.Range(func(k, v uint64) bool { out[uint32(k)] = v; return true })
	if err := e.endTraversal(span, analytics.WordCount, off); err != nil {
		return nil, nil, errEngine("word count", err)
	}
	return out, span, nil
}

// topDownGlobal propagates rule weights root-down in topological order,
// using the pool traversal queue (§IV-B, Figure 3), and accumulates
// weight x frequency for every word into counter.
func (e *Engine) topDownGlobal(counter counterTable, counterOff int64) error {
	// Reset weight slots and set the remaining-parents scratch.
	for r := uint32(0); r < e.numRules; r++ {
		m := e.meta(r)
		m.setWeight(0)
		m.setScratch(uint64(m.inDeg()))
	}
	queue, err := pstruct.NewQueue(e.pool, int64(e.numRules))
	if err != nil {
		return err
	}
	root := e.meta(0)
	root.setWeight(1)
	if err := queue.Push(0); err != nil {
		return err
	}
	for queue.Len() > 0 {
		r, err := queue.Pop()
		if err != nil {
			return err
		}
		m := e.meta(r)
		w := m.weight()
		if e.opts.NoPruning {
			for _, s := range e.readRawBody(r) {
				switch {
				case s.IsWord():
					if err := e.addCount(counter, counterOff, uint64(s.WordID()), w); err != nil {
						return err
					}
				case s.IsRule():
					sm := e.meta(s.RuleIndex())
					sm.setWeight(sm.weight() + w)
					left := sm.scratch() - 1
					sm.setScratch(left)
					if left == 0 {
						if err := queue.Push(s.RuleIndex()); err != nil {
							return err
						}
					}
				}
			}
			if err := e.opCommit(); err != nil {
				return err
			}
			continue
		}
		subs, words := e.readBodyPairs(r)
		for _, p := range subs {
			sm := e.meta(p.id)
			sm.setWeight(sm.weight() + w*uint64(p.freq))
			left := sm.scratch() - uint64(p.freq)
			sm.setScratch(left)
			if left == 0 {
				if err := queue.Push(p.id); err != nil {
					return err
				}
			}
		}
		for _, p := range words {
			if err := e.addCount(counter, counterOff, uint64(p.id), w*uint64(p.freq)); err != nil {
				return err
			}
		}
		if err := e.opCommit(); err != nil {
			return err
		}
	}
	return nil
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine("sort", err)
	}
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		return nil, errEngine("sort", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		return nil, errEngine("sort", err)
	}
	out := make([]analytics.WordFreq, 0, counter.Len())
	counter.Range(func(k, v uint64) bool {
		out = append(out, analytics.WordFreq{Word: uint32(k), Freq: v})
		return true
	})
	e.meter.Charge(int64(len(out)), metrics.CostHashOp+metrics.CostSortEntry)
	analytics.SortAlphabetical(out, e.d)
	if err := e.endTraversal(span, analytics.Sort, off); err != nil {
		return nil, errEngine("sort", err)
	}
	return out, nil
}

// fileWordCounts computes per-file frequencies with the configured
// traversal strategy, invoking fn with each file's counter before its
// scratch is released.
func (e *Engine) fileWordCounts(fn func(doc uint32, counts counterTable)) error {
	switch e.resolveStrategy() {
	case BottomUp:
		return e.fileCountsBottomUp(fn)
	default:
		return e.fileCountsTopDown(fn)
	}
}

// segmentsOf splits the pool root body at separators.
func segmentsOf(root []cfg.Symbol) [][]cfg.Symbol {
	var segs [][]cfg.Symbol
	start := 0
	for i, s := range root {
		if s.IsSep() {
			segs = append(segs, root[start:i])
			start = i + 1
		}
	}
	return segs
}

// segBound computes a file counter's bound from per-rule metadata.
func (e *Engine) segBound(seg []cfg.Symbol) int64 {
	var bound, length int64
	for _, s := range seg {
		switch {
		case s.IsWord():
			bound++
			length++
		case s.IsRule():
			m := e.meta(s.RuleIndex())
			bound += m.bound()
			length += m.expLen()
		}
	}
	return tableBound(bound, length, e.numWords)
}

// fileCountsBottomUp materializes every rule's word list in a bounded pool
// table (reverse topological order), then merges top-level lists per file:
// the fast path for many-file corpora.
func (e *Engine) fileCountsBottomUp(fn func(doc uint32, counts counterTable)) error {
	topo := e.readTopo()
	lists := make([]counterTable, e.numRules)
	listOffs := make([]int64, e.numRules)
	for i := len(topo) - 1; i >= 0; i-- {
		r := topo[i]
		m := e.meta(r)
		tbl, off, err := e.newCounter(tableBound(m.bound(), m.expLen(), e.numWords), int64(e.numWords))
		if err != nil {
			return err
		}
		lists[r], listOffs[r] = tbl, off
		if e.opts.NoPruning {
			for _, s := range e.readRawBody(r) {
				switch {
				case s.IsWord():
					if err := e.addCount(tbl, off, uint64(s.WordID()), 1); err != nil {
						return err
					}
				case s.IsRule():
					var mergeErr error
					lists[s.RuleIndex()].Range(func(k, v uint64) bool {
						mergeErr = e.addCount(tbl, off, k, v)
						return mergeErr == nil
					})
					if mergeErr != nil {
						return mergeErr
					}
				}
			}
			continue
		}
		subs, words := e.readBodyPairs(r)
		for _, p := range words {
			if err := e.addCount(tbl, off, uint64(p.id), uint64(p.freq)); err != nil {
				return err
			}
		}
		for _, p := range subs {
			f := uint64(p.freq)
			var mergeErr error
			lists[p.id].Range(func(k, v uint64) bool {
				mergeErr = e.addCount(tbl, off, k, v*f)
				return mergeErr == nil
			})
			if mergeErr != nil {
				return mergeErr
			}
		}
		if err := e.opCommit(); err != nil {
			return err
		}
	}
	root := e.readRoot()
	for doc, seg := range segmentsOf(root) {
		counter, off, err := e.newCounter(e.segBound(seg), int64(e.numWords))
		if err != nil {
			return err
		}
		for _, s := range seg {
			switch {
			case s.IsWord():
				if err := e.addCount(counter, off, uint64(s.WordID()), 1); err != nil {
					return err
				}
			case s.IsRule():
				var mergeErr error
				lists[s.RuleIndex()].Range(func(k, v uint64) bool {
					mergeErr = e.addCount(counter, off, k, v)
					return mergeErr == nil
				})
				if mergeErr != nil {
					return mergeErr
				}
			}
		}
		if err := e.opCommit(); err != nil {
			return err
		}
		fn(uint32(doc), counter)
	}
	return nil
}

// fileCountsTopDown traverses the whole DAG once per file: weights of the
// file's top-level rules propagate down the full topological order.  Cost
// is O(files x rules) even for tiny files — the §VI-E slow path.
func (e *Engine) fileCountsTopDown(fn func(doc uint32, counts counterTable)) error {
	topo := e.readTopo()
	// Zero all weight slots once; the sweep per file below re-zeroes as it
	// consumes them.
	for r := uint32(0); r < e.numRules; r++ {
		e.meta(r).setWeight(0)
	}
	root := e.readRoot()
	for doc, seg := range segmentsOf(root) {
		counter, off, err := e.newCounter(e.segBound(seg), int64(e.numWords))
		if err != nil {
			return err
		}
		for _, s := range seg {
			switch {
			case s.IsWord():
				if err := e.addCount(counter, off, uint64(s.WordID()), 1); err != nil {
					return err
				}
			case s.IsRule():
				m := e.meta(s.RuleIndex())
				m.setWeight(m.weight() + 1)
			}
		}
		for _, r := range topo {
			m := e.meta(r)
			w := m.weight()
			if w == 0 {
				continue
			}
			m.setWeight(0)
			if e.opts.NoPruning {
				for _, s := range e.readRawBody(r) {
					switch {
					case s.IsWord():
						if err := e.addCount(counter, off, uint64(s.WordID()), w); err != nil {
							return err
						}
					case s.IsRule():
						sm := e.meta(s.RuleIndex())
						sm.setWeight(sm.weight() + w)
					}
				}
				continue
			}
			subs, words := e.readBodyPairs(r)
			for _, p := range subs {
				sm := e.meta(p.id)
				sm.setWeight(sm.weight() + w*uint64(p.freq))
			}
			for _, p := range words {
				if err := e.addCount(counter, off, uint64(p.id), w*uint64(p.freq)); err != nil {
					return err
				}
			}
		}
		if err := e.opCommit(); err != nil {
			return err
		}
		fn(uint32(doc), counter)
	}
	return nil
}

// TermVector implements analytics.Engine.
func (e *Engine) TermVector(k int) ([][]analytics.WordFreq, error) {
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine("term vector", err)
	}
	out := make([][]analytics.WordFreq, e.numFiles)
	err = e.fileWordCounts(func(doc uint32, counter counterTable) {
		e.meter.Charge(counter.Len(), metrics.CostHashOp+metrics.CostSortEntry)
		counts := make(map[uint32]uint64, counter.Len())
		counter.Range(func(key, v uint64) bool { counts[uint32(key)] = v; return true })
		out[doc] = analytics.TermVectorOf(counts, k)
	})
	if err != nil {
		return nil, errEngine("term vector", err)
	}
	if err := e.endTraversal(span, analytics.TermVector, 0); err != nil {
		return nil, errEngine("term vector", err)
	}
	return out, nil
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine("inverted index", err)
	}
	out := make(map[uint32][]uint32)
	err = e.fileWordCounts(func(doc uint32, counter counterTable) {
		e.meter.Charge(counter.Len(), metrics.CostHashOp+metrics.CostSortEntry)
		counter.Range(func(key, _ uint64) bool {
			out[uint32(key)] = append(out[uint32(key)], doc)
			return true
		})
	})
	if err != nil {
		return nil, errEngine("inverted index", err)
	}
	for w := range out {
		slices.Sort(out[w])
	}
	if err := e.endTraversal(span, analytics.InvertedIndex, 0); err != nil {
		return nil, errEngine("inverted index", err)
	}
	return out, nil
}
