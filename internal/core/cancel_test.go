package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// countdownCtx is a deterministic cancellation source: it reports Canceled
// after Err has been polled n times.  The kernel polls once per rule or file
// visited, so a countdown lands the cancellation mid-traversal without any
// timing dependence.
type countdownCtx struct {
	mu   sync.Mutex
	left int // guarded by mu
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestSessionCancelMidBatch cancels a fused batch partway through its
// traversal and checks that the error is the context's, and that the same
// session then runs the identical batch to completion with results equal to
// an never-canceled session's.
func TestSessionCancelMidBatch(t *testing.T) {
	_, d, g := corpus(t, 61, 6, 300, 30)
	e := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()

	ref := e.NewSession()
	want, err := ref.RunOps(ops)
	if err != nil {
		t.Fatalf("reference session RunOps: %v", err)
	}

	s := e.NewSession()
	// Sweep cancellation points from the very first poll deep into the
	// traversal; every countdown must surface context.Canceled, never a
	// partial result.
	for _, n := range []int{0, 1, 2, 5, 10, 50} {
		_, err := s.RunOpsContext(&countdownCtx{left: n}, ops)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunOpsContext(countdown %d) = %v, want context.Canceled", n, err)
		}
	}
	// The session remains usable after an abandoned traversal.
	got, err := s.RunOpsContext(context.Background(), ops)
	if err != nil {
		t.Fatalf("RunOpsContext after cancellations: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("post-cancel results differ from a clean session's")
	}
}

// TestShardedSessionCancel cancels a sharded scatter-gather mid-batch: the
// error must carry the context cause (typed per shard), must not trip the
// failover path, and the session must serve the full batch afterwards.
func TestShardedSessionCancel(t *testing.T) {
	files, d, g := corpus(t, 62, 6, 300, 30)
	ref := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()
	want, err := ref.RunOps(ops)
	if err != nil {
		t.Fatalf("unsharded RunOps: %v", err)
	}
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(func() { se.Close() })

	ss := se.NewSession()
	for _, n := range []int{0, 3, 25} {
		_, err := ss.RunOpsContext(&countdownCtx{left: n}, ops)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunOpsContext(countdown %d) = %v, want context.Canceled in chain", n, err)
		}
		var sf *ErrShardFailed
		if !errors.As(err, &sf) {
			t.Fatalf("RunOpsContext(countdown %d) = %v, want ErrShardFailed wrapper", n, err)
		}
	}
	if se.FailoverCount() != 0 {
		t.Errorf("cancellation triggered %d failovers, want 0", se.FailoverCount())
	}

	// A context canceled through the standard library path (client
	// disconnect) unwinds the same way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ss.RunOpsContext(ctx, ops); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOpsContext(pre-canceled) = %v, want context.Canceled", err)
	}

	got, err := ss.RunOpsContext(context.Background(), ops)
	if err != nil {
		t.Fatalf("RunOpsContext after cancellations: %v", err)
	}
	for i, op := range ops {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("op %s: post-cancel sharded result differs from unsharded", op.Name())
		}
	}
}
