package core

import (
	"context"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// Session is a read-only query context over an engine's pool: it runs
// analytics ops through the same operation kernel as the engine's task
// methods, but keeps every piece of traversal state — rule weights, the
// Kahn queue, result counters — in session-local DRAM, so it never mutates
// the pool.  Multiple sessions may query one engine concurrently from
// different goroutines.
//
// Sessions model the post-load query phase: they must not run concurrently
// with engine task methods or Close (those mutate traversal scratch in the
// pool), only with each other.  Opening the first session switches the
// simulated device into shared mode, which serializes its bookkeeping;
// device statistics then aggregate the traffic of all sessions.
type Session struct {
	e     *Engine
	meter metrics.Meter
	run   exec
}

// NewSession opens a query session over the engine's current pool contents.
func (e *Engine) NewSession() *Session {
	s := &Session{e: e}
	s.run = exec{e: e, meter: &s.meter, sess: &sessionState{
		weights:   make([]uint64, e.numRules),
		remaining: make([]uint64, e.numRules),
	}}
	e.dev.Share()
	return s
}

// RunOps implements analytics.Executor: the batch executes in one fused
// traversal against session-local state.
func (s *Session) RunOps(ops []analytics.Op) ([]any, error) {
	return s.runOps(nil, ops)
}

// RunOpsContext is RunOps with cancellation: the traversal polls ctx at its
// loop heads and unwinds with ctx.Err() (wrapped in the usual engine error)
// once the request is canceled or past its deadline.  The session stays
// usable afterwards — every run starts from freshly reset session state, so
// an abandoned traversal leaves nothing behind.  A session must not run two
// batches concurrently; serving layers give each in-flight request its own
// pooled session.
func (s *Session) RunOpsContext(ctx context.Context, ops []analytics.Op) ([]any, error) {
	return s.runOps(ctx, ops)
}

// runOps serves the session's batch.  On an appendable engine the session
// serves the merged corpus exactly like the engine task path: the base runs
// on the compacted serving tail (through a transient session when the tail
// is not the engine this session was opened on), the pinned delta view runs
// through its own transient session, and the unit results merge.  Long-lived
// pooled sessions therefore always observe the latest committed append.
func (s *Session) runOps(ctx context.Context, ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if st := s.e.ingest; st != nil && !st.external {
		return st.serveMerged(ops, &s.meter, func(t *Engine) ([]any, error) {
			if t == s.e {
				return s.runOpsLocal(ctx, ops)
			}
			return t.NewSession().runOpsLocal(ctx, ops)
		})
	}
	return s.runOpsLocal(ctx, ops)
}

// runOpsLocal executes the batch against this session's own engine pool,
// ignoring any serving chain.
func (s *Session) runOpsLocal(ctx context.Context, ops []analytics.Op) ([]any, error) {
	for _, op := range ops {
		if op.Keys() == analytics.KeySequences && !s.e.seqEnabled {
			return nil, ErrNoSequences
		}
	}
	s.run.ctx = ctx
	defer func() { s.run.ctx = nil }()
	results, _, err := s.run.runPlan(ops)
	if err != nil {
		return nil, errEngine("session", err)
	}
	return results, nil
}

// RunOp implements analytics.Executor.
func (s *Session) RunOp(op analytics.Op) (any, error) {
	results, err := s.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// Meter reports the modeled CPU cost of the work this session has run.
func (s *Session) Meter() *metrics.Meter {
	return &s.meter
}

var _ analytics.Executor = (*Session)(nil)
