package core

import (
	"reflect"
	"sync"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
)

// TestConcurrentSessions opens several query sessions over one engine and
// runs the full op set from each concurrently — odd workers as six solo
// runs, even workers as one fused batch.  Every result must match the
// single-threaded engine run.  The race detector (make race) validates that
// session traversal state really is private.
func TestConcurrentSessions(t *testing.T) {
	_, d, g := corpus(t, 53, 5, 300, 50)
	e := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()

	want := make([]any, len(ops))
	for i, op := range ops {
		res, err := e.RunOp(op)
		if err != nil {
			t.Fatalf("engine %v: %v", op.Task(), err)
		}
		want[i] = res
	}

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			if w%2 == 0 {
				got, err := s.RunOps(ops)
				if err != nil {
					t.Errorf("worker %d RunOps: %v", w, err)
					return
				}
				for i, op := range ops {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("worker %d fused %v mismatch", w, op.Task())
					}
				}
			} else {
				for i, op := range ops {
					got, err := s.RunOp(op)
					if err != nil {
						t.Errorf("worker %d %v: %v", w, op.Task(), err)
						return
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("worker %d %v mismatch", w, op.Task())
					}
				}
			}
			if s.Meter().Nanos() == 0 {
				t.Errorf("worker %d: session meter recorded no work", w)
			}
		}(w)
	}
	wg.Wait()
}

// TestSessionDoesNotDisturbEngine interleaves a session run between two
// engine runs: the session's DRAM-resident traversal must leave the pool's
// persistent scratch state intact.
func TestSessionDoesNotDisturbEngine(t *testing.T) {
	files, d, g := corpus(t, 54, 4, 250, 40)
	e := newEngine(t, g, d, Options{Sequences: true})

	s := e.NewSession()
	got, err := s.RunOp(analytics.WordCountOp{})
	if err != nil {
		t.Fatalf("session WordCount: %v", err)
	}
	if !reflect.DeepEqual(got, analytics.RefWordCount(files)) {
		t.Error("session word count mismatch")
	}
	checkAllTasks(t, e, files, d)
}

// TestSessionSeqGating: sequence ops on a words-only engine fail in
// sessions the same way they do on the engine itself.
func TestSessionSeqGating(t *testing.T) {
	_, d, g := corpus(t, 55, 3, 200, 30)
	e := newEngine(t, g, d, Options{Sequences: false})
	s := e.NewSession()
	if _, err := s.RunOp(analytics.SequenceCountOp{}); err != ErrNoSequences {
		t.Fatalf("session RunOp = %v, want ErrNoSequences", err)
	}
}
