package core

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// Engine is the N-TADOC analytics engine.  After initialization the grammar
// lives entirely in the NVM pool; analytics read only pool-resident
// structures, so every access is charged by the device cost model.  The
// engine implements analytics.Engine.
type Engine struct {
	opts Options
	dev  *nvm.SimDevice
	pool *pmem.Pool
	d    *dict.Dictionary

	numRules    uint32
	numWords    uint32
	numFiles    uint32
	bodySymbols int64 // total rule-body symbols; planner input, pool-durable
	mergeWork   int64 // bottom-up list-merge entries; planner input, pool-durable

	metaAcc  nvm.Accessor
	rootAcc  nvm.Accessor // u64 length + ordered root symbols (u32 each)
	rootLen  int64
	topoAcc  nvm.Accessor // u32 per rule, topological order
	edgesAcc nvm.Accessor // edge records; zero accessor when disabled

	seqEnabled bool
	seqIDs     map[analytics.Seq]uint32 // DRAM forward map (counted in DRAMBytes)
	seqList    []analytics.Seq          // DRAM reverse map
	localsAcc  nvm.Accessor             // u64 per rule: local-window table offset

	initTop       int64 // pool watermark at the end of initialization
	distinctWords int64 // distinct word IDs across all rule bodies

	initSpan metrics.Span
	lastTrav metrics.Span
	meter    *metrics.Meter // modeled CPU time

	oplog *opLog // non-nil in OpLevel mode

	ingest *ingestState // non-nil when Options.IngestCap > 0

	// travTables registers the bounded tables of the current traversal by
	// pool offset, for operation-level log compaction and replay;
	// travDirty marks those mutated since the last log compaction.
	travTables map[int64]counterTable
	travDirty  map[int64]bool

	dramExtra int64 // DRAM estimate of engine-held maps beyond the pool

	// run is the engine's persistent-path execution context: the operation
	// kernel bound to the pool structures and the engine meter.  Query
	// sessions carry their own exec bound to session-local state instead.
	run exec
}

var _ analytics.Engine = (*Engine)(nil)

// New builds an engine from a compressed grammar: it sizes and creates the
// simulated device, then runs the initialization phase (§IV-A) — pruning
// with pool management, bottom-up summation, structure layout, optional
// sequence preprocessing — and checkpoints.  The returned engine is ready
// for graph traversal.
func New(g *cfg.Grammar, d *dict.Dictionary, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	meter := &metrics.Meter{}
	span := metrics.Start(nil, nil)

	prep, err := preprocess(g, opts)
	if err != nil {
		return nil, err
	}
	chargePreprocess(meter, g, prep, opts)
	size := estimatePoolSize(g, prep, opts)

	var dev *nvm.SimDevice
	model := nvm.ModelFor(opts.Kind)
	if opts.Model != nil {
		model = *opts.Model
	}
	switch {
	case opts.Device != nil:
		dev = opts.Device
	case opts.Path != "":
		dev, err = nvm.Open(opts.Kind, opts.Path, size)
		if err != nil {
			return nil, err
		}
	default:
		dev = nvm.NewWithModel(opts.Kind, size, model)
	}
	pool, err := pmem.Create(dev, pmem.Options{
		LogCap:     opts.OpLogCap,
		Shard:      opts.ShardIndex,
		ShardCount: opts.ShardCount,
		Tag:        opts.BuildTag,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:     opts,
		dev:      dev,
		pool:     pool,
		d:        d,
		meter:    meter,
		numRules: uint32(len(g.Rules)),
		numWords: g.NumWords,
		numFiles: g.NumFiles,
	}
	e.bodySymbols, e.mergeWork = planFeatures(g)
	e.run = exec{e: e, meter: meter}
	if err := e.initialize(g, prep); err != nil {
		return nil, err
	}
	// The span deliberately covers preprocessing too: the paper's
	// initialization time includes reading and preparing the dataset.
	span.Stop()
	e.initSpan = metrics.Span{
		Wall:     span.Wall,
		Device:   dev.Stats(),
		CPUNanos: meter.Nanos(),
	}
	return e, nil
}

// chargePreprocess records the modeled CPU cost of the DRAM-side
// initialization work: the grammar walks behind the topological order,
// degrees, bounds and expansion lengths, and — for sequence engines — the
// bottom-up n-gram merges and interning, which dominate (Table II's large
// sequence-task initialization times).
func chargePreprocess(meter *metrics.Meter, g *cfg.Grammar, p *prepState, opts Options) {
	var bodySyms int64
	for _, b := range g.Rules {
		bodySyms += int64(len(b))
	}
	// Four linear grammar passes (topo, degrees, bounds, expansion
	// lengths) plus Algorithm 1's bucket pass per rule.
	meter.Charge(bodySyms*5, metrics.CostScanToken)
	if opts.Sequences {
		if p.infos != nil {
			// ComputeSeqInfo merges each referenced rule's count table
			// into its parent once per occurrence (bottom-up strategy).
			var mergeOps int64
			for _, body := range g.Rules {
				for _, s := range body {
					if s.IsRule() {
						mergeOps += int64(len(p.infos[s.RuleIndex()].Counts))
					}
				}
			}
			meter.Charge(mergeOps, metrics.CostMergeEntry)
		}
		meter.Charge(bodySyms*2, metrics.CostScanToken) // edge + local walks
		var localEntries int64
		for _, local := range p.locals {
			localEntries += int64(len(local))
		}
		meter.Charge(localEntries+int64(len(p.seqList)), metrics.CostSeqOp)
	}
}

// prepState carries the DRAM-side preprocessing that feeds initialization.
type prepState struct {
	order         []uint32
	inDeg         []uint32
	outDeg        []uint32
	bounds        []int64
	expLens       []int64
	distinctWords int64
	infos         []*analytics.SeqInfo // cumulative summaries; nil unless bottom-up
	edges         []*analytics.SeqInfo // edge-only summaries; nil unless Sequences
	locals        []map[analytics.Seq]uint64
	seqIDs        map[analytics.Seq]uint32
	seqList       []analytics.Seq
	segs          [][]cfg.Symbol
}

func preprocess(g *cfg.Grammar, opts Options) (*prepState, error) {
	p := &prepState{}
	var err error
	p.order, err = g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p.inDeg, p.outDeg = g.Degrees()
	p.bounds, err = analytics.UpperBounds(g)
	if err != nil {
		return nil, err
	}
	p.expLens = expansionLengths(g, p.order)
	p.segs = analytics.FileSegments(g)
	seen := make(map[uint32]struct{})
	for _, body := range g.Rules {
		for _, s := range body {
			if s.IsWord() {
				seen[s.WordID()] = struct{}{}
			}
		}
	}
	p.distinctWords = int64(len(seen))
	if opts.Sequences {
		// Head/tail edges suffice for local-window counting; the expensive
		// cumulative count merge is only performed when the bottom-up
		// per-file strategy will consume its tables.  The planner's decision
		// here commits the durable table layout, so resolveStrategy must
		// reach the same answer from the same shape — both are pure
		// functions of (files, rules, body symbols, merge work).
		bottomUp := strategyForGrammar(g, opts) == BottomUp
		var edges []*analytics.SeqInfo
		if bottomUp {
			p.infos, err = analytics.ComputeSeqInfo(g)
			if err != nil {
				return nil, err
			}
			edges = p.infos
		} else {
			edges, err = analytics.ComputeEdgeInfo(g)
			if err != nil {
				return nil, err
			}
		}
		p.edges = edges
		// Local windows per rule: each window of the corpus belongs to
		// exactly one rule body, so weighted locals reproduce global and
		// per-file counts without cumulative merging at traversal time.
		p.locals = make([]map[analytics.Seq]uint64, len(g.Rules))
		for ri := range g.Rules {
			p.locals[ri] = analytics.BodySpanningCounts(g.Rules[ri], edges)
		}
		// Interning: the weighted-locals decomposition covers every
		// sequence of the corpus, so the locals' keys (including the
		// root's own windows in locals[0]) are the complete dictionary.
		// Keys are interned in sorted order per rule: ID assignment fixes
		// the durable table layouts, so it must not inherit Go map
		// iteration order or modeled device stats would vary per run.
		p.seqIDs = make(map[analytics.Seq]uint32)
		var keys []analytics.Seq
		for _, local := range p.locals {
			keys = keys[:0]
			for q := range local {
				if _, ok := p.seqIDs[q]; !ok {
					keys = append(keys, q)
				}
			}
			slices.SortFunc(keys, analytics.CompareSeq)
			for _, q := range keys {
				p.seqIDs[q] = uint32(len(p.seqList))
				p.seqList = append(p.seqList, q)
			}
		}
	}
	return p, nil
}

// expansionLengths computes each rule's expanded token count.
func expansionLengths(g *cfg.Grammar, order []uint32) []int64 {
	lens := make([]int64, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		var n int64
		for _, s := range g.Rules[ri] {
			switch {
			case s.IsWord():
				n++
			case s.IsRule():
				n += lens[s.RuleIndex()]
			}
		}
		lens[ri] = n
	}
	return lens
}

// tableBound clamps a word-list bound to what is actually attainable: a
// list can never exceed the vocabulary or the expansion length.
func tableBound(bound, expLen int64, numWords uint32) int64 {
	b := bound
	if int64(numWords) < b {
		b = int64(numWords)
	}
	if expLen < b {
		b = expLen
	}
	if b < 1 {
		b = 1
	}
	return b
}

// PoolEstimate returns the pool bytes an engine over g with the given
// options will need (before slack): the harness uses it to size block-device
// page-cache budgets relative to the working set, as the paper's absolute
// memory budget implicitly did.
func PoolEstimate(g *cfg.Grammar, opts Options) (int64, error) {
	opts = opts.withDefaults()
	p, err := preprocess(g, opts)
	if err != nil {
		return 0, err
	}
	return estimatePoolSize(g, p, opts), nil
}

// estimatePoolSize computes the pool capacity needed for initialization plus
// the largest traversal working set, with slack.
func estimatePoolSize(g *cfg.Grammar, p *prepState, opts Options) int64 {
	nRules := int64(len(g.Rules))
	size := int64(pmem.HeaderSize) + opts.OpLogCap // pool header + tx log
	if opts.IngestCap > 0 {
		size += ingestHeaderSize + opts.IngestCap
	}
	size += nRules * metaSize
	for _, body := range g.Rules {
		size += int64(len(body))*8 + 16 // pruned pairs or raw symbols
	}
	if opts.Scatter {
		size += nRules * 256
	}
	size += 8 + int64(len(g.Rules[0]))*4 // root body
	size += nRules * 4                   // topo order
	size += pstruct.QueueBytes(nRules)
	// Global result counter (bounded by the words that actually occur).
	gb := tableBound(p.bounds[0], p.expLens[0], g.NumWords)
	if p.distinctWords > 0 && p.distinctWords < gb {
		gb = p.distinctWords
	}
	size += pstruct.HashTableBytes(gb)
	// Bottom-up word-list tables.
	for ri := range g.Rules {
		size += pstruct.HashTableBytes(tableBound(p.bounds[ri], p.expLens[ri], g.NumWords))
	}
	// Per-file counters.
	for _, seg := range p.segs {
		var segBound, segLen int64
		for _, s := range seg {
			if s.IsWord() {
				segBound++
				segLen++
			} else if s.IsRule() {
				segBound += p.bounds[s.RuleIndex()]
				segLen += p.expLens[s.RuleIndex()]
			}
		}
		size += pstruct.HashTableBytes(tableBound(segBound, segLen, g.NumWords))
		if opts.Sequences {
			size += pstruct.HashTableBytes(segLen) // per-file sequence counter
		}
	}
	if opts.Sequences {
		size += nRules * edgeSize
		size += 8 + int64(len(p.seqList))*12
		size += nRules * 8 // local table offset array
		for _, info := range p.infos {
			size += pstruct.HashTableBytes(int64(len(info.Counts)))
		}
		for _, local := range p.locals {
			size += pstruct.HashTableBytes(int64(len(local)))
		}
		// Edge-only mode has no cumulative tables; nothing extra.
	}
	if opts.NoBounds {
		size *= 4 // growable reconstruction garbage
	}
	if opts.Persistence == OpLevel {
		size += opts.OpLogCap
	}
	return size + int64(float64(size)*opts.PoolSlack) + 4096
}

// initialize is the initialization phase: it lays out every pool structure
// and checkpoints.
func (e *Engine) initialize(g *cfg.Grammar, p *prepState) error {
	pool := e.pool

	// Rule metadata array.
	metaAcc, err := pool.AllocZeroed(int64(e.numRules)*metaSize, 64)
	if err != nil {
		return err
	}
	e.metaAcc = metaAcc
	pool.SetRoot(rootMeta, metaAcc.Base())
	pool.SetRoot(rootNumRules, int64(e.numRules))
	pool.SetRoot(rootNumWords, int64(e.numWords))
	pool.SetRoot(rootNumFiles, int64(e.numFiles))
	e.distinctWords = p.distinctWords
	pool.SetRoot(rootDistinct, p.distinctWords)
	// The planner's shape input must survive recovery: a recovered engine
	// re-derives the traversal direction its sequence tables were laid out
	// for from exactly these slots.
	pool.SetRoot(rootBodySyms, e.bodySymbols)
	pool.SetRoot(rootMergeWork, e.mergeWork)

	// Static metadata.
	for ri := range g.Rules {
		m := e.meta(uint32(ri))
		m.setInDeg(p.inDeg[ri])
		m.setOutDeg(p.outDeg[ri])
		m.setBound(p.bounds[ri])
		m.setExpLen(p.expLens[ri])
	}

	// Rule bodies: pruned (Algorithm 1) or raw (ablation), laid out in
	// topological order for traversal locality — or scattered (ablation).
	if err := e.writeBodies(g, p); err != nil {
		return err
	}

	// Ordered root body for file segmentation.
	rootBody := g.Rules[0]
	rootAcc, err := pool.Alloc(8+int64(len(rootBody))*4, 8)
	if err != nil {
		return err
	}
	rootAcc.PutUint64(0, uint64(len(rootBody)))
	syms := make([]uint32, len(rootBody))
	for i, s := range rootBody {
		syms[i] = uint32(s)
	}
	rootAcc.PutUint32s(8, syms)
	e.rootAcc = rootAcc
	e.rootLen = int64(len(rootBody))
	pool.SetRoot(rootRootBody, rootAcc.Base())

	// Topological order.
	topoAcc, err := pool.Alloc(int64(e.numRules)*4, 8)
	if err != nil {
		return err
	}
	topoAcc.PutUint32s(0, p.order)
	e.topoAcc = topoAcc
	pool.SetRoot(rootTopo, topoAcc.Base())

	// Sequence structures.
	if e.opts.Sequences {
		if err := e.initSequences(p); err != nil {
			return err
		}
	}

	// Operation-level redo log region.  Epoch-stamped, checksummed records
	// make pre-zeroing unnecessary: only the header and the first record
	// slot need a defined state.
	if e.opts.Persistence == OpLevel {
		logAcc, err := pool.Alloc(e.opts.OpLogCap, 64)
		if err != nil {
			return err
		}
		logAcc.WriteBytes(0, make([]byte, opLogHeader+opRecSize))
		e.oplog = newOpLog(logAcc)
		if err := e.oplog.reset(pool.Epoch()); err != nil {
			return err
		}
		pool.SetRoot(rootOpLog, logAcc.Base())
	}

	// Append-log region for online ingestion, reserved below the
	// initialization watermark so traversals — which truncate the pool back
	// to initTop — can never reclaim it.  Only the 64-byte region header
	// needs a defined initial state: records are CRC-framed and invisible
	// until the header's committed watermark covers them.
	if e.opts.IngestCap > 0 {
		ingAcc, err := pool.Alloc(ingestHeaderSize+e.opts.IngestCap, 64)
		if err != nil {
			return err
		}
		ingAcc.WriteBytes(0, make([]byte, ingestHeaderSize))
		pool.SetRoot(rootIngest, ingAcc.Base())
		e.ingest = newIngestState(e, ingAcc, g)
	}

	e.initTop = pool.Allocated()
	pool.SetRoot(rootInitTop, e.initTop)
	return pool.Checkpoint(phaseInit)
}

// writeBodies implements Algorithm 1 across all rules.
func (e *Engine) writeBodies(g *cfg.Grammar, p *prepState) error {
	// Layout order: topological for locality, or shuffled for the Scatter
	// ablation.
	layout := make([]uint32, len(p.order))
	copy(layout, p.order)
	if e.opts.Scatter {
		r := rand.New(rand.NewSource(0x5ca7))
		r.Shuffle(len(layout), func(i, j int) { layout[i], layout[j] = layout[j], layout[i] })
	}
	var pad []byte
	rng := rand.New(rand.NewSource(0x9ad))
	for _, ri := range layout {
		if e.opts.Scatter {
			// Random padding breaks granule adjacency between rules.
			if pad == nil {
				pad = make([]byte, 256)
			}
			if n := int64(rng.Intn(256)); n > 0 {
				if _, err := e.pool.Alloc(n, 1); err != nil {
					return err
				}
			}
		}
		if err := e.writeOneBody(g, ri); err != nil {
			return err
		}
	}
	return nil
}

// writeOneBody writes rule ri's body at the pool top and records it in the
// metadata, following Algorithm 1: bucket-count subrules and words, then
// write (id, freq) pairs — subrules first, words after — contiguously.
func (e *Engine) writeOneBody(g *cfg.Grammar, ri uint32) error {
	body := g.Rules[ri]
	m := e.meta(ri)
	if e.opts.NoPruning {
		// Raw mode: the untrimmed symbol sequence.
		acc, err := e.pool.Alloc(int64(len(body))*4, 4)
		if err != nil {
			return err
		}
		syms := make([]uint32, len(body))
		for i, s := range body {
			syms[i] = uint32(s)
		}
		acc.PutUint32s(0, syms)
		m.setBodyOff(acc.Base())
		m.setSubCount(uint32(len(body)))
		m.setWordCount(0)
		return nil
	}
	subs, words := pruneRule(body)
	// Compact pair encoding: the common frequency-1 pair is a bare ID;
	// bit 31 (never set in a rule index or word ID) marks "frequency
	// follows".  A 4-byte length prefix lets the reader bulk-fetch the
	// body in one device access.
	flat := make([]uint32, 1, 1+(len(subs)+len(words))*2)
	appendPairs := func(pairs []pair) {
		for _, pr := range pairs {
			if pr.freq == 1 {
				flat = append(flat, pr.id)
			} else {
				flat = append(flat, pr.id|freqFollows, pr.freq)
			}
		}
	}
	appendPairs(subs)
	appendPairs(words)
	flat[0] = uint32(len(flat) - 1)
	acc, err := e.pool.Alloc(int64(len(flat))*4, 4)
	if err != nil {
		return err
	}
	acc.PutUint32s(0, flat)
	m.setBodyOff(acc.Base())
	m.setSubCount(uint32(len(subs)))
	m.setWordCount(uint32(len(words)))
	return nil
}

// pruneRule is the bucket-counting step of Algorithm 1: it trims a body to
// its distinct subrules and words with frequencies, in ascending ID order
// for determinism.  Separators are dropped (they carry no analytics weight;
// file structure is preserved by the ordered root body).
func pruneRule(body []cfg.Symbol) (subs, words []pair) {
	subBuckets := make(map[uint32]uint32)
	wordBuckets := make(map[uint32]uint32)
	for _, s := range body {
		switch {
		case s.IsRule():
			subBuckets[s.RuleIndex()]++
		case s.IsWord():
			wordBuckets[s.WordID()]++
		}
	}
	subs = bucketPairs(subBuckets)
	words = bucketPairs(wordBuckets)
	return subs, words
}

func bucketPairs(buckets map[uint32]uint32) []pair {
	out := make([]pair, 0, len(buckets))
	for id, f := range buckets {
		out = append(out, pair{id: id, freq: f})
	}
	slices.SortFunc(out, func(a, b pair) int { return cmp.Compare(a.id, b.id) })
	return out
}

// initSequences writes the sequence dictionary, per-rule n-gram tables, and
// head/tail edge records (§IV-D).
func (e *Engine) initSequences(p *prepState) error {
	pool := e.pool
	e.seqEnabled = true
	e.seqIDs = p.seqIDs
	e.seqList = p.seqList
	e.dramExtra += metrics.MapBytes(len(p.seqIDs), 12, 4) + metrics.SliceBytes(len(p.seqList), 12)

	// Sequence dictionary: count + 12-byte records; lets recovery rebuild
	// the DRAM maps without the original grammar.
	dictAcc, err := pool.Alloc(8+int64(len(p.seqList))*12, 8)
	if err != nil {
		return err
	}
	dictAcc.PutUint64(0, uint64(len(p.seqList)))
	flat := make([]uint32, len(p.seqList)*3)
	for i, q := range p.seqList {
		flat[i*3], flat[i*3+1], flat[i*3+2] = q[0], q[1], q[2]
	}
	dictAcc.PutUint32s(8, flat)
	pool.SetRoot(rootSeqDict, dictAcc.Base())

	// Edge records.
	edgesAcc, err := pool.AllocZeroed(int64(e.numRules)*edgeSize, 64)
	if err != nil {
		return err
	}
	e.edgesAcc = edgesAcc
	pool.SetRoot(rootEdges, edgesAcc.Base())
	for ri, info := range p.edges {
		rec := edgesAcc.Slice(int64(ri)*edgeSize, edgeSize)
		rec.PutUint64(edgeLen, uint64(info.Len))
		flags := byte(0)
		if info.Split {
			flags |= 1
		}
		rec.PutByte(edgeFlags, flags)
		rec.PutByte(edgeCount, byte(len(info.Edge)))
		for j, tok := range info.Edge {
			rec.PutUint32(edgeTokens+int64(j)*4, tok)
		}
	}

	// Per-rule cumulative n-gram tables keyed by sequence ID, built only
	// when the bottom-up per-file strategy will consume them.  The root
	// (rule 0) gets none: its counts are the global result, recomputed at
	// traversal.
	for ri, info := range p.infos {
		if ri == 0 || len(info.Counts) == 0 {
			continue
		}
		tbl, err := e.newTable(int64(len(info.Counts)), int64(len(p.seqList)))
		if err != nil {
			return err
		}
		for _, kv := range e.sortedSeqEntries(info.Counts) {
			if _, err := tbl.Add(uint64(kv.id), kv.count); err != nil {
				return err
			}
		}
		e.meta(uint32(ri)).setSeqOff(tbl.Base())
	}

	// Per-rule local-window tables, used by weighted sequence counting.
	// The root's local windows are computed live from the ordered root
	// body (they carry the file structure).
	localsAcc, err := pool.AllocZeroed(int64(e.numRules)*8, 8)
	if err != nil {
		return err
	}
	e.localsAcc = localsAcc
	pool.SetRoot(rootSeqLocal, localsAcc.Base())
	for ri, local := range p.locals {
		if ri == 0 || len(local) == 0 {
			continue
		}
		tbl, err := e.newTable(int64(len(local)), int64(len(p.seqList)))
		if err != nil {
			return err
		}
		for _, kv := range e.sortedSeqEntries(local) {
			if _, err := tbl.Add(uint64(kv.id), kv.count); err != nil {
				return err
			}
		}
		localsAcc.PutUint64(int64(ri)*8, uint64(tbl.Base()))
	}
	return nil
}

// seqEntry is one interned sequence's count, keyed by its dictionary ID.
type seqEntry struct {
	id    uint32
	count uint64
}

// sortedSeqEntries converts a DRAM count map to (ID, count) pairs in
// ascending ID order.  Pool tables must be populated in a deterministic
// order: insertion order fixes each key's probe chain in the durable layout,
// and with it the read charges of every later lookup, so iterating the Go
// map directly would make modeled device stats vary from run to run.
func (e *Engine) sortedSeqEntries(counts map[analytics.Seq]uint64) []seqEntry {
	out := make([]seqEntry, 0, len(counts))
	for q, c := range counts {
		out = append(out, seqEntry{id: e.seqIDs[q], count: c})
	}
	slices.SortFunc(out, func(a, b seqEntry) int { return cmp.Compare(a.id, b.id) })
	return out
}

// counterTable is the engine-side counter surface (see pstruct.Counter).
type counterTable = pstruct.Counter

// newTable allocates a counter sized for bound entries over the given key
// space, honouring the NoBounds ablation and the CounterKind selection:
// a dense vector counter when its flat array beats the hash table's
// footprint (§IV-D offers both forms), the hash table otherwise.
func (e *Engine) newTable(bound, keySpace int64) (counterTable, error) {
	if e.opts.NoBounds {
		g, err := pstruct.NewGrowableHashTable(e.pool, 4)
		if err != nil {
			return nil, err
		}
		return growableWithBase{g}, nil
	}
	if e.useDense(bound, keySpace) {
		return pstruct.NewDenseCounter(e.pool, keySpace)
	}
	return pstruct.NewHashTable(e.pool, bound)
}

// useDense decides the §IV-D structure choice for one counter.
func (e *Engine) useDense(bound, keySpace int64) bool {
	if keySpace <= 0 {
		return false
	}
	switch e.opts.Counters {
	case CounterHash:
		return false
	case CounterDense:
		return true
	default:
		return pstruct.DenseCounterBytes(keySpace) <= pstruct.HashTableBytes(bound)
	}
}

// growableWithBase adapts GrowableHashTable to the counter interface (its
// base moves on reconstruction, so it reports none and opts out of the
// persistence hooks — it exists only for the NoBounds ablation).
type growableWithBase struct{ *pstruct.GrowableHashTable }

func (g growableWithBase) Base() int64      { return -1 }
func (g growableWithBase) SyncLen()         {}
func (g growableWithBase) Flush() error     { return nil }
func (g growableWithBase) FlushInit() error { return nil }

// Device exposes the engine's simulated device for measurement.
func (e *Engine) Device() *nvm.SimDevice { return e.dev }

// Pool exposes the engine's pool for measurement.
func (e *Engine) Pool() *pmem.Pool { return e.pool }

// InitSpan returns the initialization phase measurements.
func (e *Engine) InitSpan() metrics.Span { return e.initSpan }

// LastTraversalSpan returns the measurements of the most recent task's
// graph-traversal phase.
func (e *Engine) LastTraversalSpan() metrics.Span { return e.lastTrav }

// NVMBytes reports the pool bytes currently allocated: the storage the
// engine moved off DRAM.
func (e *Engine) NVMBytes() int64 { return e.pool.Allocated() }

// DRAMBytes estimates the engine's resident DRAM beyond the pool: for
// sequence-enabled engines this is dominated by the sequence dictionary
// mirror, which is why the paper's sequence tasks show the smallest DRAM
// savings (§VI-C).
func (e *Engine) DRAMBytes() int64 { return e.dramExtra + 4096 }

// Close releases the device, recycling its simulation buffers — plus, for
// an appendable engine, the delta-view and compacted serving engines hanging
// off the ingest state.  The engine must not be used after Close.
func (e *Engine) Close() error {
	if e.ingest != nil {
		e.ingest.close()
	}
	return e.dev.Discard()
}

// resolveStrategy applies Auto selection through the cost-based planner.
// The inputs (files, rules, body symbols, merge work) are pool-durable, so a recovered
// engine resolves to the same direction its tables were laid out for.
func (e *Engine) resolveStrategy() Strategy {
	if e.opts.Strategy != Auto {
		return e.opts.Strategy
	}
	return chooseStrategy(e.numFiles, e.numRules, e.bodySymbols, e.mergeWork)
}

// Strategy reports the per-file traversal direction the cost-based planner
// resolved for this engine (never Auto) — operational introspection for the
// serving layer's /debug/engine surface.
func (e *Engine) Strategy() Strategy { return e.resolveStrategy() }

// errEngine wraps internal failures with engine context.
func errEngine(op string, err error) error {
	return fmt.Errorf("core: %s: %w", op, err)
}
