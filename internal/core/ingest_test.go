package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// refResults computes the six reference results over raw token streams, in
// analytics.Ops() order.
func refResults(t *testing.T, d *dict.Dictionary, files [][]uint32, k int) []any {
	t.Helper()
	want := make([]any, 0, 6)
	for _, op := range analytics.Ops() {
		switch op.(type) {
		case analytics.WordCountOp:
			want = append(want, analytics.RefWordCount(files))
		case analytics.SortOp:
			want = append(want, analytics.RefSort(files, d))
		case analytics.TermVectorsOp:
			want = append(want, analytics.RefTermVector(files, k))
		case analytics.InvertedIndexOp:
			want = append(want, analytics.RefInvertedIndex(files))
		case analytics.SequenceCountOp:
			want = append(want, analytics.RefSequenceCount(files))
		case analytics.RankedInvertedIndexOp:
			want = append(want, analytics.RefRankedInvertedIndex(files))
		default:
			t.Fatalf("unhandled op %s", op.Name())
		}
	}
	return want
}

func appendDocs(files [][]uint32, base int, n int) []AppendDoc {
	docs := make([]AppendDoc, 0, n)
	for i := base; i < base+n && i < len(files); i++ {
		docs = append(docs, AppendDoc{Name: fmt.Sprintf("appended%d", i), Tokens: files[i]})
	}
	return docs
}

// checkOps runs the executor's batch and compares each result to the
// reference over the given visible token streams.
func checkOps(t *testing.T, ex analytics.Executor, d *dict.Dictionary, files [][]uint32, label string) {
	t.Helper()
	ops := analytics.Ops()
	got, err := ex.RunOps(ops)
	if err != nil {
		t.Fatalf("%s: RunOps: %v", label, err)
	}
	want := refResults(t, d, files, tvK(ops))
	for i, op := range ops {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: op %s differs from reference", label, op.Name())
		}
	}
}

func tvK(ops []analytics.Op) int {
	for _, op := range ops {
		if tv, ok := op.(analytics.TermVectorsOp); ok {
			return tv.K
		}
	}
	return 0
}

// TestAppendBitIdentity: after every append batch (and after a compaction in
// the middle), all six ops — fused in one batch — must be bit-identical to
// the reference over the visible token streams.
func TestAppendBitIdentity(t *testing.T) {
	files, d, _ := corpus(t, 71, 10, 200, 30)
	const base = 4
	g, err := sequitur.Infer(files[:base], uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, Options{Sequences: true, IngestCap: 1 << 20})
	checkOps(t, e, d, files[:base], "pre-append")

	vocab := uint32(d.Len())
	visible := base
	batchSizes := []int{1, 2, 1, 2}
	for bi, n := range batchSizes {
		if err := e.Append(appendDocs(files, visible, n), vocab, nil); err != nil {
			t.Fatalf("Append batch %d: %v", bi, err)
		}
		visible += n
		checkOps(t, e, d, files[:visible], fmt.Sprintf("after batch %d", bi))
		// Sessions opened after the append observe it too.
		checkOps(t, e.NewSession(), d, files[:visible], fmt.Sprintf("session after batch %d", bi))
		if bi == 1 {
			if err := e.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			checkOps(t, e, d, files[:visible], "after compaction")
		}
	}
	if visible != len(files) {
		t.Fatalf("test consumed %d of %d files", visible, len(files))
	}
	st := e.IngestStats()
	if st.Batches != uint64(len(batchSizes)) || st.Docs != uint64(len(files)-base) {
		t.Errorf("stats report %d batches / %d docs, want %d / %d",
			st.Batches, st.Docs, len(batchSizes), len(files)-base)
	}
	if st.Compactions != 1 || st.CompactedDocs == 0 {
		t.Errorf("stats report %d compactions over %d docs, want 1 over >0",
			st.Compactions, st.CompactedDocs)
	}
	if got := e.CorpusEpoch(); got != uint64(len(batchSizes))+1 {
		t.Errorf("corpus epoch %d, want %d (batches + compactions)", got, len(batchSizes)+1)
	}
}

// TestAppendNovelWords: appended documents may extend the shared dictionary;
// results and recovery must account for the grown vocabulary.
func TestAppendNovelWords(t *testing.T) {
	files, d, _ := corpus(t, 72, 4, 150, 25)
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, Options{Sequences: true, IngestCap: 1 << 20})

	novel := []string{"xenon", "ytterbium"}
	ids := make([]uint32, len(novel))
	for i, w := range novel {
		ids[i] = d.Intern(w)
	}
	doc := []uint32{ids[0], ids[1], ids[0], files[0][0], files[0][1]}
	if err := e.Append([]AppendDoc{{Name: "novel", Tokens: doc}}, uint32(d.Len()), novel); err != nil {
		t.Fatalf("Append: %v", err)
	}
	all := append(append([][]uint32{}, files...), doc)
	checkOps(t, e, d, all, "after novel append")

	// Recovery must re-intern the novel words in order.
	dev := e.Device()
	if err := dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	d2 := rebuildDict(t, d, len(d.Words())-len(novel))
	re, _, err := Reopen(dev, d2, Options{Sequences: true, IngestCap: 1 << 20})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer re.Close()
	for i, w := range novel {
		id, ok := d2.Lookup(w)
		if !ok || id != ids[i] {
			t.Errorf("recovered dictionary maps %q to (%d, %v), want (%d, true)", w, id, ok, ids[i])
		}
	}
	checkOps(t, re, d2, all, "recovered")
}

// rebuildDict reconstructs the pre-append dictionary: the first n words of d
// in ID order, as a caller reopening from persisted inputs would hold.
func rebuildDict(t *testing.T, d *dict.Dictionary, n int) *dict.Dictionary {
	t.Helper()
	nd := dict.New()
	for _, w := range d.Words()[:n] {
		nd.Intern(w)
	}
	return nd
}

// TestAppendValidation covers the append error contract.
func TestAppendValidation(t *testing.T) {
	files, d, g := corpus(t, 73, 3, 100, 20)
	plain := newEngine(t, g, d, Options{})
	if err := plain.Append(appendDocs(files, 0, 1), uint32(d.Len()), nil); !errors.Is(err, ErrNoIngest) {
		t.Errorf("append without ingestion: err = %v, want ErrNoIngest", err)
	}
	if _, err := plain.RunOps(analytics.Ops()[:1]); err != nil {
		t.Errorf("plain engine query after ErrNoIngest: %v", err)
	}

	e := newEngine(t, g, d, Options{IngestCap: 256})
	if err := e.Append(appendDocs(files, 0, 1), uint32(d.Len())-1, nil); err == nil {
		t.Error("shrinking vocabulary accepted")
	}
	if err := e.Append([]AppendDoc{{Name: "bad", Tokens: []uint32{uint32(d.Len()) + 7}}},
		uint32(d.Len()), nil); err == nil {
		t.Error("out-of-vocabulary token accepted")
	}
	// A tiny log fills after a batch or two.
	var full bool
	for i := 0; i < 16; i++ {
		if err := e.Append(appendDocs(files, i%len(files), 1), uint32(d.Len()), nil); err != nil {
			if !errors.Is(err, ErrIngestFull) {
				t.Fatalf("append %d: err = %v, want ErrIngestFull", i, err)
			}
			full = true
			break
		}
	}
	if !full {
		t.Error("256-byte log never filled")
	}
}

// TestIngestRecovery: committed appends survive crash and reopen — batches,
// epoch, and all six results.
func TestIngestRecovery(t *testing.T) {
	files, d, _ := corpus(t, 74, 8, 180, 30)
	const base = 5
	g, err := sequitur.Infer(files[:base], uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, Options{Sequences: true, IngestCap: 1 << 20})
	vocab := uint32(d.Len())
	for i := base; i < len(files); i++ {
		if err := e.Append(appendDocs(files, i, 1), vocab, nil); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	dev := e.Device()
	if err := dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, _, err := Reopen(dev, d, Options{Sequences: true, IngestCap: 1 << 20})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer re.Close()
	if got := re.CorpusEpoch(); got != uint64(len(files)-base) {
		t.Errorf("recovered epoch %d, want %d", got, len(files)-base)
	}
	if got := len(re.IngestBatches()); got != len(files)-base {
		t.Errorf("recovered %d batches, want %d", got, len(files)-base)
	}
	checkOps(t, re, d, files, "recovered")

	// Appending continues after recovery.
	if err := re.Append([]AppendDoc{{Name: "post", Tokens: files[0]}}, vocab, nil); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	checkOps(t, re, d, append(append([][]uint32{}, files...), files[0]), "post-recovery append")
}

// TestShardedAppendBitIdentity: the sharded coordinator routes appends to
// shards while numbering documents globally; results must stay bit-identical
// to the unsharded reference at every K, including after per-shard
// compactions.
func TestShardedAppendBitIdentity(t *testing.T) {
	files, d, _ := corpus(t, 75, 10, 180, 30)
	const base = 6
	for k := 1; k <= 4; k++ {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			gs, err := sequitur.InferShards(files[:base], uint32(d.Len()), k)
			if err != nil {
				t.Fatalf("InferShards: %v", err)
			}
			se, err := NewSharded(gs, d, Options{Sequences: true, IngestCap: 1 << 20})
			if err != nil {
				t.Fatalf("NewSharded: %v", err)
			}
			t.Cleanup(func() { se.Close() })
			vocab := uint32(d.Len())
			visible := base
			for bi, n := range []int{1, 2, 1} {
				if err := se.Append(appendDocs(files, visible, n), vocab, nil); err != nil {
					t.Fatalf("Append batch %d: %v", bi, err)
				}
				visible += n
				checkOps(t, se, d, files[:visible], fmt.Sprintf("after batch %d", bi))
				checkOps(t, se.NewSession(), d, files[:visible], fmt.Sprintf("session after batch %d", bi))
			}
			// Force-compact every shard with a delta and re-verify.
			if _, err := se.CompactIfNeeded(CompactionPolicy{MaxDeltaDocs: -1, MaxDeltaBytes: -1}); err != nil {
				t.Fatalf("CompactIfNeeded: %v", err)
			}
			checkOps(t, se, d, files[:visible], "after compaction")
			// And appends keep landing after compaction.
			if err := se.Append(appendDocs(files, 0, 1), vocab, nil); err != nil {
				t.Fatalf("post-compaction Append: %v", err)
			}
			checkOps(t, se, d, append(append([][]uint32{}, files[:visible]...), files[0]), "post-compaction append")
		})
	}
}

// TestShardedIngestRecovery: a sharded reopen reassembles the global append
// order from the per-shard logs.
func TestShardedIngestRecovery(t *testing.T) {
	files, d, _ := corpus(t, 76, 9, 150, 25)
	const base = 5
	gs, err := sequitur.InferShards(files[:base], uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true, IngestCap: 1 << 20})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	vocab := uint32(d.Len())
	for i := base; i < len(files); i++ {
		if err := se.Append(appendDocs(files, i, 1), vocab, nil); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	devs := make([]*nvm.SimDevice, se.NumShards())
	for i := range devs {
		devs[i] = se.Shard(i).Device()
		if err := devs[i].Crash(); err != nil {
			t.Fatalf("Crash shard %d: %v", i, err)
		}
	}
	re, _, err := ReopenSharded(devs, d, Options{Sequences: true, IngestCap: 1 << 20})
	if err != nil {
		t.Fatalf("ReopenSharded: %v", err)
	}
	defer re.Close()
	if got := re.CorpusEpoch(); got != uint64(len(files)-base) {
		t.Errorf("recovered epoch %d, want %d", got, len(files)-base)
	}
	checkOps(t, re, d, files, "recovered sharded")
	if err := re.Append(appendDocs(files, 0, 1), vocab, nil); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	checkOps(t, re, d, append(append([][]uint32{}, files...), files[0]), "post-recovery append")
}

// TestAppendConcurrentQueries: appends never block queries, and every query
// observes a consistent cut — exactly the first N documents for some N
// between the committed count when it started and when it finished.  Run
// under -race this is the ingestion concurrency test.
func TestAppendConcurrentQueries(t *testing.T) {
	files, d, _ := corpus(t, 77, 12, 120, 25)
	const base = 4
	g, err := sequitur.Infer(files[:base], uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, Options{Sequences: true, IngestCap: 1 << 20})
	vocab := uint32(d.Len())

	refs := make(map[int][]any, len(files)-base+1)
	ops := analytics.Ops()
	for n := base; n <= len(files); n++ {
		refs[n] = refResults(t, d, files[:n], tvK(ops))
	}

	var wg sync.WaitGroup
	appendErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := base; i < len(files); i++ {
			if err := e.Append(appendDocs(files, i, 1), vocab, nil); err != nil {
				appendErr <- err
				return
			}
		}
	}()
	const readers = 3
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession()
			for iter := 0; iter < 8; iter++ {
				got, err := s.RunOps(ops)
				if err != nil {
					errs[r] = err
					return
				}
				tv, ok := got[2].([][]analytics.WordFreq)
				if !ok {
					errs[r] = fmt.Errorf("op 2 returned %T, want term vectors", got[2])
					return
				}
				n := len(tv)
				want, ok := refs[n]
				if !ok {
					errs[r] = fmt.Errorf("query observed %d documents, outside [%d, %d]", n, base, len(files))
					return
				}
				for i, op := range ops {
					if !reflect.DeepEqual(got[i], want[i]) {
						errs[r] = fmt.Errorf("op %s inconsistent with the %d-document cut", op.Name(), n)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-appendErr:
		t.Fatalf("Append: %v", err)
	default:
	}
	for r, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
	checkOps(t, e, d, files, "after concurrent phase")
}

// TestCompactorWorker: the background worker compacts once the delta crosses
// the policy thresholds, and results stay correct throughout.
func TestCompactorWorker(t *testing.T) {
	files, d, _ := corpus(t, 78, 10, 100, 25)
	const base = 4
	g, err := sequitur.Infer(files[:base], uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	e := newEngine(t, g, d, Options{Sequences: true, IngestCap: 1 << 20})
	c := StartCompactor(e, CompactionPolicy{MaxDeltaDocs: 2, Interval: time.Millisecond})
	defer c.Stop()
	vocab := uint32(d.Len())
	for i := base; i < len(files); i++ {
		// The worker may hold the compaction lock; retry rejected appends.
		for {
			err := e.Append(appendDocs(files, i, 1), vocab, nil)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrCompacting) {
				t.Fatalf("Append %d: %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runs, err := c.Runs(); runs > 0 {
			if err != nil {
				t.Fatalf("compactor error after %d runs: %v", runs, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compactor never ran")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	checkOps(t, e, d, files, "after background compaction")
	if st := e.IngestStats(); st.Compactions == 0 {
		t.Error("stats report no compactions")
	}
}
