package core

import (
	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// Sequence analytics over pool-resident data.  Initialization stored, per
// rule: an n-gram table (sequence ID -> count within one expansion) and a
// 32-byte head/tail edge record (§IV-D).  The traversal phase combines them
// along the ordered root body without expanding any rule: a segment's count
// is the sum of its rules' internal counts plus the boundary-spanning
// windows reconstructed from edge records.

// edgeInfo is one rule's edge record read from the pool.
type edgeInfo struct {
	length int64
	split  bool
	tokens []uint32
}

// readEdge fetches rule r's edge record.  The returned token slice is
// scratch, valid only until the next readEdge call.
func (e *Engine) readEdge(r uint32) edgeInfo {
	rec := e.edgesAcc.Slice(int64(r)*edgeSize, edgeSize)
	n := int64(rec.Byte(edgeCount))
	if int64(cap(e.edgeToks)) < n {
		e.edgeToks = make([]uint32, n)
	}
	toks := e.edgeToks[:n]
	rec.Uint32s(edgeTokens, toks)
	return edgeInfo{
		length: int64(rec.Uint64(edgeLen)),
		split:  rec.Byte(edgeFlags)&1 != 0,
		tokens: toks,
	}
}

// poolStreamToken mirrors analytics.streamToken for pool-sourced edges.
type poolStreamToken struct {
	tok      uint32
	sym      int
	gapAfter bool
}

// spanningWindowsPool walks a symbol sequence and emits every boundary-
// spanning window, reading per-rule edges from the pool.  Separators are
// hard breaks.  This mirrors analytics.addSpanningWindows, sourcing from
// NVM instead of DRAM summaries.
func (e *Engine) spanningWindowsPool(syms []cfg.Symbol, emit func(analytics.Seq)) {
	var stream []poolStreamToken
	flush := func() {
		for i := 0; i+analytics.SeqLen <= len(stream); i++ {
			valid := true
			for j := 0; j < analytics.SeqLen-1; j++ {
				if stream[i+j].gapAfter {
					valid = false
					break
				}
			}
			if !valid || stream[i].sym == stream[i+analytics.SeqLen-1].sym {
				continue
			}
			var q analytics.Seq
			for j := 0; j < analytics.SeqLen; j++ {
				q[j] = stream[i+j].tok
			}
			emit(q)
		}
		stream = stream[:0]
	}
	for idx, s := range syms {
		switch {
		case s.IsSep():
			flush()
		case s.IsWord():
			stream = append(stream, poolStreamToken{tok: s.WordID(), sym: idx})
		case s.IsRule():
			info := e.readEdge(s.RuleIndex())
			if !info.split {
				for _, t := range info.tokens {
					stream = append(stream, poolStreamToken{tok: t, sym: idx})
				}
				continue
			}
			h := analytics.SeqLen - 1
			for i, t := range info.tokens {
				st := poolStreamToken{tok: t, sym: idx}
				if i == h-1 {
					st.gapAfter = true
				}
				stream = append(stream, st)
			}
		}
	}
	flush()
}

// addSegmentSeqCounts accumulates a symbol sequence's n-gram counts into
// counter: per-rule internal counts from pool tables, plus spanning windows.
func (e *Engine) addSegmentSeqCounts(syms []cfg.Symbol, counter counterTable, counterOff int64) error {
	for _, s := range syms {
		if !s.IsRule() {
			continue
		}
		off := e.meta(s.RuleIndex()).seqOff()
		if off == 0 {
			continue // rule has no internal n-grams
		}
		tbl, err := pstruct.OpenCounterAt(e.pool, off)
		if err != nil {
			return err
		}
		var addErr error
		tbl.Range(func(k, v uint64) bool {
			addErr = e.addCount(counter, counterOff, k, v)
			return addErr == nil
		})
		if addErr != nil {
			return addErr
		}
		if err := e.opCommit(); err != nil {
			return err
		}
	}
	var emitErr error
	e.spanningWindowsPool(syms, func(q analytics.Seq) {
		if emitErr != nil {
			return
		}
		e.meter.Charge(1, metrics.CostSeqOp) // DRAM intern lookup
		id, ok := e.seqIDs[q]
		if !ok {
			// Every possible window was interned at initialization; an
			// unknown one indicates pool corruption.
			emitErr = errEngine("sequence traversal", ErrNoSequences)
			return
		}
		emitErr = e.addCount(counter, counterOff, uint64(id), 1)
	})
	if emitErr != nil {
		return emitErr
	}
	return e.opCommit()
}

// seqBound bounds a segment's distinct-sequence count by its expansion
// length (each window starts at one token).
func (e *Engine) seqBound(syms []cfg.Symbol) int64 {
	var length int64
	for _, s := range syms {
		switch {
		case s.IsWord():
			length++
		case s.IsRule():
			length += e.meta(s.RuleIndex()).expLen()
		}
	}
	if length < 1 {
		length = 1
	}
	if n := int64(len(e.seqList)); n > 0 && n < length {
		return n
	}
	return length
}

// localTable opens rule r's local-window table, or nil when the rule has
// no local windows.
func (e *Engine) localTable(r uint32) (pstruct.Counter, error) {
	off := int64(e.localsAcc.Uint64(int64(r) * 8))
	if off == 0 {
		return nil, nil
	}
	return pstruct.OpenCounterAt(e.pool, off)
}

// computeWeights runs the top-down weight propagation (the pool traversal
// queue driving Kahn's algorithm) leaving each rule's corpus-wide weight in
// its metadata slot.
func (e *Engine) computeWeights() error {
	for r := uint32(0); r < e.numRules; r++ {
		m := e.meta(r)
		m.setWeight(0)
		m.setScratch(uint64(m.inDeg()))
	}
	queue, err := pstruct.NewQueue(e.pool, int64(e.numRules))
	if err != nil {
		return err
	}
	e.meta(0).setWeight(1)
	if err := queue.Push(0); err != nil {
		return err
	}
	for queue.Len() > 0 {
		r, err := queue.Pop()
		if err != nil {
			return err
		}
		w := e.meta(r).weight()
		propagate := func(sub uint32, freq uint64) error {
			sm := e.meta(sub)
			sm.setWeight(sm.weight() + w*freq)
			left := sm.scratch() - freq
			sm.setScratch(left)
			if left == 0 {
				return queue.Push(sub)
			}
			return nil
		}
		if e.opts.NoPruning {
			for _, s := range e.readRawBody(r) {
				if s.IsRule() {
					if err := propagate(s.RuleIndex(), 1); err != nil {
						return err
					}
				}
			}
			continue
		}
		subs, _ := e.readBodyPairs(r)
		for _, p := range subs {
			if err := propagate(p.id, uint64(p.freq)); err != nil {
				return err
			}
		}
	}
	return nil
}

// addWeightedLocals merges every rule's local-window table, scaled by the
// rule weights left in the metadata by computeWeights, into counter.
func (e *Engine) addWeightedLocals(counter counterTable, off int64, weightOf func(r uint32) uint64) error {
	for r := uint32(1); r < e.numRules; r++ {
		w := weightOf(r)
		if w == 0 {
			continue
		}
		tbl, err := e.localTable(r)
		if err != nil {
			return err
		}
		if tbl == nil {
			continue
		}
		var addErr error
		tbl.Range(func(k, v uint64) bool {
			addErr = e.addCount(counter, off, k, v*w)
			return addErr == nil
		})
		if addErr != nil {
			return addErr
		}
		if err := e.opCommit(); err != nil {
			return err
		}
	}
	return nil
}

// addSpanningToCounter counts the boundary-spanning windows of a top-level
// symbol sequence into counter via the DRAM sequence dictionary.
func (e *Engine) addSpanningToCounter(syms []cfg.Symbol, counter counterTable, off int64) error {
	var emitErr error
	e.spanningWindowsPool(syms, func(q analytics.Seq) {
		if emitErr != nil {
			return
		}
		e.meter.Charge(1, metrics.CostSeqOp) // DRAM intern lookup
		id, ok := e.seqIDs[q]
		if !ok {
			emitErr = errEngine("sequence traversal", ErrNoSequences)
			return
		}
		emitErr = e.addCount(counter, off, uint64(id), 1)
	})
	if emitErr != nil {
		return emitErr
	}
	return e.opCommit()
}

// SequenceCount implements analytics.Engine via weighted local windows:
// every window of the corpus belongs to exactly one rule body (or to the
// root's top level), so global counts are the root's spanning windows plus
// each rule's local table scaled by its weight.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	if !e.seqEnabled {
		return nil, ErrNoSequences
	}
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine("sequence count", err)
	}
	root := e.readRoot()
	counter, off, err := e.newCounter(e.seqBound(root), int64(len(e.seqList)))
	if err != nil {
		return nil, errEngine("sequence count", err)
	}
	if err := e.computeWeights(); err != nil {
		return nil, errEngine("sequence count", err)
	}
	if err := e.addWeightedLocals(counter, off, func(r uint32) uint64 {
		return e.meta(r).weight()
	}); err != nil {
		return nil, errEngine("sequence count", err)
	}
	if err := e.addSpanningToCounter(root, counter, off); err != nil {
		return nil, err
	}
	e.meter.Charge(counter.Len(), metrics.CostHashOp)
	out := make(map[analytics.Seq]uint64, counter.Len())
	counter.Range(func(k, v uint64) bool {
		out[e.seqList[uint32(k)]] = v
		return true
	})
	if err := e.endTraversal(span, analytics.SequenceCount, off); err != nil {
		return nil, errEngine("sequence count", err)
	}
	return out, nil
}

// RankedInvertedIndex implements analytics.Engine.  Per-file counts use the
// strategy split of §VI-E: top-down computes per-file rule weights and
// scales local-window tables (efficient for few files); bottom-up merges
// the cumulative per-rule tables stored at initialization along each file's
// top level (efficient for many files).
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	if !e.seqEnabled {
		return nil, ErrNoSequences
	}
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine("ranked inverted index", err)
	}
	root := e.readRoot()
	// Documents are collected in ascending order and each (sequence, doc)
	// pair is produced exactly once, so postings can be appended directly in
	// their final pre-sort order.  Counter keys are indexes into seqList
	// (whose entries are distinct), so the accumulator is a plain slice —
	// no map operations on the per-entry path.
	perDoc := make([][]analytics.DocFreq, len(e.seqList))
	collect := func(doc uint32, counter counterTable) {
		e.meter.Charge(counter.Len(), metrics.CostHashOp)
		counter.Range(func(k, v uint64) bool {
			perDoc[uint32(k)] = append(perDoc[uint32(k)], analytics.DocFreq{Doc: doc, Freq: v})
			return true
		})
	}

	switch e.resolveStrategy() {
	case BottomUp:
		for doc, seg := range segmentsOf(root) {
			counter, off, err := e.newCounter(e.seqBound(seg), int64(len(e.seqList)))
			if err != nil {
				return nil, errEngine("ranked inverted index", err)
			}
			if err := e.addSegmentSeqCounts(seg, counter, off); err != nil {
				return nil, err
			}
			collect(uint32(doc), counter)
		}
	default:
		// Per-file top-down: seed weights from the segment, sweep the
		// topological order, then scale local tables.
		topo := e.readTopo()
		for r := uint32(0); r < e.numRules; r++ {
			e.meta(r).setWeight(0)
		}
		for doc, seg := range segmentsOf(root) {
			counter, off, err := e.newCounter(e.seqBound(seg), int64(len(e.seqList)))
			if err != nil {
				return nil, errEngine("ranked inverted index", err)
			}
			for _, s := range seg {
				if s.IsRule() {
					m := e.meta(s.RuleIndex())
					m.setWeight(m.weight() + 1)
				}
			}
			fileWeight := make([]uint64, e.numRules)
			for _, r := range topo {
				m := e.meta(r)
				w := m.weight()
				if w == 0 {
					continue
				}
				m.setWeight(0)
				fileWeight[r] = w
				if e.opts.NoPruning {
					for _, s := range e.readRawBody(r) {
						if s.IsRule() {
							sm := e.meta(s.RuleIndex())
							sm.setWeight(sm.weight() + w)
						}
					}
					continue
				}
				subs, _ := e.readBodyPairs(r)
				for _, p := range subs {
					sm := e.meta(p.id)
					sm.setWeight(sm.weight() + w*uint64(p.freq))
				}
			}
			if err := e.addWeightedLocals(counter, off, func(r uint32) uint64 {
				return fileWeight[r]
			}); err != nil {
				return nil, errEngine("ranked inverted index", err)
			}
			if err := e.addSpanningToCounter(seg, counter, off); err != nil {
				return nil, err
			}
			collect(uint32(doc), counter)
		}
	}

	out := make(map[analytics.Seq][]analytics.DocFreq, len(perDoc))
	for k, postings := range perDoc {
		if len(postings) == 0 {
			continue
		}
		e.meter.Charge(int64(len(postings)), metrics.CostSortEntry)
		out[e.seqList[k]] = analytics.RankPostingsSorted(postings)
	}
	if err := e.endTraversal(span, analytics.RankedInvertedIndex, 0); err != nil {
		return nil, errEngine("ranked inverted index", err)
	}
	return out, nil
}
