package core

import (
	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// Sequence analytics over pool-resident data.  Initialization stored, per
// rule: an n-gram table (sequence ID -> count within one expansion) and a
// 32-byte head/tail edge record (§IV-D).  The traversal phase combines them
// along the ordered root body without expanding any rule: a segment's count
// is the sum of its rules' internal counts plus the boundary-spanning
// windows reconstructed from edge records.  The walks here are kernel
// building blocks; the sequence tasks themselves are analytics.Op folds
// driven by runPlan (kernel.go).

// edgeInfo is one rule's edge record read from the pool.
type edgeInfo struct {
	length int64
	split  bool
	tokens []uint32
}

// readEdge fetches rule r's edge record.  The returned token slice is
// scratch, valid only until the next readEdge call.
func (x *exec) readEdge(r uint32) edgeInfo {
	rec := x.e.edgesAcc.Slice(int64(r)*edgeSize, edgeSize)
	n := int64(rec.Byte(edgeCount))
	if int64(cap(x.edgeToks)) < n {
		x.edgeToks = make([]uint32, n)
	}
	toks := x.edgeToks[:n]
	rec.Uint32s(edgeTokens, toks)
	return edgeInfo{
		length: int64(rec.Uint64(edgeLen)),
		split:  rec.Byte(edgeFlags)&1 != 0,
		tokens: toks,
	}
}

// poolStreamToken mirrors analytics.streamToken for pool-sourced edges.
type poolStreamToken struct {
	tok      uint32
	sym      int
	gapAfter bool
}

// spanningWindowsPool walks a symbol sequence and emits every boundary-
// spanning window, reading per-rule edges from the pool.  Separators are
// hard breaks.  This mirrors analytics.addSpanningWindows, sourcing from
// NVM instead of DRAM summaries.
func (x *exec) spanningWindowsPool(syms []cfg.Symbol, emit func(analytics.Seq)) {
	var stream []poolStreamToken
	flush := func() {
		for i := 0; i+analytics.SeqLen <= len(stream); i++ {
			valid := true
			for j := 0; j < analytics.SeqLen-1; j++ {
				if stream[i+j].gapAfter {
					valid = false
					break
				}
			}
			if !valid || stream[i].sym == stream[i+analytics.SeqLen-1].sym {
				continue
			}
			var q analytics.Seq
			for j := 0; j < analytics.SeqLen; j++ {
				q[j] = stream[i+j].tok
			}
			emit(q)
		}
		stream = stream[:0]
	}
	for idx, s := range syms {
		switch {
		case s.IsSep():
			flush()
		case s.IsWord():
			stream = append(stream, poolStreamToken{tok: s.WordID(), sym: idx})
		case s.IsRule():
			info := x.readEdge(s.RuleIndex())
			if !info.split {
				for _, t := range info.tokens {
					stream = append(stream, poolStreamToken{tok: t, sym: idx})
				}
				continue
			}
			h := analytics.SeqLen - 1
			for i, t := range info.tokens {
				st := poolStreamToken{tok: t, sym: idx}
				if i == h-1 {
					st.gapAfter = true
				}
				stream = append(stream, st)
			}
		}
	}
	flush()
}

// addSegmentSeqCounts accumulates a symbol sequence's n-gram counts into
// counter: per-rule internal counts from pool tables, plus spanning windows.
func (x *exec) addSegmentSeqCounts(syms []cfg.Symbol, counter *kcounter) error {
	e := x.e
	for _, s := range syms {
		if !s.IsRule() {
			continue
		}
		if err := x.canceled(); err != nil {
			return err
		}
		off := e.meta(s.RuleIndex()).seqOff()
		if off == 0 {
			continue // rule has no internal n-grams
		}
		tbl, err := pstruct.OpenCounterAt(e.pool, off)
		if err != nil {
			return err
		}
		var addErr error
		tbl.Range(func(k, v uint64) bool {
			addErr = x.add(counter, k, v)
			return addErr == nil
		})
		if addErr != nil {
			return addErr
		}
		if err := x.commit(); err != nil {
			return err
		}
	}
	var emitErr error
	x.spanningWindowsPool(syms, func(q analytics.Seq) {
		if emitErr != nil {
			return
		}
		x.meter.Charge(1, metrics.CostSeqOp) // DRAM intern lookup
		id, ok := e.seqIDs[q]
		if !ok {
			// Every possible window was interned at initialization; an
			// unknown one indicates pool corruption.
			emitErr = errEngine("sequence traversal", ErrNoSequences)
			return
		}
		emitErr = x.add(counter, uint64(id), 1)
	})
	if emitErr != nil {
		return emitErr
	}
	return x.commit()
}

// seqBound bounds a segment's distinct-sequence count by its expansion
// length (each window starts at one token).
func (x *exec) seqBound(syms []cfg.Symbol) int64 {
	e := x.e
	var length int64
	for _, s := range syms {
		switch {
		case s.IsWord():
			length++
		case s.IsRule():
			length += e.meta(s.RuleIndex()).expLen()
		}
	}
	if length < 1 {
		length = 1
	}
	if n := int64(len(e.seqList)); n > 0 && n < length {
		return n
	}
	return length
}

// localTable opens rule r's local-window table, or nil when the rule has
// no local windows.
func (e *Engine) localTable(r uint32) (pstruct.Counter, error) {
	off := int64(e.localsAcc.Uint64(int64(r) * 8))
	if off == 0 {
		return nil, nil
	}
	return pstruct.OpenCounterAt(e.pool, off)
}

// addWeightedLocals merges every rule's local-window table, scaled by the
// rule weights supplied by weightOf (corpus-wide weights after a top-down
// pass, or per-file weights captured during a per-file sweep), into counter.
func (x *exec) addWeightedLocals(counter *kcounter, weightOf func(r uint32) uint64) error {
	e := x.e
	for r := uint32(1); r < e.numRules; r++ {
		w := weightOf(r)
		if w == 0 {
			continue
		}
		if err := x.canceled(); err != nil {
			return err
		}
		tbl, err := e.localTable(r)
		if err != nil {
			return err
		}
		if tbl == nil {
			continue
		}
		var addErr error
		tbl.Range(func(k, v uint64) bool {
			addErr = x.add(counter, k, v*w)
			return addErr == nil
		})
		if addErr != nil {
			return addErr
		}
		if err := x.commit(); err != nil {
			return err
		}
	}
	return nil
}

// addSpanningToCounter counts the boundary-spanning windows of a top-level
// symbol sequence into counter via the DRAM sequence dictionary.
func (x *exec) addSpanningToCounter(syms []cfg.Symbol, counter *kcounter) error {
	var emitErr error
	x.spanningWindowsPool(syms, func(q analytics.Seq) {
		if emitErr != nil {
			return
		}
		x.meter.Charge(1, metrics.CostSeqOp) // DRAM intern lookup
		id, ok := x.e.seqIDs[q]
		if !ok {
			emitErr = errEngine("sequence traversal", ErrNoSequences)
			return
		}
		emitErr = x.add(counter, uint64(id), 1)
	})
	if emitErr != nil {
		return emitErr
	}
	return x.commit()
}
