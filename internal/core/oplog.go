package core

import (
	"fmt"
	"hash/crc32"
	"slices"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// opLog implements the operation-level persistence strategy (§IV-E): every
// counter mutation is recorded in a logical redo log, and the log is flushed
// and fenced after each analytics operation (one rule processed, one file
// merged) — the granularity at which libpmemobj transactions wrap the
// paper's engine.  This is deliberately write-amplified relative to
// phase-level persistence; Figure 5(b) measures exactly this overhead.
//
// Records are self-validating: each carries the log epoch and a CRC, so no
// separate count header needs flushing per operation.  Recovery scans
// records of the current epoch until the first invalid one — anything past
// the last commit fence was volatile and correctly vanishes.
//
// When the log fills, it compacts: every registered table is flushed (making
// the current counter state durable), the epoch advances, and the log
// restarts empty; replay then reconstructs exactly durable-tables + current-
// epoch records.
//
// A second header field records the pool's checkpoint epoch at the moment
// the log (re)started.  A phase checkpoint makes every table durable and
// advances the pool epoch, superseding the log's records; recovery therefore
// replays only when no checkpoint happened after the records were written,
// which prevents double-applying operations that a completed traversal
// already made durable.
//
// Region layout: epoch u32, poolEpoch u32, then 32-byte records
// (tableOff u64, key u64, delta u64, epoch u32, crc u32).
type opLog struct {
	acc     nvm.Accessor
	epoch   uint32
	head    int64 // append offset of the next record
	flushed int64 // start of the not-yet-committed suffix
	cap     int64 // record capacity
}

const (
	opLogHeader = 8
	opRecSize   = 32
)

func newOpLog(acc nvm.Accessor) *opLog {
	return &opLog{
		acc:     acc,
		epoch:   acc.Uint32(0),
		head:    opLogHeader,
		flushed: opLogHeader,
		cap:     (acc.Size() - opLogHeader) / opRecSize,
	}
}

// reset empties the log durably by advancing the epoch (all prior records
// become stale without being rewritten) and records the pool checkpoint
// epoch its future records will belong to.
func (l *opLog) reset(poolEpoch uint32) error {
	l.epoch++
	l.acc.PutUint32(0, l.epoch)
	l.acc.PutUint32(4, poolEpoch)
	if err := l.acc.Flush(0, opLogHeader); err != nil {
		return err
	}
	if err := l.acc.Device().Drain(); err != nil {
		return err
	}
	l.head = opLogHeader
	l.flushed = opLogHeader
	return nil
}

// recCRC checksums a record's payload (all fields before the crc).
func recCRC(tableOff int64, key, delta uint64, epoch uint32) uint32 {
	var b [28]byte
	put64le(b[0:], uint64(tableOff))
	put64le(b[8:], key)
	put64le(b[16:], delta)
	put32le(b[24:], epoch)
	return crc32.ChecksumIEEE(b[:])
}

// append records one counter mutation.  The record is not yet durable;
// commit() fences the batch.
func (l *opLog) append(e *Engine, tableOff int64, key, delta uint64) error {
	if (l.head-opLogHeader)/opRecSize >= l.cap {
		if err := l.compact(e); err != nil {
			return err
		}
	}
	l.acc.PutUint64(l.head, uint64(tableOff))
	l.acc.PutUint64(l.head+8, key)
	l.acc.PutUint64(l.head+16, delta)
	l.acc.PutUint32(l.head+24, l.epoch)
	l.acc.PutUint32(l.head+28, recCRC(tableOff, key, delta, l.epoch))
	l.head += opRecSize
	return nil
}

// commit makes every appended record durable: the per-operation flush +
// fence that defines operation-level persistence cost.
func (l *opLog) commit() error {
	if l.head == l.flushed {
		return nil
	}
	if err := l.acc.Flush(l.flushed, l.head-l.flushed); err != nil {
		return err
	}
	l.flushed = l.head
	return l.acc.Device().Drain()
}

// compact restarts the log and flushes the traversal tables dirtied since
// the last compaction, making their state durable.  The log is invalidated
// *first*: delta records are not idempotent, so valid records must never
// coexist with durable tables that already contain their effects — a crash
// between the table flush and a trailing log reset would double-apply every
// record on recovery.  A crash after the reset but before the table drain
// instead recovers the (consistent) state of the previous compaction.
func (l *opLog) compact(e *Engine) error {
	if err := l.reset(e.pool.Epoch()); err != nil {
		return err
	}
	// Flush in ascending offset order: on seek-charging devices the flush
	// order is observable in the modeled stats, and map order would make
	// them vary from run to run.
	dirty := make([]int64, 0, len(e.travDirty))
	for off := range e.travDirty {
		dirty = append(dirty, off)
	}
	slices.Sort(dirty)
	for _, off := range dirty {
		tbl, ok := e.travTables[off]
		if !ok {
			continue // growable ablation table; covered by its own writes
		}
		if err := tbl.Flush(); err != nil {
			return err
		}
		delete(e.travDirty, off)
	}
	if err := e.pool.FlushHeader(); err != nil {
		return err
	}
	return e.pool.Device().Drain()
}

// DebugSkipLogEpochCheck disables the epoch staleness guards in
// opLog.pending — both the pool-epoch header check and the per-record epoch
// match — re-creating the double-replay bug they prevent: records superseded
// by a log reset or a completed checkpoint are replayed anyway (their CRCs
// are still valid).  Exists only so the crash-exploration harness can prove
// (in a negative test) that it detects this class of recovery bug.  Never
// set outside tests.
var DebugSkipLogEpochCheck bool

// pending returns the number of valid current-epoch records, scanning from
// the start (recovery path).  poolEpoch is the pool's current checkpoint
// epoch: records written before a later checkpoint are superseded by the
// durable tables that checkpoint flushed, and must not replay.
func (l *opLog) pending(poolEpoch uint32) int64 {
	if l.acc.Uint32(4) != poolEpoch && !DebugSkipLogEpochCheck {
		return 0
	}
	epoch := l.acc.Uint32(0)
	var n int64
	for off := int64(opLogHeader); (off-opLogHeader)/opRecSize < l.cap; off += opRecSize {
		tableOff := int64(l.acc.Uint64(off))
		key := l.acc.Uint64(off + 8)
		delta := l.acc.Uint64(off + 16)
		recEpoch := l.acc.Uint32(off + 24)
		if recEpoch != epoch && !DebugSkipLogEpochCheck {
			break
		}
		if l.acc.Uint32(off+28) != recCRC(tableOff, key, delta, recEpoch) {
			break
		}
		n++
	}
	return n
}

// replayRecord reads record i without validation (the caller has already
// bounded i by pending()).
func (l *opLog) replayRecord(i int64) (tableOff int64, key, delta uint64) {
	off := opLogHeader + i*opRecSize
	return int64(l.acc.Uint64(off)), l.acc.Uint64(off + 8), l.acc.Uint64(off + 16)
}

func (l *opLog) String() string {
	return fmt.Sprintf("oplog{epoch=%d head=%d cap=%d}", l.epoch, l.head, l.cap)
}

func put32le(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64le(b []byte, v uint64) {
	put32le(b, uint32(v))
	put32le(b[4:], uint32(v>>32))
}
