package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// TestSyncReplicationCRC is the replication invariant differential: under
// synchronous shipping every commit boundary leaves each follower's durable
// image byte-identical to its primary's.  Checked after construction
// (bootstrap) and after every single-op batch, across corpora and shard
// counts; under -race this also exercises ship-on-drain concurrency.
func TestSyncReplicationCRC(t *testing.T) {
	cases := []struct {
		name                 string
		seed                 int64
		files, tokens, vocab int
	}{
		{"small", 51, 4, 200, 30},
		{"manyfiles", 52, 9, 120, 40},
		{"redundant", 53, 6, 300, 15},
	}
	ops := analytics.Ops()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files, d, _ := corpus(t, tc.seed, tc.files, tc.tokens, tc.vocab)
			for k := 1; k <= 4; k++ {
				gs, err := sequitur.InferShards(files, uint32(d.Len()), k)
				if err != nil {
					t.Fatalf("InferShards(k=%d): %v", k, err)
				}
				se, err := NewSharded(gs, d, Options{
					Sequences:   true,
					Persistence: OpLevel,
					Replication: Replication{Followers: 1, Mode: ShipSync},
				})
				if err != nil {
					t.Fatalf("NewSharded(k=%d): %v", k, err)
				}
				checkCRCs := func(when string) {
					t.Helper()
					for i := 0; i < se.NumShards(); i++ {
						fdevs := se.Followers(i)
						if len(fdevs) != 1 {
							t.Fatalf("k=%d shard %d: %d followers, want 1", k, i, len(fdevs))
						}
						// The invariant named in terms of the recovery machinery:
						// the image CloneDurable would recover from is exactly
						// the follower's.
						clone, cerr := se.Shard(i).Device().CloneDurable()
						if cerr != nil {
							t.Fatalf("k=%d shard %d: CloneDurable: %v", k, i, cerr)
						}
						pcrc, perr := clone.DurableCRC()
						fcrc, ferr := fdevs[0].DurableCRC()
						if derr := clone.Discard(); derr != nil {
							t.Fatalf("discard clone: %v", derr)
						}
						if perr != nil || ferr != nil {
							t.Fatalf("k=%d shard %d: CRC errors %v / %v", k, i, perr, ferr)
						}
						if pcrc != fcrc {
							t.Errorf("k=%d shard %d %s: follower image diverged from primary", k, i, when)
						}
					}
				}
				checkCRCs("after bootstrap")
				for _, op := range ops {
					if _, err := se.RunOp(op); err != nil {
						t.Fatalf("k=%d RunOp(%s): %v", k, op.Name(), err)
					}
					checkCRCs("after " + op.Name())
				}
				se.Close()
			}
		})
	}
}

// TestAsyncReplicationBarrier checks lag-bounded shipping: mid-stream a
// follower may trail its primary, but ReplicaBarrier applies every queued
// commit batch and restores byte identity.
func TestAsyncReplicationBarrier(t *testing.T) {
	files, d, _ := corpus(t, 61, 6, 250, 30)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{
		Sequences:   true,
		Persistence: OpLevel,
		Replication: Replication{Followers: 1, Mode: ShipAsync, LagBound: 2},
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()
	if _, err := se.RunOps(analytics.Ops()); err != nil {
		t.Fatalf("RunOps: %v", err)
	}
	se.ReplicaBarrier()
	for i := 0; i < se.NumShards(); i++ {
		pcrc, perr := se.Shard(i).Device().DurableCRC()
		fcrc, ferr := se.Followers(i)[0].DurableCRC()
		if perr != nil || ferr != nil {
			t.Fatalf("shard %d: CRC errors %v / %v", i, perr, ferr)
		}
		if pcrc != fcrc {
			t.Errorf("shard %d: follower image diverged after ReplicaBarrier", i)
		}
	}
}

// TestShardFailedTyped asserts the typed scatter-gather error: with no
// replica to fail over to, an injected device failure on one shard surfaces
// as ErrShardFailed naming that shard, with the device error in its chain.
func TestShardFailedTyped(t *testing.T) {
	files, d, _ := corpus(t, 62, 6, 200, 30)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true, Persistence: OpLevel})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()
	const victim = 1
	dev := se.Shard(victim).Device()
	dev.FailFromPersistEvent(dev.PersistEvents())
	_, err = se.RunOps(analytics.Ops())
	if err == nil {
		t.Fatal("armed shard produced no error")
	}
	var sf *ErrShardFailed
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want ErrShardFailed in chain", err)
	}
	if sf.Shard != victim {
		t.Errorf("ErrShardFailed.Shard = %d, want %d", sf.Shard, victim)
	}
	if !errors.Is(err, nvm.ErrFailPoint) {
		t.Errorf("err = %v, want nvm.ErrFailPoint in chain", err)
	}

	// Disarming clears the latent failure; the engine is usable again.
	dev.DisarmFailPoints()
	if _, err := se.WordCount(); err != nil {
		t.Fatalf("disarmed WordCount: %v", err)
	}
}

// TestDisarmFailPointsSharded covers the sharded path of DisarmFailPoints: a
// fail point armed on one shard and disarmed before the batch must leave no
// latent failure — the batch and a subsequent one both complete and match.
func TestDisarmFailPointsSharded(t *testing.T) {
	files, d, g := corpus(t, 63, 5, 200, 30)
	ref := newEngine(t, g, d, Options{Sequences: true})
	want, err := ref.RunOps(analytics.Ops())
	if err != nil {
		t.Fatalf("unsharded RunOps: %v", err)
	}
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{Sequences: true, Persistence: OpLevel})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()
	dev := se.Shard(2).Device()
	dev.FailFromPersistEvent(dev.PersistEvents())
	dev.FailAfterWrites(1)
	dev.DisarmFailPoints()
	for round := 0; round < 2; round++ {
		got, err := se.RunOps(analytics.Ops())
		if err != nil {
			t.Fatalf("round %d: disarmed shard still failed: %v", round, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round %d: result differs from unsharded", round)
		}
	}
}

// TestFailoverBitIdentical is the acceptance check: a K=4 replicated run
// with one shard's primary killed mid-batch must complete through follower
// failover and match the healthy run bit for bit on every registered op —
// and so must the next batch, served by the promoted follower.
func TestFailoverBitIdentical(t *testing.T) {
	files, d, g := corpus(t, 64, 8, 200, 30)
	ref := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()
	want, err := ref.RunOps(ops)
	if err != nil {
		t.Fatalf("unsharded RunOps: %v", err)
	}
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 4)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	for _, mode := range []ShipMode{ShipSync, ShipAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			se, err := NewSharded(gs, d, Options{
				Sequences:   true,
				Persistence: OpLevel,
				Replication: Replication{Followers: 1, Mode: mode, LagBound: 2},
			})
			if err != nil {
				t.Fatalf("NewSharded: %v", err)
			}
			defer se.Close()
			dev := se.Shard(2).Device()
			dev.FailFromPersistEvent(dev.PersistEvents() + 3)
			for round := 0; round < 2; round++ {
				got, err := se.RunOps(ops)
				if err != nil {
					t.Fatalf("round %d: failover did not mask the failure: %v", round, err)
				}
				for i, op := range ops {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("round %d op %s: result differs from healthy run", round, op.Name())
					}
				}
			}
			if se.FailoverCount() == 0 {
				t.Error("no failover performed despite the armed primary")
			}
		})
	}
}

// TestReplicaReads checks the stretch path: with replica reads enabled a
// multi-op batch splits each shard between primary and follower image, stays
// bit-identical, and reports per-lane tails for the tail-latency figure.
func TestReplicaReads(t *testing.T) {
	files, d, g := corpus(t, 65, 6, 250, 30)
	ref := newEngine(t, g, d, Options{Sequences: true})
	ops := analytics.Ops()
	want, err := ref.RunOps(ops)
	if err != nil {
		t.Fatalf("unsharded RunOps: %v", err)
	}
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 3)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{
		Sequences:   true,
		Persistence: OpLevel,
		Replication: Replication{Followers: 1, Mode: ShipSync, ReplicaReads: true},
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer se.Close()
	got, err := se.RunOps(ops)
	if err != nil {
		t.Fatalf("RunOps: %v", err)
	}
	for i, op := range ops {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("op %s: replica-read result differs from unsharded", op.Name())
		}
	}
	tails := se.LastLaneTails()
	if len(tails) == 0 {
		t.Fatal("no lane tails recorded")
	}
	for l, tail := range tails {
		if tail <= 0 {
			t.Errorf("lane %d tail = %d, want > 0", l, tail)
		}
	}
	if se.FailoverCount() != 0 {
		t.Errorf("replica reads performed %d failovers on a healthy run", se.FailoverCount())
	}
	if span := se.LastTraversalSpan(); span.Total() <= 0 {
		t.Error("traversal span not measured under replica reads")
	}
}

// TestReopenShardedFailover recovers a sharded engine whose primary device
// set is partially unusable: the dead shard's pool comes back from its
// injected follower, under the same stamp validation.
func TestReopenShardedFailover(t *testing.T) {
	files, d, _ := corpus(t, 66, 4, 200, 25)
	gs, err := sequitur.InferShards(files, uint32(d.Len()), 2)
	if err != nil {
		t.Fatalf("InferShards: %v", err)
	}
	se, err := NewSharded(gs, d, Options{
		Sequences:   true,
		Persistence: OpLevel,
		Replication: Replication{Followers: 1, Mode: ShipSync},
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	want, err := se.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	// Clone the surviving images before Close discards the originals: shard
	// 0's primary, shard 1's follower.  Shard 1's primary is replaced by a
	// blank device — a total loss its follower must cover.
	pc0, err := se.Shard(0).Device().CloneDurable()
	if err != nil {
		t.Fatalf("clone primary 0: %v", err)
	}
	fc1, err := se.Followers(1)[0].CloneDurable()
	if err != nil {
		t.Fatalf("clone follower 1: %v", err)
	}
	blankSize := se.Shard(1).Device().Size()
	se.Close()
	blank := nvm.New(nvm.KindNVM, blankSize)
	opts := Options{Sequences: true, Persistence: OpLevel}

	// Without a follower the dead shard is typed and reloadable.
	_, _, err = ReopenSharded([]*nvm.SimDevice{pc0, blank}, d, opts)
	var sf *ErrShardFailed
	if !errors.As(err, &sf) || sf.Shard != 1 {
		t.Fatalf("blank shard err = %v, want ErrShardFailed{Shard: 1}", err)
	}
	if !errors.Is(err, ErrNeedsReload) {
		t.Fatalf("blank shard err = %v, want ErrNeedsReload in chain", err)
	}

	// With the follower injected, the reopen promotes it transparently.
	ro := opts
	ro.Replication = Replication{FollowerDevices: [][]*nvm.SimDevice{nil, {fc1}}}
	re, infos, err := ReopenSharded([]*nvm.SimDevice{pc0, blank}, d, ro)
	if err != nil {
		t.Fatalf("ReopenSharded with follower: %v", err)
	}
	defer re.Close()
	if len(infos) != 2 {
		t.Fatalf("got %d recovery infos, want 2", len(infos))
	}
	got, err := re.WordCount()
	if err != nil {
		t.Fatalf("recovered WordCount: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("failover-recovered word count differs from the healthy run")
	}
}
