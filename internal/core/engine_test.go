package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// corpus builds a deterministic redundant corpus, dictionary, and grammar.
func corpus(t testing.TB, seed int64, nFiles, tokens, vocab int) ([][]uint32, *dict.Dictionary, *cfg.Grammar) {
	t.Helper()
	spec := datagen.Spec{
		Name: "c", Seed: seed, Files: nFiles, TokensPer: tokens, Vocab: vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return files, d, g
}

func newEngine(t testing.TB, g *cfg.Grammar, d *dict.Dictionary, opts Options) *Engine {
	t.Helper()
	e, err := New(g, d, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// checkAllTasks cross-checks every task against the reference results.
func checkAllTasks(t *testing.T, e *Engine, files [][]uint32, d *dict.Dictionary) {
	t.Helper()
	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
		t.Error("word count mismatch")
	}
	srt, err := e.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if !reflect.DeepEqual(srt, analytics.RefSort(files, d)) {
		t.Error("sort mismatch")
	}
	tv, err := e.TermVectors(6)
	if err != nil {
		t.Fatalf("TermVector: %v", err)
	}
	if !reflect.DeepEqual(tv, analytics.RefTermVector(files, 6)) {
		t.Error("term vector mismatch")
	}
	inv, err := e.InvertedIndex()
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	if !reflect.DeepEqual(inv, analytics.RefInvertedIndex(files)) {
		t.Error("inverted index mismatch")
	}
	if e.seqEnabled {
		sc, err := e.SequenceCount()
		if err != nil {
			t.Fatalf("SequenceCount: %v", err)
		}
		if !reflect.DeepEqual(sc, analytics.RefSequenceCount(files)) {
			t.Error("sequence count mismatch")
		}
		rii, err := e.RankedInvertedIndex()
		if err != nil {
			t.Fatalf("RankedInvertedIndex: %v", err)
		}
		if !reflect.DeepEqual(rii, analytics.RefRankedInvertedIndex(files)) {
			t.Error("ranked inverted index mismatch")
		}
	}
}

func TestAllTasksMatchReference(t *testing.T) {
	files, d, g := corpus(t, 31, 5, 300, 50)
	for _, strat := range []Strategy{TopDown, BottomUp} {
		t.Run(strat.String(), func(t *testing.T) {
			e := newEngine(t, g, d, Options{Sequences: true, Strategy: strat})
			checkAllTasks(t, e, files, d)
		})
	}
}

func TestOpLevelPersistenceCorrect(t *testing.T) {
	files, d, g := corpus(t, 32, 3, 200, 40)
	e := newEngine(t, g, d, Options{
		Sequences: true, Persistence: OpLevel, OpLogCap: 1 << 16,
	})
	checkAllTasks(t, e, files, d)
}

func TestOpLogCompaction(t *testing.T) {
	// A log too small for the workload forces compaction mid-traversal;
	// results must still be exact.
	files, d, g := corpus(t, 33, 2, 300, 30)
	e := newEngine(t, g, d, Options{Persistence: OpLevel, OpLogCap: 2048})
	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
		t.Error("word count mismatch after compaction")
	}
}

func TestAblationCombos(t *testing.T) {
	files, d, g := corpus(t, 34, 4, 250, 40)
	combos := []Options{
		{NoPruning: true},
		{NoBounds: true},
		{Scatter: true, NoPruning: true},
		{NoPruning: true, NoBounds: true, Scatter: true},
	}
	for _, opts := range combos {
		opts.Sequences = false
		t.Run(optsName(opts), func(t *testing.T) {
			e := newEngine(t, g, d, opts)
			wc, err := e.WordCount()
			if err != nil {
				t.Fatalf("WordCount: %v", err)
			}
			if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
				t.Error("word count mismatch")
			}
			tv, err := e.TermVectors(4)
			if err != nil {
				t.Fatalf("TermVector: %v", err)
			}
			if !reflect.DeepEqual(tv, analytics.RefTermVector(files, 4)) {
				t.Error("term vector mismatch")
			}
		})
	}
}

func optsName(o Options) string {
	n := ""
	if o.NoPruning {
		n += "noprune,"
	}
	if o.NoBounds {
		n += "nobounds,"
	}
	if o.Scatter {
		n += "scatter,"
	}
	if n == "" {
		return "default"
	}
	return n[:len(n)-1]
}

func TestBothStrategiesOnManyFiles(t *testing.T) {
	files, d, g := corpus(t, 35, 60, 40, 30)
	for _, strat := range []Strategy{TopDown, BottomUp, Auto} {
		e := newEngine(t, g, d, Options{Strategy: strat})
		tv, err := e.TermVectors(3)
		if err != nil {
			t.Fatalf("%v: TermVector: %v", strat, err)
		}
		if !reflect.DeepEqual(tv, analytics.RefTermVector(files, 3)) {
			t.Errorf("%v: term vector mismatch", strat)
		}
	}
}

func TestSequenceTasksRequireOptIn(t *testing.T) {
	_, d, g := corpus(t, 36, 2, 100, 20)
	e := newEngine(t, g, d, Options{Sequences: false})
	if _, err := e.SequenceCount(); !errors.Is(err, ErrNoSequences) {
		t.Errorf("SequenceCount without opt-in: %v", err)
	}
	if _, err := e.RankedInvertedIndex(); !errors.Is(err, ErrNoSequences) {
		t.Errorf("RankedInvertedIndex without opt-in: %v", err)
	}
}

func TestRepeatedTasksOnOneEngine(t *testing.T) {
	// Traversal scratch must be reclaimed between tasks: many runs must
	// not exhaust the pool.
	files, d, g := corpus(t, 37, 3, 150, 30)
	e := newEngine(t, g, d, Options{Sequences: true})
	for i := 0; i < 5; i++ {
		wc, err := e.WordCount()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
			t.Fatalf("run %d: mismatch", i)
		}
		if _, err := e.SequenceCount(); err != nil {
			t.Fatalf("run %d: SequenceCount: %v", i, err)
		}
	}
}

func TestPhaseLevelRecoveryAfterTraversalCrash(t *testing.T) {
	files, d, g := corpus(t, 38, 3, 200, 30)
	e := newEngine(t, g, d, Options{})
	if _, err := e.WordCount(); err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	// Start another traversal but crash before its checkpoint: simulate by
	// mutating pool state without checkpointing, then crashing.
	e.beginTraversal()
	e.meta(0).setWeight(999)
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	re, info, err := Reopen(e.dev, d, Options{})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if info.Phase < phaseInit {
		t.Fatalf("recovered phase = %d", info.Phase)
	}
	// The interrupted traversal is simply re-run on the recovered pool.
	wc, err := re.WordCount()
	if err != nil {
		t.Fatalf("re-run WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
		t.Error("recovered word count mismatch")
	}
}

func TestRecoveryReadsCommittedResults(t *testing.T) {
	files, d, g := corpus(t, 39, 2, 150, 25)
	e := newEngine(t, g, d, Options{})
	want, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, info, err := Reopen(e.dev, d, Options{})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if info.Phase != phaseTraversal {
		t.Fatalf("phase = %d, want %d", info.Phase, phaseTraversal)
	}
	counts, task, ok := re.CommittedCounts()
	if !ok || task != analytics.WordCount {
		t.Fatalf("CommittedCounts ok=%v task=%v", ok, task)
	}
	if !reflect.DeepEqual(counts, want) {
		t.Error("committed counts mismatch")
	}
	_ = files
}

func TestReopenUninitializedPool(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	if _, _, err := Reopen(dev, dict.New(), Options{}); err == nil {
		t.Error("expected error on empty device")
	}
}

func TestOpLevelReplayAfterCrash(t *testing.T) {
	files, d, g := corpus(t, 40, 2, 200, 30)
	opts := Options{Persistence: OpLevel, OpLogCap: 1 << 20}
	e := newEngine(t, g, d, opts)

	// Run a traversal manually so we can crash before the checkpoint.
	e.beginTraversal()
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		t.Fatalf("newCounter: %v", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		t.Fatalf("topDownGlobal: %v", err)
	}
	// No endTraversal: crash with results only in the op log + volatile
	// tables.
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	re, info, err := Reopen(e.dev, d, opts)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if info.Phase != phaseInit {
		t.Fatalf("phase = %d, want %d (traversal never committed)", info.Phase, phaseInit)
	}
	if info.Replayed == 0 {
		t.Fatal("no operations replayed")
	}
	counts, err := re.ReplayedCounts()
	if err != nil {
		t.Fatalf("ReplayedCounts: %v", err)
	}
	if !reflect.DeepEqual(counts, analytics.RefWordCount(files)) {
		t.Error("replayed counts do not match the full operation stream")
	}
}

func TestSequenceRecoveryRebuildsDictionary(t *testing.T) {
	files, d, g := corpus(t, 41, 3, 150, 20)
	e := newEngine(t, g, d, Options{Sequences: true})
	if _, err := e.SequenceCount(); err != nil {
		t.Fatalf("SequenceCount: %v", err)
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, _, err := Reopen(e.dev, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	sc, err := re.SequenceCount()
	if err != nil {
		t.Fatalf("recovered SequenceCount: %v", err)
	}
	if !reflect.DeepEqual(sc, analytics.RefSequenceCount(files)) {
		t.Error("recovered sequence count mismatch")
	}
}

func TestAccountingAndSpans(t *testing.T) {
	_, d, g := corpus(t, 42, 3, 200, 30)
	e := newEngine(t, g, d, Options{Sequences: true})
	if e.NVMBytes() <= 0 {
		t.Error("NVMBytes not positive")
	}
	if e.DRAMBytes() <= 0 {
		t.Error("DRAMBytes not positive")
	}
	if e.InitSpan().Wall <= 0 {
		t.Error("init span not measured")
	}
	if _, err := e.WordCount(); err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	tr := e.LastTraversalSpan()
	if tr.Wall <= 0 || tr.Device.ModeledNanos <= 0 {
		t.Errorf("traversal span = %+v", tr)
	}
}

func TestEmptyAndTinyCorpora(t *testing.T) {
	// Single empty file.
	g, err := sequitur.Infer([][]uint32{{}}, 1)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	d := dict.New()
	d.Intern("x")
	e := newEngine(t, g, d, Options{Sequences: true})
	wc, err := e.WordCount()
	if err != nil || len(wc) != 0 {
		t.Errorf("empty WordCount = %v, %v", wc, err)
	}
	tv, err := e.TermVectors(3)
	if err != nil || len(tv) != 1 || len(tv[0]) != 0 {
		t.Errorf("empty TermVector = %v, %v", tv, err)
	}
	sc, err := e.SequenceCount()
	if err != nil || len(sc) != 0 {
		t.Errorf("empty SequenceCount = %v, %v", sc, err)
	}

	// One-word files (shorter than SeqLen).
	files := [][]uint32{{0}, {0, 1}}
	g2, _ := sequitur.Infer(files, 2)
	d2 := dict.New()
	d2.Intern("a")
	d2.Intern("b")
	e2 := newEngine(t, g2, d2, Options{Sequences: true})
	checkAllTasks(t, e2, files, d2)
}

func TestFileBackedEngine(t *testing.T) {
	files, d, g := corpus(t, 43, 2, 120, 20)
	path := t.TempDir() + "/pool.nvm"
	e, err := New(g, d, Options{Path: path})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	dev, err := nvm.Open(nvm.KindNVM, path, 0)
	if err != nil {
		t.Fatalf("Open device: %v", err)
	}
	re, _, err := Reopen(dev, d, Options{})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	counts, task, ok := re.CommittedCounts()
	if !ok || task != analytics.WordCount || !reflect.DeepEqual(counts, want) {
		t.Error("file-backed committed results mismatch")
	}
	_ = files
}

func TestInvalidGrammarRejected(t *testing.T) {
	bad := &cfg.Grammar{Rules: [][]cfg.Symbol{{cfg.Rule(7)}}, NumWords: 1}
	if _, err := New(bad, dict.New(), Options{}); err == nil {
		t.Error("expected validation error")
	}
}

func TestCounterKindsAllCorrect(t *testing.T) {
	files, d, g := corpus(t, 60, 3, 250, 40)
	for _, kind := range []CounterKind{CounterAuto, CounterHash, CounterDense} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, g, d, Options{Sequences: true, Counters: kind})
			checkAllTasks(t, e, files, d)
		})
	}
}

func TestDenseCounterRecovery(t *testing.T) {
	files, d, g := corpus(t, 61, 2, 200, 30)
	opts := Options{Counters: CounterDense, Persistence: OpLevel}
	e := newEngine(t, g, d, opts)
	e.beginTraversal()
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		t.Fatalf("newCounter: %v", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		t.Fatalf("topDownGlobal: %v", err)
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, info, err := Reopen(e.dev, d, opts)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if info.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	counts, err := re.ReplayedCounts()
	if err != nil {
		t.Fatalf("ReplayedCounts: %v", err)
	}
	if !reflect.DeepEqual(counts, analytics.RefWordCount(files)) {
		t.Error("dense counter replay mismatch")
	}
}

func TestQuickEngineMatchesReferenceOnRandomCorpora(t *testing.T) {
	// Property: for random small corpora, every N-TADOC task agrees with
	// the ground-truth scan, across a random option mix.
	if testing.Short() {
		t.Skip("property test is slow")
	}
	for seed := int64(70); seed < 82; seed++ {
		files, d, g := corpus(t, seed, 1+int(seed%5), 60+int(seed*7%150), 8+int(seed%30))
		opts := Options{
			Sequences:   true,
			Strategy:    Strategy(seed % 3),
			Persistence: Persistence(seed % 2),
			Counters:    CounterKind(seed % 3),
		}
		e := newEngine(t, g, d, opts)
		wc, err := e.WordCount()
		if err != nil {
			t.Fatalf("seed %d: WordCount: %v", seed, err)
		}
		if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
			t.Errorf("seed %d (%+v): word count mismatch", seed, opts)
		}
		tv, err := e.TermVectors(4)
		if err != nil {
			t.Fatalf("seed %d: TermVector: %v", seed, err)
		}
		if !reflect.DeepEqual(tv, analytics.RefTermVector(files, 4)) {
			t.Errorf("seed %d (%+v): term vector mismatch", seed, opts)
		}
		sc, err := e.SequenceCount()
		if err != nil {
			t.Fatalf("seed %d: SequenceCount: %v", seed, err)
		}
		if !reflect.DeepEqual(sc, analytics.RefSequenceCount(files)) {
			t.Errorf("seed %d (%+v): sequence count mismatch", seed, opts)
		}
	}
}

func TestPaperFigure1WorkedExample(t *testing.T) {
	// The paper's §II word-count walk-through on the Figure 1 grammar:
	// R0 -> R1 w5 R1 |A| w6 R2 |B|; R1 -> R2 w3 w4; R2 -> w1 w2.
	// Step 2 of the example: R1's weight reaches 2 and R2's reaches 6
	// (2 from R0 + 2x2 via R1); word counts follow.
	g := &cfg.Grammar{
		Rules: [][]cfg.Symbol{
			{cfg.Rule(1), cfg.Word(4), cfg.Rule(1), cfg.Sep(0), cfg.Word(5), cfg.Rule(2), cfg.Sep(1)},
			{cfg.Rule(2), cfg.Word(2), cfg.Word(3)},
			{cfg.Word(0), cfg.Word(1)},
		},
		NumWords: 6,
		NumFiles: 2,
		Files:    []string{"fileA", "fileB"},
	}
	d := dict.New()
	for _, w := range []string{"w1", "w2", "w3", "w4", "w5", "w6"} {
		d.Intern(w)
	}
	e := newEngine(t, g, d, Options{Sequences: true})

	// Weight propagation, observable through the metadata slots.
	if err := e.computeWeights(); err != nil {
		t.Fatalf("computeWeights: %v", err)
	}
	if w := e.meta(1).weight(); w != 2 {
		t.Errorf("R1 weight = %d, want 2 (paper step 2)", w)
	}
	// The paper's narration counts R2's weight as 6; note it receives 1
	// from R0 directly, 1 more in the figure's tally, and 2 per R1
	// expansion — with R0 referencing R2 once and R1 twice-expanded, the
	// propagated total is 1 + 2x1 = 3 expansions of R2... the figure's
	// "6" counts words contributed (2 words per expansion x 3) — verify
	// both views.
	if w := e.meta(2).weight(); w != 3 {
		t.Errorf("R2 weight = %d, want 3 expansions", w)
	}

	// Step 3: accumulated word frequencies.
	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	want := map[uint32]uint64{0: 3, 1: 3, 2: 2, 3: 2, 4: 1, 5: 1}
	if !reflect.DeepEqual(wc, want) {
		t.Errorf("word counts = %v, want %v", wc, want)
	}

	// Files: A = "w1 w2 w3 w4 w5 w1 w2 w3 w4", B = "w6 w1 w2".
	inv, err := e.InvertedIndex()
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	if got := inv[0]; len(got) != 2 { // w1 in both files
		t.Errorf("w1 postings = %v", got)
	}
	if got := inv[5]; len(got) != 1 || got[0] != 1 { // w6 only in file B
		t.Errorf("w6 postings = %v", got)
	}
}
