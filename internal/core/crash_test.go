package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// Crash-injection tests: interrupt persistence at adversarial points using
// the device fail point and raw crashes, then verify the §IV-E recovery
// contract.

func TestCrashDuringInitRequiresReload(t *testing.T) {
	// A crash before the initialization checkpoint leaves no usable pool.
	_, d, g := corpus(t, 50, 2, 150, 25)
	e := newEngine(t, g, d, Options{})
	// Forge a pre-checkpoint state: reset the phase by crashing a device
	// whose pool was never checkpointed.  Build a raw device with a pool
	// but no phases.
	dev := nvm.New(nvm.KindNVM, e.dev.Size())
	p, err := pmemCreate(dev)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	_ = p
	if _, _, err := Reopen(dev, d, Options{}); !errors.Is(err, ErrNeedsReload) {
		t.Errorf("Reopen on phase-0 pool: %v", err)
	}
}

func TestFlushFailureDuringCheckpointSurfaces(t *testing.T) {
	files, d, g := corpus(t, 51, 2, 150, 25)
	e := newEngine(t, g, d, Options{})
	e.dev.FailAfterFlushes(0)
	if _, err := e.WordCount(); err == nil {
		t.Fatal("expected checkpoint flush failure to surface")
	}
	e.dev.DisarmFailPoint()
	// The engine remains usable once the device recovers.
	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
		t.Error("word count mismatch after transient failure")
	}
}

func TestOpLevelFlushFailureSurfaces(t *testing.T) {
	_, d, g := corpus(t, 52, 2, 150, 25)
	e := newEngine(t, g, d, Options{Persistence: OpLevel})
	e.dev.FailAfterFlushes(3)
	if _, err := e.WordCount(); err == nil {
		t.Fatal("expected op-log flush failure to surface")
	}
	e.dev.DisarmFailPoint()
	if _, err := e.WordCount(); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	files, d, g := corpus(t, 53, 3, 120, 20)
	e := newEngine(t, g, d, Options{Sequences: true})
	want := analytics.RefWordCount(files)

	dev := e.dev
	for round := 0; round < 3; round++ {
		re, _, err := Reopen(dev, d, Options{Sequences: true})
		if err != nil {
			t.Fatalf("round %d: Reopen: %v", round, err)
		}
		wc, err := re.WordCount()
		if err != nil {
			t.Fatalf("round %d: WordCount: %v", round, err)
		}
		if !reflect.DeepEqual(wc, want) {
			t.Fatalf("round %d: mismatch", round)
		}
		if err := dev.Crash(); err != nil {
			t.Fatalf("round %d: Crash: %v", round, err)
		}
	}
}

func TestOpLevelCrashMidLogCompaction(t *testing.T) {
	// A tiny log forces many compactions; crash between them and verify
	// replay equals the durable prefix semantics (counts from compacted
	// tables plus the tail log, applied to a consistent state).
	files, d, g := corpus(t, 54, 2, 250, 25)
	opts := Options{Persistence: OpLevel, OpLogCap: 2048}
	e := newEngine(t, g, d, opts)

	e.beginTraversal()
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		t.Fatalf("newCounter: %v", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		t.Fatalf("topDownGlobal: %v", err)
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, info, err := Reopen(e.dev, d, opts)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	counts, err := re.ReplayedCounts()
	if err != nil {
		t.Fatalf("ReplayedCounts: %v", err)
	}
	// The traversal completed every mutation before the crash (the final
	// commit fence ran inside topDownGlobal's last opCommit), so replayed
	// state must equal the full reference.
	if !reflect.DeepEqual(counts, analytics.RefWordCount(files)) {
		t.Errorf("replayed counts diverge (replayed %d records)", info.Replayed)
	}
}

func TestSeqLocalTablesSurviveCrash(t *testing.T) {
	files, d, g := corpus(t, 55, 3, 200, 15)
	e := newEngine(t, g, d, Options{Sequences: true})
	want, err := e.SequenceCount()
	if err != nil {
		t.Fatalf("SequenceCount: %v", err)
	}
	if !reflect.DeepEqual(want, analytics.RefSequenceCount(files)) {
		t.Fatal("pre-crash sequence counts wrong")
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, _, err := Reopen(e.dev, d, Options{Sequences: true})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	got, err := re.RankedInvertedIndex()
	if err != nil {
		t.Fatalf("recovered RankedInvertedIndex: %v", err)
	}
	if !reflect.DeepEqual(got, analytics.RefRankedInvertedIndex(files)) {
		t.Error("recovered ranked inverted index mismatch")
	}
}

func TestPerOpCommitMatchesReference(t *testing.T) {
	files, d, g := corpus(t, 56, 2, 150, 20)
	e := newEngine(t, g, d, Options{Persistence: OpLevel, PerOpCommit: true})
	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc, analytics.RefWordCount(files)) {
		t.Error("per-op-commit word count mismatch")
	}
}

func TestPerOpCommitCostsMore(t *testing.T) {
	_, d, g := corpus(t, 57, 2, 200, 20)
	perRule := newEngine(t, g, d, Options{Persistence: OpLevel})
	if _, err := perRule.WordCount(); err != nil {
		t.Fatal(err)
	}
	perOp := newEngine(t, g, d, Options{Persistence: OpLevel, PerOpCommit: true})
	if _, err := perOp.WordCount(); err != nil {
		t.Fatal(err)
	}
	a := perRule.LastTraversalSpan().Total()
	b := perOp.LastTraversalSpan().Total()
	if b <= a {
		t.Errorf("per-mutation commits (%v) not costlier than per-rule (%v)", b, a)
	}
}

// pmemCreate builds a bare pool on dev (no engine phases), for recovery
// tests that need a pre-initialization state.
func pmemCreate(dev *nvm.SimDevice) (interface{}, error) {
	p, err := pmem.Create(dev, pmem.Options{LogCap: 4096})
	return p, err
}

func TestNaivePortCostsMoreThanNTADOC(t *testing.T) {
	// The §III-B ordering: naive PMDK port >> N-TADOC on the same medium.
	_, d, g := corpus(t, 58, 2, 300, 25)
	tuned := newEngine(t, g, d, Options{})
	if _, err := tuned.WordCount(); err != nil {
		t.Fatal(err)
	}
	naive := newEngine(t, g, d, Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: OpLevel, PerOpCommit: true,
	})
	if _, err := naive.WordCount(); err != nil {
		t.Fatal(err)
	}
	a := tuned.InitSpan().Total() + tuned.LastTraversalSpan().Total()
	b := naive.InitSpan().Total() + naive.LastTraversalSpan().Total()
	if b < 2*a {
		t.Errorf("naive port (%v) not clearly costlier than N-TADOC (%v)", b, a)
	}
}

func TestPoolEstimateCoversActualUse(t *testing.T) {
	for _, seq := range []bool{false, true} {
		_, d, g := corpus(t, 59, 4, 300, 40)
		opts := Options{Sequences: seq}
		est, err := PoolEstimate(g, opts)
		if err != nil {
			t.Fatalf("PoolEstimate: %v", err)
		}
		e := newEngine(t, g, d, opts)
		// Run the heaviest tasks; the pool must never run out.
		if _, err := e.TermVectors(5); err != nil {
			t.Fatalf("seq=%v TermVector: %v", seq, err)
		}
		if seq {
			if _, err := e.RankedInvertedIndex(); err != nil {
				t.Fatalf("RankedInvertedIndex: %v", err)
			}
		}
		if e.NVMBytes() > est+est/2 {
			t.Errorf("seq=%v: used %d exceeds estimate %d + slack", seq, e.NVMBytes(), est)
		}
	}
}

func TestNoDoubleReplayAfterCommittedTraversal(t *testing.T) {
	// Regression: a completed traversal checkpoints its tables durably and
	// advances the pool epoch; the op log's records are then superseded.
	// Recovery must NOT replay them on top of the checkpointed tables
	// (which would double every count).
	files, d, g := corpus(t, 62, 2, 200, 25)
	opts := Options{Persistence: OpLevel}
	e := newEngine(t, g, d, opts)
	want, err := e.WordCount() // completes, checkpoints
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, analytics.RefWordCount(files)) {
		t.Fatal("pre-crash counts wrong")
	}
	if err := e.dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, info, err := Reopen(e.dev, d, opts)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if info.Replayed != 0 {
		t.Errorf("replayed %d superseded records", info.Replayed)
	}
	counts, task, ok := re.CommittedCounts()
	if !ok || task != analytics.WordCount {
		t.Fatalf("committed counts missing (ok=%v task=%v)", ok, task)
	}
	if !reflect.DeepEqual(counts, want) {
		t.Error("recovered counts diverge from committed run")
	}
}
