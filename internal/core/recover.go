package core

import (
	"errors"
	"fmt"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// RecoveryInfo reports what Reopen found on the device.
type RecoveryInfo struct {
	// Phase is the last durably completed phase: phaseInit means the DAG
	// pool is intact and traversal must (re)run; phaseTraversal means the
	// last task's results are committed and readable.
	Phase uint32
	// Replayed is the number of operation-level log records applied onto
	// the recovered tables.
	Replayed int64
	// CommittedTask is the task whose results are committed, valid when
	// Phase == 2 (graph traversal).
	CommittedTask analytics.Task
}

// Reopen recovers an engine from an existing pool after a crash or restart.
// The persistence contract (§IV-E):
//
//   - If initialization never completed, ErrNeedsReload is returned and the
//     caller must rebuild with New from the compressed input.
//   - Phase-level: the engine restarts from the last completed phase — the
//     DAG pool is intact, an interrupted traversal is simply re-run.
//   - Operation-level: additionally, counter mutations logged before the
//     crash are replayed onto the recovered tables.
//
// opts must carry the same ablation/persistence configuration the pool was
// built with.
func Reopen(dev *nvm.SimDevice, d *dict.Dictionary, opts Options) (*Engine, *RecoveryInfo, error) {
	opts = opts.withDefaults()
	pool, err := pmem.Open(dev)
	if err != nil {
		// A missing or corrupt pool is the same condition as an incomplete
		// initialization: the durable state is unusable and the caller must
		// rebuild from the compressed input.  Never a panic or a mis-sized
		// pool.
		if errors.Is(err, pmem.ErrNoPool) || errors.Is(err, pmem.ErrCorrupt) {
			return nil, nil, fmt.Errorf("%w: %v", ErrNeedsReload, err)
		}
		return nil, nil, err
	}
	if pool.Phase() < phaseInit {
		return nil, nil, ErrNeedsReload
	}
	e := &Engine{opts: opts, dev: dev, pool: pool, d: d, meter: &metrics.Meter{}}
	info := &RecoveryInfo{Phase: pool.Phase()}

	get := func(slot int) int64 {
		v, err := pool.Root(slot)
		if err != nil {
			panic("core: root slot: " + err.Error())
		}
		return v
	}
	// Root slots are not covered by the header CRC, so validate every region
	// they describe before constructing accessors: a corrupt slot must
	// surface as ErrNeedsReload, never as an accessor panic.
	region := func(off, n int64, what string) (nvm.Accessor, error) {
		if off < 0 || n < 0 || off > pool.Size() || n > pool.Size()-off {
			return nvm.Accessor{}, fmt.Errorf("%w: %s region [%d, +%d) outside pool",
				ErrNeedsReload, what, off, n)
		}
		return pool.AccessorAt(off, n), nil
	}
	e.numRules = uint32(get(rootNumRules))
	e.numWords = uint32(get(rootNumWords))
	e.numFiles = uint32(get(rootNumFiles))
	if e.metaAcc, err = region(get(rootMeta), int64(e.numRules)*metaSize, "rule meta"); err != nil {
		return nil, nil, err
	}
	rootOff := get(rootRootBody)
	hdr, err := region(rootOff, 8, "root body header")
	if err != nil {
		return nil, nil, err
	}
	e.rootLen = int64(hdr.Uint64(0))
	if e.rootAcc, err = region(rootOff, 8+e.rootLen*4, "root body"); err != nil {
		return nil, nil, err
	}
	if e.topoAcc, err = region(get(rootTopo), int64(e.numRules)*4, "topo order"); err != nil {
		return nil, nil, err
	}
	e.initTop = get(rootInitTop)
	e.distinctWords = get(rootDistinct)
	e.bodySymbols = get(rootBodySyms)
	e.mergeWork = get(rootMergeWork)
	info.CommittedTask = analytics.Task(get(rootTaskID))

	// Sequence structures.
	if seqDictOff := get(rootSeqDict); seqDictOff != 0 {
		e.seqEnabled = true
		cntAcc, err := region(seqDictOff, 8, "sequence dict header")
		if err != nil {
			return nil, nil, err
		}
		cnt := int64(cntAcc.Uint64(0))
		acc, err := region(seqDictOff, 8+cnt*12, "sequence dict")
		if err != nil {
			return nil, nil, err
		}
		flat := make([]uint32, cnt*3)
		acc.Uint32s(8, flat)
		e.seqList = make([]analytics.Seq, cnt)
		e.seqIDs = make(map[analytics.Seq]uint32, cnt)
		for i := int64(0); i < cnt; i++ {
			q := analytics.Seq{flat[i*3], flat[i*3+1], flat[i*3+2]}
			e.seqList[i] = q
			e.seqIDs[q] = uint32(i)
		}
		if e.edgesAcc, err = region(get(rootEdges), int64(e.numRules)*edgeSize, "sequence edges"); err != nil {
			return nil, nil, err
		}
		if e.localsAcc, err = region(get(rootSeqLocal), int64(e.numRules)*8, "sequence locals"); err != nil {
			return nil, nil, err
		}
	}

	// Operation-level log: reattach and replay pending records.
	if opts.Persistence == OpLevel {
		logOff := get(rootOpLog)
		if logOff != 0 {
			logAcc, err := region(logOff, opts.OpLogCap, "operation log")
			if err != nil {
				return nil, nil, err
			}
			e.oplog = newOpLog(logAcc)
			n, err := e.replayOps()
			if err != nil {
				return nil, nil, err
			}
			info.Replayed = n
		}
	}
	// Append-log region: replay the committed batches into a fresh delta
	// builder and republish the serving view.  The replayed corpus epoch
	// equals the committed batch count — exactly the appends a pre-crash
	// reader could have observed.  For shard engines the coordinator restores
	// the shared dictionary after all shards reopen (batches interleave
	// across shards in global append order); unsharded recovery restores it
	// here.
	if ingestOff := get(rootIngest); ingestOff != 0 {
		if ingestOff < 0 || ingestOff+ingestHeaderSize > pool.Size() {
			return nil, nil, fmt.Errorf("%w: append-log header outside pool", ErrNeedsReload)
		}
		if err := e.recoverIngest(ingestOff); err != nil {
			return nil, nil, err
		}
		if opts.ShardCount == 0 {
			if err := restoreVocabulary(d, e.ingest.infos); err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrNeedsReload, err)
			}
		}
	}
	e.travTables = make(map[int64]counterTable)
	e.travDirty = make(map[int64]bool)
	e.run = exec{e: e, meter: e.meter}
	return e, info, nil
}

// replayOps applies pending operation-log records onto their tables.
func (e *Engine) replayOps() (int64, error) {
	n := e.oplog.pending(e.pool.Epoch())
	tables := make(map[int64]pstruct.Counter)
	for i := int64(0); i < n; i++ {
		tableOff, key, delta := e.oplog.replayRecord(i)
		if tableOff < 0 {
			continue // growable ablation tables are not replayable
		}
		if tableOff == 0 || tableOff >= e.pool.Size() {
			return i, fmt.Errorf("%w: log record %d targets offset %d outside pool",
				ErrNeedsReload, i, tableOff)
		}
		tbl, ok := tables[tableOff]
		if !ok {
			var err error
			tbl, err = pstruct.OpenCounterAt(e.pool, tableOff)
			if err != nil {
				return i, err
			}
			tables[tableOff] = tbl
		}
		if _, err := tbl.Add(key, delta); err != nil {
			return i, err
		}
	}
	e.oplog.head = opLogHeader + n*opRecSize
	e.oplog.flushed = e.oplog.head
	return n, nil
}

// ReplayedCounts reads a recovered counter table: the word (or sequence-ID)
// counts reconstructed from durable state plus log replay.  It returns the
// table found at the committed result root, or the table targeted by the
// replayed operations when no traversal committed.
func (e *Engine) ReplayedCounts() (map[uint32]uint64, error) {
	off, err := e.pool.Root(rootResult)
	if err != nil {
		return nil, err
	}
	if off == 0 && e.oplog != nil && e.oplog.pending(e.pool.Epoch()) > 0 {
		off, _, _ = e.oplog.replayRecord(0)
	}
	if off <= 0 {
		return map[uint32]uint64{}, nil
	}
	tbl, err := pstruct.OpenCounterAt(e.pool, off)
	if err != nil {
		return nil, err
	}
	out := make(map[uint32]uint64, tbl.Len())
	tbl.Range(func(k, v uint64) bool { out[uint32(k)] = v; return true })
	return out, nil
}

// CommittedCounts returns the last committed traversal's result table when
// the pool's durable phase is graph traversal, for the counter-style tasks
// (word count, sort, sequence count).  ok is false when no traversal has
// committed or the task's results are not table-shaped.
func (e *Engine) CommittedCounts() (counts map[uint32]uint64, task analytics.Task, ok bool) {
	if e.pool.Phase() < phaseTraversal {
		return nil, 0, false
	}
	off, err := e.pool.Root(rootResult)
	if err != nil || off == 0 {
		return nil, 0, false
	}
	t, err := e.pool.Root(rootTaskID)
	if err != nil {
		return nil, 0, false
	}
	tbl, err := pstruct.OpenCounterAt(e.pool, off)
	if err != nil {
		return nil, 0, false
	}
	counts = make(map[uint32]uint64, tbl.Len())
	tbl.Range(func(k, v uint64) bool { counts[uint32(k)] = v; return true })
	return counts, analytics.Task(t), true
}
