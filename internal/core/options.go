// Package core implements N-TADOC, the paper's contribution: text analytics
// directly on TADOC-compressed data resident on NVM.  The engine realizes
// the four design pillars of §IV:
//
//   - the pruning method with NVM pool management (Algorithm 1): rule bodies
//     are trimmed to (id, frequency) pairs — subrules first, then words —
//     and laid out contiguously in traversal order in the DAG pool;
//   - bottom-up summation (Algorithm 2): every variable-length structure is
//     allocated once at its upper bound, so nothing is ever reconstructed on
//     NVM;
//   - the NVM-adapted data structures of §IV-D (pool hash tables with
//     status/key/value buffers, pool vectors, the traversal queue, and the
//     head/tail structures for sequence analytics);
//   - the two persistence strategies of §IV-E: phase-level (flush +
//     checkpoint at phase boundaries) and operation-level (a logical redo
//     log entry per counter mutation, with crash recovery by replay).
//
// The ablation switches (NoPruning, NoBounds, Scatter) reconstruct the
// naive "overload the allocator and point it at NVM" port the paper
// measures at 13.37x overhead in §III-B, and serve the design-choice
// ablation benchmarks.
package core

import (
	"errors"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Strategy selects the traversal direction for per-file tasks (§VI-E).
type Strategy int

// Traversal strategies.
const (
	// Auto lets the cost-based planner pick the direction from the grammar
	// shape (files, rules, body symbols, bottom-up merge work) and the
	// metrics cost model; see chooseStrategy in planner.go.
	Auto Strategy = iota
	// TopDown propagates weights from the root, traversing the DAG per
	// file: efficient for few files, catastrophic for many (§VI-E).
	TopDown
	// BottomUp materializes per-rule word lists once and merges them at
	// each file's top level: efficient for many files.
	BottomUp
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TopDown:
		return "top-down"
	case BottomUp:
		return "bottom-up"
	default:
		return "auto"
	}
}

// Persistence selects the §IV-E persistence strategy.
type Persistence int

// Persistence levels.
const (
	// PhaseLevel flushes the pool and writes a checkpoint at the end of
	// each phase (the libpmem strategy): cheap, recovery restarts the
	// interrupted phase.
	PhaseLevel Persistence = iota
	// OpLevel additionally logs every counter mutation to a redo log with
	// an immediate flush (the libpmemobj strategy): write-amplified but
	// recoverable to the last operation.
	OpLevel
)

// String names the persistence level.
func (p Persistence) String() string {
	if p == OpLevel {
		return "operation-level"
	}
	return "phase-level"
}

// Workflow phases recorded in pool checkpoints.
const (
	phaseNone      = 0
	phaseInit      = 1
	phaseTraversal = 2
)

// CounterKind selects the §IV-D result-structure family.
type CounterKind int

// Counter kinds.
const (
	// CounterAuto picks per structure: the dense vector counter when its
	// flat array would be no larger than the equivalent hash table (dense
	// key spaces like dictionary IDs), the hash table otherwise.
	CounterAuto CounterKind = iota
	// CounterHash forces hash tables everywhere.
	CounterHash
	// CounterDense forces dense vector counters wherever the key space is
	// known (falling back to hash tables elsewhere).
	CounterDense
)

// String names the counter kind.
func (c CounterKind) String() string {
	switch c {
	case CounterHash:
		return "hash"
	case CounterDense:
		return "dense"
	default:
		return "auto"
	}
}

// Options configures an N-TADOC engine.
type Options struct {
	// Kind is the simulated medium for the DAG pool (default KindNVM; the
	// Fig 7 comparison runs the same engine on KindSSD/KindHDD).
	Kind nvm.Kind
	// Model overrides the medium's default cost model when non-nil.
	Model *nvm.CostModel
	// Path makes the pool file-backed for real cross-process durability.
	Path string
	// Device, when non-nil, is used as the pool device instead of creating
	// one (Path is then ignored).  It must be at least PoolEstimate bytes.
	// The crash-exploration harness injects pre-armed devices this way; the
	// engine takes ownership (Close discards it).
	Device *nvm.SimDevice
	// ShardIndex and ShardCount stamp the engine's pool with its position in
	// a sharded engine set (both zero for an unsharded engine).  NewSharded
	// fills them per shard; sharded recovery validates the stamps so a
	// device set assembled from mismatched shards is rejected.
	ShardIndex uint32
	ShardCount uint32
	// BuildTag, when non-zero, is a content fingerprint of the compressed
	// input stamped into the engine's pool header (for shards of a unified
	// shared-rule container, the container's shared-table checksum; see
	// cfg.SharedSet.Checksum).  ReopenSharded rejects a device set whose
	// pools carry different tags — shards of different builds — even when
	// their positional stamps line up.
	BuildTag uint32
	// ShardDevices, when non-nil, provides one pre-created device per shard
	// to NewSharded (it must have exactly one device per shard grammar).
	// The crash-exploration harness injects pre-armed shard devices this
	// way.  On success each shard engine takes ownership of its device;
	// when construction fails the devices stay with the caller, so a crash
	// harness can still clone their durable state.
	ShardDevices []*nvm.SimDevice
	// Replication configures per-shard follower replication and failover
	// (sharded engines only; see the Replication type).  Zero value disables
	// replication.
	Replication Replication
	// Persistence selects the §IV-E strategy (default PhaseLevel).
	Persistence Persistence
	// Strategy selects the traversal direction (default Auto).
	Strategy Strategy
	// Counters selects between the §IV-D hash table and vector counter
	// (default CounterAuto).
	Counters CounterKind
	// Sequences enables the sequence-analytics preprocessing during
	// initialization (head/tail structures, per-rule n-gram tables).
	// Without it, SequenceCount and RankedInvertedIndex return an error —
	// and initialization is much cheaper, matching the per-task init times
	// of Table II.
	Sequences bool

	// Ablation switches; all false in the real system.

	// NoPruning stores raw, untrimmed rule bodies (challenge 1 baseline).
	NoPruning bool
	// NoBounds replaces upper-bound-sized tables with growable ones that
	// reconstruct when full (challenge 2 baseline).
	NoBounds bool
	// Scatter allocates rule bodies in shuffled order with random padding,
	// destroying the pool's locality (the naive-port layout).
	Scatter bool

	// IngestCap reserves this many bytes of pool space for the durable
	// append log, enabling Append on the engine (0 disables ingestion; the
	// figure harnesses leave it 0 so modeled pool layouts are unchanged).
	// The log is monotonic: once the region fills, Append returns
	// ErrIngestFull until the corpus is recompressed.
	IngestCap int64
	// Compaction configures the lag/size thresholds at which a background
	// Compactor re-merges the delta grammar into the base.  Zero value uses
	// DefaultCompactionPolicy when a Compactor is started.
	Compaction CompactionPolicy
	// PoolSlack is the extra pool capacity fraction beyond the estimate
	// (default 0.5; NoBounds runs need headroom for reconstruction).
	PoolSlack float64
	// OpLogCap is the operation-level redo-log capacity (default 256 KiB;
	// the log compacts when full, flushing the live tables).
	OpLogCap int64
	// PerOpCommit fences the redo log after every single counter mutation
	// instead of after each analytics operation — the behaviour of the
	// naive PMDK port of §III-B, where every structure mutation is its own
	// transaction.  Only meaningful with Persistence == OpLevel.
	PerOpCommit bool
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.PoolSlack == 0 {
		o.PoolSlack = 0.5
	}
	if o.OpLogCap == 0 {
		o.OpLogCap = 256 << 10
	}
	return o
}

// Engine errors.
var (
	// ErrNeedsReload reports recovery finding a pool whose initialization
	// never completed: the engine must be rebuilt from the compressed
	// input.
	ErrNeedsReload = errors.New("core: initialization incomplete; reload from compressed input")
	// ErrNoSequences reports a sequence task on an engine initialized
	// without sequence preprocessing.
	ErrNoSequences = errors.New("core: engine initialized without sequence support")
	// ErrNoIngest reports an Append on an engine built without an ingest
	// region (Options.IngestCap == 0).
	ErrNoIngest = errors.New("core: engine built without ingestion support (IngestCap == 0)")
	// ErrIngestFull reports an Append that does not fit the remaining
	// append-log capacity.  The corpus must be recompressed (or the engine
	// rebuilt with a larger IngestCap).
	ErrIngestFull = errors.New("core: append log full; recompress the corpus")
	// ErrCompacting reports an Append rejected because a compaction swap is
	// in progress; the caller should retry shortly (the server maps this to
	// 503).
	ErrCompacting = errors.New("core: compaction in progress; retry append")
	// ErrNoBaseGrammar reports a Compact on an engine that no longer holds
	// its base grammar in DRAM (engines recovered with Reopen): queries and
	// appends still work, but re-merging requires the compressed input.
	ErrNoBaseGrammar = errors.New("core: base grammar unavailable (recovered engine); compaction needs the compressed input")
)
