package core

import (
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
)

// TestFusedMatchesSequentialWithFewerReads runs all six registered ops
// first sequentially (six traversals) and then as one fused batch on a
// second engine over the same corpus.  The fused results must be
// bit-identical to the sequential ones, and the fused run must touch the
// simulated device strictly less: fusion's whole point is feeding every op
// from the same body reads.
func TestFusedMatchesSequentialWithFewerReads(t *testing.T) {
	_, d, g := corpus(t, 47, 6, 400, 60)
	ops := analytics.Ops()

	seqEngine := newEngine(t, g, d, Options{Sequences: true})
	seqEngine.Device().ResetStats()
	sequential := make([]any, len(ops))
	for i, op := range ops {
		res, err := seqEngine.RunOp(op)
		if err != nil {
			t.Fatalf("sequential %v: %v", op.Task(), err)
		}
		sequential[i] = res
	}
	seqStats := seqEngine.Device().Stats()

	fusedEngine := newEngine(t, g, d, Options{Sequences: true})
	fusedEngine.Device().ResetStats()
	fused, err := fusedEngine.RunOps(ops)
	if err != nil {
		t.Fatalf("RunOps: %v", err)
	}
	fusedStats := fusedEngine.Device().Stats()

	for i, op := range ops {
		if !reflect.DeepEqual(fused[i], sequential[i]) {
			t.Errorf("%v: fused result differs from sequential run", op.Task())
		}
	}
	if fusedStats.Reads >= seqStats.Reads {
		t.Errorf("fused Reads = %d, want < sequential %d", fusedStats.Reads, seqStats.Reads)
	}
	if fusedStats.BytesRead >= seqStats.BytesRead {
		t.Errorf("fused BytesRead = %d, want < sequential %d", fusedStats.BytesRead, seqStats.BytesRead)
	}
}

// TestFusedSubsetsMatchReference exercises fused batches smaller than the
// full six-op set, including word-only and sequence-only mixes, against the
// uncompressed references.
func TestFusedSubsetsMatchReference(t *testing.T) {
	files, d, g := corpus(t, 48, 4, 250, 40)
	e := newEngine(t, g, d, Options{Sequences: true})

	res, err := e.RunOps([]analytics.Op{analytics.WordCountOp{}, analytics.SortOp{}})
	if err != nil {
		t.Fatalf("RunOps(word ops): %v", err)
	}
	if !reflect.DeepEqual(res[0], analytics.RefWordCount(files)) {
		t.Error("fused word count mismatch")
	}
	if !reflect.DeepEqual(res[1], analytics.RefSort(files, d)) {
		t.Error("fused sort mismatch")
	}

	res, err = e.RunOps([]analytics.Op{
		analytics.SequenceCountOp{}, analytics.RankedInvertedIndexOp{},
	})
	if err != nil {
		t.Fatalf("RunOps(seq ops): %v", err)
	}
	if !reflect.DeepEqual(res[0], analytics.RefSequenceCount(files)) {
		t.Error("fused sequence count mismatch")
	}
	if !reflect.DeepEqual(res[1], analytics.RefRankedInvertedIndex(files)) {
		t.Error("fused ranked inverted index mismatch")
	}

	res, err = e.RunOps([]analytics.Op{
		analytics.TermVectorsOp{K: 6}, analytics.InvertedIndexOp{}, analytics.SequenceCountOp{},
	})
	if err != nil {
		t.Fatalf("RunOps(mixed scope): %v", err)
	}
	if !reflect.DeepEqual(res[0], analytics.RefTermVector(files, 6)) {
		t.Error("fused term vectors mismatch")
	}
	if !reflect.DeepEqual(res[1], analytics.RefInvertedIndex(files)) {
		t.Error("fused inverted index mismatch")
	}
	if !reflect.DeepEqual(res[2], analytics.RefSequenceCount(files)) {
		t.Error("fused sequence count mismatch")
	}
}

// TestFusedDuplicateOpsIndependent checks that one op appearing twice in a
// batch yields two equal, independent results.
func TestFusedDuplicateOpsIndependent(t *testing.T) {
	files, d, g := corpus(t, 49, 3, 200, 30)
	e := newEngine(t, g, d, Options{Sequences: false})
	res, err := e.RunOps([]analytics.Op{analytics.WordCountOp{}, analytics.WordCountOp{}})
	if err != nil {
		t.Fatalf("RunOps: %v", err)
	}
	want := analytics.RefWordCount(files)
	for i := range res {
		if !reflect.DeepEqual(res[i], want) {
			t.Errorf("duplicate op result %d mismatch", i)
		}
	}
}

// TestFusedSeqOpWithoutSequences: a batch containing any sequence op on a
// words-only engine must fail up front with ErrNoSequences.
func TestFusedSeqOpWithoutSequences(t *testing.T) {
	_, d, g := corpus(t, 50, 3, 200, 30)
	e := newEngine(t, g, d, Options{Sequences: false})
	_, err := e.RunOps([]analytics.Op{analytics.WordCountOp{}, analytics.SequenceCountOp{}})
	if err != ErrNoSequences {
		t.Fatalf("RunOps = %v, want ErrNoSequences", err)
	}
}
