package core

import (
	"sync"
	"time"
)

// CompactionPolicy sets the thresholds at which a background Compactor folds
// an engine's delta grammar back into its serving base.
type CompactionPolicy struct {
	// MaxDeltaDocs triggers a compaction once the live delta holds more than
	// this many appended documents (0 uses the default).
	MaxDeltaDocs int
	// MaxDeltaBytes triggers a compaction once the live delta grammar's body
	// symbols exceed this many bytes, at 8 bytes per symbol (0 uses the
	// default).
	MaxDeltaBytes int64
	// Interval is the worker's polling cadence (0 uses the default).
	Interval time.Duration
}

// DefaultCompactionPolicy returns the thresholds the serving daemon uses.
func DefaultCompactionPolicy() CompactionPolicy {
	return CompactionPolicy{MaxDeltaDocs: 64, MaxDeltaBytes: 1 << 20, Interval: 50 * time.Millisecond}
}

// withDefaults resolves zero fields.
func (p CompactionPolicy) withDefaults() CompactionPolicy {
	def := DefaultCompactionPolicy()
	if p.MaxDeltaDocs == 0 {
		p.MaxDeltaDocs = def.MaxDeltaDocs
	}
	if p.MaxDeltaBytes == 0 {
		p.MaxDeltaBytes = def.MaxDeltaBytes
	}
	if p.Interval == 0 {
		p.Interval = def.Interval
	}
	return p
}

// exceeded reports whether stats cross either compaction threshold.
func (p CompactionPolicy) exceeded(st IngestStats) bool {
	return st.DeltaDocs > p.MaxDeltaDocs || st.DeltaSymbols*8 > p.MaxDeltaBytes
}

// Compactable is an engine the background worker can compact: the unsharded
// Engine and the ShardedEngine both implement it.
type Compactable interface {
	// CompactIfNeeded compacts when the policy's thresholds are exceeded and
	// reports whether a compaction ran.
	CompactIfNeeded(p CompactionPolicy) (bool, error)
}

// CompactIfNeeded implements Compactable.
func (e *Engine) CompactIfNeeded(p CompactionPolicy) (bool, error) {
	if e.ingest == nil {
		return false, nil
	}
	if !p.withDefaults().exceeded(e.IngestStats()) {
		return false, nil
	}
	if err := e.Compact(); err != nil {
		return false, err
	}
	return true, nil
}

// Compactor is the background compaction worker: it polls a Compactable on
// the policy's cadence and folds deltas into the serving base whenever the
// thresholds are crossed, so query cost over base+delta stays bounded while
// appends continue.
type Compactor struct {
	target Compactable
	policy CompactionPolicy
	stop   chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	runs    int   // guarded by mu: compactions performed
	skipped int   // guarded by mu: polls below threshold
	lastErr error // guarded by mu: most recent compaction error
	stopped bool  // guarded by mu: Stop has completed
}

// StartCompactor launches the worker; Stop shuts it down.
func StartCompactor(t Compactable, p CompactionPolicy) *Compactor {
	c := &Compactor{
		target: t,
		policy: p.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.loop()
	return c
}

func (c *Compactor) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.policy.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			ran, err := c.target.CompactIfNeeded(c.policy)
			c.mu.Lock()
			switch {
			case err != nil && err != ErrCompacting:
				c.lastErr = err
			case ran:
				c.runs++
			default:
				c.skipped++
			}
			c.mu.Unlock()
		}
	}
}

// Stop shuts the worker down and waits for the in-flight poll, if any, to
// finish.  Idempotent.
func (c *Compactor) Stop() {
	c.mu.Lock()
	already := c.stopped
	c.stopped = true
	c.mu.Unlock()
	if already {
		return
	}
	close(c.stop)
	<-c.done
}

// Runs reports how many compactions the worker has performed and the most
// recent compaction error, if any.
func (c *Compactor) Runs() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs, c.lastErr
}
