package core

import (
	"context"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/pstruct"
)

// The operation kernel.  Every analytics task is the same DAG walk with a
// different per-visit action, so the engine owns exactly one copy of each
// traversal mode — top-down global, top-down per-file, bottom-up per-file,
// and the spanning-window sequence walk (seqtask.go) — and tasks plug in as
// analytics.Op implementations.  A batch of ops that need the same mode
// shares one walk: the counters differ, but the body reads (the dominant
// device traffic) happen once.
//
// exec is one traversal execution context.  The engine's task path binds it
// to the persistent pool structures — weight/scratch metadata slots, pool
// counter tables behind the op log, the pool traversal queue — which is what
// the crash-consistency machinery protects.  A query session instead binds
// it to session-local DRAM state, so concurrent sessions never touch shared
// mutable pool scratch.
type exec struct {
	e     *Engine
	meter *metrics.Meter
	sess  *sessionState // nil on the engine's persistent path

	// ctx, when non-nil, cancels the traversal between per-rule (or
	// per-file) operations: the walks poll it at their loop heads and
	// unwind with ctx.Err().  Only query sessions set it — the persistent
	// path never aborts mid-phase, so its crash-consistency story is
	// unchanged.
	ctx context.Context

	// Body-read scratch, reused across reads.  Valid only until the next
	// read of the same kind; no caller retains these slices.
	bodyFlat  []uint32
	bodySubs  []pair
	bodyWords []pair
	rawSyms   []cfg.Symbol
	edgeToks  []uint32
}

// sessionState is the DRAM half of a query session: the traversal state
// that the persistent path keeps in pool metadata slots and pool tables.
type sessionState struct {
	weights   []uint64
	remaining []uint64
}

// canceled reports the execution context's cancellation state: nil on the
// persistent path (no context) and between cancellations, ctx.Err() once the
// session's request has been canceled or has passed its deadline.  The walks
// call it once per rule or file processed — frequent enough to bound
// cancellation latency by one body read, cheap enough (two atomic loads) to
// vanish against the modeled work of the visit itself.
func (x *exec) canceled() error {
	if x.ctx == nil {
		return nil
	}
	return x.ctx.Err()
}

// kcounter is one kernel-managed counter: a bounded pool table on the
// persistent path, a DRAM map in a session.  It implements analytics.Counts.
type kcounter struct {
	tbl counterTable
	off int64
	m   map[uint64]uint64
}

func (c *kcounter) Len() int64 {
	if c.m != nil {
		return int64(len(c.m))
	}
	return c.tbl.Len()
}

func (c *kcounter) Range(fn func(k, v uint64) bool) {
	if c.m != nil {
		for k, v := range c.m {
			if !fn(k, v) {
				return
			}
		}
		return
	}
	c.tbl.Range(fn)
}

// newKCounter allocates a counter for the current execution context.
func (x *exec) newKCounter(bound, keySpace int64) (*kcounter, error) {
	if x.sess != nil {
		return &kcounter{off: -1, m: make(map[uint64]uint64)}, nil
	}
	tbl, off, err := x.e.newCounter(bound, keySpace)
	if err != nil {
		return nil, err
	}
	return &kcounter{tbl: tbl, off: off}, nil
}

// add performs one counter mutation.  The persistent path goes through the
// op-log write-ahead protocol; the session path charges the same hash cost
// into the session meter.
func (x *exec) add(c *kcounter, key, delta uint64) error {
	if c.m != nil {
		x.meter.Charge(1, metrics.CostHashOp)
		c.m[key] += delta
		return nil
	}
	return x.e.addCount(c.tbl, c.off, key, delta)
}

// commit fences the op log after one analytics operation; free when nothing
// was appended, a no-op in sessions.
func (x *exec) commit() error {
	if x.sess != nil {
		return nil
	}
	return x.e.opCommit()
}

// Rule weights and the remaining-parents scratch: NVM metadata slots on the
// persistent path (charged by the device model, readable after a crash),
// session-local arrays otherwise.  Access order mirrors the persistent
// accessors exactly so the modeled device pattern is unchanged.

func (x *exec) weight(r uint32) uint64 {
	if x.sess != nil {
		return x.sess.weights[r]
	}
	return x.e.meta(r).weight()
}

func (x *exec) setWeight(r uint32, v uint64) {
	if x.sess != nil {
		x.sess.weights[r] = v
		return
	}
	x.e.meta(r).setWeight(v)
}

func (x *exec) remaining(r uint32) uint64 {
	if x.sess != nil {
		return x.sess.remaining[r]
	}
	return x.e.meta(r).scratch()
}

func (x *exec) setRemaining(r uint32, v uint64) {
	if x.sess != nil {
		x.sess.remaining[r] = v
		return
	}
	x.e.meta(r).setScratch(v)
}

// kqueue is the Kahn work queue: the pool traversal queue on the persistent
// path, a DRAM FIFO in a session.
type kqueue struct {
	q    *pstruct.Queue
	ring []uint32
	head int
}

func (x *exec) newQueue(capacity int64) (*kqueue, error) {
	if x.sess != nil {
		return &kqueue{ring: make([]uint32, 0, capacity)}, nil
	}
	q, err := pstruct.NewQueue(x.e.pool, capacity)
	if err != nil {
		return nil, err
	}
	return &kqueue{q: q}, nil
}

func (q *kqueue) push(r uint32) error {
	if q.q != nil {
		return q.q.Push(r)
	}
	q.ring = append(q.ring, r)
	return nil
}

func (q *kqueue) pop() (uint32, error) {
	if q.q != nil {
		return q.q.Pop()
	}
	r := q.ring[q.head]
	q.head++
	return r, nil
}

func (q *kqueue) len() int64 {
	if q.q != nil {
		return q.q.Len()
	}
	return int64(len(q.ring) - q.head)
}

// execEnv adapts an execution context to the analytics.Env folds consume.
type execEnv struct{ x *exec }

func (v execEnv) Dict() *dict.Dictionary         { return v.x.e.d }
func (v execEnv) NumFiles() int                  { return int(v.x.e.numFiles) }
func (v execEnv) SeqOf(key uint64) analytics.Seq { return v.x.e.seqList[key] }
func (v execEnv) Charge(n, perOp int64)          { v.x.meter.Charge(n, perOp) }

// runPlan executes a batch of ops over the fewest traversals their
// declarations allow: one top-down global pass feeds every global op (word
// counters and, via the weights it leaves behind, the sequence
// decomposition), and one per-file pass feeds every per-file op.
// resultOffs[i] is the durable pool offset of op i's global counter (0 for
// per-file ops, whose results are DRAM aggregates).
func (x *exec) runPlan(ops []analytics.Op) (results []any, resultOffs []int64, err error) {
	env := execEnv{x: x}
	folds := make([]analytics.Fold, len(ops))
	resultOffs = make([]int64, len(ops))
	var globalWord, globalSeq, fileWord, fileSeq []int
	for i, op := range ops {
		folds[i] = op.NewFold(env)
		switch {
		case op.Scope() == analytics.ScopeGlobal && op.Keys() == analytics.KeyWords:
			globalWord = append(globalWord, i)
		case op.Scope() == analytics.ScopeGlobal:
			globalSeq = append(globalSeq, i)
		case op.Keys() == analytics.KeyWords:
			fileWord = append(fileWord, i)
		default:
			fileSeq = append(fileSeq, i)
		}
	}

	if len(globalWord)+len(globalSeq) > 0 {
		var gw, gs *kcounter
		var root []cfg.Symbol
		if len(globalWord) > 0 {
			if gw, err = x.newKCounter(x.e.globalBound(), int64(x.e.numWords)); err != nil {
				return nil, nil, err
			}
		}
		if len(globalSeq) > 0 {
			root = x.readRoot()
			if gs, err = x.newKCounter(x.seqBound(root), int64(len(x.e.seqList))); err != nil {
				return nil, nil, err
			}
		}
		var emit func(word uint32, count uint64) error
		if gw != nil {
			emit = func(w uint32, count uint64) error { return x.add(gw, uint64(w), count) }
		}
		// One pass propagates the weights; word emission rides along for
		// free because the body read fetches subrules and words together.
		if err := x.topDownPass(emit); err != nil {
			return nil, nil, err
		}
		for _, i := range globalWord {
			resultOffs[i] = gw.off
			if err := folds[i].Global(gw); err != nil {
				return nil, nil, err
			}
		}
		if gs != nil {
			// §IV-D decomposition: global sequence counts are the root's
			// spanning windows plus each rule's local table scaled by the
			// corpus-wide weight the pass above left behind.
			if err := x.addWeightedLocals(gs, x.weight); err != nil {
				return nil, nil, err
			}
			if err := x.addSpanningToCounter(root, gs); err != nil {
				return nil, nil, err
			}
			for _, i := range globalSeq {
				resultOffs[i] = gs.off
				if err := folds[i].Global(gs); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	if len(fileWord)+len(fileSeq) > 0 {
		err := x.perFilePass(len(fileWord) > 0, len(fileSeq) > 0,
			func(doc uint32, wordC, seqC *kcounter) error {
				for _, i := range fileWord {
					if err := folds[i].File(doc, wordC); err != nil {
						return err
					}
				}
				for _, i := range fileSeq {
					if err := folds[i].File(doc, seqC); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			return nil, nil, err
		}
	}

	results = make([]any, len(ops))
	for i := range ops {
		if results[i], err = folds[i].Finish(); err != nil {
			return nil, nil, err
		}
	}
	return results, resultOffs, nil
}

// runOps is the engine task path.  On an appendable engine it serves the
// merged corpus: the batch runs against the compacted serving tail and the
// pinned delta view, and the unit results merge bit-identically to a
// from-scratch rebuild over the appended corpus.  Shard engines inside a
// sharded set (ingest.external) serve base-only results — the coordinator
// merges deltas globally with document maps.
func (e *Engine) runOps(what string, ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if st := e.ingest; st != nil && !st.external {
		return st.serveMerged(ops, e.meter, func(t *Engine) ([]any, error) {
			return t.runOpsLocal(what, ops)
		})
	}
	return e.runOpsLocal(what, ops)
}

// runOpsLocal executes one traversal phase over this engine's own pool,
// ignoring any serving chain: ops execute fused, and the last op's task and
// result table are what the phase commit records — the same durable state a
// sequential run of the batch would leave.
func (e *Engine) runOpsLocal(what string, ops []analytics.Op) ([]any, error) {
	for _, op := range ops {
		if op.Keys() == analytics.KeySequences && !e.seqEnabled {
			return nil, ErrNoSequences
		}
	}
	span, err := e.beginTraversal()
	if err != nil {
		return nil, errEngine(what, err)
	}
	results, offs, err := e.run.runPlan(ops)
	if err != nil {
		return nil, errEngine(what, err)
	}
	last := len(ops) - 1
	if err := e.endTraversal(span, ops[last].Task(), offs[last]); err != nil {
		return nil, errEngine(what, err)
	}
	return results, nil
}

// RunOps implements analytics.Executor: it executes the batch in one fused
// traversal, sharing body reads and weight propagation among compatible ops.
// results[i] corresponds to ops[i] with the op's canonical result type.
func (e *Engine) RunOps(ops []analytics.Op) ([]any, error) {
	return e.runOps("run ops", ops)
}

// RunOp implements analytics.Executor.
func (e *Engine) RunOp(op analytics.Op) (any, error) {
	return e.runOp(op.Name(), op)
}

func (e *Engine) runOp(what string, op analytics.Op) (any, error) {
	results, err := e.runOps(what, []analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

var _ analytics.Executor = (*Engine)(nil)

// WordCount implements analytics.Engine.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	v, err := e.runOp("word count", analytics.WordCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32]uint64), nil
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	v, err := e.runOp("sort", analytics.SortOp{})
	if err != nil {
		return nil, err
	}
	return v.([]analytics.WordFreq), nil
}

// TermVectors implements analytics.Engine.
func (e *Engine) TermVectors(k int) ([][]analytics.WordFreq, error) {
	v, err := e.runOp("term vectors", analytics.TermVectorsOp{K: k})
	if err != nil {
		return nil, err
	}
	return v.([][]analytics.WordFreq), nil
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	v, err := e.runOp("inverted index", analytics.InvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[uint32][]uint32), nil
}

// SequenceCount implements analytics.Engine.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	v, err := e.runOp("sequence count", analytics.SequenceCountOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq]uint64), nil
}

// RankedInvertedIndex implements analytics.Engine.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	v, err := e.runOp("ranked inverted index", analytics.RankedInvertedIndexOp{})
	if err != nil {
		return nil, err
	}
	return v.(map[analytics.Seq][]analytics.DocFreq), nil
}
