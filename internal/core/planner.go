package core

import (
	"sort"

	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// Cost-based execution planning.  Two decisions that used to be fixed
// heuristics are derived from the metrics cost model and the grammar shape
// instead:
//
//   - traversal direction for per-file tasks (§VI-E): the old rule flipped
//     to bottom-up above a fixed 500-file threshold, which got both shapes
//     wrong — our §VI-E trend table measures top-down 1.4× slower already
//     at 400 B-shaped files, while D's 96 deep documents (past no threshold)
//     are 1.4× *faster* top-down.  File count alone cannot separate them;
//     the model below weighs the per-file weight sweep against the
//     bottom-up list-merge volume;
//   - shard fan-out per fused batch: how many parallel lanes a
//     scatter-gather dispatches, packing shards onto lanes so a batch over
//     many trivial shards does not pay per-lane dispatch overhead for lanes
//     that save no critical-path time.
//
// Both planners are pure functions of grammar shape and the cost constants,
// so the same decision falls out at initialization (which commits the
// sequence-table layout), at traversal time, and after crash recovery.

// chooseStrategy models the two per-file traversal directions and picks the
// cheaper (Options.Strategy overrides are applied by the callers):
//
//   - top-down sweeps the full topological order once per file — every rule
//     charges a weight-slot probe even when the file reaches none of it.
//     The reached bodies it then reads sit in granule-cached pool regions,
//     so the F·R probe sweep dominates: F·R·hash.
//   - bottom-up materializes each rule's distinct-word list once and merges
//     referenced lists entry by entry — in rule bodies and again at each
//     file's top level.  mergeWork (from planFeatures) counts those entries,
//     plus one entry per body symbol seeding its own list: (M + S)·merge.
//
// Calibrated against the measured engine: the model reproduces the §VI-E
// trend (B-shaped corpora flip to bottom-up by 400 tiny files, where the
// old fixed 500-file threshold still chose the direction measured 1.4×
// slower) and keeps few-large-document corpora (C, D) top-down — D's 96
// deep documents stay 1.4× faster top-down, because every bottom-up merge
// re-pays its wide distinct vocabulary, which a file-count threshold alone
// cannot see.
func chooseStrategy(numFiles, numRules uint32, bodySymbols, mergeWork int64) Strategy {
	f, r := int64(numFiles), int64(numRules)
	topDown := f * r * metrics.CostHashOp
	bottomUp := (mergeWork + bodySymbols) * metrics.CostMergeEntry
	if topDown <= bottomUp {
		return TopDown
	}
	return BottomUp
}

// planFeatures extracts the planner's grammar-shape features in one
// bottom-up pass: the total rule-body symbol count, and the bottom-up merge
// work — for every distinct rule reference (in rule bodies and in the
// root's file segments), the estimated size of the referenced rule's
// materialized distinct-word list, which is what perFileBottomUp merges
// entry by entry.  List sizes are estimated as expansion word counts capped
// at the vocabulary (the same cap the engine's bounded tables apply).
func planFeatures(g *cfg.Grammar) (bodySymbols, mergeWork int64) {
	order, err := g.TopoOrder()
	if err != nil {
		// Cyclic grammars are rejected by Validate elsewhere; a flat guess
		// keeps this function total.
		for _, b := range g.Rules {
			bodySymbols += int64(len(b))
		}
		return bodySymbols, bodySymbols
	}
	listLen := make([]int64, len(g.Rules))
	vocab := int64(g.NumWords)
	seen := make(map[uint32]struct{})
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		body := g.Rules[r]
		bodySymbols += int64(len(body))
		var d int64
		clear(seen)
		for _, s := range body {
			switch {
			case s.IsWord():
				d++
			case s.IsRule():
				if r == 0 {
					// Root segments merge each referenced list per
					// occurrence; pruned rule bodies merge per distinct
					// reference (frequency is a multiplier, not a re-merge).
					mergeWork += listLen[s.RuleIndex()]
					continue
				}
				if _, ok := seen[s.RuleIndex()]; ok {
					continue
				}
				seen[s.RuleIndex()] = struct{}{}
				d += listLen[s.RuleIndex()]
				mergeWork += listLen[s.RuleIndex()]
			}
		}
		if d > vocab {
			d = vocab
		}
		listLen[r] = d
	}
	return bodySymbols, mergeWork
}

// strategyForGrammar resolves the traversal direction for a grammar before
// an engine exists — preprocessing uses it to commit the matching
// sequence-table layout (cumulative tables for bottom-up, edge-only for
// top-down).
func strategyForGrammar(g *cfg.Grammar, opts Options) Strategy {
	if opts.Strategy != Auto {
		return opts.Strategy
	}
	s, m := planFeatures(g)
	return chooseStrategy(g.NumFiles, uint32(len(g.Rules)), s, m)
}

// planCost estimates the modeled cost of running a fused batch of numOps
// operations over this shard, from the shape the pool stores durably: one
// body scan plus one table operation per rule, per op.  Only relative
// magnitudes matter — the estimate ranks shards for lane packing.
func (e *Engine) planCost(numOps int) int64 {
	perOp := e.bodySymbols*metrics.CostScanToken + int64(e.numRules)*metrics.CostHashOp
	if perOp <= 0 {
		perOp = 1
	}
	return int64(numOps) * perOp
}

// laneDispatchCost is the coordinator-side overhead modeled per dispatched
// lane of a scatter-gather: scheduling, joining, and per-lane merge
// bookkeeping — the same order as one general-purpose transaction.
const laneDispatchCost = metrics.CostTxOverhead

// packLanes assigns shards to f lanes by longest-processing-time-first:
// shards sorted by descending estimated cost (index ascending on ties), each
// placed on the least-loaded lane (lowest index on ties).  Deterministic,
// and within 4/3 of the optimal makespan.  Empty lanes are dropped.
func packLanes(costs []int64, f int) [][]int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	lanes := make([][]int, f)
	loads := make([]int64, f)
	for _, i := range order {
		best := 0
		for l := 1; l < f; l++ {
			if loads[l] < loads[best] {
				best = l
			}
		}
		lanes[best] = append(lanes[best], i)
		loads[best] += costs[i]
	}
	out := lanes[:0]
	for _, lane := range lanes {
		if len(lane) > 0 {
			out = append(out, lane)
		}
	}
	return out
}

// planFanout picks the lane count for one fused scatter-gather batch: for
// every candidate fan-out it packs the shards by LPT and models the makespan
// (slowest lane plus per-lane dispatch overhead), keeping the cheapest.
// Realistic shards dwarf the dispatch cost, so the plan is full fan-out —
// but a batch over mostly-trivial shards folds them into fewer lanes rather
// than paying dispatch for parallelism that cannot shorten the critical
// path.  Ties prefer fewer lanes.
func planFanout(costs []int64) [][]int {
	if len(costs) <= 1 {
		return packLanes(costs, 1)
	}
	var best [][]int
	bestSpan := int64(-1)
	for f := 1; f <= len(costs); f++ {
		lanes := packLanes(costs, f)
		var makespan int64
		for _, lane := range lanes {
			var load int64
			for _, i := range lane {
				load += costs[i]
			}
			if load > makespan {
				makespan = load
			}
		}
		makespan += int64(len(lanes)) * laneDispatchCost
		if bestSpan < 0 || makespan < bestSpan {
			best, bestSpan = lanes, makespan
		}
	}
	return best
}
