package core

import (
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Pool root slots.  Slots hold either offsets of pool regions or small
// scalar values; all are made durable by the initialization checkpoint.
const (
	rootMeta      = 0  // rule metadata array offset
	rootNumRules  = 1  // rule count
	rootRootBody  = 2  // ordered root-rule body offset
	rootTopo      = 3  // topological order array offset
	rootSeqDict   = 4  // sequence dictionary offset (0 when disabled)
	rootEdges     = 5  // head/tail edge records offset (0 when disabled)
	rootNumWords  = 6  // vocabulary size
	rootNumFiles  = 7  // file count
	rootOpLog     = 8  // operation-level log region offset (0 when disabled)
	rootResult    = 9  // result table offset of the last committed traversal
	rootInitTop   = 10 // pool watermark at the end of initialization
	rootTaskID    = 11 // task of the last committed traversal
	rootSeqLocal  = 12 // per-rule local-window table offset array (0 when disabled)
	rootDistinct  = 13 // distinct word IDs across all rule bodies
	rootBodySyms  = 14 // total rule-body symbols (a traversal-planner input)
	rootMergeWork = 15 // bottom-up list-merge entries (a traversal-planner input)
	rootIngest    = 16 // append-log region offset (0 when ingestion is disabled)
)

// Rule metadata record layout (§IV-B: "the position of subrules and words,
// the out/in degree, word list size, and the weight of the rule"), plus the
// fields the other designs need.  64 bytes per rule, arrayed contiguously so
// a traversal touching neighbouring rules shares media granules.
const (
	metaBodyOff   = 0  // u64: pruned (or raw) body offset
	metaSubCount  = 8  // u32: (subrule,freq) pairs, or raw symbol count
	metaWordCount = 12 // u32: (word,freq) pairs (0 in raw mode)
	metaInDeg     = 16 // u32: DAG in-degree (with multiplicity)
	metaOutDeg    = 20 // u32: DAG out-degree (with multiplicity)
	metaWeight    = 24 // u64: mutable weight slot for traversal
	metaBound     = 32 // u64: Algorithm 2 upper bound
	metaExpLen    = 40 // u64: expansion length in tokens
	metaSeqOff    = 48 // u64: per-rule sequence table offset (0 none)
	metaScratch   = 56 // u64: traversal scratch (remaining parents / table)

	metaSize = 64
)

// ruleMeta is a cursor over one rule's metadata record.
type ruleMeta struct {
	acc nvm.Accessor
}

func (e *Engine) meta(r uint32) ruleMeta {
	return ruleMeta{acc: e.metaAcc.Slice(int64(r)*metaSize, metaSize)}
}

func (m ruleMeta) bodyOff() int64    { return int64(m.acc.Uint64(metaBodyOff)) }
func (m ruleMeta) subCount() uint32  { return m.acc.Uint32(metaSubCount) }
func (m ruleMeta) wordCount() uint32 { return m.acc.Uint32(metaWordCount) }
func (m ruleMeta) inDeg() uint32     { return m.acc.Uint32(metaInDeg) }
func (m ruleMeta) outDeg() uint32    { return m.acc.Uint32(metaOutDeg) }
func (m ruleMeta) weight() uint64    { return m.acc.Uint64(metaWeight) }
func (m ruleMeta) bound() int64      { return int64(m.acc.Uint64(metaBound)) }
func (m ruleMeta) expLen() int64     { return int64(m.acc.Uint64(metaExpLen)) }
func (m ruleMeta) seqOff() int64     { return int64(m.acc.Uint64(metaSeqOff)) }
func (m ruleMeta) scratch() uint64   { return m.acc.Uint64(metaScratch) }

func (m ruleMeta) setBodyOff(v int64)    { m.acc.PutUint64(metaBodyOff, uint64(v)) }
func (m ruleMeta) setSubCount(v uint32)  { m.acc.PutUint32(metaSubCount, v) }
func (m ruleMeta) setWordCount(v uint32) { m.acc.PutUint32(metaWordCount, v) }
func (m ruleMeta) setInDeg(v uint32)     { m.acc.PutUint32(metaInDeg, v) }
func (m ruleMeta) setOutDeg(v uint32)    { m.acc.PutUint32(metaOutDeg, v) }
func (m ruleMeta) setWeight(v uint64)    { m.acc.PutUint64(metaWeight, v) }
func (m ruleMeta) setBound(v int64)      { m.acc.PutUint64(metaBound, uint64(v)) }
func (m ruleMeta) setExpLen(v int64)     { m.acc.PutUint64(metaExpLen, uint64(v)) }
func (m ruleMeta) setSeqOff(v int64)     { m.acc.PutUint64(metaSeqOff, uint64(v)) }
func (m ruleMeta) setScratch(v uint64)   { m.acc.PutUint64(metaScratch, v) }

// Edge record layout for the head/tail structures (§IV-D).  With SeqLen=3
// the edge holds at most 4 tokens (head 2 + tail 2, or a short expansion of
// up to 4), so records are fixed 32 bytes.
const (
	edgeLen    = 0  // u64: expansion length
	edgeFlags  = 8  // u8: bit 0 = split (head+tail around a gap)
	edgeCount  = 9  // u8: number of edge tokens
	edgeTokens = 12 // 4 x u32
	edgeSize   = 32
)

// pair is one (id, frequency) tuple of a pruned body.
type pair struct {
	id   uint32
	freq uint32
}

// freqFollows marks a compact-encoded pair whose frequency is stored in the
// next word; frequency-1 pairs omit it.  Bit 31 is never set in a rule index
// or word ID (cfg caps both at 2^30).
const freqFollows = 1 << 31
