package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"github.com/text-analytics/ntadoc/internal/pmem"
)

// FuzzOpLogRecovery mutates bytes inside the durable operation-log region and
// checks the recovery contract under arbitrary corruption: pending() must
// never admit a record whose epoch or CRC does not validate, and Reopen must
// never panic nor replay past the first invalid record — it either recovers
// or returns ErrNeedsReload.
//
// The input is a sequence of 3-byte patches (offset uint16 LE modulo the log
// capacity, xor byte) applied to the log region of a crashed mid-traversal
// image that holds committed, replayable records.
func FuzzOpLogRecovery(f *testing.F) {
	_, d, g := corpus(f, 60, 2, 200, 25)
	opts := Options{Persistence: OpLevel, OpLogCap: 4096}
	e := newEngine(f, g, d, opts)

	// Run a traversal far enough that the log holds committed records, then
	// crash: the durable image is the fuzz baseline.
	if _, err := e.beginTraversal(); err != nil {
		f.Fatalf("beginTraversal: %v", err)
	}
	counter, off, err := e.newCounter(e.globalBound(), int64(e.numWords))
	if err != nil {
		f.Fatalf("newCounter: %v", err)
	}
	if err := e.topDownGlobal(counter, off); err != nil {
		f.Fatalf("topDownGlobal: %v", err)
	}
	if err := e.dev.Crash(); err != nil {
		f.Fatalf("Crash: %v", err)
	}
	base := e.dev

	// Locate the log region and confirm the baseline actually replays.
	probe, err := base.CloneDurable()
	if err != nil {
		f.Fatalf("CloneDurable: %v", err)
	}
	p0, err := pmem.Open(probe)
	if err != nil {
		f.Fatalf("Open baseline: %v", err)
	}
	logOff, err := p0.Root(rootOpLog)
	if err != nil || logOff == 0 {
		f.Fatalf("op-log root = %d, %v", logOff, err)
	}
	if _, info, err := Reopen(probe, d, opts); err != nil || info.Replayed == 0 {
		f.Fatalf("baseline Reopen replayed %v records, err %v", info, err)
	}
	if err := probe.Discard(); err != nil {
		f.Fatalf("Discard: %v", err)
	}

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0xff})                // log epoch header byte
	f.Add([]byte{4, 0, 0xff})                // pool-epoch header byte
	f.Add([]byte{36, 0, 0xff})               // record 0 CRC byte (header 8 + crc field 28)
	f.Add([]byte{24, 0, 0x01})               // record 0 delta low byte
	f.Add([]byte{72, 0, 0x80, 104, 0, 0x01}) // records 2 and 3
	f.Add([]byte{40, 0, 0x02, 4, 0, 0x10, 255, 255, 0xaa})

	f.Fuzz(func(t *testing.T, patch []byte) {
		dev, err := base.CloneDurable()
		if err != nil {
			t.Fatalf("CloneDurable: %v", err)
		}
		defer func() {
			if err := dev.Discard(); err != nil {
				t.Errorf("Discard: %v", err)
			}
		}()
		for i := 0; i+3 <= len(patch); i += 3 {
			at := logOff + int64(binary.LittleEndian.Uint16(patch[i:]))%opts.OpLogCap
			var b [1]byte
			if _, err := dev.ReadAt(b[:], at); err != nil {
				t.Fatalf("ReadAt(%d): %v", at, err)
			}
			b[0] ^= patch[i+2]
			if _, err := dev.WriteAt(b[:], at); err != nil {
				t.Fatalf("WriteAt(%d): %v", at, err)
			}
		}

		// Independent admission check: every record pending() admits must
		// individually validate (current epochs, matching CRC).
		pool, err := pmem.Open(dev)
		if err != nil {
			t.Fatalf("Open after log-only mutation: %v", err) // header untouched
		}
		logAcc := pool.AccessorAt(logOff, opts.OpLogCap)
		n := newOpLog(logAcc).pending(pool.Epoch())
		epoch := logAcc.Uint32(0)
		if n > 0 && logAcc.Uint32(4) != pool.Epoch() {
			t.Fatalf("pending admitted %d records under stale pool epoch", n)
		}
		for i := int64(0); i < n; i++ {
			rec := int64(opLogHeader) + i*opRecSize
			tableOff := int64(logAcc.Uint64(rec))
			key := logAcc.Uint64(rec + 8)
			delta := logAcc.Uint64(rec + 16)
			recEpoch := logAcc.Uint32(rec + 24)
			if recEpoch != epoch {
				t.Fatalf("pending admitted record %d with stale epoch %d (log epoch %d)", i, recEpoch, epoch)
			}
			if got := logAcc.Uint32(rec + 28); got != recCRC(tableOff, key, delta, recEpoch) {
				t.Fatalf("pending admitted record %d with invalid CRC %#x", i, got)
			}
		}

		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Reopen panicked on corrupt op log: %v", r)
			}
		}()
		re, info, err := Reopen(dev, d, opts)
		if err != nil {
			if !errors.Is(err, ErrNeedsReload) {
				t.Fatalf("Reopen: %v (want nil or ErrNeedsReload)", err)
			}
			return
		}
		if info.Replayed > n {
			t.Fatalf("replayed %d records, only %d validate", info.Replayed, n)
		}
		if _, err := re.ReplayedCounts(); err != nil {
			t.Fatalf("ReplayedCounts after recovery: %v", err)
		}
	})
}
