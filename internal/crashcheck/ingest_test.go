package crashcheck

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/core"
)

// TestIngestCrashPoints is the ingestion crash-consistency gate: a seeded
// sample of the append-stream persistence schedule under both §IV-E
// strategies.  Every recovery must land on a batch boundary, keep every
// acknowledged append, serve the exact prefix reference, and stay
// appendable.  make ingestcheck runs the same corpus exhaustively.
func TestIngestCrashPoints(t *testing.T) {
	points := 14
	if testing.Short() {
		points = 6
	}
	for _, p := range []core.Persistence{core.PhaseLevel, core.OpLevel} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := RunIngest(Config{
				Persistence: p,
				Points:      points,
				Seed:        42,
			})
			if err != nil {
				t.Fatalf("RunIngest: %v", err)
			}
			if rep.TotalEvents == 0 {
				t.Fatal("golden run recorded no persistence events")
			}
			if len(rep.Points) == 0 {
				t.Fatal("no crash points explored")
			}
			for _, pt := range rep.Points {
				for _, o := range pt.Outcomes {
					for _, v := range o.Violations {
						t.Errorf("event %d subset %s: %s", pt.Event, o.Subset, v)
					}
				}
			}
		})
	}
}

// TestIngestSeqCountCrashPoints spot-checks the sequence path: appends
// extend the sequence dictionary and head/tail structures, and recovery must
// replay them to the exact prefix.
func TestIngestSeqCountCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence ingest exploration skipped in -short")
	}
	rep, err := RunIngest(Config{
		Task:        "seqcount",
		Persistence: core.OpLevel,
		Points:      6,
		Subsets:     2,
		Seed:        11,
	})
	if err != nil {
		t.Fatalf("RunIngest: %v", err)
	}
	for _, pt := range rep.Points {
		for _, o := range pt.Outcomes {
			for _, v := range o.Violations {
				t.Errorf("event %d subset %s: %s", pt.Event, o.Subset, v)
			}
		}
	}
}
