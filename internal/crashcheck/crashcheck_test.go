package crashcheck

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/core"
)

// TestSampledCrashPoints is the crash-consistency gate that rides in the
// normal test run: a seeded ~20-point sample (8 under -short) of the
// WordCount persistence schedule, under both §IV-E strategies, with the two
// extreme subsets plus three seeded torn subsets per point.  make crashcheck
// runs the same corpus exhaustively.
func TestSampledCrashPoints(t *testing.T) {
	points := 20
	if testing.Short() {
		points = 8
	}
	for _, p := range []core.Persistence{core.PhaseLevel, core.OpLevel} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := Run(Config{
				Persistence: p,
				Points:      points,
				Seed:        42,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.TotalEvents == 0 {
				t.Fatal("golden run recorded no persistence events")
			}
			if len(rep.Points) == 0 {
				t.Fatal("no crash points explored")
			}
			for _, pt := range rep.Points {
				for _, o := range pt.Outcomes {
					for _, v := range o.Violations {
						t.Errorf("event %d subset %s: %s", pt.Event, o.Subset, v)
					}
				}
			}
		})
	}
}

// TestSeqCountCrashPoints spot-checks the sequence-analytics path, whose
// recovery reattaches the head/tail structures and sequence dictionary.
func TestSeqCountCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence exploration skipped in -short")
	}
	rep, err := Run(Config{
		Task:        "seqcount",
		Persistence: core.OpLevel,
		Points:      8,
		Subsets:     2,
		Seed:        11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, pt := range rep.Points {
		for _, o := range pt.Outcomes {
			for _, v := range o.Violations {
				t.Errorf("event %d subset %s: %s", pt.Event, o.Subset, v)
			}
		}
	}
}

// TestShardedCrashPoints explores the sharded engine: for each point one
// shard's device fails mid-stream while the others drain, and recovery must
// hold per shard — with the merged per-shard results matching the global
// reference bit for bit.
func TestShardedCrashPoints(t *testing.T) {
	points := 6
	if testing.Short() {
		points = 3
	}
	for _, p := range []core.Persistence{core.PhaseLevel, core.OpLevel} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := RunSharded(Config{
				Persistence: p,
				Points:      points,
				Subsets:     2,
				Seed:        17,
			}, 2)
			if err != nil {
				t.Fatalf("RunSharded: %v", err)
			}
			if rep.TotalEvents == 0 {
				t.Fatal("golden sharded run recorded no persistence events")
			}
			if len(rep.Points) == 0 {
				t.Fatal("no crash points explored")
			}
			shardsSeen := map[int]bool{}
			for _, pt := range rep.Points {
				shardsSeen[pt.Shard] = true
				for _, o := range pt.Outcomes {
					for _, v := range o.Violations {
						t.Errorf("shard %d event %d subset %s: %s", pt.Shard, pt.Event, o.Subset, v)
					}
				}
			}
			if len(shardsSeen) != 2 {
				t.Errorf("explored shards %v, want both of 2", shardsSeen)
			}
		})
	}
}

// TestShardedSeqCountCrashPoints spot-checks sequence analytics across a
// sharded crash: per-shard results are Seq-keyed, so the merge must not need
// the (dead) shard-local sequence dictionaries.
func TestShardedSeqCountCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence exploration skipped in -short")
	}
	rep, err := RunSharded(Config{
		Task:        "seqcount",
		Persistence: core.OpLevel,
		Points:      4,
		Subsets:     2,
		Seed:        29,
	}, 3)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	for _, pt := range rep.Points {
		for _, o := range pt.Outcomes {
			for _, v := range o.Violations {
				t.Errorf("shard %d event %d subset %s: %s", pt.Shard, pt.Event, o.Subset, v)
			}
		}
	}
}

// TestBrokenRecoveryIsCaught proves the harness has teeth: with the
// pool-epoch guard in opLog.pending disabled, records superseded by the
// final checkpoint are double-replayed onto the committed table, and the
// harness must flag it.  The exploration always includes the final crash
// point (the completed run), which is exactly where the guard matters.
func TestBrokenRecoveryIsCaught(t *testing.T) {
	core.DebugSkipLogEpochCheck = true
	defer func() { core.DebugSkipLogEpochCheck = false }()
	rep, err := Run(Config{
		Persistence: core.OpLevel,
		Points:      3,
		Subsets:     1,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Violations == 0 {
		t.Fatal("harness missed the double-replay bug injected via DebugSkipLogEpochCheck")
	}
}
