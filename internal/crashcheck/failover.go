package crashcheck

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// RunFailover explores the replication/failover matrix of a k-way sharded
// engine with one follower per shard.  For every sampled (shard, event)
// point it checks three scenarios against the replicated golden run:
//
//   - primary-dies: the shard's primary is armed to die at a workload-phase
//     persistence event under synchronous shipping.  The scatter-gather
//     path must mask the failure — promote the follower, recover it through
//     the ordinary RecoveryInfo machinery, re-dispatch the shard's ops —
//     and both the interrupted batch and a subsequent batch must equal the
//     global reference bit for bit.
//   - both-lag: the same dying primary under lag-bounded async shipping.
//     The queued commit batches survive in coordinator memory, so failover
//     first catches the follower up, then recovers it; results must again
//     be bit-identical.
//   - follower-torn: the follower itself is armed (its event space covers
//     the bootstrap snapshot install and every shipped commit).  A torn
//     follower must never disturb the primary workload, and its frozen
//     image — under every seeded crash subset — must still satisfy the
//     per-shard recovery contract, merging back to the global reference
//     alongside the healthy shards.
//
// A final unarmed async run checks the lag bound itself: each follower's
// durable clone, trailing its primary by up to the lag bound with the queue
// discarded (a full process crash), must recover under the same contract.
func RunFailover(kcfg Config, k int) (*Report, error) {
	kcfg = kcfg.withDefaults()
	if k < 2 {
		return nil, fmt.Errorf("crashcheck: failover exploration needs k >= 2, got %d", k)
	}
	if kcfg.Files < k {
		kcfg.Files = 2 * k
	}
	spec := datagen.Spec{
		Name: "crashcheck-failover", Seed: kcfg.CorpusSeed,
		Files: kcfg.Files, TokensPer: kcfg.TokensPer, Vocab: kcfg.Vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	sb, err := sequitur.InferShardsShared(files, uint32(d.Len()), k)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: infer shard grammars: %w", err)
	}
	gs := sb.Shards
	if len(gs) != k {
		return nil, fmt.Errorf("crashcheck: got %d shards for k=%d", len(gs), k)
	}
	opts := core.Options{
		Persistence: kcfg.Persistence,
		Sequences:   kcfg.Task == "seqcount",
	}
	sizes := make([]int64, k)
	for i, g := range gs {
		if sizes[i], err = core.PoolEstimate(g, opts); err != nil {
			return nil, fmt.Errorf("crashcheck: size shard %d pool: %w", i, err)
		}
	}

	// newReplicated assembles fresh primaries plus one follower per shard.
	newReplicated := func(mode core.ShipMode, lag int) (devs []*nvm.SimDevice, fdevs [][]*nvm.SimDevice, o core.Options) {
		devs = make([]*nvm.SimDevice, k)
		fdevs = make([][]*nvm.SimDevice, k)
		for i := range devs {
			devs[i] = nvm.New(nvm.KindNVM, sizes[i])
			fdevs[i] = []*nvm.SimDevice{nvm.New(nvm.KindNVM, sizes[i])}
		}
		o = opts
		o.ShardDevices = devs
		o.Replication = core.Replication{FollowerDevices: fdevs, Mode: mode, LagBound: lag}
		return devs, fdevs, o
	}

	// Golden replicated run: per-shard references, global reference, the
	// per-shard build event counts (failure points are sampled from the
	// workload phase, after construction and bootstrap), and the primary and
	// follower event totals that bound each event space.
	devs, fdevs, o := newReplicated(core.ShipSync, 0)
	se, err := core.NewSharded(gs, d, o)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: golden replicated build: %w", err)
	}
	builds := make([]int64, k)
	for i := range devs {
		builds[i] = devs[i].PersistEvents()
	}
	result, err := runShardedOn(se, kcfg.Task)
	if err != nil {
		se.Close()
		return nil, fmt.Errorf("crashcheck: golden replicated %s: %w", kcfg.Task, err)
	}
	global := refResult(kcfg.Task, files)
	if !reflect.DeepEqual(result, global) {
		se.Close()
		return nil, fmt.Errorf("crashcheck: golden replicated %s result does not match reference", kcfg.Task)
	}
	bases := append([]uint32(nil), se.DocBases()...)
	refs := make([]*reference, k)
	totals := make([]int64, k)
	ftotals := make([]int64, k)
	base := uint32(0)
	for i := 0; i < k; i++ {
		id, task, ok := se.Shard(i).CommittedCounts()
		if !ok {
			se.Close()
			return nil, fmt.Errorf("crashcheck: golden shard %d committed no counts", i)
		}
		refs[i] = &reference{
			id:     id,
			task:   task,
			result: refResult(kcfg.Task, files[base:base+gs[i].NumFiles]),
		}
		base += gs[i].NumFiles
		totals[i] = devs[i].PersistEvents()
		ftotals[i] = fdevs[i][0].PersistEvents()
		// The sync ship invariant: the follower's durable image is the
		// primary's, byte for byte, at every commit boundary — including the
		// last one.
		pcrc, cerr := devs[i].DurableCRC()
		if cerr != nil {
			se.Close()
			return nil, fmt.Errorf("crashcheck: primary %d durable CRC: %w", i, cerr)
		}
		fcrc, cerr := fdevs[i][0].DurableCRC()
		if cerr != nil {
			se.Close()
			return nil, fmt.Errorf("crashcheck: follower %d durable CRC: %w", i, cerr)
		}
		if pcrc != fcrc {
			se.Close()
			return nil, fmt.Errorf("crashcheck: shard %d sync follower image diverged from primary", i)
		}
	}
	se.Close()

	var grand int64
	for _, t := range totals {
		grand += t
	}
	rep := &Report{TotalEvents: grand}

	// primaryDies arms shard s's primary at event ev and demands the
	// workload completes through failover, bit-identical, twice.
	primaryDies := func(name string, s int, ev int64, mode core.ShipMode, lag int) Outcome {
		o := Outcome{Subset: name, State: "failover"}
		if ev >= totals[s] {
			o.State = "healthy"
		}
		devs, _, oo := newReplicated(mode, lag)
		devs[s].FailFromPersistEvent(ev)
		se, nerr := core.NewSharded(gs, d, oo)
		if nerr != nil {
			o.State = "error"
			o.Violations = append(o.Violations, fmt.Sprintf(
				"build failed despite workload-phase event %d: %v", ev, nerr))
			return o
		}
		defer se.Close()
		res, werr := runShardedOn(se, kcfg.Task)
		if werr != nil {
			o.State = "error"
			o.Violations = append(o.Violations, fmt.Sprintf(
				"failover did not mask shard %d dying at event %d: %v", s, ev, werr))
			return o
		}
		if !reflect.DeepEqual(res, global) {
			o.Violations = append(o.Violations, "failover result differs from global reference")
		}
		if ev < totals[s] && se.FailoverCount() == 0 {
			o.Violations = append(o.Violations, fmt.Sprintf(
				"shard %d died at event %d but no failover was performed", s, ev))
		}
		if ev >= totals[s] && se.FailoverCount() != 0 {
			o.Violations = append(o.Violations, "failover performed on a healthy run")
		}
		res2, werr2 := runShardedOn(se, kcfg.Task)
		if werr2 != nil {
			o.Violations = append(o.Violations, "batch after failover: "+werr2.Error())
		} else if !reflect.DeepEqual(res2, global) {
			o.Violations = append(o.Violations, "batch after failover differs from global reference")
		}
		return o
	}

	// followerTorn arms shard s's follower at follower event fev: the
	// primary workload must be undisturbed, and the frozen follower image
	// must recover under every seeded subset.
	followerTorn := func(s int, fev int64) []Outcome {
		head := Outcome{Subset: fmt.Sprintf("follower-torn@%d", fev), State: "healthy"}
		devs, fdevs, oo := newReplicated(core.ShipSync, 0)
		fdevs[s][0].FailFromPersistEvent(fev)
		se, nerr := core.NewSharded(gs, d, oo)
		if nerr != nil {
			head.State = "error"
			head.Violations = append(head.Violations, fmt.Sprintf(
				"torn follower broke construction: %v", nerr))
			return []Outcome{head}
		}
		res, werr := runShardedOn(se, kcfg.Task)
		if werr != nil {
			head.State = "error"
			head.Violations = append(head.Violations,
				"follower failure leaked into the primary workload: "+werr.Error())
			se.Close()
			return []Outcome{head}
		}
		if !reflect.DeepEqual(res, global) {
			head.Violations = append(head.Violations, "workload result differs with a torn follower")
		}
		// Clone every shard's surviving image before Close discards the
		// devices: the torn follower for shard s, the healthy primaries for
		// the rest.
		clones := make([]*nvm.SimDevice, k)
		for i := range clones {
			src := devs[i]
			if i == s {
				src = fdevs[s][0]
			}
			c, cerr := src.CloneDurable()
			if cerr != nil {
				head.Violations = append(head.Violations, fmt.Sprintf("clone shard %d: %v", i, cerr))
				se.Close()
				return []Outcome{head}
			}
			clones[i] = c
		}
		se.Close()
		outs := []Outcome{head}
		for _, sub := range subsets(kcfg, fev) {
			o := Outcome{Subset: "follower-torn:" + sub.name}
			states := make([]string, k)
			results := make([]any, k)
			usable := true
			for i := range clones {
				clone, cerr := clones[i].CloneDurable()
				if cerr != nil {
					states[i] = "error"
					o.Violations = append(o.Violations, fmt.Sprintf("reclone shard %d: %v", i, cerr))
					usable = false
					continue
				}
				if cerr := sub.crash(clone); cerr != nil {
					states[i] = "error"
					o.Violations = append(o.Violations, fmt.Sprintf("shard %d crash injection: %v", i, cerr))
					usable = false
					continue
				}
				st, viols, res := checkShardRecovery(clone, d, opts, gs[i], i, k, kcfg.Task, refs[i])
				states[i] = st
				for _, v := range viols {
					o.Violations = append(o.Violations, fmt.Sprintf("shard %d: %s", i, v))
				}
				if res == nil {
					usable = false
				}
				results[i] = res
			}
			o.State = strings.Join(states, "|")
			if usable {
				merged, merr := mergeShardResults(d, len(files), kcfg.Task, results, bases)
				if merr != nil {
					o.Violations = append(o.Violations, "merge recovered shards: "+merr.Error())
				} else if !reflect.DeepEqual(merged, global) {
					o.Violations = append(o.Violations, "merged recovered results differ from global reference")
				}
			}
			outs = append(outs, o)
		}
		return outs
	}

	const asyncLag = 2
	for s := 0; s < k; s++ {
		evs := pickEvents(totals[s]-builds[s], kcfg.Points, kcfg.Seed+int64(s))
		fevs := pickEvents(ftotals[s], kcfg.Points, kcfg.Seed+int64(s)*7919)
		for j, rel := range evs {
			ev := builds[s] + rel
			pt := Point{Event: ev, Shard: s}
			pt.Outcomes = append(pt.Outcomes, primaryDies("primary-dies", s, ev, core.ShipSync, 0))
			pt.Outcomes = append(pt.Outcomes, primaryDies("both-lag", s, ev, core.ShipAsync, asyncLag))
			if j < len(fevs) {
				pt.Outcomes = append(pt.Outcomes, followerTorn(s, fevs[j])...)
			}
			rep.Violations += pt.Violations()
			rep.Points = append(rep.Points, pt)
			if kcfg.Log != nil {
				states := make([]string, len(pt.Outcomes))
				for i, o := range pt.Outcomes {
					states[i] = o.State
				}
				fmt.Fprintf(kcfg.Log, "shard %d event %4d/%d: %v violations=%d\n",
					s, ev, totals[s], states, pt.Violations())
			}
		}
	}

	// Lag-bound contract: run unarmed under async shipping, then recover
	// each follower's durable clone with the queue discarded — the full
	// process-crash view of a follower trailing by up to the lag bound.
	devs, fdevs, o = newReplicated(core.ShipAsync, asyncLag)
	se, err = core.NewSharded(gs, d, o)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: async lag run build: %w", err)
	}
	res, werr := runShardedOn(se, kcfg.Task)
	if werr != nil {
		se.Close()
		return nil, fmt.Errorf("crashcheck: async lag run %s: %w", kcfg.Task, werr)
	}
	lagClones := make([]*nvm.SimDevice, k)
	for i := range lagClones {
		if lagClones[i], err = fdevs[i][0].CloneDurable(); err != nil {
			se.Close()
			return nil, fmt.Errorf("crashcheck: clone lagged follower %d: %w", i, err)
		}
	}
	se.Close()
	for s := 0; s < k; s++ {
		pt := Point{Event: totals[s], Shard: s}
		head := Outcome{Subset: "lag-run", State: "healthy"}
		if !reflect.DeepEqual(res, global) {
			head.Violations = append(head.Violations, "async-lag workload result differs from global reference")
		}
		pt.Outcomes = append(pt.Outcomes, head)
		for _, sub := range subsets(kcfg, totals[s]) {
			o := Outcome{Subset: "lagged:" + sub.name}
			clone, cerr := lagClones[s].CloneDurable()
			if cerr != nil {
				o.State = "error"
				o.Violations = append(o.Violations, fmt.Sprintf("reclone lagged follower %d: %v", s, cerr))
				pt.Outcomes = append(pt.Outcomes, o)
				continue
			}
			if cerr := sub.crash(clone); cerr != nil {
				o.State = "error"
				o.Violations = append(o.Violations, fmt.Sprintf("crash injection: %v", cerr))
				pt.Outcomes = append(pt.Outcomes, o)
				continue
			}
			st, viols, _ := checkShardRecovery(clone, d, opts, gs[s], s, k, kcfg.Task, refs[s])
			o.State = st
			for _, v := range viols {
				o.Violations = append(o.Violations, fmt.Sprintf("shard %d: %s", s, v))
			}
			pt.Outcomes = append(pt.Outcomes, o)
		}
		rep.Violations += pt.Violations()
		rep.Points = append(rep.Points, pt)
		if kcfg.Log != nil {
			fmt.Fprintf(kcfg.Log, "shard %d lag-bound check: violations=%d\n", s, pt.Violations())
		}
	}
	return rep, nil
}
