// Online-ingestion crash exploration: the workload is a live engine taking
// durable appends (with a mid-stream compaction), and the invariant matrix
// is the append commit protocol's contract:
//
//  1. an acknowledged append survives any later crash (body, then fence,
//     then atomic header commit — the ack happens after the drain);
//  2. recovery always lands on a batch boundary: the recovered corpus is
//     base plus a prefix of the append stream, never a torn batch;
//  3. the recovered engine serves the exact reference result for that
//     prefix and keeps accepting appends.
package crashcheck

import (
	"errors"
	"fmt"
	"reflect"

	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// ingestCap is the append-log reservation for ingest explorations: ample for
// the small corpora crash exploration uses.
const ingestCap = 1 << 16

// RunIngest executes the ingestion crash exploration: a golden run counts
// the primary device's persistence events while the engine takes one append
// batch per document (compacting mid-stream); each crash point then replays
// the workload on an armed device and checks every recovery invariant.
func RunIngest(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Files < 4 {
		// The workload needs a base corpus plus an appendable tail.
		cfg.Files = 4
	}
	spec := datagen.Spec{
		Name: "crashcheck-ingest", Seed: cfg.CorpusSeed,
		Files: cfg.Files, TokensPer: cfg.TokensPer, Vocab: cfg.Vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	base := cfg.Files / 2
	nBatches := cfg.Files - base
	g, err := sequitur.Infer(files[:base], uint32(d.Len()))
	if err != nil {
		return nil, fmt.Errorf("crashcheck: infer base grammar: %w", err)
	}
	opts := core.Options{
		Persistence: cfg.Persistence,
		Sequences:   cfg.Task == "seqcount",
		IngestCap:   ingestCap,
	}
	size, err := core.PoolEstimate(g, opts)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: size pool: %w", err)
	}

	// refs[k] is the exact reference result with k append batches visible;
	// every recovery must match one of them (batch-boundary atomicity).
	refs := make([]any, nBatches+1)
	for k := 0; k <= nBatches; k++ {
		refs[k] = refResult(cfg.Task, files[:base+k])
	}

	// Golden run: everything acks and the final state serves the full corpus.
	dev := nvm.New(nvm.KindNVM, size)
	acked, err := ingestWorkload(dev, g, d, opts, files, base, cfg.Task, refs[nBatches])
	if err != nil {
		return nil, fmt.Errorf("crashcheck: golden ingest run: %w", err)
	}
	if acked != nBatches {
		return nil, fmt.Errorf("crashcheck: golden run acked %d/%d appends", acked, nBatches)
	}
	total := dev.PersistEvents()
	if err := dev.Discard(); err != nil {
		return nil, fmt.Errorf("crashcheck: discard golden device: %w", err)
	}

	rep := &Report{TotalEvents: total}
	for _, ev := range pickEvents(total, cfg.Points, cfg.Seed) {
		pt := Point{Event: ev}
		rdev := nvm.New(nvm.KindNVM, size)
		rdev.FailFromPersistEvent(ev)
		acked, _ := ingestWorkload(rdev, g, d, opts, files, base, cfg.Task, nil)
		for _, sub := range subsets(cfg, ev) {
			clone, cerr := rdev.CloneDurable()
			if cerr != nil {
				return nil, fmt.Errorf("crashcheck: clone at event %d: %w", ev, cerr)
			}
			o := Outcome{Subset: sub.name}
			if cerr := sub.crash(clone); cerr != nil {
				o.State = "error"
				o.Violations = append(o.Violations, "crash injection: "+cerr.Error())
			} else {
				o.State, o.Violations = checkIngestRecovery(clone, d, opts, cfg.Task, refs, acked, files, base)
			}
			pt.Outcomes = append(pt.Outcomes, o)
		}
		if err := rdev.Discard(); err != nil {
			return nil, fmt.Errorf("crashcheck: discard replay device: %w", err)
		}
		rep.Violations += pt.Violations()
		rep.Points = append(rep.Points, pt)
		if cfg.Log != nil {
			states := make([]string, len(pt.Outcomes))
			for i, o := range pt.Outcomes {
				states[i] = o.State
			}
			fmt.Fprintf(cfg.Log, "event %4d/%d: acked=%d %v violations=%d\n", ev, total, acked, states, pt.Violations())
		}
	}
	return rep, nil
}

// ingestWorkload builds an appendable engine on dev and drives the append
// stream: one batch per document past base, a forced compaction at the
// midpoint, then one task run.  It returns how many appends were
// acknowledged; a batch error stops the stream (the process "crashed").
// want, when non-nil, requires the final task result to match (golden runs).
func ingestWorkload(dev *nvm.SimDevice, g *cfg.Grammar, d *dict.Dictionary,
	opts core.Options, files [][]uint32, base int, task string, want any) (int, error) {
	o := opts
	o.Device = dev
	// The engine is deliberately not closed: the caller clones and discards
	// the device itself (Close would close the device under it).
	e, err := core.New(g, d, o)
	if err != nil {
		return 0, err
	}
	vocab := uint32(d.Len())
	acked := 0
	mid := base + (len(files)-base)/2
	for i := base; i < len(files); i++ {
		doc := core.AppendDoc{Name: fmt.Sprintf("live%d", i), Tokens: files[i]}
		if err := e.Append([]core.AppendDoc{doc}, vocab, nil); err != nil {
			return acked, nil // the device died mid-append: stop, like a crashed process
		}
		acked++
		if i == mid {
			// Compaction is serving-only: the durable log is untouched, so a
			// failure here must not affect what recovery sees.
			_ = e.Compact()
		}
	}
	res, err := runOn(e, task)
	if want == nil {
		return acked, nil
	}
	if err != nil {
		return acked, err
	}
	if !reflect.DeepEqual(res, want) {
		return acked, errors.New("golden ingest result does not match reference")
	}
	return acked, nil
}

// checkIngestRecovery reopens the crashed device and checks the ingestion
// contract: acked appends survive, recovery lands on a batch boundary with
// the exact prefix result, and the engine stays appendable.
func checkIngestRecovery(dev *nvm.SimDevice, d *dict.Dictionary, opts core.Options,
	task string, refs []any, acked int, files [][]uint32, base int) (state string, viols []string) {
	defer func() {
		if r := recover(); r != nil {
			state = "panic"
			viols = append(viols, fmt.Sprintf("recovery panicked: %v", r))
		}
	}()
	e, info, err := core.Reopen(dev, d, opts)
	if err != nil {
		if errors.Is(err, core.ErrNeedsReload) {
			if acked > 0 {
				// Appends only start once the pool build is complete, so a
				// reload verdict after an acked append loses durable data.
				return "reload", []string{fmt.Sprintf("%d acked appends lost to ErrNeedsReload", acked)}
			}
			return "reload", nil
		}
		return "error", []string{"unexpected recovery error: " + err.Error()}
	}
	defer e.Close()
	state = fmt.Sprintf("phase%d", info.Phase)

	st := e.IngestStats()
	b := int(st.Batches)
	switch {
	case b < acked:
		viols = append(viols, fmt.Sprintf("recovered %d batches, but %d were acknowledged", b, acked))
	case b >= len(refs):
		viols = append(viols, fmt.Sprintf("recovered %d batches, stream only had %d", b, len(refs)-1))
		return state, viols
	}

	// Batch-boundary atomicity: the recovered corpus serves exactly the
	// b-batch prefix reference — a torn batch matches no prefix.
	res, err := runOn(e, task)
	if err != nil {
		viols = append(viols, "re-run after recovery: "+err.Error())
		return state, viols
	}
	if !reflect.DeepEqual(res, refs[b]) {
		viols = append(viols, fmt.Sprintf("recovered result does not match the %d-batch prefix", b))
	}

	// The recovered engine keeps accepting appends.
	post := core.AppendDoc{Name: "post", Tokens: files[0]}
	if err := e.Append([]core.AppendDoc{post}, uint32(d.Len()), nil); err != nil {
		viols = append(viols, "post-recovery append: "+err.Error())
		return state, viols
	}
	wantPost := refResult(task, append(append([][]uint32{}, files[:base+b]...), files[0]))
	res, err = runOn(e, task)
	if err != nil {
		viols = append(viols, "post-recovery re-run: "+err.Error())
	} else if !reflect.DeepEqual(res, wantPost) {
		viols = append(viols, "post-recovery append result does not match reference")
	}
	return state, viols
}
