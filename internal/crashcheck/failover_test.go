package crashcheck

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/core"
)

// TestFailoverSampled is the replication/failover gate that rides in the
// normal test run: a seeded sample of the primary-dies / both-lag /
// follower-torn matrix over a 3-way replicated engine, under both §IV-E
// persistence strategies.  make failovercheck runs a denser matrix over more
// shard counts.
func TestFailoverSampled(t *testing.T) {
	points := 4
	if testing.Short() {
		points = 2
	}
	for _, p := range []core.Persistence{core.PhaseLevel, core.OpLevel} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := RunFailover(Config{
				Persistence: p,
				Points:      points,
				Subsets:     2,
				Seed:        42,
				Files:       6,
				TokensPer:   120,
				Vocab:       40,
				CorpusSeed:  7,
			}, 3)
			if err != nil {
				t.Fatalf("RunFailover: %v", err)
			}
			if rep.TotalEvents == 0 {
				t.Fatal("golden replicated run recorded no persistence events")
			}
			if len(rep.Points) == 0 {
				t.Fatal("no failover points explored")
			}
			shardsSeen := map[int]bool{}
			for _, pt := range rep.Points {
				shardsSeen[pt.Shard] = true
				for _, o := range pt.Outcomes {
					for _, v := range o.Violations {
						t.Errorf("shard %d event %d scenario %s: %s", pt.Shard, pt.Event, o.Subset, v)
					}
				}
			}
			if len(shardsSeen) != 3 {
				t.Errorf("explored shards %v, want all of 3", shardsSeen)
			}
		})
	}
}

// TestFailoverSeqCount spot-checks the sequence-analytics path through
// failover: promoting a follower must reattach the head/tail structures and
// sequence dictionary exactly as plain recovery does.
func TestFailoverSeqCount(t *testing.T) {
	if testing.Short() {
		t.Skip("sequence failover exploration skipped in -short")
	}
	rep, err := RunFailover(Config{
		Task:        "seqcount",
		Persistence: core.OpLevel,
		Points:      3,
		Subsets:     2,
		Seed:        11,
		Files:       6,
		TokensPer:   120,
		Vocab:       40,
		CorpusSeed:  9,
	}, 2)
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}
	for _, pt := range rep.Points {
		for _, o := range pt.Outcomes {
			for _, v := range o.Violations {
				t.Errorf("shard %d event %d scenario %s: %s", pt.Shard, pt.Event, o.Subset, v)
			}
		}
	}
}
