package crashcheck

import (
	"errors"
	"fmt"
	"maps"
	"reflect"
	"strings"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// RunSharded explores crash points of a k-way sharded engine.  Each shard is
// an independent persistence domain with its own device and op log, so the
// interesting crash states are asymmetric: one shard dies mid-stream while
// the others run to completion.  For every (shard, event) point the workload
// runs with only that shard's device armed; each torn-write subset is then
// applied to every shard's durable clone, and the recovery contract is
// checked per shard:
//
//  1. per-shard recovery never panics and returns reload or a usable engine;
//  2. replayed op-log counts never exceed the shard-local reference;
//  3. a shard whose durable phase says its traversal committed exposes
//     exactly the shard-local committed counts;
//  4. after recovering every shard — rebuilding reload shards from their
//     compressed grammars — the merged per-shard results equal the global
//     reference, bit for bit.
func RunSharded(kcfg Config, k int) (*Report, error) {
	kcfg = kcfg.withDefaults()
	if k < 2 {
		return nil, fmt.Errorf("crashcheck: sharded exploration needs k >= 2, got %d", k)
	}
	if kcfg.Files < k {
		kcfg.Files = 2 * k
	}
	spec := datagen.Spec{
		Name: "crashcheck-sharded", Seed: kcfg.CorpusSeed,
		Files: kcfg.Files, TokensPer: kcfg.TokensPer, Vocab: kcfg.Vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	// Build through the shared-dictionary path: shard grammars are interned,
	// unified against the shared rule table, and re-materialized — the same
	// pipeline the archive format persists — so the crash exploration covers
	// the dedup path, not just independent per-shard inference.
	sb, err := sequitur.InferShardsShared(files, uint32(d.Len()), k)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: infer shard grammars: %w", err)
	}
	gs := sb.Shards
	if len(gs) != k {
		return nil, fmt.Errorf("crashcheck: got %d shards for k=%d", len(gs), k)
	}
	opts := core.Options{
		Persistence: kcfg.Persistence,
		Sequences:   kcfg.Task == "seqcount",
	}
	sizes := make([]int64, k)
	for i, g := range gs {
		if sizes[i], err = core.PoolEstimate(g, opts); err != nil {
			return nil, fmt.Errorf("crashcheck: size shard %d pool: %w", i, err)
		}
	}

	refs, global, bases, totals, err := goldenShardedRun(kcfg, gs, d, files, opts, sizes)
	if err != nil {
		return nil, err
	}

	var grand int64
	for _, t := range totals {
		grand += t
	}
	rep := &Report{TotalEvents: grand}
	for s := 0; s < k; s++ {
		for _, ev := range pickEvents(totals[s], kcfg.Points, kcfg.Seed+int64(s)) {
			pt := Point{Event: ev, Shard: s}
			devs := make([]*nvm.SimDevice, k)
			for i := range devs {
				devs[i] = nvm.New(nvm.KindNVM, sizes[i])
			}
			devs[s].FailFromPersistEvent(ev)
			o := opts
			o.ShardDevices = devs
			var werr error
			if se, nerr := core.NewSharded(gs, d, o); nerr != nil {
				werr = nerr
			} else {
				_, werr = runShardedOn(se, kcfg.Task)
			}
			if werr == nil && ev < totals[s] {
				pt.Outcomes = append(pt.Outcomes, Outcome{
					Subset: "-", State: "error",
					Violations: []string{fmt.Sprintf(
						"workload succeeded despite shard %d failing from event %d", s, ev)},
				})
			}
			for _, sub := range subsets(kcfg, ev) {
				o := Outcome{Subset: sub.name}
				states := make([]string, k)
				results := make([]any, k)
				usable := true
				for i := range devs {
					clone, cerr := devs[i].CloneDurable()
					if cerr != nil {
						return nil, fmt.Errorf("crashcheck: clone shard %d at event %d: %w", i, ev, cerr)
					}
					if cerr := sub.crash(clone); cerr != nil {
						states[i] = "error"
						o.Violations = append(o.Violations, fmt.Sprintf("shard %d crash injection: %v", i, cerr))
						usable = false
						continue
					}
					st, viols, res := checkShardRecovery(clone, d, opts, gs[i], i, k, kcfg.Task, refs[i])
					states[i] = st
					for _, v := range viols {
						o.Violations = append(o.Violations, fmt.Sprintf("shard %d: %s", i, v))
					}
					if res == nil {
						usable = false
					}
					results[i] = res
				}
				o.State = strings.Join(states, "|")
				if usable {
					merged, merr := mergeShardResults(d, len(files), kcfg.Task, results, bases)
					if merr != nil {
						o.Violations = append(o.Violations, "merge recovered shards: "+merr.Error())
					} else if !reflect.DeepEqual(merged, global) {
						o.Violations = append(o.Violations, "merged recovered results differ from global reference")
					}
				}
				pt.Outcomes = append(pt.Outcomes, o)
			}
			rep.Violations += pt.Violations()
			rep.Points = append(rep.Points, pt)
			if kcfg.Log != nil {
				states := make([]string, len(pt.Outcomes))
				for i, o := range pt.Outcomes {
					states[i] = o.State
				}
				fmt.Fprintf(kcfg.Log, "shard %d event %4d/%d: %v violations=%d\n",
					s, ev, totals[s], states, pt.Violations())
			}
		}
	}
	return rep, nil
}

// goldenShardedRun completes the sharded workload on healthy devices and
// captures, per shard: the committed counts, the shard-local task result,
// and the device's total persistence-event count.
func goldenShardedRun(kcfg Config, gs []*cfg.Grammar, d *dict.Dictionary, files [][]uint32,
	opts core.Options, sizes []int64) (refs []*reference, global any, bases []uint32, totals []int64, err error) {
	k := len(gs)
	devs := make([]*nvm.SimDevice, k)
	for i := range devs {
		devs[i] = nvm.New(nvm.KindNVM, sizes[i])
	}
	o := opts
	o.ShardDevices = devs
	se, err := core.NewSharded(gs, d, o)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("crashcheck: golden sharded run: %w", err)
	}
	defer se.Close()
	result, err := runShardedOn(se, kcfg.Task)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("crashcheck: golden sharded %s: %w", kcfg.Task, err)
	}
	global = refResult(kcfg.Task, files)
	if !reflect.DeepEqual(result, global) {
		return nil, nil, nil, nil, fmt.Errorf("crashcheck: golden sharded %s result does not match reference", kcfg.Task)
	}
	bases = append([]uint32(nil), se.DocBases()...)
	refs = make([]*reference, k)
	totals = make([]int64, k)
	base := uint32(0)
	for i := 0; i < k; i++ {
		id, task, ok := se.Shard(i).CommittedCounts()
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("crashcheck: golden shard %d committed no counts", i)
		}
		refs[i] = &reference{
			id:     id,
			task:   task,
			result: refResult(kcfg.Task, files[base:base+gs[i].NumFiles]),
		}
		base += gs[i].NumFiles
		totals[i] = devs[i].PersistEvents()
	}
	return refs, global, bases, totals, nil
}

// checkShardRecovery recovers one shard's crashed device and checks the
// per-shard contract.  It returns the shard's recovered task result — from
// the reopened engine, or from a rebuild when recovery demands a reload —
// or nil when the shard is unrecoverable (always with a violation).
func checkShardRecovery(dev *nvm.SimDevice, d *dict.Dictionary, opts core.Options,
	g *cfg.Grammar, shard, count int, task string, ref *reference) (state string, viols []string, result any) {
	defer func() {
		if r := recover(); r != nil {
			state = "panic"
			viols = append(viols, fmt.Sprintf("recovery panicked: %v", r))
			result = nil
		}
	}()
	e, info, err := core.Reopen(dev, d, opts)
	if err != nil {
		if !errors.Is(err, core.ErrNeedsReload) {
			return "error", []string{"unexpected recovery error: " + err.Error()}, nil
		}
		// The shard's initialization never became durable: rebuild it from
		// its compressed grammar, as the recovery contract prescribes.
		ro := opts
		ro.ShardIndex = uint32(shard)
		ro.ShardCount = uint32(count)
		re, nerr := core.New(g, d, ro)
		if nerr != nil {
			return "reload", []string{"rebuild after reload: " + nerr.Error()}, nil
		}
		defer re.Close()
		res, rerr := runOn(re, task)
		if rerr != nil {
			return "reload", []string{"re-run after rebuild: " + rerr.Error()}, nil
		}
		if !reflect.DeepEqual(res, ref.result) {
			return "reload", []string{"rebuilt shard result differs from shard reference"}, res
		}
		return "reload", nil, res
	}
	defer e.Close()
	state = fmt.Sprintf("phase%d", info.Phase)

	rc, err := e.ReplayedCounts()
	if err != nil {
		viols = append(viols, "ReplayedCounts: "+err.Error())
	} else {
		for key, v := range rc {
			want, okK := ref.id[key]
			if !okK {
				viols = append(viols, fmt.Sprintf("replayed key %d absent from shard reference", key))
			} else if v > want {
				viols = append(viols, fmt.Sprintf("replayed count %d=%d exceeds shard reference %d", key, v, want))
			}
		}
	}

	if info.Phase >= 2 {
		cc, gotTask, ok := e.CommittedCounts()
		switch {
		case !ok:
			viols = append(viols, "phase 2 but CommittedCounts not ok")
		case gotTask != ref.task:
			viols = append(viols, fmt.Sprintf("committed task %v, want %v", gotTask, ref.task))
		case !maps.Equal(cc, ref.id):
			viols = append(viols, "committed counts differ from shard reference")
		}
	}

	res, err := runOn(e, task)
	if err != nil {
		viols = append(viols, "re-run after recovery: "+err.Error())
		return state, viols, nil
	}
	if !reflect.DeepEqual(res, ref.result) {
		viols = append(viols, "re-run result differs from shard reference")
	}
	return state, viols, res
}

// runShardedOn runs the workload task through the sharded coordinator.
func runShardedOn(se *core.ShardedEngine, task string) (any, error) {
	if task == "seqcount" {
		return se.SequenceCount()
	}
	return se.WordCount()
}

// refResult computes the analytic reference for the task over files.
func refResult(task string, files [][]uint32) any {
	if task == "seqcount" {
		return analytics.RefSequenceCount(files)
	}
	return analytics.RefWordCount(files)
}

// mergeEnv is the minimal analytics.Env the shard-result merge needs: no
// sequence resolution (shard results are already Seq-keyed) and no cost
// accounting (the harness checks correctness, not time).
type mergeEnv struct {
	d *dict.Dictionary
	n int
}

func (e mergeEnv) Dict() *dict.Dictionary { return e.d }
func (e mergeEnv) NumFiles() int          { return e.n }
func (e mergeEnv) SeqOf(uint64) analytics.Seq {
	panic("crashcheck: merge env resolves no sequence keys")
}
func (e mergeEnv) Charge(int64, int64) {}

// mergeShardResults merges the recovered per-shard task results the same
// way the sharded engine does.
func mergeShardResults(d *dict.Dictionary, numFiles int, task string, results []any, bases []uint32) (any, error) {
	var op analytics.Op = analytics.WordCountOp{}
	if task == "seqcount" {
		op = analytics.SequenceCountOp{}
	}
	return analytics.MergeShardResults(op, mergeEnv{d: d, n: numFiles}, results, bases)
}
