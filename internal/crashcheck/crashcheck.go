// Package crashcheck systematically explores crash points of the engine's
// persistence strategies (§IV-E), in the spirit of CrashMonkey: a golden run
// of a workload counts the device's persistence events (every Flush and
// Drain), then for each crash point the workload is replayed on a fresh
// device armed to fail from that event on, and the resulting durable state —
// under several torn-write subsets of the pending set (nvm.CrashAt) — is
// recovered with core.Reopen and checked against invariants:
//
//  1. recovery never panics;
//  2. it returns either core.ErrNeedsReload or a usable engine;
//  3. replayed operation-log counts never exceed the committed reference for
//     any key (no corrupt-record admission, no double replay of records a
//     completed checkpoint superseded);
//  4. when the durable phase says a traversal committed, the committed
//     counts equal the reference exactly;
//  5. the recovered engine re-runs the task to the exact reference result.
//
// Exhaustive over every event on small corpora; seeded sampling otherwise.
package crashcheck

import (
	"errors"
	"fmt"
	"io"
	"maps"
	"math/rand"
	"reflect"
	"sort"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// Config selects the workload and the exploration budget.
type Config struct {
	// Task is "wordcount" (default) or "seqcount".
	Task string
	// Persistence is the §IV-E strategy under test.
	Persistence core.Persistence
	// Points bounds how many crash points are explored; 0 means exhaustive
	// (every persistence event of the golden run, plus the completed run).
	// Sampling is seeded and always includes the first and last events.
	Points int
	// Subsets is how many seeded torn-write subsets are injected per crash
	// point, in addition to the two extremes (nothing pending persists /
	// everything pending persists).  Default 3.
	Subsets int
	// Seed drives both point sampling and torn-subset selection.
	Seed int64
	// Corpus shape; defaults are small enough for exhaustive exploration.
	Files, TokensPer, Vocab int
	// CorpusSeed is the datagen seed (default 7).
	CorpusSeed int64
	// Log, when non-nil, receives a progress line per crash point.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Task == "" {
		c.Task = "wordcount"
	}
	if c.Subsets == 0 {
		c.Subsets = 3
	}
	if c.Files == 0 {
		c.Files = 2
	}
	if c.TokensPer == 0 {
		c.TokensPer = 120
	}
	if c.Vocab == 0 {
		c.Vocab = 40
	}
	if c.CorpusSeed == 0 {
		c.CorpusSeed = 7
	}
	return c
}

// Outcome is one recovery attempt: a crash point combined with one torn
// subset of the pending set.
type Outcome struct {
	// Subset names the injected pending-set subset: "none" (crash before
	// anything unfenced reaches media), "all" (everything pending reaches
	// media), or "seed=N".
	Subset string
	// State is what recovery returned: "reload" (ErrNeedsReload), "phase1",
	// "phase2", or "error"/"panic" (always accompanied by violations).
	State string
	// Violations lists every invariant this outcome broke; empty means the
	// outcome is consistent.
	Violations []string
}

// Point is the verdict for one crash point.
type Point struct {
	// Event is the persistence-event index the device died at: event Event
	// and all later flushes and drains failed.
	Event int64
	// Shard is the shard whose device was armed (RunSharded explorations
	// only; zero for unsharded runs).  The other shards' devices stay
	// healthy, so the point exercises recovery with some shards fully
	// drained and one interrupted mid-stream.
	Shard    int
	Outcomes []Outcome
}

// Violations counts the invariant violations across the point's outcomes.
func (p Point) Violations() int {
	n := 0
	for _, o := range p.Outcomes {
		n += len(o.Violations)
	}
	return n
}

// Report is the result of a Run.
type Report struct {
	// TotalEvents is the golden run's persistence-event count; crash points
	// range over [0, TotalEvents] (the last one is the completed run).
	TotalEvents int64
	Points      []Point
	// Violations is the total invariant-violation count; zero means every
	// explored crash point recovered consistently.
	Violations int
}

// reference is the golden run's committed state, against which every
// recovery is judged.
type reference struct {
	id     map[uint32]uint64 // committed result table (word or sequence IDs)
	task   analytics.Task
	result any // exact task result (map[uint32]uint64 or map[Seq]uint64)
}

// Run executes the exploration and returns the per-point verdicts.  It is an
// error when the golden run itself fails or does not match the analytic
// reference; invariant violations during exploration are reported, not
// returned as errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	spec := datagen.Spec{
		Name: "crashcheck", Seed: cfg.CorpusSeed,
		Files: cfg.Files, TokensPer: cfg.TokensPer, Vocab: cfg.Vocab,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6,
	}
	files, d := spec.GenerateWithDict()
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		return nil, fmt.Errorf("crashcheck: infer grammar: %w", err)
	}
	opts := core.Options{
		Persistence: cfg.Persistence,
		Sequences:   cfg.Task == "seqcount",
	}
	size, err := core.PoolEstimate(g, opts)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: size pool: %w", err)
	}

	ref, total, err := goldenRun(cfg, g, d, files, opts, size)
	if err != nil {
		return nil, err
	}

	rep := &Report{TotalEvents: total}
	for _, ev := range pickEvents(total, cfg.Points, cfg.Seed) {
		pt := Point{Event: ev}
		dev := nvm.New(nvm.KindNVM, size)
		dev.FailFromPersistEvent(ev)
		ro := opts
		ro.Device = dev
		_, werr := runTask(g, d, ro, cfg.Task)
		if werr == nil && ev < total {
			// Every flush and drain from event ev on failed; a workload that
			// still claims success swallowed a persistence error somewhere.
			pt.Outcomes = append(pt.Outcomes, Outcome{
				Subset: "-", State: "error",
				Violations: []string{fmt.Sprintf("workload succeeded despite failure from event %d", ev)},
			})
		}
		for _, sub := range subsets(cfg, ev) {
			clone, cerr := dev.CloneDurable()
			if cerr != nil {
				return nil, fmt.Errorf("crashcheck: clone at event %d: %w", ev, cerr)
			}
			o := Outcome{Subset: sub.name}
			if cerr := sub.crash(clone); cerr != nil {
				o.State = "error"
				o.Violations = append(o.Violations, "crash injection: "+cerr.Error())
			} else {
				o.State, o.Violations = checkRecovery(clone, d, opts, cfg.Task, ref)
			}
			pt.Outcomes = append(pt.Outcomes, o)
		}
		if err := dev.Discard(); err != nil {
			return nil, fmt.Errorf("crashcheck: discard replay device: %w", err)
		}
		rep.Violations += pt.Violations()
		rep.Points = append(rep.Points, pt)
		if cfg.Log != nil {
			states := make([]string, len(pt.Outcomes))
			for i, o := range pt.Outcomes {
				states[i] = o.State
			}
			fmt.Fprintf(cfg.Log, "event %4d/%d: %v violations=%d\n", ev, total, states, pt.Violations())
		}
	}
	return rep, nil
}

// goldenRun completes the workload once on an unarmed device, validates it
// against the analytic reference, and captures the committed counts plus the
// total persistence-event count.
func goldenRun(cfg Config, g *cfg.Grammar, d *dict.Dictionary, files [][]uint32,
	opts core.Options, size int64) (*reference, int64, error) {
	dev := nvm.New(nvm.KindNVM, size)
	o := opts
	o.Device = dev
	e, err := core.New(g, d, o)
	if err != nil {
		return nil, 0, fmt.Errorf("crashcheck: golden run: %w", err)
	}
	defer e.Close()
	result, err := runOn(e, cfg.Task)
	if err != nil {
		return nil, 0, fmt.Errorf("crashcheck: golden %s: %w", cfg.Task, err)
	}
	var want any
	if cfg.Task == "seqcount" {
		want = analytics.RefSequenceCount(files)
	} else {
		want = analytics.RefWordCount(files)
	}
	if !reflect.DeepEqual(result, want) {
		return nil, 0, fmt.Errorf("crashcheck: golden %s result does not match reference", cfg.Task)
	}
	id, task, ok := e.CommittedCounts()
	if !ok {
		return nil, 0, errors.New("crashcheck: golden run committed no counts")
	}
	return &reference{id: id, task: task, result: result}, dev.PersistEvents(), nil
}

// runTask builds an engine on opts.Device and runs the task once.
func runTask(g *cfg.Grammar, d *dict.Dictionary, opts core.Options, task string) (any, error) {
	e, err := core.New(g, d, opts)
	if err != nil {
		return nil, err
	}
	return runOn(e, task)
}

func runOn(e *core.Engine, task string) (any, error) {
	if task == "seqcount" {
		return e.SequenceCount()
	}
	return e.WordCount()
}

// subset is one way the pending set reaches (or fails to reach) media.
type subset struct {
	name  string
	crash func(*nvm.SimDevice) error
}

func subsets(cfg Config, ev int64) []subset {
	out := []subset{
		{name: "none", crash: func(d *nvm.SimDevice) error { return d.Crash() }},
		{name: "all", crash: func(d *nvm.SimDevice) error {
			if err := d.Drain(); err != nil {
				return err
			}
			return d.Crash()
		}},
	}
	for j := 0; j < cfg.Subsets; j++ {
		seed := cfg.Seed + ev*1009 + int64(j)*9176351
		out = append(out, subset{
			name:  fmt.Sprintf("seed=%d", seed),
			crash: func(d *nvm.SimDevice) error { return d.CrashAt(seed) },
		})
	}
	return out
}

// checkRecovery reopens the crashed device and checks every invariant.
func checkRecovery(dev *nvm.SimDevice, d *dict.Dictionary, opts core.Options,
	task string, ref *reference) (state string, viols []string) {
	defer func() {
		if r := recover(); r != nil {
			state = "panic"
			viols = append(viols, fmt.Sprintf("recovery panicked: %v", r))
		}
	}()
	e, info, err := core.Reopen(dev, d, opts)
	if err != nil {
		if errors.Is(err, core.ErrNeedsReload) {
			return "reload", nil // acceptable: caller rebuilds from input
		}
		return "error", []string{"unexpected recovery error: " + err.Error()}
	}
	defer e.Close()
	state = fmt.Sprintf("phase%d", info.Phase)

	// Replayed counts are a prefix of the committed mutation stream: no key
	// outside the reference, no count above it.  Catches corrupt-record
	// admission and double replay of superseded records.
	rc, err := e.ReplayedCounts()
	if err != nil {
		viols = append(viols, "ReplayedCounts: "+err.Error())
	} else {
		for k, v := range rc {
			want, okK := ref.id[k]
			if !okK {
				viols = append(viols, fmt.Sprintf("replayed key %d absent from reference", k))
			} else if v > want {
				viols = append(viols, fmt.Sprintf("replayed count %d=%d exceeds reference %d", k, v, want))
			}
		}
	}

	// A durably committed traversal must expose exactly the reference.
	if info.Phase >= 2 {
		cc, gotTask, ok := e.CommittedCounts()
		switch {
		case !ok:
			viols = append(viols, "phase 2 but CommittedCounts not ok")
		case gotTask != ref.task:
			viols = append(viols, fmt.Sprintf("committed task %v, want %v", gotTask, ref.task))
		case !maps.Equal(cc, ref.id):
			viols = append(viols, "committed counts differ from reference")
		}
	}

	// The recovered engine must be fully usable: re-running the task yields
	// the exact reference result.
	res, err := runOn(e, task)
	if err != nil {
		viols = append(viols, "re-run after recovery: "+err.Error())
	} else if !reflect.DeepEqual(res, ref.result) {
		viols = append(viols, "re-run result differs from reference")
	}
	return state, viols
}

// pickEvents chooses which crash points to explore.  points <= 0 or >= the
// candidate count means all of [0, total].  Otherwise the first and last
// events are always included and the rest are a seeded sample, so the
// hardest boundaries (nothing durable yet / everything superseded) are never
// skipped.
func pickEvents(total int64, points int, seed int64) []int64 {
	all := total + 1
	if points <= 0 || int64(points) >= all {
		out := make([]int64, all)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	chosen := map[int64]bool{0: true, total: true}
	rng := rand.New(rand.NewSource(seed))
	for int64(len(chosen)) < min(int64(points), all) {
		chosen[rng.Int63n(total+1)] = true
	}
	out := make([]int64, 0, len(chosen))
	for ev := range chosen {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
