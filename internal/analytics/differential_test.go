package analytics_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
	"github.com/text-analytics/ntadoc/internal/tadoc"
	"github.com/text-analytics/ntadoc/internal/uncomp"
)

// This file is the single cross-executor differential test: every
// registered op runs on every executor over several randomized corpora, and
// each result is compared against the uncompressed reference
// implementation.  It replaces the per-task reference checks that the
// tadoc and uncomp packages used to carry individually.

// refFor computes the reference result for op over the raw token files.
func refFor(t *testing.T, op analytics.Op, files [][]uint32, d *dict.Dictionary) any {
	t.Helper()
	switch o := op.(type) {
	case analytics.WordCountOp:
		return analytics.RefWordCount(files)
	case analytics.SortOp:
		return analytics.RefSort(files, d)
	case analytics.TermVectorsOp:
		return analytics.RefTermVector(files, o.K)
	case analytics.InvertedIndexOp:
		return analytics.RefInvertedIndex(files)
	case analytics.SequenceCountOp:
		return analytics.RefSequenceCount(files)
	case analytics.RankedInvertedIndexOp:
		return analytics.RefRankedInvertedIndex(files)
	}
	t.Fatalf("no reference implementation for op %v", op.Task())
	return nil
}

// executorCase builds one executor under test for a prepared corpus.
type executorCase struct {
	name  string
	build func(t *testing.T, files [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor
}

func newCore(t *testing.T, g *cfg.Grammar, d *dict.Dictionary, s core.Strategy) *core.Engine {
	t.Helper()
	e, err := core.New(g, d, core.Options{Sequences: true, Strategy: s})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

var executors = []executorCase{
	{"core-topdown", func(t *testing.T, _ [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor {
		return newCore(t, g, d, core.TopDown)
	}},
	{"core-bottomup", func(t *testing.T, _ [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor {
		return newCore(t, g, d, core.BottomUp)
	}},
	{"core-session", func(t *testing.T, _ [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor {
		return newCore(t, g, d, core.TopDown).NewSession()
	}},
	{"tadoc-topdown", func(t *testing.T, _ [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor {
		e, err := tadoc.New(g, d, tadoc.TopDown)
		if err != nil {
			t.Fatalf("tadoc.New: %v", err)
		}
		return e
	}},
	{"tadoc-bottomup", func(t *testing.T, _ [][]uint32, d *dict.Dictionary, g *cfg.Grammar) analytics.Executor {
		e, err := tadoc.New(g, d, tadoc.BottomUp)
		if err != nil {
			t.Fatalf("tadoc.New: %v", err)
		}
		return e
	}},
	{"uncomp", func(t *testing.T, files [][]uint32, d *dict.Dictionary, _ *cfg.Grammar) analytics.Executor {
		dev := nvm.New(nvm.KindNVM, uncomp.RequiredSize(files)+4096)
		e, err := uncomp.Load(dev, d, files)
		if err != nil {
			t.Fatalf("uncomp.Load: %v", err)
		}
		return e
	}},
}

// The randomized corpora: different shapes stress different strategy and
// batching paths (few large files vs. many small ones, dense vs. sparse
// phrase reuse).
var corpora = []datagen.Spec{
	{Name: "base", Seed: 101, Files: 5, TokensPer: 300, Vocab: 50,
		ZipfS: 1.3, Phrases: 30, PhraseLen: 5, PhraseProb: 0.6},
	{Name: "long", Seed: 202, Files: 2, TokensPer: 700, Vocab: 25,
		ZipfS: 1.1, Phrases: 15, PhraseLen: 4, PhraseProb: 0.8},
	{Name: "wide", Seed: 303, Files: 12, TokensPer: 120, Vocab: 80,
		ZipfS: 1.5, Phrases: 40, PhraseLen: 6, PhraseProb: 0.4},
}

func TestOpsDifferentialAcrossExecutors(t *testing.T) {
	for _, spec := range corpora {
		files, d := spec.GenerateWithDict()
		g, err := sequitur.Infer(files, uint32(d.Len()))
		if err != nil {
			t.Fatalf("%s: Infer: %v", spec.Name, err)
		}
		refs := make(map[analytics.Task]any)
		for _, op := range analytics.Ops() {
			refs[op.Task()] = refFor(t, op, files, d)
		}
		for _, ex := range executors {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, ex.name), func(t *testing.T) {
				x := ex.build(t, files, d, g)
				for _, op := range analytics.Ops() {
					got, err := x.RunOp(op)
					if err != nil {
						t.Fatalf("%v: %v", op.Task(), err)
					}
					if !reflect.DeepEqual(got, refs[op.Task()]) {
						t.Errorf("%v: result differs from reference", op.Task())
					}
				}
			})
		}
	}
}

// TestFusedDifferentialAcrossExecutors runs the full op set as one fused
// batch on every executor and checks each slot against the reference —
// every engine's RunOps must agree with its per-op path.
func TestFusedDifferentialAcrossExecutors(t *testing.T) {
	spec := corpora[0]
	files, d := spec.GenerateWithDict()
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	ops := analytics.Ops()
	for _, ex := range executors {
		t.Run(ex.name, func(t *testing.T) {
			x := ex.build(t, files, d, g)
			results, err := x.RunOps(ops)
			if err != nil {
				t.Fatalf("RunOps: %v", err)
			}
			for i, op := range ops {
				if !reflect.DeepEqual(results[i], refFor(t, op, files, d)) {
					t.Errorf("%v: fused result differs from reference", op.Task())
				}
			}
		})
	}
}
