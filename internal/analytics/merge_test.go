package analytics

import (
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// mergeEnv is the coordinator-side Env a sharded engine offers merging
// folds: whole-corpus shape, no sequence-key resolution (shard results are
// already Seq-keyed).
type mergeEnv struct {
	d        *dict.Dictionary
	numFiles int
	meter    *metrics.Meter
}

func (e mergeEnv) Dict() *dict.Dictionary { return e.d }
func (e mergeEnv) NumFiles() int          { return e.numFiles }
func (e mergeEnv) SeqOf(uint64) Seq       { panic("merge env resolves no sequence keys") }
func (e mergeEnv) Charge(n, perOp int64)  { e.meter.Charge(n, perOp) }

// mergeCorpus builds a deterministic multi-file corpus with enough overlap
// between files for cross-shard key collisions in every key space.
func mergeCorpus(t *testing.T) ([][]uint32, *dict.Dictionary) {
	t.Helper()
	d := dict.New()
	texts := [][]string{
		{"the", "quick", "brown", "fox", "jumps", "over", "the", "lazy", "dog"},
		{"the", "quick", "red", "fox", "naps", "under", "the", "busy", "dog"},
		{"a", "lazy", "dog", "naps", "over", "the", "quick", "brown", "fox"},
		{"red", "dog", "jumps", "the", "fox", "the", "fox", "the", "fox"},
		{"under", "a", "brown", "dog", "the", "lazy", "fox", "naps", "alone"},
	}
	files := make([][]uint32, len(texts))
	for i, words := range texts {
		for _, w := range words {
			files[i] = append(files[i], d.Intern(w))
		}
	}
	return files, d
}

// shardRefResult computes the op's reference result over one shard's files
// alone — exactly what that shard's engine would produce.
func shardRefResult(t *testing.T, op Op, files [][]uint32, d *dict.Dictionary) any {
	t.Helper()
	switch op.Task() {
	case WordCount:
		return RefWordCount(files)
	case Sort:
		return RefSort(files, d)
	case TermVector:
		return RefTermVector(files, op.(TermVectorsOp).K)
	case InvertedIndex:
		return RefInvertedIndex(files)
	case SequenceCount:
		return RefSequenceCount(files)
	case RankedInvertedIndex:
		return RefRankedInvertedIndex(files)
	default:
		t.Fatalf("unknown task %v", op.Task())
		return nil
	}
}

// TestMergeShardResults checks, for every registered op and several shard
// splits, that merging per-shard reference results reproduces the
// whole-corpus reference bit-for-bit.
func TestMergeShardResults(t *testing.T) {
	files, d := mergeCorpus(t)
	splits := [][]int{
		{5},          // one shard: merge must be the identity
		{1, 4},       // skewed
		{2, 3},       // balanced
		{2, 2, 1},    // three shards
		{1, 1, 1, 2}, // singleton shards
	}
	for _, op := range Ops() {
		want := shardRefResult(t, op, files, d)
		for _, split := range splits {
			var meter metrics.Meter
			env := mergeEnv{d: d, numFiles: len(files), meter: &meter}
			var results []any
			var bases []uint32
			next := 0
			for _, n := range split {
				shard := files[next : next+n]
				results = append(results, shardRefResult(t, op, shard, d))
				bases = append(bases, uint32(next))
				next += n
			}
			got, err := MergeShardResults(op, env, results, bases)
			if err != nil {
				t.Fatalf("%s split %v: %v", op.Name(), split, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s split %v: merged result differs from whole-corpus reference\n got %v\nwant %v",
					op.Name(), split, got, want)
			}
			if len(split) > 1 && meter.Nanos() == 0 {
				t.Errorf("%s split %v: merge charged no modeled CPU", op.Name(), split)
			}
		}
	}
}

// TestMergeShardResultsEmptyFold checks every op's merge when one shard
// contributes an empty fold: a shard holding no documents (or only empty
// documents) returns an empty result — an empty map, nil slices, or
// zero-valued per-file entries depending on the op — and merging it must
// neither fail nor disturb the other shards' contributions.
func TestMergeShardResultsEmptyFold(t *testing.T) {
	files, d := mergeCorpus(t)
	// splits partition the corpus; a zero entry is a shard with no files.
	splits := [][]int{
		{0, 5},       // empty shard first
		{2, 0, 3},    // empty shard in the middle
		{5, 0},       // empty shard last
		{0, 0, 5, 0}, // several empty shards
	}
	for _, op := range Ops() {
		want := shardRefResult(t, op, files, d)
		for _, split := range splits {
			var meter metrics.Meter
			env := mergeEnv{d: d, numFiles: len(files), meter: &meter}
			var results []any
			var bases []uint32
			next := 0
			for _, n := range split {
				shard := files[next : next+n]
				results = append(results, shardRefResult(t, op, shard, d))
				bases = append(bases, uint32(next))
				next += n
			}
			got, err := MergeShardResults(op, env, results, bases)
			if err != nil {
				t.Fatalf("%s split %v: %v", op.Name(), split, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s split %v: merge with empty shard differs from whole-corpus reference\n got %v\nwant %v",
					op.Name(), split, got, want)
			}
		}
	}

	// A shard whose documents exist but are all empty: its per-file entries
	// are zero-valued rather than absent, and global document indices must
	// still land on the right files.
	padded := [][]uint32{files[0], {}, {}, files[1]}
	for _, op := range Ops() {
		want := shardRefResult(t, op, padded, d)
		var meter metrics.Meter
		env := mergeEnv{d: d, numFiles: len(padded), meter: &meter}
		results := []any{
			shardRefResult(t, op, padded[:1], d),
			shardRefResult(t, op, padded[1:3], d), // two empty documents
			shardRefResult(t, op, padded[3:], d),
		}
		got, err := MergeShardResults(op, env, results, []uint32{0, 1, 3})
		if err != nil {
			t.Fatalf("%s empty-document shard: %v", op.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: merge with empty-document shard differs from reference\n got %v\nwant %v",
				op.Name(), got, want)
		}
	}
}

// TestMergeShardResultsRejectsWrongType ensures a mismatched shard result
// type surfaces as an error, not a corrupt merge.
func TestMergeShardResultsRejectsWrongType(t *testing.T) {
	files, d := mergeCorpus(t)
	var meter metrics.Meter
	env := mergeEnv{d: d, numFiles: len(files), meter: &meter}
	for _, op := range Ops() {
		if _, err := MergeShardResults(op, env, []any{struct{}{}}, []uint32{0}); err == nil {
			t.Errorf("%s: merging a bogus result type did not fail", op.Name())
		}
	}
}

// TestMergeDocBaseBounds ensures per-file merges reject shards that extend
// past the declared corpus size.
func TestMergeDocBaseBounds(t *testing.T) {
	files, d := mergeCorpus(t)
	var meter metrics.Meter
	env := mergeEnv{d: d, numFiles: 2, meter: &meter} // corpus said 2 docs
	op := TermVectorsOp{K: DefaultTermVectorK}
	res := shardRefResult(t, op, files, d) // but the shard carries 5
	if _, err := MergeShardResults(op, env, []any{res}, []uint32{0}); err == nil {
		t.Fatal("termvectors merge beyond NumFiles did not fail")
	}
}
