package analytics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

func TestTaskStrings(t *testing.T) {
	want := []string{"word count", "sort", "term vector", "inverted index",
		"sequence count", "ranked inverted index"}
	for i, task := range Tasks {
		if task.String() != want[i] {
			t.Errorf("Task %d = %q, want %q", i, task, want[i])
		}
	}
	if Task(99).String() != "Task(99)" {
		t.Errorf("unknown task string")
	}
}

func TestRefWordCount(t *testing.T) {
	files := [][]uint32{{1, 2, 1}, {2, 3}}
	got := RefWordCount(files)
	want := map[uint32]uint64{1: 2, 2: 2, 3: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefWordCount = %v", got)
	}
}

func TestRefSortAlphabetical(t *testing.T) {
	d := dict.New()
	banana := d.Intern("banana") // id 0
	apple := d.Intern("apple")   // id 1
	cherry := d.Intern("cherry") // id 2
	files := [][]uint32{{banana, apple, cherry, apple}}
	got := RefSort(files, d)
	want := []WordFreq{{apple, 2}, {banana, 1}, {cherry, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefSort = %v, want %v", got, want)
	}
}

func TestRefTermVector(t *testing.T) {
	files := [][]uint32{{5, 5, 5, 7, 7, 9}, {1}}
	got := RefTermVector(files, 2)
	want := [][]WordFreq{{{5, 3}, {7, 2}}, {{1, 1}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefTermVector = %v, want %v", got, want)
	}
	// Tie break by ascending word ID.
	got = RefTermVector([][]uint32{{9, 3, 3, 9}}, 0)
	want = [][]WordFreq{{{3, 2}, {9, 2}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie break = %v, want %v", got, want)
	}
}

func TestRefInvertedIndex(t *testing.T) {
	files := [][]uint32{{1, 2}, {2, 3}, {1}}
	got := RefInvertedIndex(files)
	want := map[uint32][]uint32{1: {0, 2}, 2: {0, 1}, 3: {1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefInvertedIndex = %v", got)
	}
}

func TestRefSequenceCount(t *testing.T) {
	// "a b a b a" has trigrams aba, bab, aba.
	files := [][]uint32{{0, 1, 0, 1, 0}, {5, 6}} // second file too short
	got := RefSequenceCount(files)
	want := map[Seq]uint64{{0, 1, 0}: 2, {1, 0, 1}: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RefSequenceCount = %v", got)
	}
}

func TestRefRankedInvertedIndex(t *testing.T) {
	files := [][]uint32{
		{0, 1, 2, 0, 1, 2, 0, 1, 2}, // (0,1,2) x3
		{0, 1, 2},                   // (0,1,2) x1
	}
	got := RefRankedInvertedIndex(files)
	postings := got[Seq{0, 1, 2}]
	if len(postings) != 2 || postings[0].Doc != 0 || postings[0].Freq != 3 ||
		postings[1].Doc != 1 || postings[1].Freq != 1 {
		t.Errorf("postings = %v", postings)
	}
}

func TestRankPostingsTieBreak(t *testing.T) {
	got := RankPostings(map[uint32]uint64{3: 5, 1: 5, 2: 9})
	want := []DocFreq{{2, 9}, {1, 5}, {3, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankPostings = %v", got)
	}
}

// randomCorpus builds a redundant random corpus and its grammar.
func randomCorpus(t testing.TB, seed int64, nFiles, fileLen, vocab int) ([][]uint32, *cfg.Grammar) {
	if t != nil {
		t.Helper()
	}
	r := rand.New(rand.NewSource(seed))
	phrases := make([][]uint32, 8)
	for i := range phrases {
		p := make([]uint32, 2+r.Intn(6))
		for j := range p {
			p[j] = uint32(r.Intn(vocab))
		}
		phrases[i] = p
	}
	files := make([][]uint32, nFiles)
	for i := range files {
		var f []uint32
		for len(f) < fileLen {
			if r.Intn(3) == 0 {
				f = append(f, uint32(r.Intn(vocab)))
			} else {
				f = append(f, phrases[r.Intn(len(phrases))]...)
			}
		}
		files[i] = f[:fileLen]
	}
	g, err := sequitur.Infer(files, uint32(vocab))
	if err != nil {
		if t != nil {
			t.Fatalf("Infer: %v", err)
		}
		panic(err)
	}
	return files, g
}

func TestRuleWeightsReproduceWordCount(t *testing.T) {
	files, g := randomCorpus(t, 1, 4, 300, 20)
	weights, err := RuleWeights(g)
	if err != nil {
		t.Fatalf("RuleWeights: %v", err)
	}
	// Global counts = sum over rules of weight x local word frequency.
	got := make(map[uint32]uint64)
	for ri, body := range g.Rules {
		for _, s := range body {
			if s.IsWord() {
				got[s.WordID()] += weights[ri]
			}
		}
	}
	want := RefWordCount(files)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("weighted word count mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestRuleWordListsRootMatchesWordCount(t *testing.T) {
	files, g := randomCorpus(t, 2, 3, 400, 15)
	lists, err := RuleWordLists(g)
	if err != nil {
		t.Fatalf("RuleWordLists: %v", err)
	}
	want := RefWordCount(files)
	if !reflect.DeepEqual(lists[0], want) {
		t.Errorf("root word list mismatch")
	}
}

func TestUpperBoundsHold(t *testing.T) {
	_, g := randomCorpus(t, 3, 5, 300, 12)
	bounds, err := UpperBounds(g)
	if err != nil {
		t.Fatalf("UpperBounds: %v", err)
	}
	lists, _ := RuleWordLists(g)
	for ri := range g.Rules {
		if int64(len(lists[ri])) > bounds[ri] {
			t.Errorf("R%d: word list %d exceeds bound %d", ri, len(lists[ri]), bounds[ri])
		}
	}
	// The paper's example (Fig 1e): bounds are exact sums.
	paper := &cfg.Grammar{
		Rules: [][]cfg.Symbol{
			{cfg.Rule(1), cfg.Word(4), cfg.Rule(1), cfg.Sep(0), cfg.Word(5), cfg.Rule(2), cfg.Sep(1)},
			{cfg.Rule(2), cfg.Word(2), cfg.Word(3)},
			{cfg.Word(0), cfg.Word(1)},
		},
		NumWords: 6, NumFiles: 2,
	}
	b, err := UpperBounds(paper)
	if err != nil {
		t.Fatalf("UpperBounds(paper): %v", err)
	}
	// R2 = 2; R1 = bound(R2)+2 = 4; R0 = 2*bound(R1)+bound(R2)+2 = 12.
	// (The paper's walk-through counts R1 once and omits multiplicity:
	// its R0 example value is 6; with multiplicity the sound bound is 12.)
	if b[2] != 2 || b[1] != 4 {
		t.Errorf("paper bounds = %v", b)
	}
	if b[0] < 6 {
		t.Errorf("R0 bound %d not an upper bound", b[0])
	}
}

func TestFileSegments(t *testing.T) {
	_, g := randomCorpus(t, 4, 3, 100, 10)
	segs := FileSegments(g)
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	for i, seg := range segs {
		for _, s := range seg {
			if s.IsSep() {
				t.Errorf("segment %d contains separator", i)
			}
		}
	}
}

func TestComputeSeqInfoGlobalCounts(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		files, g := randomCorpus(t, seed, 3, 200, 8)
		infos, err := ComputeSeqInfo(g)
		if err != nil {
			t.Fatalf("ComputeSeqInfo: %v", err)
		}
		want := RefSequenceCount(files)
		if !seqMapsEqual(infos[0].Counts, want) {
			t.Errorf("seed %d: root counts mismatch: got %d entries, want %d",
				seed, len(infos[0].Counts), len(want))
		}
	}
}

func TestSegmentSeqCountsPerFile(t *testing.T) {
	files, g := randomCorpus(t, 7, 4, 150, 6)
	infos, err := ComputeSeqInfo(g)
	if err != nil {
		t.Fatalf("ComputeSeqInfo: %v", err)
	}
	segs := FileSegments(g)
	for i, seg := range segs {
		got := SegmentSeqCounts(seg, infos)
		want := RefSequenceCount([][]uint32{files[i]})
		if !seqMapsEqual(got, want) {
			t.Errorf("file %d: per-file counts mismatch", i)
		}
	}
}

func TestSeqInfoHeadTail(t *testing.T) {
	files, g := randomCorpus(t, 9, 2, 120, 5)
	infos, err := ComputeSeqInfo(g)
	if err != nil {
		t.Fatalf("ComputeSeqInfo: %v", err)
	}
	for ri := 1; ri < len(g.Rules); ri++ {
		exp := []uint32{}
		for _, s := range g.Expand(uint32(ri)) {
			if s.IsWord() {
				exp = append(exp, s.WordID())
			}
		}
		info := infos[ri]
		if info.Len != int64(len(exp)) {
			t.Fatalf("R%d: Len %d, expansion %d", ri, info.Len, len(exp))
		}
		keep := SeqLen - 1
		if len(exp) < keep {
			keep = len(exp)
		}
		for j := 0; j < keep; j++ {
			if info.Head()[j] != exp[j] {
				t.Errorf("R%d head[%d] = %d, want %d", ri, j, info.Head()[j], exp[j])
			}
			if info.Tail()[keep-1-j] != exp[len(exp)-1-j] {
				t.Errorf("R%d tail mismatch", ri)
			}
		}
	}
	_ = files
}

func seqMapsEqual(a, b map[Seq]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestQuickSeqCountsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nFiles := 1 + r.Intn(4)
		files := make([][]uint32, nFiles)
		for i := range files {
			n := r.Intn(60)
			ids := make([]uint32, n)
			for j := range ids {
				ids[j] = uint32(r.Intn(4))
			}
			files[i] = ids
		}
		g, err := sequitur.Infer(files, 4)
		if err != nil {
			return false
		}
		infos, err := ComputeSeqInfo(g)
		if err != nil {
			return false
		}
		if !seqMapsEqual(infos[0].Counts, RefSequenceCount(files)) {
			return false
		}
		segs := FileSegments(g)
		for i := range files {
			if !seqMapsEqual(SegmentSeqCounts(segs[i], infos), RefSequenceCount([][]uint32{files[i]})) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickWordListsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		files, g := randomCorpus(nil, seed, 3, 80, 6)
		lists, err := RuleWordLists(g)
		if err != nil {
			return false
		}
		segs := FileSegments(g)
		for i := range files {
			got := make(map[uint32]uint64)
			for _, s := range segs[i] {
				switch {
				case s.IsWord():
					got[s.WordID()]++
				case s.IsRule():
					for w, c := range lists[s.RuleIndex()] {
						got[w] += c
					}
				}
			}
			want := RefWordCount([][]uint32{files[i]})
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBodySpanningDecomposition(t *testing.T) {
	// Property behind weighted sequence counting: global counts equal the
	// root's local windows plus each rule's local windows x its weight.
	for seed := int64(0); seed < 6; seed++ {
		files, g := randomCorpus(t, 100+seed, 3, 150, 6)
		infos, err := ComputeSeqInfo(g)
		if err != nil {
			t.Fatalf("ComputeSeqInfo: %v", err)
		}
		weights, err := RuleWeights(g)
		if err != nil {
			t.Fatalf("RuleWeights: %v", err)
		}
		got := make(map[Seq]uint64)
		for ri := range g.Rules {
			for q, c := range BodySpanningCounts(g.Rules[ri], infos) {
				got[q] += c * weights[ri]
			}
		}
		if !seqMapsEqual(got, RefSequenceCount(files)) {
			t.Errorf("seed %d: weighted decomposition mismatch", seed)
		}
	}
}

func TestPerFileSpanningDecomposition(t *testing.T) {
	// Per-file variant: file counts equal the segment's local windows plus
	// each rule's local windows x its per-file weight.
	files, g := randomCorpus(t, 200, 4, 120, 5)
	infos, err := ComputeSeqInfo(g)
	if err != nil {
		t.Fatalf("ComputeSeqInfo: %v", err)
	}
	order, _ := g.TopoOrder()
	segs := FileSegments(g)
	for fi, seg := range segs {
		weight := make([]uint64, len(g.Rules))
		for _, s := range seg {
			if s.IsRule() {
				weight[s.RuleIndex()]++
			}
		}
		for _, ri := range order {
			if weight[ri] == 0 {
				continue
			}
			for _, s := range g.Rules[ri] {
				if s.IsRule() {
					weight[s.RuleIndex()] += weight[ri]
				}
			}
		}
		got := make(map[Seq]uint64)
		for q, c := range BodySpanningCounts(seg, infos) {
			got[q] += c
		}
		for ri := range g.Rules {
			if weight[ri] == 0 {
				continue
			}
			for q, c := range BodySpanningCounts(g.Rules[ri], infos) {
				got[q] += c * weight[ri]
			}
		}
		if !seqMapsEqual(got, RefSequenceCount([][]uint32{files[fi]})) {
			t.Errorf("file %d: per-file weighted decomposition mismatch", fi)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	files := [][]uint32{{0, 1, 0, 2, 1, 0}}
	g, err := sequitur.Infer(files, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	e := stubEngine{}
	for _, task := range Tasks {
		if err := Run(e, task); err != nil {
			t.Errorf("Run(%v): %v", task, err)
		}
	}
	if err := Run(e, Task(99)); err == nil {
		t.Error("unknown task must error")
	}
}

// stubEngine satisfies Engine with empty results.
type stubEngine struct{}

func (stubEngine) WordCount() (map[uint32]uint64, error) { return nil, nil }
func (stubEngine) Sort() ([]WordFreq, error)             { return nil, nil }
func (stubEngine) TermVectors(int) ([][]WordFreq, error) { return nil, nil }
func (stubEngine) InvertedIndex() (map[uint32][]uint32, error) {
	return nil, nil
}
func (stubEngine) SequenceCount() (map[Seq]uint64, error) { return nil, nil }
func (stubEngine) RankedInvertedIndex() (map[Seq][]DocFreq, error) {
	return nil, nil
}
