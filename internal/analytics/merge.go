// Shard-result merging: the scatter half of a sharded engine runs every op
// independently per shard (files never straddle shards, so each shard's
// traversal is a complete run over its slice of the corpus), and the gather
// half folds the per-shard results back into one corpus-wide result here.
// Merge semantics follow the op's declaration: global-scope ops combine
// counters key-wise; per-file ops concatenate, offsetting document indices
// by the shard's base.  Every canonical ordering (alphabetical sort, posting
// ranking) is re-established after the merge, so merged results are
// bit-identical to an unsharded run over the same corpus.
package analytics

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/metrics"
)

// MergingFold is the merge capability of a fold: in addition to consuming
// traversal counters, it can fold in the finished result of one shard's run
// of the same op.  docBase is the global index of the shard's first
// document; global-scope folds ignore it.  MergeShard calls must arrive in
// ascending shard order and must not be mixed with Global/File deliveries;
// Finish then produces the corpus-wide result.
//
// All registered ops implement it, which is what lets a sharded coordinator
// run any op without task-specific merge code.
type MergingFold interface {
	Fold
	MergeShard(result any, docBase uint32) error
}

// MergeShardResults folds per-shard results of op back into one corpus-wide
// result.  results[i] is shard i's finished result; docBases[i] is the
// global index of shard i's first document.  env must describe the whole
// corpus (NumFiles is the corpus-wide document count).
func MergeShardResults(op Op, env Env, results []any, docBases []uint32) (any, error) {
	if len(results) != len(docBases) {
		return nil, fmt.Errorf("analytics: merge %s: %d results, %d doc bases",
			op.Name(), len(results), len(docBases))
	}
	fold := op.NewFold(env)
	mf, ok := fold.(MergingFold)
	if !ok {
		return nil, fmt.Errorf("analytics: op %s fold is not mergeable", op.Name())
	}
	for i, res := range results {
		if err := mf.MergeShard(res, docBases[i]); err != nil {
			return nil, fmt.Errorf("analytics: merge %s shard %d: %w", op.Name(), i, err)
		}
	}
	return mf.Finish()
}

// mergeTypeError reports a shard result whose concrete type does not match
// the op's canonical result type — always a coordinator bug.
func mergeTypeError(name string, result any) error {
	return fmt.Errorf("analytics: %s shard result has type %T", name, result)
}

// MergeUnit is one independently-executed slice of the corpus to fold back:
// a shard's base engine, or a delta engine holding appended documents.
// When DocMap is nil the unit's documents are the contiguous global range
// starting at DocBase; otherwise unit-local document i is global document
// DocMap[i] — the shape online ingestion produces, where a shard's delta
// documents interleave globally with other shards' in append order.
type MergeUnit struct {
	Result  any
	DocBase uint32
	DocMap  []uint32
}

// MappedMergingFold is the docmap-aware merge capability.  All registered folds
// implement it: global-scope folds ignore the mapping, per-file folds place
// each unit-local document at its mapped global index.
type MappedMergingFold interface {
	MergingFold
	MergeMapped(result any, docMap []uint32) error
}

// MergeUnits folds unit results of op back into one corpus-wide result.
// Units must arrive in ascending order of their first global document; env
// must describe the whole corpus (NumFiles spans base and appended
// documents).
func MergeUnits(op Op, env Env, units []MergeUnit) (any, error) {
	fold := op.NewFold(env)
	mf, ok := fold.(MappedMergingFold)
	if !ok {
		return nil, fmt.Errorf("analytics: op %s fold is not mergeable", op.Name())
	}
	for i, u := range units {
		var err error
		if u.DocMap == nil {
			err = mf.MergeShard(u.Result, u.DocBase)
		} else {
			err = mf.MergeMapped(u.Result, u.DocMap)
		}
		if err != nil {
			return nil, fmt.Errorf("analytics: merge %s unit %d: %w", op.Name(), i, err)
		}
	}
	return mf.Finish()
}

// MergeShard sums per-word counters key-wise.
func (f *wordCountFold) MergeShard(result any, _ uint32) error {
	in, ok := result.(map[uint32]uint64)
	if !ok {
		return mergeTypeError("wordcount", result)
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for w, n := range in {
		f.out[w] += n
	}
	return nil
}

// MergeShard sums the sorted shard vocabularies key-wise; Finish re-sorts
// the merged vocabulary alphabetically.
func (f *sortFold) MergeShard(result any, _ uint32) error {
	in, ok := result.([]WordFreq)
	if !ok {
		return mergeTypeError("sort", result)
	}
	if f.acc == nil {
		f.acc = make(map[uint32]uint64, len(in))
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for _, wf := range in {
		f.acc[wf.Word] += wf.Freq
	}
	return nil
}

// MergeShard places the shard's per-document vectors at their global
// document indices; vectors are already final (a document's term vector
// depends only on that document).
func (f *termVectorsFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.([][]WordFreq)
	if !ok {
		return mergeTypeError("termvectors", result)
	}
	if int(docBase)+len(in) > len(f.out) {
		return fmt.Errorf("analytics: termvectors shard [%d, +%d) exceeds %d documents",
			docBase, len(in), len(f.out))
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for i, vec := range in {
		f.out[int(docBase)+i] = vec
	}
	return nil
}

// MergeShard concatenates posting lists with documents offset to their
// global indices; Finish re-sorts each list into canonical document order.
func (f *invertedIndexFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.(map[uint32][]uint32)
	if !ok {
		return mergeTypeError("invertedindex", result)
	}
	for w, docs := range in {
		f.env.Charge(int64(len(docs)), metrics.CostMergeEntry)
		for _, doc := range docs {
			f.out[w] = append(f.out[w], doc+docBase)
		}
	}
	return nil
}

// MergeShard sums per-sequence counters key-wise.
func (f *seqCountFold) MergeShard(result any, _ uint32) error {
	in, ok := result.(map[Seq]uint64)
	if !ok {
		return mergeTypeError("seqcount", result)
	}
	f.env.Charge(int64(len(in)), metrics.CostSeqOp)
	for q, n := range in {
		f.out[q] += n
	}
	return nil
}

// MergeShard concatenates ranked postings with documents offset to their
// global indices; Finish re-ranks each merged list (descending frequency,
// ascending document), restoring the canonical order.
func (f *rankedIndexFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.(map[Seq][]DocFreq)
	if !ok {
		return mergeTypeError("rankedindex", result)
	}
	if f.merged == nil {
		f.merged = make(map[Seq][]DocFreq, len(in))
	}
	for q, postings := range in {
		f.env.Charge(int64(len(postings)), metrics.CostMergeEntry)
		for _, p := range postings {
			f.merged[q] = append(f.merged[q], DocFreq{Doc: p.Doc + docBase, Freq: p.Freq})
		}
	}
	return nil
}

// MergeMapped: global-scope folds ignore document indices entirely.
func (f *wordCountFold) MergeMapped(result any, _ []uint32) error {
	return f.MergeShard(result, 0)
}

// MergeMapped: global-scope folds ignore document indices entirely.
func (f *sortFold) MergeMapped(result any, _ []uint32) error {
	return f.MergeShard(result, 0)
}

// MergeMapped places each unit-local vector at its mapped global index.
func (f *termVectorsFold) MergeMapped(result any, docMap []uint32) error {
	in, ok := result.([][]WordFreq)
	if !ok {
		return mergeTypeError("termvectors", result)
	}
	if len(in) != len(docMap) {
		return fmt.Errorf("analytics: termvectors unit has %d documents, map %d", len(in), len(docMap))
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for i, vec := range in {
		if int(docMap[i]) >= len(f.out) {
			return fmt.Errorf("analytics: termvectors mapped document %d exceeds %d documents",
				docMap[i], len(f.out))
		}
		f.out[docMap[i]] = vec
	}
	return nil
}

// MergeMapped concatenates posting lists with documents remapped to their
// global indices; Finish re-sorts each list into canonical document order.
func (f *invertedIndexFold) MergeMapped(result any, docMap []uint32) error {
	in, ok := result.(map[uint32][]uint32)
	if !ok {
		return mergeTypeError("invertedindex", result)
	}
	//ntalint:ignore determcheck keyed appends commute across keys; the only order-dependence is which invariant-violation error surfaces first, and any violation fails the whole merge.
	for w, docs := range in {
		f.env.Charge(int64(len(docs)), metrics.CostMergeEntry)
		for _, doc := range docs {
			if int(doc) >= len(docMap) {
				return fmt.Errorf("analytics: invertedindex unit document %d outside map of %d", doc, len(docMap))
			}
			f.out[w] = append(f.out[w], docMap[doc])
		}
	}
	return nil
}

// MergeMapped: global-scope folds ignore document indices entirely.
func (f *seqCountFold) MergeMapped(result any, _ []uint32) error {
	return f.MergeShard(result, 0)
}

// MergeMapped concatenates ranked postings with documents remapped to their
// global indices; Finish re-ranks each merged list.
func (f *rankedIndexFold) MergeMapped(result any, docMap []uint32) error {
	in, ok := result.(map[Seq][]DocFreq)
	if !ok {
		return mergeTypeError("rankedindex", result)
	}
	if f.merged == nil {
		f.merged = make(map[Seq][]DocFreq, len(in))
	}
	//ntalint:ignore determcheck keyed appends commute across keys; the only order-dependence is which invariant-violation error surfaces first, and any violation fails the whole merge.
	for q, postings := range in {
		f.env.Charge(int64(len(postings)), metrics.CostMergeEntry)
		for _, p := range postings {
			if int(p.Doc) >= len(docMap) {
				return fmt.Errorf("analytics: rankedindex unit document %d outside map of %d", p.Doc, len(docMap))
			}
			f.merged[q] = append(f.merged[q], DocFreq{Doc: docMap[p.Doc], Freq: p.Freq})
		}
	}
	return nil
}

// Every registered op's fold must be mergeable, with and without a docmap.
var (
	_ MappedMergingFold = (*wordCountFold)(nil)
	_ MappedMergingFold = (*sortFold)(nil)
	_ MappedMergingFold = (*termVectorsFold)(nil)
	_ MappedMergingFold = (*invertedIndexFold)(nil)
	_ MappedMergingFold = (*seqCountFold)(nil)
	_ MappedMergingFold = (*rankedIndexFold)(nil)
)
