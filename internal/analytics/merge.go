// Shard-result merging: the scatter half of a sharded engine runs every op
// independently per shard (files never straddle shards, so each shard's
// traversal is a complete run over its slice of the corpus), and the gather
// half folds the per-shard results back into one corpus-wide result here.
// Merge semantics follow the op's declaration: global-scope ops combine
// counters key-wise; per-file ops concatenate, offsetting document indices
// by the shard's base.  Every canonical ordering (alphabetical sort, posting
// ranking) is re-established after the merge, so merged results are
// bit-identical to an unsharded run over the same corpus.
package analytics

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/metrics"
)

// MergingFold is the merge capability of a fold: in addition to consuming
// traversal counters, it can fold in the finished result of one shard's run
// of the same op.  docBase is the global index of the shard's first
// document; global-scope folds ignore it.  MergeShard calls must arrive in
// ascending shard order and must not be mixed with Global/File deliveries;
// Finish then produces the corpus-wide result.
//
// All registered ops implement it, which is what lets a sharded coordinator
// run any op without task-specific merge code.
type MergingFold interface {
	Fold
	MergeShard(result any, docBase uint32) error
}

// MergeShardResults folds per-shard results of op back into one corpus-wide
// result.  results[i] is shard i's finished result; docBases[i] is the
// global index of shard i's first document.  env must describe the whole
// corpus (NumFiles is the corpus-wide document count).
func MergeShardResults(op Op, env Env, results []any, docBases []uint32) (any, error) {
	if len(results) != len(docBases) {
		return nil, fmt.Errorf("analytics: merge %s: %d results, %d doc bases",
			op.Name(), len(results), len(docBases))
	}
	fold := op.NewFold(env)
	mf, ok := fold.(MergingFold)
	if !ok {
		return nil, fmt.Errorf("analytics: op %s fold is not mergeable", op.Name())
	}
	for i, res := range results {
		if err := mf.MergeShard(res, docBases[i]); err != nil {
			return nil, fmt.Errorf("analytics: merge %s shard %d: %w", op.Name(), i, err)
		}
	}
	return mf.Finish()
}

// mergeTypeError reports a shard result whose concrete type does not match
// the op's canonical result type — always a coordinator bug.
func mergeTypeError(name string, result any) error {
	return fmt.Errorf("analytics: %s shard result has type %T", name, result)
}

// MergeShard sums per-word counters key-wise.
func (f *wordCountFold) MergeShard(result any, _ uint32) error {
	in, ok := result.(map[uint32]uint64)
	if !ok {
		return mergeTypeError("wordcount", result)
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for w, n := range in {
		f.out[w] += n
	}
	return nil
}

// MergeShard sums the sorted shard vocabularies key-wise; Finish re-sorts
// the merged vocabulary alphabetically.
func (f *sortFold) MergeShard(result any, _ uint32) error {
	in, ok := result.([]WordFreq)
	if !ok {
		return mergeTypeError("sort", result)
	}
	if f.acc == nil {
		f.acc = make(map[uint32]uint64, len(in))
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for _, wf := range in {
		f.acc[wf.Word] += wf.Freq
	}
	return nil
}

// MergeShard places the shard's per-document vectors at their global
// document indices; vectors are already final (a document's term vector
// depends only on that document).
func (f *termVectorsFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.([][]WordFreq)
	if !ok {
		return mergeTypeError("termvectors", result)
	}
	if int(docBase)+len(in) > len(f.out) {
		return fmt.Errorf("analytics: termvectors shard [%d, +%d) exceeds %d documents",
			docBase, len(in), len(f.out))
	}
	f.env.Charge(int64(len(in)), metrics.CostMergeEntry)
	for i, vec := range in {
		f.out[int(docBase)+i] = vec
	}
	return nil
}

// MergeShard concatenates posting lists with documents offset to their
// global indices; Finish re-sorts each list into canonical document order.
func (f *invertedIndexFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.(map[uint32][]uint32)
	if !ok {
		return mergeTypeError("invertedindex", result)
	}
	for w, docs := range in {
		f.env.Charge(int64(len(docs)), metrics.CostMergeEntry)
		for _, doc := range docs {
			f.out[w] = append(f.out[w], doc+docBase)
		}
	}
	return nil
}

// MergeShard sums per-sequence counters key-wise.
func (f *seqCountFold) MergeShard(result any, _ uint32) error {
	in, ok := result.(map[Seq]uint64)
	if !ok {
		return mergeTypeError("seqcount", result)
	}
	f.env.Charge(int64(len(in)), metrics.CostSeqOp)
	for q, n := range in {
		f.out[q] += n
	}
	return nil
}

// MergeShard concatenates ranked postings with documents offset to their
// global indices; Finish re-ranks each merged list (descending frequency,
// ascending document), restoring the canonical order.
func (f *rankedIndexFold) MergeShard(result any, docBase uint32) error {
	in, ok := result.(map[Seq][]DocFreq)
	if !ok {
		return mergeTypeError("rankedindex", result)
	}
	if f.merged == nil {
		f.merged = make(map[Seq][]DocFreq, len(in))
	}
	for q, postings := range in {
		f.env.Charge(int64(len(postings)), metrics.CostMergeEntry)
		for _, p := range postings {
			f.merged[q] = append(f.merged[q], DocFreq{Doc: p.Doc + docBase, Freq: p.Freq})
		}
	}
	return nil
}

// Every registered op's fold must be mergeable.
var (
	_ MergingFold = (*wordCountFold)(nil)
	_ MergingFold = (*sortFold)(nil)
	_ MergingFold = (*termVectorsFold)(nil)
	_ MergingFold = (*invertedIndexFold)(nil)
	_ MergingFold = (*seqCountFold)(nil)
	_ MergingFold = (*rankedIndexFold)(nil)
)
