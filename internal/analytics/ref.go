package analytics

import (
	"cmp"
	"slices"
	"strings"

	"github.com/text-analytics/ntadoc/internal/dict"
)

// This file holds the ground-truth reference implementations: direct scans
// over raw per-file token streams.  Every engine's output is cross-checked
// against these in the integration tests, and the uncompressed baseline
// engine mirrors their logic over device-resident tokens.

// RefWordCount counts every word across all files.
func RefWordCount(files [][]uint32) map[uint32]uint64 {
	out := make(map[uint32]uint64)
	for _, f := range files {
		for _, w := range f {
			out[w]++
		}
	}
	return out
}

// RefSort returns the distinct words with counts, alphabetized by their
// dictionary strings — the paper's sort benchmark output.
func RefSort(files [][]uint32, d *dict.Dictionary) []WordFreq {
	counts := RefWordCount(files)
	out := make([]WordFreq, 0, len(counts))
	for w, c := range counts {
		out = append(out, WordFreq{Word: w, Freq: c})
	}
	SortAlphabetical(out, d)
	return out
}

// SortAlphabetical orders (word, freq) pairs by the word strings, the final
// step shared by every engine's sort task.
func SortAlphabetical(wf []WordFreq, d *dict.Dictionary) {
	slices.SortFunc(wf, func(a, b WordFreq) int {
		return strings.Compare(d.Word(a.Word), d.Word(b.Word))
	})
}

// RefTermVector builds each document's term vector: words by descending
// frequency (ascending word ID on ties), truncated to k when k > 0.
func RefTermVector(files [][]uint32, k int) [][]WordFreq {
	out := make([][]WordFreq, len(files))
	for i, f := range files {
		counts := make(map[uint32]uint64)
		for _, w := range f {
			counts[w]++
		}
		out[i] = TermVectorOf(counts, k)
	}
	return out
}

// TermVectorOf converts one document's word counts into its canonical term
// vector ordering.
func TermVectorOf(counts map[uint32]uint64, k int) []WordFreq {
	vec := make([]WordFreq, 0, len(counts))
	for w, c := range counts {
		vec = append(vec, WordFreq{Word: w, Freq: c})
	}
	return TermVectorSorted(vec, k)
}

// TermVectorSorted orders an already-built word-frequency slice in place into
// the canonical term-vector ordering (descending frequency, ascending word ID
// on ties) and truncates it to k when k > 0.
func TermVectorSorted(vec []WordFreq, k int) []WordFreq {
	slices.SortFunc(vec, func(a, b WordFreq) int {
		if a.Freq != b.Freq {
			return cmp.Compare(b.Freq, a.Freq)
		}
		return cmp.Compare(a.Word, b.Word)
	})
	if k > 0 && len(vec) > k {
		vec = vec[:k]
	}
	return vec
}

// RefInvertedIndex maps each word to the ascending list of documents that
// contain it.
func RefInvertedIndex(files [][]uint32) map[uint32][]uint32 {
	out := make(map[uint32][]uint32)
	for doc, f := range files {
		seen := make(map[uint32]struct{})
		for _, w := range f {
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			out[w] = append(out[w], uint32(doc))
		}
	}
	// Docs were appended in ascending order already; keep the invariant
	// explicit for mutated inputs.
	for w := range out {
		slices.Sort(out[w])
	}
	return out
}

// RefSequenceCount counts every SeqLen-gram within each file (sequences do
// not cross file boundaries) and sums globally.
func RefSequenceCount(files [][]uint32) map[Seq]uint64 {
	out := make(map[Seq]uint64)
	for _, f := range files {
		for i := 0; i+SeqLen <= len(f); i++ {
			var s Seq
			copy(s[:], f[i:i+SeqLen])
			out[s]++
		}
	}
	return out
}

// RefRankedInvertedIndex maps each n-gram to its postings, ordered by
// descending per-document frequency (ascending document on ties).
func RefRankedInvertedIndex(files [][]uint32) map[Seq][]DocFreq {
	perDoc := make(map[Seq]map[uint32]uint64)
	for doc, f := range files {
		for i := 0; i+SeqLen <= len(f); i++ {
			var s Seq
			copy(s[:], f[i:i+SeqLen])
			m := perDoc[s]
			if m == nil {
				m = make(map[uint32]uint64)
				perDoc[s] = m
			}
			m[uint32(doc)]++
		}
	}
	out := make(map[Seq][]DocFreq, len(perDoc))
	for s, m := range perDoc {
		out[s] = RankPostings(m)
	}
	return out
}

// RankPostings converts per-document counts to the canonical ranked order.
func RankPostings(m map[uint32]uint64) []DocFreq {
	postings := make([]DocFreq, 0, len(m))
	for doc, c := range m {
		postings = append(postings, DocFreq{Doc: doc, Freq: c})
	}
	return RankPostingsSorted(postings)
}

// RankPostingsSorted orders an already-built postings slice in place into the
// canonical ranking: descending frequency, ascending document on ties.
func RankPostingsSorted(postings []DocFreq) []DocFreq {
	slices.SortFunc(postings, func(a, b DocFreq) int {
		if a.Freq != b.Freq {
			return cmp.Compare(b.Freq, a.Freq)
		}
		return cmp.Compare(a.Doc, b.Doc)
	})
	return postings
}
