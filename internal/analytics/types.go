// Package analytics defines the six text-analytics tasks the paper
// benchmarks (word count, sort, term vector, inverted index, sequence count,
// ranked inverted index), their canonical result types, ground-truth
// reference implementations over raw token streams, and the grammar
// preprocessing shared by the compressed engines (per-rule word lists,
// n-gram counts, and the head/tail structures of §IV-D).
package analytics

import (
	"cmp"
	"fmt"
)

// Task identifies one of the paper's six benchmark tasks.
type Task int

// The benchmark tasks, in the paper's order.
const (
	WordCount Task = iota
	Sort
	TermVector
	InvertedIndex
	SequenceCount
	RankedInvertedIndex
	numTasks
)

// Tasks lists all benchmark tasks in the paper's order.
var Tasks = []Task{WordCount, Sort, TermVector, InvertedIndex, SequenceCount, RankedInvertedIndex}

// String returns the paper's name for the task.
func (t Task) String() string {
	switch t {
	case WordCount:
		return "word count"
	case Sort:
		return "sort"
	case TermVector:
		return "term vector"
	case InvertedIndex:
		return "inverted index"
	case SequenceCount:
		return "sequence count"
	case RankedInvertedIndex:
		return "ranked inverted index"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// SeqLen is the n-gram length used by sequence count and ranked inverted
// index.  Three-word sequences follow the PUMA benchmark the paper adopts.
const SeqLen = 3

// Seq is one word sequence (n-gram).
type Seq [SeqLen]uint32

// CompareSeq orders sequences lexicographically — the canonical order used
// wherever Seq-keyed maps must be walked deterministically.
func CompareSeq(a, b Seq) int {
	for i := range a {
		if a[i] != b[i] {
			return cmp.Compare(a[i], b[i])
		}
	}
	return 0
}

// WordFreq is a word with its frequency; the element type of sort and term
// vector results.
type WordFreq struct {
	Word uint32
	Freq uint64
}

// DocFreq is a document with a frequency, the element of ranked-inverted-
// index postings.
type DocFreq struct {
	Doc  uint32
	Freq uint64
}

// Engine is the uniform surface every analytics engine (uncompressed
// baseline, DRAM TADOC, N-TADOC) implements.  Results are canonical:
//
//   - WordCount: global word -> frequency.
//   - Sort: (word, freq) pairs in alphabetical order of the word strings.
//   - TermVector: per document, its words ordered by descending frequency
//     (word ID ascending on ties), truncated to k when k > 0.
//   - InvertedIndex: word -> ascending list of documents containing it.
//   - SequenceCount: global n-gram -> frequency.
//   - RankedInvertedIndex: n-gram -> postings ordered by descending
//     per-document frequency (document ascending on ties).
type Engine interface {
	WordCount() (map[uint32]uint64, error)
	Sort() ([]WordFreq, error)
	TermVectors(k int) ([][]WordFreq, error)
	InvertedIndex() (map[uint32][]uint32, error)
	SequenceCount() (map[Seq]uint64, error)
	RankedInvertedIndex() (map[Seq][]DocFreq, error)
}

// Run dispatches task t on e, discarding the concrete result.  The harness
// uses it when only timing and device statistics matter.
func Run(e Engine, t Task) error {
	var err error
	switch t {
	case WordCount:
		_, err = e.WordCount()
	case Sort:
		_, err = e.Sort()
	case TermVector:
		_, err = e.TermVectors(DefaultTermVectorK)
	case InvertedIndex:
		_, err = e.InvertedIndex()
	case SequenceCount:
		_, err = e.SequenceCount()
	case RankedInvertedIndex:
		_, err = e.RankedInvertedIndex()
	default:
		err = fmt.Errorf("analytics: unknown task %d", int(t))
	}
	return err
}
