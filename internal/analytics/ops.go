// The operation kernel: every analytics task is one DAG traversal with a
// different per-node action (TADOC's central framing), so each task reduces
// to an Op — a declaration of which traversal it needs (key space + scope)
// plus a Fold that turns the traversal's accumulated counters into the
// task's canonical result.  Executors (core on NVM, tadoc on DRAM, uncomp
// scanning raw text) own the traversal machinery once and run any Op; a
// batch of Ops that agree on traversal requirements shares a single walk
// (fused execution), which is where the modeled device-read savings of
// RunOps come from.
package analytics

import (
	"errors"
	"fmt"
	"slices"

	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
)

// KeySpace declares what an op's counter keys mean.
type KeySpace int

const (
	// KeyWords: counter keys are dictionary word IDs.
	KeyWords KeySpace = iota
	// KeySequences: counter keys are executor-chosen dense sequence
	// identifiers, resolved to Seq values through Env.SeqOf.
	KeySequences
)

// Scope declares the granularity of the counters an op consumes.
type Scope int

const (
	// ScopeGlobal: one corpus-wide counter, delivered via Fold.Global.
	ScopeGlobal Scope = iota
	// ScopePerFile: one counter per document, delivered via Fold.File in
	// ascending document order.
	ScopePerFile
)

// Counts is a read-only view of one accumulated counter.  Range order is
// unspecified; folds must not depend on it.  The view is valid only for the
// duration of the Fold callback it is passed to — executors reuse the
// backing storage between documents.
type Counts interface {
	// Len returns the number of distinct keys.
	Len() int64
	// Range calls fn for every (key, count) pair until fn returns false.
	Range(fn func(key, count uint64) bool)
}

// Env is what an executor offers a Fold: dictionary access, corpus shape,
// sequence-key resolution, and modeled-CPU charging.
type Env interface {
	Dict() *dict.Dictionary
	NumFiles() int
	// SeqOf resolves a KeySequences counter key to its sequence.
	SeqOf(key uint64) Seq
	// Charge adds n operations of perOp modeled nanos each to the run's
	// CPU meter.
	Charge(n, perOp int64)
}

// Fold consumes an op's traversal counters and produces its result.  Exactly
// one of Global/File is used, per the op's Scope; Finish is called once after
// all deliveries.
type Fold interface {
	Global(c Counts) error
	File(doc uint32, c Counts) error
	Finish() (any, error)
}

// Op declares one analytics task to the traversal kernel: which key space
// its counters live in, at what scope they accumulate, and how the fold
// turns them into the task's result.
type Op interface {
	Task() Task
	Name() string
	Keys() KeySpace
	Scope() Scope
	NewFold(env Env) Fold
}

// Executor runs registered ops; every engine implements it.  RunOps executes
// a batch over as few traversals as the ops' declarations allow and returns
// results positionally.
type Executor interface {
	RunOp(op Op) (any, error)
	RunOps(ops []Op) ([]any, error)
}

// RunAs runs one op on x and asserts its concrete result type.
func RunAs[T any](x Executor, op Op) (T, error) {
	var zero T
	v, err := x.RunOp(op)
	if err != nil {
		return zero, err
	}
	out, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("analytics: op %s returned %T", op.Name(), v)
	}
	return out, nil
}

// DefaultTermVectorK is the per-document vector length used by the Run
// dispatcher and the Ops registry.
const DefaultTermVectorK = 10

// Ops returns one registered op per task, in the paper's task order, with
// default parameters.  This is the table the cross-executor differential
// harness iterates.
func Ops() []Op {
	return []Op{
		WordCountOp{},
		SortOp{},
		TermVectorsOp{K: DefaultTermVectorK},
		InvertedIndexOp{},
		SequenceCountOp{},
		RankedInvertedIndexOp{},
	}
}

// OpFor returns the registered op for task t with default parameters.
func OpFor(t Task) (Op, error) {
	for _, op := range Ops() {
		if op.Task() == t {
			return op, nil
		}
	}
	return nil, fmt.Errorf("analytics: no op registered for task %v", t)
}

var errFoldScope = errors.New("analytics: fold called outside its declared scope")

// WordCountOp counts every word's corpus-wide frequency.
type WordCountOp struct{}

func (WordCountOp) Task() Task     { return WordCount }
func (WordCountOp) Name() string   { return "wordcount" }
func (WordCountOp) Keys() KeySpace { return KeyWords }
func (WordCountOp) Scope() Scope   { return ScopeGlobal }
func (WordCountOp) NewFold(env Env) Fold {
	return &wordCountFold{env: env, out: map[uint32]uint64{}}
}

type wordCountFold struct {
	env Env
	out map[uint32]uint64
}

func (f *wordCountFold) Global(c Counts) error {
	f.env.Charge(c.Len(), metrics.CostHashOp)
	f.out = make(map[uint32]uint64, c.Len())
	c.Range(func(k, v uint64) bool { f.out[uint32(k)] = v; return true })
	return nil
}
func (f *wordCountFold) File(uint32, Counts) error { return errFoldScope }
func (f *wordCountFold) Finish() (any, error)      { return f.out, nil }

// SortOp produces the full vocabulary with counts in dictionary order.
type SortOp struct{}

func (SortOp) Task() Task     { return Sort }
func (SortOp) Name() string   { return "sort" }
func (SortOp) Keys() KeySpace { return KeyWords }
func (SortOp) Scope() Scope   { return ScopeGlobal }
func (SortOp) NewFold(env Env) Fold {
	return &sortFold{env: env, out: []WordFreq{}}
}

type sortFold struct {
	env Env
	out []WordFreq
	acc map[uint32]uint64 // shard-merge accumulator; nil on the traversal path
}

func (f *sortFold) Global(c Counts) error {
	out := make([]WordFreq, 0, c.Len())
	c.Range(func(k, v uint64) bool {
		out = append(out, WordFreq{Word: uint32(k), Freq: v})
		return true
	})
	f.env.Charge(int64(len(out)), metrics.CostHashOp+metrics.CostSortEntry)
	SortAlphabetical(out, f.env.Dict())
	f.out = out
	return nil
}
func (f *sortFold) File(uint32, Counts) error { return errFoldScope }
func (f *sortFold) Finish() (any, error) {
	if f.acc != nil {
		out := make([]WordFreq, 0, len(f.acc))
		for w, n := range f.acc {
			out = append(out, WordFreq{Word: w, Freq: n})
		}
		f.env.Charge(int64(len(out)), metrics.CostSortEntry)
		SortAlphabetical(out, f.env.Dict())
		f.out = out
	}
	return f.out, nil
}

// TermVectorsOp produces each document's top-K most frequent words.
type TermVectorsOp struct{ K int }

func (TermVectorsOp) Task() Task     { return TermVector }
func (TermVectorsOp) Name() string   { return "termvectors" }
func (TermVectorsOp) Keys() KeySpace { return KeyWords }
func (TermVectorsOp) Scope() Scope   { return ScopePerFile }
func (o TermVectorsOp) NewFold(env Env) Fold {
	return &termVectorsFold{env: env, k: o.K, out: make([][]WordFreq, env.NumFiles())}
}

type termVectorsFold struct {
	env Env
	k   int
	out [][]WordFreq
}

func (f *termVectorsFold) Global(Counts) error { return errFoldScope }
func (f *termVectorsFold) File(doc uint32, c Counts) error {
	f.env.Charge(c.Len(), metrics.CostHashOp+metrics.CostSortEntry)
	counts := make(map[uint32]uint64, c.Len())
	c.Range(func(k, v uint64) bool { counts[uint32(k)] = v; return true })
	f.out[doc] = TermVectorOf(counts, f.k)
	return nil
}
func (f *termVectorsFold) Finish() (any, error) { return f.out, nil }

// InvertedIndexOp maps every word to the sorted documents containing it.
type InvertedIndexOp struct{}

func (InvertedIndexOp) Task() Task     { return InvertedIndex }
func (InvertedIndexOp) Name() string   { return "invertedindex" }
func (InvertedIndexOp) Keys() KeySpace { return KeyWords }
func (InvertedIndexOp) Scope() Scope   { return ScopePerFile }
func (InvertedIndexOp) NewFold(env Env) Fold {
	return &invertedIndexFold{env: env, out: map[uint32][]uint32{}}
}

type invertedIndexFold struct {
	env Env
	out map[uint32][]uint32
}

func (f *invertedIndexFold) Global(Counts) error { return errFoldScope }
func (f *invertedIndexFold) File(doc uint32, c Counts) error {
	f.env.Charge(c.Len(), metrics.CostHashOp+metrics.CostSortEntry)
	c.Range(func(k, _ uint64) bool {
		f.out[uint32(k)] = append(f.out[uint32(k)], doc)
		return true
	})
	return nil
}
func (f *invertedIndexFold) Finish() (any, error) {
	// Documents arrive in ascending order but Range order within a document
	// is unspecified, so each posting list still needs its final sort.
	for w := range f.out {
		slices.Sort(f.out[w])
	}
	return f.out, nil
}

// SequenceCountOp counts every SeqLen-window's corpus-wide frequency.
type SequenceCountOp struct{}

func (SequenceCountOp) Task() Task     { return SequenceCount }
func (SequenceCountOp) Name() string   { return "seqcount" }
func (SequenceCountOp) Keys() KeySpace { return KeySequences }
func (SequenceCountOp) Scope() Scope   { return ScopeGlobal }
func (SequenceCountOp) NewFold(env Env) Fold {
	return &seqCountFold{env: env, out: map[Seq]uint64{}}
}

type seqCountFold struct {
	env Env
	out map[Seq]uint64
}

func (f *seqCountFold) Global(c Counts) error {
	f.env.Charge(c.Len(), metrics.CostHashOp)
	f.out = make(map[Seq]uint64, c.Len())
	c.Range(func(k, v uint64) bool { f.out[f.env.SeqOf(k)] = v; return true })
	return nil
}
func (f *seqCountFold) File(uint32, Counts) error { return errFoldScope }
func (f *seqCountFold) Finish() (any, error)      { return f.out, nil }

// RankedInvertedIndexOp maps every sequence to its postings ranked by
// frequency.
type RankedInvertedIndexOp struct{}

func (RankedInvertedIndexOp) Task() Task     { return RankedInvertedIndex }
func (RankedInvertedIndexOp) Name() string   { return "rankedindex" }
func (RankedInvertedIndexOp) Keys() KeySpace { return KeySequences }
func (RankedInvertedIndexOp) Scope() Scope   { return ScopePerFile }
func (RankedInvertedIndexOp) NewFold(env Env) Fold {
	return &rankedIndexFold{env: env, perDoc: map[uint64][]DocFreq{}}
}

type rankedIndexFold struct {
	env    Env
	perDoc map[uint64][]DocFreq
	merged map[Seq][]DocFreq // shard-merge accumulator; nil on the traversal path
}

func (f *rankedIndexFold) Global(Counts) error { return errFoldScope }
func (f *rankedIndexFold) File(doc uint32, c Counts) error {
	f.env.Charge(c.Len(), metrics.CostHashOp)
	c.Range(func(k, v uint64) bool {
		f.perDoc[k] = append(f.perDoc[k], DocFreq{Doc: doc, Freq: v})
		return true
	})
	return nil
}
func (f *rankedIndexFold) Finish() (any, error) {
	if f.merged != nil {
		out := make(map[Seq][]DocFreq, len(f.merged))
		for q, postings := range f.merged {
			f.env.Charge(int64(len(postings)), metrics.CostSortEntry)
			out[q] = RankPostingsSorted(postings)
		}
		return out, nil
	}
	out := make(map[Seq][]DocFreq, len(f.perDoc))
	for k, postings := range f.perDoc {
		f.env.Charge(int64(len(postings)), metrics.CostSortEntry)
		out[f.env.SeqOf(k)] = RankPostingsSorted(postings)
	}
	return out, nil
}

// MapCounts adapts a plain uint64-keyed count map.
type MapCounts map[uint64]uint64

func (m MapCounts) Len() int64 { return int64(len(m)) }
func (m MapCounts) Range(fn func(k, v uint64) bool) {
	//ntalint:ignore determcheck Counts.Range order is contractually unspecified; folds consume it commutatively and sort at Finish.
	for k, v := range m {
		if !fn(k, v) {
			return
		}
	}
}

// WordMapCounts adapts a word-keyed count map.
type WordMapCounts map[uint32]uint64

func (m WordMapCounts) Len() int64 { return int64(len(m)) }
func (m WordMapCounts) Range(fn func(k, v uint64) bool) {
	//ntalint:ignore determcheck Counts.Range order is contractually unspecified; folds consume it commutatively and sort at Finish.
	for k, v := range m {
		if !fn(uint64(k), v) {
			return
		}
	}
}

// KVCounts is a materialized Counts over parallel key/value slices.
type KVCounts struct {
	Keys []uint64
	Vals []uint64
}

func (c KVCounts) Len() int64 { return int64(len(c.Keys)) }
func (c KVCounts) Range(fn func(k, v uint64) bool) {
	for i, k := range c.Keys {
		if !fn(k, c.Vals[i]) {
			return
		}
	}
}

// SeqInterner assigns dense uint64 keys to sequences for one executor run.
// DRAM executors whose natural counters are Seq-keyed use it to satisfy the
// KeySequences key contract: Counts views carry interned keys, and SeqOf
// resolves them back.
type SeqInterner struct {
	ids  map[Seq]uint64
	seqs []Seq
}

// Key returns q's dense key, assigning the next one on first sight.
func (si *SeqInterner) Key(q Seq) uint64 {
	if si.ids == nil {
		si.ids = make(map[Seq]uint64)
	}
	id, ok := si.ids[q]
	if !ok {
		id = uint64(len(si.seqs))
		si.ids[q] = id
		si.seqs = append(si.seqs, q)
	}
	return id
}

// SeqOf resolves a key previously returned by Key.
func (si *SeqInterner) SeqOf(k uint64) Seq { return si.seqs[k] }

// Counts interns every key of m and returns a materialized view.  Keys are
// interned in canonical sequence order: interning straight off the map range
// would let Go's randomized iteration order pick the dense keys, so interned
// results (and everything keyed by them downstream) would differ between
// identical runs.
func (si *SeqInterner) Counts(m map[Seq]uint64) Counts {
	qs := make([]Seq, 0, len(m))
	for q := range m {
		qs = append(qs, q)
	}
	slices.SortFunc(qs, CompareSeq)
	kv := KVCounts{
		Keys: make([]uint64, 0, len(m)),
		Vals: make([]uint64, 0, len(m)),
	}
	for _, q := range qs {
		kv.Keys = append(kv.Keys, si.Key(q))
		kv.Vals = append(kv.Vals, m[q])
	}
	return kv
}
