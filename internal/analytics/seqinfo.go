package analytics

import (
	"github.com/text-analytics/ntadoc/internal/cfg"
)

// This file implements the grammar preprocessing shared by the compressed
// engines: top-down rule weights, bottom-up per-rule word lists, file
// segmentation of the root rule, and the head/tail sequence summaries of
// §IV-D that let sequence tasks run without expanding rules.

// RuleWeights computes how many times each rule is expanded across the whole
// corpus: weight(R0)=1, and every reference propagates its holder's weight —
// the top-down traversal of the paper's word-count example (Figure 1e).
func RuleWeights(g *cfg.Grammar) ([]uint64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	w := make([]uint64, len(g.Rules))
	w[0] = 1
	for _, ri := range order {
		for _, s := range g.Rules[ri] {
			if s.IsRule() {
				w[s.RuleIndex()] += w[ri]
			}
		}
	}
	return w, nil
}

// RuleWordLists computes each rule's word list — word -> frequency within a
// single expansion of the rule — bottom-up in reverse topological order, the
// paper's bottom-up traversal.  The returned maps are what the bottom-up
// summation technique (Alg 2) bounds: len(list[r]) <= bound(r) always.
func RuleWordLists(g *cfg.Grammar) ([]map[uint32]uint64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	lists := make([]map[uint32]uint64, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		list := make(map[uint32]uint64)
		for _, s := range g.Rules[ri] {
			switch {
			case s.IsWord():
				list[s.WordID()]++
			case s.IsRule():
				for w, c := range lists[s.RuleIndex()] {
					list[w] += c
				}
			}
		}
		lists[ri] = list
	}
	return lists, nil
}

// UpperBounds implements Algorithm 2, bottom-up summation: the upper bound
// of each rule's word-list length is the sum of its subrules' bounds (with
// multiplicity) plus its own word count.  The N-TADOC engine sizes every
// pool structure from these bounds so nothing is reconstructed on NVM.
func UpperBounds(g *cfg.Grammar) ([]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bounds := make([]int64, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		var b int64
		for _, s := range g.Rules[ri] {
			switch {
			case s.IsWord():
				b++
			case s.IsRule():
				b += bounds[s.RuleIndex()]
			}
		}
		bounds[ri] = b
	}
	return bounds, nil
}

// FileSegments splits the root rule at its separators: segment i is file
// i's top-level symbol sequence.
func FileSegments(g *cfg.Grammar) [][]cfg.Symbol {
	segs := make([][]cfg.Symbol, 0, g.NumFiles)
	body := g.Rules[0]
	start := 0
	for i, s := range body {
		if s.IsSep() {
			segs = append(segs, body[start:i])
			start = i + 1
		}
	}
	return segs
}

// SeqInfo summarizes one rule for sequence analytics: the n-grams internal
// to a single expansion, the expansion length, and the head/tail edge
// tokens (§IV-D).  Edge holds the full expansion when it is short enough
// that head and tail would overlap (Len <= 2*(SeqLen-1)); otherwise it holds
// head followed by tail with an implied gap between them — boundary-spanning
// windows reach at most SeqLen-1 tokens into a rule, so the gap is never
// observed.
type SeqInfo struct {
	Counts map[Seq]uint64
	Len    int64
	Edge   []uint32
	Split  bool // Edge is head+tail around a gap
}

// Head returns the first min(Len, SeqLen-1) expanded tokens.
func (si *SeqInfo) Head() []uint32 {
	n := int64(SeqLen - 1)
	if si.Len < n {
		n = si.Len
	}
	return si.Edge[:n]
}

// Tail returns the last min(Len, SeqLen-1) expanded tokens.
func (si *SeqInfo) Tail() []uint32 {
	n := int64(SeqLen - 1)
	if si.Len < n {
		n = si.Len
	}
	return si.Edge[int64(len(si.Edge))-n:]
}

// ComputeSeqInfo builds the per-rule sequence summaries bottom-up, including
// the cumulative Counts maps.  The root's Counts already exclude windows
// crossing file separators, so infos[0].Counts is the global sequence-count
// result.
func ComputeSeqInfo(g *cfg.Grammar) ([]*SeqInfo, error) {
	return computeSummaries(g, true)
}

// ComputeEdgeInfo builds the per-rule summaries without the cumulative
// Counts maps: only expansion lengths and head/tail edges.  This is all that
// local-window counting (BodySpanningCounts) needs, and it costs one linear
// pass instead of the full bottom-up merge.
func ComputeEdgeInfo(g *cfg.Grammar) ([]*SeqInfo, error) {
	return computeSummaries(g, false)
}

func computeSummaries(g *cfg.Grammar, withCounts bool) ([]*SeqInfo, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	infos := make([]*SeqInfo, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		infos[ri] = summarizeBody(g.Rules[ri], infos, withCounts)
	}
	return infos, nil
}

// summarizeBody computes the SeqInfo of a symbol sequence given summaries of
// every referenced rule.  It is used both per rule and per file segment.
func summarizeBody(body []cfg.Symbol, infos []*SeqInfo, withCounts bool) *SeqInfo {
	out := &SeqInfo{}
	if withCounts {
		out.Counts = make(map[Seq]uint64)
	}
	// Sum internal counts of referenced rules, then add boundary-spanning
	// windows via the edge stream.
	for _, s := range body {
		if s.IsRule() {
			child := infos[s.RuleIndex()]
			out.Len += child.Len
			if withCounts {
				for q, c := range child.Counts {
					out.Counts[q] += c
				}
			}
		} else if s.IsWord() {
			out.Len++
		}
		// Separators contribute nothing and are handled as hard breaks in
		// the stream walk below.
	}
	if withCounts {
		addSpanningWindows(body, infos, func(q Seq) { out.Counts[q]++ })
	}
	buildEdge(out, body, infos)
	return out
}

// streamToken is one token of the edge stream with provenance: which body
// position it came from and whether a gap immediately precedes it.
type streamToken struct {
	tok      uint32
	sym      int  // index into the body
	gapAfter bool // a gap follows this token (within a split symbol)
}

// appendStream appends symbol s's edge contribution to the stream.
func appendStream(stream []streamToken, symIdx int, s cfg.Symbol, infos []*SeqInfo) []streamToken {
	if s.IsWord() {
		return append(stream, streamToken{tok: s.WordID(), sym: symIdx})
	}
	info := infos[s.RuleIndex()]
	if !info.Split {
		for _, t := range info.Edge {
			stream = append(stream, streamToken{tok: t, sym: symIdx})
		}
		return stream
	}
	h := SeqLen - 1
	for i, t := range info.Edge {
		st := streamToken{tok: t, sym: symIdx}
		if i == h-1 {
			st.gapAfter = true
		}
		stream = append(stream, st)
	}
	return stream
}

// addSpanningWindows walks the body's edge stream and emits every window of
// SeqLen tokens that is contiguous in the underlying expansion (no gap, no
// separator) and spans at least two symbols — i.e. exactly the windows not
// already counted inside some rule's own Counts.
func addSpanningWindows(body []cfg.Symbol, infos []*SeqInfo, emit func(Seq)) {
	var stream []streamToken
	flush := func() {
		for i := 0; i+SeqLen <= len(stream); i++ {
			valid := true
			for j := 0; j < SeqLen-1; j++ {
				if stream[i+j].gapAfter {
					valid = false
					break
				}
			}
			if !valid || stream[i].sym == stream[i+SeqLen-1].sym {
				continue // gap inside, or internal to one symbol
			}
			var q Seq
			for j := 0; j < SeqLen; j++ {
				q[j] = stream[i+j].tok
			}
			emit(q)
		}
		stream = stream[:0]
	}
	for idx, s := range body {
		if s.IsSep() {
			flush() // separators break adjacency: windows never cross files
			continue
		}
		stream = appendStream(stream, idx, s, infos)
	}
	flush()
}

// buildEdge fills out.Edge/out.Split from the body.
func buildEdge(out *SeqInfo, body []cfg.Symbol, infos []*SeqInfo) {
	const keep = SeqLen - 1
	if out.Len <= 2*keep {
		// Short expansion: materialize it fully (it is at most 4 tokens).
		out.Edge = expandShort(body, infos, int(out.Len))
		out.Split = false
		return
	}
	// Long expansion: head = first keep tokens, tail = last keep tokens.
	head := make([]uint32, 0, keep)
	for _, s := range body {
		if len(head) == keep {
			break
		}
		if s.IsSep() {
			continue
		}
		if s.IsWord() {
			head = append(head, s.WordID())
			continue
		}
		h := infos[s.RuleIndex()].Head()
		for _, t := range h {
			if len(head) == keep {
				break
			}
			head = append(head, t)
		}
	}
	tail := make([]uint32, 0, keep)
	for i := len(body) - 1; i >= 0 && len(tail) < keep; i-- {
		s := body[i]
		if s.IsSep() {
			continue
		}
		if s.IsWord() {
			tail = append(tail, s.WordID())
			continue
		}
		tl := infos[s.RuleIndex()].Tail()
		for j := len(tl) - 1; j >= 0 && len(tail) < keep; j-- {
			tail = append(tail, tl[j])
		}
	}
	// tail was collected right-to-left; reverse it.
	for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
		tail[i], tail[j] = tail[j], tail[i]
	}
	out.Edge = append(head, tail...)
	out.Split = true
}

// expandShort materializes the full (short) expansion of a body.
func expandShort(body []cfg.Symbol, infos []*SeqInfo, n int) []uint32 {
	out := make([]uint32, 0, n)
	for _, s := range body {
		switch {
		case s.IsWord():
			out = append(out, s.WordID())
		case s.IsRule():
			// A short parent can only have short children, whose Edge is
			// their full expansion.
			out = append(out, infos[s.RuleIndex()].Edge...)
		}
	}
	return out
}

// BodySpanningCounts returns the n-grams that span at least two symbols of
// the given body (its "local" windows).  Every window of the full expansion
// belongs to exactly one rule occurrence this way, so global counts equal
// the root's local windows plus each rule's local windows times its weight —
// the decomposition the engines' weighted sequence counting relies on.
func BodySpanningCounts(body []cfg.Symbol, infos []*SeqInfo) map[Seq]uint64 {
	out := make(map[Seq]uint64)
	addSpanningWindows(body, infos, func(q Seq) { out[q]++ })
	return out
}

// SegmentSeqCounts computes one file's n-gram counts from its top-level
// segment and the per-rule summaries, without expanding any rule.
func SegmentSeqCounts(seg []cfg.Symbol, infos []*SeqInfo) map[Seq]uint64 {
	out := make(map[Seq]uint64)
	for _, s := range seg {
		if s.IsRule() {
			for q, c := range infos[s.RuleIndex()].Counts {
				out[q] += c
			}
		}
	}
	addSpanningWindows(seg, infos, func(q Seq) { out[q]++ })
	return out
}
