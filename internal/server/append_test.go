package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/text-analytics/ntadoc"
)

// newIngestServer builds a server over an appendable sharded engine.
func newIngestServer(t *testing.T, cfg Config) (*Server, *ntadoc.Engine) {
	t.Helper()
	a, err := ntadoc.CompressSharded(serverDocs, 2)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{IngestCapacity: 1 << 20})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg.Engine = eng
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, eng
}

func postAppend(t *testing.T, h http.Handler, req AppendRequest) (AppendResponse, *httptest.ResponseRecorder) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/append", bytes.NewReader(body)))
	var ack AppendResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
			t.Fatalf("decoding append ack: %v (body %q)", err, rec.Body.String())
		}
	}
	return ack, rec
}

// TestAppendInvalidatesCache commits an append through /v1/append and checks
// a cached pre-append result is never served afterwards: the generation is
// keyed by the corpus epoch, so the committed append forces a fresh
// traversal whose result includes the new document.
func TestAppendInvalidatesCache(t *testing.T) {
	s, _ := newIngestServer(t, Config{Sessions: 2})
	h := s.Handler()

	before, rec := getResponse(t, h, "/v1/query?task=wordcount")
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	// Warm the cache.
	warm, _ := getResponse(t, h, "/v1/query?task=wordcount")
	if !warm.Cached {
		t.Fatalf("second identical query not cached")
	}

	ack, rec := postAppend(t, h, AppendRequest{Documents: []AppendDocument{
		{Name: "live0", Text: "zyzzyva zyzzyva arrives in the quick corpus"},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	if ack.Appended != 1 || ack.Epoch == 0 {
		t.Fatalf("append ack = %+v", ack)
	}
	if ack.Generation == before.Generation {
		t.Fatalf("generation unchanged after committed append: %s", ack.Generation)
	}

	after, rec := getResponse(t, h, "/v1/query?task=wordcount")
	if rec.Code != http.StatusOK {
		t.Fatalf("query after append: %d %s", rec.Code, rec.Body.String())
	}
	if after.Cached {
		t.Fatal("pre-append result served from cache after committed append")
	}
	if after.Generation == before.Generation {
		t.Fatalf("query generation unchanged after append: %s", after.Generation)
	}
	var counts struct {
		WordCount map[string]uint64 `json:"wordcount"`
	}
	if err := json.Unmarshal(after.Result, &counts); err != nil {
		t.Fatal(err)
	}
	if counts.WordCount["zyzzyva"] != 2 {
		t.Errorf("appended word count = %d, want 2", counts.WordCount["zyzzyva"])
	}

	// The ingestion surface reflects the commit.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/ingest", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("/v1/ingest: %d", rec2.Code)
	}
	var info IngestInfo
	if err := json.Unmarshal(rec2.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Batches != 1 || info.AppendedDocs != 1 || info.Documents != len(serverDocs)+1 {
		t.Errorf("ingest info = %+v", info)
	}
	if n := len(info.LastDocuments); n == 0 || info.LastDocuments[n-1] != "live0" {
		t.Errorf("LastDocuments = %v, want trailing live0", info.LastDocuments)
	}
}

// TestAppendErrors checks the append error surface: bad bodies, unnamed
// documents, and engines without ingestion support.
func TestAppendErrors(t *testing.T) {
	s, _ := newIngestServer(t, Config{Sessions: 1})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/append", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/append = %d", rec.Code)
	}

	_, rec2 := postAppend(t, h, AppendRequest{})
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("empty append = %d", rec2.Code)
	}
	_, rec3 := postAppend(t, h, AppendRequest{Documents: []AppendDocument{{Text: "unnamed"}}})
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("unnamed document = %d", rec3.Code)
	}

	// A server over a non-ingesting engine refuses appends with 501.
	plain, _ := newTestServer(t, Config{Sessions: 1})
	_, rec4 := postAppend(t, plain.Handler(), AppendRequest{Documents: []AppendDocument{
		{Name: "x", Text: "hello"},
	}})
	if rec4.Code != http.StatusNotImplemented {
		t.Errorf("append without ingestion = %d", rec4.Code)
	}
}
