package server

import (
	"context"
	"errors"

	"sync"

	"github.com/text-analytics/ntadoc"
)

// Pool admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrOverloaded reports that the admission queue is full: the request
	// is shed immediately (429) rather than adding unbounded latency.
	ErrOverloaded = errors.New("server: session pool overloaded")
	// ErrRecovering reports that the pool is quiesced for engine recovery;
	// requests arriving meanwhile are refused (503) and should retry.
	ErrRecovering = errors.New("server: engine recovering")
)

// sessionPool is the admission-controlled pool of query sessions.  Capacity
// bounds concurrent traversals (each session runs one batch at a time); the
// queue depth bounds how many requests may wait for a session before the
// pool starts shedding load.  drain/refill quiesce the pool around engine
// recovery: drain collects every session (waiting out in-flight batches),
// and refill installs fresh sessions over the recovered engine — the old
// ones may reference shard engines retired by a failover.
type sessionPool struct {
	slots chan *ntadoc.QuerySession
	size  int

	mu       sync.Mutex
	waiting  int  // guarded by mu
	draining bool // guarded by mu
	depth    int
}

// newSessionPool opens size sessions over eng up front.
func newSessionPool(eng *ntadoc.Engine, size, depth int) (*sessionPool, error) {
	p := &sessionPool{slots: make(chan *ntadoc.QuerySession, size), size: size, depth: depth}
	for i := 0; i < size; i++ {
		s, err := eng.NewSession()
		if err != nil {
			return nil, err
		}
		p.slots <- s
	}
	return p, nil
}

// admit makes the admission decision under mu: an idle session (fast
// path), an admission error, or (nil, nil) meaning the caller is counted
// as a waiter and may block for a session.
//
// The draining check runs before any channel receive, so once drain begins
// no new request can take a session; requests already queued may still win
// one released by an in-flight batch — that is safe (recovery starts only
// after drain holds all sessions) and finite (the waiter set only shrinks).
func (p *sessionPool) admit() (*ntadoc.QuerySession, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, ErrRecovering
	}
	select {
	case s := <-p.slots:
		return s, nil
	default:
	}
	if p.waiting >= p.depth {
		return nil, ErrOverloaded
	}
	p.waiting++
	return nil, nil
}

// unqueue removes an admitted waiter.
func (p *sessionPool) unqueue() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waiting--
}

// acquire borrows a session, queueing up to the admission depth.  It fails
// fast with ErrOverloaded when the queue is full, ErrRecovering while the
// pool is quiesced, and ctx.Err() if the request dies while queued.
func (p *sessionPool) acquire(ctx context.Context) (*ntadoc.QuerySession, error) {
	s, err := p.admit()
	if err != nil || s != nil {
		return s, err
	}
	defer p.unqueue()
	select {
	case s := <-p.slots:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a borrowed session.
func (p *sessionPool) release(s *ntadoc.QuerySession) {
	p.slots <- s
}

// idle reports the number of sessions not currently borrowed.
func (p *sessionPool) idle() int { return len(p.slots) }

// queued reports the number of requests waiting for a session.
func (p *sessionPool) queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waiting
}

// drain quiesces the pool: new acquires are refused, and drain blocks until
// it holds every session — i.e. until all in-flight batches have finished.
func (p *sessionPool) drain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	for i := 0; i < p.size; i++ {
		<-p.slots
	}
}

// refill installs fresh sessions after recovery and reopens admission.
// On error the pool stays quiesced; the server marks itself down.
func (p *sessionPool) refill(eng *ntadoc.Engine) error {
	for i := 0; i < p.size; i++ {
		s, err := eng.NewSession()
		if err != nil {
			return err
		}
		p.slots <- s
	}
	p.mu.Lock()
	p.draining = false
	p.mu.Unlock()
	return nil
}
