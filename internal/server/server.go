package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/text-analytics/ntadoc"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the loaded engine the server fronts (required).  The
	// server owns its query scheduling: nothing else may run engine task
	// methods or Close while the server is serving.
	Engine *ntadoc.Engine
	// Sessions bounds concurrent traversals: the size of the query-session
	// pool (default 8).
	Sessions int
	// QueueDepth bounds requests waiting for a session before the server
	// sheds load with 429 (default 4x Sessions).
	QueueDepth int
	// CacheEntries bounds the result cache (default 512; 0 disables).
	CacheEntries int
	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// HandlerDelay, when non-zero, sleeps each query handler before
	// execution.  Test hook only: the e2e harness uses it to hold requests
	// in flight across a SIGTERM and observe the graceful drain.
	HandlerDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Sessions
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server serves analytics batches over a loaded archive.  One archive open
// is amortized across every request: concurrent queries borrow read-only
// sessions from the pool (admission-controlled), identical in-flight
// batches coalesce into one traversal, and hot results are served from an
// LRU cache keyed by (generation, canonical batch signature).
//
// When a query session surfaces a device failure (a dead shard primary),
// the server quiesces the pool, drives the engine's failover recovery, and
// bumps the cache generation — no result computed against the dead primary
// can be served after recovery.
type Server struct {
	cfg Config
	eng *ntadoc.Engine

	pool  *sessionPool
	cache *resultCache
	coal  *coalescer

	// appendMu serializes /v1/append admissions; queries never take it.
	appendMu sync.Mutex

	// gen counts recovery epochs; the cache generation string combines it
	// with the archive build tag.
	gen atomic.Uint64
	// down latches when recovery fails: the engine lost a shard with no
	// follower left, so the server can only refuse traffic.
	down atomic.Bool

	// recoverMu serializes recoveries; recoverBusy dedupes triggers from
	// concurrent failed requests.
	recoverMu   sync.Mutex
	recoverBusy atomic.Bool

	// execute runs one batch on a pooled session; tests override it to
	// inject failures the simulated read path cannot produce.
	execute func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error)

	// Serving counters, exported via /metrics.
	reqOK        atomic.Int64
	reqErr       atomic.Int64
	reqShed      atomic.Int64
	reqCanceled  atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	recoveries   atomic.Int64
	appendsOK    atomic.Int64
	appendsErr   atomic.Int64
	docsIngested atomic.Int64
}

// New builds a server over a loaded engine, opening its session pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: no engine")
	}
	pool, err := newSessionPool(cfg.Engine, cfg.Sessions, cfg.QueueDepth)
	if err != nil {
		return nil, fmt.Errorf("server: opening session pool: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		eng:   cfg.Engine,
		pool:  pool,
		cache: newResultCache(cfg.CacheEntries),
		coal:  newCoalescer(),
	}
	s.execute = func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error) {
		return sess.RunSpec(ctx, spec)
	}
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleBatch)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/append", s.handleAppend)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/engine", s.handleDebug)
	return mux
}

// Generation identifies the archive build, recovery epoch, and corpus
// epoch: results and cache keys are scoped to it.  It changes whenever the
// engine recovers from a failure and whenever an append batch commits or a
// compaction runs — a committed append is therefore never masked by a
// cached pre-append result.
func (s *Server) Generation() string {
	return fmt.Sprintf("%08x.%d.%d", s.eng.BuildTag(), s.gen.Load(), s.eng.CorpusEpoch())
}

// parseRequest accepts GET query parameters or a POST JSON body.
func parseRequest(r *http.Request) (Request, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req := Request{Task: q.Get("task"), Tasks: q["tasks"]}
		if ks := q.Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				return Request{}, fmt.Errorf("bad k: %v", err)
			}
			req.TermVectorK = k
		}
		return req, nil
	case http.MethodPost:
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return Request{}, fmt.Errorf("bad request body: %v", err)
		}
		return req, nil
	default:
		return Request{}, fmt.Errorf("method %s not allowed", r.Method)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		s.reqErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		s.reqErr.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.serve(w, r, spec)
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request, spec ntadoc.BatchSpec) {
	if s.down.Load() {
		s.reqErr.Add(1)
		http.Error(w, "engine down: unrecoverable device failure", http.StatusServiceUnavailable)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if d := s.cfg.HandlerDelay; d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}

	gen := s.Generation()
	key := gen + "|" + spec.Signature()
	if body, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		s.reqOK.Add(1)
		s.writeResponse(w, gen, spec, body, true, false)
		return
	}
	s.cacheMisses.Add(1)

	body, shared, err := s.coal.do(ctx, key, func() ([]byte, error) {
		sess, err := s.pool.acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer s.pool.release(sess)
		res, err := s.execute(ctx, sess, spec)
		if err != nil {
			return nil, err
		}
		// The name table is re-snapshotted per execution: appends extend
		// it, and a result computed at epoch N names documents from the
		// table as of N.
		b, err := EncodeResult(res, s.eng.DocumentNames())
		if err != nil {
			return nil, err
		}
		s.cache.put(key, b)
		return b, nil
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if shared {
		s.coalesced.Add(1)
	}
	s.reqOK.Add(1)
	s.writeResponse(w, gen, spec, body, false, shared)
}

func (s *Server) writeResponse(w http.ResponseWriter, gen string, spec ntadoc.BatchSpec, body []byte, cached, coalesced bool) {
	w.Header().Set("Content-Type", "application/json")
	resp := Response{
		Generation: gen,
		Signature:  spec.Signature(),
		Cached:     cached,
		Coalesced:  coalesced,
		Result:     body,
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(&resp) // client gone: nothing useful to do
}

// fail maps an execution error to its HTTP status, triggering recovery on
// device failures.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case err == ErrOverloaded:
		s.reqShed.Add(1)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err == ErrRecovering:
		s.reqErr.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case r.Context().Err() != nil:
		// The client disconnected; the batch was canceled on its behalf.
		s.reqCanceled.Add(1)
	case ctxErr(err):
		s.reqErr.Add(1)
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case ntadoc.IsDeviceFailure(err):
		s.reqErr.Add(1)
		s.triggerRecovery()
		http.Error(w, "device failure, recovering", http.StatusServiceUnavailable)
	default:
		s.reqErr.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// triggerRecovery starts one background recovery; concurrent failures while
// it runs fold into the same attempt.
func (s *Server) triggerRecovery() {
	if !s.recoverBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.recoverBusy.Store(false)
		s.recoverNow()
	}()
}

// recoverNow quiesces the session pool, drives the engine's failover
// recovery, and — on success — installs fresh sessions and a new cache
// generation.  If recovery fails (no follower left) the server latches
// down.
func (s *Server) recoverNow() {
	s.recoverMu.Lock()
	defer s.recoverMu.Unlock()
	if s.down.Load() {
		return
	}
	s.pool.drain()
	if err := s.eng.Recover(); err != nil {
		s.down.Store(true)
		return
	}
	if err := s.pool.refill(s.eng); err != nil {
		s.down.Store(true)
		return
	}
	s.gen.Add(1)
	s.cache.purge()
	s.recoveries.Add(1)
}

// handleAppend admits one append batch: the documents are tokenized and
// committed durably as a unit, and the response carries the corpus epoch
// the batch became visible at.  Appends are serialized server-side; they
// never block in-flight queries (each query finishes on its pinned corpus
// cut).  A compaction swap in progress maps to 503 + Retry-After, so
// clients simply retry; a full append log maps to 507 (the corpus must be
// recompressed).
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.down.Load() {
		s.appendsErr.Add(1)
		http.Error(w, "engine down: unrecoverable device failure", http.StatusServiceUnavailable)
		return
	}
	var req AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.appendsErr.Add(1)
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Documents) == 0 {
		s.appendsErr.Add(1)
		http.Error(w, "no documents", http.StatusBadRequest)
		return
	}
	docs := make([]ntadoc.Document, len(req.Documents))
	for i, d := range req.Documents {
		if d.Name == "" {
			s.appendsErr.Add(1)
			http.Error(w, fmt.Sprintf("document %d has no name", i), http.StatusBadRequest)
			return
		}
		docs[i] = ntadoc.Document{Name: d.Name, Text: d.Text}
	}
	s.appendMu.Lock()
	err := s.eng.Append(docs)
	s.appendMu.Unlock()
	switch {
	case errors.Is(err, ntadoc.ErrCompacting):
		s.appendsErr.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "compaction in progress; retry append", http.StatusServiceUnavailable)
		return
	case errors.Is(err, ntadoc.ErrIngestFull):
		s.appendsErr.Add(1)
		http.Error(w, "append log full; recompress the corpus", http.StatusInsufficientStorage)
		return
	case errors.Is(err, ntadoc.ErrNoIngest):
		s.appendsErr.Add(1)
		http.Error(w, "engine built without ingestion support", http.StatusNotImplemented)
		return
	case err != nil:
		s.appendsErr.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.appendsOK.Add(1)
	s.docsIngested.Add(int64(len(docs)))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(AppendResponse{
		Appended:   len(docs),
		Epoch:      s.eng.CorpusEpoch(),
		Generation: s.Generation(),
	})
}

// handleIngest reports the live ingestion state — what `ntadoc tail` polls.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	st := s.eng.IngestStats()
	names := s.eng.DocumentNames()
	info := IngestInfo{
		Generation:    s.Generation(),
		Epoch:         s.eng.CorpusEpoch(),
		Documents:     len(names),
		Batches:       st.Batches,
		AppendedDocs:  st.AppendedDocs,
		LogBytes:      st.LogBytes,
		LogCapacity:   st.LogCapacity,
		DeltaDocs:     st.DeltaDocs,
		DeltaSymbols:  st.DeltaSymbols,
		CompactedDocs: uint64(st.CompactedDocs),
		Compactions:   st.Compactions,
	}
	if n := len(names); n > 0 {
		// The tail of the name table lets a follower print newly appended
		// documents without shipping the whole corpus each poll.
		tail := n - maxIngestNames
		if tail < 0 {
			tail = 0
		}
		info.LastDocuments = names[tail:]
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

// maxIngestNames bounds the name tail /v1/ingest returns.
const maxIngestNames = 32

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.down.Load() {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics writes Prometheus-style text: serving counters plus the
// modeled instrumentation (phase spans, device statistics) the evaluation
// harness reads.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("# HELP ntadoc_requests_total Served requests by outcome.")
	p("# TYPE ntadoc_requests_total counter")
	p(`ntadoc_requests_total{outcome="ok"} %d`, s.reqOK.Load())
	p(`ntadoc_requests_total{outcome="error"} %d`, s.reqErr.Load())
	p(`ntadoc_requests_total{outcome="shed"} %d`, s.reqShed.Load())
	p(`ntadoc_requests_total{outcome="canceled"} %d`, s.reqCanceled.Load())
	p("# TYPE ntadoc_cache_hits_total counter")
	p("ntadoc_cache_hits_total %d", s.cacheHits.Load())
	p("# TYPE ntadoc_cache_misses_total counter")
	p("ntadoc_cache_misses_total %d", s.cacheMisses.Load())
	p("# TYPE ntadoc_coalesced_total counter")
	p("ntadoc_coalesced_total %d", s.coalesced.Load())
	p("# TYPE ntadoc_recoveries_total counter")
	p("ntadoc_recoveries_total %d", s.recoveries.Load())
	p("# TYPE ntadoc_failovers_total counter")
	p("ntadoc_failovers_total %d", s.eng.FailoverCount())
	p("# TYPE ntadoc_sessions_idle gauge")
	p("ntadoc_sessions_idle %d", s.pool.idle())
	p("# TYPE ntadoc_sessions_queued gauge")
	p("ntadoc_sessions_queued %d", s.pool.queued())
	p("# TYPE ntadoc_cache_entries gauge")
	p("ntadoc_cache_entries %d", s.cache.len())
	p("# HELP ntadoc_cache_bytes Total bytes of cached result bodies.")
	p("# TYPE ntadoc_cache_bytes gauge")
	p("ntadoc_cache_bytes %d", s.cache.size())
	p("# TYPE ntadoc_generation_epoch gauge")
	p("ntadoc_generation_epoch %d", s.gen.Load())
	p("# HELP ntadoc_corpus_epoch Committed append batches plus compactions.")
	p("# TYPE ntadoc_corpus_epoch counter")
	p("ntadoc_corpus_epoch %d", s.eng.CorpusEpoch())
	p("# TYPE ntadoc_appends_total counter")
	p(`ntadoc_appends_total{outcome="ok"} %d`, s.appendsOK.Load())
	p(`ntadoc_appends_total{outcome="error"} %d`, s.appendsErr.Load())
	p("# TYPE ntadoc_appended_documents_total counter")
	p("ntadoc_appended_documents_total %d", s.docsIngested.Load())

	ing := s.eng.IngestStats()
	p("# HELP ntadoc_ingest Live ingestion state summed across shards.")
	p("# TYPE ntadoc_ingest gauge")
	p(`ntadoc_ingest{stat="batches"} %d`, ing.Batches)
	p(`ntadoc_ingest{stat="appended_docs"} %d`, ing.AppendedDocs)
	p(`ntadoc_ingest{stat="log_bytes"} %d`, ing.LogBytes)
	p(`ntadoc_ingest{stat="log_capacity"} %d`, ing.LogCapacity)
	p(`ntadoc_ingest{stat="delta_docs"} %d`, ing.DeltaDocs)
	p(`ntadoc_ingest{stat="delta_symbols"} %d`, ing.DeltaSymbols)
	p(`ntadoc_ingest{stat="compacted_docs"} %d`, ing.CompactedDocs)
	p(`ntadoc_ingest{stat="compactions"} %d`, ing.Compactions)

	init, trav := s.eng.PhaseTimes()
	p("# HELP ntadoc_phase_modeled_nanos Modeled time of the last task's phases.")
	p("# TYPE ntadoc_phase_modeled_nanos gauge")
	p(`ntadoc_phase_modeled_nanos{phase="initialization"} %d`, init.Nanoseconds())
	p(`ntadoc_phase_modeled_nanos{phase="traversal"} %d`, trav.Nanoseconds())
	dev, dram := s.eng.MemoryFootprint()
	p("# TYPE ntadoc_footprint_bytes gauge")
	p(`ntadoc_footprint_bytes{tier="device"} %d`, dev)
	p(`ntadoc_footprint_bytes{tier="dram"} %d`, dram)

	st := s.eng.DeviceCounters()
	p("# HELP ntadoc_device Simulated device counters summed across shards.")
	p("# TYPE ntadoc_device counter")
	p(`ntadoc_device{counter="reads"} %d`, st.Reads)
	p(`ntadoc_device{counter="writes"} %d`, st.Writes)
	p(`ntadoc_device{counter="bytes_read"} %d`, st.BytesRead)
	p(`ntadoc_device{counter="bytes_written"} %d`, st.BytesWritten)
	p(`ntadoc_device{counter="granule_reads"} %d`, st.GranuleReads)
	p(`ntadoc_device{counter="granule_writes"} %d`, st.GranuleWrites)
	p(`ntadoc_device{counter="cache_hits"} %d`, st.CacheHits)
	p(`ntadoc_device{counter="cache_misses"} %d`, st.CacheMisses)
	p(`ntadoc_device{counter="flushes"} %d`, st.Flushes)
	p(`ntadoc_device{counter="drains"} %d`, st.Drains)
	p(`ntadoc_device{counter="seeks"} %d`, st.Seeks)
	p(`ntadoc_device{counter="modeled_nanos"} %d`, st.ModeledNanos)
}

// handleDebug reports shard, replica, planner, pool, and cache state.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	type poolInfo struct {
		Sessions   int `json:"sessions"`
		Idle       int `json:"idle"`
		Queued     int `json:"queued"`
		QueueDepth int `json:"queue_depth"`
	}
	type cacheInfo struct {
		Entries int `json:"entries"`
		Max     int `json:"max"`
	}
	info := struct {
		Generation string    `json:"generation"`
		BuildTag   string    `json:"build_tag"`
		Down       bool      `json:"down"`
		Shards     int       `json:"shards"`
		Documents  []string  `json:"documents"`
		Strategies []string  `json:"planner_strategies"`
		Replicas   []int     `json:"live_followers,omitempty"`
		Failovers  int       `json:"failovers"`
		Recoveries int64     `json:"recoveries"`
		Pool       poolInfo  `json:"pool"`
		Cache      cacheInfo `json:"cache"`
	}{
		Generation: s.Generation(),
		BuildTag:   fmt.Sprintf("%08x", s.eng.BuildTag()),
		Down:       s.down.Load(),
		Shards:     s.eng.NumShards(),
		Documents:  s.eng.DocumentNames(),
		Strategies: s.eng.ShardStrategies(),
		Replicas:   s.eng.LiveFollowers(),
		Failovers:  s.eng.FailoverCount(),
		Recoveries: s.recoveries.Load(),
		Pool: poolInfo{
			Sessions:   s.cfg.Sessions,
			Idle:       s.pool.idle(),
			Queued:     s.pool.queued(),
			QueueDepth: s.cfg.QueueDepth,
		},
		Cache: cacheInfo{Entries: s.cache.len(), Max: s.cfg.CacheEntries},
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&info)
}
