package server

import (
	"context"
	"errors"
	"sync"
)

// coalescer deduplicates identical in-flight batches (singleflight): the
// first request for a canonical batch signature becomes the leader and
// executes it, every concurrent identical request waits for the leader's
// result and shares its bytes.  Under a burst of identical queries the
// engine traverses once, not N times — the serving-layer analogue of the
// kernel's fused batches.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight // guarded by mu
}

// flight is one in-progress execution; done closes after body/err are set.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// do executes fn once per key among concurrent callers.  It reports whether
// the result was shared from another request's flight.  A follower whose
// own ctx dies while waiting unwinds with ctx.Err().  If the leader's
// execution died of the *leader's* cancellation or deadline, its error is
// not forced onto followers: a still-live follower retries and becomes the
// new leader.
func (c *coalescer) do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	for {
		f, leader := c.lookupOrRegister(key)
		if !leader {
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			if ctxErr(f.err) && ctx.Err() == nil {
				continue // leader's request died, ours is live: take over
			}
			return f.body, true, f.err
		}

		f.body, f.err = fn()

		c.unregister(key)
		close(f.done)
		return f.body, false, f.err
	}
}

// lookupOrRegister returns the in-progress flight for key, or registers a
// new one and reports the caller as its leader.
func (c *coalescer) lookupOrRegister(key string) (f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// unregister removes a finished flight.
func (c *coalescer) unregister(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flights, key)
}

// ctxErr reports whether err is a context cancellation or deadline.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
