package server

import (
	"container/list"
	"sync"
)

// resultCache is an LRU cache of marshaled result bodies keyed by
// (generation, canonical batch signature).  The generation is part of the
// key, so bumping it on recovery or reopen instantly invalidates every
// cached result from the previous epoch; purge additionally drops the stale
// entries rather than waiting for LRU pressure to evict them.
type resultCache struct {
	max int

	mu    sync.Mutex
	ll    *list.List               // guarded by mu; front = most recent
	ent   map[string]*list.Element // guarded by mu
	bytes int64                    // guarded by mu: sum of cached body sizes
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), ent: make(map[string]*list.Element)}
}

// get returns the cached body for key, refreshing its recency.  The bytes
// are shared and must not be mutated by callers.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts or refreshes key, evicting the least recently used entry past
// capacity.
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		return
	}
	c.ent[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		ent := el.Value.(*cacheEntry)
		delete(c.ent, ent.key)
		c.bytes -= int64(len(ent.body))
	}
}

// purge drops every entry.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.ent)
	c.bytes = 0
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size reports the total bytes of cached result bodies.
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
