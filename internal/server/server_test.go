package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

var serverDocs = []ntadoc.Document{
	{Name: "d0", Text: "the quick brown fox jumps over the lazy dog again and again"},
	{Name: "d1", Text: "the quick brown fox naps while the lazy dog jumps"},
	{Name: "d2", Text: "a lazy dog and a quick fox share the quick brown field"},
	{Name: "d3", Text: "entirely unrelated words appear here once in a while"},
	{Name: "d4", Text: "the quick brown fox jumps over the lazy dog once more"},
	{Name: "d5", Text: "words appear here once more while the fox naps"},
}

// newTestServer builds a server over a sharded, replicated engine (so the
// recovery path has a follower to fall back on).
func newTestServer(t *testing.T, cfg Config) (*Server, *ntadoc.Engine) {
	t.Helper()
	a, err := ntadoc.CompressSharded(serverDocs, 2)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{Replicas: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg.Engine = eng
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, eng
}

func getResponse(t *testing.T, h http.Handler, url string) (Response, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	var resp Response
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, rec.Body.String())
		}
	}
	return resp, rec
}

// TestServeBitParity checks that every task served over HTTP is
// byte-identical to direct library execution, for each of the six ops and a
// fused batch, over both GET and POST forms.
func TestServeBitParity(t *testing.T) {
	s, eng := newTestServer(t, Config{})
	h := s.Handler()
	docs := eng.DocumentNames()

	batches := [][]string{
		{"wordcount"}, {"sort"}, {"termvector"}, {"invertedindex"},
		{"seqcount"}, {"rankedindex"},
		{"wordcount", "sort", "termvector", "invertedindex", "seqcount", "rankedindex"},
	}
	for _, names := range batches {
		spec, err := ntadoc.ParseBatchSpec(names, 0)
		if err != nil {
			t.Fatalf("ParseBatchSpec(%v): %v", names, err)
		}
		direct, err := eng.RunSpec(spec)
		if err != nil {
			t.Fatalf("RunSpec(%v): %v", names, err)
		}
		want, err := EncodeResult(direct, docs)
		if err != nil {
			t.Fatalf("EncodeResult: %v", err)
		}

		url := "/v1/query?task=" + strings.Join(names, ",")
		resp, rec := getResponse(t, h, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		if resp.Signature != spec.Signature() {
			t.Errorf("GET %s: signature %q, want %q", url, resp.Signature, spec.Signature())
		}
		if !bytes.Equal(resp.Result, want) {
			t.Errorf("GET %s: result differs from direct execution\n got %s\nwant %s", url, resp.Result, want)
		}

		body, _ := json.Marshal(Request{Tasks: names})
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("POST %v: status %d: %s", names, rec.Code, rec.Body.String())
		}
		var presp Response
		if err := json.Unmarshal(rec.Body.Bytes(), &presp); err != nil {
			t.Fatalf("decoding POST response: %v", err)
		}
		if !bytes.Equal(presp.Result, want) {
			t.Errorf("POST %v: result differs from direct execution", names)
		}
	}

	// The k parameter must reach the term vectors.
	spec, _ := ntadoc.ParseBatchSpec([]string{"termvector"}, 2)
	direct, err := eng.RunSpec(spec)
	if err != nil {
		t.Fatalf("RunSpec(termvector@2): %v", err)
	}
	want, _ := EncodeResult(direct, docs)
	resp, rec := getResponse(t, h, "/v1/query?task=termvector&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("termvector k=2: status %d", rec.Code)
	}
	if resp.Signature != "termvector@k=2" {
		t.Errorf("signature %q, want termvector@k=2", resp.Signature)
	}
	if !bytes.Equal(resp.Result, want) {
		t.Errorf("termvector k=2 differs from direct execution")
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	for _, url := range []string{"/v1/query", "/v1/query?task=bogus", "/v1/query?task=wordcount&k=x"} {
		_, rec := getResponse(t, h, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", url, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/query", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("DELETE: status %d, want 400", rec.Code)
	}
}

// TestCacheHitAndRecoveryInvalidation checks the LRU serves repeated batches
// without touching the engine, and that a device failure surfaced by a query
// bumps the generation and drops every cached result.
func TestCacheHitAndRecoveryInvalidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	first, rec := getResponse(t, h, "/v1/query?task=wordcount,sort")
	if rec.Code != http.StatusOK || first.Cached {
		t.Fatalf("first: status %d cached %v", rec.Code, first.Cached)
	}
	// The canonicalized permutation must hit the same cache entry.
	second, rec := getResponse(t, h, "/v1/query?task=sort,wordcount,sort")
	if rec.Code != http.StatusOK {
		t.Fatalf("second: status %d", rec.Code)
	}
	if !second.Cached {
		t.Error("second identical batch not served from cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Error("cached result differs")
	}
	if second.Generation != first.Generation {
		t.Errorf("generation changed without recovery: %q vs %q", second.Generation, first.Generation)
	}

	// Inject a device failure into the next execution: the simulated read
	// path cannot produce one organically (fail points fire on writes), so
	// the seam stands in for a shard primary dying mid-query.
	run := s.execute
	var injected atomic.Bool
	s.execute = func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error) {
		if injected.CompareAndSwap(false, true) {
			return nil, fmt.Errorf("shard 0: %w", nvm.ErrFailPoint)
		}
		return run(ctx, sess, spec)
	}
	_, rec = getResponse(t, h, "/v1/query?task=seqcount")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed query: status %d, want 503", rec.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.recoveries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery did not complete")
		}
		time.Sleep(time.Millisecond)
	}

	third, rec := getResponse(t, h, "/v1/query?task=sort,wordcount")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery: status %d: %s", rec.Code, rec.Body.String())
	}
	if third.Cached {
		t.Error("post-recovery result served from stale cache")
	}
	if third.Generation == first.Generation {
		t.Errorf("generation %q did not change across recovery", third.Generation)
	}
	if !bytes.Equal(third.Result, first.Result) {
		t.Error("post-recovery result differs from pre-recovery")
	}
	if got := s.pool.idle(); got != s.cfg.Sessions {
		t.Errorf("pool idle = %d after recovery, want %d", got, s.cfg.Sessions)
	}
}

// TestCoalescing checks a burst of identical batches traverses once: the
// leader executes, concurrent followers share its bytes (or hit the cache if
// they arrive after it lands).
func TestCoalescing(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	run := s.execute
	var execs atomic.Int64
	entered := make(chan struct{})
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error) {
		if execs.Add(1) == 1 {
			close(entered)
		}
		<-gate
		return run(ctx, sess, spec)
	}

	const n = 8
	type out struct {
		resp Response
		code int
	}
	results := make([]out, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0].resp, results[0].code = func() (Response, int) {
			r, rec := getResponse(t, h, "/v1/query?task=invertedindex")
			return r, rec.Code
		}()
	}()
	<-entered // leader is mid-execution and holds the flight
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, rec := getResponse(t, h, "/v1/query?task=invertedindex")
			results[i] = out{r, rec.Code}
		}(i)
	}
	// Give the followers a moment to reach the coalescer, then release.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	var shared int
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.code)
		}
		if !bytes.Equal(r.resp.Result, results[0].resp.Result) {
			t.Errorf("request %d: result differs", i)
		}
		if r.resp.Coalesced || r.resp.Cached {
			shared++
		}
	}
	if got := execs.Load(); got >= n {
		t.Errorf("%d executions for %d identical requests; coalescing did nothing", got, n)
	}
	if shared == 0 {
		t.Error("no request reported a shared (coalesced or cached) result")
	}
}

// TestOverloadSheds checks admission control: with the pool busy and the
// queue full, the next request is refused immediately with 429.
func TestOverloadSheds(t *testing.T) {
	s, _ := newTestServer(t, Config{Sessions: 1, QueueDepth: 1, CacheEntries: -1})
	h := s.Handler()

	run := s.execute
	entered := make(chan struct{})
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error) {
		entered <- struct{}{}
		<-gate
		return run(ctx, sess, spec)
	}

	codes := make(chan int, 2)
	go func() {
		_, rec := getResponse(t, h, "/v1/query?task=wordcount")
		codes <- rec.Code
	}()
	<-entered // request 1 holds the only session
	go func() {
		_, rec := getResponse(t, h, "/v1/query?task=sort")
		codes <- rec.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.queued() != 1 { // request 2 occupies the queue slot
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, rec := getResponse(t, h, "/v1/query?task=seqcount")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", rec.Code)
	}
	if s.reqShed.Load() != 1 {
		t.Errorf("reqShed = %d, want 1", s.reqShed.Load())
	}

	close(gate)
	<-entered // request 2 reaches execution
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("queued request: status %d, want 200", code)
		}
	}
	if got := s.pool.idle(); got != 1 {
		t.Errorf("pool idle = %d, want 1", got)
	}
}

// TestClientDisconnect checks that a client giving up mid-batch cancels the
// execution, is not written a response, and leaves the pool fully reusable.
func TestClientDisconnect(t *testing.T) {
	s, _ := newTestServer(t, Config{Sessions: 1, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := s.execute
	entered := make(chan struct{}, 1)
	s.execute = func(ctx context.Context, sess *ntadoc.QuerySession, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, error) {
		entered <- struct{}{}
		<-ctx.Done() // hold the session until the request dies
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/query?task=rankedindex", nil)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.reqCanceled.Load() == 0 || s.pool.idle() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("after disconnect: canceled=%d idle=%d, want 1/1",
				s.reqCanceled.Load(), s.pool.idle())
		}
		time.Sleep(time.Millisecond)
	}

	// The pool must be reusable: the next request runs for real.
	s.execute = run
	resp, err := http.Get(ts.URL + "/v1/query?task=rankedindex")
	if err != nil {
		t.Fatalf("follow-up request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: status %d", resp.StatusCode)
	}
}

// TestConcurrentSessions drives well past 64 concurrent requests with unique
// batch signatures (defeating cache and coalescer) and checks every one
// succeeds and every session comes home.
func TestConcurrentSessions(t *testing.T) {
	const sessions, requests = 64, 128
	s, _ := newTestServer(t, Config{Sessions: sessions, QueueDepth: requests, CacheEntries: -1})
	h := s.Handler()

	var wg sync.WaitGroup
	errs := make(chan string, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique k per request: every request is its own flight.
			url := fmt.Sprintf("/v1/query?task=termvector&k=%d", i+1)
			_, rec := getResponse(t, h, url)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := s.pool.idle(); got != sessions {
		t.Errorf("pool idle = %d, want %d (leaked sessions)", got, sessions)
	}
	if got := s.pool.queued(); got != 0 {
		t.Errorf("pool queued = %d, want 0", got)
	}
}

// TestOperationalEndpoints smoke-checks /healthz, /metrics, /debug/engine.
func TestOperationalEndpoints(t *testing.T) {
	s, eng := newTestServer(t, Config{})
	h := s.Handler()

	if _, rec := getResponse(t, h, "/v1/query?task=wordcount"); rec.Code != http.StatusOK {
		t.Fatalf("warmup query: status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/healthz: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	for _, want := range []string{
		`ntadoc_requests_total{outcome="ok"} 1`,
		"ntadoc_sessions_idle",
		`ntadoc_device{counter="reads"}`,
		`ntadoc_phase_modeled_nanos{phase="traversal"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/engine", nil))
	var info struct {
		Shards     int      `json:"shards"`
		Documents  []string `json:"documents"`
		Generation string   `json:"generation"`
		Strategies []string `json:"planner_strategies"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("/debug/engine: %v", err)
	}
	if info.Shards != eng.NumShards() {
		t.Errorf("debug shards = %d, want %d", info.Shards, eng.NumShards())
	}
	if len(info.Documents) != len(serverDocs) {
		t.Errorf("debug documents = %d, want %d", len(info.Documents), len(serverDocs))
	}
	if info.Generation == "" || len(info.Strategies) == 0 {
		t.Errorf("debug missing generation/strategies: %+v", info)
	}
}
