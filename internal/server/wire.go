// Package server is the query-serving layer over a loaded archive: it owns
// a pool of read-only query sessions with admission control, a coalescer
// that deduplicates identical in-flight batches, and an LRU cache of op
// results keyed by (archive generation, canonical batch signature), and
// exposes the analytics ops over a JSON HTTP API plus the operational
// surface (/metrics, /healthz, /debug/engine) the daemon ships with.
//
// The request-shaping codepath is shared with the one-shot CLI: both reduce
// a request to an ntadoc.BatchSpec, whose canonical Signature keys the
// coalescer and the cache.
package server

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/text-analytics/ntadoc"
)

// Request is the body of /v1/query and /v1/batch: one task or several, plus
// the batch's only parameter.  GET requests carry the same fields as query
// parameters (?task=wordcount,sort&k=5).
type Request struct {
	// Task is the single-task convenience form; Tasks the batch form.
	// Both accept comma-separated lists and may be combined.
	Task  string   `json:"task,omitempty"`
	Tasks []string `json:"tasks,omitempty"`
	// TermVectorK truncates term vectors to this many entries (0 = default).
	TermVectorK int `json:"termvector_k,omitempty"`
}

// Spec canonicalizes the request — the same shaping the CLI's one-shot path
// uses, so "sort,wordcount" here and "wordcount,sort" there are one batch.
func (r Request) Spec() (ntadoc.BatchSpec, error) {
	var names []string
	for _, field := range append([]string{r.Task}, r.Tasks...) {
		for _, name := range strings.Split(field, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return ntadoc.BatchSpec{}, fmt.Errorf("no tasks requested")
	}
	return ntadoc.ParseBatchSpec(names, r.TermVectorK)
}

// DocTerms is one document's term vector with its name attached.
type DocTerms struct {
	Doc   string             `json:"doc"`
	Terms []ntadoc.TermCount `json:"terms"`
}

// Result is the wire form of a BatchResult: one field per task, populated
// for the tasks the batch requested.  encoding/json emits map keys sorted,
// so a Result marshals to identical bytes for identical results — the
// property the cache stores, the coalescer shares, and the e2e test asserts
// against direct library execution.
type Result struct {
	WordCount           map[string]uint64            `json:"wordcount,omitempty"`
	Sort                []ntadoc.TermCount           `json:"sort,omitempty"`
	TermVectors         []DocTerms                   `json:"termvector,omitempty"`
	InvertedIndex       map[string][]string          `json:"invertedindex,omitempty"`
	SequenceCount       map[string]uint64            `json:"seqcount,omitempty"`
	RankedInvertedIndex map[string][]ntadoc.DocCount `json:"rankedindex,omitempty"`
}

// ResultOf builds the wire result, naming each term vector's document.
func ResultOf(res *ntadoc.BatchResult, docs []string) Result {
	out := Result{
		WordCount:           res.WordCount,
		Sort:                res.Sort,
		InvertedIndex:       res.InvertedIndex,
		SequenceCount:       res.SequenceCount,
		RankedInvertedIndex: res.RankedInvertedIndex,
	}
	if res.TermVectors != nil {
		out.TermVectors = make([]DocTerms, len(res.TermVectors))
		for i, terms := range res.TermVectors {
			name := ""
			if i < len(docs) {
				name = docs[i]
			}
			out.TermVectors[i] = DocTerms{Doc: name, Terms: terms}
		}
	}
	return out
}

// BatchResult converts back to the library form plus the document names
// (empty strings where the daemon did not know them) — the client CLI's
// bridge to the shared result printers.
func (r Result) BatchResult() (*ntadoc.BatchResult, []string) {
	out := &ntadoc.BatchResult{
		WordCount:           r.WordCount,
		Sort:                r.Sort,
		InvertedIndex:       r.InvertedIndex,
		SequenceCount:       r.SequenceCount,
		RankedInvertedIndex: r.RankedInvertedIndex,
	}
	var docs []string
	if r.TermVectors != nil {
		out.TermVectors = make([][]ntadoc.TermCount, len(r.TermVectors))
		docs = make([]string, len(r.TermVectors))
		for i, dt := range r.TermVectors {
			out.TermVectors[i] = dt.Terms
			docs[i] = dt.Doc
		}
	}
	return out, docs
}

// EncodeResult marshals the wire result body that /v1 responses embed, the
// cache stores, and the e2e test byte-compares.
func EncodeResult(res *ntadoc.BatchResult, docs []string) ([]byte, error) {
	return json.Marshal(ResultOf(res, docs))
}

// AppendDocument is one document of an append batch on the wire.
type AppendDocument struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// AppendRequest is the body of POST /v1/append: one batch of documents,
// committed durably as a unit.
type AppendRequest struct {
	Documents []AppendDocument `json:"documents"`
}

// AppendResponse acknowledges a committed append batch.
type AppendResponse struct {
	// Appended is the number of documents the batch committed.
	Appended int `json:"appended"`
	// Epoch is the corpus epoch the batch became visible at.
	Epoch uint64 `json:"epoch"`
	// Generation is the cache generation after the commit.
	Generation string `json:"generation"`
}

// IngestInfo is the body of GET /v1/ingest: the live ingestion state the
// `ntadoc tail` follower polls.
type IngestInfo struct {
	Generation    string   `json:"generation"`
	Epoch         uint64   `json:"epoch"`
	Documents     int      `json:"documents"`
	Batches       uint64   `json:"batches"`
	AppendedDocs  uint64   `json:"appended_docs"`
	LogBytes      int64    `json:"log_bytes"`
	LogCapacity   int64    `json:"log_capacity"`
	DeltaDocs     int      `json:"delta_docs"`
	DeltaSymbols  int64    `json:"delta_symbols"`
	CompactedDocs uint64   `json:"compacted_docs"`
	Compactions   uint64   `json:"compactions"`
	LastDocuments []string `json:"last_documents,omitempty"`
}

// Response is the envelope of /v1/query and /v1/batch.
type Response struct {
	// Generation identifies the archive build and recovery epoch the result
	// was computed against; it changes on failover recovery, invalidating
	// client-side caches along with the server's.
	Generation string `json:"generation"`
	// Signature is the canonical batch signature the request reduced to.
	Signature string `json:"signature"`
	// Cached reports a result served from the LRU cache; Coalesced one
	// shared with a concurrent identical request.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Result is the marshaled wire Result.
	Result json.RawMessage `json:"result"`
}
