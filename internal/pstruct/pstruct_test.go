package pstruct

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// must fails the test on a persistence-path error; used where the call's
// effect, not its error, is under test.
func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func testPool(t testing.TB, size int64) *pmem.Pool {
	t.Helper()
	dev := nvm.New(nvm.KindNVM, size)
	p, err := pmem.Create(dev, pmem.Options{LogCap: 4096})
	if err != nil {
		t.Fatalf("Create pool: %v", err)
	}
	return p
}

func TestVectorAppendGetSet(t *testing.T) {
	p := testPool(t, 1<<20)
	v, err := NewVector(p, 10)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := v.Append(i * 7); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := v.Append(1); !errors.Is(err, ErrFull) {
		t.Errorf("append past cap: %v", err)
	}
	if v.Len() != 10 || v.Cap() != 10 {
		t.Errorf("len/cap = %d/%d", v.Len(), v.Cap())
	}
	for i := int64(0); i < 10; i++ {
		got, err := v.Get(i)
		if err != nil || got != uint64(i)*7 {
			t.Errorf("Get(%d) = %d, %v", i, got, err)
		}
	}
	if err := v.Set(3, 999); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if got, _ := v.Get(3); got != 999 {
		t.Errorf("after Set, Get(3) = %d", got)
	}
	if _, err := v.Get(10); !errors.Is(err, ErrBounds) {
		t.Errorf("Get out of range: %v", err)
	}
	if err := v.Set(-1, 0); !errors.Is(err, ErrBounds) {
		t.Errorf("Set out of range: %v", err)
	}
}

func TestVectorRangeAndEarlyStop(t *testing.T) {
	p := testPool(t, 1<<22)
	v, _ := NewVector(p, 2000)
	for i := uint64(0); i < 2000; i++ {
		v.Append(i)
	}
	var sum, visits uint64
	v.Range(func(i int64, x uint64) bool {
		if uint64(i) != x {
			t.Fatalf("Range order broken at %d: %d", i, x)
		}
		sum += x
		visits++
		return true
	})
	if visits != 2000 || sum != 2000*1999/2 {
		t.Errorf("visits=%d sum=%d", visits, sum)
	}
	visits = 0
	v.Range(func(i int64, x uint64) bool { visits++; return visits < 5 })
	if visits != 5 {
		t.Errorf("early stop visits = %d", visits)
	}
}

func TestVectorReopen(t *testing.T) {
	p := testPool(t, 1<<20)
	v, _ := NewVector(p, 5)
	v.Append(11)
	v.Append(22)
	v2, err := OpenVector(p, v.Base())
	if err != nil {
		t.Fatalf("OpenVector: %v", err)
	}
	if v2.Len() != 2 || v2.Cap() != 5 {
		t.Errorf("reopened len/cap = %d/%d", v2.Len(), v2.Cap())
	}
	if got, _ := v2.Get(1); got != 22 {
		t.Errorf("reopened Get(1) = %d", got)
	}
}

func TestVectorPersistence(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	p, _ := pmem.Create(dev, pmem.Options{LogCap: 4096})
	v, _ := NewVector(p, 4)
	v.Append(5)
	v.Append(6)
	if err := v.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	p.SetRoot(0, v.Base())
	if err := p.Checkpoint(1); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	must(t, dev.Crash())
	p2, err := pmem.Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	off, _ := p2.Root(0)
	v2, err := OpenVector(p2, off)
	if err != nil {
		t.Fatalf("OpenVector: %v", err)
	}
	if v2.Len() != 2 {
		t.Fatalf("len after crash = %d", v2.Len())
	}
	if a, _ := v2.Get(0); a != 5 {
		t.Errorf("Get(0) = %d", a)
	}
	if b, _ := v2.Get(1); b != 6 {
		t.Errorf("Get(1) = %d", b)
	}
}

func TestPairPacking(t *testing.T) {
	id, freq := Unpair(Pair(0xabcdef12, 0x34567890))
	if id != 0xabcdef12 || freq != 0x34567890 {
		t.Errorf("Unpair(Pair) = %#x, %#x", id, freq)
	}
}

func TestHashTablePutGet(t *testing.T) {
	p := testPool(t, 1<<20)
	h, err := NewHashTable(p, 100)
	if err != nil {
		t.Fatalf("NewHashTable: %v", err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := h.Put(i*31+7, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if h.Len() != 100 {
		t.Errorf("Len = %d", h.Len())
	}
	for i := uint64(0); i < 100; i++ {
		got, err := h.Get(i*31 + 7)
		if err != nil || got != i {
			t.Errorf("Get(%d) = %d, %v", i*31+7, got, err)
		}
	}
	if _, err := h.Get(999999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: %v", err)
	}
	// Overwrite does not change count.
	h.Put(7, 42)
	if h.Len() != 100 {
		t.Errorf("Len after overwrite = %d", h.Len())
	}
	if got, _ := h.Get(7); got != 42 {
		t.Errorf("overwritten value = %d", got)
	}
}

func TestHashTableAdd(t *testing.T) {
	p := testPool(t, 1<<20)
	h, _ := NewHashTable(p, 10)
	if v, err := h.Add(5, 3); err != nil || v != 3 {
		t.Errorf("first Add = %d, %v", v, err)
	}
	if v, err := h.Add(5, 4); err != nil || v != 7 {
		t.Errorf("second Add = %d, %v", v, err)
	}
	if got, _ := h.Get(5); got != 7 {
		t.Errorf("Get after Add = %d", got)
	}
}

func TestHashTableCapacityPowerOfTwo(t *testing.T) {
	for _, bound := range []int64{0, 1, 3, 4, 100, 1000} {
		p := testPool(t, 1<<22)
		h, err := NewHashTable(p, bound)
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		if c := h.Cap(); c&(c-1) != 0 {
			t.Errorf("bound %d: cap %d not a power of two", bound, c)
		}
		if bound > 0 && h.Cap() < bound {
			t.Errorf("bound %d: cap %d too small", bound, h.Cap())
		}
	}
}

func TestHashTableFull(t *testing.T) {
	p := testPool(t, 1<<20)
	h, _ := NewHashTable(p, 4) // cap 8 or 16
	var err error
	var i uint64
	for ; i < 1000; i++ {
		if err = h.Put(i, i); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, filled %d entries: %v", i, err)
	}
	// Existing entries still readable after the failed insert.
	for j := uint64(0); j < i; j++ {
		if got, err := h.Get(j); err != nil || got != j {
			t.Errorf("Get(%d) after full = %d, %v", j, got, err)
		}
	}
}

func TestHashTableRange(t *testing.T) {
	p := testPool(t, 1<<20)
	h, _ := NewHashTable(p, 50)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 50; i++ {
		k := i * 1000003
		h.Put(k, i)
		want[k] = i
	}
	got := map[uint64]uint64{}
	h.Range(func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	n := 0
	h.Range(func(k, v uint64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestHashTableReopen(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	p, _ := pmem.Create(dev, pmem.Options{LogCap: 4096})
	h, _ := NewHashTable(p, 20)
	for i := uint64(0); i < 20; i++ {
		h.Add(i, i+1)
	}
	must(t, h.Flush())
	p.SetRoot(1, h.Base())
	must(t, p.Checkpoint(1))
	must(t, dev.Crash())

	p2, _ := pmem.Open(dev)
	off, _ := p2.Root(1)
	h2, err := OpenHashTable(p2, off)
	if err != nil {
		t.Fatalf("OpenHashTable: %v", err)
	}
	if h2.Len() != 20 {
		t.Errorf("reopened Len = %d", h2.Len())
	}
	for i := uint64(0); i < 20; i++ {
		if got, err := h2.Get(i); err != nil || got != i+1 {
			t.Errorf("reopened Get(%d) = %d, %v", i, got, err)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	p := testPool(t, 1<<20)
	q, err := NewQueue(p, 4)
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	if _, err := q.Pop(); !errors.Is(err, ErrEmpty) {
		t.Errorf("pop empty: %v", err)
	}
	for i := uint32(0); i < 4; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := q.Push(9); !errors.Is(err, ErrFull) {
		t.Errorf("push full: %v", err)
	}
	for i := uint32(0); i < 4; i++ {
		got, err := q.Pop()
		if err != nil || got != i {
			t.Errorf("Pop = %d, %v; want %d", got, err, i)
		}
	}
	// Wraparound.
	for round := 0; round < 10; round++ {
		q.Push(uint32(round))
		got, _ := q.Pop()
		if got != uint32(round) {
			t.Errorf("wraparound round %d: got %d", round, got)
		}
	}
	q.Push(1)
	q.Reset()
	if q.Len() != 0 {
		t.Errorf("after Reset, Len = %d", q.Len())
	}
}

func TestGrowableVectorReconstructs(t *testing.T) {
	p := testPool(t, 1<<22)
	g, err := NewGrowableVector(p, 4)
	if err != nil {
		t.Fatalf("NewGrowableVector: %v", err)
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := g.Append(i); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if g.Len() != n {
		t.Errorf("Len = %d", g.Len())
	}
	if g.Reconstructions == 0 {
		t.Error("expected reconstructions")
	}
	for i := int64(0); i < n; i++ {
		if got, _ := g.Get(i); got != uint64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
}

func TestGrowableCostsMoreThanBounded(t *testing.T) {
	// The paper's claim behind bottom-up summation: pre-sizing avoids the
	// redundant NVM traffic of reconstruction.  Verify the growable vector
	// writes strictly more bytes than a bounded one for the same workload.
	const n = 4096
	devA := nvm.New(nvm.KindNVM, 1<<22)
	poolA, _ := pmem.Create(devA, pmem.Options{})
	bounded, _ := NewVector(poolA, n)
	devA.ResetStats()
	for i := uint64(0); i < n; i++ {
		bounded.Append(i)
	}
	boundedBytes := devA.Stats().BytesWritten

	devB := nvm.New(nvm.KindNVM, 1<<22)
	poolB, _ := pmem.Create(devB, pmem.Options{})
	grow, _ := NewGrowableVector(poolB, 4)
	devB.ResetStats()
	for i := uint64(0); i < n; i++ {
		grow.Append(i)
	}
	growBytes := devB.Stats().BytesWritten

	if growBytes <= boundedBytes {
		t.Errorf("growable wrote %d bytes <= bounded %d", growBytes, boundedBytes)
	}
}

func TestGrowableHashTable(t *testing.T) {
	p := testPool(t, 1<<24)
	g, err := NewGrowableHashTable(p, 4)
	if err != nil {
		t.Fatalf("NewGrowableHashTable: %v", err)
	}
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if _, err := g.Add(i, i); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if g.Len() != n {
		t.Errorf("Len = %d", g.Len())
	}
	if g.Reconstructions == 0 {
		t.Error("expected rehash reconstructions")
	}
	for i := uint64(0); i < n; i += 97 {
		if got, err := g.Get(i); err != nil || got != i {
			t.Errorf("Get(%d) = %d, %v", i, got, err)
		}
	}
	if err := g.Put(5, 123); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got, _ := g.Get(5); got != 123 {
		t.Errorf("Put overwrite = %d", got)
	}
}

func TestQuickHashTableMatchesMap(t *testing.T) {
	// Property: the pool hash table behaves exactly like a Go map under a
	// random workload of Put/Add/Get.
	f := func(ops []struct {
		Key   uint16
		Delta uint16
		Kind  uint8
	}) bool {
		p := testPool(t, 1<<24)
		h, err := NewHashTable(p, int64(len(ops))+4)
		if err != nil {
			return false
		}
		shadow := map[uint64]uint64{}
		for _, op := range ops {
			k, d := uint64(op.Key), uint64(op.Delta)
			switch op.Kind % 3 {
			case 0:
				if err := h.Put(k, d); err != nil {
					return false
				}
				shadow[k] = d
			case 1:
				if _, err := h.Add(k, d); err != nil {
					return false
				}
				shadow[k] += d
			case 2:
				got, err := h.Get(k)
				want, ok := shadow[k]
				if ok != (err == nil) {
					return false
				}
				if ok && got != want {
					return false
				}
			}
		}
		if h.Len() != int64(len(shadow)) {
			return false
		}
		for k, want := range shadow {
			got, err := h.Get(k)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickQueueMatchesSlice(t *testing.T) {
	f := func(ops []int8) bool {
		p := testPool(t, 1<<20)
		q, err := NewQueue(p, 64)
		if err != nil {
			return false
		}
		var shadow []uint32
		for i, op := range ops {
			if op >= 0 {
				err := q.Push(uint32(i))
				if len(shadow) >= 64 {
					if !errors.Is(err, ErrFull) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					shadow = append(shadow, uint32(i))
				}
			} else {
				got, err := q.Pop()
				if len(shadow) == 0 {
					if !errors.Is(err, ErrEmpty) {
						return false
					}
				} else {
					if err != nil || got != shadow[0] {
						return false
					}
					shadow = shadow[1:]
				}
			}
		}
		return q.Len() == int64(len(shadow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashTableRandomizedChurn(t *testing.T) {
	p := testPool(t, 1<<24)
	h, _ := NewHashTable(p, 5000)
	r := rand.New(rand.NewSource(42))
	shadow := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(5000))
		d := uint64(r.Intn(100))
		h.Add(k, d)
		shadow[k] += d
	}
	for k, want := range shadow {
		got, err := h.Get(k)
		if err != nil || got != want {
			t.Fatalf("churn Get(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
}

func TestHashTableResetSlots(t *testing.T) {
	p := testPool(t, 1<<20)
	h, _ := NewHashTable(p, 50)
	for i := uint64(0); i < 50; i++ {
		h.Add(i, i+1)
	}
	h.ResetSlots()
	if h.Len() != 0 {
		t.Errorf("Len after reset = %d", h.Len())
	}
	if _, err := h.Get(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after reset: %v", err)
	}
	// Table is fully reusable.
	for i := uint64(0); i < 50; i++ {
		if _, err := h.Add(i, 2); err != nil {
			t.Fatalf("Add after reset: %v", err)
		}
	}
	if got, _ := h.Get(7); got != 2 {
		t.Errorf("value after reuse = %d", got)
	}
}

func TestHashTableLoadFactorCapacity(t *testing.T) {
	// Capacity must accommodate the bound at load factor <= 0.75 so bound
	// inserts always succeed.
	for _, bound := range []int64{5, 100, 1000, 4096} {
		p := testPool(t, 1<<24)
		h, err := NewHashTable(p, bound)
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		for i := int64(0); i < bound; i++ {
			if err := h.Put(uint64(i)*7919, uint64(i)); err != nil {
				t.Fatalf("bound %d: insert %d of %d failed: %v", bound, i, bound, err)
			}
		}
	}
}

func TestDenseCounterBasics(t *testing.T) {
	p := testPool(t, 1<<20)
	c, err := NewDenseCounter(p, 100)
	if err != nil {
		t.Fatalf("NewDenseCounter: %v", err)
	}
	if _, err := c.Get(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty: %v", err)
	}
	if v, err := c.Add(5, 3); err != nil || v != 3 {
		t.Errorf("Add = %d, %v", v, err)
	}
	if v, err := c.Add(5, 4); err != nil || v != 7 {
		t.Errorf("second Add = %d, %v", v, err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if _, err := c.Add(100, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-range Add: %v", err)
	}
	if _, err := c.Get(200); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-range Get: %v", err)
	}
}

func TestDenseCounterRangeAndReopen(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 1<<20)
	p, _ := pmem.Create(dev, pmem.Options{LogCap: 4096})
	c, _ := NewDenseCounter(p, 64)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 64; i += 3 {
		c.Add(i, i+1)
		want[i] = i + 1
	}
	got := map[uint64]uint64{}
	c.Range(func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("got[%d] = %d, want %d", k, got[k], v)
		}
	}

	must(t, c.Flush())
	p.SetRoot(0, c.Base())
	must(t, p.Checkpoint(1))
	must(t, dev.Crash())

	p2, _ := pmem.Open(dev)
	off, _ := p2.Root(0)
	if !IsDenseAt(p2, off) {
		t.Fatal("IsDenseAt = false for a dense counter")
	}
	c2, err := OpenCounterAt(p2, off)
	if err != nil {
		t.Fatalf("OpenCounterAt: %v", err)
	}
	if c2.Len() != int64(len(want)) {
		t.Errorf("reopened Len = %d", c2.Len())
	}
	if v, err := c2.Get(3); err != nil || v != 4 {
		t.Errorf("reopened Get(3) = %d, %v", v, err)
	}
}

func TestOpenCounterAtDispatchesHash(t *testing.T) {
	p := testPool(t, 1<<20)
	h, _ := NewHashTable(p, 10)
	h.Add(1, 2)
	h.SyncLen()
	if IsDenseAt(nil2pool(p), h.Base()) {
		t.Fatal("hash table misidentified as dense")
	}
	c, err := OpenCounterAt(p, h.Base())
	if err != nil {
		t.Fatalf("OpenCounterAt: %v", err)
	}
	if _, ok := c.(*HashTable); !ok {
		t.Fatalf("dispatched %T, want *HashTable", c)
	}
	if v, _ := c.Get(1); v != 2 {
		t.Errorf("value = %d", v)
	}
}

func nil2pool(p *pmem.Pool) *pmem.Pool { return p }

func TestDenseVsHashEquivalence(t *testing.T) {
	p := testPool(t, 1<<22)
	h, _ := NewHashTable(p, 500)
	c, _ := NewDenseCounter(p, 500)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		k := uint64(r.Intn(500))
		d := uint64(r.Intn(10) + 1)
		h.Add(k, d)
		c.Add(k, d)
	}
	if h.Len() != c.Len() {
		t.Fatalf("Len: hash %d dense %d", h.Len(), c.Len())
	}
	h.Range(func(k, v uint64) bool {
		got, err := c.Get(k)
		if err != nil || got != v {
			t.Errorf("key %d: hash %d dense %d (%v)", k, v, got, err)
		}
		return true
	})
}
