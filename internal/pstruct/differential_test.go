package pstruct

import (
	"math/rand"
	"testing"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// differential tests: the batched iteration paths must charge the device
// exactly like the scalar/staged formulation they replaced.  Each test
// builds the same structure on two identical devices, iterates one with the
// current implementation and the other with the reference loop, and
// requires bit-identical device Stats (including modeled nanos) and
// identical yielded contents.

func newPoolPair(t *testing.T, size int64) (a, b *pmem.Pool, devA, devB *nvm.SimDevice) {
	t.Helper()
	devA = nvm.New(nvm.KindNVM, size)
	devB = nvm.New(nvm.KindNVM, size)
	var err error
	a, err = pmem.Create(devA, pmem.Options{LogCap: 1 << 12})
	if err != nil {
		t.Fatalf("create pool A: %v", err)
	}
	b, err = pmem.Create(devB, pmem.Options{LogCap: 1 << 12})
	if err != nil {
		t.Fatalf("create pool B: %v", err)
	}
	return a, b, devA, devB
}

func requireSameStats(t *testing.T, step string, devA, devB *nvm.SimDevice) {
	t.Helper()
	if sa, sb := devA.Stats(), devB.Stats(); sa != sb {
		t.Fatalf("%s: stats diverged\ncurrent:   %+v\nreference: %+v", step, sa, sb)
	}
}

type kv struct{ k, v uint64 }

func TestHashTableRangeChargesLikeReferenceScan(t *testing.T) {
	const size = 1 << 20
	poolA, poolB, devA, devB := newPoolPair(t, size)
	defer devA.Discard()
	defer devB.Discard()

	ta, err := NewHashTable(poolA, 512)
	if err != nil {
		t.Fatalf("new table A: %v", err)
	}
	tb, err := NewHashTable(poolB, 512)
	if err != nil {
		t.Fatalf("new table B: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	want := map[uint64]uint64{}
	for i := 0; i < 300; i++ {
		k, v := rng.Uint64()|1, rng.Uint64()
		if _, err := ta.Add(k, v); err != nil {
			t.Fatalf("add A: %v", err)
		}
		if _, err := tb.Add(k, v); err != nil {
			t.Fatalf("add B: %v", err)
		}
		want[k] += v
	}
	requireSameStats(t, "after inserts", devA, devB)

	var gotA []kv
	ta.Range(func(k, v uint64) bool {
		gotA = append(gotA, kv{k, v})
		return true
	})

	// Reference scan: staged status batches via ReadBytes, scalar key and
	// value reads per occupied slot — the pre-batching formulation.
	var gotB []kv
	const batch = 1024
	status := make([]byte, batch)
	for start := int64(0); start < tb.cap; start += batch {
		n := tb.cap - start
		if n > batch {
			n = batch
		}
		tb.acc.ReadBytes(tb.statusOff+start, status[:n])
		for i := int64(0); i < n; i++ {
			if status[i] != slotOccupied {
				continue
			}
			s := start + i
			k := tb.acc.Uint64(tb.keysOff + s*8)
			v := tb.acc.Uint64(tb.valsOff + s*8)
			gotB = append(gotB, kv{k, v})
		}
	}
	requireSameStats(t, "after iteration", devA, devB)

	if len(gotA) != len(gotB) || len(gotA) != len(want) {
		t.Fatalf("yield counts: current %d, reference %d, want %d",
			len(gotA), len(gotB), len(want))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("entry %d: current %+v, reference %+v", i, gotA[i], gotB[i])
		}
		if want[gotA[i].k] != gotA[i].v {
			t.Fatalf("key %d: value %d, want %d", gotA[i].k, gotA[i].v, want[gotA[i].k])
		}
	}
}

func TestVectorRangeChargesLikeReferenceScan(t *testing.T) {
	const size = 1 << 20
	poolA, poolB, devA, devB := newPoolPair(t, size)
	defer devA.Discard()
	defer devB.Discard()

	va, err := NewVector(poolA, 2000)
	if err != nil {
		t.Fatalf("new vector A: %v", err)
	}
	vb, err := NewVector(poolB, 2000)
	if err != nil {
		t.Fatalf("new vector B: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	var want []uint64
	for i := 0; i < 1500; i++ {
		x := rng.Uint64()
		if err := va.Append(x); err != nil {
			t.Fatalf("append A: %v", err)
		}
		if err := vb.Append(x); err != nil {
			t.Fatalf("append B: %v", err)
		}
		want = append(want, x)
	}
	requireSameStats(t, "after appends", devA, devB)

	var gotA []uint64
	va.Range(func(i int64, x uint64) bool {
		gotA = append(gotA, x)
		return true
	})

	// Reference scan: staged batches via ReadBytes into a scratch buffer.
	var gotB []uint64
	const batch = 512
	buf := make([]byte, batch*8)
	for start := int64(0); start < vb.len; start += batch {
		n := vb.len - start
		if n > batch {
			n = batch
		}
		vb.acc.ReadBytes(vecHeader+start*8, buf[:n*8])
		for i := int64(0); i < n; i++ {
			gotB = append(gotB, leU64(buf[i*8:]))
		}
	}
	requireSameStats(t, "after iteration", devA, devB)

	if len(gotA) != len(want) || len(gotB) != len(want) {
		t.Fatalf("yield counts: current %d, reference %d, want %d",
			len(gotA), len(gotB), len(want))
	}
	for i := range want {
		if gotA[i] != want[i] || gotB[i] != want[i] {
			t.Fatalf("index %d: current %d, reference %d, want %d",
				i, gotA[i], gotB[i], want[i])
		}
	}
}

func TestDenseCounterRangeChargesLikeReferenceScan(t *testing.T) {
	const size = 1 << 20
	poolA, poolB, devA, devB := newPoolPair(t, size)
	defer devA.Discard()
	defer devB.Discard()

	ca, err := NewDenseCounter(poolA, 3000)
	if err != nil {
		t.Fatalf("new counter A: %v", err)
	}
	cb, err := NewDenseCounter(poolB, 3000)
	if err != nil {
		t.Fatalf("new counter B: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	want := map[uint64]uint64{}
	for i := 0; i < 800; i++ {
		k, v := uint64(rng.Int63n(3000)), rng.Uint64()%1000+1
		if _, err := ca.Add(k, v); err != nil {
			t.Fatalf("add A: %v", err)
		}
		if _, err := cb.Add(k, v); err != nil {
			t.Fatalf("add B: %v", err)
		}
		want[k] += v
	}
	requireSameStats(t, "after adds", devA, devB)

	var gotA []kv
	ca.Range(func(k, v uint64) bool {
		gotA = append(gotA, kv{k, v})
		return true
	})

	var gotB []kv
	const batch = 1024
	buf := make([]byte, batch*8)
	for start := int64(0); start < cb.size; start += batch {
		n := cb.size - start
		if n > batch {
			n = batch
		}
		cb.acc.ReadBytes(denseHeader+start*8, buf[:n*8])
		for i := int64(0); i < n; i++ {
			v := leU64(buf[i*8:])
			if v == 0 {
				continue
			}
			gotB = append(gotB, kv{uint64(start + i), v})
		}
	}
	requireSameStats(t, "after iteration", devA, devB)

	if len(gotA) != len(gotB) || len(gotA) != len(want) {
		t.Fatalf("yield counts: current %d, reference %d, want %d",
			len(gotA), len(gotB), len(want))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("entry %d: current %+v, reference %+v", i, gotA[i], gotB[i])
		}
	}
}
