// Package pstruct implements the NVM-adapted data structures of the paper's
// §IV-D: a fixed-upper-bound vector and an open-addressing hash table with
// separate status/key/value buffers, both allocated inside a persistent pool
// and sized once from the bottom-up summation bound so they are never
// reconstructed on NVM; a fixed-capacity traversal queue; and deliberately
// naive growable variants that reproduce the reconstruction overhead the
// paper's design eliminates (used by the ablation benchmarks).
package pstruct

import (
	"errors"
	"fmt"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// Structure errors.
var (
	ErrFull     = errors.New("pstruct: capacity exceeded (upper bound violated)")
	ErrEmpty    = errors.New("pstruct: structure empty")
	ErrBounds   = errors.New("pstruct: index out of range")
	ErrNotFound = errors.New("pstruct: key not found")
)

// Vector is a fixed-capacity vector of uint64 values in a pool.  Its
// capacity is set once at allocation — in the engine, from the bottom-up
// summation upper bound — so appends never trigger reallocation on NVM.
//
// Layout: cap uint64, len uint64, then cap elements of 8 bytes.
type Vector struct {
	acc nvm.Accessor
	cap int64
	len int64 // cached; authoritative copy lives in the pool
}

const vecHeader = 16

// VectorBytes returns the pool footprint of a Vector with the given
// capacity.
func VectorBytes(capacity int64) int64 { return vecHeader + capacity*8 }

// NewVector allocates a vector with the given fixed capacity in the pool.
func NewVector(p *pmem.Pool, capacity int64) (*Vector, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("pstruct: negative capacity %d", capacity)
	}
	acc, err := p.Alloc(VectorBytes(capacity), 8)
	if err != nil {
		return nil, err
	}
	acc.PutUint64(0, uint64(capacity))
	acc.PutUint64(8, 0)
	return &Vector{acc: acc, cap: capacity}, nil
}

// OpenVector reattaches to a vector previously allocated at pool offset off.
func OpenVector(p *pmem.Pool, off int64) (*Vector, error) {
	hdr := p.AccessorAt(off, vecHeader)
	capacity := int64(hdr.Uint64(0))
	acc := p.AccessorAt(off, VectorBytes(capacity))
	return &Vector{acc: acc, cap: capacity, len: int64(acc.Uint64(8))}, nil
}

// Base returns the vector's pool offset, for storage in a root slot.
func (v *Vector) Base() int64 { return v.acc.Base() }

// Cap returns the fixed capacity.
func (v *Vector) Cap() int64 { return v.cap }

// Len returns the number of elements.
func (v *Vector) Len() int64 { return v.len }

// Append adds x, returning ErrFull when the upper bound is exhausted.
func (v *Vector) Append(x uint64) error {
	if v.len >= v.cap {
		return ErrFull
	}
	v.acc.PutUint64(vecHeader+v.len*8, x)
	v.len++
	v.acc.PutUint64(8, uint64(v.len))
	return nil
}

// Get returns element i.
func (v *Vector) Get(i int64) (uint64, error) {
	if i < 0 || i >= v.len {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, v.len)
	}
	return v.acc.Uint64(vecHeader + i*8), nil
}

// Set overwrites element i.
func (v *Vector) Set(i int64, x uint64) error {
	if i < 0 || i >= v.len {
		return fmt.Errorf("%w: %d of %d", ErrBounds, i, v.len)
	}
	v.acc.PutUint64(vecHeader+i*8, x)
	return nil
}

// Range calls fn for each element in order; fn returning false stops early.
func (v *Vector) Range(fn func(i int64, x uint64) bool) {
	// Read in batches so sequential layout pays sequential device cost; the
	// zero-copy view decodes straight from the device image.
	const batch = 512
	for start := int64(0); start < v.len; start += batch {
		n := v.len - start
		if n > batch {
			n = batch
		}
		buf := v.acc.ReadView(vecHeader+start*8, n*8)
		for i := int64(0); i < n; i++ {
			x := leU64(buf[i*8:])
			if !fn(start+i, x) {
				return
			}
		}
	}
}

// Flush persists the vector's header and live elements.
func (v *Vector) Flush() error {
	return v.acc.Flush(0, vecHeader+v.len*8)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Pair packs an (id, freq) tuple — the unit the pruning method writes to the
// DAG pool — into a vector element.
func Pair(id, freq uint32) uint64 { return uint64(id)<<32 | uint64(freq) }

// Unpair splits a packed pair.
func Unpair(x uint64) (id, freq uint32) { return uint32(x >> 32), uint32(x) }
