package pstruct

import (
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// Queue is the fixed-capacity traversal queue the NVM pool holds during
// top-down traversal (§IV-B): the engine pops the rule being traversed and
// pushes its subrules.  It is a ring buffer of uint32 rule IDs.  Capacity is
// fixed — the engine bounds it by the rule count — so traversal never
// allocates.
//
// Layout: cap uint64, head uint64, tail uint64, then cap uint32 elements.
type Queue struct {
	acc  nvm.Accessor
	cap  int64
	head int64 // next pop position
	tail int64 // next push position
	size int64
}

const queueHeader = 24

// QueueBytes returns the pool footprint of a queue with the given capacity.
func QueueBytes(capacity int64) int64 { return queueHeader + capacity*4 }

// NewQueue allocates a queue with the given fixed capacity in the pool.
func NewQueue(p *pmem.Pool, capacity int64) (*Queue, error) {
	if capacity < 1 {
		capacity = 1
	}
	acc, err := p.Alloc(QueueBytes(capacity), 8)
	if err != nil {
		return nil, err
	}
	acc.PutUint64(0, uint64(capacity))
	acc.PutUint64(8, 0)
	acc.PutUint64(16, 0)
	return &Queue{acc: acc, cap: capacity}, nil
}

// Base returns the queue's pool offset.
func (q *Queue) Base() int64 { return q.acc.Base() }

// Len returns the number of queued elements.
func (q *Queue) Len() int64 { return q.size }

// Cap returns the fixed capacity.
func (q *Queue) Cap() int64 { return q.cap }

// Push appends x, returning ErrFull when the queue is at capacity.
func (q *Queue) Push(x uint32) error {
	if q.size >= q.cap {
		return ErrFull
	}
	q.acc.PutUint32(queueHeader+q.tail*4, x)
	q.tail = (q.tail + 1) % q.cap
	q.size++
	return nil
}

// Pop removes and returns the oldest element, or ErrEmpty.
func (q *Queue) Pop() (uint32, error) {
	if q.size == 0 {
		return 0, ErrEmpty
	}
	x := q.acc.Uint32(queueHeader + q.head*4)
	q.head = (q.head + 1) % q.cap
	q.size--
	return x, nil
}

// Reset empties the queue without touching element storage.
func (q *Queue) Reset() {
	q.head, q.tail, q.size = 0, 0, 0
}

// SaveHeader persists the queue cursors, letting a phase checkpoint record
// traversal progress.
func (q *Queue) SaveHeader() error {
	q.acc.PutUint64(8, uint64(q.head))
	q.acc.PutUint64(16, uint64(q.tail))
	return q.acc.Flush(0, queueHeader)
}
