package pstruct

import (
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// GrowableVector is the baseline the paper's bottom-up summation replaces: a
// vector that starts small and, when full, allocates a doubled region in the
// pool and copies every element across — the "violent reconstruction" whose
// read-modify-write traffic the paper identifies as NVM challenge 2.  It is
// retained for the ablation benchmarks; the engine itself never uses it.
type GrowableVector struct {
	pool *pmem.Pool
	vec  *Vector
	// Reconstructions counts how many reallocation+copy cycles occurred,
	// so ablations can report them alongside device stats.
	Reconstructions int
}

// NewGrowableVector allocates a growable vector with a small initial
// capacity.
func NewGrowableVector(p *pmem.Pool, initial int64) (*GrowableVector, error) {
	if initial < 4 {
		initial = 4
	}
	v, err := NewVector(p, initial)
	if err != nil {
		return nil, err
	}
	return &GrowableVector{pool: p, vec: v}, nil
}

// Len returns the number of elements.
func (g *GrowableVector) Len() int64 { return g.vec.Len() }

// Get returns element i.
func (g *GrowableVector) Get(i int64) (uint64, error) { return g.vec.Get(i) }

// Range iterates over the elements in order.
func (g *GrowableVector) Range(fn func(i int64, x uint64) bool) { g.vec.Range(fn) }

// Append adds x, reconstructing into a doubled region when full.
func (g *GrowableVector) Append(x uint64) error {
	if err := g.vec.Append(x); err == nil {
		return nil
	} else if err != ErrFull {
		return err
	}
	bigger, err := NewVector(g.pool, g.vec.Cap()*2)
	if err != nil {
		return err
	}
	// The copy re-reads every element from NVM and rewrites it — exactly
	// the redundant access the upper-bound design avoids.
	var copyErr error
	g.vec.Range(func(_ int64, v uint64) bool {
		copyErr = bigger.Append(v)
		return copyErr == nil
	})
	if copyErr != nil {
		return copyErr
	}
	g.vec = bigger
	g.Reconstructions++
	return g.vec.Append(x)
}

// GrowableHashTable is the growable counterpart for hash tables: when the
// load factor exceeds 1/2 it allocates a doubled table and rehashes every
// entry, again paying full read-modify-write traffic on NVM.
type GrowableHashTable struct {
	pool            *pmem.Pool
	ht              *HashTable
	Reconstructions int
}

// NewGrowableHashTable allocates a growable table with a small initial
// bound.
func NewGrowableHashTable(p *pmem.Pool, initial int64) (*GrowableHashTable, error) {
	if initial < 4 {
		initial = 4
	}
	t, err := NewHashTable(p, initial)
	if err != nil {
		return nil, err
	}
	return &GrowableHashTable{pool: p, ht: t}, nil
}

// Len returns the number of entries.
func (g *GrowableHashTable) Len() int64 { return g.ht.Len() }

// Get returns key's value, or ErrNotFound.
func (g *GrowableHashTable) Get(key uint64) (uint64, error) { return g.ht.Get(key) }

// Range iterates over the entries.
func (g *GrowableHashTable) Range(fn func(key, value uint64) bool) { g.ht.Range(fn) }

// ensure grows the table when it is at its load-factor limit.
func (g *GrowableHashTable) ensure() error {
	if g.ht.Len()*2 < g.ht.Cap() {
		return nil
	}
	bigger, err := NewHashTable(g.pool, g.ht.Cap()) // bound=cap doubles slots
	if err != nil {
		return err
	}
	var rehashErr error
	g.ht.Range(func(k, v uint64) bool {
		rehashErr = bigger.Put(k, v)
		return rehashErr == nil
	})
	if rehashErr != nil {
		return rehashErr
	}
	g.ht = bigger
	g.Reconstructions++
	return nil
}

// Put sets key to value, growing as needed.
func (g *GrowableHashTable) Put(key, value uint64) error {
	if err := g.ensure(); err != nil {
		return err
	}
	return g.ht.Put(key, value)
}

// Add increments key's value by delta, growing as needed.
func (g *GrowableHashTable) Add(key, delta uint64) (uint64, error) {
	if err := g.ensure(); err != nil {
		return 0, err
	}
	return g.ht.Add(key, delta)
}
