package pstruct

import (
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// Counter is the uniform surface of the paper's §IV-D result structures:
// the hash table and the dense vector counter.  Engines choose between them
// by expected density and reattach to either by pool offset.
type Counter interface {
	// Base returns the structure's pool offset.
	Base() int64
	// Len returns the number of live entries.
	Len() int64
	// Add increments key by delta, returning the new value.
	Add(key, delta uint64) (uint64, error)
	// Get returns key's value, or ErrNotFound.
	Get(key uint64) (uint64, error)
	// Range visits every live entry; fn returning false stops early.
	Range(fn func(key, value uint64) bool)
	// SyncLen writes the entry count back to the pool without flushing.
	SyncLen()
	// Flush persists the whole structure.
	Flush() error
	// FlushInit persists the minimum state that makes the structure's
	// durable image consistent while still empty: the header and status
	// buffer for a hash table, everything for a dense counter (whose data
	// buffer is its status).  Operation-level engines call it once at
	// allocation so crash replay starts from a well-defined image.
	FlushInit() error
}

var (
	_ Counter = (*HashTable)(nil)
	_ Counter = (*DenseCounter)(nil)
)

// FlushInit implements Counter: the hash table's emptiness is encoded
// entirely in its header and status buffer.
func (t *HashTable) FlushInit() error {
	if err := t.acc.Flush(0, htHeader+t.cap); err != nil {
		return err
	}
	return t.acc.Device().Drain()
}

// FlushInit implements Counter: a dense counter's zeroed data is its empty
// state, so everything must be durable.
func (c *DenseCounter) FlushInit() error {
	if err := c.acc.FlushAll(); err != nil {
		return err
	}
	return c.acc.Device().Drain()
}

// OpenCounterAt reattaches to whichever counter kind lives at pool offset
// off, dispatching on the header marker.
func OpenCounterAt(p *pmem.Pool, off int64) (Counter, error) {
	if IsDenseAt(p, off) {
		return OpenDenseCounter(p, off)
	}
	return OpenHashTable(p, off)
}
