package pstruct

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// DenseCounter is the vector form of the paper's §IV-D counter ("it consists
// of vectors or hash tables"): a flat array of 8-byte counts indexed
// directly by key.  When the key space is dense — dictionary word IDs,
// interned sequence IDs — it beats the hash table on both space (8 bytes per
// slot versus 17 plus power-of-two slack) and access cost (one device access
// versus a probe sequence).  The engine picks it whenever the expected entry
// count is a large enough fraction of the key space; the counters ablation
// benchmark quantifies the choice.
//
// Layout: header uint64 (denseMarker | key-space size), count uint64
// (occupied slots, synced like the hash table's), then size x uint64 counts.
// Slots are zeroed at allocation; zero means absent, which costs nothing
// extra because counters never store an explicit zero.
type DenseCounter struct {
	acc   nvm.Accessor
	size  int64
	count int64
}

// denseMarker distinguishes a DenseCounter header from a HashTable header
// when reattaching by pool offset: hash-table capacities are far below 2^62.
const denseMarker = uint64(1) << 62

const denseHeader = 16

// DenseCounterBytes returns the pool footprint for a key space of size n.
func DenseCounterBytes(n int64) int64 { return denseHeader + n*8 }

// NewDenseCounter allocates a zeroed counter over keys [0, size).
func NewDenseCounter(p *pmem.Pool, size int64) (*DenseCounter, error) {
	if size < 1 {
		size = 1
	}
	acc, err := p.AllocZeroed(DenseCounterBytes(size), 8)
	if err != nil {
		return nil, err
	}
	acc.PutUint64(0, denseMarker|uint64(size))
	return &DenseCounter{acc: acc, size: size}, nil
}

// OpenDenseCounter reattaches to a counter at pool offset off.
func OpenDenseCounter(p *pmem.Pool, off int64) (*DenseCounter, error) {
	hdr := p.AccessorAt(off, denseHeader)
	h := hdr.Uint64(0)
	if h&denseMarker == 0 {
		return nil, fmt.Errorf("pstruct: no dense counter at offset %d", off)
	}
	size := int64(h &^ denseMarker)
	acc := p.AccessorAt(off, DenseCounterBytes(size))
	return &DenseCounter{acc: acc, size: size, count: int64(acc.Uint64(8))}, nil
}

// IsDenseAt reports whether the structure at pool offset off is a
// DenseCounter (as opposed to a HashTable).
func IsDenseAt(p *pmem.Pool, off int64) bool {
	return p.AccessorAt(off, 8).Uint64(0)&denseMarker != 0
}

// Base returns the counter's pool offset.
func (c *DenseCounter) Base() int64 { return c.acc.Base() }

// Size returns the key-space size.
func (c *DenseCounter) Size() int64 { return c.size }

// Len returns the number of nonzero slots.
func (c *DenseCounter) Len() int64 { return c.count }

// Add increments key by delta and returns the new value.
func (c *DenseCounter) Add(key, delta uint64) (uint64, error) {
	if int64(key) >= c.size {
		return 0, fmt.Errorf("%w: key %d beyond size %d", ErrBounds, key, c.size)
	}
	off := denseHeader + int64(key)*8
	v := c.acc.Uint64(off)
	if v == 0 && delta != 0 {
		c.count++
	}
	v += delta
	c.acc.PutUint64(off, v)
	return v, nil
}

// Get returns key's count; absent keys read as ErrNotFound to match the
// hash table's contract.
func (c *DenseCounter) Get(key uint64) (uint64, error) {
	if int64(key) >= c.size {
		return 0, fmt.Errorf("%w: key %d beyond size %d", ErrBounds, key, c.size)
	}
	v := c.acc.Uint64(denseHeader + int64(key)*8)
	if v == 0 {
		return 0, ErrNotFound
	}
	return v, nil
}

// Range calls fn for every nonzero slot in key order.
func (c *DenseCounter) Range(fn func(key, value uint64) bool) {
	const batch = 1024
	for start := int64(0); start < c.size; start += batch {
		n := c.size - start
		if n > batch {
			n = batch
		}
		buf := c.acc.ReadView(denseHeader+start*8, n*8)
		for i := int64(0); i < n; i++ {
			v := leU64(buf[i*8:])
			if v == 0 {
				continue
			}
			if !fn(uint64(start+i), v) {
				return
			}
		}
	}
}

// SyncLen writes the occupancy count back without flushing.
func (c *DenseCounter) SyncLen() { c.acc.PutUint64(8, uint64(c.count)) }

// Flush writes the count back and persists the whole counter.
func (c *DenseCounter) Flush() error {
	c.SyncLen()
	return c.acc.FlushAll()
}
