package pstruct

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/pmem"
)

// HashTable is the open-addressing hash table of the paper's Figure 4:
// separate status, key, and value buffers laid out consecutively in the
// pool, capacity rounded up to a power of two for cache-friendly masking,
// and pseudo-random probing on collision.  Capacity is fixed at allocation
// from the bottom-up summation bound, so an insert can never trigger the
// read-modify-write reconstruction that makes growable structures expensive
// on NVM.
//
// Layout: cap uint64, count uint64, status[cap] bytes, keys[cap] uint64,
// values[cap] uint64.
type HashTable struct {
	acc   nvm.Accessor
	cap   int64
	mask  uint64
	count int64

	statusOff int64
	keysOff   int64
	valsOff   int64
}

const htHeader = 16

const (
	slotEmpty    = 0
	slotOccupied = 1
)

// HashTableBytes returns the pool footprint of a table able to hold bound
// entries: capacity is the next power of two above 4/3×bound (maximum load
// factor 0.75), power-of-two sized for cache-friendly masking as the paper
// prescribes.
func HashTableBytes(bound int64) int64 {
	c := tableCap(bound)
	return htHeader + c + c*8 + c*8
}

// tableCap converts an entry bound to a power-of-two slot capacity.
func tableCap(bound int64) int64 {
	if bound < 4 {
		bound = 4
	}
	c := int64(8)
	for c*3 < bound*4 {
		c <<= 1
	}
	return c
}

// NewHashTable allocates a table sized for bound entries in the pool.  Only
// the header and status buffer are zeroed — the separate status buffer of
// Figure 4 exists precisely so the 16x larger key/value buffers need no
// initialization traffic.
func NewHashTable(p *pmem.Pool, bound int64) (*HashTable, error) {
	if bound < 0 {
		return nil, fmt.Errorf("pstruct: negative bound %d", bound)
	}
	c := tableCap(bound)
	acc, err := p.Alloc(HashTableBytes(bound), 8)
	if err != nil {
		return nil, err
	}
	acc.Fill(0, htHeader+c, 0)
	acc.PutUint64(0, uint64(c))
	return newHT(acc, c), nil
}

// OpenHashTable reattaches to a table previously allocated at pool offset
// off.
func OpenHashTable(p *pmem.Pool, off int64) (*HashTable, error) {
	hdr := p.AccessorAt(off, htHeader)
	c := int64(hdr.Uint64(0))
	if c <= 0 || c&(c-1) != 0 {
		return nil, fmt.Errorf("pstruct: corrupt hash table capacity %d", c)
	}
	acc := p.AccessorAt(off, htHeader+c+c*16)
	t := newHT(acc, c)
	t.count = int64(acc.Uint64(8))
	return t, nil
}

func newHT(acc nvm.Accessor, c int64) *HashTable {
	return &HashTable{
		acc:       acc,
		cap:       c,
		mask:      uint64(c - 1),
		statusOff: htHeader,
		keysOff:   htHeader + c,
		valsOff:   htHeader + c + c*8,
	}
}

// Base returns the table's pool offset.
func (t *HashTable) Base() int64 { return t.acc.Base() }

// Cap returns the slot capacity.
func (t *HashTable) Cap() int64 { return t.cap }

// Len returns the number of occupied slots.
func (t *HashTable) Len() int64 { return t.count }

// hashU64 is a splitmix64 finalizer: cheap, well distributed.
func hashU64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// probe returns the slot for key at probe step i.  The step increment is
// derived from a second hash and forced odd, so the sequence visits every
// slot of the power-of-two table: the paper's "pseudo-random detection and
// hashing" collision policy.
func (t *HashTable) probe(h uint64, i uint64) int64 {
	step := (h>>32)*2 + 1
	return int64((h + i*step) & t.mask)
}

// find locates key's slot.  It returns (slot, true) when present, or the
// first empty slot and false when absent.
func (t *HashTable) find(key uint64) (int64, bool) {
	h := hashU64(key)
	for i := uint64(0); ; i++ {
		s := t.probe(h, i)
		if t.acc.Byte(t.statusOff+s) == slotEmpty {
			return s, false
		}
		if t.acc.Uint64(t.keysOff+s*8) == key {
			return s, true
		}
		if int64(i) >= t.cap {
			// Table full of other keys; no empty slot exists.
			return -1, false
		}
	}
}

// Put sets key to value, inserting if absent.  The in-pool count field is
// written back by Flush, not per operation.
func (t *HashTable) Put(key, value uint64) error {
	s, ok := t.find(key)
	if !ok {
		if s < 0 || t.count >= t.cap {
			return ErrFull
		}
		t.acc.PutByte(t.statusOff+s, slotOccupied)
		t.acc.PutUint64(t.keysOff+s*8, key)
		t.count++
	}
	t.acc.PutUint64(t.valsOff+s*8, value)
	return nil
}

// Add increments key's value by delta (inserting with delta if absent) and
// returns the new value.  This is the frequency-counter operation every
// analytics task uses.
func (t *HashTable) Add(key, delta uint64) (uint64, error) {
	s, ok := t.find(key)
	if !ok {
		if s < 0 || t.count >= t.cap {
			return 0, ErrFull
		}
		t.acc.PutByte(t.statusOff+s, slotOccupied)
		t.acc.PutUint64(t.keysOff+s*8, key)
		t.acc.PutUint64(t.valsOff+s*8, delta)
		t.count++
		return delta, nil
	}
	v := t.acc.Uint64(t.valsOff+s*8) + delta
	t.acc.PutUint64(t.valsOff+s*8, v)
	return v, nil
}

// Get returns key's value, or ErrNotFound.
func (t *HashTable) Get(key uint64) (uint64, error) {
	s, ok := t.find(key)
	if !ok {
		return 0, ErrNotFound
	}
	return t.acc.Uint64(t.valsOff + s*8), nil
}

// Range calls fn for every occupied slot; fn returning false stops early.
// Iteration order is the slot order, not insertion order.
func (t *HashTable) Range(fn func(key, value uint64) bool) {
	// Scan the status buffer in batches to keep device traffic sequential.
	// The zero-copy view is re-fetched per batch: the key/value reads below
	// may write to other structures through fn, but never to this table's
	// status run, so the current view stays valid for its whole batch.
	const batch = 1024
	for start := int64(0); start < t.cap; start += batch {
		n := t.cap - start
		if n > batch {
			n = batch
		}
		status := t.acc.ReadView(t.statusOff+start, n)
		for i := int64(0); i < n; i++ {
			if status[i] != slotOccupied {
				continue
			}
			s := start + i
			k := t.acc.Uint64(t.keysOff + s*8)
			v := t.acc.Uint64(t.valsOff + s*8)
			if !fn(k, v) {
				return
			}
		}
	}
}

// ResetSlots returns the table to its empty state by zeroing the status
// buffer and count (key/value buffers may hold garbage, which empty status
// bytes make unreachable).  Operation-level recovery uses it to rebuild a
// table before replaying the redo log.
func (t *HashTable) ResetSlots() {
	// Chunk boundaries match the historical staging-buffer writes, so the
	// charged granule sequence (and thus modeled time) is unchanged.
	const chunk = 4096
	for off := int64(0); off < t.cap; off += chunk {
		n := t.cap - off
		if n > chunk {
			n = chunk
		}
		t.acc.Fill(t.statusOff+off, n, 0)
	}
	t.count = 0
	t.acc.PutUint64(8, 0)
}

// SyncLen writes the count field back to the pool without flushing, for
// callers about to flush the containing region wholesale (a phase
// checkpoint).
func (t *HashTable) SyncLen() {
	t.acc.PutUint64(8, uint64(t.count))
}

// Flush writes the count field back and persists the whole table.
func (t *HashTable) Flush() error {
	t.acc.PutUint64(8, uint64(t.count))
	return t.acc.FlushAll()
}
