package metrics

import (
	"sync"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

func TestPhaseString(t *testing.T) {
	if PhaseInit.String() != "initialization" {
		t.Errorf("PhaseInit = %q", PhaseInit)
	}
	if PhaseTraversal.String() != "graph traversal" {
		t.Errorf("PhaseTraversal = %q", PhaseTraversal)
	}
	if Phase(0).String() != "unknown" {
		t.Errorf("Phase(0) = %q", Phase(0))
	}
}

func TestMeterCharge(t *testing.T) {
	var m Meter
	m.Charge(10, 25)
	m.Charge(0, 100)  // no-op
	m.Charge(-5, 100) // no-op
	if got := m.Nanos(); got != 250 {
		t.Errorf("Nanos = %d, want 250", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge(1, 3)
			}
		}()
	}
	wg.Wait()
	if got := m.Nanos(); got != 8*1000*3 {
		t.Errorf("Nanos = %d", got)
	}
}

func TestSpanCapturesDeviceAndCPU(t *testing.T) {
	dev := nvm.New(nvm.KindNVM, 4096)
	defer dev.Close()
	var m Meter

	// Pre-existing activity must not leak into the span.
	buf := make([]byte, 256)
	dev.ReadAt(buf, 0)
	m.Charge(100, 10)

	s := Start(dev, &m)
	dev.WriteAt(buf, 0)
	m.Charge(5, 20)
	s.Stop()

	if s.Device.Writes != 1 || s.Device.Reads != 0 {
		t.Errorf("device delta = %+v", s.Device)
	}
	if s.CPUNanos != 100 {
		t.Errorf("CPU delta = %d, want 100", s.CPUNanos)
	}
	if s.Wall <= 0 {
		t.Error("wall not measured")
	}
	if s.Total() != s.Modeled()+s.CPU() {
		t.Error("Total != Modeled + CPU")
	}
}

func TestSpanNilSources(t *testing.T) {
	s := Start(nil, nil)
	time.Sleep(time.Millisecond)
	s.Stop()
	if s.Wall <= 0 {
		t.Error("wall not measured")
	}
	if s.Total() != 0 {
		t.Errorf("Total = %v, want 0 (no modeled sources)", s.Total())
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{
		Init:      Span{CPUNanos: 100},
		Traversal: Span{CPUNanos: 50},
	}
	if b.Total() != 150 {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestMemEstimates(t *testing.T) {
	if MapBytes(10, 4, 8) != 10*(4+8+48) {
		t.Errorf("MapBytes = %d", MapBytes(10, 4, 8))
	}
	if SliceBytes(7, 8) != 56 {
		t.Errorf("SliceBytes = %d", SliceBytes(7, 8))
	}
	if StringsBytes(2, 100) != 2*16+100 {
		t.Errorf("StringsBytes = %d", StringsBytes(2, 100))
	}
}

func TestMergeParallel(t *testing.T) {
	a := Span{CPUNanos: 100, Device: nvm.Stats{ModeledNanos: 400, Reads: 3, BytesRead: 64}}
	b := Span{CPUNanos: 900, Device: nvm.Stats{ModeledNanos: 100, Reads: 1, BytesRead: 16}}
	m := MergeParallel(a, b)
	// Critical path is the slowest lane (b: 1000ns), not the sum (1500ns).
	if m.Total() != 1000 {
		t.Errorf("Total = %v, want 1000ns critical path", m.Total())
	}
	// Work accounts sum across lanes.
	if m.CPUNanos != 1000 || m.Device.ModeledNanos != 500 {
		t.Errorf("summed work = cpu %d dev %d, want 1000/500", m.CPUNanos, m.Device.ModeledNanos)
	}
	if m.Device.Reads != 4 || m.Device.BytesRead != 80 {
		t.Errorf("device stats = %+v, want summed reads", m.Device)
	}
	// Serial merge work extends the critical path.
	if got := m.AddSerial(50).Total(); got != 1050 {
		t.Errorf("AddSerial Total = %v, want 1050ns", got)
	}
	// A single-lane merge preserves the lane's total.
	if got := MergeParallel(a).Total(); got != a.Total() {
		t.Errorf("single-lane Total = %v, want %v", got, a.Total())
	}
}

func TestAddSerialSpan(t *testing.T) {
	a := MergeParallel(
		Span{CPUNanos: 100, Device: nvm.Stats{ModeledNanos: 400, Reads: 3}},
		Span{CPUNanos: 900, Device: nvm.Stats{ModeledNanos: 100, Reads: 1}})
	rec := Span{CPUNanos: 30, Device: nvm.Stats{ModeledNanos: 70, Reads: 2}}
	got := a.AddSerialSpan(rec)
	// The recovery's total extends the critical path serially.
	if got.Total() != 1000+100 {
		t.Errorf("Total = %v, want 1100ns", got.Total())
	}
	// Work accounts keep summing.
	if got.CPUNanos != 1030 || got.Device.ModeledNanos != 570 || got.Device.Reads != 6 {
		t.Errorf("summed work = cpu %d dev %d reads %d", got.CPUNanos, got.Device.ModeledNanos, got.Device.Reads)
	}
	// A plain (non-merged) receiver freezes its Modeled+CPU total first, so
	// the extension is not double-counted through the fallback.
	plain := Span{CPUNanos: 10, Device: nvm.Stats{ModeledNanos: 40}}
	if got := plain.AddSerialSpan(rec).Total(); got != 150 {
		t.Errorf("plain Total = %v, want 150ns", got)
	}
}

func TestLaneTails(t *testing.T) {
	spans := []Span{
		{CPUNanos: 100}, {CPUNanos: 200}, {CPUNanos: 300},
	}
	lanes := [][]int{{0, 2}, {1}}
	tails := LaneTails(lanes, spans)
	if len(tails) != 2 || tails[0] != 400 || tails[1] != 200 {
		t.Errorf("LaneTails = %v, want [400 200]", tails)
	}
	// The schedule's critical path is the max tail.
	if got := int64(MergeScheduled(lanes, spans).Total()); got != 400 {
		t.Errorf("MergeScheduled Total = %d, want max tail 400", got)
	}
}
