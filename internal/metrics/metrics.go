// Package metrics provides the measurement plumbing of the evaluation:
// phase timers that pair wall-clock time with modeled device time (the
// substitute for the paper's Optane hardware), and DRAM-residency estimation
// (the RSS analogue behind the paper's §VI-C space-savings numbers).
package metrics

import (
	"sync/atomic"
	"time"

	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Phase identifies the two phases of the paper's workflow (§IV-A).
type Phase int

// The workflow phases.
const (
	PhaseInit Phase = iota + 1
	PhaseTraversal
)

// String names the phase as the paper does.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "initialization"
	case PhaseTraversal:
		return "graph traversal"
	default:
		return "unknown"
	}
}

// Meter accumulates modeled CPU time.  Engines charge it for the
// data-structure work the device model cannot see — hash operations on
// DRAM-resident maps, per-token stream processing, sorting — using the Cost
// constants below.  Without this, a simulation would misattribute cost:
// wall-clock time charges the fine-grained engine ~100 ns of Go call
// overhead per 8-byte access while batched scans amortize it, inverting
// every ratio.
type Meter struct {
	nanos atomic.Int64
}

// Charge adds ops operations at perOp modeled nanoseconds each.
func (m *Meter) Charge(ops, perOp int64) {
	if ops > 0 {
		m.nanos.Add(ops * perOp)
	}
}

// Nanos returns the accumulated modeled CPU time.
func (m *Meter) Nanos() int64 { return m.nanos.Load() }

// Modeled per-operation CPU costs in nanoseconds, calibrated to commodity
// x86 (a hash-map operation is a hash plus a couple of dependent loads; a
// token scan step is a decode and branch; a sort entry is ~log n compares).
const (
	CostHashOp     = 25 // one hash-structure operation on DRAM
	CostScanToken  = 8  // per-token stream processing
	CostMergeEntry = 25 // merging one (key, count) entry between structures
	CostSortEntry  = 60 // per-entry comparison-sort work
	CostSeqOp      = 60 // one n-gram hash-structure operation (wider key,
	// growth amortization)
	CostTxOverhead = 1200 // software overhead of one general-purpose PMDK
	// transaction (undo-log setup, tx begin/commit bookkeeping); the naive
	// port of §III-B pays it per mutation, which is most of its 13.37x
)

// Span is one measured interval: wall-clock, the modeled device time, and
// the modeled CPU time accumulated during it.  Total — the evaluation's
// reporting metric — is modeled device + modeled CPU; wall time is kept for
// diagnostics (it measures the simulator, not the simulated system).
type Span struct {
	Wall     time.Duration
	Device   nvm.Stats
	CPUNanos int64

	// CriticalNanos, when non-zero, is the critical-path total of phases
	// that executed in parallel (set by MergeParallel): the span's Total.
	// Device and CPUNanos then hold the summed work of all lanes — the
	// right aggregates for endurance and energy accounting — while Total
	// reports the elapsed modeled time of the slowest lane.
	CriticalNanos int64

	started time.Time
	base    nvm.Stats
	baseCPU int64
	dev     nvm.Device
	cpu     *Meter
}

// Start begins measuring against dev and cpu (either may be nil).
func Start(dev nvm.Device, cpu *Meter) *Span {
	//ntalint:ignore determcheck Wall is a diagnostic sidecar: modeled figures come from Device/CPU meters, never wall-clock.
	s := &Span{started: time.Now(), dev: dev, cpu: cpu}
	if dev != nil {
		s.base = dev.Stats()
	}
	if cpu != nil {
		s.baseCPU = cpu.Nanos()
	}
	return s
}

// Stop ends the span and freezes its measurements.
func (s *Span) Stop() *Span {
	//ntalint:ignore determcheck Wall is a diagnostic sidecar: modeled figures come from Device/CPU meters, never wall-clock.
	s.Wall = time.Since(s.started)
	if s.dev != nil {
		s.Device = s.dev.Stats().Sub(s.base)
	}
	if s.cpu != nil {
		s.CPUNanos = s.cpu.Nanos() - s.baseCPU
	}
	return s
}

// Modeled returns the modeled device time of the span.
func (s Span) Modeled() time.Duration {
	return time.Duration(s.Device.ModeledNanos)
}

// CPU returns the modeled CPU time of the span.
func (s Span) CPU() time.Duration { return time.Duration(s.CPUNanos) }

// Total returns modeled device + modeled CPU time, the headline metric —
// or, for a parallel-merged span, the critical path across its lanes.
func (s Span) Total() time.Duration {
	if s.CriticalNanos > 0 {
		return time.Duration(s.CriticalNanos)
	}
	return s.Modeled() + s.CPU()
}

// MergeParallel aggregates the spans of work that executed concurrently —
// one lane per shard.  The merged Total is the slowest lane's Total (the
// parallel phase ends when the last shard finishes); device statistics and
// CPU nanos are summed across lanes, preserving totals for read/write and
// endurance accounting; Wall is the maximum, matching how the lanes
// actually overlapped.
func MergeParallel(spans ...Span) Span {
	var out Span
	for _, sp := range spans {
		if sp.Wall > out.Wall {
			out.Wall = sp.Wall
		}
		out.Device = out.Device.Add(sp.Device)
		out.CPUNanos += sp.CPUNanos
		if t := int64(sp.Total()); t > out.CriticalNanos {
			out.CriticalNanos = t
		}
	}
	return out
}

// MergeScheduled aggregates spans executed under a lane schedule: lanes[l]
// lists the indices of spans that ran back-to-back on lane l, and the lanes
// themselves ran in parallel.  A lane's total is the sum of its members'
// totals (serial execution), the merged critical path is the slowest lane,
// and device statistics and CPU nanos sum across all spans exactly as in
// MergeParallel — the schedule moves work between lanes, never changes its
// amount.  Full fan-out (one span per lane) reduces to MergeParallel.
func MergeScheduled(lanes [][]int, spans []Span) Span {
	var out Span
	for _, lane := range lanes {
		var laneTotal int64
		var laneWall time.Duration
		for _, i := range lane {
			sp := spans[i]
			laneWall += sp.Wall
			out.Device = out.Device.Add(sp.Device)
			out.CPUNanos += sp.CPUNanos
			laneTotal += int64(sp.Total())
		}
		if laneWall > out.Wall {
			out.Wall = laneWall
		}
		if laneTotal > out.CriticalNanos {
			out.CriticalNanos = laneTotal
		}
	}
	return out
}

// AddSerial extends a span with work that ran after its parallel lanes
// completed (the coordinator's merge step): serial nanos extend the
// critical path as well as the CPU account.
func (s Span) AddSerial(cpuNanos int64) Span {
	s.CPUNanos += cpuNanos
	if s.CriticalNanos > 0 {
		s.CriticalNanos += cpuNanos
	}
	return s
}

// AddSerialSpan extends a span with measured work that ran serially after
// it on the same critical path — a failover recovery extending a
// scatter-gather batch.  Device statistics, CPU nanos, and wall time add;
// the extension's Total lengthens the critical path.  The receiver's total
// is frozen first, so the added device work is not double-counted through
// the Modeled+CPU fallback.
func (s Span) AddSerialSpan(t Span) Span {
	total := int64(s.Total()) + int64(t.Total())
	s.Wall += t.Wall
	s.Device = s.Device.Add(t.Device)
	s.CPUNanos += t.CPUNanos
	s.CriticalNanos = total
	return s
}

// LaneTails reports each lane's serial total under a schedule — the values
// MergeScheduled takes the maximum of.  The failover benchmark uses it to
// show the tail lane before and after replica reads split shard batches
// across primary and follower images.
func LaneTails(lanes [][]int, spans []Span) []int64 {
	tails := make([]int64, len(lanes))
	for l, lane := range lanes {
		for _, i := range lane {
			tails[l] += int64(spans[i].Total())
		}
	}
	return tails
}

// Breakdown records per-phase spans for one task run (Table II).
type Breakdown struct {
	Init      Span
	Traversal Span
}

// Total returns the end-to-end total time.
func (b Breakdown) Total() time.Duration { return b.Init.Total() + b.Traversal.Total() }

// MemEstimate approximates the DRAM bytes held by common Go structures; the
// RSS analogue used for §VI-C.  Constants reflect amd64 Go runtime layouts:
// a map entry costs roughly its key+value plus ~48 bytes of bucket and
// header overhead; a slice costs its backing array.
type MemEstimate int64

// MapBytes estimates a map with n entries of the given key/value widths.
func MapBytes(n int, keyBytes, valBytes int) int64 {
	return int64(n) * int64(keyBytes+valBytes+48)
}

// SliceBytes estimates a slice of n elements of w bytes each.
func SliceBytes(n int, w int) int64 { return int64(n) * int64(w) }

// StringsBytes estimates a []string with the given total content length.
func StringsBytes(n int, contentLen int64) int64 {
	return int64(n)*16 + contentLen
}
