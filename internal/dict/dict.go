// Package dict implements the dictionary conversion TADOC applies before
// grammar inference: input text is tokenized into words and each distinct
// word is assigned a dense uint32 ID.  The grammar, the DAG pool, and every
// analytics task then operate on IDs; the dictionary maps results back to
// words at output time (e.g. for the sort task's alphabetical order).
package dict

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ErrCorrupt reports a dictionary that fails deserialization checks.
var ErrCorrupt = errors.New("dict: corrupt dictionary")

// Dictionary maps words to dense IDs and back.  IDs are assigned in first-
// appearance order starting at zero.  The zero value is ready to use.
//
// A Dictionary is safe for concurrent use: online ingestion interns novel
// words while query sessions convert result IDs back to words, so the two
// directions synchronize on one RWMutex.  IDs are stable once assigned —
// readers that captured an ID before an Intern still resolve it to the same
// word after.
type Dictionary struct {
	mu    sync.RWMutex
	words []string          // guarded by mu
	index map[string]uint32 // guarded by mu
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{index: make(map[string]uint32)}
}

// Len returns the number of distinct words (the vocabulary size).
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.words)
}

// Intern returns the ID for word, assigning the next free ID on first sight.
func (d *Dictionary) Intern(word string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.index == nil {
		d.index = make(map[string]uint32)
	}
	if id, ok := d.index[word]; ok {
		return id
	}
	id := uint32(len(d.words))
	d.words = append(d.words, word)
	d.index[word] = id
	return id
}

// Lookup returns the ID for word without interning.
func (d *Dictionary) Lookup(word string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.index[word]
	return id, ok
}

// Word returns the word for id.  It panics on an unknown ID, which indicates
// a corrupted grammar rather than a recoverable condition.
func (d *Dictionary) Word(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.words) {
		panic(fmt.Sprintf("dict: unknown word id %d (vocabulary %d)", id, len(d.words)))
	}
	return d.words[id]
}

// Words returns the vocabulary in ID order.  IDs are stable, so the returned
// snapshot's prefix never changes; callers must not modify it.
func (d *Dictionary) Words() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.words
}

// WriteTo serializes the dictionary: header, word count, length-prefixed
// words, trailing CRC of everything before it.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	if err := write([]byte("NTDCDICT")); err != nil {
		return n, err
	}
	if err := write(buf[:binary.PutUvarint(buf[:], uint64(len(d.words)))]); err != nil {
		return n, err
	}
	for _, w := range d.words {
		if err := write(buf[:binary.PutUvarint(buf[:], uint64(len(w)))]); err != nil {
			return n, err
		}
		if err := write([]byte(w)); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return n + int64(m), err
}

// ReadFrom deserializes a dictionary written by WriteTo, replacing the
// receiver's contents.  Integrity is verified by recomputing the body
// checksum from the parsed words and comparing it with the trailer.
func (d *Dictionary) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: r}
	br := bufio.NewReader(cr)

	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return cr.n, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if string(hdr[:]) != "NTDCDICT" {
		return cr.n, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return cr.n, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if count > 1<<31 {
		return cr.n, fmt.Errorf("%w: absurd word count %d", ErrCorrupt, count)
	}
	// count is untrusted: grow as parsing succeeds instead of preallocating.
	prealloc := count
	if prealloc > 4096 {
		prealloc = 4096
	}
	words := make([]string, 0, prealloc)
	index := make(map[string]uint32, prealloc)
	for i := uint64(0); i < count; i++ {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return cr.n, fmt.Errorf("%w: word %d length: %v", ErrCorrupt, i, err)
		}
		if ln > 1<<20 {
			return cr.n, fmt.Errorf("%w: absurd word length %d", ErrCorrupt, ln)
		}
		wb := make([]byte, ln)
		if _, err := io.ReadFull(br, wb); err != nil {
			return cr.n, fmt.Errorf("%w: word %d: %v", ErrCorrupt, i, err)
		}
		w := string(wb)
		index[w] = uint32(len(words))
		words = append(words, w)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return cr.n, fmt.Errorf("%w: crc: %v", ErrCorrupt, err)
	}
	tmp := &Dictionary{words: words, index: index}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != tmp.checksumLocked() {
		return cr.n, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d.mu.Lock()
	d.words = words
	d.index = index
	d.mu.Unlock()
	return cr.n, nil
}

// checksumLocked computes the CRC of the serialized body, matching WriteTo.
// Caller holds d.mu, or d is a locally constructed dictionary no other
// goroutine can reach (the ReadFrom verification path).
func (d *Dictionary) checksumLocked() uint32 {
	crc := crc32.NewIEEE()
	var buf [binary.MaxVarintLen64]byte
	crc.Write([]byte("NTDCDICT"))
	crc.Write(buf[:binary.PutUvarint(buf[:], uint64(len(d.words)))])
	for _, w := range d.words {
		crc.Write(buf[:binary.PutUvarint(buf[:], uint64(len(w)))])
		crc.Write([]byte(w))
	}
	return crc.Sum32()
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
