package dict

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	a2 := d.Intern("alpha")
	if a != 0 || b != 1 || a2 != a {
		t.Errorf("ids = %d, %d, %d", a, b, a2)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Word(a) != "alpha" || d.Word(b) != "beta" {
		t.Errorf("Word() mapping broken")
	}
}

func TestLookup(t *testing.T) {
	d := New()
	d.Intern("x")
	if id, ok := d.Lookup("x"); !ok || id != 0 {
		t.Errorf("Lookup(x) = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
}

func TestWordPanicsOnUnknownID(t *testing.T) {
	d := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Word(5)
}

func TestZeroValueUsable(t *testing.T) {
	var d Dictionary
	if id := d.Intern("w"); id != 0 {
		t.Errorf("zero-value Intern = %d", id)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	d := New()
	for _, w := range []string{"the", "quick", "brown", "fox", "über", "日本語", ""} {
		d.Intern(w)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	d2 := New()
	if _, err := d2.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", d2.Len(), d.Len())
	}
	for i, w := range d.Words() {
		if d2.Word(uint32(i)) != w {
			t.Errorf("word %d = %q, want %q", i, d2.Word(uint32(i)), w)
		}
		if id, ok := d2.Lookup(w); !ok || id != uint32(i) {
			t.Errorf("Lookup(%q) = %d, %v", w, id, ok)
		}
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	d := New()
	d.Intern("hello")
	d.Intern("world")
	var buf bytes.Buffer
	d.WriteTo(&buf)

	// Bad magic.
	bad := append([]byte{}, buf.Bytes()...)
	bad[0] ^= 0xff
	if _, err := New().ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
	// Flipped payload byte.
	bad = append([]byte{}, buf.Bytes()...)
	bad[12] ^= 0xff
	if _, err := New().ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped byte: %v", err)
	}
	// Truncated.
	if _, err := New().ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()-2])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: %v", err)
	}
	// Empty.
	if _, err := New().ReadFrom(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: %v", err)
	}
}

func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		d := New()
		for _, w := range words {
			if len(w) > 100 {
				w = w[:100]
			}
			d.Intern(w)
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		d2 := New()
		if _, err := d2.ReadFrom(&buf); err != nil {
			return false
		}
		if d2.Len() != d.Len() {
			return false
		}
		for i, w := range d.Words() {
			if d2.Word(uint32(i)) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTokenizerNormalize(t *testing.T) {
	var tk Tokenizer
	cases := map[string]string{
		"Hello":    "hello",
		"world,":   "world",
		"(quoted)": "quoted",
		"it's":     "it's", // interior punctuation kept
		"!!!":      "",
		"A-B":      "a-b",
	}
	for in, want := range cases {
		if got := tk.Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenizerOptions(t *testing.T) {
	tk := Tokenizer{KeepCase: true, KeepPunct: true}
	if got := tk.Normalize("Hello,"); got != "Hello," {
		t.Errorf("KeepCase+KeepPunct Normalize = %q", got)
	}
}

func TestTokenizerSplit(t *testing.T) {
	var tk Tokenizer
	got := tk.Split("The quick, brown FOX!  ...  jumps")
	want := []string{"the", "quick", "brown", "fox", "jumps"}
	if len(got) != len(want) {
		t.Fatalf("Split = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEncodeStreamMatchesString(t *testing.T) {
	text := "a b c a b a\nnew line tokens a"
	var tk Tokenizer
	d1, d2 := New(), New()
	fromString := tk.EncodeString(d1, text)
	fromReader, err := tk.Encode(d2, strings.NewReader(text))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(fromString) != len(fromReader) {
		t.Fatalf("lengths differ: %d vs %d", len(fromString), len(fromReader))
	}
	for i := range fromString {
		if fromString[i] != fromReader[i] {
			t.Errorf("id %d differs: %d vs %d", i, fromString[i], fromReader[i])
		}
	}
	if d1.Len() != d2.Len() {
		t.Errorf("vocab sizes differ: %d vs %d", d1.Len(), d2.Len())
	}
}

func TestEncodeIDStability(t *testing.T) {
	var tk Tokenizer
	d := New()
	ids := tk.EncodeString(d, "a b a c a")
	want := []uint32{0, 1, 0, 2, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}
