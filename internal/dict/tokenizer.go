package dict

import (
	"bufio"
	"io"
	"strings"
	"unicode"
)

// Tokenizer splits text into the words TADOC compresses.  The default
// configuration matches the paper's benchmarks: whitespace-delimited tokens,
// lowercased, with leading/trailing punctuation stripped so "word," and
// "word" count as the same term.
type Tokenizer struct {
	// KeepCase disables lowercasing.
	KeepCase bool
	// KeepPunct disables stripping of leading/trailing punctuation.
	KeepPunct bool
}

// Normalize applies the tokenizer's normalization to one raw token.  It
// returns "" when the token normalizes to nothing (e.g. pure punctuation).
func (t Tokenizer) Normalize(tok string) string {
	if !t.KeepPunct {
		tok = strings.TrimFunc(tok, func(r rune) bool {
			return unicode.IsPunct(r) || unicode.IsSymbol(r)
		})
	}
	if !t.KeepCase {
		tok = strings.ToLower(tok)
	}
	return tok
}

// Split tokenizes s in memory.
func (t Tokenizer) Split(s string) []string {
	fields := strings.Fields(s)
	out := fields[:0]
	for _, f := range fields {
		if n := t.Normalize(f); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Encode tokenizes r and interns every token into d, returning the ID
// stream.  It streams, so arbitrarily large inputs use constant memory
// beyond the output slice.
func (t Tokenizer) Encode(d *Dictionary, r io.Reader) ([]uint32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	sc.Split(bufio.ScanWords)
	var ids []uint32
	for sc.Scan() {
		if n := t.Normalize(sc.Text()); n != "" {
			ids = append(ids, d.Intern(n))
		}
	}
	return ids, sc.Err()
}

// EncodeString is Encode over an in-memory string.
func (t Tokenizer) EncodeString(d *Dictionary, s string) []uint32 {
	toks := t.Split(s)
	ids := make([]uint32, len(toks))
	for i, tok := range toks {
		ids[i] = d.Intern(tok)
	}
	return ids
}
