package harness

import (
	"math"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

func tinySpec() datagen.Spec {
	return datagen.DatasetA.Scaled(0.05)
}

func TestGetCorpusCachesAndValidates(t *testing.T) {
	c1, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatalf("GetCorpus: %v", err)
	}
	c2, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatalf("GetCorpus: %v", err)
	}
	if c1 != c2 {
		t.Error("corpus not cached")
	}
	if c1.Bytes <= 0 || c1.CompressedBytes <= 0 {
		t.Errorf("sizes = %d, %d", c1.Bytes, c1.CompressedBytes)
	}
	if c1.CompressedBytes >= c1.Bytes {
		t.Errorf("compressed %d not smaller than raw %d", c1.CompressedBytes, c1.Bytes)
	}
	if err := c1.G.Validate(); err != nil {
		t.Errorf("cached grammar invalid: %v", err)
	}
}

func TestRunnersAgreeOnResultsShape(t *testing.T) {
	c, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []analytics.Task{analytics.WordCount, analytics.SequenceCount} {
		nt, err := RunNTADOC(c, task, core.Options{})
		if err != nil {
			t.Fatalf("RunNTADOC(%v): %v", task, err)
		}
		un, err := RunUncompressed(c, task, nvm.KindNVM)
		if err != nil {
			t.Fatalf("RunUncompressed(%v): %v", task, err)
		}
		td, err := RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			t.Fatalf("RunTADOC(%v): %v", task, err)
		}
		for _, r := range []Result{nt, un, td} {
			if r.Total <= 0 {
				t.Errorf("%s %v: nonpositive total %v", r.Engine, task, r.Total)
			}
			if r.Total != r.Init+r.Traversal {
				t.Errorf("%s %v: total %v != init %v + traversal %v",
					r.Engine, task, r.Total, r.Init, r.Traversal)
			}
		}
		if nt.NVMBytes <= 0 {
			t.Error("N-TADOC reported no NVM residency")
		}
		if td.DRAMBytes <= 0 {
			t.Error("TADOC reported no DRAM residency")
		}
	}
}

func TestSpeedupArithmetic(t *testing.T) {
	a := Result{Total: 100}
	b := Result{Total: 200}
	if got := a.Speedup(b); got != 2 {
		t.Errorf("Speedup = %f", got)
	}
	if got := (Result{}).Speedup(b); got != 0 {
		t.Errorf("zero-total speedup = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("empty = %f", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("nonpositive-only = %f", got)
	}
	if got := GeoMean([]float64{-1, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("mixed = %f", got)
	}
}

func TestBlockDeviceBudget(t *testing.T) {
	c, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// SSD and HDD runs must complete and be slower than NVM.
	nt, err := RunNTADOC(c, analytics.WordCount, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := RunNTADOC(c, analytics.WordCount, core.Options{Kind: nvm.KindSSD})
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := RunNTADOC(c, analytics.WordCount, core.Options{Kind: nvm.KindHDD})
	if err != nil {
		t.Fatal(err)
	}
	if !(nt.Total < ssd.Total && ssd.Total < hdd.Total) {
		t.Errorf("media ordering violated: nvm=%v ssd=%v hdd=%v",
			nt.Total, ssd.Total, hdd.Total)
	}
}

func TestDiskReadNanosScalesWithBytes(t *testing.T) {
	small := diskReadNanos(4096)
	big := diskReadNanos(40960)
	if !(small > 0 && big >= 9*small) {
		t.Errorf("diskReadNanos: 4K=%v 40K=%v", small, big)
	}
}

// deterministicFields strips the wall-clock-dependent fields from a Result,
// keeping only what the cost model fully determines.
func deterministicFields(r Result) Result {
	r.Init, r.Traversal, r.Total = 0, 0, 0
	r.InitWall, r.TravWall = 0, 0
	return r
}

// TestConcurrentRunsMatchSerial runs the same NTADOC cells serially and then
// concurrently on different corpora and requires every modeled quantity —
// phase modeled times, memory footprints, and the full device Stats — to be
// bit-identical.  Cells own their devices, so concurrency may only change
// wall-clock.  Run under -race this also proves the cells share no device
// state.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	specA := datagen.DatasetA.Scaled(0.05)
	specB := datagen.DatasetB.Scaled(0.05)
	ca, err := GetCorpus(specA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := GetCorpus(specB)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		c    *Corpus
		task analytics.Task
	}
	cells := []cell{
		{ca, analytics.WordCount},
		{cb, analytics.WordCount},
		{ca, analytics.SequenceCount},
		{cb, analytics.SequenceCount},
	}

	serial := make([]Result, len(cells))
	for i, cl := range cells {
		r, err := RunNTADOC(cl.c, cl.task, core.Options{})
		if err != nil {
			t.Fatalf("serial cell %d: %v", i, err)
		}
		serial[i] = r
	}

	old := Parallelism()
	SetParallelism(len(cells))
	defer SetParallelism(old)

	concurrent := make([]Result, len(cells))
	err = ForEachCell(len(cells), func(i int) error {
		r, err := RunNTADOC(cells[i].c, cells[i].task, core.Options{})
		if err != nil {
			return err
		}
		concurrent[i] = r
		return nil
	})
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}

	for i := range cells {
		s, c := deterministicFields(serial[i]), deterministicFields(concurrent[i])
		if s != c {
			t.Errorf("cell %d: concurrent result diverged\nserial:     %+v\nconcurrent: %+v", i, s, c)
		}
	}
}
