package harness

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

func tinySpec() datagen.Spec {
	return datagen.DatasetA.Scaled(0.05)
}

func TestGetCorpusCachesAndValidates(t *testing.T) {
	c1, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatalf("GetCorpus: %v", err)
	}
	c2, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatalf("GetCorpus: %v", err)
	}
	if c1 != c2 {
		t.Error("corpus not cached")
	}
	if c1.Bytes <= 0 || c1.CompressedBytes <= 0 {
		t.Errorf("sizes = %d, %d", c1.Bytes, c1.CompressedBytes)
	}
	if c1.CompressedBytes >= c1.Bytes {
		t.Errorf("compressed %d not smaller than raw %d", c1.CompressedBytes, c1.Bytes)
	}
	if err := c1.G.Validate(); err != nil {
		t.Errorf("cached grammar invalid: %v", err)
	}
}

func TestRunnersAgreeOnResultsShape(t *testing.T) {
	c, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []analytics.Task{analytics.WordCount, analytics.SequenceCount} {
		nt, err := RunNTADOC(c, task, core.Options{})
		if err != nil {
			t.Fatalf("RunNTADOC(%v): %v", task, err)
		}
		un, err := RunUncompressed(c, task, nvm.KindNVM)
		if err != nil {
			t.Fatalf("RunUncompressed(%v): %v", task, err)
		}
		td, err := RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			t.Fatalf("RunTADOC(%v): %v", task, err)
		}
		for _, r := range []Result{nt, un, td} {
			if r.Total <= 0 {
				t.Errorf("%s %v: nonpositive total %v", r.Engine, task, r.Total)
			}
			if r.Total != r.Init+r.Traversal {
				t.Errorf("%s %v: total %v != init %v + traversal %v",
					r.Engine, task, r.Total, r.Init, r.Traversal)
			}
		}
		if nt.NVMBytes <= 0 {
			t.Error("N-TADOC reported no NVM residency")
		}
		if td.DRAMBytes <= 0 {
			t.Error("TADOC reported no DRAM residency")
		}
	}
}

func TestSpeedupArithmetic(t *testing.T) {
	a := Result{Total: 100}
	b := Result{Total: 200}
	if got := a.Speedup(b); got != 2 {
		t.Errorf("Speedup = %f", got)
	}
	if got := (Result{}).Speedup(b); got != 0 {
		t.Errorf("zero-total speedup = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("empty = %f", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("nonpositive-only = %f", got)
	}
	if got := GeoMean([]float64{-1, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("mixed = %f", got)
	}
}

func TestBlockDeviceBudget(t *testing.T) {
	c, err := GetCorpus(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// SSD and HDD runs must complete and be slower than NVM.
	nt, err := RunNTADOC(c, analytics.WordCount, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := RunNTADOC(c, analytics.WordCount, core.Options{Kind: nvm.KindSSD})
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := RunNTADOC(c, analytics.WordCount, core.Options{Kind: nvm.KindHDD})
	if err != nil {
		t.Fatal(err)
	}
	if !(nt.Total < ssd.Total && ssd.Total < hdd.Total) {
		t.Errorf("media ordering violated: nvm=%v ssd=%v hdd=%v",
			nt.Total, ssd.Total, hdd.Total)
	}
}

func TestDiskReadNanosScalesWithBytes(t *testing.T) {
	small := diskReadNanos(4096)
	big := diskReadNanos(40960)
	if !(small > 0 && big >= 9*small) {
		t.Errorf("diskReadNanos: 4K=%v 40K=%v", small, big)
	}
}

// TestRunShardScaling checks the shard-scaling runner's invariants: more
// shards mean a bigger grammar (lost cross-shard redundancy) but a shorter
// critical path.
func TestRunShardScaling(t *testing.T) {
	// Dataset A is a single file (unshardable); B is many small files.
	c, err := GetCorpus(datagen.DatasetB.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	ops := analytics.Ops()
	base, err := RunShardScaling(c, ops, 1, core.Options{})
	if err != nil {
		t.Fatalf("RunShardScaling(1): %v", err)
	}
	cell, err := RunShardScaling(c, ops, 4, core.Options{})
	if err != nil {
		t.Fatalf("RunShardScaling(4): %v", err)
	}
	if base.K != 1 || cell.K != 4 {
		t.Fatalf("K = %d, %d; want 1, 4", base.K, cell.K)
	}
	if cell.Symbols < base.Symbols {
		t.Errorf("4-shard grammar smaller (%d) than unsharded (%d)", cell.Symbols, base.Symbols)
	}
	if cell.TravTotal >= base.TravTotal {
		t.Errorf("4-shard traversal %v not faster than unsharded %v", cell.TravTotal, base.TravTotal)
	}
	if cell.BuildTotal <= 0 || cell.NVMBytes <= 0 {
		t.Errorf("cell = %+v", cell)
	}
}

// TestForEachCellCancelsOnError checks the first error stops the grid:
// queued cells never start, and the error propagates.
func TestForEachCellCancelsOnError(t *testing.T) {
	old := Parallelism()
	SetParallelism(2)
	defer SetParallelism(old)

	boom := errors.New("boom")
	var failed atomic.Bool
	var ranAfter atomic.Int32
	err := ForEachCell(40, func(i int) error {
		if failed.Load() {
			ranAfter.Add(1)
		}
		if i == 0 {
			failed.Store(true)
			return boom
		}
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failing cell closes the cancel channel before releasing its
	// concurrency slot, so at most parallelism-1 cells can be past the
	// cancellation check when the failure lands; everything queued after
	// must be skipped.
	if got := ranAfter.Load(); got > 1 {
		t.Errorf("%d cells started after the failure, want at most 1", got)
	}

	// The serial path stops at the failing cell too.
	SetParallelism(1)
	var ran atomic.Int32
	err = ForEachCell(8, func(i int) error {
		if i == 2 {
			return boom
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, boom) || ran.Load() != 2 {
		t.Errorf("serial: err = %v, ran = %d; want boom, 2", err, ran.Load())
	}
}

// deterministicFields strips the wall-clock-dependent fields from a Result,
// keeping only what the cost model fully determines.
func deterministicFields(r Result) Result {
	r.Init, r.Traversal, r.Total = 0, 0, 0
	r.InitWall, r.TravWall = 0, 0
	return r
}

// TestConcurrentRunsMatchSerial runs the same NTADOC cells serially and then
// concurrently on different corpora and requires every modeled quantity —
// phase modeled times, memory footprints, and the full device Stats — to be
// bit-identical.  Cells own their devices, so concurrency may only change
// wall-clock.  Run under -race this also proves the cells share no device
// state.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	specA := datagen.DatasetA.Scaled(0.05)
	specB := datagen.DatasetB.Scaled(0.05)
	ca, err := GetCorpus(specA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := GetCorpus(specB)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct {
		c    *Corpus
		task analytics.Task
	}
	cells := []cell{
		{ca, analytics.WordCount},
		{cb, analytics.WordCount},
		{ca, analytics.SequenceCount},
		{cb, analytics.SequenceCount},
	}

	serial := make([]Result, len(cells))
	for i, cl := range cells {
		r, err := RunNTADOC(cl.c, cl.task, core.Options{})
		if err != nil {
			t.Fatalf("serial cell %d: %v", i, err)
		}
		serial[i] = r
	}

	old := Parallelism()
	SetParallelism(len(cells))
	defer SetParallelism(old)

	concurrent := make([]Result, len(cells))
	err = ForEachCell(len(cells), func(i int) error {
		r, err := RunNTADOC(cells[i].c, cells[i].task, core.Options{})
		if err != nil {
			return err
		}
		concurrent[i] = r
		return nil
	})
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}

	for i := range cells {
		s, c := deterministicFields(serial[i]), deterministicFields(concurrent[i])
		if s != c {
			t.Errorf("cell %d: concurrent result diverged\nserial:     %+v\nconcurrent: %+v", i, s, c)
		}
	}
}
