package harness

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
)

// TestSerialRerunsDeterministic requires repeated serial runs of the same
// cell to produce identical modeled results: device layouts and charges must
// not inherit Go map iteration order anywhere in the init or traversal
// paths.  This is the single-run half of the concurrent-vs-serial guarantee.
func TestSerialRerunsDeterministic(t *testing.T) {
	c, err := GetCorpus(datagen.DatasetA.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunNTADOC(c, analytics.SequenceCount, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r2, err := RunNTADOC(c, analytics.SequenceCount, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if deterministicFields(r1) != deterministicFields(r2) {
			t.Fatalf("run %d: serial reruns diverge\nfirst: %+v\nrerun: %+v",
				i, deterministicFields(r1).Device, deterministicFields(r2).Device)
		}
	}
}
