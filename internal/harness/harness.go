// Package harness runs the paper's experiments: it builds (and caches) the
// synthetic corpora and their grammars, runs each task on each engine
// configuration, and reports paired wall/modeled timings plus memory
// accounting.  bench_test.go and cmd/benchfig are thin wrappers over it.
package harness

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/sequitur"
	"github.com/text-analytics/ntadoc/internal/tadoc"
	"github.com/text-analytics/ntadoc/internal/uncomp"
)

// Corpus is a generated dataset with its grammar, cached across runs.
type Corpus struct {
	Spec            datagen.Spec
	Files           [][]uint32
	Dict            *dict.Dictionary
	G               *cfg.Grammar
	Bytes           int64 // uncompressed token bytes
	CompressedBytes int64 // serialized grammar size (the on-disk input)
}

// corpusEntry is one cache slot: built at most once, awaited by every other
// caller of the same spec.  Holding a per-entry Once instead of the cache
// mutex during the (expensive) build lets concurrent grid cells construct
// different corpora at the same time.
type corpusEntry struct {
	once sync.Once
	c    *Corpus
	err  error
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*corpusEntry{}
)

// GetCorpus builds (or returns the cached) corpus for a spec.  It is safe
// for concurrent use: parallel grid cells that share a spec share one build.
func GetCorpus(spec datagen.Spec) (*Corpus, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", spec.Name, spec.Files, spec.TokensPer, spec.Vocab)
	corpusMu.Lock()
	e, ok := corpusCache[key]
	if !ok {
		e = &corpusEntry{}
		corpusCache[key] = e
	}
	corpusMu.Unlock()
	e.once.Do(func() { e.c, e.err = buildCorpus(spec) })
	return e.c, e.err
}

func buildCorpus(spec datagen.Spec) (*Corpus, error) {
	files, d := spec.GenerateWithDict()
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		return nil, fmt.Errorf("harness: infer %s: %w", spec.Name, err)
	}
	var bytes int64
	for _, f := range files {
		bytes += int64(len(f)) * 4
	}
	var cw countWriter
	if _, err := g.WriteTo(&cw); err != nil {
		return nil, err
	}
	return &Corpus{Spec: spec, Files: files, Dict: d, G: g, Bytes: bytes, CompressedBytes: cw.n}, nil
}

// parallelism is the experiment-grid concurrency level (≥ 1).  Each grid
// cell owns its own SimDevice and engine, so cells are independent; only
// wall-clock time changes with this setting — modeled figures do not.
var parallelism = 1

// SetParallelism sets how many experiment-grid cells run concurrently.
// Values below 1 are treated as 1 (serial).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism reports the configured grid concurrency.
func Parallelism() int { return parallelism }

// ForEachCell runs fn(i) for every i in [0, n), at most Parallelism() cells
// concurrently, and returns the first error by cell order.  Callers store
// results indexed by i and print them serially afterwards, so output is
// byte-identical to a serial run.  The first error cancels the rest of the
// grid: cells not yet started (queued behind the concurrency limit) are
// skipped, so a failing experiment aborts promptly instead of grinding
// through the remaining cells.
func ForEachCell(n int, fn func(i int) error) error {
	if parallelism <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallelism)
	done := make(chan struct{})
	var failed sync.Once
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				// The slot may have won the race against cancellation.
				select {
				case <-done:
					return
				default:
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Do(func() { close(done) })
				}
			}(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// countWriter measures serialized size without storing it.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// diskReadNanos models the initialization-time cost of reading the input
// from disk, which the paper's methodology includes ("all datasets are
// assumed to be stored on disk and the time measurement includes IO").  The
// baseline reads the full text; the compressed engines read the much
// smaller grammar file.  Sequential SSD read at the SSD model's block rate.
func diskReadNanos(bytes int64) time.Duration {
	blocks := (bytes + 4095) / 4096
	return time.Duration(blocks * nvm.SSDModel.ReadNanos)
}

// Result is one measured (engine, dataset, task) cell.
type Result struct {
	Engine  string
	Dataset string
	Task    analytics.Task

	Init      time.Duration // initialization phase total (wall + modeled)
	Traversal time.Duration // graph traversal phase total
	Total     time.Duration

	InitWall, TravWall       time.Duration
	InitModeled, TravModeled time.Duration

	DRAMBytes int64
	NVMBytes  int64
	Device    nvm.Stats
}

// Speedup returns how many times faster r is than other (total time).
func (r Result) Speedup(other Result) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(other.Total) / float64(r.Total)
}

// RunNTADOC builds an N-TADOC engine for the corpus and runs one task.
// Sequence preprocessing is enabled only for sequence tasks, so each task
// pays its own initialization cost, as in Table II.
func RunNTADOC(c *Corpus, task analytics.Task, opts core.Options) (Result, error) {
	opts.Sequences = task == analytics.SequenceCount || task == analytics.RankedInvertedIndex
	if opts.Model == nil && (opts.Kind == nvm.KindSSD || opts.Kind == nvm.KindHDD) {
		// The paper caps the page cache at 20% of the uncompressed dataset
		// ("memory budget").  At the paper's multi-GB scale that budget is
		// always a small multiple of the compressed working set (their
		// compression ratio is ~10x); our scaled corpora carry
		// proportionally larger fixed structure overheads, so we preserve
		// the budget-to-working-set relation: the cache is the larger of
		// 20% of the raw data and 1.5x the estimated pool.
		budget := c.Bytes / 5
		if est, err := core.PoolEstimate(c.G, opts); err == nil && est+est/2 > budget {
			budget = est + est/2
		}
		m := nvm.ModelFor(opts.Kind).WithCacheBytes(budget)
		opts.Model = &m
	}
	eng, err := core.New(c.G, c.Dict, opts)
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()
	if err := analytics.Run(eng, task); err != nil {
		return Result{}, err
	}
	init, trav := eng.InitSpan(), eng.LastTraversalSpan()
	diskIO := diskReadNanos(c.CompressedBytes)
	return Result{
		Engine:      "N-TADOC/" + opts.Kind.String() + "/" + opts.Persistence.String(),
		Dataset:     c.Spec.Name,
		Task:        task,
		Init:        init.Total() + diskIO,
		Traversal:   trav.Total(),
		Total:       init.Total() + diskIO + trav.Total(),
		InitWall:    init.Wall,
		TravWall:    trav.Wall,
		InitModeled: init.Modeled() + diskIO,
		TravModeled: trav.Modeled(),
		DRAMBytes:   eng.DRAMBytes(),
		NVMBytes:    eng.NVMBytes(),
		Device:      eng.Device().Stats(),
	}, nil
}

// RunUncompressed loads the raw tokens onto a device of the given kind and
// runs one task: the paper's baseline.
func RunUncompressed(c *Corpus, task analytics.Task, kind nvm.Kind) (Result, error) {
	model := nvm.ModelFor(kind)
	if kind == nvm.KindSSD || kind == nvm.KindHDD {
		model = model.WithCacheBytes(c.Bytes / 5)
	}
	dev := nvm.NewWithModel(kind, uncomp.RequiredSize(c.Files)+4096, model)
	defer dev.Discard()

	// The meter lives on the engine; the init span attaches after Load.
	initWall := metrics.Start(nil, nil)
	eng, err := uncomp.Load(dev, c.Dict, c.Files)
	if err != nil {
		return Result{}, err
	}
	initWall.Stop()
	initSpan := &metrics.Span{
		Wall:     initWall.Wall,
		Device:   dev.Stats(),
		CPUNanos: eng.Meter().Nanos(),
	}

	travSpan := metrics.Start(dev, eng.Meter())
	if err := analytics.Run(eng, task); err != nil {
		return Result{}, err
	}
	travSpan.Stop()

	// The baseline's intermediate results live in DRAM: estimate them by
	// the task's footprint over the raw corpus.
	dram := c.Bytes / 4 * 12 // rough map-entry footprint per token type
	diskIO := diskReadNanos(c.Bytes)
	return Result{
		Engine:      "uncompressed/" + kind.String(),
		Dataset:     c.Spec.Name,
		Task:        task,
		Init:        initSpan.Total() + diskIO,
		Traversal:   travSpan.Total(),
		Total:       initSpan.Total() + diskIO + travSpan.Total(),
		InitWall:    initSpan.Wall,
		TravWall:    travSpan.Wall,
		InitModeled: initSpan.Modeled() + diskIO,
		TravModeled: travSpan.Modeled(),
		DRAMBytes:   dram,
		Device:      dev.Stats(),
	}, nil
}

// RunTADOC runs one task on the DRAM TADOC engine: the theoretical upper
// bound (Fig 6).  The grammar and all intermediates live in DRAM; modeled
// device time is zero, so Total is pure wall time.
func RunTADOC(c *Corpus, task analytics.Task, strategy tadoc.Strategy) (Result, error) {
	initSpan := metrics.Start(nil, nil)
	eng, err := tadoc.New(c.G, c.Dict, strategy)
	if err != nil {
		return Result{}, err
	}
	initSpan.Stop()
	// The corpus cache hands the engine a parsed grammar; charge the
	// deserialization and DRAM DAG construction the paper's TADOC performs
	// at initialization (decode every body symbol, allocate rule nodes).
	var bodySyms int64
	for _, body := range c.G.Rules {
		bodySyms += int64(len(body))
	}
	eng.Meter().Charge(bodySyms, metrics.CostScanToken+metrics.CostHashOp)
	initSpan.CPUNanos += eng.Meter().Nanos()

	travSpan := metrics.Start(nil, eng.Meter())
	if err := analytics.Run(eng, task); err != nil {
		return Result{}, err
	}
	travSpan.Stop()
	diskIO := diskReadNanos(c.CompressedBytes)
	return Result{
		Engine:    "TADOC/DRAM",
		Dataset:   c.Spec.Name,
		Task:      task,
		Init:      initSpan.Total() + diskIO,
		Traversal: travSpan.Total(),
		Total:     initSpan.Total() + diskIO + travSpan.Total(),
		InitWall:  initSpan.Wall,
		TravWall:  travSpan.Wall,
		DRAMBytes: eng.DRAMBytes(),
	}, nil
}

// FusedCell compares a batch of ops run as one fused traversal against the
// same ops run back-to-back on an identical engine: modeled traversal time
// and device read traffic (initialization excluded from both sides).
type FusedCell struct {
	SeqNanos, FusedNanos time.Duration // modeled traversal time
	SeqReads, FusedReads int64         // device ReadAt calls
	SeqBytes, FusedBytes int64         // device bytes read
}

// RunFusedComparison builds two identical N-TADOC engines over the corpus
// and runs the ops fused on one and sequentially on the other.
func RunFusedComparison(c *Corpus, ops []analytics.Op, opts core.Options) (FusedCell, error) {
	for _, op := range ops {
		opts.Sequences = opts.Sequences || op.Keys() == analytics.KeySequences
	}
	run := func(fused bool) (trav time.Duration, reads, bytes int64, err error) {
		eng, err := core.New(c.G, c.Dict, opts)
		if err != nil {
			return 0, 0, 0, err
		}
		defer eng.Close()
		before := eng.Device().Stats()
		if fused {
			if _, err := eng.RunOps(ops); err != nil {
				return 0, 0, 0, err
			}
			trav = eng.LastTraversalSpan().Total()
		} else {
			for _, op := range ops {
				if _, err := eng.RunOp(op); err != nil {
					return 0, 0, 0, err
				}
				trav += eng.LastTraversalSpan().Total()
			}
		}
		after := eng.Device().Stats()
		return trav, after.Reads - before.Reads, after.BytesRead - before.BytesRead, nil
	}
	var cell FusedCell
	var err error
	if cell.SeqNanos, cell.SeqReads, cell.SeqBytes, err = run(false); err != nil {
		return FusedCell{}, err
	}
	if cell.FusedNanos, cell.FusedReads, cell.FusedBytes, err = run(true); err != nil {
		return FusedCell{}, err
	}
	return cell, nil
}

// ShardCell is one K point of the shard-scaling experiment: the corpus
// compressed into K shards built in parallel against a shared interning
// dictionary, unified into one shared rule table, with the fused batch
// scattered across the shards.  Modeled times are critical-path times (the
// slowest shard, plus the coordinator's merge for the traversal); Symbols
// is the total grammar size the independent builds produced (growing with
// K), DedupSymbols the stored size after cross-shard unification (shared
// rules counted once).
type ShardCell struct {
	K            int
	BuildTotal   time.Duration // parallel per-shard build, critical path
	TravTotal    time.Duration // fused batch traversal, critical path + merge
	Symbols      int64         // total rule-body symbols before unification
	DedupSymbols int64         // unified-form symbols: shared table + roots
	SharedRules  int           // shared rule table size
	NVMBytes     int64         // total pool residency across shards
}

// RunShardScaling partitions the corpus into k document shards, builds a
// sharded N-TADOC engine (one grammar, device, and pool per shard, built
// concurrently through the shared-dictionary dedup path), and runs ops as
// one fused scatter-gather batch.
func RunShardScaling(c *Corpus, ops []analytics.Op, k int, opts core.Options) (ShardCell, error) {
	for _, op := range ops {
		opts.Sequences = opts.Sequences || op.Keys() == analytics.KeySequences
	}
	sb, err := sequitur.InferShardsShared(c.Files, uint32(c.Dict.Len()), k)
	if err != nil {
		return ShardCell{}, err
	}
	opts.BuildTag = sb.Set.Checksum()
	se, err := core.NewSharded(sb.Shards, c.Dict, opts)
	if err != nil {
		return ShardCell{}, err
	}
	defer se.Close()
	if _, err := se.RunOps(ops); err != nil {
		return ShardCell{}, err
	}
	return ShardCell{
		K:            len(sb.Shards),
		BuildTotal:   se.InitSpan().Total(),
		TravTotal:    se.LastTraversalSpan().Total(),
		Symbols:      sb.RawSymbols,
		DedupSymbols: sb.Set.SymbolCount(),
		SharedRules:  len(sb.Set.Shared),
		NVMBytes:     se.NVMBytes(),
	}, nil
}

// FailoverCell is one failover benchmark point: the same fused K-shard
// batch run healthy, run with one shard's primary killed mid-batch (masked
// by follower failover), and run healthy with replica reads splitting each
// shard between primary and follower image.  All times are modeled
// critical-path totals; the tails are the slowest lane's serial total, the
// quantity replica reads shorten.
type FailoverCell struct {
	K           int
	Healthy     time.Duration // fused batch, all primaries live
	Failover    time.Duration // same batch with one primary dying mid-stream
	Recoveries  int           // failovers performed during the failover run
	ReplicaRead time.Duration // healthy batch under replica reads
	TailPlain   int64         // slowest lane, one unit per shard
	TailReplica int64         // slowest lane with shard batches split
}

// RunFailoverBench builds three replicated K-shard engines over the corpus
// (one synchronous follower per shard) and measures the failover matrix.
// Every run's results are checked bit-identical against the healthy run —
// the benchmark doubles as the acceptance check that failover and replica
// reads are invisible to callers.
func RunFailoverBench(c *Corpus, ops []analytics.Op, k int, opts core.Options) (FailoverCell, error) {
	for _, op := range ops {
		opts.Sequences = opts.Sequences || op.Keys() == analytics.KeySequences
	}
	sb, err := sequitur.InferShardsShared(c.Files, uint32(c.Dict.Len()), k)
	if err != nil {
		return FailoverCell{}, err
	}
	opts.BuildTag = sb.Set.Checksum()
	cell := FailoverCell{K: len(sb.Shards)}

	run := func(repl core.Replication, arm bool) (time.Duration, []int64, int, []any, error) {
		o := opts
		o.Replication = repl
		se, err := core.NewSharded(sb.Shards, c.Dict, o)
		if err != nil {
			return 0, nil, 0, nil, err
		}
		defer se.Close()
		if arm {
			dev := se.Shard(cell.K / 2).Device()
			dev.FailFromPersistEvent(dev.PersistEvents() + 1)
		}
		res, err := se.RunOps(ops)
		if err != nil {
			return 0, nil, 0, nil, err
		}
		return se.LastTraversalSpan().Total(), se.LastLaneTails(), se.FailoverCount(), res, nil
	}
	maxTail := func(tails []int64) int64 {
		var m int64
		for _, t := range tails {
			if t > m {
				m = t
			}
		}
		return m
	}

	repl := core.Replication{Followers: 1, Mode: core.ShipSync}
	var ref []any
	var tails []int64
	if cell.Healthy, tails, _, ref, err = run(repl, false); err != nil {
		return FailoverCell{}, fmt.Errorf("healthy replicated run: %w", err)
	}
	cell.TailPlain = maxTail(tails)
	var res []any
	if cell.Failover, _, cell.Recoveries, res, err = run(repl, true); err != nil {
		return FailoverCell{}, fmt.Errorf("failover run: %w", err)
	}
	if !reflect.DeepEqual(res, ref) {
		return FailoverCell{}, fmt.Errorf("failover run diverged from the healthy run")
	}
	repl.ReplicaReads = true
	if cell.ReplicaRead, tails, _, res, err = run(repl, false); err != nil {
		return FailoverCell{}, fmt.Errorf("replica-read run: %w", err)
	}
	if !reflect.DeepEqual(res, ref) {
		return FailoverCell{}, fmt.Errorf("replica-read run diverged from the healthy run")
	}
	cell.TailReplica = maxTail(tails)
	return cell, nil
}

// GeoMean returns the geometric mean of positive ratios.
func GeoMean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	var logSum float64
	n := 0
	for _, r := range ratios {
		if r > 0 {
			logSum += math.Log(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
