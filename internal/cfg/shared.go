package cfg

import (
	"fmt"
	"sync"
)

// Cross-shard rule unification.  Independently-built shard grammars re-learn
// the same repeated sequences — the cross-shard redundancy a single TADOC
// grammar would have shared — so the compressed form grows with the shard
// count even though the underlying phrase inventory does not.  This file
// recovers that sharing after the parallel build:
//
//   - every rule gets an expansion fingerprint, a canonical 128-bit rolling
//     hash of the token stream it expands to, computed bottom-up so nested
//     rules fold into their parents in O(body) per rule;
//   - an Interner — a concurrency-safe dictionary shard builders consult as
//     they finish — maps each distinct fingerprint to one global sequence
//     ID, so identical terminal/digram sequences discovered by different
//     shards meet in one shared vocabulary;
//   - UnifyShards rewrites the shard grammars bottom-up against that
//     vocabulary: the first shard to contribute a sequence donates its rule
//     body (translated to global IDs), every later shard's structurally
//     different rule with the same expansion collapses to a reference, and
//     the result is one shared rule table plus a per-shard root.
//
// The unified form preserves per-file expansions exactly — analytics
// results are bit-identical — while the shared table stores each repeated
// sequence once, regardless of how many shards rediscovered it.

// Fingerprint canonically identifies a symbol sequence by its expansion: a
// 128-bit polynomial rolling hash over the expanded token stream plus the
// expansion length.  Concatenation composes (hash(ab) derives from hash(a)
// and hash(b)), which is what lets nested rules fingerprint bottom-up
// without materializing any expansion.  Two sequences with equal
// fingerprints are treated as equal; with two independent 64-bit hashes and
// the length, a false merge needs a 128-bit collision between expansions of
// identical length.
type Fingerprint struct {
	h1, h2 uint64
	n      int64 // expansion length in tokens
}

// Len returns the expansion length the fingerprint covers.
func (f Fingerprint) Len() int64 { return f.n }

// Polynomial bases for the two independent hash lanes (odd, so they are
// invertible mod 2^64 and no state is lost when composing).
const (
	fpBase1 = 0x9e3779b97f4a7c15 | 1
	fpBase2 = 0xc2b2ae3d27d4eb4f | 1
)

// mix64 is the splitmix64 finalizer: a cheap bijective scramble that keeps
// nearby token IDs from producing algebraically related hash terms.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpPow returns base^n under 64-bit wraparound arithmetic.
func fpPow(base uint64, n int64) uint64 {
	r := uint64(1)
	for b := base; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= b
		}
		b *= b
	}
	return r
}

// fpToken fingerprints a single expanded token.  Separators occur only in
// roots (which never unify) but are salted into a disjoint space anyway so
// a root fingerprint can never equal a rule fingerprint.
func fpToken(tok uint64) Fingerprint {
	return Fingerprint{h1: mix64(tok + 1), h2: mix64(tok ^ 0x517cc1b727220a95), n: 1}
}

// append returns the fingerprint of the concatenation f·g.
func (f Fingerprint) append(g Fingerprint) Fingerprint {
	return Fingerprint{
		h1: f.h1*fpPow(fpBase1, g.n) + g.h1,
		h2: f.h2*fpPow(fpBase2, g.n) + g.h2,
		n:  f.n + g.n,
	}
}

// FingerprintRules computes every rule's expansion fingerprint bottom-up in
// topological order.  fps[0] covers the root (separators included); rules
// with equal expansions — however differently structured — get equal
// fingerprints.
func FingerprintRules(g *Grammar) ([]Fingerprint, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	fps := make([]Fingerprint, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		var fp Fingerprint
		for _, s := range g.Rules[ri] {
			switch {
			case s.IsRule():
				fp = fp.append(fps[s.RuleIndex()])
			case s.IsSep():
				fp = fp.append(fpToken(uint64(s.SepIndex()) | 1<<40))
			default:
				fp = fp.append(fpToken(uint64(s.WordID())))
			}
		}
		fps[ri] = fp
	}
	return fps, nil
}

// Interner is the concurrent shared interning dictionary consulted by shard
// builders: each distinct expansion fingerprint — a terminal or digram
// sequence some shard compressed into a rule — maps to one global sequence
// ID.  Builders intern concurrently as they finish, so the IDs are assigned
// in completion order and are provisional; UnifyShards assigns the final
// deterministic numbering.  What is schedule-independent, and what callers
// rely on: the set of distinct sequences, its size (Len), and each shard's
// novel-versus-shared split.
type Interner struct {
	mu  sync.Mutex
	ids map[Fingerprint]uint32
}

// NewInterner returns an empty shared dictionary.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Fingerprint]uint32)}
}

// Intern returns the global ID for fp, assigning the next one on first use,
// and reports whether fp was novel.  Safe for concurrent use.
func (it *Interner) Intern(fp Fingerprint) (uint32, bool) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.ids[fp]; ok {
		return id, false
	}
	id := uint32(len(it.ids))
	it.ids[fp] = id
	return id, true
}

// InternRules interns every non-root rule fingerprint of one shard and
// returns how many were novel — the shard's contribution to the shared
// vocabulary (the rest were already discovered by other shards).
func (it *Interner) InternRules(fps []Fingerprint) (novel int) {
	for _, fp := range fps[1:] {
		if _, isNew := it.Intern(fp); isNew {
			novel++
		}
	}
	return novel
}

// Len returns the number of distinct sequences interned.
func (it *Interner) Len() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.ids)
}

// SharedSet is a sharded grammar set rewritten against one shared rule
// table: Shared[i] is a rule body whose Rule symbols index Shared itself,
// and each shard keeps only its root.  Expanding shard s's root against the
// shared table reproduces exactly the files shard s was built from.
type SharedSet struct {
	Shared   [][]Symbol // shared rule table; Rule(i) indexes Shared
	NumWords uint32
	Shards   []SharedShard
}

// SharedShard is one shard's residue after unification: its root (words,
// shard-local separators, and references into the shared table) and its
// file manifest.
type SharedShard struct {
	Root     []Symbol
	NumFiles uint32
	Files    []string // optional, len == NumFiles when present
}

// reparseLimit bounds how many adjacent symbols a dictionary re-parse will
// coalesce into one run.  Real carving mismatches between shards span a few
// symbols; the cap keeps root re-parsing linear.
const reparseLimit = 64

// unifier is the working state of UnifyShards: the shared table under
// construction and the fingerprint dictionary over it.
type unifier struct {
	byFP   map[Fingerprint]uint32
	shared [][]Symbol
	gfps   []Fingerprint // fingerprint of each shared rule's expansion
}

// fpOf returns the expansion fingerprint of one translated symbol.
func (u *unifier) fpOf(s Symbol) Fingerprint {
	switch {
	case s.IsRule():
		return u.gfps[s.RuleIndex()]
	case s.IsSep():
		return fpToken(uint64(s.SepIndex()) | 1<<40)
	default:
		return fpToken(uint64(s.WordID()))
	}
}

// reparse rewrites a translated body against the dictionary: any run of
// adjacent symbols whose concatenated fingerprint already names a shared
// rule collapses to a reference to it.  This is what unifies shards that
// carved the same phrase at different rule boundaries — the run one shard
// spelled out (or split differently) snaps to the entry another shard
// registered first — and it is why unification recovers far more than
// exact whole-rule collisions.  Greedy leftmost-longest keeps the rewrite
// deterministic; expansions are preserved exactly by construction.
func (u *unifier) reparse(body []Symbol) []Symbol {
	// A replacement creates new adjacencies that can match in turn (the
	// shard may have carved one phrase into several pieces); iterate to a
	// fixpoint, which each pass approaches monotonically since every
	// rewrite strictly shortens the body.
	for {
		next := u.reparseOnce(body)
		if len(next) == len(body) {
			return next
		}
		body = next
	}
}

func (u *unifier) reparseOnce(body []Symbol) []Symbol {
	out := make([]Symbol, 0, len(body))
	for i := 0; i < len(body); {
		s := body[i]
		if s.IsSep() {
			// Separators occur once each; no dictionary entry contains one.
			out = append(out, s)
			i++
			continue
		}
		run := u.fpOf(s)
		match, matchEnd := uint32(0), 0
		for j := i + 1; j < len(body) && j-i < reparseLimit; j++ {
			n := body[j]
			if n.IsSep() {
				break
			}
			run = run.append(u.fpOf(n))
			if gid, ok := u.byFP[run]; ok {
				match, matchEnd = gid, j+1
			}
		}
		if matchEnd > 0 {
			out = append(out, Rule(match))
			i = matchEnd
			continue
		}
		out = append(out, s)
		i++
	}
	return out
}

// UnifyShards runs the post-build rule-unification pass: shard rules are
// hashed canonically bottom-up (fps comes from FingerprintRules, so nested
// rules already unified fold into their parents), every set of rules with
// one expansion collapses to a single entry in the shared table, and each
// novel body and shard root is re-parsed against the dictionary so
// equivalent-but-differently-carved structure snaps to the first shard's
// rules.  The pass is deterministic — shards are processed in order and the
// surviving table is renumbered by first use — regardless of the
// interleaving that built the shards or interned their fingerprints.
func UnifyShards(shards []*Grammar, fps [][]Fingerprint) (*SharedSet, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: empty shard set", ErrInvalid)
	}
	if len(fps) != len(shards) {
		return nil, fmt.Errorf("%w: %d fingerprint tables for %d shards", ErrInvalid, len(fps), len(shards))
	}
	set := &SharedSet{Shards: make([]SharedShard, len(shards))}
	u := &unifier{byFP: make(map[Fingerprint]uint32)}
	for si, g := range shards {
		if len(g.Rules) == 0 {
			return nil, fmt.Errorf("%w: shard %d has no rules", ErrInvalid, si)
		}
		if len(fps[si]) != len(g.Rules) {
			return nil, fmt.Errorf("%w: shard %d: %d fingerprints for %d rules",
				ErrInvalid, si, len(fps[si]), len(g.Rules))
		}
		if g.NumWords > set.NumWords {
			set.NumWords = g.NumWords
		}
		order, err := g.TopoOrder()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		toGlobal := make([]uint32, len(g.Rules))
		translate := func(body []Symbol) []Symbol {
			out := make([]Symbol, len(body))
			for i, s := range body {
				if s.IsRule() {
					out[i] = Rule(toGlobal[s.RuleIndex()])
				} else {
					out[i] = s
				}
			}
			return out
		}
		// Children before parents, so a body's rule references are already
		// global when its own fingerprint is looked up.
		for i := len(order) - 1; i >= 0; i-- {
			r := order[i]
			if r == 0 {
				continue
			}
			fp := fps[si][r]
			if gid, ok := u.byFP[fp]; ok {
				toGlobal[r] = gid
				continue
			}
			gid := uint32(len(u.shared))
			u.shared = append(u.shared, u.reparse(translate(g.Rules[r])))
			u.gfps = append(u.gfps, fp)
			u.byFP[fp] = gid
			toGlobal[r] = gid
		}
		set.Shards[si] = SharedShard{
			Root:     u.reparse(translate(g.Rules[0])),
			NumFiles: g.NumFiles,
			Files:    g.Files,
		}
	}
	set.Shared = u.shared
	set.recompress()
	set.inlineSingleUse()
	set.compact()
	return set, nil
}

// recompressRounds caps the digram-folding iteration; real corpora converge
// in a handful of rounds (one per level of phrase nesting).
const recompressRounds = 32

// recompress folds repeats that exist only ACROSS shards: a phrase that
// never repeats inside any single shard forms no rule anywhere, so after
// unification it still sits spelled out in several shard roots.  The pass
// runs RePair-style rounds over the whole unified form — any digram
// occurring twice anywhere (including in two different shards' roots)
// becomes a new shared rule — until the digram-uniqueness invariant the
// single-grammar build enjoys holds across the shard set too.
func (ss *SharedSet) recompress() {
	for round := 0; round < recompressRounds; round++ {
		counts := make(map[uint64]int)
		scan := func(body []Symbol) {
			for i := 0; i+1 < len(body); i++ {
				a, b := body[i], body[i+1]
				if a.IsSep() || b.IsSep() {
					continue
				}
				counts[uint64(a)<<32|uint64(b)]++
			}
		}
		for _, body := range ss.Shared {
			scan(body)
		}
		for _, sh := range ss.Shards {
			scan(sh.Root)
		}
		rules := make(map[uint64]uint32)
		changed := false
		apply := func(body []Symbol) []Symbol {
			out := make([]Symbol, 0, len(body))
			for i := 0; i < len(body); {
				if i+1 < len(body) {
					a, b := body[i], body[i+1]
					if !a.IsSep() && !b.IsSep() {
						key := uint64(a)<<32 | uint64(b)
						if counts[key] >= 2 {
							id, ok := rules[key]
							if !ok {
								id = uint32(len(ss.Shared))
								ss.Shared = append(ss.Shared, []Symbol{a, b})
								rules[key] = id
							}
							out = append(out, Rule(id))
							i += 2
							changed = true
							continue
						}
					}
				}
				out = append(out, body[i])
				i++
			}
			return out
		}
		// New rule bodies are appended past this bound and left alone: a
		// fresh {a, b} body holds the round's last occurrence of its digram,
		// which no longer repeats.
		bound := len(ss.Shared)
		for ri := 0; ri < bound; ri++ {
			ss.Shared[ri] = apply(ss.Shared[ri])
		}
		for si := range ss.Shards {
			ss.Shards[si].Root = apply(ss.Shards[si].Root)
		}
		if !changed {
			return
		}
	}
}

// inlineSingleUse restores the rule-utility invariant: a shared rule left
// with exactly one reference (greedy digram folding can strand one, and
// unification can bypass a donor shard's internal structure) is spliced
// back into its only use, which always saves one symbol and one rule.
// Chains of single-use rules are expanded recursively against a snapshot of
// the pre-splice bodies, so content never routes through a body that is
// mutated in the same pass.
func (ss *SharedSet) inlineSingleUse() {
	refs := make([]int, len(ss.Shared))
	count := func(body []Symbol) {
		for _, s := range body {
			if s.IsRule() {
				refs[s.RuleIndex()]++
			}
		}
	}
	for _, body := range ss.Shared {
		count(body)
	}
	for _, sh := range ss.Shards {
		count(sh.Root)
	}
	any := false
	for _, n := range refs {
		if n == 1 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	orig := make([][]Symbol, len(ss.Shared))
	copy(orig, ss.Shared)
	var out []Symbol
	var emit func(s Symbol)
	emit = func(s Symbol) {
		if s.IsRule() && refs[s.RuleIndex()] == 1 {
			for _, t := range orig[s.RuleIndex()] {
				emit(t)
			}
			return
		}
		out = append(out, s)
	}
	rewrite := func(body []Symbol) []Symbol {
		out = make([]Symbol, 0, len(body))
		for _, s := range body {
			emit(s)
		}
		return out
	}
	for ri := range ss.Shared {
		if refs[ri] == 1 {
			// Spliced into its sole parent; the leftover body is garbage
			// that compact() collects.
			ss.Shared[ri] = nil
			continue
		}
		ss.Shared[ri] = rewrite(orig[ri])
	}
	for si := range ss.Shards {
		ss.Shards[si].Root = rewrite(ss.Shards[si].Root)
	}
}

// compact drops shared rules no root can reach — a rule becomes garbage
// when every shard that contributed it had its referencing parents unified
// away into another shard's structure — and renumbers the survivors
// densely, preserving first-use order.
func (ss *SharedSet) compact() {
	live := make([]bool, len(ss.Shared))
	var stack []uint32
	visit := func(body []Symbol) {
		for _, s := range body {
			if s.IsRule() && !live[s.RuleIndex()] {
				live[s.RuleIndex()] = true
				stack = append(stack, s.RuleIndex())
			}
		}
	}
	for _, sh := range ss.Shards {
		visit(sh.Root)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(ss.Shared[r])
	}
	remap := make([]uint32, len(ss.Shared))
	kept := ss.Shared[:0]
	for i, body := range ss.Shared {
		if !live[i] {
			continue
		}
		remap[i] = uint32(len(kept))
		kept = append(kept, body)
	}
	if len(kept) == len(ss.Shared) {
		ss.Shared = kept
		return
	}
	rewrite := func(body []Symbol) {
		for i, s := range body {
			if s.IsRule() {
				body[i] = Rule(remap[s.RuleIndex()])
			}
		}
	}
	for _, body := range kept {
		rewrite(body)
	}
	for _, sh := range ss.Shards {
		rewrite(sh.Root)
	}
	ss.Shared = kept
}

// SymbolCount returns the stored size of the unified form in grammar
// symbols: each shared rule body once, plus every shard root.  This is the
// compression metric the shard-scaling experiment reports.
func (ss *SharedSet) SymbolCount() int64 {
	var n int64
	for _, body := range ss.Shared {
		n += int64(len(body))
	}
	for _, sh := range ss.Shards {
		n += int64(len(sh.Root))
	}
	return n
}

// NumShards returns the shard count.
func (ss *SharedSet) NumShards() int { return len(ss.Shards) }

// Validate checks the unified form's structural invariants: references in
// range, words within the vocabulary, no separators inside shared rules,
// per-shard separators local and in order, and an acyclic shared table.
func (ss *SharedSet) Validate() error {
	if len(ss.Shards) == 0 {
		return fmt.Errorf("%w: shared set has no shards", ErrInvalid)
	}
	if uint64(len(ss.Shared)) > MaxRules {
		return fmt.Errorf("%w: %d shared rules", ErrInvalid, len(ss.Shared))
	}
	check := func(body []Symbol, root bool, numFiles uint32) error {
		seps := uint32(0)
		for _, s := range body {
			switch {
			case s.IsRule():
				if int(s.RuleIndex()) >= len(ss.Shared) {
					return fmt.Errorf("%w: reference to missing shared rule %d", ErrInvalid, s.RuleIndex())
				}
			case s.IsSep():
				if !root {
					return fmt.Errorf("%w: separator inside shared rule", ErrInvalid)
				}
				if s.SepIndex() != seps {
					return fmt.Errorf("%w: separator %d out of order (want %d)", ErrInvalid, s.SepIndex(), seps)
				}
				seps++
			default:
				if s.WordID() >= ss.NumWords {
					return fmt.Errorf("%w: word %d beyond vocabulary %d", ErrInvalid, s.WordID(), ss.NumWords)
				}
			}
		}
		if root && seps != numFiles {
			return fmt.Errorf("%w: %d separators for %d files", ErrInvalid, seps, numFiles)
		}
		return nil
	}
	for i, body := range ss.Shared {
		if err := check(body, false, 0); err != nil {
			return fmt.Errorf("shared rule %d: %w", i, err)
		}
	}
	for si, sh := range ss.Shards {
		if err := check(sh.Root, true, sh.NumFiles); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		if sh.Files != nil && uint32(len(sh.Files)) != sh.NumFiles {
			return fmt.Errorf("%w: shard %d: %d file names for %d files",
				ErrInvalid, si, len(sh.Files), sh.NumFiles)
		}
	}
	// Acyclicity over the shared table: iterative DFS, since serialized
	// sets are untrusted input and rule chains can be arbitrarily deep.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(ss.Shared))
	type frame struct {
		rule uint32
		next int
	}
	var stack []frame
	for start := range ss.Shared {
		if state[start] != unvisited {
			continue
		}
		stack = append(stack[:0], frame{rule: uint32(start)})
		state[start] = visiting
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			body := ss.Shared[f.rule]
			advanced := false
			for f.next < len(body) {
				s := body[f.next]
				f.next++
				if !s.IsRule() {
					continue
				}
				child := s.RuleIndex()
				switch state[child] {
				case visiting:
					return fmt.Errorf("%w: cycle through shared rule %d", ErrInvalid, child)
				case unvisited:
					state[child] = visiting
					stack = append(stack, frame{rule: child})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced && f.next >= len(body) {
				state[f.rule] = done
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// Materialize rebuilds one self-contained Grammar per shard: the reachable
// closure of the shard's root over the shared table, renumbered locally in
// discovery order (the same stable layout sequitur emits, so the DAG pool
// lays out parents before the bulk of their children).  Engines build from
// the materialized grammars — each shard pool rehydrates exactly the shared
// rules its documents need, keeping every shard an independent persistence
// and recovery domain.
func (ss *SharedSet) Materialize() ([]*Grammar, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Grammar, len(ss.Shards))
	for si, sh := range ss.Shards {
		local := make(map[uint32]uint32) // shared index -> local rule index
		orderGlobal := []uint32{}
		// Discovery-order walk: assign a local index at first reference,
		// descending into a rule's body before continuing past it, so the
		// layout matches the builder's discovery order.  Iterative, because
		// serialized sets are untrusted and may nest deeply.
		type frame struct {
			body []Symbol
			next int
		}
		stack := []frame{{body: sh.Root}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(f.body) {
				stack = stack[:len(stack)-1]
				continue
			}
			s := f.body[f.next]
			f.next++
			if !s.IsRule() {
				continue
			}
			gid := s.RuleIndex()
			if _, seen := local[gid]; seen {
				continue
			}
			local[gid] = uint32(len(orderGlobal) + 1)
			orderGlobal = append(orderGlobal, gid)
			stack = append(stack, frame{body: ss.Shared[gid]})
		}
		g := &Grammar{
			Rules:    make([][]Symbol, 1+len(orderGlobal)),
			NumWords: ss.NumWords,
			NumFiles: sh.NumFiles,
			Files:    sh.Files,
		}
		translate := func(body []Symbol) []Symbol {
			out := make([]Symbol, len(body))
			for i, s := range body {
				if s.IsRule() {
					out[i] = Rule(local[s.RuleIndex()])
				} else {
					out[i] = s
				}
			}
			return out
		}
		g.Rules[0] = translate(sh.Root)
		for i, gid := range orderGlobal {
			g.Rules[i+1] = translate(ss.Shared[gid])
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		out[si] = g
	}
	return out, nil
}
