package cfg

import (
	"fmt"
	"io"
	"slices"

	"github.com/text-analytics/ntadoc/internal/dict"
)

// WriteDOT renders the grammar's DAG in Graphviz DOT format, the
// visualization of the paper's Figure 1(e).  Rule nodes show their index and
// body length; edges carry the reference multiplicity when it exceeds one.
// When d is non-nil and a rule's body is short, the node label includes the
// body rendered with real words.
func (g *Grammar) WriteDOT(w io.Writer, d *dict.Dictionary) error {
	if _, err := fmt.Fprintln(w, "digraph tadoc {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`)
	for ri, body := range g.Rules {
		label := fmt.Sprintf("R%d (%d syms)", ri, len(body))
		if d != nil && len(body) <= 8 {
			label = fmt.Sprintf("R%d: %s", ri, renderBody(body, d))
		}
		fmt.Fprintf(w, "  r%d [label=%q];\n", ri, label)
		edges := map[uint32]int{}
		for _, s := range body {
			if s.IsRule() {
				edges[s.RuleIndex()]++
			}
		}
		// Emit edges in child order so the rendered DOT is byte-identical
		// across runs (map iteration order is randomized).
		children := make([]uint32, 0, len(edges))
		for child := range edges {
			children = append(children, child)
		}
		slices.Sort(children)
		for _, child := range children {
			if n := edges[child]; n > 1 {
				fmt.Fprintf(w, "  r%d -> r%d [label=\"x%d\"];\n", ri, child, n)
			} else {
				fmt.Fprintf(w, "  r%d -> r%d;\n", ri, child)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// renderBody shows a short body in the paper's notation, substituting real
// words where a dictionary is available.
func renderBody(body []Symbol, d *dict.Dictionary) string {
	out := ""
	for i, s := range body {
		if i > 0 {
			out += " "
		}
		if s.IsWord() && d != nil && int(s.WordID()) < d.Len() {
			out += d.Word(s.WordID())
			continue
		}
		out += s.String()
	}
	return out
}
