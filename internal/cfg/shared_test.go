package cfg

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// expandSet expands every shard of a unified set back to token streams via
// Materialize, so round-trip tests compare against the source grammars.
func expandSet(t *testing.T, set *SharedSet) [][][]uint32 {
	t.Helper()
	mats, err := set.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	out := make([][][]uint32, len(mats))
	for i, g := range mats {
		out[i] = g.ExpandFiles()
	}
	return out
}

func mustFingerprint(t *testing.T, g *Grammar) []Fingerprint {
	t.Helper()
	fps, err := FingerprintRules(g)
	if err != nil {
		t.Fatalf("FingerprintRules: %v", err)
	}
	return fps
}

func TestFingerprintEqualExpansionsAcrossStructures(t *testing.T) {
	// Same expansion "w0 w1 w2 | " carved two different ways.
	g1 := &Grammar{
		NumWords: 3, NumFiles: 1,
		Rules: [][]Symbol{
			{Rule(1), Word(2), Sep(0)},
			{Word(0), Word(1)},
		},
	}
	g2 := &Grammar{
		NumWords: 3, NumFiles: 1,
		Rules: [][]Symbol{
			{Word(0), Rule(1), Sep(0)},
			{Word(1), Word(2)},
		},
	}
	f1, f2 := mustFingerprint(t, g1), mustFingerprint(t, g2)
	if f1[0] != f2[0] {
		t.Fatalf("equal expansions fingerprint differently: %v vs %v", f1[0], f2[0])
	}
	if f1[1] == f2[1] {
		t.Fatalf("different rule expansions collide: %v", f1[1])
	}
	if f1[0].Len() != 4 {
		t.Fatalf("root fingerprint length = %d, want 4", f1[0].Len())
	}
}

func TestFingerprintSepSalting(t *testing.T) {
	// A separator must never fingerprint like any word, even the word whose
	// ID matches the separator index.
	sep := fpToken(uint64(Sep(0).SepIndex()) | 1<<40)
	if sep == fpToken(0) {
		t.Fatal("separator fingerprint collides with word 0")
	}
}

func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	fps := make([]Fingerprint, 64)
	for i := range fps {
		fps[i] = fpToken(uint64(i % 16)) // 16 distinct, heavy contention
	}
	var wg sync.WaitGroup
	novel := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, fp := range fps {
				if _, isNew := it.Intern(fp); isNew {
					novel[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if it.Len() != 16 {
		t.Fatalf("Len = %d, want 16 distinct", it.Len())
	}
	total := 0
	for _, n := range novel {
		total += n
	}
	if total != 16 {
		t.Fatalf("novel interns sum to %d, want 16", total)
	}
	// Re-interning resolves to a stable ID.
	id1, isNew := it.Intern(fps[0])
	if isNew {
		t.Fatal("re-intern reported novel")
	}
	id2, _ := it.Intern(fps[0])
	if id1 != id2 {
		t.Fatalf("unstable ID: %d then %d", id1, id2)
	}
}

// unifyShards fingerprints and unifies hand-built shard grammars.
func unifyShards(t *testing.T, shards []*Grammar) *SharedSet {
	t.Helper()
	fps := make([][]Fingerprint, len(shards))
	for i, g := range shards {
		fps[i] = mustFingerprint(t, g)
	}
	set, err := UnifyShards(shards, fps)
	if err != nil {
		t.Fatalf("UnifyShards: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("unified set invalid: %v", err)
	}
	return set
}

func TestUnifyShardsRoundTripAndSharing(t *testing.T) {
	// Both shards discover the phrase "w0 w1"; shard 2 also spells out
	// shard 1's "w0 w1 w2" carving inline, which the dictionary re-parse
	// should snap to shard 1's structure.
	shards := []*Grammar{
		{
			NumWords: 6, NumFiles: 2,
			Files: []string{"a", "b"},
			Rules: [][]Symbol{
				{Rule(1), Word(2), Sep(0), Rule(1), Word(2), Word(3), Sep(1)},
				{Word(0), Word(1)},
			},
		},
		{
			NumWords: 6, NumFiles: 1,
			Files: []string{"c"},
			Rules: [][]Symbol{
				{Word(0), Word(1), Word(2), Word(5), Rule(1), Sep(0)},
				{Word(0), Word(1)},
			},
		},
	}
	want := make([][][]uint32, len(shards))
	var raw int64
	for i, g := range shards {
		want[i] = g.ExpandFiles()
		for _, body := range g.Rules {
			raw += int64(len(body))
		}
	}
	set := unifyShards(t, shards)
	if got := expandSet(t, set); !reflect.DeepEqual(got, want) {
		t.Fatalf("expansions changed by unification:\n got %v\nwant %v", got, want)
	}
	if set.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", set.NumShards())
	}
	if set.SymbolCount() >= raw {
		t.Fatalf("unified form (%d symbols) no smaller than raw shards (%d)", set.SymbolCount(), raw)
	}
}

func TestUnifyShardsNestedRulesCollapse(t *testing.T) {
	// The same nested structure built twice: bottom-up fingerprinting must
	// unify the inner rule first so the outer rules hash equal too.
	mk := func() *Grammar {
		return &Grammar{
			NumWords: 4, NumFiles: 1,
			Rules: [][]Symbol{
				{Rule(1), Rule(1), Sep(0)},
				{Rule(2), Word(3), Rule(2)},
				{Word(0), Word(1)},
			},
		}
	}
	shards := []*Grammar{mk(), mk()}
	want := [][][]uint32{shards[0].ExpandFiles(), shards[1].ExpandFiles()}
	set := unifyShards(t, shards)
	// Identical shards contribute identical structure: the shared table must
	// not have doubled.  (It may gain one extra rule: the root digram now
	// repeats across the two roots, so the recompression pass folds it.)
	single := unifyShards(t, []*Grammar{mk()})
	if len(set.Shared) >= 2*len(single.Shared) {
		t.Fatalf("two identical shards produced %d shared rules, one shard produces %d",
			len(set.Shared), len(single.Shared))
	}
	if got := expandSet(t, set); !reflect.DeepEqual(got, want) {
		t.Fatalf("expansions changed: got %v want %v", got, want)
	}
	if !reflect.DeepEqual(set.Shards[0].Root, set.Shards[1].Root) {
		t.Fatalf("identical shards got different roots: %v vs %v",
			set.Shards[0].Root, set.Shards[1].Root)
	}
}

func TestUnifyShardsCrossShardDigramRecompression(t *testing.T) {
	// The digram "w0 w1" appears once per shard — no shard forms a rule for
	// it, but across the set it repeats, so the recompression pass must fold
	// it into one shared rule referenced by both roots.
	mkShard := func(trail uint32) *Grammar {
		return &Grammar{
			NumWords: 8, NumFiles: 1,
			Rules: [][]Symbol{{Word(0), Word(1), Word(trail), Sep(0)}},
		}
	}
	shards := []*Grammar{mkShard(2), mkShard(3)}
	want := [][][]uint32{shards[0].ExpandFiles(), shards[1].ExpandFiles()}
	set := unifyShards(t, shards)
	if len(set.Shared) == 0 {
		t.Fatal("cross-shard digram not folded into a shared rule")
	}
	if got := expandSet(t, set); !reflect.DeepEqual(got, want) {
		t.Fatalf("expansions changed: got %v want %v", got, want)
	}
}

func TestUnifyShardsRuleUtilityAndReachability(t *testing.T) {
	// After unification every surviving shared rule must be referenced at
	// least twice (single-use rules are spliced, unreachable ones dropped).
	shards := []*Grammar{
		{
			NumWords: 8, NumFiles: 2,
			Rules: [][]Symbol{
				{Rule(1), Word(4), Sep(0), Rule(1), Word(5), Sep(1)},
				{Word(0), Word(1), Word(2)},
			},
		},
		{
			NumWords: 8, NumFiles: 1,
			Rules: [][]Symbol{
				{Rule(1), Word(6), Rule(1), Word(7), Sep(0)},
				{Word(0), Word(1), Word(2), Word(3)},
			},
		},
	}
	set := unifyShards(t, shards)
	refs := make([]int, len(set.Shared))
	count := func(body []Symbol) {
		for _, s := range body {
			if s.IsRule() {
				refs[s.RuleIndex()]++
			}
		}
	}
	for _, body := range set.Shared {
		count(body)
	}
	for _, sh := range set.Shards {
		count(sh.Root)
	}
	for ri, n := range refs {
		if n < 2 {
			t.Fatalf("shared rule %d has %d references; utility invariant broken", ri, n)
		}
	}
}

func TestUnifyShardsDeterministic(t *testing.T) {
	shards := shardGrammars(t)
	a := unifyShards(t, shards)
	b := unifyShards(t, shardGrammars(t))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("unification not deterministic:\n a %+v\n b %+v", a, b)
	}
}

func TestUnifyShardsInputErrors(t *testing.T) {
	g := shardGrammars(t)[0]
	fps := mustFingerprint(t, g)
	if _, err := UnifyShards(nil, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty shard set: err = %v, want ErrInvalid", err)
	}
	if _, err := UnifyShards([]*Grammar{g}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing fingerprints: err = %v, want ErrInvalid", err)
	}
	if _, err := UnifyShards([]*Grammar{g}, [][]Fingerprint{fps[:1]}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("short fingerprints: err = %v, want ErrInvalid", err)
	}
}

func TestSharedSetValidateRejections(t *testing.T) {
	valid := func() *SharedSet {
		return &SharedSet{
			Shared:   [][]Symbol{{Word(0), Word(1)}},
			NumWords: 4,
			Shards: []SharedShard{
				{Root: []Symbol{Rule(0), Sep(0), Rule(0), Sep(1)}, NumFiles: 2},
			},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline set invalid: %v", err)
	}
	cases := []struct {
		name  string
		mutil func(*SharedSet)
	}{
		{"no shards", func(ss *SharedSet) { ss.Shards = nil }},
		{"sep inside shared rule", func(ss *SharedSet) { ss.Shared[0] = []Symbol{Word(0), Sep(0)} }},
		{"ref out of range", func(ss *SharedSet) { ss.Shards[0].Root[0] = Rule(7) }},
		{"word beyond vocabulary", func(ss *SharedSet) { ss.Shared[0] = []Symbol{Word(99)} }},
		{"sep out of order", func(ss *SharedSet) {
			ss.Shards[0].Root = []Symbol{Rule(0), Sep(1), Rule(0), Sep(0)}
		}},
		{"sep count mismatch", func(ss *SharedSet) { ss.Shards[0].NumFiles = 3 }},
		{"files length mismatch", func(ss *SharedSet) { ss.Shards[0].Files = []string{"only-one"} }},
		{"cycle", func(ss *SharedSet) {
			ss.Shared = [][]Symbol{{Rule(1), Word(0)}, {Rule(0)}}
			ss.Shards[0].Root = []Symbol{Rule(0), Sep(0), Rule(0), Sep(1)}
		}},
		{"self cycle", func(ss *SharedSet) { ss.Shared[0] = []Symbol{Rule(0)} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ss := valid()
			tc.mutil(ss)
			if err := ss.Validate(); !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v, want ErrInvalid", err)
			}
			if _, err := ss.Materialize(); !errors.Is(err, ErrInvalid) {
				t.Fatalf("Materialize err = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestMaterializeSelfContainedShards(t *testing.T) {
	// Shard 2 references only part of the shared table; its materialized
	// grammar must contain exactly the reachable closure.
	set := &SharedSet{
		Shared: [][]Symbol{
			{Word(0), Word(1)},
			{Rule(0), Word(2)},
		},
		NumWords: 4,
		Shards: []SharedShard{
			{Root: []Symbol{Rule(1), Sep(0), Rule(1), Sep(1)}, NumFiles: 2, Files: []string{"a", "b"}},
			{Root: []Symbol{Rule(0), Word(3), Rule(0), Sep(0)}, NumFiles: 1, Files: []string{"c"}},
		},
	}
	mats, err := set.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if len(mats[0].Rules) != 3 { // root + both shared rules
		t.Fatalf("shard 0 has %d rules, want 3", len(mats[0].Rules))
	}
	if len(mats[1].Rules) != 2 { // root + Rule(0) only
		t.Fatalf("shard 1 has %d rules, want 2 (reachable closure only)", len(mats[1].Rules))
	}
	wantFiles := [][]uint32{{0, 1, 3, 0, 1}}
	if got := mats[1].ExpandFiles(); !reflect.DeepEqual(got, wantFiles) {
		t.Fatalf("shard 1 expansion = %v, want %v", got, wantFiles)
	}
	if got := mats[0].Files; !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("shard 0 files = %v", got)
	}
}
