package cfg

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// shardGrammars builds two small valid shard grammars with overlapping
// vocabulary and a shared subrule shape.
func shardGrammars(t *testing.T) []*Grammar {
	t.Helper()
	g1 := &Grammar{
		NumWords: 6,
		NumFiles: 2,
		Files:    []string{"a.txt", "b.txt"},
		Rules: [][]Symbol{
			{Rule(1), Word(2), Sep(0), Rule(1), Word(3), Sep(1)},
			{Word(0), Word(1)},
		},
	}
	g2 := &Grammar{
		NumWords: 6,
		NumFiles: 1,
		Files:    []string{"c.txt"},
		Rules: [][]Symbol{
			{Rule(1), Rule(1), Word(5), Sep(0)},
			{Word(4), Word(0)},
		},
	}
	for i, g := range []*Grammar{g1, g2} {
		if err := g.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", i, err)
		}
	}
	return []*Grammar{g1, g2}
}

func TestShardContainerRoundTrip(t *testing.T) {
	shards := shardGrammars(t)
	var buf bytes.Buffer
	n, err := WriteShards(&buf, shards)
	if err != nil {
		t.Fatalf("WriteShards: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteShards reported %d bytes, wrote %d", n, buf.Len())
	}
	if !IsShardContainer(buf.Bytes()) {
		t.Fatal("container magic not detected")
	}
	got, err := ReadShards(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadShards: %v", err)
	}
	if !reflect.DeepEqual(got, shards) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, shards)
	}
}

func TestShardContainerDetectsCorruption(t *testing.T) {
	shards := shardGrammars(t)
	var buf bytes.Buffer
	if _, err := WriteShards(&buf, shards); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncation and a flipped bit in the manifest framing must both fail.
	if _, err := ReadShards(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Fatal("truncated container accepted")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[9] ^= 0x01 // shard count byte
	if _, err := ReadShards(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt shard count accepted")
	}
}

func TestConcatShards(t *testing.T) {
	shards := shardGrammars(t)
	merged, err := ConcatShards(shards)
	if err != nil {
		t.Fatalf("ConcatShards: %v", err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged grammar invalid: %v", err)
	}
	if merged.NumFiles != 3 || len(merged.Files) != 3 {
		t.Fatalf("merged files = %d/%d, want 3", merged.NumFiles, len(merged.Files))
	}
	// The merged expansion must equal the shard expansions concatenated in
	// shard order.
	var want [][]uint32
	for _, g := range shards {
		want = append(want, g.ExpandFiles()...)
	}
	if got := merged.ExpandFiles(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged expansion mismatch:\n got %v\nwant %v", got, want)
	}
	// Single-shard concat is the identity.
	if one, err := ConcatShards(shards[:1]); err != nil || one != shards[0] {
		t.Fatalf("single-shard concat = (%v, %v)", one, err)
	}
	if _, err := ConcatShards(nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty concat error = %v", err)
	}
}

// sharedSetFixture unifies the standard shard grammars into a SharedSet.
func sharedSetFixture(t *testing.T) *SharedSet {
	t.Helper()
	shards := shardGrammars(t)
	fps := make([][]Fingerprint, len(shards))
	for i, g := range shards {
		f, err := FingerprintRules(g)
		if err != nil {
			t.Fatalf("FingerprintRules: %v", err)
		}
		fps[i] = f
	}
	set, err := UnifyShards(shards, fps)
	if err != nil {
		t.Fatalf("UnifyShards: %v", err)
	}
	return set
}

func TestSharedContainerRoundTrip(t *testing.T) {
	set := sharedSetFixture(t)
	var buf bytes.Buffer
	n, err := WriteSharedSet(&buf, set)
	if err != nil {
		t.Fatalf("WriteSharedSet: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteSharedSet reported %d bytes, wrote %d", n, buf.Len())
	}
	if !IsShardContainer(buf.Bytes()) || !IsSharedContainer(buf.Bytes()) {
		t.Fatal("shared container magic not detected")
	}
	got, err := ReadSharedSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSharedSet: %v", err)
	}
	if !reflect.DeepEqual(got, set) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, set)
	}
	// The legacy container must not read as a shared one, nor vice versa.
	if _, err := ReadShards(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shared container accepted by legacy reader")
	}
	var legacy bytes.Buffer
	if _, err := WriteShards(&legacy, shardGrammars(t)); err != nil {
		t.Fatal(err)
	}
	if IsSharedContainer(legacy.Bytes()) {
		t.Fatal("legacy container detected as shared")
	}
	if _, err := ReadSharedSet(bytes.NewReader(legacy.Bytes())); err == nil {
		t.Fatal("legacy container accepted by shared reader")
	}
}

func TestSharedContainerDetectsCorruption(t *testing.T) {
	set := sharedSetFixture(t)
	var buf bytes.Buffer
	if _, err := WriteSharedSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSharedSet(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Fatal("truncated container accepted")
	}
	// Every single-bit flip anywhere in the container must be rejected: the
	// shared section by its own checksum, the rest by the container's.
	for off := 0; off < len(data); off++ {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x01
		if _, err := ReadSharedSet(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
}

func TestWriteSharedSetRejectsInvalid(t *testing.T) {
	set := sharedSetFixture(t)
	set.Shards[0].Root[0] = Rule(uint32(len(set.Shared)) + 5)
	var buf bytes.Buffer
	if _, err := WriteSharedSet(&buf, set); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}
