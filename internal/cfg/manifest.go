package cfg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Sharded grammar container ("NTDCSHD1"): the compressed form of a corpus
// partitioned into K independently-built grammars.  The shard boundary is
// always whole files (separators never leave R0), so the manifest is fully
// described by each shard's file count; shard s covers global documents
// [fileBase(s), fileBase(s)+NumFiles(s)).
//
//	magic            8 bytes
//	numShards        uvarint
//	per shard:
//	  fileBase       uvarint (global index of the shard's first document)
//	  sectionLen     uvarint
//	  grammar        sectionLen bytes ("NTDCCFG1", self-checksummed)
//	crc32            4 bytes LE, over everything before it
//
// Each shard section carries its own CRC; the container CRC additionally
// covers the manifest framing, so a truncated or reordered shard list is
// detected even when every section is individually intact.

var shardMagic = []byte("NTDCSHD1")

// MaxShards bounds the shard count a container may declare.
const MaxShards = 1 << 16

// IsShardContainer reports whether b begins with the sharded-container
// magic.  Callers use it to dispatch between ReadGrammar and ReadShards.
func IsShardContainer(b []byte) bool {
	return len(b) >= len(shardMagic) && bytes.Equal(b[:len(shardMagic)], shardMagic)
}

// WriteShards serializes a sharded grammar set as one container.
func WriteShards(w io.Writer, shards []*Grammar) (int64, error) {
	if len(shards) == 0 {
		return 0, fmt.Errorf("%w: empty shard set", ErrInvalid)
	}
	if len(shards) > MaxShards {
		return 0, fmt.Errorf("%w: %d shards", ErrInvalid, len(shards))
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		_, err := cw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}
	if _, err := cw.Write(shardMagic); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(len(shards))); err != nil {
		return cw.n, err
	}
	fileBase := uint64(0)
	for i, g := range shards {
		var section bytes.Buffer
		if _, err := g.WriteTo(&section); err != nil {
			return cw.n, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := uv(fileBase); err != nil {
			return cw.n, err
		}
		if err := uv(uint64(section.Len())); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(section.Bytes()); err != nil {
			return cw.n, err
		}
		fileBase += uint64(g.NumFiles)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return cw.n + int64(m), err
}

// hashReader hashes exactly the bytes delivered to the parser — unlike a
// hashing layer under a bufio.Reader, read-ahead never pollutes the CRC.
type hashReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.crc.Write(p[:n])
	}
	return n, err
}

func (h *hashReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(h.r, b[:]); err != nil {
		return 0, err
	}
	h.crc.Write(b[:])
	return b[0], nil
}

// ReadShards deserializes a container written by WriteShards, validating
// every shard grammar and the manifest framing.
func ReadShards(r io.Reader) ([]*Grammar, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	hr := &hashReader{r: br, crc: crc32.NewIEEE()}
	fail := func(stage string, err error) ([]*Grammar, error) {
		return nil, fmt.Errorf("%w: shard container %s: %v", ErrInvalid, stage, err)
	}

	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(hr, magic); err != nil {
		return fail("magic", err)
	}
	if !bytes.Equal(magic, shardMagic) {
		return nil, fmt.Errorf("%w: bad shard magic %q", ErrInvalid, magic)
	}
	numShards, err := binary.ReadUvarint(hr)
	if err != nil {
		return fail("shard count", err)
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("%w: absurd shard count %d", ErrInvalid, numShards)
	}
	shards := make([]*Grammar, 0, clampPrealloc(numShards))
	fileBase := uint64(0)
	for i := uint64(0); i < numShards; i++ {
		base, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("file base", err)
		}
		if base != fileBase {
			return nil, fmt.Errorf("%w: shard %d declares file base %d, want %d",
				ErrInvalid, i, base, fileBase)
		}
		sectionLen, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("section length", err)
		}
		if sectionLen == 0 || sectionLen > 1<<40 {
			return nil, fmt.Errorf("%w: absurd shard section length %d", ErrInvalid, sectionLen)
		}
		g, err := ReadGrammar(io.LimitReader(hr, int64(sectionLen)))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards = append(shards, g)
		fileBase += uint64(g.NumFiles)
	}
	want := hr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fail("crc", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: shard container checksum mismatch", ErrInvalid)
	}
	return shards, nil
}

// ConcatShards merges per-shard grammars into one grammar equivalent to
// compressing the concatenated corpus with per-shard redundancy only: shard
// roots are concatenated into a single R0 with globally renumbered
// separators, and every shard's non-root rules are appended with their
// references remapped.  The merged view backs whole-archive operations
// (stats, decompression, the DRAM engine) without re-inferring anything.
func ConcatShards(shards []*Grammar) (*Grammar, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: empty shard set", ErrInvalid)
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	out := &Grammar{}
	totalRules := 1
	hasNames := true
	for _, g := range shards {
		totalRules += len(g.Rules) - 1
		if g.NumWords > out.NumWords {
			out.NumWords = g.NumWords
		}
		out.NumFiles += g.NumFiles
		hasNames = hasNames && g.Files != nil
	}
	if uint64(totalRules) > MaxRules {
		return nil, fmt.Errorf("%w: merged grammar needs %d rules", ErrInvalid, totalRules)
	}
	out.Rules = make([][]Symbol, 1, totalRules)
	if hasNames {
		out.Files = make([]string, 0, out.NumFiles)
	}
	var root []Symbol
	fileBase, ruleBase := uint32(0), uint32(1)
	for si, g := range shards {
		if len(g.Rules) == 0 {
			return nil, fmt.Errorf("%w: shard %d has no rules", ErrInvalid, si)
		}
		// Shard-local rule r >= 1 becomes global rule ruleBase + r - 1; the
		// shard root's symbols land directly in the merged R0.  References
		// to a shard's own root have no merged counterpart.
		var remapErr error
		remap := func(s Symbol) Symbol {
			switch {
			case s.IsRule():
				if s.RuleIndex() == 0 {
					remapErr = fmt.Errorf("%w: shard %d references its root", ErrInvalid, si)
					return s
				}
				return Rule(ruleBase + s.RuleIndex() - 1)
			case s.IsSep():
				return Sep(fileBase + s.SepIndex())
			default:
				return s
			}
		}
		for _, s := range g.Rules[0] {
			root = append(root, remap(s))
		}
		for _, body := range g.Rules[1:] {
			nb := make([]Symbol, len(body))
			for i, s := range body {
				nb[i] = remap(s)
			}
			out.Rules = append(out.Rules, nb)
		}
		if remapErr != nil {
			return nil, remapErr
		}
		if hasNames {
			out.Files = append(out.Files, g.Files...)
		}
		fileBase += g.NumFiles
		ruleBase += uint32(len(g.Rules) - 1)
	}
	out.Rules[0] = root
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
