package cfg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Sharded grammar container ("NTDCSHD1"): the compressed form of a corpus
// partitioned into K independently-built grammars.  The shard boundary is
// always whole files (separators never leave R0), so the manifest is fully
// described by each shard's file count; shard s covers global documents
// [fileBase(s), fileBase(s)+NumFiles(s)).
//
//	magic            8 bytes
//	numShards        uvarint
//	per shard:
//	  fileBase       uvarint (global index of the shard's first document)
//	  sectionLen     uvarint
//	  grammar        sectionLen bytes ("NTDCCFG1", self-checksummed)
//	crc32            4 bytes LE, over everything before it
//
// Each shard section carries its own CRC; the container CRC additionally
// covers the manifest framing, so a truncated or reordered shard list is
// detected even when every section is individually intact.

var shardMagic = []byte("NTDCSHD1")

// MaxShards bounds the shard count a container may declare.
const MaxShards = 1 << 16

// IsShardContainer reports whether b begins with either sharded-container
// magic (independent shards or shared-table revision).  Callers use it to
// dispatch between ReadGrammar and the shard readers.
func IsShardContainer(b []byte) bool {
	if len(b) < len(shardMagic) {
		return false
	}
	return bytes.Equal(b[:len(shardMagic)], shardMagic) ||
		bytes.Equal(b[:len(sharedMagic)], sharedMagic)
}

// IsSharedContainer reports whether b begins with the shared-table container
// magic specifically ("NTDCSHD2"), distinguishing it from the independent
// shard container for readers that preserve the unified form.
func IsSharedContainer(b []byte) bool {
	return len(b) >= len(sharedMagic) && bytes.Equal(b[:len(sharedMagic)], sharedMagic)
}

// WriteShards serializes a sharded grammar set as one container.
func WriteShards(w io.Writer, shards []*Grammar) (int64, error) {
	if len(shards) == 0 {
		return 0, fmt.Errorf("%w: empty shard set", ErrInvalid)
	}
	if len(shards) > MaxShards {
		return 0, fmt.Errorf("%w: %d shards", ErrInvalid, len(shards))
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		_, err := cw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}
	if _, err := cw.Write(shardMagic); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(len(shards))); err != nil {
		return cw.n, err
	}
	fileBase := uint64(0)
	for i, g := range shards {
		var section bytes.Buffer
		if _, err := g.WriteTo(&section); err != nil {
			return cw.n, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := uv(fileBase); err != nil {
			return cw.n, err
		}
		if err := uv(uint64(section.Len())); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(section.Bytes()); err != nil {
			return cw.n, err
		}
		fileBase += uint64(g.NumFiles)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return cw.n + int64(m), err
}

// hashReader hashes exactly the bytes delivered to the parser — unlike a
// hashing layer under a bufio.Reader, read-ahead never pollutes the CRC.
type hashReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.crc.Write(p[:n])
	}
	return n, err
}

func (h *hashReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(h.r, b[:]); err != nil {
		return 0, err
	}
	h.crc.Write(b[:])
	return b[0], nil
}

// ReadShards deserializes a container written by WriteShards, validating
// every shard grammar and the manifest framing.
func ReadShards(r io.Reader) ([]*Grammar, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	hr := &hashReader{r: br, crc: crc32.NewIEEE()}
	fail := func(stage string, err error) ([]*Grammar, error) {
		return nil, fmt.Errorf("%w: shard container %s: %v", ErrInvalid, stage, err)
	}

	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(hr, magic); err != nil {
		return fail("magic", err)
	}
	if !bytes.Equal(magic, shardMagic) {
		return nil, fmt.Errorf("%w: bad shard magic %q", ErrInvalid, magic)
	}
	numShards, err := binary.ReadUvarint(hr)
	if err != nil {
		return fail("shard count", err)
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("%w: absurd shard count %d", ErrInvalid, numShards)
	}
	shards := make([]*Grammar, 0, clampPrealloc(numShards))
	fileBase := uint64(0)
	for i := uint64(0); i < numShards; i++ {
		base, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("file base", err)
		}
		if base != fileBase {
			return nil, fmt.Errorf("%w: shard %d declares file base %d, want %d",
				ErrInvalid, i, base, fileBase)
		}
		sectionLen, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("section length", err)
		}
		if sectionLen == 0 || sectionLen > 1<<40 {
			return nil, fmt.Errorf("%w: absurd shard section length %d", ErrInvalid, sectionLen)
		}
		g, err := ReadGrammar(io.LimitReader(hr, int64(sectionLen)))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards = append(shards, g)
		fileBase += uint64(g.NumFiles)
	}
	want := hr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fail("crc", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: shard container checksum mismatch", ErrInvalid)
	}
	return shards, nil
}

// Shared-table container ("NTDCSHD2"): the unified compressed form of a
// sharded corpus after cross-shard rule unification — one shared rule table
// plus a root per shard.  The shared section is self-checksummed so it forms
// its own persistence domain: its integrity is verifiable independently of
// the per-shard roots, and a torn write anywhere in the container is
// attributed to the section it corrupted.
//
//	magic            8 bytes ("NTDCSHD2")
//	sectionLen       uvarint
//	shared section   sectionLen bytes (see below, self-checksummed)
//	numShards        uvarint
//	per shard:
//	  fileBase       uvarint (global index of the shard's first document)
//	  numFiles       uvarint
//	  hasNames       1 byte
//	  [file names]   numFiles × (uvarint length + bytes), when hasNames=1
//	  rootLen        uvarint
//	  root           rootLen × uvarint symbol (Rule() indexes the shared table)
//	crc32            4 bytes LE, over everything before it
//
// Shared section:
//
//	magic            8 bytes ("NTDCSHT1")
//	numWords         uvarint
//	numRules         uvarint
//	rules            numRules × (uvarint length + length × uvarint symbol)
//	crc32            4 bytes LE, over the section before it
var (
	sharedMagic      = []byte("NTDCSHD2")
	sharedTableMagic = []byte("NTDCSHT1")
)

// encodeSharedTable serializes the shared rule table as a self-checksummed
// section.
func encodeSharedTable(ss *SharedSet) []byte {
	var b bytes.Buffer
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(&b, crc)
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) { mw.Write(buf[:binary.PutUvarint(buf[:], v)]) }
	mw.Write(sharedTableMagic)
	uv(uint64(ss.NumWords))
	uv(uint64(len(ss.Shared)))
	for _, body := range ss.Shared {
		uv(uint64(len(body)))
		for _, s := range body {
			uv(uint64(s))
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	b.Write(crcBuf[:])
	return b.Bytes()
}

// Checksum fingerprints the shared rule table: the CRC32 of its serialized
// section, identical to the checksum embedded in the container.  Engines
// stamp it into their pool headers so recovery can tell shards of different
// unified builds apart.
func (ss *SharedSet) Checksum() uint32 {
	enc := encodeSharedTable(ss)
	return binary.LittleEndian.Uint32(enc[len(enc)-4:])
}

// WriteSharedSet serializes a unified shard set as one shared-table
// container.
func WriteSharedSet(w io.Writer, ss *SharedSet) (int64, error) {
	if err := ss.Validate(); err != nil {
		return 0, err
	}
	if len(ss.Shards) > MaxShards {
		return 0, fmt.Errorf("%w: %d shards", ErrInvalid, len(ss.Shards))
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	bw := bufio.NewWriterSize(cw, 64<<10)
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		_, err := bw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}
	if _, err := bw.Write(sharedMagic); err != nil {
		return cw.n, err
	}
	section := encodeSharedTable(ss)
	if err := uv(uint64(len(section))); err != nil {
		return cw.n, err
	}
	if _, err := bw.Write(section); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(len(ss.Shards))); err != nil {
		return cw.n, err
	}
	fileBase := uint64(0)
	for _, sh := range ss.Shards {
		if err := uv(fileBase); err != nil {
			return cw.n, err
		}
		if err := uv(uint64(sh.NumFiles)); err != nil {
			return cw.n, err
		}
		hasNames := byte(0)
		if sh.Files != nil {
			hasNames = 1
		}
		if err := bw.WriteByte(hasNames); err != nil {
			return cw.n, err
		}
		if hasNames == 1 {
			for _, name := range sh.Files {
				if err := uv(uint64(len(name))); err != nil {
					return cw.n, err
				}
				if _, err := bw.WriteString(name); err != nil {
					return cw.n, err
				}
			}
		}
		if err := uv(uint64(len(sh.Root))); err != nil {
			return cw.n, err
		}
		for _, s := range sh.Root {
			if err := uv(uint64(s)); err != nil {
				return cw.n, err
			}
		}
		fileBase += uint64(sh.NumFiles)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return cw.n + int64(m), err
}

// ReadSharedSet deserializes a container written by WriteSharedSet,
// verifying the shared section's own checksum, the container checksum, and
// the unified form's structural invariants.
func ReadSharedSet(r io.Reader) (*SharedSet, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	hr := &hashReader{r: br, crc: crc32.NewIEEE()}
	fail := func(stage string, err error) (*SharedSet, error) {
		return nil, fmt.Errorf("%w: shared container %s: %v", ErrInvalid, stage, err)
	}

	magic := make([]byte, len(sharedMagic))
	if _, err := io.ReadFull(hr, magic); err != nil {
		return fail("magic", err)
	}
	if !bytes.Equal(magic, sharedMagic) {
		return nil, fmt.Errorf("%w: bad shared container magic %q", ErrInvalid, magic)
	}
	sectionLen, err := binary.ReadUvarint(hr)
	if err != nil {
		return fail("section length", err)
	}
	if sectionLen < uint64(len(sharedTableMagic))+4 || sectionLen > 1<<40 {
		return nil, fmt.Errorf("%w: absurd shared section length %d", ErrInvalid, sectionLen)
	}
	ss, err := readSharedTable(hr, sectionLen)
	if err != nil {
		return nil, err
	}
	numShards, err := binary.ReadUvarint(hr)
	if err != nil {
		return fail("shard count", err)
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("%w: absurd shard count %d", ErrInvalid, numShards)
	}
	ss.Shards = make([]SharedShard, 0, clampPrealloc(numShards))
	fileBase := uint64(0)
	for i := uint64(0); i < numShards; i++ {
		base, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("file base", err)
		}
		if base != fileBase {
			return nil, fmt.Errorf("%w: shard %d declares file base %d, want %d",
				ErrInvalid, i, base, fileBase)
		}
		numFiles, err := binary.ReadUvarint(hr)
		if err != nil {
			return fail("file count", err)
		}
		if numFiles > MaxWords {
			return nil, fmt.Errorf("%w: absurd file count %d", ErrInvalid, numFiles)
		}
		sh := SharedShard{NumFiles: uint32(numFiles)}
		hasNames, err := hr.ReadByte()
		if err != nil {
			return fail("hasNames", err)
		}
		if hasNames == 1 {
			sh.Files = make([]string, 0, clampPrealloc(numFiles))
			for j := uint64(0); j < numFiles; j++ {
				ln, err := binary.ReadUvarint(hr)
				if err != nil {
					return fail("file name length", err)
				}
				if ln > 1<<20 {
					return nil, fmt.Errorf("%w: absurd name length %d", ErrInvalid, ln)
				}
				nb := make([]byte, ln)
				if _, err := io.ReadFull(hr, nb); err != nil {
					return fail("file name", err)
				}
				sh.Files = append(sh.Files, string(nb))
			}
		}
		root, err := readSymbolRun(hr, "root")
		if err != nil {
			return nil, err
		}
		sh.Root = root
		ss.Shards = append(ss.Shards, sh)
		fileBase += numFiles
	}
	want := hr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fail("crc", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: shared container checksum mismatch", ErrInvalid)
	}
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	return ss, nil
}

// readSharedTable parses the self-checksummed shared section.  outer already
// feeds the container checksum; a nested hashReader accumulates the
// section's own.
func readSharedTable(outer *hashReader, sectionLen uint64) (*SharedSet, error) {
	fail := func(stage string, err error) (*SharedSet, error) {
		return nil, fmt.Errorf("%w: shared table %s: %v", ErrInvalid, stage, err)
	}
	body := io.LimitReader(outer, int64(sectionLen)-4)
	inner := &hashReader{r: body, crc: crc32.NewIEEE()}
	magic := make([]byte, len(sharedTableMagic))
	if _, err := io.ReadFull(inner, magic); err != nil {
		return fail("magic", err)
	}
	if !bytes.Equal(magic, sharedTableMagic) {
		return nil, fmt.Errorf("%w: bad shared table magic %q", ErrInvalid, magic)
	}
	numWords, err := binary.ReadUvarint(inner)
	if err != nil {
		return fail("numWords", err)
	}
	numRules, err := binary.ReadUvarint(inner)
	if err != nil {
		return fail("numRules", err)
	}
	if numWords > MaxWords || numRules > MaxRules {
		return nil, fmt.Errorf("%w: absurd sizes words=%d rules=%d", ErrInvalid, numWords, numRules)
	}
	ss := &SharedSet{NumWords: uint32(numWords)}
	ss.Shared = make([][]Symbol, 0, clampPrealloc(numRules))
	for i := uint64(0); i < numRules; i++ {
		b, err := readSymbolRun(inner, "rule")
		if err != nil {
			return nil, err
		}
		ss.Shared = append(ss.Shared, b)
	}
	// The parse must consume the declared section exactly; leftover bytes
	// mean the framing lied even if both checksums happen to hold.
	if _, err := inner.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: shared table has trailing bytes", ErrInvalid)
	}
	want := inner.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(outer, crcBuf[:]); err != nil {
		return fail("crc", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: shared table checksum mismatch", ErrInvalid)
	}
	return ss, nil
}

// readSymbolRun parses one length-prefixed symbol sequence.
func readSymbolRun(r io.ByteReader, what string) ([]Symbol, error) {
	ln, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s length: %v", ErrInvalid, what, err)
	}
	if ln > 1<<28 {
		return nil, fmt.Errorf("%w: absurd %s length %d", ErrInvalid, what, ln)
	}
	var body []Symbol
	if ln > 0 {
		body = make([]Symbol, 0, clampPrealloc(ln))
	}
	for j := uint64(0); j < ln; j++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %s symbol: %v", ErrInvalid, what, err)
		}
		if v > 1<<32-1 {
			return nil, fmt.Errorf("%w: symbol overflow %d", ErrInvalid, v)
		}
		body = append(body, Symbol(v))
	}
	return body, nil
}

// ConcatShards merges per-shard grammars into one grammar equivalent to
// compressing the concatenated corpus with per-shard redundancy only: shard
// roots are concatenated into a single R0 with globally renumbered
// separators, and every shard's non-root rules are appended with their
// references remapped.  The merged view backs whole-archive operations
// (stats, decompression, the DRAM engine) without re-inferring anything.
func ConcatShards(shards []*Grammar) (*Grammar, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: empty shard set", ErrInvalid)
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	out := &Grammar{}
	totalRules := 1
	hasNames := true
	for _, g := range shards {
		totalRules += len(g.Rules) - 1
		if g.NumWords > out.NumWords {
			out.NumWords = g.NumWords
		}
		out.NumFiles += g.NumFiles
		hasNames = hasNames && g.Files != nil
	}
	if uint64(totalRules) > MaxRules {
		return nil, fmt.Errorf("%w: merged grammar needs %d rules", ErrInvalid, totalRules)
	}
	out.Rules = make([][]Symbol, 1, totalRules)
	if hasNames {
		out.Files = make([]string, 0, out.NumFiles)
	}
	var root []Symbol
	fileBase, ruleBase := uint32(0), uint32(1)
	for si, g := range shards {
		if len(g.Rules) == 0 {
			return nil, fmt.Errorf("%w: shard %d has no rules", ErrInvalid, si)
		}
		// Shard-local rule r >= 1 becomes global rule ruleBase + r - 1; the
		// shard root's symbols land directly in the merged R0.  References
		// to a shard's own root have no merged counterpart.
		var remapErr error
		remap := func(s Symbol) Symbol {
			switch {
			case s.IsRule():
				if s.RuleIndex() == 0 {
					remapErr = fmt.Errorf("%w: shard %d references its root", ErrInvalid, si)
					return s
				}
				return Rule(ruleBase + s.RuleIndex() - 1)
			case s.IsSep():
				return Sep(fileBase + s.SepIndex())
			default:
				return s
			}
		}
		for _, s := range g.Rules[0] {
			root = append(root, remap(s))
		}
		for _, body := range g.Rules[1:] {
			nb := make([]Symbol, len(body))
			for i, s := range body {
				nb[i] = remap(s)
			}
			out.Rules = append(out.Rules, nb)
		}
		if remapErr != nil {
			return nil, remapErr
		}
		if hasNames {
			out.Files = append(out.Files, g.Files...)
		}
		fileBase += g.NumFiles
		ruleBase += uint32(len(g.Rules) - 1)
	}
	out.Rules[0] = root
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
