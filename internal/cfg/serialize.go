package cfg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Compressed grammar file format ("NTDCCFG1"):
//
//	magic            8 bytes
//	numWords         uvarint
//	numFiles         uvarint
//	numRules         uvarint
//	hasNames         1 byte
//	[file names]     numFiles × (uvarint length + bytes), when hasNames=1
//	rules            numRules × (uvarint length + length × uvarint symbol)
//	crc32            4 bytes LE, over everything before it
//
// Symbols are stored raw (the class bits survive varint encoding; word IDs,
// the common case, stay small and compact).

var cfgMagic = []byte("NTDCCFG1")

// WriteTo serializes the grammar.
func (g *Grammar) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	bw := bufio.NewWriterSize(cw, 64<<10)
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		_, err := bw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}

	if _, err := bw.Write(cfgMagic); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(g.NumWords)); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(g.NumFiles)); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(len(g.Rules))); err != nil {
		return cw.n, err
	}
	hasNames := byte(0)
	if g.Files != nil {
		hasNames = 1
	}
	if err := bw.WriteByte(hasNames); err != nil {
		return cw.n, err
	}
	if hasNames == 1 {
		for _, name := range g.Files {
			if err := uv(uint64(len(name))); err != nil {
				return cw.n, err
			}
			if _, err := bw.WriteString(name); err != nil {
				return cw.n, err
			}
		}
	}
	for _, body := range g.Rules {
		if err := uv(uint64(len(body))); err != nil {
			return cw.n, err
		}
		for _, s := range body {
			if err := uv(uint64(s)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return cw.n + int64(m), err
}

// ReadGrammar deserializes a grammar written by WriteTo and validates it.
// Integrity is verified by recomputing the body checksum from the parsed
// grammar and comparing it with the trailer.
func ReadGrammar(r io.Reader) (*Grammar, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	fail := func(stage string, err error) (*Grammar, error) {
		return nil, fmt.Errorf("%w: %s: %v", ErrInvalid, stage, err)
	}

	magic := make([]byte, len(cfgMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fail("magic", err)
	}
	if string(magic) != string(cfgMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalid, magic)
	}
	numWords, err := binary.ReadUvarint(br)
	if err != nil {
		return fail("numWords", err)
	}
	numFiles, err := binary.ReadUvarint(br)
	if err != nil {
		return fail("numFiles", err)
	}
	numRules, err := binary.ReadUvarint(br)
	if err != nil {
		return fail("numRules", err)
	}
	if numWords > MaxWords || numRules > MaxRules || numFiles > MaxWords {
		return nil, fmt.Errorf("%w: absurd sizes words=%d files=%d rules=%d", ErrInvalid, numWords, numFiles, numRules)
	}
	hasNames, err := br.ReadByte()
	if err != nil {
		return fail("hasNames", err)
	}
	g := &Grammar{
		NumWords: uint32(numWords),
		NumFiles: uint32(numFiles),
	}
	// Declared counts come from untrusted input: never preallocate from
	// them wholesale — grow as the parse actually succeeds, so a tiny
	// malicious header cannot demand gigabytes.
	if hasNames == 1 {
		g.Files = make([]string, 0, clampPrealloc(numFiles))
		for i := uint64(0); i < numFiles; i++ {
			ln, err := binary.ReadUvarint(br)
			if err != nil {
				return fail("file name length", err)
			}
			if ln > 1<<20 {
				return nil, fmt.Errorf("%w: absurd name length %d", ErrInvalid, ln)
			}
			nb := make([]byte, ln)
			if _, err := io.ReadFull(br, nb); err != nil {
				return fail("file name", err)
			}
			g.Files = append(g.Files, string(nb))
		}
	}
	g.Rules = make([][]Symbol, 0, clampPrealloc(numRules))
	for i := uint64(0); i < numRules; i++ {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("rule length", err)
		}
		if ln > 1<<28 {
			return nil, fmt.Errorf("%w: absurd rule length %d", ErrInvalid, ln)
		}
		var body []Symbol
		if ln > 0 {
			body = make([]Symbol, 0, clampPrealloc(ln))
		}
		for j := uint64(0); j < ln; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return fail("symbol", err)
			}
			if v > 1<<32-1 {
				return nil, fmt.Errorf("%w: symbol overflow %d", ErrInvalid, v)
			}
			body = append(body, Symbol(v))
		}
		g.Rules = append(g.Rules, body)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fail("crc", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != reserializedChecksum(g) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// reserializedChecksum computes the body checksum by re-serializing, the
// unambiguous fallback when buffered read-ahead polluted the streaming CRC.
func reserializedChecksum(g *Grammar) uint32 {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(crc)
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) { bw.Write(buf[:binary.PutUvarint(buf[:], v)]) }
	bw.Write(cfgMagic)
	uv(uint64(g.NumWords))
	uv(uint64(g.NumFiles))
	uv(uint64(len(g.Rules)))
	if g.Files != nil {
		bw.WriteByte(1)
		for _, name := range g.Files {
			uv(uint64(len(name)))
			bw.WriteString(name)
		}
	} else {
		bw.WriteByte(0)
	}
	for _, body := range g.Rules {
		uv(uint64(len(body)))
		for _, s := range body {
			uv(uint64(s))
		}
	}
	if err := bw.Flush(); err != nil {
		panic("cfg: flush to hash failed: " + err.Error()) // hash.Hash writes cannot fail
	}
	return crc.Sum32()
}

// clampPrealloc bounds slice preallocation for untrusted declared counts.
func clampPrealloc(n uint64) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
