package cfg

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

// paperGrammar builds the grammar of the paper's Figure 1:
//
//	R0 -> R1 w5 R1 |0| w6 R2 |1|
//	R1 -> R2 w3 w4
//	R2 -> w1 w2
//
// (file A = "w1 w2 w3 w4 w5 w1 w2 w3 w4", file B = "w6 w1 w2"; word IDs are
// 1-based in the figure, 0-based here.)
func paperGrammar() *Grammar {
	return &Grammar{
		Rules: [][]Symbol{
			{Rule(1), Word(4), Rule(1), Sep(0), Word(5), Rule(2), Sep(1)},
			{Rule(2), Word(2), Word(3)},
			{Word(0), Word(1)},
		},
		NumWords: 6,
		NumFiles: 2,
		Files:    []string{"fileA", "fileB"},
	}
}

func TestSymbolClasses(t *testing.T) {
	w, r, s := Word(7), Rule(3), Sep(1)
	if !w.IsWord() || w.IsRule() || w.IsSep() {
		t.Errorf("word classification broken")
	}
	if !r.IsRule() || r.IsWord() || r.IsSep() {
		t.Errorf("rule classification broken")
	}
	if !s.IsSep() || s.IsWord() || s.IsRule() {
		t.Errorf("sep classification broken")
	}
	if w.WordID() != 7 || r.RuleIndex() != 3 || s.SepIndex() != 1 {
		t.Errorf("index extraction broken")
	}
	if w.String() != "w7" || r.String() != "R3" || s.String() != "|1|" {
		t.Errorf("String() = %q %q %q", w, r, s)
	}
}

func TestSymbolPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"word range": func() { Word(MaxWords) },
		"rule range": func() { Rule(MaxRules) },
		"sep range":  func() { Sep(MaxWords) },
		"not a word": func() { Rule(1).WordID() },
		"not a rule": func() { Word(1).RuleIndex() },
		"not a sep":  func() { Word(1).SepIndex() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValidateAcceptsPaperGrammar(t *testing.T) {
	if err := paperGrammar().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]*Grammar{
		"no rules": {NumWords: 1},
		"missing rule ref": {
			Rules: [][]Symbol{{Rule(5)}}, NumWords: 1,
		},
		"sep outside root": {
			Rules:    [][]Symbol{{Rule(1), Sep(0)}, {Sep(1)}},
			NumWords: 1, NumFiles: 2,
		},
		"sep out of order": {
			Rules:    [][]Symbol{{Sep(1), Sep(0)}},
			NumWords: 1, NumFiles: 2,
		},
		"word beyond vocab": {
			Rules: [][]Symbol{{Word(10)}}, NumWords: 5,
		},
		"file count mismatch": {
			Rules: [][]Symbol{{Sep(0)}}, NumWords: 1, NumFiles: 3,
		},
		"name count mismatch": {
			Rules: [][]Symbol{{Sep(0)}}, NumWords: 1, NumFiles: 1,
			Files: []string{"a", "b"},
		},
		"cycle": {
			Rules:    [][]Symbol{{Rule(1)}, {Rule(2)}, {Rule(1)}},
			NumWords: 1,
		},
		"self cycle": {
			Rules:    [][]Symbol{{Rule(0)}},
			NumWords: 1,
		},
	}
	for name, g := range cases {
		if err := g.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Validate = %v, want ErrInvalid", name, err)
		}
	}
}

func TestTopoOrderParentsFirst(t *testing.T) {
	g := paperGrammar()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[uint32]int, len(order))
	for i, r := range order {
		pos[r] = i
	}
	if len(pos) != len(g.Rules) {
		t.Fatalf("order %v misses rules", order)
	}
	for ri, body := range g.Rules {
		for _, s := range body {
			if s.IsRule() && pos[uint32(ri)] > pos[s.RuleIndex()] {
				t.Errorf("R%d after child R%d in %v", ri, s.RuleIndex(), order)
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	g := paperGrammar()
	in, out := g.Degrees()
	// R0: refs R1 twice, R2 once -> out 3, in 0.
	// R1: refs R2 once -> out 1, in 2.
	// R2: out 0, in 2.
	wantIn := []uint32{0, 2, 2}
	wantOut := []uint32{3, 1, 0}
	if !reflect.DeepEqual(in, wantIn) || !reflect.DeepEqual(out, wantOut) {
		t.Errorf("Degrees = %v,%v; want %v,%v", in, out, wantIn, wantOut)
	}
}

func TestExpandFiles(t *testing.T) {
	g := paperGrammar()
	files := g.ExpandFiles()
	wantA := []uint32{0, 1, 2, 3, 4, 0, 1, 2, 3}
	wantB := []uint32{5, 0, 1}
	if len(files) != 2 || !reflect.DeepEqual(files[0], wantA) || !reflect.DeepEqual(files[1], wantB) {
		t.Errorf("ExpandFiles = %v", files)
	}
}

func TestComputeStats(t *testing.T) {
	g := paperGrammar()
	st := g.ComputeStats()
	if st.Rules != 3 || st.Files != 2 || st.Vocabulary != 6 {
		t.Errorf("Stats = %+v", st)
	}
	if st.BodySymbols != 7+3+2 {
		t.Errorf("BodySymbols = %d", st.BodySymbols)
	}
	if st.Expanded != 12 {
		t.Errorf("Expanded = %d, want 12", st.Expanded)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, withNames := range []bool{true, false} {
		g := paperGrammar()
		if !withNames {
			g.Files = nil
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		g2, err := ReadGrammar(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadGrammar: %v", err)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", g2, g)
		}
	}
}

func TestReadGrammarRejectsCorruption(t *testing.T) {
	g := paperGrammar()
	var buf bytes.Buffer
	g.WriteTo(&buf)
	raw := buf.Bytes()

	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic":  func(b []byte) []byte { c := clone(b); c[0] ^= 0xff; return c },
		"bit flip":   func(b []byte) []byte { c := clone(b); c[len(c)-8] ^= 0x01; return c },
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"empty":      func(b []byte) []byte { return nil },
		"crc broken": func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0xff; return c },
	} {
		if _, err := ReadGrammar(bytes.NewReader(mutate(raw))); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

func clone(b []byte) []byte { return append([]byte{}, b...) }

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(bodies [][]uint16, vocabSeed uint16) bool {
		if len(bodies) == 0 {
			bodies = [][]uint16{{}}
		}
		if len(bodies) > 20 {
			bodies = bodies[:20]
		}
		vocab := uint32(vocabSeed)%100 + 1
		g := &Grammar{NumWords: vocab}
		for ri, raw := range bodies {
			var body []Symbol
			for _, v := range raw {
				switch v % 3 {
				case 0:
					body = append(body, Word(uint32(v)%vocab))
				case 1:
					// Only reference later rules to stay acyclic.
					if ri+1 < len(bodies) {
						body = append(body, Rule(uint32(ri+1)+uint32(v)%uint32(len(bodies)-ri-1)))
					}
				case 2:
					if ri == 0 {
						body = append(body, Sep(g.NumFiles))
						g.NumFiles++
					}
				}
			}
			g.Rules = append(g.Rules, body)
		}
		if g.Validate() != nil {
			return true // not a valid grammar; nothing to check
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		g2, err := ReadGrammar(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExpandDeepChain(t *testing.T) {
	// A 200k-deep rule chain must expand without exhausting the stack:
	// crafted archives control grammar shape.
	const depth = 200_000
	g := &Grammar{NumWords: 1}
	g.Rules = make([][]Symbol, depth)
	for i := 0; i < depth-1; i++ {
		g.Rules[i] = []Symbol{Rule(uint32(i + 1))}
	}
	g.Rules[depth-1] = []Symbol{Word(0)}
	out := g.Expand(0)
	if len(out) != 1 || out[0] != Word(0) {
		t.Fatalf("deep chain expansion = %v", out)
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("TopoOrder on deep chain: %v", err)
	}
}
