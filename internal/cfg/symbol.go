// Package cfg models the context-free grammar TADOC compresses text into,
// its DAG view, and the compressed on-disk format.  A grammar is a list of
// rules; rule 0 (the root) concatenates the compressed files, separated by
// per-file segmentation symbols; other rules capture repeated patterns.
// Analytics tasks traverse the DAG induced by rule references instead of
// decompressing (paper §II, Figure 1).
package cfg

import "fmt"

// Symbol is one element of a rule body: a word, a rule reference, or a file
// separator.  The two top bits select the class, leaving 2^30 values each —
// far beyond the paper's largest dataset (57 M rules, 99 M words, scaled
// down ~100× here).
//
//	word:      0 .. 2^30-1 (dictionary ID)
//	separator: sepBit | file index  (each file boundary is a distinct
//	           symbol, so no rule can span a file boundary)
//	rule:      ruleBit | rule index
type Symbol uint32

const (
	sepBit  Symbol = 1 << 30
	ruleBit Symbol = 1 << 31

	// MaxWords is the largest dictionary ID representable in a Symbol.
	MaxWords = 1 << 30
	// MaxRules is the largest rule index representable in a Symbol.
	MaxRules = 1 << 30
)

// Word returns the symbol for dictionary ID id.
func Word(id uint32) Symbol {
	if id >= MaxWords {
		panic(fmt.Sprintf("cfg: word id %d out of range", id))
	}
	return Symbol(id)
}

// Rule returns the symbol referencing rule index i.
func Rule(i uint32) Symbol {
	if i >= MaxRules {
		panic(fmt.Sprintf("cfg: rule index %d out of range", i))
	}
	return ruleBit | Symbol(i)
}

// Sep returns the separator symbol that ends file index i.
func Sep(i uint32) Symbol {
	if i >= MaxWords {
		panic(fmt.Sprintf("cfg: file index %d out of range", i))
	}
	return sepBit | Symbol(i)
}

// IsWord reports whether s is a word symbol.
func (s Symbol) IsWord() bool { return s&(sepBit|ruleBit) == 0 }

// IsRule reports whether s references a rule.
func (s Symbol) IsRule() bool { return s&ruleBit != 0 }

// IsSep reports whether s is a file separator.
func (s Symbol) IsSep() bool { return s&(sepBit|ruleBit) == sepBit }

// WordID returns the dictionary ID of a word symbol.
func (s Symbol) WordID() uint32 {
	if !s.IsWord() {
		panic(fmt.Sprintf("cfg: %v is not a word", s))
	}
	return uint32(s)
}

// RuleIndex returns the rule index of a rule symbol.
func (s Symbol) RuleIndex() uint32 {
	if !s.IsRule() {
		panic(fmt.Sprintf("cfg: %v is not a rule", s))
	}
	return uint32(s &^ ruleBit)
}

// SepIndex returns the file index of a separator symbol.
func (s Symbol) SepIndex() uint32 {
	if !s.IsSep() {
		panic(fmt.Sprintf("cfg: %v is not a separator", s))
	}
	return uint32(s &^ sepBit)
}

// String renders the symbol in the paper's notation (w3, R1, |2|).
func (s Symbol) String() string {
	switch {
	case s.IsRule():
		return fmt.Sprintf("R%d", s.RuleIndex())
	case s.IsSep():
		return fmt.Sprintf("|%d|", s.SepIndex())
	default:
		return fmt.Sprintf("w%d", uint32(s))
	}
}
