package cfg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Online-ingestion container ("NTDCDLT1"): a base grammar section — any
// legacy format: single grammar, shard container, or shared-table container
// — followed by a delta-grammar section covering the documents appended
// after the base was compressed.  Readers merge the two with MergeDelta, so
// base+delta reads expand to exactly the concatenated document set and
// analytics over them are bit-identical to a from-scratch rebuild.  Legacy
// archives (no delta section) keep their old magics and still read.
//
//	magic     8 bytes "NTDCDLT1"
//	baseLen   uvarint
//	base      baseLen bytes (a complete legacy grammar section)
//	deltaLen  uvarint
//	delta     deltaLen bytes (a single-grammar "NTDCCFG1" section)
//	crc32     4 bytes LE, over everything before it
var deltaMagic = []byte("NTDCDLT1")

// IsDeltaContainer reports whether the leading bytes carry the delta
// container magic.
func IsDeltaContainer(peek []byte) bool {
	return len(peek) >= len(deltaMagic) && bytes.Equal(peek[:len(deltaMagic)], deltaMagic)
}

// WriteDeltaContainer frames an already-serialized base grammar section and
// a delta grammar into the delta container.
func WriteDeltaContainer(w io.Writer, base []byte, delta *Grammar) (int64, error) {
	if delta == nil {
		return 0, fmt.Errorf("%w: delta container without a delta", ErrInvalid)
	}
	var dbuf bytes.Buffer
	if _, err := delta.WriteTo(&dbuf); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		_, err := cw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}
	if _, err := cw.Write(deltaMagic); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(len(base))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(base); err != nil {
		return cw.n, err
	}
	if err := uv(uint64(dbuf.Len())); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(dbuf.Bytes()); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	m, err := w.Write(crcBuf[:])
	return cw.n + int64(m), err
}

// ReadDeltaContainer parses a delta container, returning the raw base
// section (for the caller's format dispatch) and the validated delta
// grammar.
func ReadDeltaContainer(r io.Reader) (base []byte, delta *Grammar, err error) {
	crc := crc32.NewIEEE()
	br := &byteCounter{r: io.TeeReader(r, crc)}
	magic := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("%w: delta magic: %v", ErrInvalid, err)
	}
	if !bytes.Equal(magic, deltaMagic) {
		return nil, nil, fmt.Errorf("%w: bad delta magic %q", ErrInvalid, magic)
	}
	readSection := func(what string) ([]byte, error) {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s length: %v", ErrInvalid, what, err)
		}
		if ln > 1<<32 {
			return nil, fmt.Errorf("%w: absurd %s length %d", ErrInvalid, what, ln)
		}
		// The declared length is untrusted: read in bounded chunks so a
		// lying header cannot demand the whole allocation up front.
		var buf bytes.Buffer
		if _, err := io.CopyN(&buf, br, int64(ln)); err != nil {
			return nil, fmt.Errorf("%w: %s section: %v", ErrInvalid, what, err)
		}
		return buf.Bytes(), nil
	}
	if base, err = readSection("base"); err != nil {
		return nil, nil, err
	}
	dsec, err := readSection("delta")
	if err != nil {
		return nil, nil, err
	}
	want := crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: delta crc: %v", ErrInvalid, err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, nil, fmt.Errorf("%w: delta container checksum mismatch", ErrInvalid)
	}
	if delta, err = ReadGrammar(bytes.NewReader(dsec)); err != nil {
		return nil, nil, err
	}
	return base, delta, nil
}

// byteCounter adds ReadByte to a plain reader (binary.ReadUvarint needs it)
// without buffered read-ahead, which would desynchronize the CRC tee.
type byteCounter struct{ r io.Reader }

func (b *byteCounter) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteCounter) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// MergeDelta merges a delta grammar into its base: the Materialize-style
// read view over base+delta, equivalent to compressing the concatenated
// corpus with per-part redundancy only.  Appended documents follow the base
// documents in order; separator indices are renumbered globally and the
// delta's rule references are remapped past the base's.  Compaction swaps
// exactly this grammar in as the new serving base.
func MergeDelta(base, delta *Grammar) (*Grammar, error) {
	if delta == nil {
		return base, nil
	}
	if base.Files != nil && delta.Files == nil {
		// ConcatShards drops names unless every part carries them; an
		// anonymous delta must not strip the base's, so synthesize.
		named := *delta
		named.Files = make([]string, delta.NumFiles)
		for i := range named.Files {
			named.Files[i] = fmt.Sprintf("appended%d", i)
		}
		delta = &named
	}
	return ConcatShards([]*Grammar{base, delta})
}
