package cfg

import (
	"bytes"
	"strings"
	"testing"

	"github.com/text-analytics/ntadoc/internal/dict"
)

func TestWriteDOTStructure(t *testing.T) {
	g := paperGrammar()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph tadoc {", "r0", "r1", "r2", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output", want)
		}
	}
	// R0 references R1 twice: multiplicity label.
	if !strings.Contains(out, `label="x2"`) {
		t.Errorf("missing multiplicity edge label:\n%s", out)
	}
}

func TestWriteDOTWithDictionary(t *testing.T) {
	g := paperGrammar()
	d := dict.New()
	for _, w := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"} {
		d.Intern(w)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, d); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	// Short rule bodies are rendered with real words.
	if !strings.Contains(buf.String(), "alpha beta") {
		t.Errorf("dictionary words not rendered:\n%s", buf.String())
	}
}

func TestRenderBody(t *testing.T) {
	d := dict.New()
	d.Intern("hello")
	body := []Symbol{Word(0), Rule(3), Sep(1), Word(9)}
	got := renderBody(body, d)
	// Known word rendered, unknown word and rule/sep in paper notation.
	want := "hello R3 |1| w9"
	if got != want {
		t.Errorf("renderBody = %q, want %q", got, want)
	}
}
