package cfg

import (
	"errors"
	"fmt"
)

// Grammar is a TADOC context-free grammar.  Rules[0] is the root (R0), which
// concatenates all files: file i's content is the symbols of R0 strictly
// before separator Sep(i) and after Sep(i-1).  Every rule index referenced
// by any body must be < len(Rules).
type Grammar struct {
	Rules    [][]Symbol
	NumWords uint32   // vocabulary size (dictionary IDs are < NumWords)
	NumFiles uint32   // number of files concatenated in R0
	Files    []string // optional file names, len == NumFiles when present
}

// ErrInvalid reports a structurally broken grammar.
var ErrInvalid = errors.New("cfg: invalid grammar")

// Validate checks structural invariants: rule references in range, word IDs
// within the vocabulary, separators only in R0 and exactly once per file in
// increasing order, and acyclicity.
func (g *Grammar) Validate() error {
	if len(g.Rules) == 0 {
		return fmt.Errorf("%w: no rules", ErrInvalid)
	}
	if uint64(len(g.Rules)) > MaxRules {
		return fmt.Errorf("%w: %d rules", ErrInvalid, len(g.Rules))
	}
	seps := 0
	for ri, body := range g.Rules {
		for _, s := range body {
			switch {
			case s.IsRule():
				if int(s.RuleIndex()) >= len(g.Rules) {
					return fmt.Errorf("%w: R%d references missing R%d", ErrInvalid, ri, s.RuleIndex())
				}
			case s.IsSep():
				if ri != 0 {
					return fmt.Errorf("%w: separator inside R%d", ErrInvalid, ri)
				}
				if s.SepIndex() != uint32(seps) {
					return fmt.Errorf("%w: separator %d out of order (want %d)", ErrInvalid, s.SepIndex(), seps)
				}
				seps++
			default:
				if s.WordID() >= g.NumWords {
					return fmt.Errorf("%w: word %d beyond vocabulary %d", ErrInvalid, s.WordID(), g.NumWords)
				}
			}
		}
	}
	if uint32(seps) != g.NumFiles {
		return fmt.Errorf("%w: %d separators for %d files", ErrInvalid, seps, g.NumFiles)
	}
	if g.Files != nil && uint32(len(g.Files)) != g.NumFiles {
		return fmt.Errorf("%w: %d file names for %d files", ErrInvalid, len(g.Files), g.NumFiles)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the rule indices in topological order (parents before
// children; R0 first when reachable ordering allows).  It fails on cycles,
// which a well-formed TADOC grammar can never contain.
func (g *Grammar) TopoOrder() ([]uint32, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(g.Rules))
	order := make([]uint32, 0, len(g.Rules))

	// Iterative post-order DFS; reversed post-order is topological.
	type frame struct {
		rule uint32
		next int
	}
	var stack []frame
	for start := range g.Rules {
		if state[start] != unvisited {
			continue
		}
		stack = append(stack[:0], frame{rule: uint32(start)})
		state[start] = visiting
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			body := g.Rules[f.rule]
			advanced := false
			for f.next < len(body) {
				s := body[f.next]
				f.next++
				if !s.IsRule() {
					continue
				}
				child := s.RuleIndex()
				switch state[child] {
				case visiting:
					return nil, fmt.Errorf("%w: cycle through R%d", ErrInvalid, child)
				case unvisited:
					state[child] = visiting
					stack = append(stack, frame{rule: child})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced && f.next >= len(body) {
				state[f.rule] = done
				order = append(order, f.rule)
				stack = stack[:len(stack)-1]
			}
		}
	}
	// Reverse: parents first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Degrees returns the in- and out-degree of each rule in the DAG (edges are
// rule references, counted with multiplicity).
func (g *Grammar) Degrees() (in, out []uint32) {
	in = make([]uint32, len(g.Rules))
	out = make([]uint32, len(g.Rules))
	for ri, body := range g.Rules {
		for _, s := range body {
			if s.IsRule() {
				out[ri]++
				in[s.RuleIndex()]++
			}
		}
	}
	return in, out
}

// Expand decompresses rule ri to its full token stream (words and, for R0,
// separators).  The walk is iterative: untrusted archives can contain
// arbitrarily deep rule chains, which must not exhaust the goroutine stack.
func (g *Grammar) Expand(ri uint32) []Symbol {
	var out []Symbol
	type frame struct {
		rule uint32
		pos  int
	}
	stack := []frame{{rule: ri}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		body := g.Rules[f.rule]
		if f.pos >= len(body) {
			stack = stack[:len(stack)-1]
			continue
		}
		s := body[f.pos]
		f.pos++
		if s.IsRule() {
			stack = append(stack, frame{rule: s.RuleIndex()})
		} else {
			out = append(out, s)
		}
	}
	return out
}

// ExpandFiles decompresses the whole grammar back to per-file word-ID
// streams: the inverse of compression, used by round-trip tests and by
// consumers that genuinely need raw text.
func (g *Grammar) ExpandFiles() [][]uint32 {
	files := make([][]uint32, 0, g.NumFiles)
	var cur []uint32
	for _, s := range g.Expand(0) {
		switch {
		case s.IsSep():
			files = append(files, cur)
			cur = nil
		case s.IsWord():
			cur = append(cur, s.WordID())
		}
	}
	return files
}

// Stats summarizes a grammar for reporting (the Table I analogue).
type Stats struct {
	Rules       int   // rule count
	Files       int   // file count
	Vocabulary  int   // distinct words
	BodySymbols int64 // total symbols across rule bodies (compressed size)
	Expanded    int64 // total tokens when fully expanded (uncompressed size)
}

// ComputeStats returns summary statistics; Expanded is computed without
// materializing the expansion, via per-rule token counts in topological
// order.
func (g *Grammar) ComputeStats() Stats {
	st := Stats{
		Rules:      len(g.Rules),
		Files:      int(g.NumFiles),
		Vocabulary: int(g.NumWords),
	}
	order, err := g.TopoOrder()
	if err != nil {
		return st
	}
	size := make([]int64, len(g.Rules))
	for i := len(order) - 1; i >= 0; i-- {
		ri := order[i]
		var n int64
		for _, s := range g.Rules[ri] {
			if s.IsRule() {
				n += size[s.RuleIndex()]
			} else if s.IsWord() {
				n++
			}
		}
		size[ri] = n
		st.BodySymbols += int64(len(g.Rules[ri]))
	}
	st.Expanded = size[0]
	return st
}
