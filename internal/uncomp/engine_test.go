package uncomp

import (
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

func load(t testing.TB, files [][]uint32, d *dict.Dictionary) (*Engine, *nvm.SimDevice) {
	t.Helper()
	dev := nvm.New(nvm.KindNVM, RequiredSize(files)+4096)
	e, err := Load(dev, d, files)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return e, dev
}

// Full per-task reference coverage for this scan engine lives in the
// cross-executor differential test (internal/analytics/differential_test.go).

func TestLoadRejectsSmallDevice(t *testing.T) {
	files := [][]uint32{{1, 2, 3, 4, 5, 6, 7, 8}}
	dev := nvm.New(nvm.KindNVM, 4)
	if _, err := Load(dev, dict.New(), files); err == nil {
		t.Error("expected size error")
	}
}

func TestEmptyCorpus(t *testing.T) {
	e, _ := load(t, nil, dict.New())
	wc, err := e.WordCount()
	if err != nil || len(wc) != 0 {
		t.Errorf("WordCount = %v, %v", wc, err)
	}
	if e.NumFiles() != 0 || e.TotalTokens() != 0 {
		t.Errorf("counts = %d files, %d tokens", e.NumFiles(), e.TotalTokens())
	}
}

func TestEmptyFiles(t *testing.T) {
	files := [][]uint32{{}, {1, 1, 2}, {}}
	d := dict.New()
	for _, w := range []string{"a", "b", "c"} {
		d.Intern(w)
	}
	e, _ := load(t, files, d)
	inv, err := e.InvertedIndex()
	if err != nil {
		t.Fatalf("InvertedIndex: %v", err)
	}
	want := map[uint32][]uint32{1: {1}, 2: {1}}
	if !reflect.DeepEqual(inv, want) {
		t.Errorf("InvertedIndex = %v", inv)
	}
}

func TestScanChargesDeviceTraffic(t *testing.T) {
	spec := datagen.Spec{
		Name: "u2", Seed: 5, Files: 2, TokensPer: 5000, Vocab: 40,
		ZipfS: 1.3, Phrases: 10, PhraseLen: 4, PhraseProb: 0.5,
	}
	files, d := spec.GenerateWithDict()
	e, dev := load(t, files, d)
	dev.ResetStats()
	if _, err := e.WordCount(); err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	st := dev.Stats()
	if st.BytesRead < RequiredSize(files) {
		t.Errorf("scan read %d bytes, corpus is %d", st.BytesRead, RequiredSize(files))
	}
	if st.ModeledNanos <= 0 {
		t.Error("no modeled cost charged")
	}
}

func TestSequencesCrossBatchBoundaries(t *testing.T) {
	// A file larger than the scan batch must still count every window.
	n := 20000
	f := make([]uint32, n)
	for i := range f {
		f[i] = uint32(i % 7)
	}
	e, _ := load(t, [][]uint32{f}, dict.New())
	sc, err := e.SequenceCount()
	if err != nil {
		t.Fatalf("SequenceCount: %v", err)
	}
	var total uint64
	for _, c := range sc {
		total += c
	}
	if want := uint64(n - analytics.SeqLen + 1); total != want {
		t.Errorf("total windows = %d, want %d", total, want)
	}
}
