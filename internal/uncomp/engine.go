// Package uncomp implements the paper's Fig 5 baseline: text analytics over
// uncompressed, dictionary-encoded tokens resident on a storage device (NVM
// in the headline comparison).  No compression technique is applied beyond
// the dictionary conversion, matching the paper's baseline configuration;
// every task is a sequential scan of the token stream with intermediate
// results in ordinary DRAM structures.  Tasks plug in as analytics.Op folds:
// RunOps makes one pass over the device-resident tokens and feeds every op
// in the batch from the same scan, so a fused batch reads each token once
// where sequential runs read it once per task.
package uncomp

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Engine scans device-resident tokens.  It implements analytics.Engine and
// analytics.Executor.
type Engine struct {
	dev   nvm.Device
	d     *dict.Dictionary
	acc   nvm.Accessor
	offs  []int64 // token offset of each file's start; offs[len] = total
	meter metrics.Meter

	scanBuf []uint32 // scanFile scratch, reused across files
}

var (
	_ analytics.Engine   = (*Engine)(nil)
	_ analytics.Executor = (*Engine)(nil)
)

// tokenBytes is the stored width of one token.
const tokenBytes = 4

// RequiredSize returns the device bytes needed to load the given corpus.
func RequiredSize(files [][]uint32) int64 {
	var n int64
	for _, f := range files {
		n += int64(len(f))
	}
	return n * tokenBytes
}

// Load writes the corpus onto the device and returns an engine over it.
// This is the baseline's initialization phase: the dictionary-encoded text
// is written sequentially to the device and flushed.
func Load(dev nvm.Device, d *dict.Dictionary, files [][]uint32) (*Engine, error) {
	need := RequiredSize(files)
	if dev.Size() < need {
		return nil, fmt.Errorf("uncomp: device %d bytes, need %d", dev.Size(), need)
	}
	e := &Engine{
		dev:  dev,
		d:    d,
		acc:  nvm.NewAccessor(dev, 0, need),
		offs: make([]int64, len(files)+1),
	}
	var tok int64
	for i, f := range files {
		e.offs[i] = tok
		// Write in chunks to keep allocation bounded.
		const chunk = 1 << 14
		for start := 0; start < len(f); start += chunk {
			end := start + chunk
			if end > len(f) {
				end = len(f)
			}
			e.acc.PutUint32s((tok+int64(start))*tokenBytes, f[start:end])
		}
		tok += int64(len(f))
	}
	e.offs[len(files)] = tok
	e.meter.Charge(tok, metrics.CostScanToken)
	if need > 0 {
		if err := e.acc.Flush(0, need); err != nil {
			return nil, err
		}
	}
	return e, dev.Drain()
}

// NumFiles returns the number of loaded documents.
func (e *Engine) NumFiles() int { return len(e.offs) - 1 }

// TotalTokens returns the corpus length in tokens.
func (e *Engine) TotalTokens() int64 { return e.offs[len(e.offs)-1] }

// scanFile streams file fi's tokens in batches to fn.
func (e *Engine) scanFile(fi int, fn func(tokens []uint32)) {
	start, end := e.offs[fi], e.offs[fi+1]
	const batch = 1 << 13
	if e.scanBuf == nil {
		e.scanBuf = make([]uint32, batch)
	}
	buf := e.scanBuf
	for pos := start; pos < end; pos += batch {
		n := end - pos
		if n > batch {
			n = batch
		}
		e.acc.Uint32s(pos*tokenBytes, buf[:n])
		fn(buf[:n])
	}
}

// Sequence accumulators key windows by a packed uint64 whenever the
// vocabulary fits packBits per token: Go maps hash 8-byte keys through a
// fast path that the 12-byte Seq array misses.  Packed and generic scans
// emit the same windows and charge identically; env.SeqOf converts keys
// back at fold time.
const packBits = 21

func (e *Engine) canPackSeq() bool {
	return analytics.SeqLen == 3 && e.d.Len() <= 1<<packBits
}

func unpackSeq(pk uint64) analytics.Seq {
	const m = 1<<packBits - 1
	return analytics.Seq{
		uint32(pk >> (2 * packBits)),
		uint32((pk >> packBits) & m),
		uint32(pk & m),
	}
}

// numWindows returns how many SeqLen-windows file fi emits.
func (e *Engine) numWindows(fi int) int64 {
	n := e.offs[fi+1] - e.offs[fi] - analytics.SeqLen + 1
	if n < 0 {
		return 0
	}
	return n
}

// opEnv adapts the engine to analytics.Env.  seqOf is unpackSeq when windows
// are packed, interner resolution otherwise.
type opEnv struct {
	e     *Engine
	seqOf func(uint64) analytics.Seq
}

func (v opEnv) Dict() *dict.Dictionary       { return v.e.d }
func (v opEnv) NumFiles() int                { return v.e.NumFiles() }
func (v opEnv) SeqOf(k uint64) analytics.Seq { return v.seqOf(k) }
func (v opEnv) Charge(n, perOp int64)        { v.e.meter.Charge(n, perOp) }

// fileWordView is the per-file word counter handed to folds: counts live in
// a vocabulary-sized array, touched lists the distinct words in
// first-occurrence order.
type fileWordView struct {
	counts  []uint64
	touched []uint32
}

func (c fileWordView) Len() int64 { return int64(len(c.touched)) }
func (c fileWordView) Range(fn func(k, v uint64) bool) {
	for _, w := range c.touched {
		if !fn(uint64(w), c.counts[w]) {
			return
		}
	}
}

// RunOps implements analytics.Executor with one fused pass: every op in the
// batch is fed from the same token scan.  Per-token CPU work is charged per
// accumulator (each op class still hashes every token), but the scan itself
// — and with it the modeled device traffic — happens once for the whole
// batch instead of once per task.
func (e *Engine) RunOps(ops []analytics.Op) ([]any, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	packed := e.canPackSeq()
	si := &analytics.SeqInterner{}
	env := opEnv{e: e}
	if packed {
		env.seqOf = unpackSeq
	} else {
		env.seqOf = si.SeqOf
	}
	folds := make([]analytics.Fold, len(ops))
	var globalWord, globalSeq, fileWord, fileSeq []int
	for i, op := range ops {
		folds[i] = op.NewFold(env)
		switch {
		case op.Scope() == analytics.ScopeGlobal && op.Keys() == analytics.KeyWords:
			globalWord = append(globalWord, i)
		case op.Scope() == analytics.ScopeGlobal:
			globalSeq = append(globalSeq, i)
		case op.Keys() == analytics.KeyWords:
			fileWord = append(fileWord, i)
		default:
			fileSeq = append(fileSeq, i)
		}
	}

	// Counting goes through vocabulary-sized arrays rather than maps; the
	// charged hash-op cost per token is unchanged — only host wall-clock
	// differs.
	var gw, fw []uint64
	var touched []uint32
	if len(globalWord) > 0 {
		gw = make([]uint64, e.d.Len())
	}
	if len(fileWord) > 0 {
		fw = make([]uint64, e.d.Len())
	}
	var gseq map[uint64]uint64
	if len(globalSeq) > 0 {
		gseq = make(map[uint64]uint64)
	}
	scanSeqs := len(globalSeq)+len(fileSeq) > 0
	// Each word-keyed accumulator costs one hash op per token; the scan-token
	// cost is charged once per token regardless of batch width.
	wordAccums := int64(0)
	if gw != nil {
		wordAccums++
	}
	if fw != nil {
		wordAccums++
	}

	const packMask = 1<<(2*packBits) - 1
	for fi := 0; fi < e.NumFiles(); fi++ {
		var fseq map[uint64]uint64
		if len(fileSeq) > 0 {
			fseq = make(map[uint64]uint64)
		}
		// Rolling window state, maintained across scan batches.
		var pk uint64
		warm := 0
		var window []uint32
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken)
			if wordAccums > 0 {
				e.meter.Charge(int64(len(toks))*wordAccums, metrics.CostHashOp)
			}
			for _, w := range toks {
				if gw != nil {
					gw[w]++
				}
				if fw != nil {
					if fw[w] == 0 {
						touched = append(touched, w)
					}
					fw[w]++
				}
				if !scanSeqs {
					continue
				}
				var key uint64
				ready := false
				if packed {
					pk = (pk&packMask)<<packBits | uint64(w)
					if warm < analytics.SeqLen-1 {
						warm++
					} else {
						key, ready = pk, true
					}
				} else {
					window = append(window, w)
					if len(window) > analytics.SeqLen {
						copy(window, window[1:])
						window = window[:analytics.SeqLen]
					}
					if len(window) == analytics.SeqLen {
						var q analytics.Seq
						copy(q[:], window)
						key, ready = si.Key(q), true
					}
				}
				if !ready {
					continue
				}
				if gseq != nil {
					gseq[key]++
				}
				if fseq != nil {
					fseq[key]++
				}
			}
		})
		// One charge per file covers every emitted window: Charge is linear
		// in its op count, so this equals per-window charges.
		if gseq != nil {
			e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp)
		}
		if len(fileSeq) > 0 {
			e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp+metrics.CostHashOp)
		}
		if fw != nil {
			view := fileWordView{counts: fw, touched: touched}
			for _, i := range fileWord {
				if err := folds[i].File(uint32(fi), view); err != nil {
					return nil, err
				}
			}
			for _, w := range touched {
				fw[w] = 0
			}
			touched = touched[:0]
		}
		if fseq != nil {
			view := analytics.MapCounts(fseq)
			for _, i := range fileSeq {
				if err := folds[i].File(uint32(fi), view); err != nil {
					return nil, err
				}
			}
		}
	}

	if gw != nil {
		kv := analytics.KVCounts{}
		for w, c := range gw {
			if c != 0 {
				kv.Keys = append(kv.Keys, uint64(w))
				kv.Vals = append(kv.Vals, c)
			}
		}
		for _, i := range globalWord {
			if err := folds[i].Global(kv); err != nil {
				return nil, err
			}
		}
	}
	if gseq != nil {
		view := analytics.MapCounts(gseq)
		for _, i := range globalSeq {
			if err := folds[i].Global(view); err != nil {
				return nil, err
			}
		}
	}

	results := make([]any, len(ops))
	for i := range ops {
		var err error
		if results[i], err = folds[i].Finish(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunOp implements analytics.Executor.
func (e *Engine) RunOp(op analytics.Op) (any, error) {
	results, err := e.RunOps([]analytics.Op{op})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// WordCount implements analytics.Engine.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	return analytics.RunAs[map[uint32]uint64](e, analytics.WordCountOp{})
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	return analytics.RunAs[[]analytics.WordFreq](e, analytics.SortOp{})
}

// TermVectors implements analytics.Engine.
func (e *Engine) TermVectors(k int) ([][]analytics.WordFreq, error) {
	return analytics.RunAs[[][]analytics.WordFreq](e, analytics.TermVectorsOp{K: k})
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	return analytics.RunAs[map[uint32][]uint32](e, analytics.InvertedIndexOp{})
}

// SequenceCount implements analytics.Engine.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	return analytics.RunAs[map[analytics.Seq]uint64](e, analytics.SequenceCountOp{})
}

// RankedInvertedIndex implements analytics.Engine.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	return analytics.RunAs[map[analytics.Seq][]analytics.DocFreq](e, analytics.RankedInvertedIndexOp{})
}

// Meter exposes the engine's modeled CPU meter for measurement.
func (e *Engine) Meter() *metrics.Meter { return &e.meter }
