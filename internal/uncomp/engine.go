// Package uncomp implements the paper's Fig 5 baseline: text analytics over
// uncompressed, dictionary-encoded tokens resident on a storage device (NVM
// in the headline comparison).  No compression technique is applied beyond
// the dictionary conversion, matching the paper's baseline configuration;
// every task is a sequential scan of the token stream with intermediate
// results in ordinary DRAM structures.
package uncomp

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Engine scans device-resident tokens.  It implements analytics.Engine.
type Engine struct {
	dev   nvm.Device
	d     *dict.Dictionary
	acc   nvm.Accessor
	offs  []int64 // token offset of each file's start; offs[len] = total
	meter metrics.Meter

	scanBuf []uint32 // scanFile scratch, reused across files
}

var _ analytics.Engine = (*Engine)(nil)

// tokenBytes is the stored width of one token.
const tokenBytes = 4

// RequiredSize returns the device bytes needed to load the given corpus.
func RequiredSize(files [][]uint32) int64 {
	var n int64
	for _, f := range files {
		n += int64(len(f))
	}
	return n * tokenBytes
}

// Load writes the corpus onto the device and returns an engine over it.
// This is the baseline's initialization phase: the dictionary-encoded text
// is written sequentially to the device and flushed.
func Load(dev nvm.Device, d *dict.Dictionary, files [][]uint32) (*Engine, error) {
	need := RequiredSize(files)
	if dev.Size() < need {
		return nil, fmt.Errorf("uncomp: device %d bytes, need %d", dev.Size(), need)
	}
	e := &Engine{
		dev:  dev,
		d:    d,
		acc:  nvm.NewAccessor(dev, 0, need),
		offs: make([]int64, len(files)+1),
	}
	var tok int64
	for i, f := range files {
		e.offs[i] = tok
		// Write in chunks to keep allocation bounded.
		const chunk = 1 << 14
		for start := 0; start < len(f); start += chunk {
			end := start + chunk
			if end > len(f) {
				end = len(f)
			}
			e.acc.PutUint32s((tok+int64(start))*tokenBytes, f[start:end])
		}
		tok += int64(len(f))
	}
	e.offs[len(files)] = tok
	e.meter.Charge(tok, metrics.CostScanToken)
	if need > 0 {
		if err := e.acc.Flush(0, need); err != nil {
			return nil, err
		}
	}
	return e, dev.Drain()
}

// NumFiles returns the number of loaded documents.
func (e *Engine) NumFiles() int { return len(e.offs) - 1 }

// TotalTokens returns the corpus length in tokens.
func (e *Engine) TotalTokens() int64 { return e.offs[len(e.offs)-1] }

// scanFile streams file fi's tokens in batches to fn.
func (e *Engine) scanFile(fi int, fn func(tokens []uint32)) {
	start, end := e.offs[fi], e.offs[fi+1]
	const batch = 1 << 13
	if e.scanBuf == nil {
		e.scanBuf = make([]uint32, batch)
	}
	buf := e.scanBuf
	for pos := start; pos < end; pos += batch {
		n := end - pos
		if n > batch {
			n = batch
		}
		e.acc.Uint32s(pos*tokenBytes, buf[:n])
		fn(buf[:n])
	}
}

// WordCount implements analytics.Engine.  Counting goes through a
// vocabulary-sized array rather than a map; the charged hash-op cost per
// token is unchanged — only host wall-clock differs.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	counts := make([]uint64, e.d.Len())
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				counts[w]++
			}
		})
	}
	out := make(map[uint32]uint64)
	for w, c := range counts {
		if c != 0 {
			out[uint32(w)] = c
		}
	}
	return out, nil
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	counts, err := e.WordCount()
	if err != nil {
		return nil, err
	}
	out := make([]analytics.WordFreq, 0, len(counts))
	for w, c := range counts {
		out = append(out, analytics.WordFreq{Word: w, Freq: c})
	}
	e.meter.Charge(int64(len(out)), metrics.CostHashOp+metrics.CostSortEntry)
	analytics.SortAlphabetical(out, e.d)
	return out, nil
}

// TermVector implements analytics.Engine.  Per-file counts accumulate in a
// vocabulary-sized array with a touched-word list, reset between files; the
// charged costs match the map-based formulation exactly.
func (e *Engine) TermVector(k int) ([][]analytics.WordFreq, error) {
	out := make([][]analytics.WordFreq, e.NumFiles())
	counts := make([]uint64, e.d.Len())
	var touched []uint32
	for fi := range out {
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				if counts[w] == 0 {
					touched = append(touched, w)
				}
				counts[w]++
			}
		})
		e.meter.Charge(int64(len(touched)), metrics.CostSortEntry)
		vec := make([]analytics.WordFreq, 0, len(touched))
		for _, w := range touched {
			vec = append(vec, analytics.WordFreq{Word: w, Freq: counts[w]})
			counts[w] = 0
		}
		touched = touched[:0]
		out[fi] = analytics.TermVectorSorted(vec, k)
	}
	return out, nil
}

// InvertedIndex implements analytics.Engine.  First-occurrence tracking uses
// a vocabulary-sized bitmap with a touched-word list, reset between files.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	out := make(map[uint32][]uint32)
	seen := make([]bool, e.d.Len())
	var touched []uint32
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				if !seen[w] {
					seen[w] = true
					touched = append(touched, w)
					out[w] = append(out[w], uint32(fi))
				}
			}
		})
		for _, w := range touched {
			seen[w] = false
		}
		touched = touched[:0]
	}
	return out, nil
}

// Sequence-task accumulators key windows by a packed uint64 whenever the
// vocabulary fits packBits per token: Go maps hash 8-byte keys through a
// fast path that the 12-byte Seq array misses.  Packed and generic paths
// emit the same windows and charge identically; outputs are converted back
// to Seq keys at the end.
const packBits = 21

func (e *Engine) canPackSeq() bool {
	return analytics.SeqLen == 3 && e.d.Len() <= 1<<packBits
}

func unpackSeq(pk uint64) analytics.Seq {
	const m = 1<<packBits - 1
	return analytics.Seq{
		uint32(pk >> (2 * packBits)),
		uint32((pk >> packBits) & m),
		uint32(pk & m),
	}
}

// scanPackedSequences mirrors scanSequences with packed window keys,
// maintained by one shift-and-or per token.
func (e *Engine) scanPackedSequences(fi int, emit func(uint64)) {
	const mask = 1<<(2*packBits) - 1
	var pk uint64
	n := 0
	e.scanFile(fi, func(toks []uint32) {
		e.meter.Charge(int64(len(toks)), metrics.CostScanToken)
		for _, w := range toks {
			pk = (pk&mask)<<packBits | uint64(w)
			if n < analytics.SeqLen-1 {
				n++
				continue
			}
			emit(pk)
		}
	})
}

// SequenceCount implements analytics.Engine.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	if !e.canPackSeq() {
		return e.sequenceCountGeneric()
	}
	counts := make(map[uint64]uint64)
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanPackedSequences(fi, func(pk uint64) {
			counts[pk]++
		})
		// One charge per file covers every emitted window: Charge is
		// linear in its op count, so this equals the per-window charges.
		e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp)
	}
	out := make(map[analytics.Seq]uint64, len(counts))
	for pk, v := range counts {
		out[unpackSeq(pk)] = v
	}
	return out, nil
}

func (e *Engine) sequenceCountGeneric() (map[analytics.Seq]uint64, error) {
	out := make(map[analytics.Seq]uint64)
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanSequences(fi, func(q analytics.Seq) {
			out[q]++
		})
		e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp)
	}
	return out, nil
}

// numWindows returns how many SeqLen-windows file fi emits.
func (e *Engine) numWindows(fi int) int64 {
	n := e.offs[fi+1] - e.offs[fi] - analytics.SeqLen + 1
	if n < 0 {
		return 0
	}
	return n
}

// RankedInvertedIndex implements analytics.Engine.  Files are scanned in
// ascending order, so each sequence's postings grow append-only: a window in
// the current file either bumps the last posting or starts a new one, and no
// nested per-document map is needed.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	if !e.canPackSeq() {
		return e.rankedInvertedIndexGeneric()
	}
	perDoc := make(map[uint64][]analytics.DocFreq)
	for fi := 0; fi < e.NumFiles(); fi++ {
		doc := uint32(fi)
		e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp+metrics.CostHashOp)
		e.scanPackedSequences(fi, func(pk uint64) {
			p := perDoc[pk]
			if n := len(p); n > 0 && p[n-1].Doc == doc {
				p[n-1].Freq++
			} else {
				perDoc[pk] = append(p, analytics.DocFreq{Doc: doc, Freq: 1})
			}
		})
	}
	out := make(map[analytics.Seq][]analytics.DocFreq, len(perDoc))
	for pk, postings := range perDoc {
		e.meter.Charge(int64(len(postings)), metrics.CostSortEntry)
		out[unpackSeq(pk)] = analytics.RankPostingsSorted(postings)
	}
	return out, nil
}

func (e *Engine) rankedInvertedIndexGeneric() (map[analytics.Seq][]analytics.DocFreq, error) {
	perDoc := make(map[analytics.Seq][]analytics.DocFreq)
	for fi := 0; fi < e.NumFiles(); fi++ {
		doc := uint32(fi)
		e.meter.Charge(e.numWindows(fi), metrics.CostSeqOp+metrics.CostHashOp)
		e.scanSequences(fi, func(q analytics.Seq) {
			p := perDoc[q]
			if n := len(p); n > 0 && p[n-1].Doc == doc {
				p[n-1].Freq++
			} else {
				perDoc[q] = append(p, analytics.DocFreq{Doc: doc, Freq: 1})
			}
		})
	}
	out := make(map[analytics.Seq][]analytics.DocFreq, len(perDoc))
	for q, postings := range perDoc {
		e.meter.Charge(int64(len(postings)), metrics.CostSortEntry)
		out[q] = analytics.RankPostingsSorted(postings)
	}
	return out, nil
}

// scanSequences streams every SeqLen-window of file fi.
func (e *Engine) scanSequences(fi int, emit func(analytics.Seq)) {
	var window []uint32
	e.scanFile(fi, func(toks []uint32) {
		e.meter.Charge(int64(len(toks)), metrics.CostScanToken)
		for _, w := range toks {
			window = append(window, w)
			if len(window) > analytics.SeqLen {
				copy(window, window[1:])
				window = window[:analytics.SeqLen]
			}
			if len(window) == analytics.SeqLen {
				var q analytics.Seq
				copy(q[:], window)
				emit(q)
			}
		}
	})
}

// Meter exposes the engine's modeled CPU meter for measurement.
func (e *Engine) Meter() *metrics.Meter { return &e.meter }
