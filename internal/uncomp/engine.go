// Package uncomp implements the paper's Fig 5 baseline: text analytics over
// uncompressed, dictionary-encoded tokens resident on a storage device (NVM
// in the headline comparison).  No compression technique is applied beyond
// the dictionary conversion, matching the paper's baseline configuration;
// every task is a sequential scan of the token stream with intermediate
// results in ordinary DRAM structures.
package uncomp

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/metrics"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// Engine scans device-resident tokens.  It implements analytics.Engine.
type Engine struct {
	dev   nvm.Device
	d     *dict.Dictionary
	acc   nvm.Accessor
	offs  []int64 // token offset of each file's start; offs[len] = total
	meter metrics.Meter
}

var _ analytics.Engine = (*Engine)(nil)

// tokenBytes is the stored width of one token.
const tokenBytes = 4

// RequiredSize returns the device bytes needed to load the given corpus.
func RequiredSize(files [][]uint32) int64 {
	var n int64
	for _, f := range files {
		n += int64(len(f))
	}
	return n * tokenBytes
}

// Load writes the corpus onto the device and returns an engine over it.
// This is the baseline's initialization phase: the dictionary-encoded text
// is written sequentially to the device and flushed.
func Load(dev nvm.Device, d *dict.Dictionary, files [][]uint32) (*Engine, error) {
	need := RequiredSize(files)
	if dev.Size() < need {
		return nil, fmt.Errorf("uncomp: device %d bytes, need %d", dev.Size(), need)
	}
	e := &Engine{
		dev:  dev,
		d:    d,
		acc:  nvm.NewAccessor(dev, 0, need),
		offs: make([]int64, len(files)+1),
	}
	var tok int64
	for i, f := range files {
		e.offs[i] = tok
		// Write in chunks to keep allocation bounded.
		const chunk = 1 << 14
		for start := 0; start < len(f); start += chunk {
			end := start + chunk
			if end > len(f) {
				end = len(f)
			}
			e.acc.PutUint32s((tok+int64(start))*tokenBytes, f[start:end])
		}
		tok += int64(len(f))
	}
	e.offs[len(files)] = tok
	e.meter.Charge(tok, metrics.CostScanToken)
	if need > 0 {
		if err := e.acc.Flush(0, need); err != nil {
			return nil, err
		}
	}
	return e, dev.Drain()
}

// NumFiles returns the number of loaded documents.
func (e *Engine) NumFiles() int { return len(e.offs) - 1 }

// TotalTokens returns the corpus length in tokens.
func (e *Engine) TotalTokens() int64 { return e.offs[len(e.offs)-1] }

// scanFile streams file fi's tokens in batches to fn.
func (e *Engine) scanFile(fi int, fn func(tokens []uint32)) {
	start, end := e.offs[fi], e.offs[fi+1]
	const batch = 1 << 13
	buf := make([]uint32, batch)
	for pos := start; pos < end; pos += batch {
		n := end - pos
		if n > batch {
			n = batch
		}
		e.acc.Uint32s(pos*tokenBytes, buf[:n])
		fn(buf[:n])
	}
}

// WordCount implements analytics.Engine.
func (e *Engine) WordCount() (map[uint32]uint64, error) {
	out := make(map[uint32]uint64)
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				out[w]++
			}
		})
	}
	return out, nil
}

// Sort implements analytics.Engine.
func (e *Engine) Sort() ([]analytics.WordFreq, error) {
	counts, err := e.WordCount()
	if err != nil {
		return nil, err
	}
	out := make([]analytics.WordFreq, 0, len(counts))
	for w, c := range counts {
		out = append(out, analytics.WordFreq{Word: w, Freq: c})
	}
	e.meter.Charge(int64(len(out)), metrics.CostHashOp+metrics.CostSortEntry)
	analytics.SortAlphabetical(out, e.d)
	return out, nil
}

// TermVector implements analytics.Engine.
func (e *Engine) TermVector(k int) ([][]analytics.WordFreq, error) {
	out := make([][]analytics.WordFreq, e.NumFiles())
	for fi := range out {
		counts := make(map[uint32]uint64)
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				counts[w]++
			}
		})
		e.meter.Charge(int64(len(counts)), metrics.CostSortEntry)
		out[fi] = analytics.TermVectorOf(counts, k)
	}
	return out, nil
}

// InvertedIndex implements analytics.Engine.
func (e *Engine) InvertedIndex() (map[uint32][]uint32, error) {
	out := make(map[uint32][]uint32)
	for fi := 0; fi < e.NumFiles(); fi++ {
		seen := make(map[uint32]struct{})
		e.scanFile(fi, func(toks []uint32) {
			e.meter.Charge(int64(len(toks)), metrics.CostScanToken+metrics.CostHashOp)
			for _, w := range toks {
				if _, ok := seen[w]; !ok {
					seen[w] = struct{}{}
					out[w] = append(out[w], uint32(fi))
				}
			}
		})
	}
	return out, nil
}

// SequenceCount implements analytics.Engine.
func (e *Engine) SequenceCount() (map[analytics.Seq]uint64, error) {
	out := make(map[analytics.Seq]uint64)
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanSequences(fi, func(q analytics.Seq) {
			e.meter.Charge(1, metrics.CostSeqOp)
			out[q]++
		})
	}
	return out, nil
}

// RankedInvertedIndex implements analytics.Engine.
func (e *Engine) RankedInvertedIndex() (map[analytics.Seq][]analytics.DocFreq, error) {
	perDoc := make(map[analytics.Seq]map[uint32]uint64)
	for fi := 0; fi < e.NumFiles(); fi++ {
		e.scanSequences(fi, func(q analytics.Seq) {
			e.meter.Charge(1, metrics.CostSeqOp+metrics.CostHashOp)
			m := perDoc[q]
			if m == nil {
				m = make(map[uint32]uint64)
				perDoc[q] = m
			}
			m[uint32(fi)]++
		})
	}
	out := make(map[analytics.Seq][]analytics.DocFreq, len(perDoc))
	for q, m := range perDoc {
		e.meter.Charge(int64(len(m)), metrics.CostSortEntry)
		out[q] = analytics.RankPostings(m)
	}
	return out, nil
}

// scanSequences streams every SeqLen-window of file fi.
func (e *Engine) scanSequences(fi int, emit func(analytics.Seq)) {
	var window []uint32
	e.scanFile(fi, func(toks []uint32) {
		e.meter.Charge(int64(len(toks)), metrics.CostScanToken)
		for _, w := range toks {
			window = append(window, w)
			if len(window) > analytics.SeqLen {
				copy(window, window[1:])
				window = window[:analytics.SeqLen]
			}
			if len(window) == analytics.SeqLen {
				var q analytics.Seq
				copy(q[:], window)
				emit(q)
			}
		}
	})
}

// Meter exposes the engine's modeled CPU meter for measurement.
func (e *Engine) Meter() *metrics.Meter { return &e.meter }
