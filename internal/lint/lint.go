// Package lint implements ntalint: a suite of static analyzers that enforce
// the invariants this codebase lives by but no off-the-shelf tool checks —
// persistence errors must not be dropped (a silently ignored Flush/Drain is a
// torn-crash bug), modeled results must be bit-identical across runs (no
// wall-clock or map-iteration order in the hot paths), the replication path
// must persist body before header (a header vouching for missing contents is
// the torn-bootstrap bug PR 7's fault injection caught), and mutex-guarded
// coordinator state must be accessed under its lock.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature —
// Analyzer, Pass, Reportf, testdata fixtures with `// want` expectations —
// but is built on the standard library alone (go/ast, go/types, and
// `go list -export` for dependency export data), so the module stays
// dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string

	// SkipTests excludes _test.go files from the analysis.  Checks over
	// modeled-result determinism and lock discipline skip tests (tests use
	// wall-clock timeouts and single-threaded field pokes deliberately);
	// persistcheck runs over tests too, as the retired grep did.
	SkipTests bool

	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PersistCheck, DetermCheck, PublishCheck, GuardCheck}
}

// ByName resolves a comma-separated analyzer list ("persistcheck,guardcheck").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected")
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies ntalint:ignore
// suppressions, and returns the surviving diagnostics in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		sup, supDiags := collectSuppressions(pkg)
		diags = append(diags, supDiags...)
		for _, a := range analyzers {
			files := pkg.Files
			if a.SkipTests {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if !pkg.TestFile[f] {
						files = append(files, f)
					}
				}
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.PkgPath,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if !sup.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Suppressions: a finding is acknowledged, never silently dropped.  An
//
//	//ntalint:ignore <analyzer> <justification>
//
// comment suppresses that analyzer's findings on the same line, or — when
// the directive stands on a line of its own — on the first following line
// that holds code.  The justification is mandatory: the point of the
// mechanism is that every surviving irregularity carries its reason inline.
type suppressionSet struct {
	// byFileLine maps file -> line -> analyzers suppressed at that line.
	byFileLine map[string]map[int]map[string]bool
}

var ignoreRE = regexp.MustCompile(`^//\s*ntalint:ignore\s+(\S+)\s*(.*)$`)

func collectSuppressions(pkg *Package) (*suppressionSet, []Diagnostic) {
	sup := &suppressionSet{byFileLine: make(map[string]map[int]map[string]bool)}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "ntalint",
						Pos:      pos,
						Message:  "ntalint:ignore directive needs a justification: //ntalint:ignore <analyzer> <reason>",
					})
					continue
				}
				line := pos.Line
				if pos.Column == 1 || isOwnLine(tf, f, c) {
					// Directive on its own line covers the next line.
					line++
				}
				fl := sup.byFileLine[pos.Filename]
				if fl == nil {
					fl = make(map[int]map[string]bool)
					sup.byFileLine[pos.Filename] = fl
				}
				for _, l := range []int{pos.Line, line} {
					if fl[l] == nil {
						fl[l] = make(map[string]bool)
					}
					fl[l][m[1]] = true
				}
			}
		}
	}
	return sup, diags
}

// isOwnLine reports whether comment c is the only token on its line.
func isOwnLine(tf *token.File, f *ast.File, c *ast.Comment) bool {
	line := tf.Line(c.Pos())
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		if n.Pos().IsValid() && n.End() <= c.Pos() && tf.Line(n.End()-1) == line {
			own = false
		}
		return true
	})
	return own
}

func (s *suppressionSet) suppressed(d Diagnostic) bool {
	fl := s.byFileLine[d.Pos.Filename]
	if fl == nil {
		return false
	}
	return fl[d.Pos.Line][d.Analyzer]
}

// --- small shared helpers -------------------------------------------------

// pkgTail returns the last element of a package path: the analyzers scope
// themselves by it ("internal/pmem" and a fixture's "publish/pmem" are both
// "pmem"), which is what lets testdata packages stand in for the real tree.
func pkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// exprText renders a (simple) expression as its source text — the canonical
// spelling guardcheck uses to match lock paths ("se.failMu", "r.mu").
// Expressions it cannot render canonically come back as "".
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		base := exprText(e.X)
		idx := exprText(e.Index)
		if base == "" {
			return ""
		}
		if idx == "" {
			if lit, ok := e.Index.(*ast.BasicLit); ok {
				idx = lit.Value
			} else {
				return ""
			}
		}
		return base + "[" + idx + "]"
	case *ast.StarExpr:
		return exprText(e.X)
	}
	return ""
}

// methodOf resolves the called method of a call expression: the *types.Func
// for x.M(...) whether M is a concrete method, a promoted one, or an
// interface method.  Returns nil for non-method calls.
func methodOf(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil {
		if f, ok := s.Obj().(*types.Func); ok {
			return f
		}
		return nil
	}
	// Package-qualified call (pkg.F): not a method.
	return nil
}

// funcOf resolves a called package-level function (pkg.F or F).
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if info.Selections[fun] != nil {
			return nil // method, not package function
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// errorReturning reports whether fn's last result is error.
func errorReturning(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return last.String() == "error"
}
