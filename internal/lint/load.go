package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers run
// over.  Files holds the package's compiled sources plus its in-package test
// files (external foo_test packages are not loaded — they see only the public
// API and carry no persistence or coordinator state of their own).
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TestFile marks which loaded files are _test.go files, so analyzers
	// with SkipTests can confine themselves to compiled code.
	TestFile map[*ast.File]bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Standard    bool
	DepOnly     bool
	ForTest     string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Module      *struct{ Path string }
	Error       *struct{ Err string }
}

// Load type-checks the packages matching patterns under dir and returns them
// ready for analysis.  It has no dependency beyond the Go toolchain: package
// metadata and compiled export data come from `go list -export`, and each
// target package's syntax is parsed and type-checked from source against that
// export data.  Dependencies therefore never need re-type-checking, and the
// whole load is one toolchain invocation plus one pass over the target
// sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "-test", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		// Test-variant entries ("p [p.test]", "p.test") exist so that the
		// dependency closure of test files is listed and compiled; the plain
		// variant of each dependency is the one whose export data we import.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") ||
			strings.Contains(p.ImportPath, " [") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, &p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one target from source.
func checkPackage(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	pkg := &Package{
		PkgPath:  t.ImportPath,
		Dir:      t.Dir,
		Fset:     fset,
		TestFile: make(map[*ast.File]bool),
	}
	parse := func(names []string, test bool) error {
		for _, name := range names {
			path := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("lint: %v", err)
			}
			pkg.Files = append(pkg.Files, f)
			if test {
				pkg.TestFile[f] = true
			}
		}
		return nil
	}
	if err := parse(t.GoFiles, false); err != nil {
		return nil, err
	}
	if err := parse(t.CgoFiles, false); err != nil {
		return nil, err
	}
	if err := parse(t.TestGoFiles, true); err != nil {
		return nil, err
	}
	if len(pkg.Files) == 0 {
		return pkg, nil
	}

	pkg.Info = newInfo()
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}

// newInfo allocates a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
