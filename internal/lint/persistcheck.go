package lint

import (
	"go/ast"
	"go/types"
)

// PersistCheck flags persistence-path calls whose error result is dropped.
//
// It is the type-aware replacement for the Makefile's line-regex errcheck:
// the grep only matched a bare single-line call statement, so a multi-line
// call, a call in expression position whose error lands in `_`, a `go` or
// `defer` statement, or a call through an interface or type alias all slipped
// past it.  Here the rule is semantic: any call that resolves to a
// persistence method of the nvm / pmem / core (op-log) packages and returns
// an error must have that error consumed — propagated, inspected, or passed
// along (tests wrap theirs in must(t, ...)).  Assigning it to `_` counts as
// dropping it: a deliberate drop needs an //ntalint:ignore with its reason.
var PersistCheck = &Analyzer{
	Name: "persistcheck",
	Doc:  "flags dropped errors from nvm/pmem/op-log persistence methods",
	Run:  runPersistCheck,
}

// persistMethods is the persistence surface: the flush/fence/commit family
// whose errors are exactly the torn-crash bugs crashcheck exists to catch.
// Matching is by method name within the persistence packages (nvm, pmem,
// core), and only methods returning an error are considered, so same-named
// helpers elsewhere are untouched.
var persistMethods = map[string]bool{
	// Device persistence pipeline.
	"Crash": true, "CrashAt": true, "Drain": true,
	"Flush": true, "FlushAll": true, "FlushInit": true,
	// Pool / header persistence.
	"FlushHeader": true, "Checkpoint": true, "Commit": true,
	// Durable-store and replication internals.
	"Persist": true, "Sync": true, "ShipCommit": true,
	"persist": true, "sync": true, "flushHeader": true,
	// Op-log and redo-log internals.
	"append": true, "commit": true, "compact": true, "reset": true,
	"format": true, "recover": true, "bootstrap": true,
}

// persistPackages are the package-path tails whose methods are in scope.
var persistPackages = map[string]bool{"nvm": true, "pmem": true, "core": true}

func runPersistCheck(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk with enough context to know how each call's results are used.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportIfPersist(pass, call, "dropped")
				}
			case *ast.GoStmt:
				reportIfPersist(pass, n.Call, "dropped by go statement")
			case *ast.DeferStmt:
				reportIfPersist(pass, n.Call, "dropped by defer")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags persistence errors assigned to the blank identifier.
func checkAssign(pass *Pass, as *ast.AssignStmt) {
	// Single call on the RHS: results map positionally onto the LHS.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := persistCallee(pass, call)
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		errIdx := sig.Results().Len() - 1
		if len(as.Lhs) == 1 && sig.Results().Len() > 1 {
			return // whole tuple captured into one value? not legal Go; ignore
		}
		if errIdx < len(as.Lhs) && isBlank(as.Lhs[errIdx]) {
			pass.Reportf(call.Pos(), "error from (%s).%s assigned to _: persistence errors must be handled (//ntalint:ignore persistcheck <reason> to drop deliberately)",
				recvOrPkg(fn), fn.Name())
		}
		return
	}
	// Parallel assignment: each RHS call maps to one LHS.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if fn := persistCallee(pass, call); fn != nil {
			pass.Reportf(call.Pos(), "error from (%s).%s assigned to _: persistence errors must be handled (//ntalint:ignore persistcheck <reason> to drop deliberately)",
				recvOrPkg(fn), fn.Name())
		}
	}
}

func reportIfPersist(pass *Pass, call *ast.CallExpr, how string) {
	if fn := persistCallee(pass, call); fn != nil {
		pass.Reportf(call.Pos(), "error from (%s).%s %s: persistence errors must be handled (//ntalint:ignore persistcheck <reason> to drop deliberately)",
			recvOrPkg(fn), fn.Name(), how)
	}
}

// persistCallee returns the called persistence method, or nil if the call is
// out of scope.
func persistCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := methodOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if !persistMethods[fn.Name()] || !persistPackages[pkgTail(fn.Pkg().Path())] {
		return nil
	}
	if !errorReturning(fn) {
		return nil
	}
	return fn
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// recvOrPkg names the method's receiver type for diagnostics.
func recvOrPkg(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg()))
	}
	return fn.Pkg().Path()
}
