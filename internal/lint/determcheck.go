package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetermCheck enforces the bit-identical modeled-results contract (PR 1) in
// the packages that produce them: pool layout (pmem), fold/merge paths
// (analytics, metrics), and grammar construction (sequitur, cfg).  Three
// sources of run-to-run nondeterminism are banned there:
//
//   - time.Now / time.Since: wall-clock must never feed a modeled figure;
//   - the global math/rand source (rand.Intn and friends): unseeded, and
//     shared mutable state besides — randomness must come from an explicit
//     rand.New(rand.NewSource(seed));
//   - range over a map whose iteration order escapes: Go randomizes map
//     order per run, so an order-sensitive loop makes layouts and merge
//     results differ between identical runs.
//
// A map range is accepted when the analyzer can see its order cannot escape:
// either every element lands in a slice that is later passed to a sorting
// call (sort.*, slices.Sort*, or any function whose name contains "Sort" —
// the canonical-ordering helpers), or the loop body is order-insensitive
// (commutative accumulation: x += v, keyed map writes out[k] = f(v) indexed
// by the iteration key, Meter.Charge).  Anything else is flagged; an
// intentionally order-exposing iterator documents itself with
// //ntalint:ignore determcheck <reason>.
var DetermCheck = &Analyzer{
	Name:      "determcheck",
	Doc:       "forbids wall-clock, unseeded randomness, and order-sensitive map iteration in modeled-result packages",
	SkipTests: true,
	Run:       runDetermCheck,
}

// determPackages are the modeled-result package tails in scope.
var determPackages = map[string]bool{
	"pmem": true, "analytics": true, "metrics": true, "sequitur": true, "cfg": true,
}

// commutativeCalls are methods whose effect is order-insensitive by
// construction (atomic add into a meter), allowed inside map-range bodies.
var commutativeCalls = map[string]bool{"Charge": true}

func runDetermCheck(pass *Pass) error {
	if !determPackages[pkgTail(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, enclosingFunc(f, n.Pos()))
			}
			return true
		})
	}
	return nil
}

// enclosingFunc finds the top-level function declaration containing pos.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= pos && pos < fd.Body.End() {
			return fd
		}
	}
	return nil
}

// checkBannedCall flags time.Now/Since and global math/rand functions.
func checkBannedCall(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a modeled-result package: wall-clock must not influence modeled figures", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Explicitly seeded constructions are the sanctioned path.
		default:
			pass.Reportf(call.Pos(), "rand.%s uses the global math/rand source: use rand.New(rand.NewSource(seed)) so runs reproduce", fn.Name())
		}
	}
}

// checkMapRange analyzes one range statement over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, encl *ast.FuncDecl) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	keyVars := rangeVars(pass, rng)
	sinks := map[types.Object]bool{} // slices appended to in the body

	if orderInsensitiveBody(pass, rng.Body, keyVars, sinks) {
		if len(sinks) == 0 {
			return // pure commutative accumulation
		}
		// Elements escape into slices: the order is laundered only if every
		// sink feeds a sorting call later in the same function.
		if encl != nil && allSinksSorted(pass, encl, rng, sinks) {
			return
		}
		pass.Reportf(rng.Pos(), "map iteration order escapes into a slice that is never canonically sorted: results will differ between runs")
		return
	}
	pass.Reportf(rng.Pos(), "order-sensitive iteration over a map: Go randomizes map order per run (sort the keys first, or //ntalint:ignore determcheck <reason>)")
}

// rangeVars collects the loop's key variable object.  Only the key guarantees
// distinctness across iterations (values can repeat), so only the key supports
// the disjoint-slot argument.
func rangeVars(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		if obj := pass.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true // unresolved bare append: only the builtin parses here
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// allArgsKeyedSlots reports whether every argument of call is a map or slice
// slot indexed by the loop key (e.g. out[k]) — per-key state.
func allArgsKeyedSlots(pass *Pass, call *ast.CallExpr, keyVars map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	for _, arg := range call.Args {
		idx, ok := ast.Unparen(arg).(*ast.IndexExpr)
		if !ok || !mentionsVar(pass, idx.Index, keyVars) {
			return false
		}
	}
	return true
}

// orderInsensitiveBody reports whether every statement in the loop body is
// one whose final effect does not depend on iteration order, collecting
// append sinks along the way.  Conservative: anything unrecognized is
// order-sensitive.
func orderInsensitiveBody(pass *Pass, body *ast.BlockStmt, keyVars map[types.Object]bool, sinks map[types.Object]bool) bool {
	for _, stmt := range body.List {
		if !orderInsensitiveStmt(pass, stmt, keyVars, sinks) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt, keyVars map[types.Object]bool, sinks map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true // x++ / x-- commute
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s, keyVars, sinks)
	case *ast.ExprStmt:
		// A bare call is allowed for the known-commutative set, and for a
		// per-slot sort (slices.Sort(out[k])): distinct keys sort disjoint
		// slots, so iteration order cannot show.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fn := methodOf(pass.Info, call); fn != nil && commutativeCalls[fn.Name()] {
				return true
			}
			if isSortingCall(pass, call) && allArgsKeyedSlots(pass, call, keyVars) {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		return true // declaring loop-locals is order-free
	case *ast.BlockStmt:
		return orderInsensitiveBody(pass, s, keyVars, sinks)
	case *ast.RangeStmt:
		// A nested loop over a slice or array replays in a fixed order, so
		// the outer map's order still cannot show as long as the inner body
		// is itself order-insensitive with respect to the outer key.
		if tv, ok := pass.Info.Types[s.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array:
				return orderInsensitiveBody(pass, s.Body, keyVars, sinks)
			}
		}
		return false
	default:
		return false
	}
}

// orderInsensitiveAssign accepts commutative compound assignments, keyed map
// writes indexed by the iteration key, and appends (recorded as sinks for
// the sorted-later check).
func orderInsensitiveAssign(pass *Pass, as *ast.AssignStmt, keyVars map[types.Object]bool, sinks map[types.Object]bool) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true // commutative (or at least order-free for disjoint keys) accumulation
	case token.ASSIGN, token.DEFINE:
	default:
		return false // |=^... shifts, quotients: order-dependent
	}
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		// append into a sink slice: x = append(x, ...).
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if tgt, ok := lhs.(*ast.Ident); ok {
				// Record the sink; the sorted-later check decides its fate.
				if obj := pass.Info.Uses[tgt]; obj != nil {
					sinks[obj] = true
					continue
				}
				if obj := pass.Info.Defs[tgt]; obj != nil {
					sinks[obj] = true
					continue
				}
			}
			// Keyed map-slot append m[k] = append(m[k], ...): distinct keys
			// extend disjoint slots, so each slot's contents are fixed by the
			// (deterministic) inner order, not by map iteration order.
			if idx, ok := lhs.(*ast.IndexExpr); ok {
				if tv, ok := pass.Info.Types[idx.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && mentionsVar(pass, idx.Index, keyVars) {
						continue
					}
				}
			}
			// append into anything else (a field, an unkeyed slot): the
			// sorted-later check can't follow it — treat as order-sensitive.
			return false
		}
		// Keyed map write out[k] = v: distinct source keys touch distinct
		// slots, so order cannot matter as long as the index mentions the
		// iteration key.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := pass.Info.Types[idx.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && mentionsVar(pass, idx.Index, keyVars) {
					continue
				}
			}
			return false
		}
		return false
	}
	return true
}

// mentionsVar reports whether expr references one of the given objects.
func mentionsVar(pass *Pass, expr ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// allSinksSorted reports whether every sink slice is passed to a sorting
// call somewhere after the range statement in the enclosing function.
func allSinksSorted(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, sinks map[types.Object]bool) bool {
	sorted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortingCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && sinks[obj] {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	for obj := range sinks {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// isSortingCall recognizes canonical-ordering calls: anything out of sort/
// slices, or any function or method whose name contains "Sort" (the
// codebase's canonical-ordering helpers: SortAlphabetical, TermVectorSorted,
// RankPostingsSorted, ...).
func isSortingCall(pass *Pass, call *ast.CallExpr) bool {
	if fn := funcOf(pass.Info, call); fn != nil {
		if fn.Pkg() != nil && (fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") {
			return true
		}
		return strings.Contains(fn.Name(), "Sort")
	}
	if fn := methodOf(pass.Info, call); fn != nil {
		return strings.Contains(fn.Name(), "Sort")
	}
	return false
}
