package lint_test

import (
	"strings"
	"testing"

	"github.com/text-analytics/ntadoc/internal/lint"
	"github.com/text-analytics/ntadoc/internal/lint/linttest"
)

func TestPersistCheck(t *testing.T) { linttest.Run(t, "persist", lint.PersistCheck) }
func TestDetermCheck(t *testing.T)  { linttest.Run(t, "determ", lint.DetermCheck) }
func TestPublishCheck(t *testing.T) { linttest.Run(t, "publish", lint.PublishCheck) }
func TestGuardCheck(t *testing.T)   { linttest.Run(t, "guard", lint.GuardCheck) }

// TestSuppressionNeedsJustification: a bare ntalint:ignore directive is
// rejected with its own diagnostic and suppresses nothing.
func TestSuppressionNeedsJustification(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/suppress/metrics")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.DetermCheck})
	if err != nil {
		t.Fatalf("running determcheck: %v", err)
	}
	var gotDirective, gotFinding bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "ntalint" && strings.Contains(d.Message, "needs a justification"):
			gotDirective = true
		case d.Analyzer == "determcheck" && strings.Contains(d.Message, "time.Now"):
			gotFinding = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotDirective {
		t.Errorf("missing the needs-a-justification diagnostic; got %v", diags)
	}
	if !gotFinding {
		t.Errorf("bare directive must not suppress the underlying finding; got %v", diags)
	}
}

// TestByName exercises analyzer selection, the -c flag's engine.
func TestByName(t *testing.T) {
	as, err := lint.ByName("persistcheck, guardcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "persistcheck" || as[1].Name != "guardcheck" {
		t.Fatalf("ByName selected %v", as)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
