// Package linttest runs lint analyzers over want-annotated fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest in miniature: each
// fixture line that should be flagged carries a `// want "regexp"` comment,
// and the test fails on any unmatched expectation or unexpected diagnostic.
//
// Fixtures live under internal/lint/testdata/src/<root>/, one directory per
// fixture package.  The go tool never matches testdata directories with
// `...` patterns, so the intentionally buggy fixtures are invisible to the
// ordinary build, vet, and ntalint runs over the module; this runner walks
// the tree itself and loads each fixture directory explicitly.
package linttest

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/text-analytics/ntadoc/internal/lint"
)

// want is one expectation: a diagnostic whose message matches re must be
// reported at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads every fixture package under testdata/src/<root> (relative to the
// calling test's directory) and checks the analyzer's diagnostics against the
// fixtures' want comments, both ways: every diagnostic needs a matching want
// on its line, and every want must be hit.
func Run(t *testing.T, root string, a *lint.Analyzer) {
	t.Helper()

	base := filepath.Join("testdata", "src", root)
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		gofiles, _ := filepath.Glob(filepath.Join(p, "*.go"))
		if len(gofiles) > 0 {
			dirs = append(dirs, "./"+filepath.ToSlash(p))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", base, err)
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", base)
	}

	pkgs, err := lint.Load(".", dirs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !claimWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s: %s", shortPos(d.Pos.Filename, d.Pos.Line), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s matching %q", shortPos(w.file, w.line), w.raw)
		}
	}
}

// claimWant consumes the first unhit want at file:line whose pattern matches
// the message.
func claimWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.hit || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantRE finds the expectation list in a comment; quotedRE splits it into
// individual Go-quoted regexps.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// collectWants parses want comments out of every loaded fixture file.  A want
// comment applies to its own line; several quoted patterns on one line expect
// several diagnostics there.
func collectWants(t *testing.T, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", shortPos(pos.Filename, pos.Line), q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", shortPos(pos.Filename, pos.Line), pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	return wants
}

// shortPos trims a fixture position down to testdata-relative form for
// readable failures.
func shortPos(file string, line int) string {
	if i := strings.Index(file, "testdata"+string(filepath.Separator)); i >= 0 {
		file = file[i:]
	}
	return fmt.Sprintf("%s:%d", file, line)
}
