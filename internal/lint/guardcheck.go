package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardCheck verifies `// guarded by <mu>` field annotations: every access
// to an annotated field must happen while the named sibling mutex is held.
// The coordinator state in core/sharded.go, core/replicator.go, and the
// shared-mode device in nvm/sim.go carry these annotations — the lock
// discipline there is load-bearing (failover, replication, and concurrent
// query sessions all run through it) and was previously enforced only by
// comment and code review.
//
// The analysis is lexical within each function, mirroring how the code is
// actually written: a mutex counts as held from an `x.mu.Lock()` (or RLock)
// statement to the matching `Unlock` — or to the end of the function when
// the unlock is deferred.  Accesses are exempt when
//
//   - the function's name ends in "Locked" or its doc comment says
//     "caller holds" / "<mu> held" (the callee documents its contract);
//   - the accessed object is a local built in this function (composite
//     literal or a New*/new* constructor call): not yet shared;
//   - the access is inside a composite literal key (field names, not reads).
//
// Anything else is flagged; single-owner phases that deliberately skip the
// lock (construction, teardown) document themselves with
// //ntalint:ignore guardcheck <reason>.
var GuardCheck = &Analyzer{
	Name:      "guardcheck",
	Doc:       "checks that fields annotated `guarded by <mu>` are accessed under their mutex",
	SkipTests: true,
	Run:       runGuardCheck,
}

var guardedByRE = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\b`)

func runGuardCheck(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fnAssumesLock(fd) {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated struct field object to the name
// of its guarding mutex field.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or line comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// fnAssumesLock reports whether the function declares that its caller holds
// the lock: name suffix "Locked" or a doc comment saying so.
func fnAssumesLock(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc != nil {
		doc := strings.ToLower(fd.Doc.Text())
		if strings.Contains(doc, "caller holds") || strings.Contains(doc, "held)") ||
			strings.Contains(doc, "held by the caller") || strings.Contains(doc, "mu held") {
			return true
		}
	}
	return false
}

// lockEvent is one Lock/Unlock call in source order.
type lockEvent struct {
	pos      token.Pos
	path     string // canonical mutex path, e.g. "se.failMu"
	lock     bool
	deferred bool
}

// checkGuardedAccesses walks one function, replaying Lock/Unlock events in
// source order and flagging annotated-field accesses outside the window.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if path, lock, ok := lockCall(n.Call); ok {
				events = append(events, lockEvent{pos: n.Pos(), path: path, lock: lock, deferred: true})
			}
			return false // don't double-count the inner call
		case *ast.CallExpr:
			if path, lock, ok := lockCall(n); ok {
				events = append(events, lockEvent{pos: n.Pos(), path: path, lock: lock})
			}
		}
		return true
	})

	locals := localConstructions(pass, fd)

	// Field names used as composite-literal keys are plain identifiers, not
	// selector expressions, so initializations like &follower{dev: d} are
	// naturally out of scope here.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		checkSelector(pass, n, fd, guarded, events, locals)
		return true
	})
}

// checkSelector flags n if it is an unguarded access to an annotated field.
func checkSelector(pass *Pass, n ast.Node, fd *ast.FuncDecl, guarded map[types.Object]string,
	events []lockEvent, locals map[types.Object]bool) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	// For promoted/chained selections, the annotated field is the final one.
	obj := s.Obj()
	mu, ok := guarded[obj]
	if !ok {
		return
	}
	base := exprText(sel.X)
	if base == "" {
		return // un-renderable base: give the access the benefit of the doubt
	}
	// A value constructed locally is not yet shared.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if o := pass.Info.Uses[id]; o != nil && locals[o] {
			return
		}
	}
	want := base + "." + mu
	if !heldAt(events, sel.Pos(), want) {
		pass.Reportf(sel.Pos(), "%s accessed without holding %s (field is marked `guarded by %s`; lock it, rename the function *Locked, or //ntalint:ignore guardcheck <reason>)",
			base+"."+obj.Name(), want, mu)
	}
}

// heldAt replays the lock events lexically preceding pos and reports whether
// the mutex at path is held there.  Deferred unlocks never release within
// the function body.
func heldAt(events []lockEvent, pos token.Pos, path string) bool {
	held := false
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		if ev.path != path {
			continue
		}
		if ev.lock {
			held = true
		} else if !ev.deferred {
			held = false
		}
	}
	return held
}

// lockCall recognizes X.Lock/RLock/Unlock/RUnlock() and returns the canonical
// path of X and whether it acquires.
func lockCall(call *ast.CallExpr) (path string, lock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	path = exprText(sel.X)
	if path == "" {
		return "", false, false
	}
	return path, lock, true
}

// localConstructions collects local variables initialized in this function
// from a composite literal or a constructor-shaped call (New*/new*/Open*):
// values that cannot yet be shared with another goroutine.
func localConstructions(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if !isConstruction(rhs) {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// isConstruction recognizes &T{...}, T{...}, and New*/new*/Open* calls.
func isConstruction(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		name := ""
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
			strings.HasPrefix(name, "Open")
	}
	return false
}
