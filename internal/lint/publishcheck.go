package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// PublishCheck enforces the body-before-header publication contract in the
// persistence and replication paths (pmem, core): a header or CRC must never
// become durable while it vouches for body contents that are not.  PR 7's
// fault injection caught exactly this — a snapshot install that published
// the pool header before the body was fenced, so a torn install could leave
// a valid header over missing contents.
//
// Three statically checkable shapes are flagged, each within one function:
//
//  1. header-then-body: a header publish (FlushHeader/flushHeader, or a
//     Flush whose range starts at offset 0 with a header-sized length)
//     followed by a body flush or write later in the same function — the
//     body was still in flight when the header was declared valid;
//  2. mixed flush: a single Flush whose range starts at the header (offset
//  0. with a non-header length, persisting header and body under one
//     fence — a seeded torn write-back can then keep the header granules
//     and lose body ones;
//  3. unfenced ship: a Shipper hand-off (ShipCommit) with no preceding
//     sync/Drain in the function — the shipped batch must be a committed
//     durable delta, never a speculative one.
//
// The redo-log commit protocol intentionally seals its log header before
// flushing in-place data (the log IS the body there); that site documents
// itself with //ntalint:ignore publishcheck.
var PublishCheck = &Analyzer{
	Name:      "publishcheck",
	Doc:       "enforces body-before-header persistence ordering in pmem and replication code",
	SkipTests: true,
	Run:       runPublishCheck,
}

var publishPackages = map[string]bool{"pmem": true, "core": true, "nvm": true}

func runPublishCheck(pass *Pass) error {
	if !publishPackages[pkgTail(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPublishOrder(pass, fd)
		}
	}
	return nil
}

// event classifies the persistence-relevant calls of a function body in
// source order.
type persistEvent struct {
	call *ast.CallExpr
	kind int
}

const (
	evHeaderPublish = iota // FlushHeader / Flush(0, headerLen)
	evMixedFlush           // Flush(0, n) with non-header n
	evBodyFlush            // Flush at a non-header offset
	evBodyWrite            // WriteAt / accessor write
	evFence                // Drain / sync
	evShip                 // ShipCommit
)

func checkPublishOrder(pass *Pass, fd *ast.FuncDecl) {
	var events []persistEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := classifyPersistCall(pass, call); ok {
			events = append(events, persistEvent{call: call, kind: kind})
		}
		return true
	})

	fenced := false // a Drain/sync has occurred
	for i, ev := range events {
		switch ev.kind {
		case evMixedFlush:
			pass.Reportf(ev.call.Pos(), "flush range covers both header and body under one fence: persist the body first, then publish the header separately (torn write-back can keep the header and lose the body)")
		case evHeaderPublish:
			for _, later := range events[i+1:] {
				if later.kind == evBodyFlush || later.kind == evBodyWrite || later.kind == evMixedFlush {
					pass.Reportf(ev.call.Pos(), "header published before the body it vouches for is persisted: body flush/write follows later in this function (body-before-header, see pmem.HeaderSize)")
					break
				}
			}
		case evFence:
			fenced = true
		case evShip:
			if !fenced {
				pass.Reportf(ev.call.Pos(), "ShipCommit with no preceding Drain/sync in this function: shipped batches must be committed durable deltas")
			}
		}
	}
}

// classifyPersistCall sorts a call into the event taxonomy.
func classifyPersistCall(pass *Pass, call *ast.CallExpr) (int, bool) {
	fn := methodOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !persistPackages[pkgTail(fn.Pkg().Path())] {
		return 0, false
	}
	switch fn.Name() {
	case "FlushHeader", "flushHeader":
		return evHeaderPublish, true
	case "Drain", "sync", "Sync":
		return evFence, true
	case "ShipCommit":
		return evShip, true
	case "WriteAt", "WriteBytes":
		return evBodyWrite, true
	case "Flush":
		if len(call.Args) != 2 {
			return evBodyFlush, true
		}
		if !isZeroConst(pass, call.Args[0]) {
			return evBodyFlush, true
		}
		if isHeaderLen(pass, call.Args[1]) {
			return evHeaderPublish, true
		}
		// Flush(0, n) with a body-sized n.  On a device the offset is
		// absolute, so the range provably spans the header and the body; on
		// a sub-region accessor offset 0 is relative to an unknown base, so
		// the flush is classified as a body flush rather than risking a
		// false mixed-flush report.
		if recvIsDevice(pass, call) {
			return evMixedFlush, true
		}
		return evBodyFlush, true
	case "FlushAll":
		// Whole-region flush: header and body under one fence — unless the
		// accessor demonstrably excludes the header, which we cannot see, so
		// treat as mixed only when the receiver names a pool/device-rooted
		// accessor.  Conservatively classify as body flush: FlushAll is used
		// on sub-region accessors (tables) whose base is past the header.
		return evBodyFlush, true
	}
	return 0, false
}

// isZeroConst reports whether e is the constant 0.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// isHeaderLen reports whether a flush length argument denotes a header-sized
// range: a small constant (headers here are 16–192 bytes; anything ≤ 512 is
// taken as one) or an expression whose spelling names a header ("headerSize",
// "HeaderSize", "logHeaderSize", "hdr", "opLogHeader").
func isHeaderLen(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v <= 512
		}
	}
	named := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			low := strings.ToLower(id.Name)
			if strings.Contains(low, "header") || low == "hdr" {
				named = true
			}
		}
		return !named
	})
	return named
}

// recvIsDevice reports whether the method call's receiver is a device (its
// type names Device), as opposed to a region accessor.
func recvIsDevice(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := pass.Info.Selections[sel]
	if s == nil {
		return false
	}
	return strings.Contains(s.Recv().String(), "Device")
}
