// Package pmem is a fixture stand-in for the persistence package: its path
// tail puts both the callers and the fake device methods in publishcheck's
// scope.
package pmem

// HeaderSize mirrors the real pool header size.
const HeaderSize = 192

// SimDevice mimics the device: Flush offsets are absolute, so a Flush(0, n)
// spanning past the header covers header and body in one fence.
type SimDevice struct{}

func (d *SimDevice) Flush(off, n int64) error                 { return nil }
func (d *SimDevice) Drain() error                             { return nil }
func (d *SimDevice) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (d *SimDevice) FlushHeader() error                       { return nil }
func (d *SimDevice) ShipCommit(b []byte) error                { return nil }

// Accessor mimics a sub-region accessor: its Flush offsets are relative to an
// unknown base, so offset 0 does not imply the device header.
type Accessor struct{ dev *SimDevice }

func (a *Accessor) Flush(off, n int64) error { return nil }

// tornBootstrap is the PR 7 regression shape: the whole image — header
// included — is written and flushed under a single fence, so a torn
// write-back can keep the header granules and lose body ones.
func tornBootstrap(dev *SimDevice, img []byte) error {
	if _, err := dev.WriteAt(img, 0); err != nil {
		return err
	}
	if err := dev.Flush(0, int64(len(img))); err != nil { // want "flush range covers both header and body"
		return err
	}
	return dev.Drain()
}

// headerFirst publishes the header while the body is still in flight.
func headerFirst(dev *SimDevice, body []byte) error {
	if err := dev.FlushHeader(); err != nil { // want "header published before the body"
		return err
	}
	if _, err := dev.WriteAt(body, HeaderSize); err != nil {
		return err
	}
	return dev.Drain()
}

// correctInstall is the body-before-header protocol: body write, body flush,
// fence, then header publish, fence.
func correctInstall(dev *SimDevice, img []byte) error {
	if _, err := dev.WriteAt(img[HeaderSize:], HeaderSize); err != nil {
		return err
	}
	if err := dev.Flush(HeaderSize, int64(len(img))-HeaderSize); err != nil {
		return err
	}
	if err := dev.Drain(); err != nil {
		return err
	}
	if err := dev.Flush(0, HeaderSize); err != nil {
		return err
	}
	return dev.Drain()
}

// unfencedShip hands a batch to the shipper before any fence: the batch is
// speculative, not a committed durable delta.
func unfencedShip(dev *SimDevice, batch []byte) error {
	return dev.ShipCommit(batch) // want "ShipCommit with no preceding Drain/sync"
}

// fencedShip ships only after the pending set is drained.
func fencedShip(dev *SimDevice, batch []byte) error {
	if err := dev.Drain(); err != nil {
		return err
	}
	return dev.ShipCommit(batch)
}

// accessorFlush proves the sub-region exemption: offset 0 on an accessor is
// relative, so a long Flush(0, n) there is a body flush, not a mixed one.
func accessorFlush(a *Accessor, n int64) error {
	return a.Flush(0, n)
}

// sealedLogCommit is the redo-log shape: the log header seal IS the commit
// point, so the in-place writes after it are justified by the suppression.
func sealedLogCommit(dev *SimDevice, payload []byte) error {
	//ntalint:ignore publishcheck fixture: redo-log protocol seals the log header first by design.
	if err := dev.FlushHeader(); err != nil {
		return err
	}
	if _, err := dev.WriteAt(payload, HeaderSize); err != nil {
		return err
	}
	return dev.Drain()
}
