// Package core exercises guardcheck's annotation checking.  (guardcheck has
// no package scoping — annotations are load-bearing wherever they appear.)
package core

import "sync"

// Coordinator mirrors the sharded-engine shape: two mutexes, each guarding
// its own annotated fields.
type Coordinator struct {
	mu    sync.Mutex
	state int // guarded by mu

	failMu    sync.Mutex
	failovers int // guarded by failMu
}

// Shared mirrors the device shape with an RWMutex.
type Shared struct {
	rw   sync.RWMutex
	data []byte // guarded by rw
}

func unguardedRead(c *Coordinator) int {
	return c.state // want "c.state accessed without holding c.mu"
}

func wrongMutex(c *Coordinator) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers // want "c.failovers accessed without holding c.failMu"
}

func guardedRead(c *Coordinator) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

func guardedWindow(c *Coordinator) int {
	c.mu.Lock()
	s := c.state
	c.mu.Unlock()
	c.state = s + 1 // want "c.state accessed without holding c.mu"
	return s
}

func bothMutexes(c *Coordinator) {
	c.failMu.Lock()
	c.failovers++
	c.failMu.Unlock()
	c.mu.Lock()
	c.state++
	c.mu.Unlock()
}

func rlockRead(s *Shared) byte {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.data[0]
}

func unguardedWrite(s *Shared) {
	s.data = nil // want "s.data accessed without holding s.rw"
}

// applyLocked documents its contract by name: the caller holds c.mu.
func applyLocked(c *Coordinator, n int) {
	c.state += n
}

// drainState is exempt by doc contract: caller holds c.mu.
func drainState(c *Coordinator) int {
	s := c.state
	c.state = 0
	return s
}

func localConstruction() int {
	c := &Coordinator{}
	c.state = 7 // not yet shared: exempt
	return c.state
}

func constructorCall() *Coordinator {
	c := NewCoordinator()
	c.state = 1 // not yet shared: exempt
	return c
}

// NewCoordinator builds a coordinator (constructor-shaped name).
func NewCoordinator() *Coordinator { return &Coordinator{} }

func deliberateTeardown(c *Coordinator) int {
	//ntalint:ignore guardcheck fixture: single-owner teardown reads without the lock by design.
	return c.state
}
