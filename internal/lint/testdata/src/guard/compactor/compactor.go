// Package compactor exercises guardcheck over the background-worker shape
// the compaction coordinator uses: one mutex guarding the worker's run
// counters and error slot, with the lock window opened and closed inside a
// polling loop rather than held for a whole function.
package compactor

import "sync"

// Worker mirrors core.Compactor: channels coordinate shutdown, the mutex
// guards the counters the poll loop and the stats readers share.
type Worker struct {
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	runs    int    // guarded by mu
	skipped int    // guarded by mu
	lastErr error  // guarded by mu
	stopped bool   // guarded by mu
	phase   string // guarded by mu
}

func pollOnce(w *Worker, ran bool, err error) {
	w.mu.Lock()
	switch {
	case err != nil:
		w.lastErr = err
	case ran:
		w.runs++
	default:
		w.skipped++
	}
	w.mu.Unlock()
}

func statsRace(w *Worker) (int, int) {
	w.mu.Lock()
	runs := w.runs
	w.mu.Unlock()
	return runs, w.skipped // want "w.skipped accessed without holding w.mu"
}

func unguardedError(w *Worker) error {
	return w.lastErr // want "w.lastErr accessed without holding w.mu"
}

func stopIdempotent(w *Worker) {
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	w.mu.Unlock()
	if already {
		return
	}
	close(w.stop)
	<-w.done
}

func stopLeak(w *Worker) {
	if w.stopped { // want "w.stopped accessed without holding w.mu"
		return
	}
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

func phaseWindow(w *Worker) string {
	w.mu.Lock()
	p := w.phase
	w.mu.Unlock()
	w.phase = "swap" // want "w.phase accessed without holding w.mu"
	return p
}

// runsLocked documents its contract by name: the caller holds w.mu.
func runsLocked(w *Worker) int {
	return w.runs
}

// snapshot is exempt by doc contract: caller holds w.mu for the whole
// swap protocol.
func snapshot(w *Worker) (int, int) {
	return w.runs, w.skipped
}

func freshWorker() *Worker {
	w := &Worker{stop: make(chan struct{}), done: make(chan struct{})}
	w.phase = "idle" // not yet shared: exempt
	return w
}

func teardownRead(w *Worker) error {
	//ntalint:ignore guardcheck fixture: single-owner teardown reads without the lock by design.
	return w.lastErr
}
