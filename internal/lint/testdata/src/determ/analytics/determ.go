// Package analytics is a fixture stand-in for a modeled-result package: its
// path tail puts it in determcheck's scope.
package analytics

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Meter mimics the metrics meter: Charge is on the commutative allowlist.
type Meter struct{ n int64 }

func (m *Meter) Charge(n int64, kind int) { m.n += n }

func wallClock() int64 {
	t := time.Now() // want "time.Now in a modeled-result package"
	return t.Unix()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want "time.Since in a modeled-result package"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global math/rand source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicitly seeded: sanctioned
	return r.Intn(10)
}

func orderEscapes(m map[uint32]uint64) []uint32 {
	var out []uint32
	for k := range m { // want "never canonically sorted"
		out = append(out, k)
	}
	return out
}

func orderLaundered(m map[uint32]uint64) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// SortCanonical mimics the real tree's canonical-ordering helpers
// (SortAlphabetical, TermVectorSorted, ...), recognized by name.
func SortCanonical(out []uint32) { sort.Slice(out, func(i, j int) bool { return out[i] < out[j] }) }

func orderLaunderedByHelper(m map[uint32]uint64) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	SortCanonical(out)
	return out
}

func commutativeFold(m map[uint32]uint64, meter *Meter) uint64 {
	var total uint64
	for _, v := range m {
		total += v
		meter.Charge(int64(v), 1)
	}
	return total
}

func keyedRewrite(m map[uint32]uint64) map[uint32]uint64 {
	out := make(map[uint32]uint64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func keyedSlotAppend(m map[uint32][]uint32, base uint32) map[uint32][]uint32 {
	out := make(map[uint32][]uint32)
	for k, docs := range m {
		for _, d := range docs {
			out[k] = append(out[k], d+base)
		}
	}
	return out
}

func perSlotSort(m map[uint32][]uint32) {
	for k := range m {
		slices.Sort(m[k])
	}
}

func orderSensitive(m map[uint32]uint64, emit func(uint32)) {
	for k := range m { // want "order-sensitive iteration over a map"
		emit(k)
	}
}

func lastWriterWins(m map[uint32]uint64) uint64 {
	var last uint64
	for _, v := range m { // want "order-sensitive iteration over a map"
		last = v
	}
	return last
}

func suppressedIterator(m map[uint32]uint64, emit func(uint32)) {
	//ntalint:ignore determcheck fixture: iteration order is contractually unspecified here.
	for k := range m {
		emit(k)
	}
}
