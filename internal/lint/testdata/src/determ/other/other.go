// Package other proves determcheck's package scoping: wall-clock and map
// iteration outside the modeled-result packages are not its business.
package other

import "time"

func wallClock() int64 { return time.Now().Unix() }

func iterate(m map[int]int, emit func(int)) {
	for k := range m {
		emit(k)
	}
}
