// Package metrics carries a justification-less ntalint:ignore directive: the
// suppression must be rejected (its own diagnostic) and must not suppress
// the underlying finding.
package metrics

import "time"

func wallClock() int64 {
	//ntalint:ignore determcheck
	return time.Now().Unix()
}
