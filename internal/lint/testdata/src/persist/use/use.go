// Package use exercises persistcheck: every way the retired line-regex
// errcheck could be slipped past must be flagged here, and every legitimate
// consumption of the error must not be.
package use

import "github.com/text-analytics/ntadoc/internal/lint/testdata/src/persist/nvm"

func bare(dev *nvm.Device) {
	dev.Drain() // want "error from .*Drain.* dropped"
}

func multiline(dev *nvm.Device) {
	dev.Flush( // want "error from .*Flush.* dropped"
		0,
		4096,
	)
}

func blank(dev *nvm.Device) {
	_ = dev.Drain() // want "error from .*Drain.* assigned to _"
}

func parallelBlank(dev *nvm.Device) {
	_, _ = dev.Drain(), dev.Crash() // want "error from .*Drain.* assigned to _" "error from .*Crash.* assigned to _"
}

func inGoroutine(dev *nvm.Device) {
	go dev.CrashAt(7) // want "error from .*CrashAt.* dropped by go statement"
}

func deferred(dev *nvm.Device) {
	defer dev.Drain() // want "error from .*Drain.* dropped by defer"
}

func throughInterface(s nvm.Syncer) {
	s.Drain() // want "error from .*Drain.* dropped"
}

type alias = nvm.Device

func throughAlias(dev *alias) {
	dev.Drain() // want "error from .*Drain.* dropped"
}

func handled(dev *nvm.Device) error {
	if err := dev.Drain(); err != nil {
		return err
	}
	return dev.Flush(0, 64)
}

func consumedAsArgument(dev *nvm.Device, sink func(error)) {
	sink(dev.Drain()) // passed along, not dropped
}

func nonErrorMethod(dev *nvm.Device) {
	dev.Stats() // returns no error: out of scope
}

func deliberateDrop(dev *nvm.Device) {
	//ntalint:ignore persistcheck fixture: demonstrating a justified deliberate drop.
	dev.Drain()
}
