// Package nvm is a fixture stand-in for the real device package: its path
// tail ("nvm") puts its methods in persistcheck's scope.
package nvm

// Device mimics the persistence surface of the simulated device.
type Device struct{}

func (d *Device) Drain() error              { return nil }
func (d *Device) Flush(off, n int64) error  { return nil }
func (d *Device) Crash() error              { return nil }
func (d *Device) CrashAt(seed int64) error  { return nil }
func (d *Device) Stats() int                { return 0 } // no error: out of scope
func (d *Device) ShipCommit(b []byte) error { return nil }

// Syncer is the interface shape: persistcheck must catch calls through an
// interface method just as through the concrete one.
type Syncer interface {
	Drain() error
}
