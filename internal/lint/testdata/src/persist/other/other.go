// Package other proves persistcheck's package scoping: a same-named method
// outside the persistence packages (tail "other") is never flagged.
package other

type Buffer struct{}

func (b *Buffer) Drain() error { return nil }

func use(b *Buffer) {
	b.Drain() // out-of-scope package: no finding
}
