// Package loadgen drives the serving layer (internal/server) with concurrent
// HTTP clients and reports throughput and latency percentiles.  It lives
// outside internal/harness because it exercises the public ntadoc API end to
// end (harness is imported by the root package's benchmarks, so it cannot
// import ntadoc back).
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/harness"
	"github.com/text-analytics/ntadoc/internal/server"
)

// Options parameterizes a serving-layer load run.
type Options struct {
	Workers  int // concurrent clients (default 8)
	Requests int // total requests across all workers (default 64 per worker)
	Shards   int // archive shards (default 2)
	Replicas int // follower devices per shard (default 0)
	Sessions int // server query-session pool size (0 = server default)
	// CacheEntries is the server's result-cache capacity (0 = server
	// default, negative disables — every request then traverses or
	// coalesces).
	CacheEntries int
	// Mix is the request mix, cycled per request (default DefaultLoadMix).
	Mix []ntadoc.BatchSpec
}

// DefaultLoadMix is the six tasks individually plus the fully fused batch.
func DefaultMix() []ntadoc.BatchSpec {
	tasks := []ntadoc.Task{
		ntadoc.TaskWordCount, ntadoc.TaskSort, ntadoc.TaskTermVectors,
		ntadoc.TaskInvertedIndex, ntadoc.TaskSequenceCount, ntadoc.TaskRankedInvertedIndex,
	}
	mix := make([]ntadoc.BatchSpec, 0, len(tasks)+1)
	for _, t := range tasks {
		mix = append(mix, ntadoc.NewBatchSpec([]ntadoc.Task{t}, 0))
	}
	mix = append(mix, ntadoc.NewBatchSpec(tasks, 0))
	return mix
}

// Result is one measured load point.  Latencies are wall-clock per
// request (client-observed, over real HTTP on the loopback), so unlike the
// modeled figures they vary with the machine.
type Result struct {
	Dataset    string
	Workers    int
	Requests   int
	Errors     int
	Wall       time.Duration
	Throughput float64 // requests per second of wall time

	P50, P95, P99, Max time.Duration

	CacheHitRate  float64 // fraction of OK responses served from the cache
	CoalescedRate float64 // fraction sharing a concurrent identical flight
}

// Run builds a sharded archive from the spec's corpus, stands a
// serving layer up over it (real HTTP on the loopback), and drives it with
// Workers concurrent clients issuing Requests requests from the mix.
func Run(spec datagen.Spec, opts Options) (Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 64 * opts.Workers
	}
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	if len(opts.Mix) == 0 {
		opts.Mix = DefaultMix()
	}

	c, err := harness.GetCorpus(spec)
	if err != nil {
		return Result{}, err
	}
	// Rebuild the public-API dictionary: interning the corpus words in ID
	// order reproduces the same dense IDs the token files use.
	dct := ntadoc.NewDictionary()
	for _, w := range c.Dict.Words() {
		dct.Intern(w)
	}
	names := make([]string, len(c.Files))
	for i := range names {
		names[i] = fmt.Sprintf("doc%03d", i)
	}
	a, err := ntadoc.CompressTokensSharded(c.Files, names, dct, opts.Shards)
	if err != nil {
		return Result{}, err
	}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{Replicas: opts.Replicas})
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()
	srv, err := server.New(server.Config{
		Engine:       eng,
		Sessions:     opts.Sessions,
		QueueDepth:   opts.Workers, // admit every worker; loadgen measures latency, not shedding
		CacheEntries: opts.CacheEntries,
	})
	if err != nil {
		return Result{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-shape one URL per mix entry (the canonical signature is computed
	// server-side from the same spec).
	urls := make([]string, len(opts.Mix))
	for i, m := range opts.Mix {
		tasks := m.Tasks()
		ns := make([]string, len(tasks))
		for j, t := range tasks {
			ns[j] = t.String()
		}
		urls[i] = ts.URL + "/v1/query?task=" + strings.Join(ns, ",")
		if k := m.TermVectorK(); k > 0 {
			urls[i] += fmt.Sprintf("&k=%d", k)
		}
	}

	latencies := make([]time.Duration, opts.Requests)
	var next, errs, oks, cached, coalesced atomic.Int64
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.Workers}}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Get(urls[i%len(urls)])
				if err != nil {
					latencies[i] = time.Since(t0)
					errs.Add(1)
					continue
				}
				var env server.Response
				decErr := json.NewDecoder(resp.Body).Decode(&env)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[i] = time.Since(t0)
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs.Add(1)
					continue
				}
				oks.Add(1)
				if env.Cached {
					cached.Add(1)
				}
				if env.Coalesced {
					coalesced.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := Result{
		Dataset:    spec.Name,
		Workers:    opts.Workers,
		Requests:   opts.Requests,
		Errors:     int(errs.Load()),
		Wall:       wall,
		Throughput: float64(opts.Requests) / wall.Seconds(),
		P50:        percentile(latencies, 50),
		P95:        percentile(latencies, 95),
		P99:        percentile(latencies, 99),
		Max:        latencies[len(latencies)-1],
	}
	if ok := oks.Load(); ok > 0 {
		res.CacheHitRate = float64(cached.Load()) / float64(ok)
		res.CoalescedRate = float64(coalesced.Load()) / float64(ok)
	}
	return res, nil
}

// percentile returns the nearest-rank p-th percentile of sorted values.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
