package sequitur

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

// DeltaBuilder is the incremental inference mode behind online ingestion: a
// live Sequitur builder that extends a *delta grammar* one document at a
// time.  Sequitur is naturally online — appendSymbol restores both
// invariants after every token — and finish() is a read-only snapshot of the
// linked structure, so Grammar() can be taken after any append and the
// builder keeps growing afterwards.
//
// The delta grammar covers only the appended documents; the base grammar is
// untouched.  Reads merge the two (cfg.MergeDelta), and the snapshot is
// byte-identical to Infer over the appended documents alone, which is what
// makes crash recovery deterministic: replaying the durable append records
// through a fresh DeltaBuilder reconstructs the exact same grammar.
//
// A DeltaBuilder is not safe for concurrent use; callers serialize appends
// (the engine's ingest mutex).
type DeltaBuilder struct {
	b        *builder
	numFiles uint32
	numWords uint32

	// base is the base grammar's rule-fingerprint set (the same InternTable
	// fingerprints sharded builds dedup with, see cfg.Interner): appended
	// phrases whose delta rules re-hit it are structure the base grammar
	// already learned, which the reuse stats report and compaction folds
	// back together.
	base map[cfg.Fingerprint]struct{}
}

// DeltaStats is the reuse accounting of a delta snapshot.
type DeltaStats struct {
	Docs    int   // appended documents
	Tokens  int64 // appended tokens
	Rules   int   // delta rules (excluding the delta root)
	Reused  int   // delta rules whose fingerprint the base grammar already interned
	Symbols int64 // delta grammar body symbols
}

// NewDeltaBuilder returns an empty delta builder over a numWords-word
// vocabulary.  base, when non-nil, seeds the fingerprint set used for the
// reuse accounting; nil skips it (stats then report zero reuse).
func NewDeltaBuilder(numWords uint32, base *cfg.Grammar) (*DeltaBuilder, error) {
	db := &DeltaBuilder{
		b: &builder{
			digrams: newDigramTable(),
			root:    newRule(),
			rules:   make(map[*rule]struct{}),
		},
		numWords: numWords,
	}
	db.b.root.id = -1
	if base != nil {
		fps, err := cfg.FingerprintRules(base)
		if err != nil {
			return nil, fmt.Errorf("sequitur: fingerprint base: %w", err)
		}
		db.base = make(map[cfg.Fingerprint]struct{}, len(fps))
		for _, fp := range fps {
			db.base[fp] = struct{}{}
		}
	}
	return db, nil
}

// AppendDoc extends the delta grammar with one document.  numWords is the
// vocabulary size after interning the document (vocabularies only grow, so
// the builder keeps the maximum).  The document's tokens must be below it.
func (db *DeltaBuilder) AppendDoc(tokens []uint32, numWords uint32) error {
	if numWords > db.numWords {
		db.numWords = numWords
	}
	if uint64(db.numFiles)+1 >= cfg.MaxWords {
		return fmt.Errorf("sequitur: too many appended files (%d)", db.numFiles)
	}
	for _, id := range tokens {
		if id >= db.numWords {
			return fmt.Errorf("sequitur: token %d beyond vocabulary %d", id, db.numWords)
		}
		db.b.appendSymbol(cfg.Word(id))
	}
	db.b.appendSymbol(cfg.Sep(db.numFiles))
	db.numFiles++
	return nil
}

// Docs returns the number of appended documents.
func (db *DeltaBuilder) Docs() uint32 { return db.numFiles }

// Grammar snapshots the delta grammar covering every document appended so
// far, or nil when nothing has been appended.  The builder remains live.
func (db *DeltaBuilder) Grammar() *cfg.Grammar {
	if db.numFiles == 0 {
		return nil
	}
	return db.b.finish(db.numFiles, db.numWords)
}

// Stats snapshots the delta and computes its reuse accounting against the
// base fingerprints.
func (db *DeltaBuilder) Stats() (DeltaStats, error) {
	g := db.Grammar()
	if g == nil {
		return DeltaStats{}, nil
	}
	st := g.ComputeStats()
	ds := DeltaStats{
		Docs:    int(db.numFiles),
		Tokens:  st.Expanded,
		Rules:   st.Rules - 1,
		Symbols: st.BodySymbols,
	}
	if db.base != nil && len(g.Rules) > 1 {
		fps, err := cfg.FingerprintRules(g)
		if err != nil {
			return ds, err
		}
		for ri := 1; ri < len(fps); ri++ {
			if _, ok := db.base[fps[ri]]; ok {
				ds.Reused++
			}
		}
	}
	return ds, nil
}
