// Package sequitur implements the Sequitur grammar-inference algorithm
// (Nevill-Manning & Witten), the core TADOC uses to convert dictionary-
// encoded text into a context-free grammar.  The implementation maintains
// the two classic invariants online, in time linear in the input:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than once
//     in the grammar; a repeated digram becomes (or reuses) a rule;
//   - rule utility: every rule is referenced at least twice; a rule that
//     drops to one reference is inlined and removed.
//
// Multi-file corpora are compressed into a single grammar whose root
// concatenates the files with distinct separator symbols between them
// (paper §II): separators occur exactly once each, so no digram containing
// one can ever repeat, and rules therefore never span file boundaries while
// cross-file redundancy is still captured.
package sequitur

import (
	"fmt"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

// node is a doubly-linked symbol in a rule body, or a rule's guard node.
type node struct {
	prev, next *node
	sym        cfg.Symbol
	rule       *rule // non-nil only for guard nodes
}

// rule is an inferred rule: a circular list hanging off a guard node.
type rule struct {
	guard *node
	uses  int // reference count from other rule bodies
	id    int // temporary numbering during inference
}

func newRule() *rule {
	r := &rule{}
	g := &node{rule: r}
	g.prev, g.next = g, g
	r.guard = g
	return r
}

func (r *rule) first() *node { return r.guard.next }
func (r *rule) last() *node  { return r.guard.prev }

// builder runs the inference.
type builder struct {
	digrams *digramTable // digram -> first occurrence (left node)
	root    *rule
	rules   map[*rule]struct{} // all live non-root rules
	nextID  int

	// ruleOf maps a placeholder symbol (index into ruleList) to its rule.
	ruleList []*rule
}

// digramKey packs two symbols.
func digramKey(a, b cfg.Symbol) uint64 { return uint64(a)<<32 | uint64(b) }

// ruleSym returns the placeholder symbol referencing r during inference.
func (b *builder) ruleSym(r *rule) cfg.Symbol {
	if r.id < 0 {
		r.id = len(b.ruleList)
		b.ruleList = append(b.ruleList, r)
	}
	return cfg.Rule(uint32(r.id))
}

func (b *builder) ruleFromSym(s cfg.Symbol) *rule { return b.ruleList[s.RuleIndex()] }

// Infer compresses per-file token streams into a grammar.  tokens[i] is the
// dictionary-encoded content of file i.  numWords is the vocabulary size.
func Infer(tokens [][]uint32, numWords uint32) (*cfg.Grammar, error) {
	if uint64(len(tokens)) >= cfg.MaxWords {
		return nil, fmt.Errorf("sequitur: too many files (%d)", len(tokens))
	}
	b := &builder{
		digrams: newDigramTable(),
		root:    newRule(),
		rules:   make(map[*rule]struct{}),
	}
	b.root.id = -1
	for fi, ids := range tokens {
		for _, id := range ids {
			if id >= numWords {
				return nil, fmt.Errorf("sequitur: token %d beyond vocabulary %d", id, numWords)
			}
			b.appendSymbol(cfg.Word(id))
		}
		// File separators are unique symbols: their digrams can never
		// repeat, so they stay in the root.
		b.appendSymbol(cfg.Sep(uint32(fi)))
	}
	return b.finish(uint32(len(tokens)), numWords), nil
}

// appendSymbol appends s to the root and restores the invariants.
func (b *builder) appendSymbol(s cfg.Symbol) {
	n := &node{sym: s}
	b.link(b.root.last(), n)
	b.link(n, b.root.guard)
	if s.IsRule() {
		b.ruleFromSym(s).uses++
	}
	b.checkDigram(n.prev)
}

// link makes y follow x.
func (b *builder) link(x, y *node) {
	x.next = y
	y.prev = x
}

// isGuard reports whether n is a guard node.
func isGuard(n *node) bool { return n.rule != nil }

// removeDigram unindexes the digram starting at n, if n owns it.
func (b *builder) removeDigram(n *node) {
	if isGuard(n) || isGuard(n.next) {
		return
	}
	b.digrams.delIf(digramKey(n.sym, n.next.sym), n)
}

// checkDigram enforces digram uniqueness for the digram starting at n.
// It returns true when the grammar changed.
func (b *builder) checkDigram(n *node) bool {
	if n == nil || isGuard(n) || isGuard(n.next) {
		return false
	}
	// Separators are unique; digrams containing them never repeat, and
	// keeping them out of the index guarantees no rule spans a file.
	if n.sym.IsSep() || n.next.sym.IsSep() {
		return false
	}
	match := b.digrams.getOrPut(digramKey(n.sym, n.next.sym), n)
	if match == nil {
		return false
	}
	if match == n || match.next == n {
		// Same or overlapping occurrence (aaa): leave as is.
		return false
	}
	b.handleMatch(n, match)
	return true
}

// handleMatch resolves a repeated digram: reuse an existing rule when the
// match is a whole rule body, otherwise create a new rule.
func (b *builder) handleMatch(n, match *node) {
	if isGuard(match.prev) && isGuard(match.next.next) && match.prev.rule != b.root {
		// match is the entire body of a rule: substitute that rule at n.
		r := match.prev.rule
		b.substitute(n, r)
	} else {
		// Create a new rule for the digram.
		r := newRule()
		r.id = -1
		b.rules[r] = struct{}{}
		a, c := match.sym, match.next.sym
		ra := &node{sym: a}
		rc := &node{sym: c}
		b.link(r.guard, ra)
		b.link(ra, rc)
		b.link(rc, r.guard)
		if a.IsRule() {
			b.ruleFromSym(a).uses++
		}
		if c.IsRule() {
			b.ruleFromSym(c).uses++
		}
		b.digrams.put(digramKey(a, c), ra)
		// Replace both occurrences; order matters: the original first.
		b.substitute(match, r)
		b.substitute(n, r)
	}
}

// substitute replaces the digram starting at n with a reference to r and
// re-checks the neighbouring digrams.
func (b *builder) substitute(n *node, r *rule) {
	prev := n.prev
	// Delete the two nodes of the digram.
	b.deleteNode(n)
	b.deleteNode(prev.next)
	// Insert the rule reference.
	ref := &node{sym: b.ruleSym(r)}
	nxt := prev.next
	b.link(prev, ref)
	b.link(ref, nxt)
	r.uses++
	// Restore invariants around the new reference.
	if !b.checkDigram(prev) {
		b.checkDigram(ref)
	}
}

// deleteNode unlinks n, maintaining the digram index and rule use counts.
// Rule utility (inlining rules whose use count drops to one) is deferred to
// finish(), which computes exact reachable counts; deferring keeps the
// online phase simple and cannot corrupt the structure mid-substitution.
func (b *builder) deleteNode(n *node) {
	b.removeDigram(n.prev)
	b.removeDigram(n)
	b.link(n.prev, n.next)
	if n.sym.IsRule() {
		b.ruleFromSym(n.sym).uses--
	}
}

// finish converts the linked structure into a cfg.Grammar: it counts
// references reachable from the root, inlines rules referenced exactly once
// (rule utility), drops unreachable rules, and renumbers densely with R0
// first in discovery order (which also yields a stable topological layout
// for the DAG pool).
func (b *builder) finish(numFiles, numWords uint32) *cfg.Grammar {
	// Count references with multiplicity, reachable from the root.
	refs := make(map[*rule]int)
	var count func(r *rule)
	count = func(r *rule) {
		for n := r.first(); !isGuard(n); n = n.next {
			if !n.sym.IsRule() {
				continue
			}
			child := b.ruleFromSym(n.sym)
			refs[child]++
			if refs[child] == 1 {
				count(child)
			}
		}
	}
	count(b.root)

	inline := func(r *rule) bool { return refs[r] == 1 }

	// Assign final indices to surviving rules in discovery order.
	finalIdx := map[*rule]uint32{b.root: 0}
	order := []*rule{b.root}
	var discover func(r *rule)
	discover = func(r *rule) {
		for n := r.first(); !isGuard(n); n = n.next {
			if !n.sym.IsRule() {
				continue
			}
			child := b.ruleFromSym(n.sym)
			if inline(child) {
				discover(child)
				continue
			}
			if _, seen := finalIdx[child]; !seen {
				finalIdx[child] = uint32(len(order))
				order = append(order, child)
				discover(child)
			}
		}
	}
	discover(b.root)

	g := &cfg.Grammar{
		Rules:    make([][]cfg.Symbol, len(order)),
		NumWords: numWords,
		NumFiles: numFiles,
	}
	var emit func(r *rule, out *[]cfg.Symbol)
	emit = func(r *rule, out *[]cfg.Symbol) {
		for n := r.first(); !isGuard(n); n = n.next {
			if n.sym.IsRule() {
				child := b.ruleFromSym(n.sym)
				if inline(child) {
					emit(child, out)
					continue
				}
				*out = append(*out, cfg.Rule(finalIdx[child]))
				continue
			}
			*out = append(*out, n.sym)
		}
	}
	//ntalint:ignore determcheck each iteration fills only g.Rules[finalIdx[r]] — a distinct slot per rule, from that rule's own symbols — so iteration order cannot show in the result.
	for r, idx := range finalIdx {
		var body []cfg.Symbol
		emit(r, &body)
		g.Rules[idx] = body
	}
	return g
}
