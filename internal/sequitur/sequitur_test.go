package sequitur

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

// encode builds token streams from short strings where each byte is a word.
func encode(files ...string) ([][]uint32, uint32) {
	var tokens [][]uint32
	var max uint32
	for _, f := range files {
		ids := make([]uint32, len(f))
		for i := range f {
			ids[i] = uint32(f[i])
			if ids[i] >= max {
				max = ids[i] + 1
			}
		}
		tokens = append(tokens, ids)
	}
	if max == 0 {
		max = 1
	}
	return tokens, max
}

func roundTrip(t *testing.T, files ...string) *cfg.Grammar {
	t.Helper()
	tokens, numWords := encode(files...)
	g, err := Infer(tokens, numWords)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v\nrules: %v", err, g.Rules)
	}
	got := g.ExpandFiles()
	if len(got) != len(tokens) {
		t.Fatalf("expanded %d files, want %d", len(got), len(tokens))
	}
	for i := range tokens {
		if len(tokens[i]) == 0 && len(got[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], tokens[i]) {
			t.Fatalf("file %d: expand mismatch\n got %v\nwant %v", i, got[i], tokens[i])
		}
	}
	return g
}

func TestEmptyInput(t *testing.T) {
	g, err := Infer(nil, 1)
	if err != nil {
		t.Fatalf("Infer(nil): %v", err)
	}
	if g.NumFiles != 0 || len(g.Rules) != 1 || len(g.Rules[0]) != 0 {
		t.Errorf("empty grammar = %+v", g)
	}
}

func TestSingleToken(t *testing.T) {
	roundTrip(t, "a")
}

func TestEmptyFileAmongFiles(t *testing.T) {
	roundTrip(t, "abcabc", "", "abc")
}

func TestNoRepetition(t *testing.T) {
	g := roundTrip(t, "abcdefgh")
	if len(g.Rules) != 1 {
		t.Errorf("unrepetitive input produced %d rules", len(g.Rules))
	}
}

func TestClassicSequiturExamples(t *testing.T) {
	// abcabc -> rule for abc (via digram rules).
	g := roundTrip(t, "abcabc")
	if len(g.Rules) < 2 {
		t.Errorf("abcabc produced no rules: %v", g.Rules)
	}
	// Overlapping digrams must not loop: aaa, aaaa, aaaaaa.
	roundTrip(t, "aaa")
	roundTrip(t, "aaaa")
	roundTrip(t, "aaaaaa")
	roundTrip(t, "abababab")
	roundTrip(t, "abcbcabcbc")
}

func TestRuleUtilityNoSingleUseRules(t *testing.T) {
	for _, in := range []string{"abcabc", "abcdabcd", "aabaab", "xyxzxyxz", "abababab"} {
		tokens, n := encode(in)
		g, err := Infer(tokens, n)
		if err != nil {
			t.Fatalf("Infer(%q): %v", in, err)
		}
		uses := make([]int, len(g.Rules))
		for _, body := range g.Rules {
			for _, s := range body {
				if s.IsRule() {
					uses[s.RuleIndex()]++
				}
			}
		}
		for ri := 1; ri < len(g.Rules); ri++ {
			if uses[ri] < 2 {
				t.Errorf("%q: R%d used %d times (utility violated)\nrules: %v", in, ri, uses[ri], g.Rules)
			}
		}
	}
}

func TestDigramUniquenessInOutput(t *testing.T) {
	// After inference the grammar should contain (almost) no repeated
	// digram.  Deferred rule-utility inlining can reintroduce a handful,
	// so this is a looseness check, not an exact invariant: the count must
	// be far below the input length.
	in := "the cat sat on the mat the cat sat on the hat "
	var tokens []uint32
	vocab := map[string]uint32{}
	for _, w := range splitWords(in) {
		id, ok := vocab[w]
		if !ok {
			id = uint32(len(vocab))
			vocab[w] = id
		}
		tokens = append(tokens, id)
	}
	g, err := Infer([][]uint32{tokens}, uint32(len(vocab)))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	seen := map[uint64]int{}
	dups := 0
	for _, body := range g.Rules {
		for i := 0; i+1 < len(body); i++ {
			if body[i].IsSep() || body[i+1].IsSep() {
				continue
			}
			k := uint64(body[i])<<32 | uint64(body[i+1])
			seen[k]++
			if seen[k] == 2 {
				dups++
			}
		}
	}
	if dups > len(tokens)/8 {
		t.Errorf("%d duplicate digrams for %d tokens", dups, len(tokens))
	}
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestCompressionOnRedundantInput(t *testing.T) {
	// Highly repetitive input must compress well: body symbols well under
	// input length.
	var tokens []uint32
	for i := 0; i < 200; i++ {
		tokens = append(tokens, 1, 2, 3, 4, 5, 6, 7, 8)
	}
	g, err := Infer([][]uint32{tokens}, 9)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	st := g.ComputeStats()
	if st.Expanded != int64(len(tokens)) {
		t.Fatalf("expanded size = %d, want %d", st.Expanded, len(tokens))
	}
	if st.BodySymbols > int64(len(tokens))/4 {
		t.Errorf("poor compression: %d body symbols for %d tokens", st.BodySymbols, len(tokens))
	}
}

func TestCrossFileRedundancyShared(t *testing.T) {
	// The same content in two files must share rules: total grammar size
	// should be much less than twice the single-file grammar.
	content := make([]uint32, 0, 800)
	r := rand.New(rand.NewSource(5))
	phrase := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	for i := 0; i < 100; i++ {
		content = append(content, phrase...)
		content = append(content, uint32(r.Intn(10)))
	}
	single, _ := Infer([][]uint32{content}, 10)
	double, _ := Infer([][]uint32{content, content}, 10)
	s1 := single.ComputeStats().BodySymbols
	s2 := double.ComputeStats().BodySymbols
	if s2 > s1+s1/2 {
		t.Errorf("cross-file redundancy not shared: single=%d double=%d", s1, s2)
	}
}

func TestSeparatorsStayInRoot(t *testing.T) {
	g := roundTrip(t, "abab", "abab", "abab")
	for ri := 1; ri < len(g.Rules); ri++ {
		for _, s := range g.Rules[ri] {
			if s.IsSep() {
				t.Fatalf("separator escaped into R%d", ri)
			}
		}
	}
	seps := 0
	for _, s := range g.Rules[0] {
		if s.IsSep() {
			seps++
		}
	}
	if seps != 3 {
		t.Errorf("root has %d separators, want 3", seps)
	}
}

func TestTokenBeyondVocabularyRejected(t *testing.T) {
	if _, err := Infer([][]uint32{{5}}, 3); err == nil {
		t.Error("expected vocabulary error")
	}
}

func TestQuickRoundTripRandomTokens(t *testing.T) {
	// Property: decompress(compress(x)) == x for arbitrary token streams
	// over a small alphabet (small alphabets maximize digram collisions and
	// stress the invariants).
	f := func(seed int64, fileLens []uint8) bool {
		if len(fileLens) > 6 {
			fileLens = fileLens[:6]
		}
		r := rand.New(rand.NewSource(seed))
		const vocab = 4
		var tokens [][]uint32
		for _, ln := range fileLens {
			n := int(ln)
			ids := make([]uint32, n)
			for i := range ids {
				ids[i] = uint32(r.Intn(vocab))
			}
			tokens = append(tokens, ids)
		}
		g, err := Infer(tokens, vocab)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		got := g.ExpandFiles()
		if len(got) != len(tokens) {
			return false
		}
		for i := range tokens {
			if len(got[i]) != len(tokens[i]) {
				return false
			}
			for j := range tokens[i] {
				if got[i][j] != tokens[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripSkewedTokens(t *testing.T) {
	// Zipf-like skew produces long runs and nested repetitions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(r, 1.3, 1.0, 9)
		n := 200 + r.Intn(800)
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(zipf.Uint64())
		}
		g, err := Infer([][]uint32{ids}, 10)
		if err != nil || g.Validate() != nil {
			return false
		}
		got := g.ExpandFiles()
		if len(got) != 1 || len(got[0]) != n {
			return false
		}
		for i := range ids {
			if got[0][i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
