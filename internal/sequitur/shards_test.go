package sequitur

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

func TestPartitionFiles(t *testing.T) {
	cases := []struct {
		weights []int64
		k       int
		want    [][2]int
	}{
		{nil, 4, nil},
		{[]int64{5}, 4, [][2]int{{0, 1}}},
		{[]int64{1, 1, 1, 1}, 2, [][2]int{{0, 2}, {2, 4}}},
		{[]int64{1, 1, 1, 1}, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{[]int64{100, 1, 1, 1}, 2, [][2]int{{0, 1}, {1, 4}}},
		{[]int64{1, 1, 1, 100}, 2, [][2]int{{0, 3}, {3, 4}}},
	}
	for _, c := range cases {
		got := PartitionFiles(c.weights, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PartitionFiles(%v, %d) = %v, want %v", c.weights, c.k, got, c.want)
		}
	}
	// Spans always cover [0, n) contiguously with at most k non-empty spans.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(rng.Intn(500))
		}
		spans := PartitionFiles(weights, k)
		if len(spans) == 0 || len(spans) > k {
			t.Fatalf("n=%d k=%d: %d spans", n, k, len(spans))
		}
		next := 0
		for _, sp := range spans {
			if sp[0] != next || sp[1] <= sp[0] {
				t.Fatalf("n=%d k=%d: bad span %v in %v", n, k, sp, spans)
			}
			next = sp[1]
		}
		if next != n {
			t.Fatalf("n=%d k=%d: spans %v do not cover %d files", n, k, spans, n)
		}
	}
}

// TestInferShardsRoundTrip checks every shard grammar is valid and the
// shard expansions concatenate back to the input corpus.
func TestInferShardsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const vocab = 25
	files := make([][]uint32, 7)
	for i := range files {
		n := 20 + rng.Intn(120)
		files[i] = make([]uint32, n)
		for j := range files[i] {
			files[i][j] = uint32(rng.Intn(vocab))
		}
	}
	for _, k := range []int{1, 2, 3, 4, 9} {
		shards, err := InferShards(files, vocab, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if k > 1 && len(shards) < 2 {
			t.Fatalf("k=%d: got %d shards", k, len(shards))
		}
		var got [][]uint32
		for s, g := range shards {
			if err := g.Validate(); err != nil {
				t.Fatalf("k=%d shard %d invalid: %v", k, s, err)
			}
			got = append(got, g.ExpandFiles()...)
		}
		if !reflect.DeepEqual(got, files) {
			t.Fatalf("k=%d: sharded expansion differs from input", k)
		}
		// The merged view must expand identically too.
		merged, err := cfg.ConcatShards(shards)
		if err != nil {
			t.Fatalf("k=%d: concat: %v", k, err)
		}
		if !reflect.DeepEqual(merged.ExpandFiles(), files) {
			t.Fatalf("k=%d: merged expansion differs from input", k)
		}
	}
}
