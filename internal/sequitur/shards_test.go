package sequitur

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

func TestPartitionFiles(t *testing.T) {
	cases := []struct {
		weights []int64
		k       int
		want    [][2]int
	}{
		{nil, 4, nil},
		{[]int64{5}, 4, [][2]int{{0, 1}}},
		{[]int64{1, 1, 1, 1}, 2, [][2]int{{0, 2}, {2, 4}}},
		{[]int64{1, 1, 1, 1}, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{[]int64{100, 1, 1, 1}, 2, [][2]int{{0, 1}, {1, 4}}},
		{[]int64{1, 1, 1, 100}, 2, [][2]int{{0, 3}, {3, 4}}},
		// k greater than the file count: one span per file, never more.
		{[]int64{3, 3}, 7, [][2]int{{0, 1}, {1, 2}}},
		{[]int64{0}, 5, [][2]int{{0, 1}}},
		// k <= 0 degenerates to a single span.
		{[]int64{1, 2, 3}, 0, [][2]int{{0, 3}}},
		{[]int64{1, 2, 3}, -2, [][2]int{{0, 3}}},
		// All-zero weights: split evenly by count, not one lopsided tail.
		{[]int64{0, 0, 0, 0, 0, 0}, 4, [][2]int{{0, 2}, {2, 4}, {4, 5}, {5, 6}}},
		{[]int64{0, 0, 0, 0}, 2, [][2]int{{0, 2}, {2, 4}}},
		// Heavy head exhausts the weight; zero-weight tail still splits evenly.
		{[]int64{100, 0, 0, 0, 0}, 3, [][2]int{{0, 1}, {1, 3}, {3, 5}}},
		// Zero-weight files mixed between weighted ones stay balanced.
		{[]int64{5, 0, 5, 0}, 2, [][2]int{{0, 1}, {1, 4}}},
	}
	for _, c := range cases {
		got := PartitionFiles(c.weights, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PartitionFiles(%v, %d) = %v, want %v", c.weights, c.k, got, c.want)
		}
	}
	// Spans always cover [0, n) contiguously with at most k non-empty spans.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(rng.Intn(500))
		}
		spans := PartitionFiles(weights, k)
		if len(spans) == 0 || len(spans) > k {
			t.Fatalf("n=%d k=%d: %d spans", n, k, len(spans))
		}
		next := 0
		for _, sp := range spans {
			if sp[0] != next || sp[1] <= sp[0] {
				t.Fatalf("n=%d k=%d: bad span %v in %v", n, k, sp, spans)
			}
			next = sp[1]
		}
		if next != n {
			t.Fatalf("n=%d k=%d: spans %v do not cover %d files", n, k, spans, n)
		}
	}
}

// TestInferShardsRoundTrip checks every shard grammar is valid and the
// shard expansions concatenate back to the input corpus.
func TestInferShardsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const vocab = 25
	files := make([][]uint32, 7)
	for i := range files {
		n := 20 + rng.Intn(120)
		files[i] = make([]uint32, n)
		for j := range files[i] {
			files[i][j] = uint32(rng.Intn(vocab))
		}
	}
	for _, k := range []int{1, 2, 3, 4, 9} {
		shards, err := InferShards(files, vocab, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if k > 1 && len(shards) < 2 {
			t.Fatalf("k=%d: got %d shards", k, len(shards))
		}
		var got [][]uint32
		for s, g := range shards {
			if err := g.Validate(); err != nil {
				t.Fatalf("k=%d shard %d invalid: %v", k, s, err)
			}
			got = append(got, g.ExpandFiles()...)
		}
		if !reflect.DeepEqual(got, files) {
			t.Fatalf("k=%d: sharded expansion differs from input", k)
		}
		// The merged view must expand identically too.
		merged, err := cfg.ConcatShards(shards)
		if err != nil {
			t.Fatalf("k=%d: concat: %v", k, err)
		}
		if !reflect.DeepEqual(merged.ExpandFiles(), files) {
			t.Fatalf("k=%d: merged expansion differs from input", k)
		}
	}
}

// TestInferShardsSharedRoundTrip checks the dedup path: the materialized
// shard grammars expand to exactly the same corpus as the independent
// builds, the unified form is structurally valid, and the dedup accounting
// is consistent.
func TestInferShardsSharedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const vocab = 25
	files := make([][]uint32, 9)
	for i := range files {
		n := 20 + rng.Intn(150)
		files[i] = make([]uint32, n)
		for j := range files[i] {
			files[i][j] = uint32(rng.Intn(vocab))
		}
	}
	files[4] = nil // zero-weight file inside the corpus
	for _, k := range []int{1, 2, 3, 4, 20} {
		sb, err := InferShardsShared(files, vocab, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := sb.Set.Validate(); err != nil {
			t.Fatalf("k=%d: unified set invalid: %v", k, err)
		}
		if len(sb.Shards) != sb.Set.NumShards() || len(sb.Novel) != len(sb.Shards) {
			t.Fatalf("k=%d: inconsistent shard counts", k)
		}
		var got [][]uint32
		for s, g := range sb.Shards {
			if err := g.Validate(); err != nil {
				t.Fatalf("k=%d shard %d invalid: %v", k, s, err)
			}
			got = append(got, g.ExpandFiles()...)
		}
		if !reflect.DeepEqual(got, files) {
			t.Fatalf("k=%d: dedup-path expansion differs from input", k)
		}
		// Unification only removes redundancy; it never grows the form.
		if sb.Set.SymbolCount() > sb.RawSymbols {
			t.Fatalf("k=%d: unified %d symbols > raw %d", k, sb.Set.SymbolCount(), sb.RawSymbols)
		}
		novel := 0
		for _, n := range sb.Novel {
			novel += n
		}
		if novel != sb.Distinct {
			t.Fatalf("k=%d: novel counts sum to %d, dictionary holds %d", k, novel, sb.Distinct)
		}
	}
}

// TestInferShardsSharedDegenerate covers the k<=1 and tiny-corpus paths.
func TestInferShardsSharedDegenerate(t *testing.T) {
	sb, err := InferShardsShared(nil, 0, 3)
	if err != nil {
		t.Fatalf("empty corpus: %v", err)
	}
	if len(sb.Shards) != 1 || sb.Shards[0].NumFiles != 0 {
		t.Fatalf("empty corpus: got %d shards, %d files", len(sb.Shards), sb.Shards[0].NumFiles)
	}
	files := [][]uint32{{0, 1, 0, 1, 2}}
	sb, err = InferShardsShared(files, 3, 0)
	if err != nil {
		t.Fatalf("k=0: %v", err)
	}
	if len(sb.Shards) != 1 {
		t.Fatalf("k=0: got %d shards, want 1", len(sb.Shards))
	}
	if got := sb.Shards[0].ExpandFiles(); !reflect.DeepEqual(got, files) {
		t.Fatalf("k=0: expansion %v, want %v", got, files)
	}
}
