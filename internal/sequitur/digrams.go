package sequitur

// digramTable is the digram index: packed digram key -> first occurrence
// (left node).  It is an open-addressing hash table with linear probing and
// backward-shift deletion, replacing a Go map on the hottest path of
// inference.  The index is only ever used for point lookups, insertions,
// and deletions — never iterated — so the table is observationally
// identical to the map it replaces.
type digramTable struct {
	keys  []uint64
	vals  []*node
	mask  uint64
	shift uint
	n     int
}

const digramTableMinSize = 1 << 10

func newDigramTable() *digramTable {
	t := &digramTable{}
	t.init(digramTableMinSize)
	return t
}

func (t *digramTable) init(size int) {
	t.keys = make([]uint64, size)
	t.vals = make([]*node, size)
	t.mask = uint64(size - 1)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
	t.n = 0
}

// home is the key's preferred slot (Fibonacci hashing).
func (t *digramTable) home(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> t.shift
}

// put indexes v under k, replacing any existing entry.  The table grows at
// 50% load: linear probing degrades quickly past that, and lookup is the
// hot operation here.
func (t *digramTable) put(k uint64, v *node) {
	if t.n >= len(t.vals)/2 {
		t.grow()
	}
	i := t.home(k)
	for t.vals[i] != nil {
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.vals[i] = v
	t.n++
}

// getOrPut returns the node indexed under k; when absent it indexes v
// instead and returns nil.  A single probe pass serves both outcomes.
func (t *digramTable) getOrPut(k uint64, v *node) *node {
	if t.n >= len(t.vals)/2 {
		t.grow()
	}
	i := t.home(k)
	for t.vals[i] != nil {
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.vals[i] = v
	t.n++
	return nil
}

// delIf removes the entry for k only when it indexes v, compacting the probe
// cluster so no tombstones accumulate.
func (t *digramTable) delIf(k uint64, v *node) {
	i := t.home(k)
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			if t.vals[i] != v {
				return
			}
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	// Backward-shift: pull later cluster members into the hole whenever
	// their home position permits it.
	for {
		t.vals[i] = nil
		j := i
		for {
			j = (j + 1) & t.mask
			if t.vals[j] == nil {
				return
			}
			h := t.home(t.keys[j])
			if (i-h)&t.mask < (j-h)&t.mask {
				t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
				i = j
				break
			}
		}
	}
}

func (t *digramTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldVals) * 2)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := t.home(k)
		for t.vals[j] != nil {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = v
		t.n++
	}
}
