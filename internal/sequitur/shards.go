package sequitur

import (
	"fmt"
	"sync"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

// Sharded inference: the file separators that already isolate documents in
// a single grammar (rules never span file boundaries) make whole files the
// natural shard boundary, so a corpus can be split into K contiguous file
// spans and compressed into K fully independent grammars concurrently.
// Cross-shard redundancy is deliberately given up — each shard only
// deduplicates within itself — which is the compression-ratio cost a
// sharded engine trades for parallel build and query.

// PartitionFiles splits n files into at most k contiguous spans, balanced
// by weight (each span closes once the running total crosses its share of
// the remaining weight).  Every span is non-empty; fewer than k spans are
// returned when n < k.  Spans are [start, end) file-index pairs.
func PartitionFiles(weights []int64, k int) [][2]int {
	n := len(weights)
	if k > n {
		k = n
	}
	if k <= 1 {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	spans := make([][2]int, 0, k)
	start, acc := 0, int64(0)
	for i, w := range weights {
		acc += w
		remainingShards := k - len(spans)
		// Close the span when it reaches an equal share of what is left,
		// but never so late that the remaining files cannot fill the
		// remaining shards one file each.
		mustClose := n-i-1 <= remainingShards-1
		share := total / int64(remainingShards)
		if remainingShards > 1 && (mustClose || acc >= share) {
			spans = append(spans, [2]int{start, i + 1})
			start = i + 1
			total -= acc
			acc = 0
		}
	}
	if start < n {
		spans = append(spans, [2]int{start, n})
	}
	return spans
}

// InferShards partitions the corpus into k contiguous file spans balanced
// by token count and infers one independent grammar per span, concurrently.
// shards[s] covers global files [spans[s][0], spans[s][1]); fewer than k
// shards are returned when the corpus has fewer than k files.
func InferShards(tokens [][]uint32, numWords uint32, k int) ([]*cfg.Grammar, error) {
	if k <= 1 || len(tokens) <= 1 {
		g, err := Infer(tokens, numWords)
		if err != nil {
			return nil, err
		}
		return []*cfg.Grammar{g}, nil
	}
	weights := make([]int64, len(tokens))
	for i, f := range tokens {
		weights[i] = int64(len(f)) + 1 // +1 keeps empty files from collapsing spans
	}
	spans := PartitionFiles(weights, k)
	shards := make([]*cfg.Grammar, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for s, span := range spans {
		wg.Add(1)
		go func(s int, span [2]int) {
			defer wg.Done()
			shards[s], errs[s] = Infer(tokens[span[0]:span[1]], numWords)
		}(s, span)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return shards, nil
}
