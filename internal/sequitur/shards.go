package sequitur

import (
	"fmt"
	"sync"

	"github.com/text-analytics/ntadoc/internal/cfg"
)

// Sharded inference: the file separators that already isolate documents in
// a single grammar (rules never span file boundaries) make whole files the
// natural shard boundary, so a corpus can be split into K contiguous file
// spans and compressed into K fully independent grammars concurrently.
// Cross-shard redundancy is deliberately given up — each shard only
// deduplicates within itself — which is the compression-ratio cost a
// sharded engine trades for parallel build and query.

// PartitionFiles splits n files into at most k contiguous spans, balanced
// by weight (each span closes once the running total crosses its share of
// the remaining weight).  Every span is non-empty; fewer than k spans are
// returned when n < k (including k <= 0, which degenerates to one span).
// When the remaining weight is zero — all-zero weights, or one heavy file
// followed by empty ones — the remaining files are split evenly by count,
// so zero-weight files never collapse into one lopsided tail span.  Spans
// are [start, end) file-index pairs.
func PartitionFiles(weights []int64, k int) [][2]int {
	n := len(weights)
	if k > n {
		k = n
	}
	if k <= 1 {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	spans := make([][2]int, 0, k)
	start, acc := 0, int64(0)
	for i, w := range weights {
		acc += w
		remainingShards := k - len(spans)
		if remainingShards <= 1 {
			break
		}
		// Close the span when it reaches an equal share of what is left,
		// but never so late that the remaining files cannot fill the
		// remaining shards one file each.
		mustClose := n-i-1 <= remainingShards-1
		var full bool
		if total > 0 {
			full = acc >= total/int64(remainingShards)
		} else {
			// No weight left to balance: fall back to an even split of the
			// remaining files by count (ceiling division keeps every later
			// span fillable).
			remFiles := n - start
			full = i+1-start >= (remFiles+remainingShards-1)/remainingShards
		}
		if mustClose || full {
			spans = append(spans, [2]int{start, i + 1})
			start = i + 1
			total -= acc
			acc = 0
		}
	}
	if start < n {
		spans = append(spans, [2]int{start, n})
	}
	return spans
}

// InferShards partitions the corpus into k contiguous file spans balanced
// by token count and infers one independent grammar per span, concurrently.
// shards[s] covers global files [spans[s][0], spans[s][1]); fewer than k
// shards are returned when the corpus has fewer than k files.
func InferShards(tokens [][]uint32, numWords uint32, k int) ([]*cfg.Grammar, error) {
	if k <= 1 || len(tokens) <= 1 {
		g, err := Infer(tokens, numWords)
		if err != nil {
			return nil, err
		}
		return []*cfg.Grammar{g}, nil
	}
	weights := make([]int64, len(tokens))
	for i, f := range tokens {
		weights[i] = int64(len(f)) + 1 // +1 keeps empty files from collapsing spans
	}
	spans := PartitionFiles(weights, k)
	shards := make([]*cfg.Grammar, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for s, span := range spans {
		wg.Add(1)
		go func(s int, span [2]int) {
			defer wg.Done()
			shards[s], errs[s] = Infer(tokens[span[0]:span[1]], numWords)
		}(s, span)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return shards, nil
}

// ShardBuild is the result of InferShardsShared: the unified shard set, the
// per-shard grammars materialized from it (what engines build from), and
// the dedup accounting the shard-scaling experiment reports.
type ShardBuild struct {
	// Set is the unified form: one shared rule table plus per-shard roots.
	Set *cfg.SharedSet
	// Shards are the per-shard grammars rewritten against the shared
	// table: each is the reachable closure of its root, so a shard engine
	// remains a self-contained persistence domain.
	Shards []*cfg.Grammar
	// RawSymbols is the total grammar size before unification — what the
	// independent builds produced, growing with K.
	RawSymbols int64
	// Distinct is the shared dictionary size: how many distinct sequences
	// the shard builders interned between them.
	Distinct int
	// Novel[s] counts the sequences shard s interned first — its own
	// contribution to the shared dictionary; the rest of its rules were
	// already discovered by other shards.
	Novel []int
}

// InferShardsShared is InferShards plus the cross-shard deduplication
// layer: shard builders run concurrently and consult one shared interning
// dictionary as they finish (identical terminal/digram sequences map to one
// global sequence ID), then the post-build unification pass rewrites the
// shard grammars against a single shared rule table.  The materialized
// shard grammars expand to exactly the same files as InferShards', so
// analytics over them are bit-identical — only the structure is shared.
func InferShardsShared(tokens [][]uint32, numWords uint32, k int) (*ShardBuild, error) {
	if k < 1 {
		k = 1
	}
	weights := make([]int64, len(tokens))
	for i, f := range tokens {
		weights[i] = int64(len(f)) + 1 // +1 keeps empty files from collapsing spans
	}
	spans := PartitionFiles(weights, k)
	if len(spans) == 0 {
		spans = [][2]int{{0, 0}} // empty corpus: one empty shard
	}
	shards := make([]*cfg.Grammar, len(spans))
	fps := make([][]cfg.Fingerprint, len(spans))
	novel := make([]int, len(spans))
	errs := make([]error, len(spans))
	interner := cfg.NewInterner()
	var wg sync.WaitGroup
	for s, span := range spans {
		wg.Add(1)
		go func(s int, span [2]int) {
			defer wg.Done()
			g, err := Infer(tokens[span[0]:span[1]], numWords)
			if err != nil {
				errs[s] = err
				return
			}
			f, err := cfg.FingerprintRules(g)
			if err != nil {
				errs[s] = err
				return
			}
			// Consult the shared dictionary while sibling builders are
			// still running: sequences another shard already discovered
			// resolve to its ID, the rest are interned as this shard's
			// contribution.
			novel[s] = interner.InternRules(f)
			shards[s], fps[s] = g, f
		}(s, span)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	var raw int64
	for _, g := range shards {
		for _, body := range g.Rules {
			raw += int64(len(body))
		}
	}
	set, err := cfg.UnifyShards(shards, fps)
	if err != nil {
		return nil, fmt.Errorf("sequitur: unify shards: %w", err)
	}
	mats, err := set.Materialize()
	if err != nil {
		return nil, fmt.Errorf("sequitur: materialize shards: %w", err)
	}
	return &ShardBuild{
		Set:        set,
		Shards:     mats,
		RawSymbols: raw,
		Distinct:   interner.Len(),
		Novel:      novel,
	}, nil
}
