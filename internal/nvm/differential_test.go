package nvm

import (
	"bytes"
	"math/rand"
	"testing"
)

// differentialConfigs covers every charging regime: cached and uncached,
// byte-granule and block-granule, seek and no-seek, plus an odd (non
// power-of-two) granule to stress boundary arithmetic.
func differentialConfigs() []struct {
	name  string
	kind  Kind
	model CostModel
} {
	nvmNoCache := ModelFor(KindNVM)
	nvmNoCache.CacheBytes = 0
	hddTiny := ModelFor(KindHDD)
	hddTiny.CacheBytes = hddTiny.Granule * 8 // 8 lines: constant eviction
	hddTiny.CacheWays = 2
	odd := ModelFor(KindNVM)
	odd.Granule = 192
	odd.CacheBytes = 192 * 64
	return []struct {
		name  string
		kind  Kind
		model CostModel
	}{
		{"nvm-default", KindNVM, ModelFor(KindNVM)},
		{"nvm-no-cache", KindNVM, nvmNoCache},
		{"dram-default", KindDRAM, ModelFor(KindDRAM)},
		{"ssd-default", KindSSD, ModelFor(KindSSD)},
		{"hdd-default", KindHDD, ModelFor(KindHDD)},
		{"hdd-tiny-cache", KindHDD, hddTiny},
		{"nvm-odd-granule", KindNVM, odd},
	}
}

// applyRandomOp performs one randomly chosen accessor operation on a.  The
// rng must be at the same state for both devices so they see an identical
// schedule.
func applyRandomOp(t *testing.T, rng *rand.Rand, a Accessor, scratch []byte) {
	t.Helper()
	size := a.Size()
	off := rng.Int63n(size)
	maxN := size - off
	n := rng.Int63n(maxN) + 1
	if n > int64(len(scratch)) {
		n = int64(len(scratch))
	}
	switch rng.Intn(12) {
	case 0:
		a.ReadBytes(off, scratch[:n])
	case 1:
		rng.Read(scratch[:n])
		a.WriteBytes(off, scratch[:n])
	case 2:
		_ = a.ReadView(off, n)
	case 3: // repeated same-offset singles: exercises the one-granule memo
		off8 := rng.Int63n(size - 8)
		for i := 0; i < 4; i++ {
			_ = a.Uint64(off8)
			a.PutUint64(off8, rng.Uint64())
		}
	case 4: // alternating offsets: exercises the second-chance memo
		offA := rng.Int63n(size - 8)
		offB := rng.Int63n(size - 8)
		for i := 0; i < 4; i++ {
			_ = a.Uint64(offA)
			_ = a.Uint64(offB)
		}
	case 5:
		k := n / 8
		if k == 0 {
			k = 1
			off = 0
		}
		dst := make([]uint64, k)
		a.ReadU64s(off-off%8, dst)
	case 6:
		k := n / 4
		if k == 0 {
			k = 1
			off = 0
		}
		src := make([]uint32, k)
		for i := range src {
			src[i] = rng.Uint32()
		}
		a.WriteU32s(off-off%4, src)
	case 7:
		a.Fill(off, n, byte(rng.Intn(256)))
	case 8:
		k := n / 8
		if k > 0 {
			a.FillU64(off-off%8, k, rng.Uint64())
		}
	case 9:
		src := rng.Int63n(size - n + 1)
		dst := rng.Int63n(size - n + 1)
		a.CopyWithin(dst, src, n)
	case 10:
		_ = a.Byte(off)
	case 11:
		if err := a.Flush(off, n); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := a.Device().Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}

// TestChargeMatchesReference drives an identical random operation schedule
// through a normally-charging device and a reference-charging one
// (straight-line per-granule loop, no run batching, no memo) and requires
// bit-identical bytes, Stats, and modeled nanos after every operation.
// This is the tentpole invariant: the fast paths may only change wall-clock.
func TestChargeMatchesReference(t *testing.T) {
	const size = 1 << 16
	for _, cfg := range differentialConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			fast := NewWithModel(cfg.kind, size, cfg.model)
			ref := NewWithModel(cfg.kind, size, cfg.model)
			ref.refCharge = true
			defer fast.Discard()
			defer ref.Discard()

			accF := NewAccessor(fast, 0, size)
			accR := NewAccessor(ref, 0, size)
			rngF := rand.New(rand.NewSource(7))
			rngR := rand.New(rand.NewSource(7))
			scratchF := make([]byte, 4096)
			scratchR := make([]byte, 4096)
			for i := 0; i < 500; i++ {
				applyRandomOp(t, rngF, accF, scratchF)
				applyRandomOp(t, rngR, accR, scratchR)
				if fs, rs := fast.Stats(), ref.Stats(); fs != rs {
					t.Fatalf("op %d: stats diverged\nfast: %+v\nref:  %+v", i, fs, rs)
				}
				if !bytes.Equal(fast.buf, ref.buf) {
					t.Fatalf("op %d: volatile images diverged", i)
				}
			}
		})
	}
}

// TestBatchOpsChargeIdenticalToScalarEquivalents checks each batch
// operation against the scalar formulation its documentation promises
// charge-identity with, on two identically configured devices.
func TestBatchOpsChargeIdenticalToScalarEquivalents(t *testing.T) {
	const size = 1 << 15
	for _, cfg := range differentialConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			devA := NewWithModel(cfg.kind, size, cfg.model)
			devB := NewWithModel(cfg.kind, size, cfg.model)
			defer devA.Discard()
			defer devB.Discard()
			a := NewAccessor(devA, 0, size)
			b := NewAccessor(devB, 0, size)

			rng := rand.New(rand.NewSource(11))
			check := func(step string) {
				t.Helper()
				if sa, sb := devA.Stats(), devB.Stats(); sa != sb {
					t.Fatalf("%s: stats diverged\nbatch:  %+v\nscalar: %+v", step, sa, sb)
				}
				if !bytes.Equal(devA.buf, devB.buf) {
					t.Fatalf("%s: volatile images diverged", step)
				}
			}

			for i := 0; i < 100; i++ {
				// Offsets deliberately straddle granule boundaries.
				off := rng.Int63n(size - 4096)
				k := rng.Int63n(256) + 1

				u64s := make([]uint64, k)
				for j := range u64s {
					u64s[j] = rng.Uint64()
				}
				raw := make([]byte, k*8)
				a.WriteU64s(off, u64s)
				for j, v := range u64s {
					putLE64(raw[j*8:], v)
				}
				b.WriteBytes(off, raw)
				check("WriteU64s vs WriteBytes")

				dst := make([]uint64, k)
				a.ReadU64s(off, dst)
				b.ReadBytes(off, raw)
				check("ReadU64s vs ReadBytes")
				for j := range dst {
					if dst[j] != u64s[j] {
						t.Fatalf("ReadU64s[%d] = %d, want %d", j, dst[j], u64s[j])
					}
				}

				u32s := make([]uint32, k)
				for j := range u32s {
					u32s[j] = rng.Uint32()
				}
				raw32 := make([]byte, k*4)
				a.WriteU32s(off, u32s)
				for j, v := range u32s {
					putLE32(raw32[j*4:], v)
				}
				b.WriteBytes(off, raw32)
				check("WriteU32s vs WriteBytes")

				dst32 := make([]uint32, k)
				a.ReadU32s(off, dst32)
				b.ReadBytes(off, raw32)
				check("ReadU32s vs ReadBytes")

				fv := byte(rng.Intn(256))
				a.Fill(off, k*8, fv)
				fill := make([]byte, k*8)
				for j := range fill {
					fill[j] = fv
				}
				b.WriteBytes(off, fill)
				check("Fill vs WriteBytes")

				pv := rng.Uint64()
				a.FillU64(off, k, pv)
				for j := int64(0); j < k; j++ {
					putLE64(fill[j*8:], pv)
				}
				b.WriteBytes(off, fill)
				check("FillU64 vs WriteBytes")

				src := rng.Int63n(size - k*8)
				a.CopyWithin(off, src, k*8)
				b.ReadBytes(src, raw)
				b.WriteBytes(off, raw)
				check("CopyWithin vs ReadBytes+WriteBytes")

				_ = a.ReadView(off, k*8)
				b.ReadBytes(off, raw)
				check("ReadView vs ReadBytes")
			}
		})
	}
}

// TestMemoSameSetAlternation alternates single-granule accesses between two
// granules that share a cache set, where the second-chance memo must NOT
// engage (each access displaces the other from MRU), and requires the
// result to match the reference loop.
func TestMemoSameSetAlternation(t *testing.T) {
	model := ModelFor(KindNVM)
	model.CacheBytes = model.Granule * 32 // 4 sets of 8 ways
	model.CacheWays = 8
	const size = 1 << 16

	fast := NewWithModel(KindNVM, size, model)
	ref := NewWithModel(KindNVM, size, model)
	ref.refCharge = true
	defer fast.Discard()
	defer ref.Discard()
	af := NewAccessor(fast, 0, size)
	ar := NewAccessor(ref, 0, size)

	nsets := (model.CacheBytes / model.Granule) / int64(model.CacheWays)
	sameSetStride := nsets * model.Granule
	diffSetStride := model.Granule
	for _, stride := range []int64{sameSetStride, diffSetStride} {
		for i := 0; i < 64; i++ {
			off := int64(i%2) * stride
			_ = af.Uint64(off)
			_ = ar.Uint64(off)
			if fs, rs := fast.Stats(), ref.Stats(); fs != rs {
				t.Fatalf("stride %d, access %d: stats diverged\nfast: %+v\nref:  %+v",
					stride, i, fs, rs)
			}
		}
	}
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putLE32(b []byte, v uint32) {
	_ = b[3]
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
