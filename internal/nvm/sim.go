package nvm

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// SimDevice is the concrete simulated device behind every Kind.  It keeps the
// device contents in an ordinary byte buffer (the "volatile image"), charges
// modeled cost per access through a simulated device cache, and — for
// persistent kinds — maintains a durable image that is only updated by
// Flush/Drain.  Discarding the volatile image and reloading the durable one
// (Crash) reproduces power-failure semantics exactly: writes that were not
// flushed are lost.
type SimDevice struct {
	kind  Kind
	model CostModel
	cache *deviceCache
	buf   []byte // volatile image

	mu      sync.Mutex // guards durable store and closed flag
	store   durableStore
	closed  bool
	lastBlk atomic.Int64 // previously accessed block, for HDD seek modeling

	// failAfterFlushes, when >= 0, makes flush number n (0-based, counted
	// from arming) and all later ones fail with ErrFailPoint.  Used by
	// crash-injection tests.
	failAfterFlushes atomic.Int64

	counters
}

var _ Device = (*SimDevice)(nil)

// durableStore is where flushed data survives a crash.
type durableStore interface {
	persist(off int64, src []byte) error
	sync() error
	load(dst []byte) error
	close() error
}

// memStore keeps the durable image in a shadow buffer: fast, used by tests
// and benchmarks.
type memStore struct{ img []byte }

func (s *memStore) persist(off int64, src []byte) error {
	copy(s.img[off:], src)
	return nil
}
func (s *memStore) sync() error           { return nil }
func (s *memStore) load(dst []byte) error { copy(dst, s.img); return nil }
func (s *memStore) close() error          { return nil }

// fileStore keeps the durable image in an ordinary file, giving real
// cross-process durability for the CLI tools.
type fileStore struct{ f *os.File }

func (s *fileStore) persist(off int64, src []byte) error {
	_, err := s.f.WriteAt(src, off)
	return err
}
func (s *fileStore) sync() error { return s.f.Sync() }
func (s *fileStore) load(dst []byte) error {
	_, err := s.f.ReadAt(dst, 0)
	return err
}
func (s *fileStore) close() error { return s.f.Close() }

// New creates an in-memory simulated device of the given kind and size using
// the kind's default cost model.
func New(kind Kind, size int64) *SimDevice {
	return NewWithModel(kind, size, ModelFor(kind))
}

// NewWithModel creates an in-memory simulated device with an explicit cost
// model (used by ablations and by block devices under a page-cache budget).
func NewWithModel(kind Kind, size int64, model CostModel) *SimDevice {
	d := &SimDevice{
		kind:  kind,
		model: model,
		buf:   make([]byte, size),
	}
	if model.CacheBytes > 0 {
		d.cache = newDeviceCache(model.CacheBytes, model.Granule, model.CacheWays)
	}
	if kind.Persistent() {
		d.store = &memStore{img: make([]byte, size)}
	}
	d.failAfterFlushes.Store(-1)
	d.lastBlk.Store(-1)
	return d
}

// Open creates (or reopens) a file-backed simulated device at path.  If the
// file exists its contents become the durable and volatile images; otherwise
// it is created zero-filled at the given size.  DRAM kind rejects file
// backing, since DRAM does not persist.
func Open(kind Kind, path string, size int64) (*SimDevice, error) {
	if kind == KindDRAM {
		return nil, fmt.Errorf("nvm: DRAM device cannot be file-backed")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: stat %s: %w", path, err)
	}
	if fi.Size() == 0 {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("nvm: size %s: %w", path, err)
		}
	} else {
		size = fi.Size()
	}
	d := NewWithModel(kind, size, ModelFor(kind))
	d.store = &fileStore{f: f}
	if err := d.store.load(d.buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: load %s: %w", path, err)
	}
	return d, nil
}

// Kind implements Device.
func (d *SimDevice) Kind() Kind { return d.kind }

// Size implements Device.
func (d *SimDevice) Size() int64 { return int64(len(d.buf)) }

// Model returns the device's cost model.
func (d *SimDevice) Model() CostModel { return d.model }

// Stats implements Device.
func (d *SimDevice) Stats() Stats { return d.counters.snapshot() }

// ResetStats implements Device.
func (d *SimDevice) ResetStats() { d.counters.reset() }

// charge walks the granules of [off, off+n) through the device cache and
// accumulates modeled cost.  missNanos is the per-granule media cost for
// this access direction.
func (d *SimDevice) charge(off, n, missNanos int64, isWrite bool) {
	g := d.model.Granule
	first := off / g
	last := (off + n - 1) / g
	var cost int64
	for gr := first; gr <= last; gr++ {
		hit := false
		if d.cache != nil {
			hit = d.cache.access(gr)
		}
		if hit {
			cost += d.model.HitNanos
			d.cacheHits.Add(1)
		} else {
			cost += missNanos
			d.cacheMisses.Add(1)
			if d.model.SeekNanos > 0 && !isWrite {
				// Block devices pay a seek when the read stream is
				// broken.  Write misses never seek: the page cache
				// installs fresh pages without touching the device, and
				// write-back (charged at Flush) is elevator-scheduled.
				if prev := d.lastBlk.Swap(gr); prev != gr-1 && prev != gr {
					cost += d.model.SeekNanos
					d.seeks.Add(1)
				}
			}
			if isWrite {
				d.granuleWrites.Add(1)
			} else {
				d.granuleReads.Add(1)
			}
		}
		if d.model.SeekNanos > 0 && (hit || isWrite) {
			d.lastBlk.Store(gr)
		}
	}
	d.modeledNanos.Add(cost)
}

// ReadAt implements Device.
func (d *SimDevice) ReadAt(p []byte, off int64) (int, error) {
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	d.charge(off, int64(len(p)), d.model.ReadNanos, false)
	d.reads.Add(1)
	d.bytesRead.Add(int64(len(p)))
	copy(p, d.buf[off:])
	return len(p), nil
}

// WriteAt implements Device.
func (d *SimDevice) WriteAt(p []byte, off int64) (int, error) {
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	d.charge(off, int64(len(p)), d.model.WriteNanos, true)
	d.writes.Add(1)
	d.bytesWritten.Add(int64(len(p)))
	copy(d.buf[off:], p)
	return len(p), nil
}

// Flush implements Device: pushes [off, off+n) to the durable image.
func (d *SimDevice) Flush(off, n int64) error {
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	d.flushes.Add(1)
	d.flushedBytes.Add(n)
	d.modeledNanos.Add(granules(off, n, d.model.Granule) * d.model.FlushNanos)
	if d.store == nil {
		return nil // volatile medium: nothing to persist
	}
	if fp := d.failAfterFlushes.Load(); fp >= 0 {
		if d.failAfterFlushes.Add(-1) < 0 {
			return ErrFailPoint
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.store.persist(off, d.buf[off:off+n])
}

// Drain implements Device: makes all completed flushes durable.
func (d *SimDevice) Drain() error {
	d.drains.Add(1)
	d.modeledNanos.Add(d.model.DrainNanos)
	if d.store == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.store.sync()
}

// Crash simulates a power failure: the volatile image is discarded and
// reloaded from the durable image.  Unflushed writes vanish.  The device
// stays usable; stats and cache are reset.  Volatile (DRAM) devices come
// back zero-filled.
func (d *SimDevice) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for i := range d.buf {
		d.buf[i] = 0
	}
	if d.store != nil {
		if err := d.store.load(d.buf); err != nil {
			return err
		}
	}
	if d.cache != nil {
		d.cache.reset()
	}
	d.counters.reset()
	d.lastBlk.Store(-1)
	return nil
}

// FailAfterFlushes arms a fail point: the next n flushes succeed, then every
// flush fails with ErrFailPoint until DisarmFailPoint.  Crash-injection
// tests use this to interrupt persistence mid-phase.
func (d *SimDevice) FailAfterFlushes(n int64) { d.failAfterFlushes.Store(n) }

// DisarmFailPoint clears any armed fail point.
func (d *SimDevice) DisarmFailPoint() { d.failAfterFlushes.Store(-1) }

// Close implements Device.
func (d *SimDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.store != nil {
		return d.store.close()
	}
	return nil
}

func (d *SimDevice) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > int64(len(d.buf)) {
		return fmt.Errorf("%w: off=%d n=%d size=%d", ErrOutOfRange, off, n, len(d.buf))
	}
	return nil
}
