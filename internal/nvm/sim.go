package nvm

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// SimDevice is the concrete simulated device behind every Kind.  It keeps the
// device contents in an ordinary byte buffer (the "volatile image"), charges
// modeled cost per access through a simulated device cache, and — for
// persistent kinds — maintains a durable image behind a *pending set*:
//
//	volatile image --Flush--> pending set --Drain--> durable image
//
// Flush captures the flushed bytes into the pending set (the clwb analogue:
// write-back is initiated but not ordered); Drain retires the whole pending
// set into the durable image (the sfence analogue).  A plain Crash discards
// both the volatile image and the pending set — only drained data survives —
// while CrashAt persists a seeded arbitrary per-granule subset of the pending
// set first, modeling flushed-but-unfenced stores that reach media in any
// order.  Crash then reloads the volatile image from the durable one,
// reproducing power-failure semantics exactly.
type SimDevice struct {
	kind  Kind
	model CostModel
	cache *deviceCache
	buf   []byte // volatile image

	// dirtyHi is the high-water mark of volatile-image bytes that may be
	// nonzero.  It lets Discard hand the buffer back to the image pool with
	// a bound on how much of it needs re-zeroing before reuse.
	dirtyHi int64

	mu      sync.Mutex   // guards durable store and closed flag
	store   durableStore // guarded by mu
	closed  bool         // guarded by mu
	lastBlk int64        // previously accessed block, for HDD seek modeling

	// shared switches the device into shared mode (see Share): every access
	// charge and counter update is serialized behind opMu so concurrent
	// read-only query sessions can use one device.  Off by default, keeping
	// the single-owner fast paths free of lock traffic.  When both opMu and
	// mu are taken, opMu is taken first.
	shared atomic.Bool
	opMu   sync.Mutex

	// lastGranule memoizes the most recently charged granule.  A granule
	// that was just accessed sits at the MRU position of its cache set, so a
	// single-granule access to the same granule is a guaranteed hit whose
	// MRU move is a no-op: the memo lets that case skip the cache tag scan
	// entirely without changing any modeled outcome.  Only meaningful when
	// cache != nil; -1 when unknown.
	lastGranule int64

	// lastGranule2 extends the memo one step: the granule charged just
	// before lastGranule, recorded only when it maps to a *different* cache
	// set.  Being in another set, lastGranule's later insertion cannot have
	// displaced it, so it is still the MRU line of its own set and a
	// single-granule access to it is a guaranteed hit whose MRU move is a
	// no-op.  This catches the key/value alternation of hash-table scans.
	// -1 when unknown.
	lastGranule2 int64

	// refCharge switches charging to the straight-line per-granule reference
	// loop.  The differential test uses it to prove the chargeRun/memo fast
	// paths are modeled-cost-identical.
	refCharge bool

	// pending is the set of flushed-but-not-drained ranges, in flush order.
	// A range's data is captured lazily: nil means the volatile image still
	// holds the bytes as they were at flush time, and a later overlapping
	// store materializes the snapshot first (see snapshotPending).
	// pendingLo/pendingHi bound the set so the hot write path can reject
	// non-overlapping stores with two compares.
	pending   []pendingRange
	pendingLo int64
	pendingHi int64

	// Fail points: when >= 0, operation number n (0-based, counted from
	// arming) and all later ones fail with ErrFailPoint.  They fire on
	// volatile (store == nil) devices too, so DRAM ablation cells exercise
	// the same error paths.  failFromEvent instead counts the combined
	// flush/drain sequence from device creation, for crash-point replays.
	failAfterFlushes int64
	failAfterDrains  int64
	failAfterWrites  int64
	failFromEvent    int64

	// persistEvents numbers every Flush and Drain call over the device's
	// lifetime.  Never reset (not part of Stats): crash-exploration
	// harnesses use it to name a crash point as "after persistence event i"
	// consistently across a golden run and its replays.
	persistEvents int64

	// shipper, when non-nil, receives every successfully drained commit
	// batch (see SetShipper).  Guarded by mu.
	shipper Shipper

	counters
}

// ShipRange is one durable-image delta within a shipped commit batch: the
// bytes the primary just made durable at Off.  Data aliases internal device
// memory and is valid only for the duration of the ShipCommit call; a
// shipper that retains a batch must copy it.
type ShipRange struct {
	Off  int64
	Data []byte
}

// Shipper receives the primary's drained persistence stream.  Drain invokes
// ShipCommit after the whole pending set has been persisted and synced, with
// the retired ranges in flush order — so the batch is exactly the delta that
// took the durable image from one commit boundary to the next, and applying
// shipped batches in order reproduces the primary's durable image byte for
// byte.  An error from ShipCommit propagates out of Drain *after* local
// durability is complete; shippers that must not fail the primary (follower
// replication) swallow downstream errors and return nil.  The shipper must
// not call back into the shipping device.
type Shipper interface {
	ShipCommit(batch []ShipRange) error
}

// SetShipper attaches (or, with nil, detaches) the device's commit shipper.
// Volatile devices never ship — they have no durable image to mirror — and
// empty drains are skipped.
func (d *SimDevice) SetShipper(s Shipper) {
	d.mu.Lock()
	d.shipper = s
	d.mu.Unlock()
}

// pendingRange is one flushed-but-not-drained byte range.  data == nil means
// the snapshot is still implicit in the volatile image.
type pendingRange struct {
	off, n int64
	data   []byte
}

var _ Device = (*SimDevice)(nil)

// durableStore is where flushed data survives a crash.
type durableStore interface {
	persist(off int64, src []byte) error
	sync() error
	load(dst []byte) error
	close() error
}

// memStore keeps the durable image in a shadow buffer: fast, used by tests
// and benchmarks.
type memStore struct {
	img []byte
	hi  int64 // high-water mark of persisted bytes; [hi, len) is still zero
}

func (s *memStore) persist(off int64, src []byte) error {
	copy(s.img[off:], src)
	if end := off + int64(len(src)); end > s.hi {
		s.hi = end
	}
	return nil
}
func (s *memStore) sync() error           { return nil }
func (s *memStore) load(dst []byte) error { copy(dst, s.img); return nil }
func (s *memStore) close() error          { return nil }

// fileStore keeps the durable image in an ordinary file, giving real
// cross-process durability for the CLI tools.
type fileStore struct{ f *os.File }

func (s *fileStore) persist(off int64, src []byte) error {
	_, err := s.f.WriteAt(src, off)
	return err
}
func (s *fileStore) sync() error { return s.f.Sync() }
func (s *fileStore) load(dst []byte) error {
	_, err := s.f.ReadAt(dst, 0)
	return err
}
func (s *fileStore) close() error { return s.f.Close() }

// New creates an in-memory simulated device of the given kind and size using
// the kind's default cost model.
func New(kind Kind, size int64) *SimDevice {
	return NewWithModel(kind, size, ModelFor(kind))
}

// NewWithModel creates an in-memory simulated device with an explicit cost
// model (used by ablations and by block devices under a page-cache budget).
func NewWithModel(kind Kind, size int64, model CostModel) *SimDevice {
	d := &SimDevice{
		kind:  kind,
		model: model,
		buf:   getImage(size),
	}
	if model.CacheBytes > 0 {
		d.cache = newDeviceCache(model.CacheBytes, model.Granule, model.CacheWays)
	}
	if kind.Persistent() {
		d.store = &memStore{img: getImage(size)}
	}
	d.failAfterFlushes = -1
	d.failAfterDrains = -1
	d.failAfterWrites = -1
	d.failFromEvent = -1
	d.lastBlk = -1
	d.lastGranule = -1
	d.lastGranule2 = -1
	return d
}

// imagePool recycles device images across SimDevice lifetimes.  The
// experiment grid creates and drops hundreds of multi-megabyte devices;
// handing back their backing buffers keeps the allocator from faulting in
// (and the GC from scavenging) gigabytes of fresh pages.  Each returned
// buffer carries the high-water mark of its possibly-nonzero bytes, so
// re-zeroing on reuse touches only the prefix the previous owner actually
// dirtied; recycling stays invisible to device semantics.
var imagePool struct {
	mu   sync.Mutex
	bufs []pooledImage
}

type pooledImage struct {
	buf []byte
	hi  int64 // bytes [hi, cap) are known zero
}

const imagePoolSlots = 16

func getImage(size int64) []byte {
	imagePool.mu.Lock()
	best := -1
	for i, p := range imagePool.bufs {
		if int64(cap(p.buf)) >= size && (best < 0 || cap(p.buf) < cap(imagePool.bufs[best].buf)) {
			best = i
		}
	}
	var b []byte
	var hi int64
	if best >= 0 {
		b = imagePool.bufs[best].buf[:size]
		hi = imagePool.bufs[best].hi
		last := len(imagePool.bufs) - 1
		imagePool.bufs[best] = imagePool.bufs[last]
		imagePool.bufs = imagePool.bufs[:last]
	}
	imagePool.mu.Unlock()
	if b == nil {
		return make([]byte, size)
	}
	// Clear the whole dirty prefix — it can extend past size, since the
	// buffer's capacity may exceed what this device asked for, and the
	// zero-beyond-hi invariant must hold for the next recycling too.
	clear(b[:cap(b)][:min(hi, int64(cap(b)))])
	return b
}

func putImage(b []byte, hi int64) {
	if cap(b) == 0 {
		return
	}
	if hi > int64(len(b)) {
		hi = int64(len(b))
	}
	imagePool.mu.Lock()
	if len(imagePool.bufs) < imagePoolSlots {
		imagePool.bufs = append(imagePool.bufs, pooledImage{buf: b[:0], hi: hi})
	}
	imagePool.mu.Unlock()
}

// Open creates (or reopens) a file-backed simulated device at path.  If the
// file exists its contents become the durable and volatile images; otherwise
// it is created zero-filled at the given size.  DRAM kind rejects file
// backing, since DRAM does not persist.
func Open(kind Kind, path string, size int64) (*SimDevice, error) {
	if kind == KindDRAM {
		return nil, fmt.Errorf("nvm: DRAM device cannot be file-backed")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: stat %s: %w", path, err)
	}
	if fi.Size() == 0 {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("nvm: size %s: %w", path, err)
		}
	} else {
		size = fi.Size()
	}
	d := NewWithModel(kind, size, ModelFor(kind))
	d.store = &fileStore{f: f}
	if err := d.store.load(d.buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: load %s: %w", path, err)
	}
	d.dirtyHi = int64(len(d.buf))
	return d, nil
}

// Kind implements Device.
func (d *SimDevice) Kind() Kind { return d.kind }

// Size implements Device.
func (d *SimDevice) Size() int64 { return int64(len(d.buf)) }

// Model returns the device's cost model.
func (d *SimDevice) Model() CostModel { return d.model }

// Stats implements Device.
func (d *SimDevice) Stats() Stats {
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	return d.counters.snapshot()
}

// ResetStats implements Device.
func (d *SimDevice) ResetStats() {
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	d.counters.reset()
}

// Share switches the device into shared mode, permanently: access charging,
// counters, and cache-model state become mutex-protected so multiple
// goroutines may read the device concurrently.  Data races on the *contents*
// remain the callers' problem — shared mode is meant for concurrent readers
// over an image that is no longer being written (query sessions).  The
// modeled figures are unchanged; only host-side locking is added.
func (d *SimDevice) Share() { d.shared.Store(true) }

// charge walks the granules of [off, off+n) through the device cache and
// accumulates modeled cost.  missNanos is the per-granule media cost for
// this access direction.
//
// All paths below — the memo fast path, chargeRun, and chargeReference —
// produce bit-identical Stats and modeled nanos for the same access
// sequence; they differ only in host-side work (see the differential test).
func (d *SimDevice) charge(off, n, missNanos int64, isWrite bool) {
	first := off / d.model.Granule
	if d.lastGranule == first && (off+n-1)/d.model.Granule == first {
		// The granule was just accessed, so it sits at MRU: a guaranteed
		// hit whose MRU move is a no-op.  Skip the cache walk.  lastGranule
		// is only ever set by chargeRun on a cached device (first >= 0, and
		// reference-charging devices never run chargeRun), so matching it
		// implies cache != nil and !refCharge.  The function is kept this
		// small deliberately, so the memo path inlines into the accessors.
		d.modeledNanos += d.model.HitNanos
		d.cacheHits++
		if d.model.SeekNanos > 0 {
			d.lastBlk = first
		}
		return
	}
	d.charge2(off, n, first, missNanos, isWrite)
}

// charge2 is the second-chance memo: a single-granule access to the granule
// charged just before the most recent one.  By the lastGranule2 invariant it
// lives in a different cache set, so it is still that set's MRU line — a
// guaranteed hit, MRU move a no-op — and the two memo entries swap.
func (d *SimDevice) charge2(off, n, first, missNanos int64, isWrite bool) {
	if d.lastGranule2 == first && (off+n-1)/d.model.Granule == first {
		d.lastGranule2 = d.lastGranule
		d.lastGranule = first
		d.modeledNanos += d.model.HitNanos
		d.cacheHits++
		if d.model.SeekNanos > 0 {
			d.lastBlk = first
		}
		return
	}
	d.chargeFull(off, n, first, missNanos, isWrite)
}

// chargeFull is the non-memoized tail of charge.
func (d *SimDevice) chargeFull(off, n, first, missNanos int64, isWrite bool) {
	if d.refCharge {
		d.chargeReference(off, n, missNanos, isWrite)
		return
	}
	d.chargeRun(first, (off+n-1)/d.model.Granule, missNanos, isWrite)
}

// chargeRun charges the granule run [first, last], accumulating counters in
// locals and writing them back once for the whole run.
func (d *SimDevice) chargeRun(first, last, missNanos int64, isWrite bool) {
	var cost, hits, misses, gReads, gWrites, seeks int64
	seek := d.model.SeekNanos > 0
	var prev int64
	if seek {
		prev = d.lastBlk
	}
	for gr := first; gr <= last; gr++ {
		hit := false
		if d.cache != nil {
			hit = d.cache.access(gr)
		}
		if hit {
			cost += d.model.HitNanos
			hits++
		} else {
			cost += missNanos
			misses++
			if seek && !isWrite {
				// Block devices pay a seek when the read stream is
				// broken.  Write misses never seek: the page cache
				// installs fresh pages without touching the device, and
				// write-back (charged at Flush) is elevator-scheduled.
				if prev != gr-1 && prev != gr {
					cost += d.model.SeekNanos
					seeks++
				}
			}
			if isWrite {
				gWrites++
			} else {
				gReads++
			}
		}
		// After any access the stream is positioned at gr (hits and write
		// misses in the reference loop store it explicitly; read misses
		// leave it from the seek check above).
		prev = gr
	}
	if d.cache != nil {
		// Record the previous memo granule as the second-chance entry only
		// for single-granule charges into a different cache set; any other
		// shape may have displaced it from its set's MRU slot.
		if first == last && d.lastGranule >= 0 &&
			first%d.cache.nsets != d.lastGranule%d.cache.nsets {
			d.lastGranule2 = d.lastGranule
		} else {
			d.lastGranule2 = -1
		}
		d.lastGranule = last
	}
	if seek {
		d.lastBlk = prev
	}
	d.modeledNanos += cost
	d.cacheHits += hits
	d.cacheMisses += misses
	d.granuleReads += gReads
	d.granuleWrites += gWrites
	d.seeks += seeks
}

// chargeReference is the straight-line per-granule charging loop, kept as
// the behavioral reference for the differential test: chargeRun and the memo
// fast path must match it bit for bit.
func (d *SimDevice) chargeReference(off, n, missNanos int64, isWrite bool) {
	g := d.model.Granule
	first := off / g
	last := (off + n - 1) / g
	var cost int64
	for gr := first; gr <= last; gr++ {
		hit := false
		if d.cache != nil {
			hit = d.cache.access(gr)
		}
		if hit {
			cost += d.model.HitNanos
			d.cacheHits++
		} else {
			cost += missNanos
			d.cacheMisses++
			if d.model.SeekNanos > 0 && !isWrite {
				prev := d.lastBlk
				d.lastBlk = gr
				if prev != gr-1 && prev != gr {
					cost += d.model.SeekNanos
					d.seeks++
				}
			}
			if isWrite {
				d.granuleWrites++
			} else {
				d.granuleReads++
			}
		}
		if d.model.SeekNanos > 0 && (hit || isWrite) {
			d.lastBlk = gr
		}
	}
	d.modeledNanos += cost
}

// accessRead charges a read of [off, off+n) and returns the volatile-image
// window holding those bytes.  It is the Accessor fast path: bounds are the
// caller's responsibility (the accessor's region check subsumes the device
// range check), and the window aliases device memory — it is valid only
// until the next write and must not be mutated.  Charging and counters are
// identical to ReadAt.
func (d *SimDevice) accessRead(off, n int64) []byte {
	if n == 0 {
		return nil
	}
	if d.shared.Load() {
		d.opMu.Lock()
		d.charge(off, n, d.model.ReadNanos, false)
		d.reads++
		d.bytesRead += n
		d.opMu.Unlock()
		return d.buf[off : off+n]
	}
	d.charge(off, n, d.model.ReadNanos, false)
	d.reads++
	d.bytesRead += n
	return d.buf[off : off+n]
}

// accessWrite charges a write of [off, off+n) and returns the
// volatile-image window for the caller to fill.  Charging and counters are
// identical to WriteAt.
func (d *SimDevice) accessWrite(off, n int64) []byte {
	if n == 0 {
		return nil
	}
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	if len(d.pending) != 0 {
		d.snapshotPending(off, n)
	}
	d.charge(off, n, d.model.WriteNanos, true)
	d.writes++
	d.bytesWritten += n
	if off+n > d.dirtyHi {
		d.dirtyHi = off + n
	}
	return d.buf[off : off+n]
}

// ReadAt implements Device.
func (d *SimDevice) ReadAt(p []byte, off int64) (int, error) {
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	d.charge(off, int64(len(p)), d.model.ReadNanos, false)
	d.reads++
	d.bytesRead += int64(len(p))
	copy(p, d.buf[off:])
	return len(p), nil
}

// WriteAt implements Device.
func (d *SimDevice) WriteAt(p []byte, off int64) (int, error) {
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	if d.failAfterWrites >= 0 {
		d.failAfterWrites--
		if d.failAfterWrites < 0 {
			return 0, ErrFailPoint
		}
	}
	if len(d.pending) != 0 {
		d.snapshotPending(off, int64(len(p)))
	}
	d.charge(off, int64(len(p)), d.model.WriteNanos, true)
	d.writes++
	d.bytesWritten += int64(len(p))
	if end := off + int64(len(p)); end > d.dirtyHi {
		d.dirtyHi = end
	}
	copy(d.buf[off:], p)
	return len(p), nil
}

// snapshotPending materializes copy-on-write snapshots for pending flushes
// overlapping [off, off+n): a flush captures the volatile bytes as they were
// when it was issued, so a later store to the same range must not leak into
// what reaches media.
func (d *SimDevice) snapshotPending(off, n int64) {
	if off >= d.pendingHi || off+n <= d.pendingLo {
		return
	}
	for i := range d.pending {
		p := &d.pending[i]
		if p.data != nil || off >= p.off+p.n || off+n <= p.off {
			continue
		}
		p.data = append([]byte(nil), d.buf[p.off:p.off+p.n]...)
	}
}

// Flush implements Device: captures [off, off+n) into the pending set.  The
// bytes become durable only at the next successful Drain.
func (d *SimDevice) Flush(off, n int64) error {
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	d.flushes++
	d.flushedBytes += n
	d.modeledNanos += granules(off, n, d.model.Granule) * d.model.FlushNanos
	ev := d.persistEvents
	d.persistEvents++
	if d.failFromEvent >= 0 && ev >= d.failFromEvent {
		return ErrFailPoint
	}
	if d.failAfterFlushes >= 0 {
		d.failAfterFlushes--
		if d.failAfterFlushes < 0 {
			return ErrFailPoint
		}
	}
	//ntalint:ignore guardcheck store's nil-ness (volatile vs persistent kind) is fixed at construction; mu guards the durable image behind it.
	if d.store == nil {
		return nil // volatile medium: nothing to persist
	}
	if n == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.pending = append(d.pending, pendingRange{off: off, n: n})
	if len(d.pending) == 1 {
		d.pendingLo, d.pendingHi = off, off+n
	} else {
		if off < d.pendingLo {
			d.pendingLo = off
		}
		if off+n > d.pendingHi {
			d.pendingHi = off + n
		}
	}
	return nil
}

// Drain implements Device: retires the whole pending set into the durable
// image, in flush order, then syncs the backing store.
func (d *SimDevice) Drain() error {
	if d.shared.Load() {
		d.opMu.Lock()
		defer d.opMu.Unlock()
	}
	d.drains++
	d.modeledNanos += d.model.DrainNanos
	ev := d.persistEvents
	d.persistEvents++
	if d.failFromEvent >= 0 && ev >= d.failFromEvent {
		return ErrFailPoint
	}
	if d.failAfterDrains >= 0 {
		d.failAfterDrains--
		if d.failAfterDrains < 0 {
			return ErrFailPoint
		}
	}
	//ntalint:ignore guardcheck store's nil-ness (volatile vs persistent kind) is fixed at construction; mu guards the durable image behind it.
	if d.store == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	var batch []ShipRange
	if d.shipper != nil && len(d.pending) > 0 {
		batch = make([]ShipRange, 0, len(d.pending))
	}
	for _, p := range d.pending {
		src := p.data
		if src == nil {
			src = d.buf[p.off : p.off+p.n]
		}
		if err := d.store.persist(p.off, src); err != nil {
			return err
		}
		if batch != nil {
			batch = append(batch, ShipRange{Off: p.off, Data: src})
		}
	}
	d.dropPendingLocked()
	if err := d.store.sync(); err != nil {
		return err
	}
	if len(batch) > 0 {
		// Ship after the fence: the batch is a committed durable delta, never
		// speculative.  Data windows stay valid here — dropPendingLocked only
		// released the pendingRange headers, and mu is still held.
		return d.shipper.ShipCommit(batch)
	}
	return nil
}

func (d *SimDevice) dropPendingLocked() {
	clear(d.pending) // release snapshot buffers to the GC
	d.pending = d.pending[:0]
	d.pendingLo, d.pendingHi = 0, 0
}

// Crash simulates a power failure: the pending set is dropped, and the
// volatile image is discarded and reloaded from the durable image.  Writes
// that were not both flushed and drained vanish.  The device stays usable;
// stats and cache are reset.  Volatile (DRAM) devices come back zero-filled.
func (d *SimDevice) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashLocked(nil)
}

// CrashAt simulates a power failure past ADR: of the granules whose flush was
// initiated but not yet fenced by a Drain, a seeded arbitrary subset reaches
// media — each pending granule independently survives or is lost, so torn
// and reordered write-backs within and across flushed ranges are both
// covered.  The same seed always persists the same subset.  Everything else
// behaves like Crash.
func (d *SimDevice) CrashAt(seed int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashLocked(rand.New(rand.NewSource(seed)))
}

func (d *SimDevice) crashLocked(rng *rand.Rand) error {
	if d.closed {
		return ErrClosed
	}
	if rng != nil && d.store != nil && len(d.pending) > 0 {
		if err := d.persistPendingSubsetLocked(rng); err != nil {
			return err
		}
	}
	d.dropPendingLocked()
	clear(d.buf[:min(d.dirtyHi, int64(len(d.buf)))])
	d.dirtyHi = 0
	if d.store != nil {
		if err := d.store.load(d.buf); err != nil {
			return err
		}
		d.dirtyHi = int64(len(d.buf))
	}
	if d.cache != nil {
		d.cache.reset()
	}
	d.counters.reset()
	d.lastBlk = -1
	d.lastGranule = -1
	d.lastGranule2 = -1
	return nil
}

// persistPendingSubsetLocked writes a seeded subset of the pending set's
// granules to the durable store; the caller holds d.mu.  Granule survival is
// decided once per distinct granule; the surviving intersections are then
// applied in flush order, so
// within one granule the latest flush wins — exactly the write-back
// semantics of a media granule that made it out of the XPBuffer.
func (d *SimDevice) persistPendingSubsetLocked(rng *rand.Rand) error {
	g := d.model.Granule
	seen := make(map[int64]bool)
	var order []int64
	for _, p := range d.pending {
		for gr := p.off / g; gr <= (p.off+p.n-1)/g; gr++ {
			if !seen[gr] {
				seen[gr] = true
				order = append(order, gr)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	kept := make(map[int64]bool, len(order))
	for _, gr := range order {
		if rng.Intn(2) == 1 {
			kept[gr] = true
		}
	}
	for _, p := range d.pending {
		src := p.data
		if src == nil {
			src = d.buf[p.off : p.off+p.n]
		}
		for gr := p.off / g; gr <= (p.off+p.n-1)/g; gr++ {
			if !kept[gr] {
				continue
			}
			lo := max(p.off, gr*g)
			hi := min(p.off+p.n, (gr+1)*g)
			if err := d.store.persist(lo, src[lo-p.off:hi-p.off]); err != nil {
				return err
			}
		}
	}
	return d.store.sync()
}

// CloneDurable snapshots the durable image and pending set into a fresh
// in-memory device with the same kind, size, and cost model but zeroed stats
// and disarmed fail points.  The clone's volatile image is the durable image
// (the post-crash view).  One golden run can seed many independent crash
// explorations: clone, then CrashAt with different seeds, without disturbing
// the source device.  Cloning a volatile device yields a zero-filled one —
// DRAM has no durable contents.
func (d *SimDevice) CloneDurable() (*SimDevice, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	nd := NewWithModel(d.kind, int64(len(d.buf)), d.model)
	if d.store == nil {
		return nd, nil
	}
	if err := d.store.load(nd.buf); err != nil {
		return nil, err
	}
	hi := int64(len(nd.buf))
	if ms, ok := d.store.(*memStore); ok {
		hi = min(ms.hi, hi)
	}
	nd.dirtyHi = hi
	if nms, ok := nd.store.(*memStore); ok {
		copy(nms.img[:hi], nd.buf[:hi])
		nms.hi = hi
	}
	for _, p := range d.pending {
		src := p.data
		if src == nil {
			src = d.buf[p.off : p.off+p.n]
		}
		nd.pending = append(nd.pending, pendingRange{off: p.off, n: p.n, data: append([]byte(nil), src...)})
	}
	nd.pendingLo, nd.pendingHi = d.pendingLo, d.pendingHi
	return nd, nil
}

// ReadDurable copies the durable image into dst, which must be exactly
// Size() bytes.  The copy is host-side and uncharged: replication bootstrap
// streams the snapshot off the modeled critical path (the cost of making it
// durable again is charged at the destination device, per the
// persist-at-the-destination discipline).  A volatile device has no durable
// contents, so dst comes back zero-filled.
func (d *SimDevice) ReadDurable(dst []byte) error {
	if int64(len(dst)) != int64(len(d.buf)) {
		return fmt.Errorf("%w: durable read of %d bytes from %d-byte device",
			ErrOutOfRange, len(dst), len(d.buf))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.store == nil {
		clear(dst)
		return nil
	}
	return d.store.load(dst)
}

// DurableCRC returns the IEEE CRC-32 of the durable image — the replication
// invariant tests compare a follower's image against the primary's without
// materializing both for inspection.  Volatile devices checksum their
// (empty) durable contents: the CRC of a zero-filled image.
func (d *SimDevice) DurableCRC() (uint32, error) {
	buf := getImage(int64(len(d.buf)))
	defer putImage(buf, int64(len(buf)))
	if err := d.ReadDurable(buf); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf), nil
}

// PersistEvents returns how many persistence events (Flush and Drain calls,
// combined) the device has seen over its lifetime.  Unlike Stats it is never
// reset, not even by Crash: crash-exploration harnesses use it to name a
// crash point as "after persistence event i" consistently across a golden
// run and its replays.
func (d *SimDevice) PersistEvents() int64 { return d.persistEvents }

// FailFromPersistEvent arms a fail point on the combined flush/drain
// sequence: persistence event n (0-based, counted from device creation) and
// every later one fail with ErrFailPoint.  The device is "dead" from that
// point of the persistence schedule on, which is exactly what a crash-point
// replay needs.  n at or past the workload's total event count never fires.
func (d *SimDevice) FailFromPersistEvent(n int64) { d.failFromEvent = n }

// FailAfterFlushes arms a fail point: the next n flushes succeed, then every
// flush fails with ErrFailPoint until disarmed.  Crash-injection tests use
// this to interrupt persistence mid-phase.  Fires on volatile devices too.
func (d *SimDevice) FailAfterFlushes(n int64) { d.failAfterFlushes = n }

// FailAfterDrains arms a fail point: the next n drains succeed, then every
// drain fails with ErrFailPoint until disarmed.  Fires on volatile devices
// too.
func (d *SimDevice) FailAfterDrains(n int64) { d.failAfterDrains = n }

// FailAfterWrites arms a fail point: the next n WriteAt calls succeed, then
// every WriteAt fails with ErrFailPoint until disarmed.  It applies to the
// Device.WriteAt path only — accessor stores cannot fail, mirroring real CPU
// store instructions.
func (d *SimDevice) FailAfterWrites(n int64) { d.failAfterWrites = n }

// DisarmFailPoint clears the flush fail point (historical name; prefer
// DisarmFailPoints).
func (d *SimDevice) DisarmFailPoint() { d.failAfterFlushes = -1 }

// DisarmFailPoints clears every armed fail point.
func (d *SimDevice) DisarmFailPoints() {
	d.failAfterFlushes = -1
	d.failAfterDrains = -1
	d.failAfterWrites = -1
	d.failFromEvent = -1
}

// Close implements Device.
func (d *SimDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.store != nil {
		err := d.store.close()
		// A closed in-memory durable image is unreachable (Flush, Drain
		// and Crash all fail with ErrClosed first), so it can be recycled.
		if ms, ok := d.store.(*memStore); ok {
			putImage(ms.img, ms.hi)
			ms.img = nil
		}
		return err
	}
	return nil
}

// Discard closes the device and recycles its volatile image for reuse by a
// future device.  Unlike Close — after which volatile reads and writes still
// work — the device must not be used at all after Discard (accesses panic).
// Callers that own the device's whole lifecycle (the experiment harness, the
// engine) use it to keep the grid from re-faulting fresh pages per cell.
func (d *SimDevice) Discard() error {
	err := d.Close()
	d.mu.Lock()
	putImage(d.buf, d.dirtyHi)
	d.buf = nil
	d.mu.Unlock()
	return err
}

func (d *SimDevice) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > int64(len(d.buf)) {
		return fmt.Errorf("%w: off=%d n=%d size=%d", ErrOutOfRange, off, n, len(d.buf))
	}
	return nil
}
