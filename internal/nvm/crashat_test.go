package nvm

import (
	"bytes"
	"errors"
	"testing"
)

// Tests for the granule-precise persistence domain: the pending set between
// Flush (write-back initiated) and Drain (fenced), seeded torn-write crashes
// past ADR, durable-image cloning, and the extended fail points.

func devWrite(t *testing.T, d *SimDevice, p []byte, off int64) {
	t.Helper()
	if _, err := d.WriteAt(p, off); err != nil {
		t.Fatalf("WriteAt(%d): %v", off, err)
	}
}

func devRead(t *testing.T, d *SimDevice, off, n int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	if _, err := d.ReadAt(buf, off); err != nil {
		t.Fatalf("ReadAt(%d): %v", off, err)
	}
	return buf
}

func TestFlushedNotDrainedVanishesOnCrash(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	devWrite(t, d, []byte("durable!"), 0)
	must(t, d.Flush(0, 8))
	must(t, d.Drain())
	devWrite(t, d, []byte("pending!"), 256)
	must(t, d.Flush(256, 8))
	// No Drain: the write-back was initiated but never fenced, so a plain
	// crash (at-ADR semantics) loses it.
	must(t, d.Crash())
	if got := devRead(t, d, 0, 8); !bytes.Equal(got, []byte("durable!")) {
		t.Errorf("drained data lost: %q", got)
	}
	if got := devRead(t, d, 256, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Errorf("undrained flush survived plain crash: %q", got)
	}
}

func TestDrainRetiresPending(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	devWrite(t, d, []byte("payload1"), 512)
	must(t, d.Flush(512, 8))
	must(t, d.Drain())
	must(t, d.Crash())
	if got := devRead(t, d, 512, 8); !bytes.Equal(got, []byte("payload1")) {
		t.Errorf("flushed+drained data lost: %q", got)
	}
}

// tornFixture builds a device with an all-0x11 durable image and an all-0xEE
// volatile overwrite whose flush is pending (not drained) across every
// granule.
func tornFixture(t *testing.T, size int64) *SimDevice {
	t.Helper()
	d := New(KindNVM, size)
	devWrite(t, d, bytes.Repeat([]byte{0x11}, int(size)), 0)
	must(t, d.Flush(0, size))
	must(t, d.Drain())
	devWrite(t, d, bytes.Repeat([]byte{0xEE}, int(size)), 0)
	must(t, d.Flush(0, size))
	return d
}

func TestCrashAtSeededSubset(t *testing.T) {
	const size = 1 << 13 // 32 granules
	base := tornFixture(t, size)
	defer base.Close()
	g := base.Model().Granule

	image := func(seed int64) []byte {
		c, err := base.CloneDurable()
		if err != nil {
			t.Fatalf("CloneDurable: %v", err)
		}
		defer c.Discard()
		if err := c.CrashAt(seed); err != nil {
			t.Fatalf("CrashAt(%d): %v", seed, err)
		}
		return devRead(t, c, 0, size)
	}

	// Same seed, same subset: CrashAt is deterministic.
	if !bytes.Equal(image(7), image(7)) {
		t.Fatal("CrashAt(7) not deterministic across clones")
	}

	// Every granule is homogeneous — either the durable 0x11 or the pending
	// 0xEE write-back in full, never a torn granule interior.
	partial := 0
	for seed := int64(0); seed < 8; seed++ {
		img := image(seed)
		var kept, dropped int
		for gr := int64(0); gr < size/g; gr++ {
			gran := img[gr*g : (gr+1)*g]
			switch {
			case bytes.Equal(gran, bytes.Repeat([]byte{0xEE}, int(g))):
				kept++
			case bytes.Equal(gran, bytes.Repeat([]byte{0x11}, int(g))):
				dropped++
			default:
				t.Fatalf("seed %d granule %d torn within the granule", seed, gr)
			}
		}
		if kept > 0 && dropped > 0 {
			partial++
		}
	}
	if partial == 0 {
		t.Error("no seed in 0..7 produced a partial subset; torn-write coverage is vacuous")
	}
}

func TestCloneDurableIndependence(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	devWrite(t, d, []byte("old-data"), 0)
	must(t, d.Flush(0, 8))
	must(t, d.Drain())
	devWrite(t, d, []byte("new-data"), 0)
	must(t, d.Flush(0, 8))
	// Pending, not drained.

	c, err := d.CloneDurable()
	if err != nil {
		t.Fatalf("CloneDurable: %v", err)
	}
	defer c.Discard()

	// The clone's volatile view is the durable image (post-crash view).
	if got := devRead(t, c, 0, 8); !bytes.Equal(got, []byte("old-data")) {
		t.Errorf("clone view = %q, want durable image", got)
	}
	// The clone carries the pending set: draining and crashing it lands on
	// the new data.
	must(t, c.Drain())
	must(t, c.Crash())
	if got := devRead(t, c, 0, 8); !bytes.Equal(got, []byte("new-data")) {
		t.Errorf("clone after drain+crash = %q, want pending write retired", got)
	}
	// ... without disturbing the source device in either direction.
	if got := devRead(t, d, 0, 8); !bytes.Equal(got, []byte("new-data")) {
		t.Errorf("source volatile view = %q", got)
	}
	must(t, d.Crash())
	if got := devRead(t, d, 0, 8); !bytes.Equal(got, []byte("old-data")) {
		t.Errorf("source durable image disturbed by clone: %q", got)
	}
}

func TestPersistEventsMonotone(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	if n := d.PersistEvents(); n != 0 {
		t.Fatalf("fresh device events = %d", n)
	}
	devWrite(t, d, make([]byte, 256), 0)
	must(t, d.Flush(0, 256))
	must(t, d.Drain())
	if n := d.PersistEvents(); n != 2 {
		t.Fatalf("events after flush+drain = %d, want 2", n)
	}
	d.ResetStats()
	must(t, d.Crash())
	if n := d.PersistEvents(); n != 2 {
		t.Errorf("events reset by ResetStats/Crash: %d, want 2 (must be monotone)", n)
	}
}

func TestFailFromPersistEventSticky(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	d.FailFromPersistEvent(2)
	must(t, d.Flush(0, 256)) // event 0
	must(t, d.Drain())       // event 1
	if err := d.Flush(0, 256); !errors.Is(err, ErrFailPoint) {
		t.Fatalf("event 2 flush: %v, want ErrFailPoint", err)
	}
	if err := d.Drain(); !errors.Is(err, ErrFailPoint) {
		t.Fatalf("device not dead after its crash event: %v", err)
	}
	d.DisarmFailPoints()
	must(t, d.Flush(0, 256))
	must(t, d.Drain())
}

func TestFailPointsFireOnVolatileDevices(t *testing.T) {
	d := New(KindDRAM, 4096) // no durable store; flushes are no-ops otherwise
	defer d.Close()

	d.FailAfterFlushes(1)
	must(t, d.Flush(0, 64))
	if err := d.Flush(0, 64); !errors.Is(err, ErrFailPoint) {
		t.Errorf("DRAM flush fail point: %v", err)
	}
	d.DisarmFailPoints()

	d.FailAfterDrains(0)
	if err := d.Drain(); !errors.Is(err, ErrFailPoint) {
		t.Errorf("DRAM drain fail point: %v", err)
	}
	d.DisarmFailPoints()

	d.FailAfterWrites(0)
	if _, err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrFailPoint) {
		t.Errorf("DRAM write fail point: %v", err)
	}
	d.DisarmFailPoints()
	devWrite(t, d, []byte("x"), 0)
	must(t, d.Flush(0, 64))
	must(t, d.Drain())
}
