package nvm

import (
	"testing"
	"testing/quick"
)

func TestAccessorTypedRoundTrip(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	a := NewAccessor(d, 128, 1024)

	a.PutUint32(0, 0xdeadbeef)
	if got := a.Uint32(0); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	a.PutUint64(8, 0x0123456789abcdef)
	if got := a.Uint64(8); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	a.PutByte(16, 0x7f)
	if got := a.Byte(16); got != 0x7f {
		t.Errorf("Byte = %#x", got)
	}
}

func TestAccessorSlice(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	a := NewAccessor(d, 0, 4096)
	sub := a.Slice(100, 200)
	if sub.Base() != 100 || sub.Size() != 200 {
		t.Errorf("slice base/size = %d/%d", sub.Base(), sub.Size())
	}
	sub.PutUint32(0, 42)
	if got := a.Uint32(100); got != 42 {
		t.Errorf("write through slice not visible at parent offset: %d", got)
	}
}

func TestAccessorBulkUint32s(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	a := NewAccessor(d, 0, 4096)
	src := []uint32{1, 2, 3, 1 << 30, 0xffffffff}
	a.PutUint32s(64, src)
	dst := make([]uint32, len(src))
	a.Uint32s(64, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestAccessorPanicsOutOfRange(t *testing.T) {
	d := New(KindNVM, 1024)
	defer d.Close()
	a := NewAccessor(d, 0, 64)
	assertPanics(t, "read past region", func() { a.Uint64(60) })
	assertPanics(t, "write past region", func() { a.PutUint32(62, 1) })
	assertPanics(t, "bad slice", func() { a.Slice(32, 64) })
	assertPanics(t, "bad accessor", func() { NewAccessor(d, 1000, 100) })
}

func TestAccessorFlush(t *testing.T) {
	d := New(KindNVM, 1024)
	defer d.Close()
	a := NewAccessor(d, 256, 256)
	a.PutUint64(0, 99)
	if err := a.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := d.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	must(t, d.Crash())
	if got := a.Uint64(0); got != 99 {
		t.Errorf("after crash, value = %d", got)
	}
}

func TestQuickAccessorUint32s(t *testing.T) {
	d := New(KindNVM, 1<<16)
	defer d.Close()
	a := NewAccessor(d, 0, 1<<16)
	f := func(vals []uint32, offSeed uint16) bool {
		if len(vals) > 1000 {
			vals = vals[:1000]
		}
		off := int64(offSeed) % (1 << 15)
		a.PutUint32s(off, vals)
		got := make([]uint32, len(vals))
		a.Uint32s(off, got)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
