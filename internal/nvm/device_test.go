package nvm

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// must fails the test on a persistence-path error; used where the call's
// effect, not its error, is under test.
func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindDRAM: "DRAM", KindNVM: "NVM", KindSSD: "SSD", KindHDD: "HDD",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestKindPersistent(t *testing.T) {
	if KindDRAM.Persistent() {
		t.Error("DRAM must not be persistent")
	}
	for _, k := range []Kind{KindNVM, KindSSD, KindHDD} {
		if !k.Persistent() {
			t.Errorf("%v must be persistent", k)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindDRAM, KindNVM, KindSSD, KindHDD} {
		t.Run(k.String(), func(t *testing.T) {
			d := New(k, 4096)
			defer d.Close()
			want := []byte("hello, persistent world")
			if _, err := d.WriteAt(want, 100); err != nil {
				t.Fatalf("WriteAt: %v", err)
			}
			got := make([]byte, len(want))
			if _, err := d.ReadAt(got, 100); err != nil {
				t.Fatalf("ReadAt: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("read back %q, want %q", got, want)
			}
		})
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(KindNVM, 1024)
	defer d.Close()
	buf := make([]byte, 16)
	if _, err := d.ReadAt(buf, 1020); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.WriteAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset: err = %v, want ErrOutOfRange", err)
	}
	if err := d.Flush(1000, 100); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("flush past end: err = %v, want ErrOutOfRange", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	buf := make([]byte, 256)
	d.WriteAt(buf, 0)
	d.ReadAt(buf, 0)
	must(t, d.Flush(0, 256))
	must(t, d.Drain())
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Flushes != 1 || s.Drains != 1 {
		t.Errorf("counters = %+v", s)
	}
	if s.BytesRead != 256 || s.BytesWritten != 256 || s.FlushedBytes != 256 {
		t.Errorf("byte counters = %+v", s)
	}
	if s.ModeledNanos <= 0 {
		t.Error("modeled time did not accumulate")
	}
	d.ResetStats()
	if got := d.Stats(); got != (Stats{}) {
		t.Errorf("after reset, stats = %+v", got)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Reads: 5, ModeledNanos: 100, Seeks: 2}
	b := Stats{Reads: 3, ModeledNanos: 40, Seeks: 1}
	sum := a.Add(b)
	if sum.Reads != 8 || sum.ModeledNanos != 140 || sum.Seeks != 3 {
		t.Errorf("Add = %+v", sum)
	}
	if diff := sum.Sub(b); diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
}

func TestModeledCostReflectsLocality(t *testing.T) {
	// Sequential access over a range must cost no more than random access
	// over the same number of bytes, because the device cache and granule
	// batching reward locality.
	const size = 1 << 20
	seq := New(KindNVM, size)
	rnd := New(KindNVM, size)
	defer seq.Close()
	defer rnd.Close()

	buf := make([]byte, 8)
	for off := int64(0); off < size; off += 8 {
		seq.ReadAt(buf, off)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < size/8; i++ {
		rnd.ReadAt(buf, int64(r.Intn(size-8)))
	}
	sc, rc := seq.Stats().ModeledNanos, rnd.Stats().ModeledNanos
	if sc >= rc {
		t.Errorf("sequential cost %d >= random cost %d; locality not modeled", sc, rc)
	}
}

func TestMediaCostOrdering(t *testing.T) {
	// For the same random access pattern, DRAM < NVM < SSD < HDD.
	pattern := func(d Device) int64 {
		r := rand.New(rand.NewSource(7))
		buf := make([]byte, 64)
		for i := 0; i < 2000; i++ {
			d.ReadAt(buf, int64(r.Intn(1<<20-64)))
		}
		return d.Stats().ModeledNanos
	}
	costs := make(map[Kind]int64)
	for _, k := range []Kind{KindDRAM, KindNVM, KindSSD, KindHDD} {
		d := NewWithModel(k, 1<<20, ModelFor(k).WithCacheBytes(32<<10))
		costs[k] = pattern(d)
		d.Close()
	}
	if !(costs[KindDRAM] < costs[KindNVM] && costs[KindNVM] < costs[KindSSD] && costs[KindSSD] < costs[KindHDD]) {
		t.Errorf("cost ordering violated: %v", costs)
	}
}

func TestHDDSeekPenalty(t *testing.T) {
	// Random block access on HDD must record seeks; sequential must not
	// (beyond the first).
	d := NewWithModel(KindHDD, 1<<20, HDDModel.WithoutCache())
	defer d.Close()
	buf := make([]byte, 4096)
	for off := int64(0); off < 1<<20; off += 4096 {
		d.ReadAt(buf, off)
	}
	seqSeeks := d.Stats().Seeks
	if seqSeeks > 1 {
		t.Errorf("sequential scan recorded %d seeks", seqSeeks)
	}
	d.ResetStats()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		d.ReadAt(buf, int64(r.Intn(200))*4096)
	}
	if s := d.Stats().Seeks; s < 50 {
		t.Errorf("random access recorded only %d seeks", s)
	}
}

func TestCrashDropsUnflushedWrites(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	durable := []byte("durable")
	volatileOnly := []byte("vanish")
	d.WriteAt(durable, 0)
	if err := d.Flush(0, int64(len(durable))); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := d.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	d.WriteAt(volatileOnly, 512) // never flushed

	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	got := make([]byte, len(durable))
	d.ReadAt(got, 0)
	if !bytes.Equal(got, durable) {
		t.Errorf("durable data lost: %q", got)
	}
	got2 := make([]byte, len(volatileOnly))
	d.ReadAt(got2, 512)
	if !bytes.Equal(got2, make([]byte, len(volatileOnly))) {
		t.Errorf("unflushed write survived crash: %q", got2)
	}
}

func TestCrashOnDRAMZeroes(t *testing.T) {
	d := New(KindDRAM, 1024)
	defer d.Close()
	d.WriteAt([]byte("gone"), 0)
	must(t, d.Flush(0, 4)) // no-op on DRAM
	must(t, d.Drain())
	must(t, d.Crash())
	got := make([]byte, 4)
	d.ReadAt(got, 0)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Errorf("DRAM survived crash: %q", got)
	}
}

func TestFailPoint(t *testing.T) {
	d := New(KindNVM, 4096)
	defer d.Close()
	d.WriteAt([]byte("abc"), 0)
	d.FailAfterFlushes(1)
	if err := d.Flush(0, 3); err != nil {
		t.Fatalf("first flush should pass: %v", err)
	}
	if err := d.Flush(0, 3); !errors.Is(err, ErrFailPoint) {
		t.Fatalf("second flush should fail: %v", err)
	}
	d.DisarmFailPoint()
	if err := d.Flush(0, 3); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFileBackedDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.nvm")
	d, err := Open(KindNVM, path, 8192)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := []byte("survives process restart")
	d.WriteAt(payload, 256)
	if err := d.Flush(256, int64(len(payload))); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := d.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := Open(KindNVM, path, 0) // size comes from the file
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Size() != 8192 {
		t.Errorf("reopened size = %d", d2.Size())
	}
	got := make([]byte, len(payload))
	d2.ReadAt(got, 256)
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %q", got)
	}
}

func TestOpenRejectsDRAM(t *testing.T) {
	if _, err := Open(KindDRAM, filepath.Join(t.TempDir(), "x"), 1024); err == nil {
		t.Error("file-backed DRAM should be rejected")
	}
}

func TestDoubleCloseAndUseAfterClose(t *testing.T) {
	d := New(KindNVM, 1024)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	d.WriteAt([]byte("x"), 0) // volatile write still works (no store access)
	if err := d.Flush(0, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close: %v", err)
	}
	if err := d.Crash(); !errors.Is(err, ErrClosed) {
		t.Errorf("crash after close: %v", err)
	}
}

func TestGranules(t *testing.T) {
	cases := []struct{ off, n, g, want int64 }{
		{0, 0, 256, 0},
		{0, 1, 256, 1},
		{0, 256, 256, 1},
		{0, 257, 256, 2},
		{255, 2, 256, 2},
		{256, 256, 256, 1},
		{100, 1000, 256, 5},
	}
	for _, c := range cases {
		if got := granules(c.off, c.n, c.g); got != c.want {
			t.Errorf("granules(%d,%d,%d) = %d, want %d", c.off, c.n, c.g, got, c.want)
		}
	}
}

// Property: any sequence of writes followed by reads behaves like a plain
// byte array, regardless of medium.
func TestQuickDeviceIsAByteArray(t *testing.T) {
	const size = 1 << 14
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		d := New(KindNVM, size)
		defer d.Close()
		shadow := make([]byte, size)
		for _, op := range ops {
			off := int64(op.Off) % (size / 2)
			data := op.Data
			if len(data) > 4096 {
				data = data[:4096]
			}
			if _, err := d.WriteAt(data, off); err != nil {
				return false
			}
			copy(shadow[off:], data)
		}
		got := make([]byte, size)
		if _, err := d.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: crash recovery never yields data that was neither durable
// nor zero.
func TestQuickCrashConsistency(t *testing.T) {
	const size = 1 << 12
	f := func(flushUpTo uint8, fill byte) bool {
		if fill == 0 {
			fill = 1
		}
		d := New(KindNVM, size)
		defer d.Close()
		data := bytes.Repeat([]byte{fill}, size)
		d.WriteAt(data, 0)
		n := int64(flushUpTo) * 16
		if n > size {
			n = size
		}
		must(t, d.Flush(0, n))
		must(t, d.Drain())
		must(t, d.Crash())
		got := make([]byte, size)
		d.ReadAt(got, 0)
		for i := int64(0); i < size; i++ {
			want := byte(0)
			if i < n {
				want = fill
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
