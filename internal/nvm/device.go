// Package nvm simulates the storage media the paper evaluates on: Intel
// Optane persistent memory (byte-addressable, 256 B media granularity,
// asymmetric read/write latency), an NVMe SSD, a SAS HDD, and plain DRAM.
//
// No persistent-memory hardware is available in this environment, so the
// package substitutes a cost-model simulation: every device is backed by an
// ordinary byte buffer (optionally file-backed for real durability) and an
// explicit access-cost model.  Each read or write is charged per media
// granule through a small simulated device cache (the Optane "XPBuffer", a
// CPU cache for DRAM, an OS page cache for block devices), and the
// accumulated cost is reported as modeled time.  The paper's two challenges —
// poor locality under a 256 B granularity and redundant access from structure
// reconstruction — are properties of the access *pattern*, which this model
// charges faithfully.
package nvm

import (
	"errors"
	"fmt"
)

// Kind identifies the simulated medium.
type Kind int

const (
	// KindNVM is byte-addressable persistent memory with a 256 B media
	// granule, modeled on Intel Optane PMem in App Direct (DAX) mode.  It
	// is the zero value: the medium this system is built for.
	KindNVM Kind = iota
	// KindDRAM is volatile memory: 64 B lines, low latency, contents are
	// discarded on Close (reopening yields zeroes).
	KindDRAM
	// KindSSD is a block device with 4 KiB blocks and NVMe-class latency.
	KindSSD
	// KindHDD is a block device with 4 KiB blocks and a seek penalty for
	// non-sequential access.
	KindHDD
)

// String returns the conventional short name of the medium.
func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "DRAM"
	case KindNVM:
		return "NVM"
	case KindSSD:
		return "SSD"
	case KindHDD:
		return "HDD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Persistent reports whether data written to this medium survives Close
// and reopen.
func (k Kind) Persistent() bool { return k != KindDRAM }

// Common errors returned by devices.
var (
	ErrOutOfRange = errors.New("nvm: access out of device range")
	ErrClosed     = errors.New("nvm: device is closed")
	ErrFailPoint  = errors.New("nvm: injected failure")
)

// Device is a simulated storage medium.  Offsets are byte addresses from the
// start of the device.  A device is owned by one goroutine at a time: access
// charging and statistics are deliberately unsynchronized so the simulator
// adds no lock or atomic traffic to every modeled access.  Concurrent
// experiment cells each own their own device (see internal/harness).
type Device interface {
	// ReadAt copies len(p) bytes at off into p, charging modeled read cost.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt copies p to off, charging modeled write cost.  On persistent
	// media the write reaches the durability domain only after Flush+Drain,
	// mirroring the CPU-cache/ADR behaviour of real persistent memory.
	WriteAt(p []byte, off int64) (int, error)
	// Flush initiates write-back of the byte range [off, off+n) to the
	// persistence domain (the clwb/msync analogue).
	Flush(off, n int64) error
	// Drain blocks until all initiated flushes are durable (the sfence
	// analogue).  For file-backed devices this syncs the backing file.
	Drain() error
	// Size is the device capacity in bytes.
	Size() int64
	// Kind identifies the medium.
	Kind() Kind
	// Stats returns a snapshot of the access counters and modeled cost.
	Stats() Stats
	// ResetStats zeroes the access counters.
	ResetStats()
	// Close releases resources.  Persistent devices keep their contents;
	// DRAM devices lose them.
	Close() error
}

// Stats is a snapshot of device access counters.  ModeledNanos is the total
// modeled device time: the sum of per-access costs from the device's
// CostModel, including cache effects, flushes, and seeks.
type Stats struct {
	Reads         int64 // ReadAt calls
	Writes        int64 // WriteAt calls
	BytesRead     int64 // logical bytes read
	BytesWritten  int64 // logical bytes written
	GranuleReads  int64 // media granules touched by reads (cache misses)
	GranuleWrites int64 // media granules written back
	CacheHits     int64 // device-cache hits
	CacheMisses   int64 // device-cache misses
	Flushes       int64 // Flush calls
	FlushedBytes  int64 // bytes covered by flushes
	Drains        int64 // Drain calls
	Seeks         int64 // non-sequential block transitions (HDD)
	ModeledNanos  int64 // total modeled device time
}

// Add returns the field-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:         s.Reads + o.Reads,
		Writes:        s.Writes + o.Writes,
		BytesRead:     s.BytesRead + o.BytesRead,
		BytesWritten:  s.BytesWritten + o.BytesWritten,
		GranuleReads:  s.GranuleReads + o.GranuleReads,
		GranuleWrites: s.GranuleWrites + o.GranuleWrites,
		CacheHits:     s.CacheHits + o.CacheHits,
		CacheMisses:   s.CacheMisses + o.CacheMisses,
		Flushes:       s.Flushes + o.Flushes,
		FlushedBytes:  s.FlushedBytes + o.FlushedBytes,
		Drains:        s.Drains + o.Drains,
		Seeks:         s.Seeks + o.Seeks,
		ModeledNanos:  s.ModeledNanos + o.ModeledNanos,
	}
}

// Sub returns the field-wise difference s−o; useful for interval deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:         s.Reads - o.Reads,
		Writes:        s.Writes - o.Writes,
		BytesRead:     s.BytesRead - o.BytesRead,
		BytesWritten:  s.BytesWritten - o.BytesWritten,
		GranuleReads:  s.GranuleReads - o.GranuleReads,
		GranuleWrites: s.GranuleWrites - o.GranuleWrites,
		CacheHits:     s.CacheHits - o.CacheHits,
		CacheMisses:   s.CacheMisses - o.CacheMisses,
		Flushes:       s.Flushes - o.Flushes,
		FlushedBytes:  s.FlushedBytes - o.FlushedBytes,
		Drains:        s.Drains - o.Drains,
		Seeks:         s.Seeks - o.Seeks,
		ModeledNanos:  s.ModeledNanos - o.ModeledNanos,
	}
}

// counters is the backing store for Stats, embedded by devices.  Plain
// fields, not atomics: a device belongs to one goroutine (see Device), and
// every modeled access updates several of these, so atomic traffic here is
// pure overhead.
type counters struct {
	reads, writes               int64
	bytesRead, bytesWritten     int64
	granuleReads, granuleWrites int64
	cacheHits, cacheMisses      int64
	flushes, flushedBytes       int64
	drains, seeks               int64
	modeledNanos                int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:         c.reads,
		Writes:        c.writes,
		BytesRead:     c.bytesRead,
		BytesWritten:  c.bytesWritten,
		GranuleReads:  c.granuleReads,
		GranuleWrites: c.granuleWrites,
		CacheHits:     c.cacheHits,
		CacheMisses:   c.cacheMisses,
		Flushes:       c.flushes,
		FlushedBytes:  c.flushedBytes,
		Drains:        c.drains,
		Seeks:         c.seeks,
		ModeledNanos:  c.modeledNanos,
	}
}

func (c *counters) reset() {
	*c = counters{}
}
