package nvm

import "time"

// CostModel describes the modeled timing of a medium.  All costs are in
// nanoseconds.  An access that hits the device cache pays HitNanos; a miss
// pays ReadNanos or WriteNanos per media granule it touches.  Block devices
// additionally pay SeekNanos when the accessed block does not follow the
// previously accessed block.
//
// The default models are drawn from published measurements of the media the
// paper uses (Optane PMem 200, Optane SSD P5800X, 7.2k SAS HDD) and DDR4
// DRAM.  Absolute values matter less than the ratios between media; the
// evaluation reports relative speedups, as the paper does.
type CostModel struct {
	Granule    int64 // media access granularity in bytes
	HitNanos   int64 // cost of an access served by the device cache
	ReadNanos  int64 // cost per granule read from media
	WriteNanos int64 // cost per granule written toward media
	FlushNanos int64 // cost per granule made durable by Flush
	DrainNanos int64 // fixed cost of a Drain (fence / fsync)
	SeekNanos  int64 // extra cost of a non-sequential block access

	// CacheBytes is the capacity of the simulated device cache: the Optane
	// XPBuffer for NVM, a last-level-cache slice for DRAM, an OS page cache
	// under a memory budget for block devices.  Zero disables the cache.
	CacheBytes int64
	// CacheWays is the associativity of the device cache (default 8).
	CacheWays int
}

// Default cost models, exported so benchmarks can document the parameters
// they ran under.  See DESIGN.md for the substitution rationale.
var (
	// DRAMModel: 64 B cache lines, ~80 ns row access on a miss, generous
	// on-chip cache.  DRAM is the paper's theoretical upper bound (Fig 6).
	DRAMModel = CostModel{
		Granule:    64,
		HitNanos:   4,
		ReadNanos:  80,
		WriteNanos: 80,
		FlushNanos: 0,
		DrainNanos: 0,
		CacheBytes: 4 << 20,
		CacheWays:  8,
	}

	// NVMModel: Optane PMem in App Direct (DAX) mode.  DAX memory is
	// CPU-cacheable, so the device cache models an L3 slice (larger lines
	// than DRAM's because the 256 B media granule makes adjacent-access
	// prefetch effectively free); a hit costs SRAM latency with a small
	// DDR-T protocol tax, a miss pays the ~3-4x-DRAM media latency.
	// Writes are asymmetric and flushes (clwb+fence) are explicit.
	// Writes allocate into the cache (~a write-allocate fetch on a miss);
	// the media write itself is charged at Flush time, avoiding double
	// counting.
	NVMModel = CostModel{
		Granule:    256,
		HitNanos:   6,
		ReadNanos:  320,
		WriteNanos: 100,
		FlushNanos: 150,
		DrainNanos: 120,
		CacheBytes: 4 << 20,
		CacheWays:  8,
	}

	// SSDModel: NVMe-class block device, 4 KiB blocks, ~10 µs reads.  The
	// cache models the OS page cache under the paper's 20% memory budget
	// (callers size it per dataset with WithCacheBytes); its high
	// associativity approximates the fully-associative LRU of a real page
	// cache.  Writes land in the page cache cheaply (no device access for
	// freshly allocated pages); the media write is charged at flush
	// (write-back), so write traffic is not double-counted.
	SSDModel = CostModel{
		Granule:    4096,
		HitNanos:   90,
		ReadNanos:  10_000,
		WriteNanos: 300,
		FlushNanos: 12_000,
		DrainNanos: 5_000,
		CacheBytes: 8 << 20,
		CacheWays:  64,
	}

	// HDDModel: 7.2k rpm disk, 4 KiB blocks, ~4 ms average seek plus
	// ~27 µs transfer; sequential access avoids the seek.  Page-cache
	// behaviour as in SSDModel; flushes carry the (mostly sequential)
	// write-back cost.
	HDDModel = CostModel{
		Granule:    4096,
		HitNanos:   90,
		ReadNanos:  27_000,
		WriteNanos: 500,
		FlushNanos: 30_000,
		DrainNanos: 8_000,
		SeekNanos:  4_000_000,
		CacheBytes: 8 << 20,
		CacheWays:  64,
	}
)

// WithCacheBytes returns a copy of m with the device-cache capacity set to n
// bytes.  Used to impose the paper's "memory budget = 20% of the
// uncompressed dataset" page-cache limit on block devices.
func (m CostModel) WithCacheBytes(n int64) CostModel {
	m.CacheBytes = n
	return m
}

// WithoutCache returns a copy of m with the device cache disabled, so every
// access pays full media latency.  Used by the locality ablation.
func (m CostModel) WithoutCache() CostModel {
	m.CacheBytes = 0
	return m
}

// ModelFor returns the default cost model for a medium.
func ModelFor(k Kind) CostModel {
	switch k {
	case KindDRAM:
		return DRAMModel
	case KindNVM:
		return NVMModel
	case KindSSD:
		return SSDModel
	case KindHDD:
		return HDDModel
	default:
		return NVMModel
	}
}

// granules returns the number of media granules the byte range [off, off+n)
// touches under granule size g.
func granules(off, n, g int64) int64 {
	if n <= 0 {
		return 0
	}
	first := off / g
	last := (off + n - 1) / g
	return last - first + 1
}

// ModeledDuration converts accumulated modeled nanoseconds to a Duration.
func ModeledDuration(nanos int64) time.Duration { return time.Duration(nanos) }
