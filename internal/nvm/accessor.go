package nvm

import "encoding/binary"

// Accessor provides typed little-endian access to a device region.  It is the
// load/store layer every higher-level structure (pools, vectors, hash tables)
// goes through, so all of their traffic is visible to the cost model.
//
// Accessor methods panic on out-of-range access: region bounds are computed
// by allocators, so a violation is a program bug, not an I/O condition —
// the same stance the standard library takes for slice indexing.
type Accessor struct {
	dev  Device
	base int64
	size int64
}

// NewAccessor returns an accessor for the n bytes of dev starting at base.
func NewAccessor(dev Device, base, n int64) Accessor {
	if base < 0 || n < 0 || base+n > dev.Size() {
		panic("nvm: accessor out of device range")
	}
	return Accessor{dev: dev, base: base, size: n}
}

// Device returns the underlying device.
func (a Accessor) Device() Device { return a.dev }

// Base returns the region's absolute device offset.
func (a Accessor) Base() int64 { return a.base }

// Size returns the region length in bytes.
func (a Accessor) Size() int64 { return a.size }

// Slice returns an accessor for the sub-region [off, off+n).
func (a Accessor) Slice(off, n int64) Accessor {
	if off < 0 || n < 0 || off+n > a.size {
		panic("nvm: slice out of region range")
	}
	return Accessor{dev: a.dev, base: a.base + off, size: n}
}

func (a Accessor) must(err error) {
	if err != nil {
		panic("nvm: " + err.Error())
	}
}

// ReadBytes copies len(p) bytes at region offset off into p.
func (a Accessor) ReadBytes(off int64, p []byte) {
	a.check(off, int64(len(p)))
	_, err := a.dev.ReadAt(p, a.base+off)
	a.must(err)
}

// WriteBytes copies p to region offset off.
func (a Accessor) WriteBytes(off int64, p []byte) {
	a.check(off, int64(len(p)))
	_, err := a.dev.WriteAt(p, a.base+off)
	a.must(err)
}

// Uint32 reads a little-endian uint32 at off.
func (a Accessor) Uint32(off int64) uint32 {
	var b [4]byte
	a.ReadBytes(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// PutUint32 writes v at off.
func (a Accessor) PutUint32(off int64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	a.WriteBytes(off, b[:])
}

// Uint64 reads a little-endian uint64 at off.
func (a Accessor) Uint64(off int64) uint64 {
	var b [8]byte
	a.ReadBytes(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// PutUint64 writes v at off.
func (a Accessor) PutUint64(off int64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	a.WriteBytes(off, b[:])
}

// Byte reads the byte at off.
func (a Accessor) Byte(off int64) byte {
	var b [1]byte
	a.ReadBytes(off, b[:])
	return b[0]
}

// PutByte writes v at off.
func (a Accessor) PutByte(off int64, v byte) {
	b := [1]byte{v}
	a.WriteBytes(off, b[:])
}

// Uint32s reads n little-endian uint32 values starting at off into dst,
// which must have length >= n.  It issues one device read, so sequential
// layouts pay sequential cost.
func (a Accessor) Uint32s(off int64, dst []uint32) {
	n := int64(len(dst)) * 4
	buf := make([]byte, n)
	a.ReadBytes(off, buf)
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
}

// PutUint32s writes src as consecutive little-endian uint32 values at off in
// one device write.
func (a Accessor) PutUint32s(off int64, src []uint32) {
	buf := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], v)
	}
	a.WriteBytes(off, buf)
}

// Flush persists the byte range [off, off+n) of the region.
func (a Accessor) Flush(off, n int64) error {
	a.check(off, n)
	return a.dev.Flush(a.base+off, n)
}

// FlushAll persists the whole region.
func (a Accessor) FlushAll() error { return a.dev.Flush(a.base, a.size) }

func (a Accessor) check(off, n int64) {
	if off < 0 || n < 0 || off+n > a.size {
		panic("nvm: access out of region range")
	}
}
